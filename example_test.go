package qpi_test

import (
	"fmt"
	"strings"

	"qpi"
)

// ExampleEngine_Query runs SQL over generated data.
func ExampleEngine_Query() {
	eng := qpi.New()
	eng.MustCreateSkewedTable("t", 1000, 7,
		qpi.SkewedColumn{Name: "k", Domain: 5, Zipf: 0, PermSeed: 1})
	q := eng.MustQuery("SELECT k, COUNT(*) c FROM t GROUP BY k ORDER BY k LIMIT 3")
	rows, err := q.Rows()
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r[0], r[1].(int64) > 0)
	}
	// Output:
	// 1 true
	// 2 true
	// 3 true
}

// ExampleQuery_Run shows the converged online estimate of a join.
func ExampleQuery_Run() {
	eng := qpi.New()
	eng.MustCreateSkewedTable("r", 5000, 1,
		qpi.SkewedColumn{Name: "k", Domain: 100, Zipf: 1, PermSeed: 11})
	eng.MustCreateSkewedTable("s", 5000, 2,
		qpi.SkewedColumn{Name: "k", Domain: 100, Zipf: 1, PermSeed: 22})
	q := eng.MustQuery("SELECT * FROM r JOIN s ON r.k = s.k")
	n, err := q.Run(nil)
	if err != nil {
		panic(err)
	}
	oe, _ := q.EstimateOf("")
	est, src := oe.Estimate, oe.Source
	fmt.Println(int64(est) == n, src)
	// Output:
	// true once-exact
}

// ExampleEngine_LoadCSV ingests CSV and queries it.
func ExampleEngine_LoadCSV() {
	eng := qpi.New()
	csv := "1,alice\n2,bob\n3,carol\n"
	n, err := eng.LoadCSV("people", strings.NewReader(csv), false,
		qpi.ColumnDef{Name: "id", Type: "int"},
		qpi.ColumnDef{Name: "name", Type: "string"},
	)
	if err != nil {
		panic(err)
	}
	rows, err := eng.MustQuery("SELECT id, name FROM people WHERE id >= 2 ORDER BY id").Rows()
	if err != nil {
		panic(err)
	}
	fmt.Println(n, rows[0][1], rows[1][1])
	// Output:
	// 3 bob carol
}

// ExampleQuery_ProgressInterval shows confidence bounds on progress.
func ExampleQuery_ProgressInterval() {
	eng := qpi.New()
	eng.MustCreateSkewedTable("r", 2000, 1,
		qpi.SkewedColumn{Name: "k", Domain: 50, Zipf: 0, PermSeed: 1})
	q := eng.MustQuery("SELECT k, COUNT(*) c FROM r GROUP BY k")
	if _, err := q.Run(nil); err != nil {
		panic(err)
	}
	lo, hi := q.ProgressInterval(0.95)
	fmt.Printf("%.0f%% - %.0f%%\n", 100*lo, 100*hi)
	// Output:
	// 100% - 100%
}
