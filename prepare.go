package qpi

import (
	"fmt"
	"sync"

	"qpi/internal/plan"
	"qpi/internal/sql"
)

// Prepared is a parsed-and-validated SQL statement — the reusable half
// of the parse→prepare→execute split. Prepare parses once and plans
// once against the current catalog to validate the statement and record
// its output schema; NewQuery then re-plans (operators are stateful and
// single-use) as many times as the statement executes. A Prepared
// captures the catalog version at preparation time, so plan caches can
// detect staleness with Prepared.CatalogVersion() !=
// Engine.CatalogVersion() — the key the qpi-server plan cache uses.
type Prepared struct {
	eng     *Engine
	stmt    *sql.SelectStmt
	text    string
	version int64
	cols    []string
	explain string
	// planMu serializes planning: the planner normalizes column
	// references in the shared AST (qualifying bare columns with their
	// resolved relation alias), so two concurrent plans of one statement
	// would race on those writes. Planning is microseconds against
	// execution, so a per-statement plan lock costs nothing.
	planMu sync.Mutex
}

// Prepare parses and validates a SELECT statement against the current
// catalog and returns a reusable handle. The returned Prepared is safe
// for concurrent NewQuery calls.
func (e *Engine) Prepare(query string) (*Prepared, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	// Validate by planning once: name resolution, type checks and join
	// shape errors surface at prepare time, not first execution.
	root, err := sql.Plan(stmt, e.cat)
	if err != nil {
		return nil, err
	}
	plan.EstimateCardinalities(root, e.cat)
	cols := root.Schema().Cols
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Qualified()
	}
	return &Prepared{
		eng:     e,
		stmt:    stmt,
		text:    query,
		version: e.cat.Version(),
		cols:    names,
		explain: plan.Explain(root),
	}, nil
}

// NewQuery plans and compiles a fresh executable Query from the prepared
// statement against the engine's current catalog. Each call returns an
// independent single-use Query; compile options (estimator mode, memory
// budget, batch execution, spill FS) apply per execution.
func (p *Prepared) NewQuery(opts ...CompileOption) (*Query, error) {
	p.planMu.Lock()
	root, err := sql.Plan(p.stmt, p.eng.cat)
	p.planMu.Unlock()
	if err != nil {
		return nil, err
	}
	return p.eng.Compile(&Node{op: root, eng: p.eng}, opts...)
}

// SQL returns the statement text the handle was prepared from.
func (p *Prepared) SQL() string { return p.text }

// Columns returns the output column names recorded at prepare time.
func (p *Prepared) Columns() []string {
	out := make([]string, len(p.cols))
	copy(out, p.cols)
	return out
}

// Explain renders the plan shape recorded at prepare time (with the
// optimizer estimates of that moment).
func (p *Prepared) Explain() string { return p.explain }

// CatalogVersion returns the engine catalog version the statement was
// prepared against. When it differs from Engine.CatalogVersion() the
// prepared plan's estimates are stale (tables created, rows inserted or
// statistics recomputed since).
func (p *Prepared) CatalogVersion() int64 { return p.version }

// Stale reports whether the catalog has changed since preparation.
func (p *Prepared) Stale() bool { return p.version != p.eng.cat.Version() }

// String implements fmt.Stringer for diagnostics.
func (p *Prepared) String() string {
	return fmt.Sprintf("Prepared(%q @ catalog v%d)", p.text, p.version)
}
