// Command qpi-datagen generates TPC-H-style or Zipf-skewed tables and
// writes them as CSV, standing in for the paper's modified dbgen + skew
// tool.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"qpi/internal/catalog"
	"qpi/internal/disk"
	"qpi/internal/storage"
	"qpi/internal/tpch"
)

func main() {
	var (
		table  = flag.String("table", "customer", "tpch table name, or 'skewed' for a synthetic C_{z,n} table")
		sf     = flag.Float64("sf", 0.01, "TPC-H scale factor")
		skew   = flag.Float64("skew", 0, "Zipf skew of key columns")
		rows   = flag.Int("rows", 150000, "rows (skewed table only)")
		domain = flag.Int("domain", 25, "key domain (skewed table only)")
		perm   = flag.Int64("perm", 0, "rank permutation seed (skewed table only)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "-", "output file ('-' = stdout)")
		format = flag.String("format", "csv", "output format: csv, or qpit (binary table file loadable with Engine.LoadTableFile)")
	)
	flag.Parse()

	var t *storage.Table
	if *table == "skewed" {
		var err error
		t, err = tpch.SkewedCustomer("customer", *rows, *domain, *skew, *seed, *perm)
		if err != nil {
			fail(err)
		}
	} else {
		cat, err := tpch.Generate(tpch.Config{SF: *sf, Seed: *seed, Skew: *skew, Tables: []string{*table}})
		if err != nil {
			fail(err)
		}
		var entry *catalog.Entry
		if entry, err = cat.Lookup(*table); err != nil {
			fail(err)
		}
		t = entry.Table
	}

	if *format == "qpit" {
		if *out == "-" {
			fail(fmt.Errorf("qpit format needs -out <file>"))
		}
		if err := disk.WriteTable(*out, t); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows of %s to %s\n", t.NumRows(), t.Name(), *out)
		return
	}

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	// Header.
	for i, c := range t.Schema().Cols {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c.Name)
	}
	w.WriteByte('\n')
	it := t.SequentialOrder()
	for tu := it.Next(); tu != nil; tu = it.Next() {
		for i, v := range tu {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(v.String())
		}
		w.WriteByte('\n')
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows of %s\n", t.NumRows(), t.Name())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qpi-datagen:", err)
	os.Exit(1)
}
