// Command qpi-datagen generates TPC-H-style or Zipf-skewed tables and
// writes them as CSV, standing in for the paper's modified dbgen + skew
// tool. All randomness derives from the -seed flag (plus -perm for the
// skewed table's rank permutation), so identical invocations produce
// byte-identical output — the contract the differential-test replay
// workflow depends on.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"qpi/internal/catalog"
	"qpi/internal/disk"
	"qpi/internal/storage"
	"qpi/internal/tpch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "qpi-datagen:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind a testable seam: flags are parsed from
// args with a fresh FlagSet and all output goes to the given writers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("qpi-datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table  = fs.String("table", "customer", "tpch table name, or 'skewed' for a synthetic C_{z,n} table")
		sf     = fs.Float64("sf", 0.01, "TPC-H scale factor")
		skew   = fs.Float64("skew", 0, "Zipf skew of key columns")
		rows   = fs.Int("rows", 150000, "rows (skewed table only)")
		domain = fs.Int("domain", 25, "key domain (skewed table only)")
		perm   = fs.Int64("perm", 0, "rank permutation seed (skewed table only)")
		seed   = fs.Int64("seed", 1, "random seed")
		out    = fs.String("out", "-", "output file ('-' = stdout)")
		format = fs.String("format", "csv", "output format: csv, or qpit (binary table file loadable with Engine.LoadTableFile)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t *storage.Table
	if *table == "skewed" {
		var err error
		t, err = tpch.SkewedCustomer("customer", *rows, *domain, *skew, *seed, *perm)
		if err != nil {
			return err
		}
	} else {
		cat, err := tpch.Generate(tpch.Config{SF: *sf, Seed: *seed, Skew: *skew, Tables: []string{*table}})
		if err != nil {
			return err
		}
		var entry *catalog.Entry
		if entry, err = cat.Lookup(*table); err != nil {
			return err
		}
		t = entry.Table
	}

	if *format == "qpit" {
		if *out == "-" {
			return fmt.Errorf("qpit format needs -out <file>")
		}
		if err := disk.WriteTable(*out, t); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d rows of %s to %s\n", t.NumRows(), t.Name(), *out)
		return nil
	}

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	// Header.
	for i, c := range t.Schema().Cols {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c.Name)
	}
	w.WriteByte('\n')
	it := t.SequentialOrder()
	for tu := it.Next(); tu != nil; tu = it.Next() {
		for i, v := range tu {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(v.String())
		}
		w.WriteByte('\n')
	}
	fmt.Fprintf(stderr, "wrote %d rows of %s\n", t.NumRows(), t.Name())
	return nil
}
