package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The tool's reproducibility contract: the same -seed produces
// byte-identical output, a different -seed produces different output, in
// every format. Replaying a dataset from a printed seed depends on this.

func runCSV(t *testing.T, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, stderr.String())
	}
	return stdout.Bytes()
}

func TestCSVDeterministicBySeed(t *testing.T) {
	cases := [][]string{
		{"-table", "skewed", "-rows", "500", "-domain", "25", "-skew", "1", "-seed", "7", "-perm", "3"},
		{"-table", "customer", "-sf", "0.001", "-seed", "7"},
		{"-table", "orders", "-sf", "0.001", "-skew", "1", "-seed", "7"},
	}
	for _, args := range cases {
		a := runCSV(t, args...)
		b := runCSV(t, args...)
		if !bytes.Equal(a, b) {
			t.Errorf("%v: two runs with the same seed differ", args)
		}
		reseeded := append(append([]string{}, args...), "-seed", "8")
		c := runCSV(t, reseeded...)
		if bytes.Equal(a, c) {
			t.Errorf("%v: seed 7 and seed 8 produced identical output", args)
		}
	}
}

func TestPermSeedChangesHotValues(t *testing.T) {
	base := []string{"-table", "skewed", "-rows", "400", "-domain", "25", "-skew", "1.5", "-seed", "7"}
	a := runCSV(t, append(append([]string{}, base...), "-perm", "1")...)
	b := runCSV(t, append(append([]string{}, base...), "-perm", "2")...)
	if bytes.Equal(a, b) {
		t.Error("different -perm seeds produced identical skewed tables")
	}
}

func TestCSVHasHeaderAndRows(t *testing.T) {
	out := string(runCSV(t, "-table", "skewed", "-rows", "10", "-seed", "1"))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 11 {
		t.Fatalf("%d lines, want header + 10 rows", len(lines))
	}
	if !strings.Contains(lines[0], "custkey") {
		t.Errorf("header %q missing custkey", lines[0])
	}
}

func TestQpitDeterministicBySeed(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, seed string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		var stdout, stderr bytes.Buffer
		err := run([]string{
			"-table", "skewed", "-rows", "300", "-seed", seed,
			"-format", "qpit", "-out", path,
		}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write("a.qpit", "5")
	b := write("b.qpit", "5")
	c := write("c.qpit", "6")
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different qpit files")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical qpit files")
	}
}

func TestQpitToStdoutRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-table", "skewed", "-rows", "10", "-format", "qpit"}, &stdout, &stderr); err == nil {
		t.Fatal("qpit to stdout accepted")
	}
}

func TestUnknownTableFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-table", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown table accepted")
	}
}
