// Command qpi-demo runs a skewed multi-join query with a live progress
// bar, contrasting the paper's online ("once") progress estimates with
// the dne baseline on the same workload.
package main

import (
	"flag"
	"fmt"
	"strings"

	"qpi"
)

func main() {
	var (
		rows   = flag.Int("rows", 100000, "rows per synthetic table")
		domain = flag.Int("domain", 5000, "join key domain size")
		z      = flag.Float64("z", 1, "Zipf skew of the join keys")
		mode   = flag.String("mode", "once", "progress estimator: once, dne, byte")
		serve  = flag.String("serve", "", "serve /metrics, /dashboard, /debug/vars on this address while the query runs")
		trace  = flag.Bool("trace", false, "dump the execution event stream after the run")
	)
	flag.Parse()

	eng := qpi.New()
	fmt.Printf("generating 3 × %d rows (domain %d, Zipf %g)...\n", *rows, *domain, *z)
	for i, name := range []string{"a", "b", "c"} {
		eng.MustCreateSkewedTable(name, *rows, int64(i+1),
			qpi.SkewedColumn{Name: "k", Domain: *domain, Zipf: *z, PermSeed: int64(100 * (i + 1))})
	}

	// Pipeline of two hash joins on the same attribute, followed by a
	// GROUP BY on the join key (push-down estimation end to end).
	lower := qpi.HashJoin(eng.MustScan("b"), eng.MustScan("c"), qpi.Col("b", "k"), qpi.Col("c", "k"))
	upper := qpi.HashJoin(eng.MustScan("a"), lower, qpi.Col("a", "k"), qpi.Col("c", "k"))
	root := qpi.MustGroupBy(upper, []qpi.Ref{qpi.Col("c", "k")}, qpi.Agg{Func: qpi.CountStar, As: "cnt"})

	var m qpi.EstimatorMode
	switch *mode {
	case "dne":
		m = qpi.DNE
	case "byte":
		m = qpi.Byte
	default:
		m = qpi.Once
	}
	q := eng.MustCompile(root, qpi.WithMode(m), qpi.WithSampling(0.1, 7))

	opts := []qpi.RunOption{qpi.WithProgress(func(r qpi.Report) {
		bar := int(50 * r.Progress)
		fmt.Printf("\r[%-50s] %5.1f%%  (C=%.0f / T=%.0f)",
			strings.Repeat("#", bar), 100*r.Progress, r.C, r.T)
	}, int64(*rows/20))}
	var tr *qpi.Tracer
	if *trace {
		tr = qpi.NewTracer()
		opts = append(opts, qpi.WithTrace(tr))
	}
	if *serve != "" {
		if err := qpi.DefaultDashboard.Register("qpi-demo", q); err != nil {
			fmt.Println("register:", err)
			return
		}
		srv, err := qpi.Serve(*serve)
		if err != nil {
			fmt.Println("serve:", err)
			return
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics /dashboard /debug/vars\n", srv.Addr())
	}

	fmt.Println(q.Explain())
	n, err := q.Run(nil, opts...)
	fmt.Println()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("query produced %d groups\n\n", n)
	fmt.Println("final operator estimates:")
	for _, e := range q.Estimates() {
		fmt.Printf("  %s%-40s emitted=%-10d est=%-12.0f src=%s\n",
			strings.Repeat("  ", e.Depth), e.Operator, e.Emitted, e.Estimate, e.Source)
	}
	if tr != nil {
		m := q.Metrics()
		fmt.Printf("\nmetrics: tuples=%d batches=%d spill=%d files/%d bytes recomputes=%d probes=%d\n",
			m.Tuples, m.Batches, m.SpillFiles, m.SpillBytes, m.EstimatorRecomputes, m.HistogramProbes)
		fmt.Printf("\nexecution trace (%d events):\n%s", tr.Len(), tr.Dump())
	}
}
