// Command qpi-sql is an interactive SQL shell over a generated TPC-H
// database, with a live query progress indicator driven by the paper's
// online estimation framework.
//
//	qpi-sql -sf 0.05 -skew 2
//	qpi> SELECT custkey, COUNT(*) c FROM orders GROUP BY custkey LIMIT 5;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qpi"
)

func main() {
	var (
		sf     = flag.Float64("sf", 0.02, "TPC-H scale factor")
		skew   = flag.Float64("skew", 0, "Zipf skew of foreign keys")
		seed   = flag.Int64("seed", 42, "random seed")
		sample = flag.Float64("sample", 0.1, "block-sample fraction for scans")
		mode   = flag.String("mode", "once", "progress estimator: once, dne, byte")
		db     = flag.String("db", "", "load a saved database directory instead of generating TPC-H")
		saveDB = flag.String("save", "", "persist the loaded/generated tables to this directory on startup")
		serve  = flag.String("serve", "", "serve /metrics, /dashboard, /debug/vars on this address; every executed query is registered")
	)
	flag.Parse()

	if *serve != "" {
		srv, err := qpi.Serve(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpi-sql:", err)
			os.Exit(1)
		}
		defer srv.Close()
		serving = true
		fmt.Printf("observability: http://%s/metrics /dashboard /debug/vars\n", srv.Addr())
	}

	eng := qpi.New()
	if *db != "" {
		loaded, err := eng.LoadDatabase(*db)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpi-sql:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %d tables from %s\n", len(loaded), *db)
	} else {
		fmt.Printf("generating TPC-H data (SF %g, skew %g)...\n", *sf, *skew)
		eng.MustLoadTPCH(qpi.TPCHConfig{SF: *sf, Seed: *seed, Skew: *skew})
	}
	if *saveDB != "" {
		if err := eng.SaveDatabase(*saveDB); err != nil {
			fmt.Fprintln(os.Stderr, "qpi-sql:", err)
			os.Exit(1)
		}
		fmt.Printf("saved database to %s\n", *saveDB)
	}
	fmt.Printf("tables: %s\n", strings.Join(eng.Tables(), ", "))
	fmt.Println(`type a SELECT statement ending with ';', \e <query> for EXPLAIN, \a <query> for EXPLAIN ANALYZE, \q to quit`)

	var m qpi.EstimatorMode
	switch *mode {
	case "dne":
		m = qpi.DNE
	case "byte":
		m = qpi.Byte
	default:
		m = qpi.Once
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("qpi> ")
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == `\q` || trimmed == "exit" || trimmed == "quit" {
			return
		}
		if strings.HasPrefix(trimmed, `\e `) {
			explain(eng, strings.TrimSuffix(strings.TrimPrefix(trimmed, `\e `), ";"), m, *sample)
			fmt.Print("qpi> ")
			continue
		}
		if strings.HasPrefix(trimmed, `\a `) {
			analyze(eng, strings.TrimSuffix(strings.TrimPrefix(trimmed, `\a `), ";"), m, *sample)
			fmt.Print("qpi> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("  -> ")
			continue
		}
		run(eng, buf.String(), m, *sample)
		buf.Reset()
		fmt.Print("qpi> ")
	}
}

// serving is set when -serve is active; every executed query then lands
// on the default dashboard so scrapers see the shell's whole session.
var (
	serving      bool
	queryCounter int
)

func registerOnDashboard(q *qpi.Query, sql string) {
	if !serving {
		return
	}
	queryCounter++
	label := strings.Join(strings.Fields(sql), " ")
	if len(label) > 60 {
		label = label[:60] + "..."
	}
	_ = qpi.DefaultDashboard.Register(fmt.Sprintf("q%d: %s", queryCounter, label), q)
}

func explain(eng *qpi.Engine, query string, m qpi.EstimatorMode, sample float64) {
	q, err := eng.Query(query, qpi.WithMode(m), qpi.WithSampling(sample, 7))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(q.Explain())
}

// analyze executes the query and prints per-operator actual vs estimated
// cardinalities with estimate provenance.
func analyze(eng *qpi.Engine, query string, m qpi.EstimatorMode, sample float64) {
	q, err := eng.Query(query, qpi.WithMode(m), qpi.WithSampling(sample, 7))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	registerOnDashboard(q, query)
	start := time.Now()
	n, err := q.Run(nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("-- %d rows in %v\n", n, time.Since(start).Round(time.Microsecond))
	fmt.Printf("%-60s %12s %12s  %s\n", "operator", "actual", "estimate", "source")
	for _, e := range q.Estimates() {
		fmt.Printf("%-60s %12d %12.0f  %s\n",
			strings.Repeat("  ", e.Depth)+e.Operator, e.Emitted, e.Estimate, e.Source)
	}
}

func run(eng *qpi.Engine, query string, m qpi.EstimatorMode, sample float64) {
	q, err := eng.Query(query, qpi.WithMode(m), qpi.WithSampling(sample, 7))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	registerOnDashboard(q, query)
	// Progress bar on stderr; results buffered.
	done := false
	n, err := q.Run(nil, qpi.WithProgress(func(r qpi.Report) {
		if done {
			return
		}
		bar := int(40 * r.Progress)
		fmt.Fprintf(os.Stderr, "\r[%-40s] %5.1f%% ", strings.Repeat("#", bar), 100*r.Progress)
	}, 50000))
	done = true
	fmt.Fprint(os.Stderr, "\r"+strings.Repeat(" ", 60)+"\r")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_ = n
	// Re-run materialized for display (plans are single-use); cap rows.
	q2, err := eng.Query(query, qpi.WithMode(m))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rows, err := q2.Rows()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cols := q2.Columns()
	fmt.Println(strings.Join(cols, " | "))
	const maxShow = 20
	for i, r := range rows {
		if i >= maxShow {
			fmt.Printf("... (%d more rows)\n", len(rows)-maxShow)
			break
		}
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}
