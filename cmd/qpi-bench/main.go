// Command qpi-bench regenerates the paper's evaluation tables and
// figures (Figures 3-6 and 8, Tables 1-4 of Mishra & Koudas, ICDE 2007).
//
// Usage:
//
//	qpi-bench                          # run everything at default scale
//	qpi-bench -experiment fig4         # one experiment
//	qpi-bench -paper                   # the paper's original scale
//	qpi-bench -rows 150000 -sf 1       # custom scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qpi/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"experiment id: all, "+strings.Join(experiments.Names(), ", "))
		paper  = flag.Bool("paper", false, "use the paper's original scale (slow, needs RAM)")
		rows   = flag.Int("rows", 0, "override synthetic table row count")
		sf     = flag.Float64("sf", 0, "override TPC-H scale factor")
		sample = flag.Float64("sample", 0, "override block-sample fraction")
		seed   = flag.Int64("seed", 0, "override random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *sf > 0 {
		cfg.SF = *sf
	}
	if *sample > 0 {
		cfg.SampleFraction = *sample
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	names := experiments.Names()
	if *experiment != "all" {
		names = strings.Split(*experiment, ",")
	}
	fmt.Printf("qpi-bench: rows=%d domains=%d/%d sf=%g sample=%g%% seed=%d\n\n",
		cfg.Rows, cfg.DomainSmall, cfg.DomainLarge, cfg.SF, 100*cfg.SampleFraction, cfg.Seed)
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(strings.TrimSpace(name), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qpi-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
