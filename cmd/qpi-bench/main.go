// Command qpi-bench regenerates the paper's evaluation tables and
// figures (Figures 3-6 and 8, Tables 1-4 of Mishra & Koudas, ICDE 2007).
//
// Usage:
//
//	qpi-bench                          # run everything at default scale
//	qpi-bench -experiment fig4         # one experiment
//	qpi-bench -paper                   # the paper's original scale
//	qpi-bench -rows 150000 -sf 1       # custom scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"qpi/internal/exec"
	"qpi/internal/experiments"
	"qpi/internal/plan"
	"qpi/internal/tpch"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"experiment id: all, "+strings.Join(experiments.Names(), ", "))
		paper    = flag.Bool("paper", false, "use the paper's original scale (slow, needs RAM)")
		rows     = flag.Int("rows", 0, "override synthetic table row count")
		sf       = flag.Float64("sf", 0, "override TPC-H scale factor")
		sample   = flag.Float64("sample", 0, "override block-sample fraction")
		seed     = flag.Int64("seed", 0, "override random seed")
		jsonOut  = flag.Bool("json", false, "benchmark join execution modes and write BENCH_join.json instead of running experiments")
		jsonFile = flag.String("json-file", "BENCH_join.json", "output path for -json")
	)
	flag.Parse()

	if *jsonOut {
		if err := writeJoinBench(*jsonFile); err != nil {
			fmt.Fprintf(os.Stderr, "qpi-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *sf > 0 {
		cfg.SF = *sf
	}
	if *sample > 0 {
		cfg.SampleFraction = *sample
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	names := experiments.Names()
	if *experiment != "all" {
		names = strings.Split(*experiment, ",")
	}
	fmt.Printf("qpi-bench: rows=%d domains=%d/%d sf=%g sample=%g%% seed=%d\n\n",
		cfg.Rows, cfg.DomainSmall, cfg.DomainLarge, cfg.SF, 100*cfg.SampleFraction, cfg.Seed)
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(strings.TrimSpace(name), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qpi-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// seedBaseline is the recorded tuple-at-a-time BenchmarkJoinBaseline result
// of the pre-batching engine on the reference machine (Intel Xeon 2.10GHz,
// 1 CPU): the number the batch-execution speedups are measured against.
var seedBaseline = modeResult{
	Mode:       "seed-tuple (recorded reference)",
	NsPerOp:    109566440,
	BytesPerOp: 28398736,
	AllocsOp:   75518,
}

// modeResult is one execution mode's measurement on the orders ⋈ lineitem
// workload.
type modeResult struct {
	Mode         string  `json:"mode"`
	Workers      int     `json:"workers,omitempty"`
	NsPerOp      int64   `json:"ns_per_op"`
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
	BytesPerOp   uint64  `json:"bytes_per_op,omitempty"`
	AllocsOp     uint64  `json:"allocs_per_op"`
	SpeedupSeed  float64 `json:"speedup_vs_seed,omitempty"`
	// Observability counters (qpi.Metrics roll-up of the measured run):
	// absolute work moved per op, so throughput regressions from the
	// tracing/metrics instrumentation are attributable across PRs.
	TuplesMoved int64 `json:"tuples_moved,omitempty"`
	Batches     int64 `json:"batches,omitempty"`
	SpillFiles  int64 `json:"spill_files,omitempty"`
	SpillBytes  int64 `json:"spill_bytes,omitempty"`
}

// joinBenchReport is the BENCH_join.json document.
type joinBenchReport struct {
	Benchmark    string       `json:"benchmark"`
	CPU          string       `json:"cpu"`
	MaxProcs     int          `json:"gomaxprocs"`
	Runs         int          `json:"runs_per_mode"`
	SeedBaseline modeResult   `json:"seed_baseline"`
	Modes        []modeResult `json:"modes"`
}

// writeJoinBench measures the grace hash join's execution modes on the
// BenchmarkJoinBaseline workload (TPC-H SF 0.01 orders ⋈ lineitem) and
// writes the results as JSON. Best-of-N timing, allocation deltas from
// runtime.MemStats.
func writeJoinBench(path string) error {
	const runs = 7
	modes := []struct {
		name    string
		workers int
	}{
		{"tuple", 0},
		{"batch", 1},
		{"batch-parallel", runtime.GOMAXPROCS(0)},
	}
	report := joinBenchReport{
		Benchmark:    "grace hash join, TPC-H SF=0.01 orders ⋈ lineitem (no estimators)",
		CPU:          runtime.GOARCH,
		MaxProcs:     runtime.GOMAXPROCS(0),
		Runs:         runs,
		SeedBaseline: seedBaseline,
	}
	for _, m := range modes {
		var best modeResult
		for r := 0; r < runs; r++ {
			res, err := runJoinOnce(m.name, m.workers)
			if err != nil {
				return err
			}
			if best.NsPerOp == 0 || res.NsPerOp < best.NsPerOp {
				best = res
			}
		}
		best.SpeedupSeed = round2(float64(seedBaseline.NsPerOp) / float64(best.NsPerOp))
		report.Modes = append(report.Modes, best)
		fmt.Printf("%-16s %12d ns/op %12.0f tuples/sec %8d allocs/op  %.2fx vs seed\n",
			best.Mode, best.NsPerOp, best.TuplesPerSec, best.AllocsOp, best.SpeedupSeed)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runJoinOnce builds and runs the benchmark join in one mode.
func runJoinOnce(mode string, workers int) (modeResult, error) {
	cat, err := tpch.Generate(tpch.Config{SF: 0.01, Seed: 1, Tables: []string{"orders", "lineitem"}})
	if err != nil {
		return modeResult{}, err
	}
	orders := cat.MustLookup("orders").Table
	lineitem := cat.MustLookup("lineitem").Table
	bs := exec.NewScan(orders, "")
	ps := exec.NewScan(lineitem, "")
	j := exec.NewHashJoin(bs, ps,
		bs.Schema().MustResolve("orders", "orderkey"),
		ps.Schema().MustResolve("lineitem", "orderkey"))
	plan.EstimateCardinalities(j, cat)
	if workers > 0 {
		j.SetParallelism(workers)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var n int64
	if workers > 0 {
		n, err = exec.RunBatch(j)
	} else {
		n, err = exec.Run(j)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return modeResult{}, err
	}
	tuples := n + j.BuildRows() + j.ProbeRows()
	res := modeResult{
		Mode:         mode,
		Workers:      workers,
		NsPerOp:      elapsed.Nanoseconds(),
		TuplesPerSec: round2(float64(tuples) / elapsed.Seconds()),
		BytesPerOp:   after.TotalAlloc - before.TotalAlloc,
		AllocsOp:     after.Mallocs - before.Mallocs,
	}
	exec.Walk(j, func(op exec.Operator) {
		st := op.Stats()
		res.TuplesMoved += st.Emitted.Load()
		res.Batches += st.Batches.Load()
		res.SpillFiles += st.SpillFiles.Load()
		res.SpillBytes += st.SpillBytes.Load()
	})
	return res, nil
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
