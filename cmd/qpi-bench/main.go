// Command qpi-bench regenerates the paper's evaluation tables and
// figures (Figures 3-6 and 8, Tables 1-4 of Mishra & Koudas, ICDE 2007).
//
// Usage:
//
//	qpi-bench                          # run everything at default scale
//	qpi-bench -experiment fig4         # one experiment
//	qpi-bench -paper                   # the paper's original scale
//	qpi-bench -rows 150000 -sf 1       # custom scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"qpi/internal/catalog"
	"qpi/internal/data"
	"qpi/internal/disk"
	"qpi/internal/exec"
	"qpi/internal/experiments"
	"qpi/internal/expr"
	"qpi/internal/plan"
	"qpi/internal/storage"
	"qpi/internal/tpch"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"experiment id: all, "+strings.Join(experiments.Names(), ", "))
		paper    = flag.Bool("paper", false, "use the paper's original scale (slow, needs RAM)")
		rows     = flag.Int("rows", 0, "override synthetic table row count")
		sf       = flag.Float64("sf", 0, "override TPC-H scale factor")
		sample   = flag.Float64("sample", 0, "override block-sample fraction")
		seed     = flag.Int64("seed", 0, "override random seed")
		jsonOut  = flag.Bool("json", false, "benchmark join execution modes and write BENCH_join.json instead of running experiments")
		jsonFile = flag.String("json-file", "BENCH_join.json", "output path for -json (baseline path for -guard)")
		guard    = flag.Bool("guard", false, "re-measure the join modes and fail on regression against the recorded BENCH_join.json")
		tol      = flag.Float64("tolerance", 0.15, "allowed fractional regression in -guard mode (ns/op and allocs/op)")
		maxprocs = flag.Int("gomaxprocs", 0, "GOMAXPROCS for the benchmark (0 = runtime default, i.e. NumCPU)")
		sweep    = flag.String("batchsize", "256,1024,4096", "comma-separated batch sizes swept in -json mode (recorded under batch_sweep; empty disables)")
		modes    = flag.String("modes", "", "comma-separated mode filter for -json (e.g. batch,columnar; empty = all)")
		matrix   = flag.Bool("matrix", false, "with -json: also measure the SF-scaled worker matrix (SF 0.1/1, cached under testdata/benchcache/); with -guard: validate the recorded matrix cells too")
	)
	flag.Parse()
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	if *guard {
		if err := guardJoinBench(*jsonFile, *tol, *matrix); err != nil {
			fmt.Fprintf(os.Stderr, "qpi-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := writeJoinBench(*jsonFile, *sweep, *modes, *matrix); err != nil {
			fmt.Fprintf(os.Stderr, "qpi-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *sf > 0 {
		cfg.SF = *sf
	}
	if *sample > 0 {
		cfg.SampleFraction = *sample
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	names := experiments.Names()
	if *experiment != "all" {
		names = strings.Split(*experiment, ",")
	}
	fmt.Printf("qpi-bench: rows=%d domains=%d/%d sf=%g sample=%g%% seed=%d\n\n",
		cfg.Rows, cfg.DomainSmall, cfg.DomainLarge, cfg.SF, 100*cfg.SampleFraction, cfg.Seed)
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(strings.TrimSpace(name), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qpi-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// seedBaseline is the recorded tuple-at-a-time BenchmarkJoinBaseline result
// of the pre-batching engine on the reference machine (Intel Xeon 2.10GHz,
// 1 CPU): the number the batch-execution speedups are measured against.
var seedBaseline = modeResult{
	Mode:       "seed-tuple (recorded reference)",
	NsPerOp:    109566440,
	BytesPerOp: 28398736,
	AllocsOp:   75518,
}

// modeResult is one execution mode's measurement on the orders ⋈ lineitem
// workload.
type modeResult struct {
	Mode         string  `json:"mode"`
	Workers      int     `json:"workers,omitempty"`
	NsPerOp      int64   `json:"ns_per_op"`
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
	BytesPerOp   uint64  `json:"bytes_per_op,omitempty"`
	AllocsOp     uint64  `json:"allocs_per_op"`
	SpeedupSeed  float64 `json:"speedup_vs_seed,omitempty"`
	// Per-phase split: the grace join is two partition passes (build +
	// probe scatter) followed by the join phase. The join phase is the part
	// the partition-parallel workers accelerate, so it is reported — with
	// its own throughput over probe tuples — separately from the
	// scatter-bound partition phase.
	PartitionNs      int64   `json:"partition_ns,omitempty"`
	JoinNs           int64   `json:"join_ns,omitempty"`
	JoinTuplesPerSec float64 `json:"join_tuples_per_sec,omitempty"`
	// Observability counters (qpi.Metrics roll-up of the measured run):
	// absolute work moved per op, so throughput regressions from the
	// tracing/metrics instrumentation are attributable across PRs.
	TuplesMoved int64 `json:"tuples_moved,omitempty"`
	Batches     int64 `json:"batches,omitempty"`
	SpillFiles  int64 `json:"spill_files,omitempty"`
	SpillBytes  int64 `json:"spill_bytes,omitempty"`
}

// sweepResult is one (batch size, mode) cell of the batch-size sweep:
// the evidence behind data.DefaultBatchSize.
type sweepResult struct {
	BatchSize        int     `json:"batch_size"`
	Mode             string  `json:"mode"`
	NsPerOp          int64   `json:"ns_per_op"`
	JoinTuplesPerSec float64 `json:"join_tuples_per_sec,omitempty"`
	AllocsOp         uint64  `json:"allocs_per_op"`
}

// filterResult is one cell of the string-filter microbench: the same
// LIKE-prefix AND <= predicate evaluated per-tuple (regexp + Value
// construction per row) versus through the vectorized sel-in/sel-out
// string kernels. TPC-H SF 0.01 carries no string columns, so the
// kernels are measured over a synthetic customer-key table.
type filterResult struct {
	Mode       string  `json:"mode"`
	Rows       int     `json:"rows"`
	Selected   int64   `json:"selected"`
	NsPerOp    int64   `json:"ns_per_op"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	AllocsOp   uint64  `json:"allocs_per_op"`
}

// matrixResult is one (scale factor, worker count) cell of the SF-scaled
// matrix: the scaling story of the morsel-driven scans, measured on
// workloads big enough that per-claim overheads amortize.
type matrixResult struct {
	SF               float64 `json:"sf"`
	Mode             string  `json:"mode"`
	Workers          int     `json:"workers"`
	NsPerOp          int64   `json:"ns_per_op"`
	TuplesPerSec     float64 `json:"tuples_per_sec,omitempty"`
	JoinTuplesPerSec float64 `json:"join_tuples_per_sec,omitempty"`
	AllocsOp         uint64  `json:"allocs_per_op"`
	// SpeedupW1 is this cell's wall-time speedup over the 1-worker cell
	// at the same scale factor.
	SpeedupW1 float64 `json:"speedup_vs_w1,omitempty"`
}

// joinBenchReport is the BENCH_join.json document. The guard compares
// Modes (and SFMatrix when asked); BatchSweep is informational (it varies
// data.SetBatchSize, which the default-configuration guard runs never
// do).
type joinBenchReport struct {
	Benchmark    string         `json:"benchmark"`
	CPU          string         `json:"cpu"`
	NumCPU       int            `json:"num_cpu"`
	MaxProcs     int            `json:"gomaxprocs"`
	Runs         int            `json:"runs_per_mode"`
	SeedBaseline modeResult     `json:"seed_baseline"`
	Modes        []modeResult   `json:"modes"`
	BatchSweep   []sweepResult  `json:"batch_sweep,omitempty"`
	StringFilter []filterResult `json:"string_filter,omitempty"`
	SFMatrix     []matrixResult `json:"sf_matrix,omitempty"`
}

// benchMode identifies one execution mode of the measured sweep.
type benchMode struct {
	name     string
	workers  int
	columnar bool
	morsel   bool
	// rowdrain drains a columnar join through the row-at-a-time Next
	// (the colpart mode): partitions stay lane-native, output rows are
	// materialized one at a time — the difftest crossing, measured so
	// its cost is pinned.
	rowdrain bool
}

// benchModes is the measured sweep: the tuple, serial-batch and columnar
// references plus the partition-parallel join phase at worker counts
// {2, 4, NumCPU} (deduplicated, ascending). Worker counts above
// GOMAXPROCS still parallelize the join phase (goroutines time-slice);
// the recorded gomaxprocs field says what hardware parallelism backed
// each number.
func benchModes() []benchMode {
	modes := []benchMode{
		{name: "tuple"},
		{name: "batch", workers: 1},
		{name: "columnar", columnar: true},
		{name: "colpart", columnar: true, rowdrain: true},
	}
	seen := map[int]bool{}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		if w < 2 || seen[w] {
			continue
		}
		seen[w] = true
		modes = append(modes, benchMode{name: fmt.Sprintf("parallel-w%d", w), workers: w})
	}
	// Morsel-driven scans: the partition passes themselves fan out (the
	// parallel-w modes above parallelize only the join phase's partition
	// work plus the single-reader scatter).
	for _, w := range []int{2, 4} {
		modes = append(modes, benchMode{name: fmt.Sprintf("morsel-w%d", w), workers: w, morsel: true})
	}
	return modes
}

// writeJoinBench measures the grace hash join's execution modes on the
// BenchmarkJoinBaseline workload (TPC-H SF 0.01 orders ⋈ lineitem) and
// writes the results as JSON. Best-of-N timing, allocation deltas from
// runtime.MemStats.
func writeJoinBench(path, sweep, modes string, matrix bool) error {
	const runs = 7
	report := joinBenchReport{
		Benchmark:    "grace hash join, TPC-H SF=0.01 orders ⋈ lineitem (no estimators)",
		CPU:          runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		MaxProcs:     runtime.GOMAXPROCS(0),
		Runs:         runs,
		SeedBaseline: seedBaseline,
	}
	keep := map[string]bool{}
	for _, f := range strings.Split(modes, ",") {
		if f = strings.TrimSpace(f); f != "" {
			keep[f] = true
		}
	}
	for _, m := range benchModes() {
		if len(keep) > 0 && !keep[m.name] {
			continue
		}
		best, err := bestJoinRun(m, runs)
		if err != nil {
			return err
		}
		report.Modes = append(report.Modes, best)
		fmt.Printf("%-14s %11d ns/op (partition %d + join %d) %11.0f join-tuples/sec %7d allocs/op  %.2fx vs seed\n",
			best.Mode, best.NsPerOp, best.PartitionNs, best.JoinNs,
			best.JoinTuplesPerSec, best.AllocsOp, best.SpeedupSeed)
	}
	var err error
	if report.BatchSweep, err = runBatchSweep(sweep, runs); err != nil {
		return err
	}
	if report.StringFilter, err = runStringFilterBench(runs); err != nil {
		return err
	}
	if matrix {
		if report.SFMatrix, err = runSFMatrix(); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runBatchSweep re-measures the two single-threaded span-at-a-time modes
// (batch, columnar) at each requested batch size, restoring the default
// afterwards. The sweep justifies data.DefaultBatchSize empirically.
func runBatchSweep(sweep string, runs int) ([]sweepResult, error) {
	if sweep == "" {
		return nil, nil
	}
	defer data.SetBatchSize(data.DefaultBatchSize)
	var out []sweepResult
	for _, field := range strings.Split(sweep, ",") {
		var size int
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &size); err != nil || size <= 0 {
			return nil, fmt.Errorf("bad -batchsize entry %q", field)
		}
		data.SetBatchSize(size)
		for _, m := range []benchMode{{name: "batch", workers: 1}, {name: "columnar", columnar: true}} {
			best, err := bestJoinRun(m, runs)
			if err != nil {
				return nil, err
			}
			out = append(out, sweepResult{
				BatchSize:        size,
				Mode:             m.name,
				NsPerOp:          best.NsPerOp,
				JoinTuplesPerSec: best.JoinTuplesPerSec,
				AllocsOp:         best.AllocsOp,
			})
			fmt.Printf("sweep bs=%-5d %-9s %11d ns/op %11.0f join-tuples/sec %7d allocs/op\n",
				size, m.name, best.NsPerOp, best.JoinTuplesPerSec, best.AllocsOp)
		}
	}
	return out, nil
}

// stringFilterRows sizes the synthetic string-filter workload.
const stringFilterRows = 200000

// stringFilterTable builds the microbench input: one string key column
// (values shuffled over the domain so branch prediction cannot learn
// the selection) plus an int id.
func stringFilterTable() *storage.Table {
	s := data.NewSchema(
		data.Column{Table: "s", Name: "name", Kind: data.KindString},
		data.Column{Table: "s", Name: "id", Kind: data.KindInt},
	)
	t := storage.NewTable("s", s)
	for i := 0; i < stringFilterRows; i++ {
		key := (i * 7919) % stringFilterRows
		t.MustAppend(data.Tuple{data.Str(fmt.Sprintf("cust-%06d", key)), data.Int(int64(i))})
	}
	return t
}

// stringFilterPred is the measured predicate: a LIKE-prefix kernel
// narrowing to half the rows AND a <= string compare narrowing that to
// a quarter. The per-tuple path runs the compiled regexp and data.Compare
// per row; the vectorized path runs both as lane kernels.
func stringFilterPred() (expr.Expr, error) {
	like, err := expr.NewLike(expr.Col{Index: 0}, "cust-0%", false)
	if err != nil {
		return nil, err
	}
	return expr.AndOf(like,
		expr.Compare(expr.LE, expr.Col{Index: 0}, expr.Lit(data.Str("cust-049999")))), nil
}

// runStringFilterOnce measures one drain of the filter, per-tuple
// (vec=false) or through the columnar kernels (vec=true).
func runStringFilterOnce(tab *storage.Table, vec bool) (filterResult, error) {
	pred, err := stringFilterPred()
	if err != nil {
		return filterResult{}, err
	}
	f := exec.NewFilter(exec.NewScan(tab, ""), pred)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var n int64
	if vec {
		n, err = exec.RunCol(f)
	} else {
		n, err = exec.Run(f)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return filterResult{}, err
	}
	mode := "string-filter-row"
	if vec {
		mode = "string-filter-vec"
	}
	return filterResult{
		Mode:       mode,
		Rows:       stringFilterRows,
		Selected:   n,
		NsPerOp:    elapsed.Nanoseconds(),
		RowsPerSec: round2(float64(stringFilterRows) / elapsed.Seconds()),
		AllocsOp:   after.Mallocs - before.Mallocs,
	}, nil
}

// bestStringFilterRun keeps the fastest of n runs of one mode.
func bestStringFilterRun(tab *storage.Table, vec bool, n int) (filterResult, error) {
	var best filterResult
	for r := 0; r < n; r++ {
		res, err := runStringFilterOnce(tab, vec)
		if err != nil {
			return filterResult{}, err
		}
		if best.NsPerOp == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best, nil
}

// runStringFilterBench measures both string-filter modes best-of-runs
// over one shared table.
func runStringFilterBench(runs int) ([]filterResult, error) {
	tab := stringFilterTable()
	var out []filterResult
	for _, vec := range []bool{false, true} {
		best, err := bestStringFilterRun(tab, vec, runs)
		if err != nil {
			return nil, err
		}
		out = append(out, best)
		fmt.Printf("%-17s %11d ns/op %11.0f rows/sec (%d of %d selected) %7d allocs/op\n",
			best.Mode, best.NsPerOp, best.RowsPerSec, best.Selected, best.Rows, best.AllocsOp)
	}
	return out, nil
}

// guardJoinBench re-measures every mode recorded in the baseline report at
// path and fails when wall time or allocations regressed by more than tol
// (fractional). Modes in the baseline that the current sweep no longer
// produces are skipped with a note, so renaming a mode cannot silently
// disable the guard for the others. With matrix set, the recorded
// sf_matrix cells are re-measured too (the cached tables under
// testdata/benchcache/ make this cheap after the first -json -matrix).
func guardJoinBench(path string, tol float64, matrix bool) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("guard: reading baseline: %w", err)
	}
	var base joinBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("guard: parsing baseline: %w", err)
	}
	// Environment check: a baseline recorded on different hardware or a
	// different GOMAXPROCS is not comparable, and silently "passing"
	// against it would make the guard worthless. Fail loudly and say how
	// to reconcile. (The tol tolerance — default 15%, see -tolerance —
	// absorbs run-to-run scheduler noise on *matching* hardware only; it
	// is far too tight to paper over a hardware or GOMAXPROCS change,
	// which shifts wall time by integer factors.)
	if base.CPU != runtime.GOARCH ||
		(base.NumCPU != 0 && base.NumCPU != runtime.NumCPU()) ||
		base.MaxProcs != runtime.GOMAXPROCS(0) {
		return fmt.Errorf("guard: environment mismatch: baseline %s recorded with cpu=%s num_cpu=%d gomaxprocs=%d, "+
			"current cpu=%s num_cpu=%d gomaxprocs=%d; rerun with -gomaxprocs %d on matching hardware "+
			"or regenerate the baseline with -json",
			path, base.CPU, base.NumCPU, base.MaxProcs,
			runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0), base.MaxProcs)
	}
	current := map[string]benchMode{}
	for _, m := range benchModes() {
		current[m.name] = m
	}
	const runs = 7
	var failures []string
	checked := 0
	check := func(label string, gotNs, baseNs int64, gotAllocs, baseAllocs uint64) {
		checked++
		nsRatio := float64(gotNs) / float64(baseNs)
		allocRatio := float64(gotAllocs) / float64(baseAllocs)
		status := "ok"
		if nsRatio > 1+tol {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %d ns/op vs baseline %d (%.0f%% over, tolerance %.0f%%)",
				label, gotNs, baseNs, 100*(nsRatio-1), 100*tol))
		}
		if allocRatio > 1+tol {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d (%.0f%% over, tolerance %.0f%%)",
				label, gotAllocs, baseAllocs, 100*(allocRatio-1), 100*tol))
		}
		fmt.Printf("%-14s %11d ns/op (baseline %11d, %+5.1f%%) %7d allocs/op (baseline %7d, %+5.1f%%)  %s\n",
			label, gotNs, baseNs, 100*(nsRatio-1),
			gotAllocs, baseAllocs, 100*(allocRatio-1), status)
	}
	for _, b := range base.Modes {
		m, ok := current[b.Mode]
		if !ok {
			fmt.Printf("%-14s skipped (not in current sweep)\n", b.Mode)
			continue
		}
		if err := refuseUnderCored(m.name, m.workers, m.morsel || m.workers > 1); err != nil {
			fmt.Println(err)
			continue
		}
		got, err := bestJoinRun(m, runs)
		if err != nil {
			return err
		}
		check(b.Mode, got.NsPerOp, b.NsPerOp, got.AllocsOp, b.AllocsOp)
	}
	if len(base.StringFilter) > 0 {
		tab := stringFilterTable()
		for _, b := range base.StringFilter {
			got, err := bestStringFilterRun(tab, strings.HasSuffix(b.Mode, "-vec"), runs)
			if err != nil {
				return err
			}
			check(b.Mode, got.NsPerOp, b.NsPerOp, got.AllocsOp, b.AllocsOp)
		}
	}
	if matrix {
		for _, b := range base.SFMatrix {
			label := fmt.Sprintf("sf%g/%s", b.SF, b.Mode)
			if err := refuseUnderCored(label, b.Workers, b.Workers > 1); err != nil {
				fmt.Println(err)
				continue
			}
			got, err := bestMatrixRun(b.SF, b.Workers, 3)
			if err != nil {
				return err
			}
			check(label, got.NsPerOp, b.NsPerOp, got.AllocsOp, b.AllocsOp)
		}
	}
	if checked == 0 {
		return fmt.Errorf("guard: no baseline mode matches the current sweep; regenerate %s with -json", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("guard: %d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// refuseUnderCored returns a loud refusal when a parallel or morsel mode
// would be "validated" with fewer scheduler cores than workers: at
// GOMAXPROCS < workers the workers time-slice one core, so the measured
// figure says nothing about the mode's parallel throughput — comparing
// it against a baseline (or worse, recording it as a parallel speedup)
// is a benchmarking artifact, not a measurement. The mode is skipped,
// never silently passed.
func refuseUnderCored(label string, workers int, parallel bool) error {
	if !parallel || workers <= runtime.GOMAXPROCS(0) {
		return nil
	}
	return fmt.Errorf("%-14s REFUSED: %d workers > GOMAXPROCS %d — time-sliced 'parallel' timings are artifacts; "+
		"validate on a machine with >= %d cores (or -gomaxprocs %d)",
		label, workers, runtime.GOMAXPROCS(0), workers, workers)
}

// bestJoinRun runs one mode n times and keeps the fastest run (allocation
// counts are stable across runs; timing is best-of to shed scheduler
// noise).
func bestJoinRun(m benchMode, n int) (modeResult, error) {
	var best modeResult
	for r := 0; r < n; r++ {
		res, err := runJoinOnce(m)
		if err != nil {
			return modeResult{}, err
		}
		if best.NsPerOp == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	best.SpeedupSeed = round2(float64(seedBaseline.NsPerOp) / float64(best.NsPerOp))
	return best, nil
}

// runJoinOnce builds and runs the benchmark join in one mode on freshly
// generated SF 0.01 tables (the historical BenchmarkJoinBaseline
// workload, regenerated per run so allocator state stays comparable with
// the recorded seed baseline).
func runJoinOnce(m benchMode) (modeResult, error) {
	cat, err := tpch.Generate(tpch.Config{SF: 0.01, Seed: 1, Tables: []string{"orders", "lineitem"}})
	if err != nil {
		return modeResult{}, err
	}
	return runJoinOn(cat.MustLookup("orders").Table, cat.MustLookup("lineitem").Table, cat, m)
}

// runJoinOn runs the orders ⋈ lineitem benchmark join in one mode over
// the given tables, splitting wall time at the partition/join phase
// boundary (OnProbeEnd fires when the probe scatter pass is done, before
// the first join-phase output). cat may be nil (matrix cells run without
// plan-time cardinality annotation; it does not affect execution).
func runJoinOn(orders, lineitem *storage.Table, cat *catalog.Catalog, m benchMode) (modeResult, error) {
	bs := exec.NewScan(orders, "")
	ps := exec.NewScan(lineitem, "")
	j := exec.NewHashJoin(bs, ps,
		bs.Schema().MustResolve("orders", "orderkey"),
		ps.Schema().MustResolve("lineitem", "orderkey"))
	if cat != nil {
		plan.EstimateCardinalities(j, cat)
	}
	workers := m.workers
	if workers > 0 {
		j.SetParallelism(workers)
	}
	if m.columnar {
		j.SetColumnar(true)
	}
	if m.morsel {
		j.SetMorsel(true)
	}
	var err error
	var partitionDone time.Time
	j.OnProbeEnd = func() { partitionDone = time.Now() }
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var n int64
	switch {
	case m.columnar && m.rowdrain:
		n, err = exec.Run(j)
	case m.columnar:
		n, err = exec.RunCol(j)
	case workers > 0:
		n, err = exec.RunBatch(j)
	default:
		n, err = exec.Run(j)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return modeResult{}, err
	}
	tuples := n + j.BuildRows() + j.ProbeRows()
	res := modeResult{
		Mode:         m.name,
		Workers:      workers,
		NsPerOp:      elapsed.Nanoseconds(),
		TuplesPerSec: round2(float64(tuples) / elapsed.Seconds()),
		BytesPerOp:   after.TotalAlloc - before.TotalAlloc,
		AllocsOp:     after.Mallocs - before.Mallocs,
	}
	if !partitionDone.IsZero() {
		res.PartitionNs = partitionDone.Sub(start).Nanoseconds()
		res.JoinNs = res.NsPerOp - res.PartitionNs
		if res.JoinNs > 0 {
			res.JoinTuplesPerSec = round2(float64(j.ProbeRows()) / (float64(res.JoinNs) / 1e9))
		}
	}
	exec.Walk(j, func(op exec.Operator) {
		st := op.Stats()
		res.TuplesMoved += st.Emitted.Load()
		res.Batches += st.Batches.Load()
		res.SpillFiles += st.SpillFiles.Load()
		res.SpillBytes += st.SpillBytes.Load()
	})
	return res, nil
}

// matrixMode maps a matrix worker count to its execution mode: the
// 1-worker cell is the serial span-at-a-time reference; every wider cell
// runs the morsel-driven scans.
func matrixMode(workers int) benchMode {
	if workers <= 1 {
		return benchMode{name: "batch-w1", workers: 1}
	}
	return benchMode{name: fmt.Sprintf("morsel-w%d", workers), workers: workers, morsel: true}
}

// bestMatrixRun measures one (scale factor, worker count) cell best-of-n
// over the cached tables.
func bestMatrixRun(sf float64, workers, runs int) (matrixResult, error) {
	orders, lineitem, err := benchTables(sf)
	if err != nil {
		return matrixResult{}, err
	}
	m := matrixMode(workers)
	var best modeResult
	for r := 0; r < runs; r++ {
		res, err := runJoinOn(orders, lineitem, nil, m)
		if err != nil {
			return matrixResult{}, err
		}
		if best.NsPerOp == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return matrixResult{
		SF:               sf,
		Mode:             m.name,
		Workers:          m.workers,
		NsPerOp:          best.NsPerOp,
		TuplesPerSec:     best.TuplesPerSec,
		JoinTuplesPerSec: best.JoinTuplesPerSec,
		AllocsOp:         best.AllocsOp,
	}, nil
}

// runSFMatrix measures the SF-scaled worker matrix: scale factors big
// enough that per-morsel claim overheads amortize, worker sweep
// {1, 2, 4, NumCPU} deduplicated. Speedups are against the 1-worker cell
// at the same scale factor.
func runSFMatrix() ([]matrixResult, error) {
	const runs = 3
	var out []matrixResult
	for _, sf := range []float64{0.1, 1} {
		var w1ns int64
		seen := map[int]bool{}
		for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
			if w < 1 || seen[w] {
				continue
			}
			seen[w] = true
			cell, err := bestMatrixRun(sf, w, runs)
			if err != nil {
				return nil, err
			}
			if w == 1 {
				w1ns = cell.NsPerOp
			} else if w1ns > 0 {
				cell.SpeedupW1 = round2(float64(w1ns) / float64(cell.NsPerOp))
			}
			out = append(out, cell)
			fmt.Printf("matrix sf=%-4g %-10s %11d ns/op %11.0f join-tuples/sec %8d allocs/op  %.2fx vs w1\n",
				sf, cell.Mode, cell.NsPerOp, cell.JoinTuplesPerSec, cell.AllocsOp, cell.SpeedupW1)
		}
	}
	return out, nil
}

// benchTableCache shares loaded matrix tables across cells at the same
// scale factor within one process.
var benchTableCache = map[float64][2]*storage.Table{}

// benchTables returns the orders/lineitem pair at the given scale factor.
// Tables are generated once and serialized under testdata/benchcache/
// (SF 1 generation takes about a minute; reloading the cache takes
// seconds), so repeated -matrix and -guard runs measure identical data.
func benchTables(sf float64) (*storage.Table, *storage.Table, error) {
	if c, ok := benchTableCache[sf]; ok {
		return c[0], c[1], nil
	}
	dir := filepath.Join("testdata", "benchcache")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names := [2]string{"orders", "lineitem"}
	var paths [2]string
	missing := false
	for i, name := range names {
		paths[i] = filepath.Join(dir, fmt.Sprintf("sf%g_%s.qpt", sf, name))
		if _, err := os.Stat(paths[i]); err != nil {
			missing = true
		}
	}
	if missing {
		fmt.Printf("matrix: generating TPC-H SF %g into %s ...\n", sf, dir)
		cat, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1, Tables: names[:]})
		if err != nil {
			return nil, nil, err
		}
		for i, name := range names {
			if err := disk.WriteTable(paths[i], cat.MustLookup(name).Table); err != nil {
				return nil, nil, err
			}
		}
	}
	var tabs [2]*storage.Table
	for i, name := range names {
		tf, err := disk.OpenTable(paths[i])
		if err != nil {
			return nil, nil, err
		}
		t, lerr := tf.Load(name)
		if cerr := tf.Close(); lerr == nil {
			lerr = cerr
		}
		if lerr != nil {
			return nil, nil, lerr
		}
		tabs[i] = t
	}
	benchTableCache[sf] = tabs
	return tabs[0], tabs[1], nil
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
