// Command qpi-loadtest drives a live qpi-server over HTTP with many
// concurrent query streams and reports sustained throughput, latency
// percentiles, plan-cache effectiveness and admission-control behaviour
// — then verifies the service unwound cleanly (no goroutine growth, no
// open spill descriptors).
//
// Usage:
//
//	qpi-loadtest                      # 1000 streams for 10s, print report
//	qpi-loadtest -json                # also write BENCH_serve.json
//	qpi-loadtest -guard               # regression-check BENCH_serve.json
//	qpi-loadtest -streams 200 -duration 5s
//
// The workload mixes a cheap cached aggregate (most traffic), a spilling
// join and a deadline-bounded join that exercises the cancellation path,
// all against two generated skewed tables.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qpi"
	"qpi/internal/service"
	"qpi/internal/vfs"
)

const (
	quickSQL = "SELECT COUNT(*) c FROM r WHERE r.k < 50"
	joinSQL  = "SELECT r.k FROM r JOIN s ON r.k = s.k"
)

// serveBenchReport is the BENCH_serve.json document. The guard compares
// throughput and p99 latency after checking the recorded environment;
// the leak fields are invariants (always asserted, never tolerated).
type serveBenchReport struct {
	Benchmark string `json:"benchmark"`
	CPU       string `json:"cpu"`
	NumCPU    int    `json:"num_cpu"`
	MaxProcs  int    `json:"gomaxprocs"`
	GoVersion string `json:"go_version"`

	Streams     int     `json:"streams"`
	DurationSec float64 `json:"duration_sec"`
	Rows        int     `json:"table_rows"`

	Requests    int64   `json:"requests"`
	Completed   int64   `json:"completed"`
	Cancelled   int64   `json:"cancelled"`
	Rejected429 int64   `json:"rejected_429"`
	Errors      int64   `json:"errors"`
	Throughput  float64 `json:"requests_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`

	CacheHitRate     float64 `json:"plan_cache_hit_rate"`
	BudgetBytes      int64   `json:"admission_budget_bytes"`
	PeakGrantedBytes int64   `json:"admission_peak_granted_bytes"`
	PeakQueueDepth   int     `json:"admission_peak_queue_depth"`
	SpillBytes       int64   `json:"spill_bytes"`

	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
	OpenSpillFiles   int `json:"open_spill_files_after"`
}

func main() {
	var (
		streams  = flag.Int("streams", 1000, "concurrent query streams")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		rows     = flag.Int("rows", 5000, "rows per generated table")
		budget   = flag.Int64("budget", 32<<20, "global spill-memory budget (bytes)")
		qBudget  = flag.Int64("query-budget", 1<<20, "per-query spill budget (bytes)")
		jsonOut  = flag.Bool("json", false, "write the report to -json-file")
		jsonFile = flag.String("json-file", "BENCH_serve.json", "report path for -json (baseline for -guard)")
		guard    = flag.Bool("guard", false, "regression-check against the recorded baseline instead of writing")
		tol      = flag.Float64("tolerance", 0.5, "allowed fractional regression in -guard mode (throughput and p99; wall-clock numbers on a shared box are noisy)")
	)
	flag.Parse()

	if *guard {
		if err := guardServeBench(*jsonFile, *tol); err != nil {
			fmt.Fprintf(os.Stderr, "qpi-loadtest: %v\n", err)
			os.Exit(1)
		}
		return
	}
	report, err := runLoad(*streams, *duration, *rows, *budget, *qBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qpi-loadtest: %v\n", err)
		os.Exit(1)
	}
	printReport(report)
	if *jsonOut {
		buf, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(*jsonFile, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "qpi-loadtest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonFile)
	}
}

// runLoad stands up a real server on a loopback listener and drives it
// with `streams` concurrent keep-alive connections for `duration`.
func runLoad(streams int, duration time.Duration, rows int, budget, qBudget int64) (*serveBenchReport, error) {
	eng := qpi.New()
	eng.MustCreateSkewedTable("r", rows, 1, qpi.SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 1})
	eng.MustCreateSkewedTable("s", rows, 2, qpi.SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 2})

	fault := vfs.NewFaultFS(nil)
	svc, err := service.New(service.Config{
		Engine:       eng,
		GlobalBudget: budget,
		QueryBudget:  qBudget,
		MaxQueued:    2 * streams, // queueing, not rejection, is the backpressure under test
		QueueTimeout: time.Minute,
		SpillFS:      fault,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        streams + 64,
		MaxIdleConnsPerHost: streams + 64,
	}}

	// Warm the plan cache so the measured window reflects steady state.
	for _, q := range []string{quickSQL, joinSQL} {
		if _, code, err := post(client, base, q, 0); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("warm-up %q: status %d, %v", q, code, err)
		}
	}

	goroutinesBefore := runtime.NumGoroutine()
	var requests, rejected, errors atomic.Int64
	latencies := make([][]float64, streams)
	deadline := time.Now().Add(duration)

	var wg sync.WaitGroup
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]float64, 0, 256)
			for i := 0; time.Now().Before(deadline); i++ {
				// 8:1:1 quick aggregate : spilling join : deadline-bounded join.
				sql, deadlineMs := quickSQL, 0
				switch (w + i) % 10 {
				case 3:
					sql = joinSQL
				case 7:
					sql, deadlineMs = joinSQL, 20
				}
				start := time.Now()
				_, code, err := post(client, base, sql, deadlineMs)
				elapsed := time.Since(start)
				switch {
				case err != nil:
					errors.Add(1)
				case code == http.StatusOK:
					requests.Add(1)
					mine = append(mine, float64(elapsed)/float64(time.Millisecond))
				case code == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					errors.Add(1)
				}
			}
			latencies[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := duration.Seconds()

	st := svc.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = svc.Shutdown(ctx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("shutdown did not drain: %w", err)
	}
	srv.Close()
	client.CloseIdleConnections()

	// Let connection goroutines unwind before sampling the leak check.
	goroutinesAfter := runtime.NumGoroutine()
	for settle := time.Now().Add(10 * time.Second); goroutinesAfter > goroutinesBefore && time.Now().Before(settle); {
		time.Sleep(50 * time.Millisecond)
		runtime.GC()
		goroutinesAfter = runtime.NumGoroutine()
	}

	all := make([]float64, 0, requests.Load())
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)

	report := &serveBenchReport{
		Benchmark:        fmt.Sprintf("qpi-server loopback HTTP, %d streams, mixed aggregate/join/deadline workload", streams),
		CPU:              runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		MaxProcs:         runtime.GOMAXPROCS(0),
		GoVersion:        runtime.Version(),
		Streams:          streams,
		DurationSec:      elapsed,
		Rows:             rows,
		Requests:         requests.Load(),
		Completed:        st.Completed,
		Cancelled:        st.Cancelled,
		Rejected429:      rejected.Load(),
		Errors:           errors.Load(),
		Throughput:       float64(requests.Load()) / elapsed,
		P50Ms:            percentile(all, 0.50),
		P95Ms:            percentile(all, 0.95),
		P99Ms:            percentile(all, 0.99),
		CacheHitRate:     st.PlanCache.HitRate,
		BudgetBytes:      st.Admission.Budget,
		PeakGrantedBytes: st.Admission.PeakGranted,
		PeakQueueDepth:   st.Admission.PeakQueueDepth,
		SpillBytes:       st.SpillBytes,
		GoroutinesBefore: goroutinesBefore,
		GoroutinesAfter:  goroutinesAfter,
		OpenSpillFiles:   fault.OpenFiles(),
	}
	return report, checkInvariants(report, st)
}

// checkInvariants enforces the outcomes that must hold on any machine,
// regardless of wall-clock numbers.
func checkInvariants(r *serveBenchReport, st service.Stats) error {
	switch {
	case r.Errors > 0:
		return fmt.Errorf("%d requests failed with unexpected statuses or transport errors", r.Errors)
	case st.Failed > 0:
		return fmt.Errorf("%d queries finished in the failed state", st.Failed)
	case st.Admission.PeakGranted > st.Admission.Budget:
		return fmt.Errorf("admission invariant violated: peak granted %d > budget %d",
			st.Admission.PeakGranted, st.Admission.Budget)
	case r.OpenSpillFiles != 0:
		return fmt.Errorf("descriptor leak: %d spill files still open", r.OpenSpillFiles)
	case r.GoroutinesAfter > r.GoroutinesBefore+5:
		return fmt.Errorf("goroutine leak: %d before the load, %d after shutdown",
			r.GoroutinesBefore, r.GoroutinesAfter)
	case r.SpillBytes == 0:
		return fmt.Errorf("workload never spilled: the join/budget mix is not exercising the memory governor")
	}
	return nil
}

// guardServeBench re-runs a shortened load and fails on regression
// against the committed baseline. Serving throughput only means
// something on hardware comparable to the baseline's, so a mismatched
// environment skips — loudly, so CI output shows the guard did not run.
func guardServeBench(path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("guard: reading baseline: %w", err)
	}
	var baseline serveBenchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("guard: parsing baseline: %w", err)
	}
	if baseline.CPU != runtime.GOARCH || baseline.NumCPU != runtime.NumCPU() ||
		baseline.MaxProcs != runtime.GOMAXPROCS(0) {
		fmt.Printf("SKIP serve guard: environment mismatch — baseline %s recorded with cpu=%s num_cpu=%d gomaxprocs=%d, this machine is cpu=%s num_cpu=%d gomaxprocs=%d; regenerate with qpi-loadtest -json to guard here\n",
			path, baseline.CPU, baseline.NumCPU, baseline.MaxProcs,
			runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0))
		return nil
	}

	dur := time.Duration(baseline.DurationSec * float64(time.Second))
	if dur > 5*time.Second {
		dur = 5 * time.Second
	}
	report, err := runLoad(baseline.Streams, dur, baseline.Rows, baseline.BudgetBytes, 1<<20)
	if err != nil {
		return fmt.Errorf("guard: %w", err)
	}
	printReport(report)
	if floor := baseline.Throughput * (1 - tol); report.Throughput < floor {
		return fmt.Errorf("guard: throughput regression: %.0f req/s < floor %.0f (baseline %.0f, tolerance %.0f%%)",
			report.Throughput, floor, baseline.Throughput, tol*100)
	}
	if ceil := baseline.P99Ms * (1 + tol); report.P99Ms > ceil {
		return fmt.Errorf("guard: p99 latency regression: %.1fms > ceiling %.1fms (baseline %.1fms, tolerance %.0f%%)",
			report.P99Ms, ceil, baseline.P99Ms, tol*100)
	}
	fmt.Printf("serve guard OK: %.0f req/s (baseline %.0f), p99 %.1fms (baseline %.1fms)\n",
		report.Throughput, baseline.Throughput, report.P99Ms, baseline.P99Ms)
	return nil
}

func post(client *http.Client, base, sql string, deadlineMs int) (state string, code int, err error) {
	body, _ := json.Marshal(map[string]any{"sql": sql, "deadline_ms": deadlineMs})
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var res struct {
		State string `json:"state"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&res)
	return res.State, resp.StatusCode, nil
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func printReport(r *serveBenchReport) {
	fmt.Printf("%s\n", r.Benchmark)
	fmt.Printf("  env           %s, %d cpu, GOMAXPROCS %d, %s\n", r.CPU, r.NumCPU, r.MaxProcs, r.GoVersion)
	fmt.Printf("  window        %.1fs, %d streams over %d-row tables\n", r.DurationSec, r.Streams, r.Rows)
	fmt.Printf("  requests      %d ok (%d done, %d cancelled), %d rejected 429, %d errors\n",
		r.Requests, r.Completed, r.Cancelled, r.Rejected429, r.Errors)
	fmt.Printf("  throughput    %.0f req/s\n", r.Throughput)
	fmt.Printf("  latency       p50 %.1fms  p95 %.1fms  p99 %.1fms\n", r.P50Ms, r.P95Ms, r.P99Ms)
	fmt.Printf("  plan cache    %.1f%% hit rate\n", 100*r.CacheHitRate)
	fmt.Printf("  admission     peak %s of %s granted, peak queue %d\n",
		fmtBytes(r.PeakGrantedBytes), fmtBytes(r.BudgetBytes), r.PeakQueueDepth)
	fmt.Printf("  spill         %s through the governed budget\n", fmtBytes(r.SpillBytes))
	fmt.Printf("  leak check    goroutines %d → %d, open spill files %d\n",
		r.GoroutinesBefore, r.GoroutinesAfter, r.OpenSpillFiles)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
