// Command qpi-server runs the multi-tenant query service: an HTTP
// server executing SQL over an in-memory engine with a prepared-
// statement plan cache, admission control under a global spill-memory
// budget, per-query deadlines, and the progress dashboard as the fleet
// view.
//
// Usage:
//
//	qpi-server -addr :8080 -tpch 0.05                 # TPC-H data
//	qpi-server -db ./tables                           # *.qpit directory
//	qpi-server -demo                                  # small demo tables
//	qpi-server -budget 256MB -query-budget 16MB ...   # memory governor
//
// Endpoints: POST /v1/prepare, /v1/query, /v1/cancel; GET /v1/sessions,
// /v1/stats, /metrics, /dashboard, /debug/vars, /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qpi"
	"qpi/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		tpchSF       = flag.Float64("tpch", 0, "load TPC-H-style tables at this scale factor")
		tpchSkew     = flag.Float64("skew", 1, "Zipf skew for TPC-H foreign keys (with -tpch)")
		dbDir        = flag.String("db", "", "load every *.qpit table file in this directory")
		demo         = flag.Bool("demo", false, "load two small skewed demo tables r and s")
		budget       = flag.String("budget", "0", "global spill-memory budget (e.g. 256MB; 0 disables admission control)")
		queryBudget  = flag.String("query-budget", "32MB", "default per-query spill budget")
		maxQueued    = flag.Int("queue", 256, "admission queue capacity (0 rejects at saturation)")
		queueTimeout = flag.Duration("queue-timeout", 10*time.Second, "max admission queue wait")
		deadline     = flag.Duration("deadline", 0, "default per-query deadline (0 = none)")
		cacheSize    = flag.Int("plan-cache", 256, "prepared-statement cache capacity")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()
	if err := run(*addr, *tpchSF, *tpchSkew, *dbDir, *demo, *budget, *queryBudget,
		*maxQueued, *queueTimeout, *deadline, *cacheSize, *drainWait); err != nil {
		fmt.Fprintf(os.Stderr, "qpi-server: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, tpchSF, tpchSkew float64, dbDir string, demo bool,
	budgetStr, queryBudgetStr string, maxQueued int, queueTimeout, deadline time.Duration,
	cacheSize int, drainWait time.Duration) error {

	globalBudget, err := parseBytes(budgetStr)
	if err != nil {
		return fmt.Errorf("-budget: %w", err)
	}
	perQuery, err := parseBytes(queryBudgetStr)
	if err != nil {
		return fmt.Errorf("-query-budget: %w", err)
	}

	eng := qpi.New()
	switch {
	case tpchSF > 0:
		fmt.Printf("loading TPC-H SF %g (skew %g)...\n", tpchSF, tpchSkew)
		if err := eng.LoadTPCH(qpi.TPCHConfig{SF: tpchSF, Seed: 1, Skew: tpchSkew}); err != nil {
			return err
		}
	case dbDir != "":
		names, err := eng.LoadDatabase(dbDir)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d tables from %s\n", len(names), dbDir)
	case demo:
		eng.MustCreateSkewedTable("r", 50000, 1, qpi.SkewedColumn{Name: "k", Domain: 2000, Zipf: 1})
		eng.MustCreateSkewedTable("s", 50000, 2, qpi.SkewedColumn{Name: "k", Domain: 2000, Zipf: 1, PermSeed: 9})
	default:
		return fmt.Errorf("no data: pass -tpch SF, -db DIR or -demo")
	}
	for _, name := range eng.Tables() {
		rows, _ := eng.TableRows(name)
		fmt.Printf("  %-12s %8d rows\n", name, rows)
	}

	svc, err := service.New(service.Config{
		Engine:          eng,
		GlobalBudget:    globalBudget,
		QueryBudget:     perQuery,
		MaxQueued:       maxQueued,
		QueueTimeout:    queueTimeout,
		DefaultDeadline: deadline,
		PlanCacheSize:   cacheSize,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if globalBudget > 0 {
		fmt.Printf("memory governor: %s global / %s per query, queue %d (timeout %v)\n",
			fmtBytes(globalBudget), fmtBytes(perQuery), maxQueued, queueTimeout)
	} else {
		fmt.Println("memory governor: disabled (-budget 0)")
	}
	fmt.Printf("qpi-server listening on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("\n%v: draining (up to %v)...\n", sig, drainWait)
	case err := <-errc:
		return err
	}

	// Graceful shutdown: stop accepting, drain in-flight queries, then
	// drain HTTP connections. The service cancels stragglers when the
	// drain window expires.
	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Printf("drain expired: cancelled remaining sessions (%v)\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	st := svc.Stats()
	fmt.Printf("served %d queries (%d cancelled, %d failed), plan-cache hit rate %.1f%%\n",
		st.Completed+st.Cancelled+st.Failed, st.Cancelled, st.Failed, 100*st.PlanCache.HitRate)
	return nil
}

// parseBytes parses "4096", "64KB", "32MB", "2GB" (case-insensitive,
// optional "iB" spellings) into bytes.
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			mult = u.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
