package qpi

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServeLifecycle covers the additions to the observability server:
// Mount on a caller-provided mux, the /healthz probe, and graceful
// Shutdown alongside Close.
func TestServeLifecycle(t *testing.T) {
	e := testEngine(t)
	d := NewDashboard()
	q := e.MustQuery("SELECT COUNT(*) c FROM r")
	if err := d.Register("lifecycle", q); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(nil); err != nil {
		t.Fatal(err)
	}

	// Mount shares a mux with application routes.
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "app")
	})
	d.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/app"); code != 200 || body != "app" {
		t.Errorf("/app = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `qpi_query_progress{query="lifecycle"} 1`) {
		t.Errorf("/metrics = %d, missing lifecycle progress", code)
	}
	if code, body := get("/dashboard"); code != 200 || !strings.Contains(body, `"lifecycle"`) {
		t.Errorf("/dashboard = %d %q", code, body)
	}

	// Shutdown drains a listener-owning Server gracefully.
	srv, err := d.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
