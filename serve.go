package qpi

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
)

// DefaultDashboard is the registry exposed by the package-level Serve.
// Register long-running queries on it (or on a private Dashboard served
// with Dashboard.Serve) to make them scrapable.
var DefaultDashboard = NewDashboard()

// Server exposes a dashboard's registry over HTTP:
//
//	/metrics     Prometheus-style text exposition of every registered
//	             query's counters and gauges
//	/dashboard   the registry snapshot plus overall progress, as JSON
//	/debug/vars  the standard expvar endpoint (includes the "qpi" var)
//	/healthz     liveness probe: "ok\n" with status 200
//
// Close stops the listener immediately (in-flight scrapes finish);
// Shutdown drains gracefully.
type Server struct {
	d   *Dashboard
	ln  net.Listener
	srv *http.Server
}

// Serve starts an observability server for DefaultDashboard on addr
// (":0" picks a free port; Addr reports it).
func Serve(addr string) (*Server, error) { return DefaultDashboard.Serve(addr) }

// Mount registers the dashboard's observability endpoints (/metrics,
// /dashboard, /debug/vars, /healthz) on a caller-provided mux, so the
// qpi surface can share an *http.ServeMux with an application's own
// handlers instead of owning a listener.
func (d *Dashboard) Mount(mux *http.ServeMux) {
	publishExpvar(d)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/dashboard", d.handleDashboard)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", HandleHealthz)
}

// HandleHealthz is the liveness probe handler mounted at /healthz.
func HandleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// Serve starts an observability server for this dashboard on addr.
func (d *Dashboard) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	d.Mount(mux)
	s := &Server{d: d, ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately. In-flight scrapes finish; idle
// connections are closed.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the server gracefully: the listener closes, in-flight
// requests run to completion, and the call returns when every
// connection has drained or ctx expires (returning ctx's error, with
// remaining connections then closed as in Close).
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// expvarOnce guards the process-global expvar name: the first dashboard
// served publishes its snapshot under "qpi".
var expvarOnce sync.Once

func publishExpvar(d *Dashboard) {
	expvarOnce.Do(func() {
		expvar.Publish("qpi", expvar.Func(func() any {
			return struct {
				Queries []QueryStatus `json:"queries"`
				Overall float64       `json:"overall"`
			}{d.Snapshot(), d.Overall()}
		}))
	})
}

func (d *Dashboard) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = d.WriteJSON(w)
}

// WriteJSON writes the registry snapshot plus overall progress as JSON —
// the /dashboard payload, exposed so service layers can embed it in
// composite endpoints.
func (d *Dashboard) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(struct {
		Queries []QueryStatus `json:"queries"`
		Overall float64       `json:"overall"`
	}{d.Snapshot(), d.Overall()})
}

// promMetric describes one exported metric family.
type promMetric struct {
	name, help, typ string
	value           func(m Metrics) float64
}

var promMetrics = []promMetric{
	{"qpi_query_progress", "gnm progress estimate C(Q)/T(Q) in [0,1].", "gauge",
		func(m Metrics) float64 { return m.Progress }},
	{"qpi_query_work_done", "C(Q): getnext() calls observed so far.", "gauge",
		func(m Metrics) float64 { return m.C }},
	{"qpi_query_work_total", "T(Q): current estimate of total getnext() calls.", "gauge",
		func(m Metrics) float64 { return m.T }},
	{"qpi_query_tuples_total", "Tuples emitted across all operators.", "counter",
		func(m Metrics) float64 { return float64(m.Tuples) }},
	{"qpi_query_batches_total", "Batches emitted in batch-at-a-time execution.", "counter",
		func(m Metrics) float64 { return float64(m.Batches) }},
	{"qpi_query_spill_files_total", "Spill files created by grace joins and external sorts.", "counter",
		func(m Metrics) float64 { return float64(m.SpillFiles) }},
	{"qpi_query_spill_bytes_total", "Bytes written to spill files.", "counter",
		func(m Metrics) float64 { return float64(m.SpillBytes) }},
	{"qpi_query_estimator_recomputes_total", "Online-estimator publish boundaries.", "counter",
		func(m Metrics) float64 { return float64(m.EstimatorRecomputes) }},
	{"qpi_query_histogram_probes_total", "Join-histogram probes by the chain estimators.", "counter",
		func(m Metrics) float64 { return float64(m.HistogramProbes) }},
	{"qpi_reopt_considered_total", "Mid-query re-optimization boundary evaluations.", "counter",
		func(m Metrics) float64 { return float64(m.ReoptConsidered) }},
	{"qpi_reopt_applied_total", "Mid-query plan restructurings committed.", "counter",
		func(m Metrics) float64 { return float64(m.ReoptApplied) }},
	{"qpi_reopt_skipped_total", "Re-optimization evaluations refused (barrier, push-down, shape).", "counter",
		func(m Metrics) float64 { return float64(m.ReoptSkipped) }},
	{"qpi_reopt_scouts_total", "Re-optimizer scout sketch passes over base relations.", "counter",
		func(m Metrics) float64 { return float64(m.ReoptScouts) }},
}

func (d *Dashboard) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	d.WriteMetrics(w)
}

// WriteMetrics writes the Prometheus-style text exposition of every
// registered query — the /metrics payload, exposed so service layers
// can append their own metric families to the same scrape.
func (d *Dashboard) WriteMetrics(w io.Writer) {
	labels, qs := d.queriesSnapshot()
	metrics := make([]Metrics, len(qs))
	for i, q := range qs {
		metrics[i] = q.Metrics()
	}
	for _, pm := range promMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", pm.name, pm.help, pm.name, pm.typ)
		for i, m := range metrics {
			fmt.Fprintf(w, "%s{query=%q} %g\n", pm.name, labels[i], pm.value(m))
		}
	}
	fmt.Fprintf(w, "# HELP qpi_pipeline_work_done Per-pipeline C.\n# TYPE qpi_pipeline_work_done gauge\n")
	for i, m := range metrics {
		for _, p := range m.Pipelines {
			fmt.Fprintf(w, "qpi_pipeline_work_done{query=%q,pipeline=\"%d\"} %g\n",
				labels[i], p.ID, p.C)
		}
	}
	fmt.Fprintf(w, "# HELP qpi_pipeline_work_total Per-pipeline T estimate.\n# TYPE qpi_pipeline_work_total gauge\n")
	for i, m := range metrics {
		for _, p := range m.Pipelines {
			fmt.Fprintf(w, "qpi_pipeline_work_total{query=%q,pipeline=\"%d\"} %g\n",
				labels[i], p.ID, p.T)
		}
	}
	fmt.Fprintf(w, "# HELP qpi_overall_progress Workload-wide gnm progress.\n# TYPE qpi_overall_progress gauge\n")
	fmt.Fprintf(w, "qpi_overall_progress %g\n", d.Overall())
}
