package qpi

import (
	"strings"
	"testing"
)

func TestLoadCSVBasics(t *testing.T) {
	e := New()
	in := "id,amount,name\n1,2.5,alice\n2,,bob\n3,9.25,\n"
	n, err := e.LoadCSV("t", strings.NewReader(in), true,
		ColumnDef{Name: "id", Type: "int"},
		ColumnDef{Name: "amount", Type: "float"},
		ColumnDef{Name: "name", Type: "string"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d rows", n)
	}
	q := e.MustQuery("SELECT id, amount, name FROM t ORDER BY id")
	rows, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1].(float64) != 2.5 || rows[0][2].(string) != "alice" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][1] != nil { // empty numeric cell → NULL
		t.Errorf("row 1 amount = %v, want nil", rows[1][1])
	}
	if rows[2][2].(string) != "" {
		t.Errorf("row 2 name = %v, want empty string", rows[2][2])
	}
}

func TestLoadCSVNoHeader(t *testing.T) {
	e := New()
	n, err := e.LoadCSV("t", strings.NewReader("5\n6\n"), false,
		ColumnDef{Name: "k", Type: "int"})
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	e := New()
	if _, err := e.LoadCSV("t", strings.NewReader("1\n"), false); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("abc\n"), false,
		ColumnDef{Name: "k", Type: "int"}); err == nil {
		t.Error("bad integer accepted")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("x\n"), false,
		ColumnDef{Name: "k", Type: "float"}); err == nil {
		t.Error("bad float accepted")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("1,2\n"), false,
		ColumnDef{Name: "k", Type: "int"}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := e.LoadCSV("t", strings.NewReader("1\n"), false,
		ColumnDef{Name: "k", Type: "blob"}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestLoadCSVJoinsWithGeneratedData(t *testing.T) {
	e := New()
	e.MustCreateSkewedTable("s", 100, 1, SkewedColumn{Name: "k", Domain: 10, Zipf: 0})
	if _, err := e.LoadCSV("c", strings.NewReader("1\n2\n3\n"), false,
		ColumnDef{Name: "k", Type: "int"}); err != nil {
		t.Fatal(err)
	}
	q := e.MustQuery("SELECT s.k FROM s JOIN c ON s.k = c.k")
	n, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("join of CSV and generated data empty")
	}
}

func TestSaveAndLoadTableFile(t *testing.T) {
	e := New()
	e.MustCreateSkewedTable("t", 500, 1, SkewedColumn{Name: "k", Domain: 40, Zipf: 1})
	path := t.TempDir() + "/t.qpit"
	if err := e.SaveTable("t", path); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveTable("missing", path); err == nil {
		t.Error("saving missing table should fail")
	}

	e2 := New()
	n, err := e2.LoadTableFile(path, "u")
	if err != nil || n != 500 {
		t.Fatalf("LoadTableFile = %d, %v", n, err)
	}
	rows, err := e2.MustQuery("SELECT COUNT(*) c FROM u").Rows()
	if err != nil || rows[0][0].(int64) != 500 {
		t.Fatalf("count = %v, %v", rows, err)
	}
	if _, err := e2.LoadTableFile(t.TempDir()+"/nope", ""); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestSaveAndLoadDatabase(t *testing.T) {
	e := New()
	e.MustCreateSkewedTable("aa", 100, 1, SkewedColumn{Name: "k", Domain: 10, Zipf: 0})
	e.MustCreateSkewedTable("bb", 200, 2, SkewedColumn{Name: "k", Domain: 10, Zipf: 0})
	dir := t.TempDir()
	if err := e.SaveDatabase(dir); err != nil {
		t.Fatal(err)
	}
	e2 := New()
	loaded, err := e2.LoadDatabase(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded[0] != "aa" || loaded[1] != "bb" {
		t.Fatalf("loaded = %v", loaded)
	}
	n, err := e2.MustQuery("SELECT aa.k FROM aa JOIN bb ON aa.k = bb.k").Run(nil)
	if err != nil || n == 0 {
		t.Fatalf("join over reloaded db: %d, %v", n, err)
	}
	if _, err := e2.LoadDatabase(dir + "/missing"); err == nil {
		t.Error("missing dir accepted")
	}
}
