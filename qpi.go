// Package qpi is a lightweight online framework for SQL query progress
// indicators, reproducing Mishra & Koudas, "A Lightweight Online
// Framework For Query Progress Indicators" (ICDE 2007).
//
// It bundles a small in-memory relational executor (scans with
// block-level random sampling, grace hash joins, sort-merge joins,
// nested-loops joins, hash/sort aggregation) with the paper's online
// cardinality estimation framework: exact frequency histograms built
// during operator preprocessing phases refine the cardinality estimates
// of every join in a pipeline — converging to the exact values before the
// joins produce output — and GEE/MLE estimators track the number of
// groups of aggregations. A progress monitor combines the estimates under
// the getnext() model of query progress.
//
// Quick start:
//
//	eng := qpi.New()
//	eng.MustCreateSkewedTable("r", 100000, 1, qpi.SkewedColumn{Name: "k", Domain: 5000, Zipf: 1})
//	eng.MustCreateSkewedTable("s", 100000, 2, qpi.SkewedColumn{Name: "k", Domain: 5000, Zipf: 1, PermSeed: 9})
//	q := eng.MustQuery("SELECT r.k, COUNT(*) c FROM r JOIN s ON r.k = s.k GROUP BY r.k")
//	rows, _ := q.Run(ctx, qpi.WithProgress(func(r qpi.Report) {
//	    fmt.Printf("\r%5.1f%%", 100*r.Progress)
//	}, 10000))
//
// Observability composes through run options and channels: WithTrace
// records a replayable event stream of operator phase spans and
// estimator refinements, WithMetrics and Query.Metrics expose counter
// roll-ups, Query.Subscribe streams progress snapshots to other
// goroutines, and Serve exports a registered workload as Prometheus-style
// text and JSON over HTTP.
package qpi

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"qpi/internal/catalog"
	"qpi/internal/data"
	"qpi/internal/disk"
	"qpi/internal/storage"
	"qpi/internal/tpch"
)

// Engine owns a catalog of in-memory tables and compiles queries against
// them.
type Engine struct {
	cat *catalog.Catalog
}

// New creates an empty engine.
func New() *Engine {
	return &Engine{cat: catalog.New()}
}

// ColumnDef declares one column of a manually created table.
type ColumnDef struct {
	Name string
	// Type is one of "int", "float", "string".
	Type string
}

// Table is a handle to a stored table for row insertion.
type Table struct {
	t   *storage.Table
	eng *Engine
}

// CreateTable creates an empty table. Call Table.Insert to add rows and
// Engine.Analyze (or compile a query) to compute statistics.
func (e *Engine) CreateTable(name string, cols ...ColumnDef) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("qpi: table name must not be empty")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("qpi: table %q needs at least one column", name)
	}
	dcols := make([]data.Column, len(cols))
	for i, c := range cols {
		var k data.Kind
		switch c.Type {
		case "int", "bigint", "":
			k = data.KindInt
		case "float", "double":
			k = data.KindFloat
		case "string", "varchar", "text":
			k = data.KindString
		default:
			return nil, fmt.Errorf("qpi: column %s: unknown type %q", c.Name, c.Type)
		}
		dcols[i] = data.Column{Table: name, Name: c.Name, Kind: k}
	}
	t := storage.NewTable(name, data.NewSchema(dcols...))
	e.cat.RegisterWithoutStats(t)
	return &Table{t: t, eng: e}, nil
}

// Insert appends one row. Values may be int/int64, float64, string, or
// nil (NULL).
func (t *Table) Insert(vals ...any) error {
	tu := make(data.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			tu[i] = data.Null()
		case int:
			tu[i] = data.Int(int64(x))
		case int64:
			tu[i] = data.Int(x)
		case float64:
			tu[i] = data.Float(x)
		case string:
			tu[i] = data.Str(x)
		default:
			return fmt.Errorf("qpi: unsupported value type %T", v)
		}
	}
	if err := t.t.Append(tu); err != nil {
		return err
	}
	// Row counts (and therefore optimizer estimates and any cached plan
	// keyed on the catalog version) are stale now.
	t.eng.cat.Bump()
	return nil
}

// Rows returns the number of rows in the table.
func (t *Table) Rows() int { return t.t.NumRows() }

// Analyze (re)computes optimizer statistics for a table. Compile uses
// whatever statistics exist at compile time.
func (e *Engine) Analyze(name string) error {
	entry, err := e.cat.Lookup(name)
	if err != nil {
		return err
	}
	entry.Stats = catalog.Analyze(entry.Table)
	e.cat.Bump()
	return nil
}

// CatalogVersion returns the engine catalog's mutation version: it
// increases on every CreateTable/Insert/Analyze/load, so a prepared
// statement captured at version v is stale exactly when
// CatalogVersion() != v. See Engine.Prepare.
func (e *Engine) CatalogVersion() int64 { return e.cat.Version() }

// SkewedColumn declares one Zipf-distributed integer column of a
// synthetic table (the paper's C_{z,n} workloads): values drawn from
// [1..Domain] with skew Zipf; PermSeed selects which values are hot, so
// equal-skew tables with different PermSeeds model the paper's C¹, C², …
// worst case for join estimation.
type SkewedColumn struct {
	Name     string
	Domain   int
	Zipf     float64
	PermSeed int64
}

// CreateSkewedTable generates and registers a synthetic table with a
// sequential "rowid" column followed by the given skewed columns, and
// analyzes it.
func (e *Engine) CreateSkewedTable(name string, rows int, seed int64, cols ...SkewedColumn) error {
	specs := make([]tpch.ColumnSpec, len(cols))
	for i, c := range cols {
		specs[i] = tpch.ColumnSpec{Name: c.Name, Domain: c.Domain, Z: c.Zipf, PermSeed: c.PermSeed}
	}
	t, err := tpch.SkewedTable(name, rows, seed, specs...)
	if err != nil {
		return err
	}
	e.cat.Register(t)
	return nil
}

// MustCreateSkewedTable is CreateSkewedTable, panicking on error.
func (e *Engine) MustCreateSkewedTable(name string, rows int, seed int64, cols ...SkewedColumn) {
	if err := e.CreateSkewedTable(name, rows, seed, cols...); err != nil {
		panic(err)
	}
}

// TPCHConfig configures TPC-H-style data generation.
type TPCHConfig struct {
	// SF is the scale factor (1.0 = 150K customers / 6M lineitems).
	SF float64
	// Seed drives all random draws.
	Seed int64
	// Skew applies Zipfian skew to foreign-key columns (0 = uniform).
	Skew float64
	// Tables restricts generation (all when empty).
	Tables []string
}

// LoadTPCH generates TPC-H-style tables into the engine's catalog.
func (e *Engine) LoadTPCH(cfg TPCHConfig) error {
	cat, err := tpch.Generate(tpch.Config{SF: cfg.SF, Seed: cfg.Seed, Skew: cfg.Skew, Tables: cfg.Tables})
	if err != nil {
		return err
	}
	for _, name := range cat.Names() {
		entry := cat.MustLookup(name)
		e.cat.Register(entry.Table)
	}
	return nil
}

// MustLoadTPCH is LoadTPCH, panicking on error.
func (e *Engine) MustLoadTPCH(cfg TPCHConfig) {
	if err := e.LoadTPCH(cfg); err != nil {
		panic(err)
	}
}

// SaveTable persists a registered table to a block-structured binary file
// (see internal/disk for the format).
func (e *Engine) SaveTable(name, path string) error {
	entry, err := e.cat.Lookup(name)
	if err != nil {
		return err
	}
	return disk.WriteTable(path, entry.Table)
}

// LoadTableFile loads a table file written by SaveTable (or qpi-datagen)
// into memory and registers it under name ("" keeps the stored name),
// computing statistics.
func (e *Engine) LoadTableFile(path, name string) (int, error) {
	tf, err := disk.OpenTable(path)
	if err != nil {
		return 0, err
	}
	defer tf.Close()
	t, err := tf.Load(name)
	if err != nil {
		return 0, err
	}
	e.cat.Register(t)
	return t.NumRows(), nil
}

// SaveDatabase persists every registered table into dir (created if
// needed) as <table>.qpit files.
func (e *Engine) SaveDatabase(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range e.cat.Names() {
		if err := e.SaveTable(name, filepath.Join(dir, name+".qpit")); err != nil {
			return err
		}
	}
	return nil
}

// LoadDatabase loads every *.qpit file in dir into the engine's catalog
// (registered under the file's base name) and returns the table names
// loaded.
func (e *Engine) LoadDatabase(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var loaded []string
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".qpit") {
			continue
		}
		name := strings.TrimSuffix(ent.Name(), ".qpit")
		if _, err := e.LoadTableFile(filepath.Join(dir, ent.Name()), name); err != nil {
			return loaded, fmt.Errorf("qpi: loading %s: %w", ent.Name(), err)
		}
		loaded = append(loaded, name)
	}
	sort.Strings(loaded)
	return loaded, nil
}

// Tables returns the names of the registered tables, sorted.
func (e *Engine) Tables() []string { return e.cat.Names() }

// TableRows returns the row count of a table.
func (e *Engine) TableRows(name string) (int, error) {
	entry, err := e.cat.Lookup(name)
	if err != nil {
		return 0, err
	}
	return entry.Table.NumRows(), nil
}
