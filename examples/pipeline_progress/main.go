// Pipeline progress: a TPC-H-Q8-shaped query (the paper's Figure 8
// workload) over skewed data, with a live progress bar driven by the
// online framework, and the per-join estimates printed as they converge.
package main

import (
	"fmt"
	"strings"

	"qpi"
)

func main() {
	eng := qpi.New()
	fmt.Println("generating TPC-H tables (SF 0.05, Zipf 2 foreign keys)...")
	eng.MustLoadTPCH(qpi.TPCHConfig{SF: 0.05, Seed: 42, Skew: 2})

	// Build side: region ⋈ nation ⋈ customer ⋈ orders.
	jRN := qpi.HashJoin(eng.MustScan("region"), eng.MustScan("nation", "n1"),
		qpi.Col("region", "regionkey"), qpi.Col("n1", "regionkey"))
	jRNC := qpi.HashJoin(jRN, eng.MustScan("customer"),
		qpi.Col("n1", "nationkey"), qpi.Col("customer", "nationkey"))
	ordersSub := qpi.HashJoin(jRNC, eng.MustScan("orders"),
		qpi.Col("customer", "custkey"), qpi.Col("orders", "custkey"))

	// Supplier side: nation ⋈ supplier.
	supplierSub := qpi.HashJoin(eng.MustScan("nation", "n2"), eng.MustScan("supplier"),
		qpi.Col("n2", "nationkey"), qpi.Col("supplier", "nationkey"))

	// Main pipeline: three hash joins probing lineitem.
	j3 := qpi.HashJoin(ordersSub, eng.MustScan("lineitem"),
		qpi.Col("orders", "orderkey"), qpi.Col("lineitem", "orderkey"))
	j2 := qpi.HashJoin(supplierSub, j3,
		qpi.Col("supplier", "suppkey"), qpi.Col("lineitem", "suppkey"))
	j1 := qpi.HashJoin(eng.MustScan("part"), j2,
		qpi.Col("part", "partkey"), qpi.Col("lineitem", "partkey"))

	root := qpi.MustGroupBy(j1, []qpi.Ref{qpi.Col("orders", "orderdate")},
		qpi.Agg{Func: qpi.CountStar, As: "cnt"})

	q := eng.MustCompile(root, qpi.WithSampling(0.1, 7))
	groups, err := q.Run(nil, qpi.WithProgress(func(r qpi.Report) {
		bar := int(40 * r.Progress)
		running := 0
		for _, p := range r.Pipelines {
			if p.Started && !p.Done {
				running = p.ID
			}
		}
		fmt.Printf("\r[%-40s] %5.1f%%  pipeline P%d active ",
			strings.Repeat("=", bar), 100*r.Progress, running)
	}, 20000))
	fmt.Println()
	if err != nil {
		panic(err)
	}
	fmt.Printf("query returned %d groups\n\n", groups)

	fmt.Println("final estimates (all joins converged during preprocessing passes):")
	for _, e := range q.Estimates() {
		if strings.HasPrefix(e.Operator, "HashJoin") {
			fmt.Printf("  %-55s true=%-9d est=%-9.0f src=%s\n",
				strings.Repeat(" ", e.Depth)+e.Operator, e.Emitted, e.Estimate, e.Source)
		}
	}
}
