// Quickstart: create two tables, join them with a progress indicator,
// and inspect the online cardinality estimates.
package main

import (
	"fmt"

	"qpi"
)

func main() {
	eng := qpi.New()

	// Two skewed tables whose hot values do not line up — the worst case
	// for traditional optimizer estimates.
	eng.MustCreateSkewedTable("r", 50000, 1,
		qpi.SkewedColumn{Name: "k", Domain: 2000, Zipf: 1, PermSeed: 11})
	eng.MustCreateSkewedTable("s", 80000, 2,
		qpi.SkewedColumn{Name: "k", Domain: 2000, Zipf: 1, PermSeed: 22})

	// r ⋈ s with r as the build input.
	join := qpi.HashJoin(eng.MustScan("r"), eng.MustScan("s"),
		qpi.Col("r", "k"), qpi.Col("s", "k"))

	q := eng.MustCompile(join)
	fmt.Println("plan before execution:")
	fmt.Println(q.Explain())

	rows, err := q.Run(nil, qpi.WithProgress(func(rep qpi.Report) {
		fmt.Printf("progress %5.1f%%  (C=%.0f of estimated T=%.0f)\n",
			100*rep.Progress, rep.C, rep.T)
	}, 40000))
	if err != nil {
		panic(err)
	}

	oe, _ := q.EstimateOf("HashJoin")
	est, source := oe.Estimate, oe.Source
	fmt.Printf("\njoin produced %d rows; final estimate %.0f (source %q)\n",
		rows, est, source)
	fmt.Println("\nThe 'once' estimate converged to the exact join size during the")
	fmt.Println("probe partitioning pass — before the join emitted its first row.")
}
