// GROUP BY cardinality estimation: how the framework estimates the number
// of groups online, and how the γ² chooser switches between the GEE and
// MLE estimators with the skew of the data (the paper's §4.2 / Table 1).
package main

import (
	"fmt"

	"qpi"
)

func runGroupBy(z float64) {
	eng := qpi.New()
	eng.MustCreateSkewedTable("t", 200000, int64(z*10+1),
		qpi.SkewedColumn{Name: "g", Domain: 20000, Zipf: z, PermSeed: 5})

	agg := qpi.MustGroupBy(eng.MustScan("t"), []qpi.Ref{qpi.Col("t", "g")},
		qpi.Agg{Func: qpi.CountStar, As: "cnt"})
	q := eng.MustCompile(agg)

	fmt.Printf("Zipf z=%g over 20000 possible groups:\n", z)
	var lastSource string
	_, err := q.Run(nil, qpi.WithProgress(func(rep qpi.Report) {
		for _, e := range q.Estimates() {
			if e.Depth == 0 { // the aggregation
				if e.Source != lastSource && e.Source != "optimizer" {
					fmt.Printf("  chooser selected %q\n", e.Source)
					lastSource = e.Source
				}
			}
		}
	}, 20000))
	if err != nil {
		panic(err)
	}
	for _, e := range q.Estimates() {
		if e.Depth == 0 {
			fmt.Printf("  true groups %d, final estimate %.0f (source %q)\n\n",
				e.Emitted, e.Estimate, e.Source)
		}
	}
}

func main() {
	fmt.Println("Low-skew data has many similar-frequency groups: the γ² measure")
	fmt.Println("stays below τ=10 and the chooser runs the MLE estimator. High skew")
	fmt.Println("drives γ² up and selects GEE. Either way the estimate converges to")
	fmt.Println("the exact group count when the input has been read.")
	fmt.Println()
	for _, z := range []float64{0, 1, 2} {
		runGroupBy(z)
	}
}
