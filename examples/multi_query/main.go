// Multi-query progress: a workload dashboard over several queries (the
// multi-query direction of the paper's citation [19]). Queries run one
// after another here (the engine is single-threaded per query), but the
// dashboard semantics are exactly what a DBA console would poll.
package main

import (
	"fmt"

	"qpi"
)

func main() {
	eng := qpi.New()
	eng.MustLoadTPCH(qpi.TPCHConfig{SF: 0.02, Seed: 1, Skew: 1})

	queries := map[string]string{
		"orders-per-customer": "SELECT custkey, COUNT(*) c FROM orders GROUP BY custkey",
		"big-join":            "SELECT o.orderkey FROM orders o JOIN lineitem l ON l.orderkey = o.orderkey",
		"suppliers-by-nation": "SELECT nationkey, COUNT(*) c FROM supplier GROUP BY nationkey HAVING COUNT(*) > 1",
	}

	dash := qpi.NewDashboard()
	compiled := map[string]*qpi.Query{}
	for label, sqlText := range queries {
		q := eng.MustQuery(sqlText)
		compiled[label] = q
		if err := dash.Register(label, q); err != nil {
			panic(err)
		}
	}

	fmt.Println("initial dashboard:")
	fmt.Println(dash.String())

	for label, q := range compiled {
		n, err := q.Run(nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("finished %q (%d rows); workload overall %.0f%%\n",
			label, n, 100*dash.Overall())
	}

	fmt.Println("\nfinal dashboard:")
	fmt.Println(dash.String())
}
