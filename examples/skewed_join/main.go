// Skewed join estimation: the paper's Figure 4 scenario as a library
// user sees it. The same skewed join runs under the three progress
// estimators (once / dne / byte); the reported progress trajectories show
// the baselines drifting while the online framework stays calibrated.
package main

import (
	"fmt"

	"qpi"
)

// run executes the join under one estimator mode and returns progress
// samples on a fixed work grid.
func run(mode qpi.EstimatorMode) []float64 {
	eng := qpi.New()
	eng.MustCreateSkewedTable("r", 60000, 1,
		qpi.SkewedColumn{Name: "k", Domain: 25000, Zipf: 1, PermSeed: 77})
	eng.MustCreateSkewedTable("s", 60000, 2,
		qpi.SkewedColumn{Name: "k", Domain: 25000, Zipf: 1, PermSeed: 99})
	join := qpi.HashJoin(eng.MustScan("r"), eng.MustScan("s"),
		qpi.Col("r", "k"), qpi.Col("s", "k"))
	q := eng.MustCompile(join, qpi.WithMode(mode))
	var samples []float64
	if _, err := q.Run(nil, qpi.WithProgress(func(rep qpi.Report) {
		samples = append(samples, rep.Progress)
	}, 5000)); err != nil {
		panic(err)
	}
	return samples
}

func main() {
	once := run(qpi.Once)
	dne := run(qpi.DNE)
	byteE := run(qpi.Byte)

	n := len(once)
	if len(dne) < n {
		n = len(dne)
	}
	if len(byteE) < n {
		n = len(byteE)
	}
	fmt.Println("actual   once     dne      byte     (estimated progress)")
	step := n / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		actual := float64(i+1) / float64(n)
		fmt.Printf("%6.2f   %6.3f   %6.3f   %6.3f\n", actual, once[i], dne[i], byteE[i])
	}
	mad := func(s []float64) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			actual := float64(i+1) / float64(n)
			d := s[i] - actual
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / float64(n)
	}
	fmt.Printf("\nmean |estimated - actual| progress:\n")
	fmt.Printf("  once: %.4f\n  dne:  %.4f\n  byte: %.4f\n", mad(once), mad(dne), mad(byteE))
}
