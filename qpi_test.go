package qpi

import (
	"math"
	"strings"
	"testing"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.MustCreateSkewedTable("r", 3000, 1,
		SkewedColumn{Name: "k", Domain: 100, Zipf: 1, PermSeed: 11})
	e.MustCreateSkewedTable("s", 4000, 2,
		SkewedColumn{Name: "k", Domain: 100, Zipf: 1, PermSeed: 22})
	return e
}

func TestCreateTableAndInsert(t *testing.T) {
	e := New()
	tb, err := e.CreateTable("t",
		ColumnDef{Name: "a", Type: "int"},
		ColumnDef{Name: "b", Type: "float"},
		ColumnDef{Name: "c", Type: "string"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(1, 2.5, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(nil, 0.0, ""); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	if err := tb.Insert(struct{}{}, 0.0, ""); err == nil {
		t.Error("unsupported type accepted")
	}
	if err := e.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	if err := e.Analyze("missing"); err == nil {
		t.Error("Analyze of missing table should fail")
	}
}

func TestCreateTableValidation(t *testing.T) {
	e := New()
	if _, err := e.CreateTable(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := e.CreateTable("t"); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := e.CreateTable("t", ColumnDef{Name: "a", Type: "blob"}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestScanAndFilterQuery(t *testing.T) {
	e := testEngine(t)
	n, err := e.Scan("r", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := n.Filter(Le(Col("r", "k"), 50))
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[1].(int64) > 50 {
			t.Fatalf("filter leaked row %v", r)
		}
	}
	if len(rows) == 0 {
		t.Error("no rows survived")
	}
}

func TestHashJoinQueryWithProgress(t *testing.T) {
	e := testEngine(t)
	j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	q := e.MustCompile(j)
	var reports []Report
	n, err := q.Run(nil, WithProgress(func(r Report) { reports = append(reports, r) }, 500))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("join produced nothing")
	}
	if len(reports) < 5 {
		t.Fatalf("only %d progress reports", len(reports))
	}
	last := reports[len(reports)-1]
	if math.Abs(last.Progress-1) > 1e-9 {
		t.Errorf("final progress = %g", last.Progress)
	}
	if len(last.Pipelines) != 2 {
		t.Errorf("pipelines = %d", len(last.Pipelines))
	}
	// The join estimate must have converged to the exact size during the
	// probe pass.
	oe, _ := q.EstimateOf("")
	est, src := oe.Estimate, oe.Source
	if est != float64(n) {
		t.Errorf("estimate %g != rows %d", est, n)
	}
	if src != "once-exact" {
		t.Errorf("source = %q", src)
	}
}

func TestGroupByQuery(t *testing.T) {
	e := testEngine(t)
	g, err := GroupBy(e.MustScan("r"), []Ref{Col("r", "k")},
		Agg{Func: CountStar, As: "cnt"},
		Agg{Func: Sum, Col: Col("r", "rowid"), As: "s"},
	)
	if err != nil {
		t.Fatal(err)
	}
	q := e.MustCompile(g)
	rows, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	var totalCnt int64
	for _, r := range rows {
		totalCnt += r[1].(int64)
	}
	if totalCnt != 3000 {
		t.Errorf("counts sum to %d, want 3000", totalCnt)
	}
	cols := q.Columns()
	if len(cols) != 3 || cols[1] != "cnt" {
		t.Errorf("columns = %v", cols)
	}
}

func TestSortMergeJoinQuery(t *testing.T) {
	e := testEngine(t)
	hj := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	qh := e.MustCompile(hj)
	nh, err := qh.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	mj := SortMergeJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	qm := e.MustCompile(mj)
	nm, err := qm.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if nh != nm {
		t.Errorf("hash join %d rows vs sort-merge %d", nh, nm)
	}
}

func TestIndexedNLJoinQuery(t *testing.T) {
	e := testEngine(t)
	j := IndexedNLJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	q := e.MustCompile(j)
	n, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	hj := HashJoin(e.MustScan("s"), e.MustScan("r"), Col("s", "k"), Col("r", "k"))
	n2, err := e.MustCompile(hj).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != n2 {
		t.Errorf("NL join %d vs hash join %d", n, n2)
	}
}

func TestCompileModesAndSampling(t *testing.T) {
	e := testEngine(t)
	for _, mode := range []EstimatorMode{Once, DNE, Byte} {
		j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
		q, err := e.Compile(j, WithMode(mode), WithSampling(0.1, 7))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Run(nil); err != nil {
			t.Fatal(err)
		}
		if p := q.Progress(); math.Abs(p-1) > 1e-9 {
			t.Errorf("mode %d: final progress %g", mode, p)
		}
	}
	j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	if _, err := e.Compile(j, WithSampling(3, 1)); err == nil {
		t.Error("invalid sampling fraction accepted")
	}
}

func TestWithoutEstimators(t *testing.T) {
	e := testEngine(t)
	j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	q := e.MustCompile(j, WithoutEstimators())
	if q.att != nil {
		t.Error("estimators attached despite WithoutEstimators")
	}
	if _, err := q.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestExplainContainsOperators(t *testing.T) {
	e := testEngine(t)
	j := HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k"))
	q := e.MustCompile(j)
	out := q.Explain()
	if !strings.Contains(out, "HashJoin") || !strings.Contains(out, "Scan(r)") {
		t.Errorf("Explain = %q", out)
	}
}

func TestLoadTPCH(t *testing.T) {
	e := New()
	e.MustLoadTPCH(TPCHConfig{SF: 0.005, Seed: 1, Tables: []string{"orders", "customer"}})
	names := e.Tables()
	if len(names) != 2 {
		t.Fatalf("tables = %v", names)
	}
	rows, err := e.TableRows("orders")
	if err != nil || rows != 7500 {
		t.Errorf("orders rows = %d, %v", rows, err)
	}
	if _, err := e.TableRows("nope"); err == nil {
		t.Error("missing table should error")
	}
	if err := e.LoadTPCH(TPCHConfig{SF: -1}); err == nil {
		t.Error("bad SF accepted")
	}
}

func TestErrorPaths(t *testing.T) {
	e := New()
	if _, err := e.Scan("missing", ""); err != nil {
		// expected
	} else {
		t.Error("scan of missing table should fail")
	}
	if _, err := e.Compile(nil); err == nil {
		t.Error("nil plan accepted")
	}
	e2 := testEngine(t)
	n := e2.MustScan("r")
	if _, err := n.Filter(Eq(Col("r", "nope"), 1)); err == nil {
		t.Error("filter on missing column accepted")
	}
	if _, err := n.Project(Col("r", "nope")); err == nil {
		t.Error("project of missing column accepted")
	}
	if _, err := GroupBy(n, []Ref{Col("r", "nope")}); err == nil {
		t.Error("group by missing column accepted")
	}
	if _, err := GroupBy(n, []Ref{Col("r", "k")}, Agg{Func: "median", Col: Col("r", "k")}); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestPipelineChainThroughPublicAPI(t *testing.T) {
	// Three-way chain through the builder: estimates for both joins
	// converge during the bottom probe pass.
	e := New()
	e.MustCreateSkewedTable("a", 1000, 1, SkewedColumn{Name: "x", Domain: 50, Zipf: 1, PermSeed: 1})
	e.MustCreateSkewedTable("b", 1000, 2, SkewedColumn{Name: "x", Domain: 50, Zipf: 1, PermSeed: 2})
	e.MustCreateSkewedTable("c", 1000, 3, SkewedColumn{Name: "x", Domain: 50, Zipf: 1, PermSeed: 3})
	lower := HashJoin(e.MustScan("b"), e.MustScan("c"), Col("b", "x"), Col("c", "x"))
	upper := HashJoin(e.MustScan("a"), lower, Col("a", "x"), Col("c", "x"))
	q := e.MustCompile(upper)
	n, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	oe, _ := q.EstimateOf("")
	est, src := oe.Estimate, oe.Source
	if est != float64(n) || src != "once-exact" {
		t.Errorf("top join estimate %g (%s), want exact %d", est, src, n)
	}
}

func TestProjectAndLimit(t *testing.T) {
	e := testEngine(t)
	n, err := e.MustScan("r").Project(Col("r", "k"))
	if err != nil {
		t.Fatal(err)
	}
	q := e.MustCompile(n.Limit(7))
	rows, err := q.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || len(rows[0]) != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestCondCombinators(t *testing.T) {
	e := testEngine(t)
	n := e.MustScan("r")
	and, err := n.Filter(And(Ge(Col("r", "k"), 10), Le(Col("r", "k"), 20)))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.MustCompile(and).Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		k := r[1].(int64)
		if k < 10 || k > 20 {
			t.Fatalf("AND filter leaked %d", k)
		}
	}
	or, err := n.Filter(Or(Eq(Col("r", "k"), 1), Eq(Col("r", "k"), 2)))
	if err != nil {
		t.Fatal(err)
	}
	rows, err = e.MustCompile(or).Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		k := r[1].(int64)
		if k != 1 && k != 2 {
			t.Fatalf("OR filter leaked %d", k)
		}
	}
	colEq, err := n.Filter(ColEq(Col("r", "k"), Col("r", "k")))
	if err != nil {
		t.Fatal(err)
	}
	rows, err = e.MustCompile(colEq).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3000 {
		t.Errorf("k = k should keep all rows, got %d", len(rows))
	}
}

func TestDashboard(t *testing.T) {
	e := testEngine(t)
	d := NewDashboard()
	q1 := e.MustCompile(HashJoin(e.MustScan("r"), e.MustScan("s"), Col("r", "k"), Col("s", "k")))
	q2 := e.MustCompile(MustGroupBy(e.MustScan("r"), []Ref{Col("r", "k")}, Agg{Func: CountStar, As: "c"}))
	if err := d.Register("join", q1); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("agg", q2); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("join", q1); err == nil {
		t.Error("duplicate label accepted")
	}
	if d.Overall() != 0 {
		t.Errorf("initial overall = %g", d.Overall())
	}
	if _, err := q1.Run(nil); err != nil {
		t.Fatal(err)
	}
	mid := d.Overall()
	if mid <= 0 || mid >= 1 {
		t.Errorf("overall after one query = %g", mid)
	}
	if _, err := q2.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := d.Overall(); math.Abs(got-1) > 1e-9 {
		t.Errorf("final overall = %g", got)
	}
	snap := d.Snapshot()
	if len(snap) != 2 || !snap[0].Done || !snap[1].Done {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !strings.Contains(d.String(), "join") {
		t.Error("dashboard render missing label")
	}
	d.Unregister("join")
	if len(d.Snapshot()) != 1 {
		t.Error("unregister failed")
	}
}

func TestWithMemoryBudget(t *testing.T) {
	e := testEngine(t)
	mk := func(opts ...CompileOption) int64 {
		q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k ORDER BY k", opts...)
		n, err := q.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if p := q.Progress(); math.Abs(p-1) > 1e-9 {
			t.Errorf("final progress %g", p)
		}
		return n
	}
	mem := mk()
	spill := mk(WithMemoryBudget(8 * 1024))
	if mem != spill {
		t.Errorf("in-memory %d rows vs budgeted %d", mem, spill)
	}
	// The estimator must still converge exactly under spilling.
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k", WithMemoryBudget(8*1024))
	n, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range q.Estimates() {
		if strings.HasPrefix(est.Operator, "HashJoin") {
			if est.Source != "once-exact" || est.Estimate != float64(n) {
				t.Errorf("budgeted join estimate %+v, want exact %d", est, n)
			}
		}
	}
}

func TestStartBackgroundQuery(t *testing.T) {
	e := New()
	e.MustCreateSkewedTable("r", 30000, 1, SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 1})
	e.MustCreateSkewedTable("s", 40000, 2, SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 2})
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	running, err := q.Start(nil, WithInterval(2000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Start(nil, WithInterval(1)); err == nil {
		t.Error("second Start accepted")
	}
	// Poll from this (foreign) goroutine while the query runs.
	sawPartial := false
	for {
		select {
		case <-running.Done():
			goto done
		default:
		}
		if p := running.Progress(); p > 0 && p < 1 {
			sawPartial = true
		}
	}
done:
	n, err := running.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows")
	}
	if got := running.Report().Progress; math.Abs(got-1) > 1e-9 {
		t.Errorf("final progress = %g", got)
	}
	_ = sawPartial // timing-dependent; asserting would flake on fast machines
}

func TestDriftReport(t *testing.T) {
	e := New()
	// Heavily skewed misaligned join: the optimizer's uniform estimate is
	// far off; after execution the once estimates expose the drift.
	e.MustCreateSkewedTable("r", 20000, 1, SkewedColumn{Name: "k", Domain: 2000, Zipf: 2, PermSeed: 3})
	e.MustCreateSkewedTable("s", 20000, 2, SkewedColumn{Name: "k", Domain: 2000, Zipf: 2, PermSeed: 99})
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	if got := q.DriftReport(1.5); len(got) != 0 {
		t.Errorf("drift before execution = %v", got)
	}
	if _, err := q.Run(nil); err != nil {
		t.Fatal(err)
	}
	drifts := q.DriftReport(1.5)
	if len(drifts) == 0 {
		t.Fatal("expected drift on a misestimated skewed join")
	}
	for i := 1; i < len(drifts); i++ {
		if drifts[i].Factor > drifts[i-1].Factor {
			t.Fatal("drift report not sorted")
		}
	}
	if drifts[0].Factor < 1.5 {
		t.Errorf("top drift factor %g below threshold", drifts[0].Factor)
	}
	// A huge threshold filters everything.
	if got := q.DriftReport(1e12); len(got) != 0 {
		t.Errorf("drift at 1e12 threshold = %v", got)
	}
}

func TestRunningETA(t *testing.T) {
	e := New()
	e.MustCreateSkewedTable("r", 40000, 1, SkewedColumn{Name: "k", Domain: 400, Zipf: 1, PermSeed: 1})
	e.MustCreateSkewedTable("s", 40000, 2, SkewedColumn{Name: "k", Domain: 400, Zipf: 1, PermSeed: 2})
	q := e.MustQuery("SELECT r.k FROM r JOIN s ON r.k = s.k")
	running, err := q.Start(nil, WithInterval(1000))
	if err != nil {
		t.Fatal(err)
	}
	sawETA := false
	for {
		select {
		case <-running.Done():
			goto done
		default:
		}
		if eta, ok := running.ETA(); ok && eta >= 0 {
			sawETA = true
		}
	}
done:
	if _, err := running.Wait(); err != nil {
		t.Fatal(err)
	}
	eta, ok := running.ETA()
	if !ok || eta != 0 {
		t.Errorf("finished ETA = %v, %v; want 0, true", eta, ok)
	}
	_ = sawETA // timing-dependent on fast machines
}
