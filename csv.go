package qpi

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"qpi/internal/data"
	"qpi/internal/storage"
)

// LoadCSV reads comma-separated rows into a new table and analyzes it.
// cols declares the column names and types in file order; when hasHeader
// is true the first record is skipped (the declared names win). Empty
// cells load as NULL for numeric columns and as empty strings for string
// columns.
func (e *Engine) LoadCSV(name string, r io.Reader, hasHeader bool, cols ...ColumnDef) (int, error) {
	if len(cols) == 0 {
		return 0, fmt.Errorf("qpi: LoadCSV %q: column definitions required", name)
	}
	dcols := make([]data.Column, len(cols))
	kinds := make([]data.Kind, len(cols))
	for i, c := range cols {
		var k data.Kind
		switch c.Type {
		case "int", "bigint", "":
			k = data.KindInt
		case "float", "double":
			k = data.KindFloat
		case "string", "varchar", "text":
			k = data.KindString
		default:
			return 0, fmt.Errorf("qpi: LoadCSV %q: unknown type %q for column %s", name, c.Type, c.Name)
		}
		kinds[i] = k
		dcols[i] = data.Column{Table: name, Name: c.Name, Kind: k}
	}
	t := storage.NewTable(name, data.NewSchema(dcols...))
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(cols)
	first := true
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("qpi: LoadCSV %q: %w", name, err)
		}
		if first && hasHeader {
			first = false
			continue
		}
		first = false
		tu := make(data.Tuple, len(cols))
		for i, cell := range rec {
			v, err := parseCell(cell, kinds[i])
			if err != nil {
				return n, fmt.Errorf("qpi: LoadCSV %q row %d column %s: %w", name, n+1, cols[i].Name, err)
			}
			tu[i] = v
		}
		if err := t.Append(tu); err != nil {
			return n, err
		}
		n++
	}
	e.cat.Register(t)
	return n, nil
}

func parseCell(cell string, kind data.Kind) (data.Value, error) {
	switch kind {
	case data.KindInt:
		if cell == "" {
			return data.Null(), nil
		}
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return data.Value{}, fmt.Errorf("invalid integer %q", cell)
		}
		return data.Int(i), nil
	case data.KindFloat:
		if cell == "" {
			return data.Null(), nil
		}
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return data.Value{}, fmt.Errorf("invalid float %q", cell)
		}
		return data.Float(f), nil
	default:
		return data.Str(cell), nil
	}
}
