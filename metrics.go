package qpi

import (
	"qpi/internal/exec"
)

// Metrics is a point-in-time roll-up of a query's execution counters —
// the numbers a monitoring system scrapes. Counters aggregate over the
// whole plan; the embedded Status carries the live gnm gauges.
type Metrics struct {
	Status
	// Tuples is Σ K_i: getnext() calls satisfied across all operators.
	Tuples int64
	// Batches counts batches emitted in batch-at-a-time execution (0 in
	// tuple mode).
	Batches int64
	// SpillFiles and SpillBytes count spill files created and bytes
	// written by grace hash joins and external sorts under a memory
	// budget.
	SpillFiles int64
	SpillBytes int64
	// EstimatorRecomputes counts online-estimator publish boundaries:
	// chain republishes (Algorithm 1), aggregate-chooser publishes and
	// MLE recomputations (Algorithm 3), and theta/disjunctive refreshes.
	EstimatorRecomputes int64
	// HistogramProbes counts join-histogram probes performed by the
	// chain estimators' drill-down evaluation.
	HistogramProbes int64
	// ReoptConsidered, ReoptApplied, ReoptSkipped and ReoptScouts count
	// mid-query re-optimization activity (WithReoptimization): boundary
	// evaluations run, restructurings committed, evaluations refused
	// (barrier, push-down or unresolvable shape) and scout sketch
	// passes over base relations.
	ReoptConsidered int64
	ReoptApplied    int64
	ReoptSkipped    int64
	ReoptScouts     int64
	// Pipelines carries the per-pipeline C/T gauges.
	Pipelines []PipelineStatus
}

// Metrics returns a live metrics snapshot. Safe to call from any
// goroutine while the query executes: every counter read is atomic.
func (q *Query) Metrics() Metrics {
	rep := q.Report()
	m := Metrics{Status: rep.Status, Pipelines: rep.Pipelines}
	exec.Walk(q.root, func(op exec.Operator) {
		st := op.Stats()
		m.Tuples += st.Emitted.Load()
		m.Batches += st.Batches.Load()
		m.SpillFiles += st.SpillFiles.Load()
		m.SpillBytes += st.SpillBytes.Load()
	})
	if q.att != nil {
		m.EstimatorRecomputes = q.att.Recomputes()
		m.HistogramProbes = q.att.HistogramProbes()
	}
	if q.reopt != nil {
		st := q.reopt.Stats()
		m.ReoptConsidered = st.Considered
		m.ReoptApplied = st.Applied
		m.ReoptSkipped = st.SkippedStarted + st.SkippedPushdown + st.SkippedUnresolvable
		m.ReoptScouts = st.Scouts
	}
	return m
}
