package progress

import (
	"math"
	"strings"
	"testing"

	"qpi/internal/exec"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	j1, m1 := buildJoinQuery(t, 21, ModeOnce)
	j2, m2 := buildJoinQuery(t, 22, ModeOnce)
	if err := r.Register("q1", m1); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("q2", m2); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("q1", m1); err == nil {
		t.Error("duplicate label accepted")
	}

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Label != "q1" || snap[0].Done {
		t.Fatalf("snapshot = %+v", snap)
	}
	if r.OverallProgress() != 0 {
		t.Errorf("initial overall = %g", r.OverallProgress())
	}

	// Finish q1 only: overall progress lies strictly between 0 and 1.
	if _, err := exec.Run(j1); err != nil {
		t.Fatal(err)
	}
	overall := r.OverallProgress()
	if overall <= 0 || overall >= 1 {
		t.Errorf("overall after one query = %g", overall)
	}
	snap = r.Snapshot()
	if !snap[0].Done || snap[1].Done {
		t.Errorf("done flags = %+v", snap)
	}

	if _, err := exec.Run(j2); err != nil {
		t.Fatal(err)
	}
	if got := r.OverallProgress(); math.Abs(got-1) > 1e-9 {
		t.Errorf("overall = %g, want 1", got)
	}

	out := r.String()
	if !strings.Contains(out, "q1") || !strings.Contains(out, "q2") {
		t.Errorf("dashboard = %q", out)
	}

	r.Unregister("q1")
	if len(r.Snapshot()) != 1 {
		t.Error("unregister failed")
	}
	r.Unregister("missing") // no-op
}
