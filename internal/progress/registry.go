package progress

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry tracks the progress of multiple concurrently executing queries
// — the multi-query extension of Luo et al. [19] the paper cites. Each
// query registers its monitor under a label; snapshots are safe to take
// from other goroutines as long as each query executes on one goroutine
// (the registry locks its own map; the underlying counters are
// monotonically increasing int64s whose torn reads are harmless for
// display purposes, matching how production engines expose progress
// views).
type Registry struct {
	mu       sync.Mutex
	monitors map[string]*Monitor
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{monitors: map[string]*Monitor{}}
}

// Register adds a query's monitor under a unique label.
func (r *Registry) Register(label string, m *Monitor) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.monitors[label]; dup {
		return fmt.Errorf("progress: query %q already registered", label)
	}
	r.monitors[label] = m
	r.order = append(r.order, label)
	return nil
}

// Unregister removes a query.
func (r *Registry) Unregister(label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.monitors, label)
	for i, l := range r.order {
		if l == label {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// QueryProgress is one query's row in a registry snapshot.
type QueryProgress struct {
	Label    string
	Progress float64
	C, T     float64
	Done     bool
	// State is the query's lifecycle state; cancelled and failed queries
	// stay distinguishable from merely stalled ones.
	State State
}

// Snapshot reports every registered query's progress, in registration
// order.
func (r *Registry) Snapshot() []QueryProgress {
	r.mu.Lock()
	labels := make([]string, len(r.order))
	copy(labels, r.order)
	monitors := make([]*Monitor, len(labels))
	for i, l := range labels {
		monitors[i] = r.monitors[l]
	}
	r.mu.Unlock()

	out := make([]QueryProgress, len(labels))
	for i, m := range monitors {
		rep := m.Report()
		done := true
		for _, p := range rep.Pipelines {
			if !p.Done {
				done = false
			}
		}
		out[i] = QueryProgress{
			Label:    labels[i],
			Progress: rep.Progress,
			C:        rep.C,
			T:        rep.T,
			Done:     done,
			State:    rep.State,
		}
	}
	return out
}

// OverallProgress aggregates all registered queries under the gnm model:
// ΣC over ΣT — total work done across the workload versus the total
// expected.
func (r *Registry) OverallProgress() float64 {
	snap := r.Snapshot()
	var c, t float64
	for _, q := range snap {
		c += q.C
		t += q.T
	}
	if t <= 0 {
		return 0
	}
	p := c / t
	if p > 1 {
		p = 1
	}
	return p
}

// String renders a dashboard-style table, sorted by progress.
func (r *Registry) String() string {
	snap := r.Snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i].Progress > snap[j].Progress })
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %12s %12s\n", "query", "progress", "C", "T")
	for _, q := range snap {
		state := ""
		switch {
		case q.State == StateCancelled, q.State == StateFailed:
			state = " (" + q.State.String() + ")"
		case q.Done:
			state = " (done)"
		}
		fmt.Fprintf(&b, "%-24s %7.1f%% %12.0f %12.0f%s\n",
			q.Label, 100*q.Progress, q.C, q.T, state)
	}
	return b.String()
}
