package progress

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/storage"
)

func table(name string, vals []int64) *storage.Table {
	s := data.NewSchema(data.Column{Table: name, Name: "k", Kind: data.KindInt})
	t := storage.NewTable(name, s)
	for _, v := range vals {
		t.MustAppend(data.Tuple{data.Int(v)})
	}
	return t
}

func randCol(rng *rand.Rand, n, domain int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(domain) + 1)
	}
	return out
}

// buildJoinQuery creates a joined + estimated plan over random data.
func buildJoinQuery(t *testing.T, seed int64, mode Mode) (*exec.HashJoin, *Monitor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ta := table("a", randCol(rng, 2000, 30))
	tb := table("b", randCol(rng, 3000, 30))
	cat := catalog.New()
	cat.Register(ta)
	cat.Register(tb)
	j := exec.NewHashJoinOn(exec.NewScan(ta, ""), exec.NewScan(tb, ""), "a", "k", "b", "k")
	plan.EstimateCardinalities(j, cat)
	if mode == ModeOnce {
		core.Attach(j)
	}
	return j, NewMonitor(j, mode)
}

func TestProgressStartsAtZeroEndsAtOne(t *testing.T) {
	for _, mode := range []Mode{ModeOnce, ModeDNE, ModeByte} {
		j, m := buildJoinQuery(t, 1, mode)
		if got := m.Progress(); got != 0 {
			t.Errorf("mode %v: initial progress = %g", mode, got)
		}
		if _, err := exec.Run(j); err != nil {
			t.Fatal(err)
		}
		if got := m.Progress(); math.Abs(got-1) > 1e-9 {
			t.Errorf("mode %v: final progress = %g, want 1", mode, got)
		}
	}
}

func TestProgressMonotoneUnderOnce(t *testing.T) {
	j, m := buildJoinQuery(t, 2, ModeOnce)
	var samples []float64
	InstallTicker(j, 100, func() { samples = append(samples, m.Progress()) })
	if _, err := exec.Run(j); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 20 {
		t.Fatalf("only %d samples", len(samples))
	}
	// Once-based progress should be nearly monotone after the sample
	// period; allow small dips from the pre-convergence estimates.
	maxDip := 0.0
	high := 0.0
	for _, s := range samples {
		if s < high && high-s > maxDip {
			maxDip = high - s
		}
		if s > high {
			high = s
		}
	}
	if maxDip > 0.15 {
		t.Errorf("progress dipped by %.3f; expected near-monotone", maxDip)
	}
}

func TestOnceProgressBeatsDNEOnSkew(t *testing.T) {
	// Under skewed data with a bad optimizer estimate, the mean absolute
	// deviation between estimated and actual progress should be smaller
	// for the once monitor than for dne (Figure 8's qualitative claim).
	build := func(mode Mode) (exec.Operator, *Monitor, func() []float64) {
		rng := rand.New(rand.NewSource(7))
		// Zipf-ish skew via squaring.
		mk := func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				r := rng.Float64()
				out[i] = int64(r*r*100) + 1
			}
			return out
		}
		ta := table("a", mk(3000))
		tb := table("b", mk(5000))
		cat := catalog.New()
		cat.Register(ta)
		cat.Register(tb)
		j := exec.NewHashJoinOn(exec.NewScan(ta, ""), exec.NewScan(tb, ""), "a", "k", "b", "k")
		plan.EstimateCardinalities(j, cat)
		// Degrade the optimizer estimate by 10x to mimic the paper's
		// misestimation scenario.
		j.Stats().SetEstimate(j.Stats().Estimate()/10, "optimizer")
		if mode == ModeOnce {
			core.Attach(j)
		}
		m := NewMonitor(j, mode)
		var est, act []float64
		InstallTicker(j, 200, func() {
			est = append(est, m.Progress())
			act = append(act, 0) // placeholder, filled below
		})
		return j, m, func() []float64 { return est }
	}

	mad := func(mode Mode) float64 {
		j, _, getEst := build(mode)
		if _, err := exec.Run(j); err != nil {
			t.Fatal(err)
		}
		est := getEst()
		n := len(est)
		sum := 0.0
		for i, e := range est {
			actual := float64(i+1) / float64(n) // even work spacing
			sum += math.Abs(e - actual)
		}
		return sum / float64(n)
	}
	onceMAD := mad(ModeOnce)
	dneMAD := mad(ModeDNE)
	if onceMAD >= dneMAD {
		t.Errorf("once MAD %.4f should beat dne MAD %.4f", onceMAD, dneMAD)
	}
}

func TestReportStates(t *testing.T) {
	j, m := buildJoinQuery(t, 3, ModeOnce)
	r := m.Report()
	if r.Progress != 0 || len(r.Pipelines) != 2 {
		t.Fatalf("initial report = %+v", r)
	}
	for _, p := range r.Pipelines {
		if p.Started || p.Done {
			t.Errorf("pipeline %d should be pending", p.ID)
		}
	}
	exec.Run(j)
	r = m.Report()
	if r.Progress != 1 {
		t.Errorf("final progress = %g", r.Progress)
	}
	for _, p := range r.Pipelines {
		if !p.Done {
			t.Errorf("pipeline %d should be done", p.ID)
		}
	}
	s := r.String()
	if !strings.Contains(s, "progress 100.0%") || !strings.Contains(s, "P0") {
		t.Errorf("report string = %q", s)
	}
}

func TestModeString(t *testing.T) {
	if ModeOnce.String() != "once" || ModeDNE.String() != "dne" || ModeByte.String() != "byte" {
		t.Error("mode strings wrong")
	}
}

func TestTickerComposesExistingHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ta := table("a", randCol(rng, 500, 10))
	sc := exec.NewScan(ta, "")
	var hookCalls int
	sc.OnTuple = func(data.Tuple) { hookCalls++ }
	ticks := 0
	InstallTicker(sc, 100, func() { ticks++ })
	if _, err := exec.Run(sc); err != nil {
		t.Fatal(err)
	}
	if hookCalls != 500 {
		t.Errorf("existing hook fired %d times, want 500", hookCalls)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
}

func TestProgressNeverExceedsOne(t *testing.T) {
	j, m := buildJoinQuery(t, 5, ModeDNE)
	InstallTicker(j, 50, func() {
		if p := m.Progress(); p < 0 || p > 1 {
			t.Fatalf("progress out of range: %g", p)
		}
	})
	exec.Run(j)
}

func TestFuturePipelineUsesOptimizerEstimate(t *testing.T) {
	// Three-table chain: while pipeline of the chain's builds run, the
	// probe pipeline is pending and contributes optimizer estimates.
	rng := rand.New(rand.NewSource(6))
	ta := table("a", randCol(rng, 100, 10))
	tb := table("b", randCol(rng, 100, 10))
	cat := catalog.New()
	cat.Register(ta)
	cat.Register(tb)
	j := exec.NewHashJoinOn(exec.NewScan(ta, ""), exec.NewScan(tb, ""), "a", "k", "b", "k")
	plan.EstimateCardinalities(j, cat)
	m := NewMonitor(j, ModeOnce)
	_, tTot := m.Totals()
	// T should include: both scans (100+100), join optimizer estimate.
	want := 200 + j.Stats().Estimate()
	if math.Abs(tTot-want) > 1e-6 {
		t.Errorf("T(Q) = %g, want %g", tTot, want)
	}
}

func TestMonitorAccessors(t *testing.T) {
	j, m := buildJoinQuery(t, 60, ModeOnce)
	if len(m.Pipelines()) != 2 {
		t.Errorf("pipelines = %d", len(m.Pipelines()))
	}
	if m.Mode() != ModeOnce {
		t.Error("mode accessor")
	}
	if m.OptimizerEstimate(j) <= 0 {
		t.Error("optimizer estimate not captured")
	}
}

func TestByteModeProgress(t *testing.T) {
	j, m := buildJoinQuery(t, 61, ModeByte)
	var last float64
	InstallTicker(j, 200, func() {
		p := m.Progress()
		if p < 0 || p > 1 {
			t.Fatalf("byte progress out of range: %g", p)
		}
		last = p
	})
	if _, err := exec.Run(j); err != nil {
		t.Fatal(err)
	}
	if m.Progress() != 1 {
		t.Errorf("final = %g", m.Progress())
	}
	_ = last
}
