package progress

import (
	"math"
	"sync"
	"testing"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/storage"
)

// Tests for the robust blended estimator mode and the monitor's
// post-restructure refresh.

func TestRobustModeLifecycle(t *testing.T) {
	j, _ := buildJoinQuery(t, 7, ModeDNE) // helper only attaches for ModeOnce
	core.Attach(j)
	m := NewMonitor(j, ModeRobust)
	if m.Mode() != ModeRobust || ModeRobust.String() != "robust" {
		t.Fatalf("mode = %v (%q)", m.Mode(), m.Mode())
	}
	if got := m.Progress(); got != 0 {
		t.Errorf("initial progress = %g", got)
	}
	var samples []float64
	InstallTicker(j, 100, func() { samples = append(samples, m.Progress()) })
	if _, err := exec.Run(j); err != nil {
		t.Fatal(err)
	}
	if got := m.Progress(); math.Abs(got-1) > 1e-9 {
		t.Errorf("final progress = %g, want 1", got)
	}
	for i, s := range samples {
		if s < 0 || s > 1 {
			t.Fatalf("sample %d out of range: %g", i, s)
		}
	}
}

// TestRobustBlendTracksOnce checks the blend actually mixes: mid-run,
// with a live once estimate on the join, the robust total must sit
// between the smallest and largest per-operator component estimates —
// witnessed here by comparing against pure once/dne/byte monitors over
// the same plan, which can only disagree with robust if the blend is a
// true convex combination per operator.
func TestRobustBlendTracksOnce(t *testing.T) {
	j, _ := buildJoinQuery(t, 8, ModeDNE)
	att := core.Attach(j)
	once := NewMonitorWith(j, ModeOnce, att)
	dne := NewMonitor(j, ModeDNE)
	byt := NewMonitor(j, ModeByte)
	robust := NewMonitor(j, ModeRobust)

	checked := 0
	InstallTicker(j, 500, func() {
		_, tOnce := once.Totals()
		_, tDNE := dne.Totals()
		_, tByte := byt.Totals()
		_, tRobust := robust.Totals()
		lo := math.Min(tOnce, math.Min(tDNE, tByte))
		hi := math.Max(tOnce, math.Max(tDNE, tByte))
		// Per-operator convexity gives Σ-level bounds only up to the
		// spread between per-op minima and per-mode sums; allow slack.
		if tRobust < lo*0.99 || tRobust > hi*1.01 {
			t.Errorf("robust total %g outside component envelope [%g, %g]", tRobust, lo, hi)
		}
		checked++
	})
	if _, err := exec.Run(j); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("ticker never fired; no blend samples checked")
	}
}

// TestMonitorRefreshAfterRestructure runs a three-join chain under a
// forced re-optimizer whose post-restructure callback refreshes the
// monitor, while a second goroutine snapshots progress continuously
// (exercising the refresh/snapshot lock under -race). Afterwards the
// monitor must know the restructured plan: some pipeline contains the
// inserted Reorder wrapper, and progress ends exact.
func TestMonitorRefreshAfterRestructure(t *testing.T) {
	mk := func(name string, domain, per int64) *storage.Table {
		var vals []int64
		for k := int64(1); k <= domain; k++ {
			for i := int64(0); i < per; i++ {
				vals = append(vals, k)
			}
		}
		return table(name, vals)
	}
	a0 := mk("a0", 100, 2)
	b0 := mk("b0", 10, 30)
	b1 := mk("b1", 50, 1)
	b2 := mk("b2", 20, 1)
	cat := catalog.New()
	for _, tb := range []*storage.Table{a0, b0, b1, b2} {
		cat.Register(tb)
	}
	c := exec.NewScan(a0, "a0")
	low := exec.NewHashJoinOn(exec.NewScan(b0, "b0"), c, "b0", "k", "a0", "k")
	mid := exec.NewHashJoinOn(exec.NewScan(b1, "b1"), low, "b1", "k", "a0", "k")
	top := exec.NewHashJoinOn(exec.NewScan(b2, "b2"), mid, "b2", "k", "a0", "k")
	plan.EstimateCardinalities(top, cat)
	att := core.Attach(top)
	sk := core.AttachSketches(top)
	m := NewMonitorWith(top, ModeRobust, att)

	r := plan.NewReoptimizer(plan.ReoptConfig{Force: true, MaxPerms: 4}, att)
	r.SetSketches(sk)
	r.SetOnRestructure(m.Refresh)
	r.Install(top)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rep := m.Report()
				if rep.Progress < 0 || rep.Progress > 1 {
					t.Errorf("snapshot progress out of range: %g", rep.Progress)
					return
				}
			}
		}
	}()
	_, err := exec.Run(top)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	m.Finish(nil)

	if got := r.Stats().Applied; got != 1 {
		t.Fatalf("Applied = %d, want 1", got)
	}
	var reorder exec.Operator
	exec.Walk(top, func(op exec.Operator) {
		if _, ok := op.(*exec.Reorder); ok {
			reorder = op
		}
	})
	if reorder == nil {
		t.Fatal("no Reorder wrapper in the restructured plan")
	}
	found := false
	for _, p := range m.Pipelines() {
		if p.Contains(reorder) {
			found = true
		}
	}
	if !found {
		t.Error("refreshed monitor's pipelines do not cover the Reorder wrapper")
	}
	if got := m.Progress(); math.Abs(got-1) > 1e-9 {
		t.Errorf("final progress = %g, want 1", got)
	}
	if m.State() != StateDone {
		t.Errorf("state = %v, want done", m.State())
	}
}
