package progress

import (
	"math"
	"math/rand"
	"testing"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/plan"
)

func TestProgressIntervalBracketsEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ta := table("a", randCol(rng, 2000, 40))
	tb := table("b", randCol(rng, 3000, 40))
	cat := catalog.New()
	cat.Register(ta)
	cat.Register(tb)
	j := exec.NewHashJoinOn(exec.NewScan(ta, ""), exec.NewScan(tb, ""), "a", "k", "b", "k")
	plan.EstimateCardinalities(j, cat)
	att := core.Attach(j)
	m := NewMonitorWith(j, ModeOnce, att)

	var checked int
	InstallTicker(j, 300, func() {
		p := m.Progress()
		lo, hi := m.ProgressInterval(0.95)
		if lo > p+1e-9 || hi < p-1e-9 {
			t.Fatalf("interval [%g, %g] does not bracket estimate %g", lo, hi, p)
		}
		if lo < 0 || hi > 1 {
			t.Fatalf("interval out of range: [%g, %g]", lo, hi)
		}
		checked++
	})
	if _, err := exec.Run(j); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no interval samples")
	}
	lo, hi := m.ProgressInterval(0.95)
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Errorf("final interval = [%g, %g], want degenerate at 1", lo, hi)
	}
}

func TestProgressIntervalWithoutAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ta := table("a", randCol(rng, 100, 5))
	sc := exec.NewScan(ta, "")
	m := NewMonitor(sc, ModeDNE)
	lo, hi := m.ProgressInterval(0.95)
	if lo != m.Progress() && hi != m.Progress() {
		// Degenerate interval expected (point has no estimator CI).
		t.Errorf("interval [%g, %g] vs progress %g", lo, hi, m.Progress())
	}
}

func TestRefineFutureScalesWithRefinedInputs(t *testing.T) {
	// A pending join above a filter whose actual selectivity differs from
	// the optimizer guess: once the filter's dne estimate moves, the
	// future join estimate must move proportionally.
	rng := rand.New(rand.NewSource(11))
	ta := table("a", randCol(rng, 1000, 10))
	tb := table("b", randCol(rng, 1000, 10))
	cat := catalog.New()
	cat.Register(ta)
	cat.Register(tb)

	scanA := exec.NewScan(ta, "")
	// Filter keeps everything but the optimizer thinks it keeps 1/10.
	f := exec.NewFilter(scanA, alwaysTruePred{})
	j := exec.NewHashJoin(f, exec.NewScan(tb, ""), 0, 0)
	plan.EstimateCardinalities(j, cat)
	f.Stats().SetEstimate(100, "optimizer") // wrong guess: 10%
	origJoinEst := j.Stats().Estimate()

	m := NewMonitor(j, ModeOnce)
	// Drive the filter halfway: dne sees selectivity ~1.0.
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := f.Next(); err != nil {
			t.Fatal(err)
		}
	}
	refined := m.refineFuture(j)
	if refined <= origJoinEst {
		t.Errorf("future join estimate %g should exceed optimizer %g after the filter refined upward",
			refined, origJoinEst)
	}
}

type alwaysTruePred struct{}

func (alwaysTruePred) Eval(data.Tuple) data.Value { return data.Bool(true) }
func (alwaysTruePred) String() string             { return "true" }
