// Package progress implements the getnext() model of query progress
// ("gnm", paper §3) and a monitor that combines it with the online
// estimation framework (§4.4):
//
//	progress = C(Q)/T(Q) = Σ_i K_i / Σ_i N_i
//
// over all operators i of the plan. The plan is decomposed into pipelines;
// completed pipelines contribute exact counts, the running pipeline's
// totals come from the online ("once") estimators, and pipelines yet to
// begin contribute optimizer estimates. The monitor can also be configured
// to ignore the once estimators and use the dne or byte refinement instead
// — the baselines of Figure 8.
package progress

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/obs"
	"qpi/internal/plan"
)

// Mode selects how running, unfinished operators' totals are estimated.
type Mode int

// Estimation modes.
const (
	// ModeOnce uses the paper's online framework where attached, with the
	// dne estimate for fallback operators (§4.4).
	ModeOnce Mode = iota
	// ModeDNE uses the driver-node estimator everywhere (the [9]
	// baseline).
	ModeDNE
	// ModeByte uses Luo et al.'s weighted refinement everywhere (the [18]
	// baseline).
	ModeByte
	// ModeRobust blends the online framework with the dne and byte
	// refinements per operator (König et al.-style estimator fusion):
	// exact totals are trusted outright, a live "once" estimate is
	// weighted 0.6 against 0.2 dne + 0.2 byte, and operators without a
	// push-down estimator average the two baselines. The blend bounds
	// the damage when any single estimator is briefly wrong — e.g.
	// immediately after a mid-query restructure.
	ModeRobust
)

func (m Mode) String() string {
	switch m {
	case ModeOnce:
		return "once"
	case ModeDNE:
		return "dne"
	case ModeRobust:
		return "robust"
	default:
		return "byte"
	}
}

// State is the lifecycle state of a monitored query. It starts as
// StateRunning and becomes terminal when the executor calls Finish, so a
// consumer polling a cancelled or failed query sees an explicit terminal
// state rather than a frozen progress value.
type State int32

// Query lifecycle states.
const (
	StateRunning State = iota
	StateDone
	StateCancelled
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCancelled:
		return "cancelled"
	default:
		return "failed"
	}
}

// Monitor tracks the progress of one executing plan.
type Monitor struct {
	// mu guards pipelines, optimizer and the lifecycle-flag slices
	// against Refresh (the re-optimizer restructures the plan on the
	// executor goroutine while other goroutines snapshot progress).
	mu        sync.RWMutex
	root      exec.Operator
	pipelines []*plan.Pipeline
	mode      Mode
	state     atomic.Int32 // State; written by Finish, read by snapshots

	// optimizer estimates captured at construction, per operator, so that
	// the dne/byte baselines always blend against the original optimizer
	// belief even after the online framework overwrote Stats.Estimate().
	optimizer map[exec.Operator]float64

	// att gives access to the chain estimators' confidence intervals
	// (ProgressInterval); nil outside ModeOnce.
	att *core.Attachment

	// tr, when bound, receives pipeline lifecycle events. The one-shot
	// flags make emission idempotent and safe from any goroutine that
	// snapshots the monitor while the query runs.
	tr        *obs.Tracer
	plStarted []atomic.Bool
	plDone    []atomic.Bool
}

// NewMonitor builds a monitor for a plan whose optimizer estimates have
// already been seeded (plan.EstimateCardinalities) and whose estimators
// have been attached (core.Attach) if mode is ModeOnce.
func NewMonitor(root exec.Operator, mode Mode) *Monitor {
	return NewMonitorWith(root, mode, nil)
}

// NewMonitorWith additionally hands the monitor the estimator attachment,
// enabling confidence intervals on the progress estimate.
func NewMonitorWith(root exec.Operator, mode Mode, att *core.Attachment) *Monitor {
	m := &Monitor{
		root:      root,
		pipelines: plan.Decompose(root),
		mode:      mode,
		optimizer: map[exec.Operator]float64{},
		att:       att,
	}
	exec.Walk(root, func(op exec.Operator) {
		m.optimizer[op] = op.Stats().Estimate()
	})
	return m
}

// Pipelines returns the plan's pipelines.
func (m *Monitor) Pipelines() []*plan.Pipeline {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.pipelines
}

// Refresh re-decomposes the (possibly restructured) plan into pipelines
// and extends the optimizer-estimate map to operators created since
// construction (a Reorder wrapper, re-linked joins). The re-optimizer
// calls it from its post-restructure callback, on the executor
// goroutine, while snapshot goroutines keep reading — hence the lock.
// Lifecycle trace flags reset: pipelines are renumbered by the new
// decomposition, so earlier one-shot marks no longer correspond.
func (m *Monitor) Refresh(root exec.Operator) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if root != nil {
		m.root = root
	}
	m.pipelines = plan.Decompose(m.root)
	exec.Walk(m.root, func(op exec.Operator) {
		if _, ok := m.optimizer[op]; !ok {
			m.optimizer[op] = op.Stats().Estimate()
		}
	})
	if m.tr != nil {
		m.plStarted = make([]atomic.Bool, len(m.pipelines))
		m.plDone = make([]atomic.Bool, len(m.pipelines))
	}
}

// BindTracer routes pipeline lifecycle events (start, finish) into tr.
// Call before execution starts; nil disables.
func (m *Monitor) BindTracer(tr *obs.Tracer) {
	m.tr = tr
	if tr != nil {
		m.plStarted = make([]atomic.Bool, len(m.pipelines))
		m.plDone = make([]atomic.Bool, len(m.pipelines))
	}
}

// tracePipelines emits a one-shot Mark event the first time each pipeline
// is observed started and finished. Invoked from snapshots and Finish, so
// a pipeline that starts and completes between two ticks still gets both
// events (in order) at the next observation. Callers hold mu.
func (m *Monitor) tracePipelines() {
	if m.tr == nil {
		return
	}
	for i, p := range m.pipelines {
		label := fmt.Sprintf("pipeline[%d]", p.ID)
		if p.Started() && m.plStarted[i].CompareAndSwap(false, true) {
			m.tr.Mark(label, "start", 0, 0)
		}
		if p.Done() && m.plDone[i].CompareAndSwap(false, true) {
			var c int64
			for _, op := range p.Ops {
				c += op.Stats().Emitted.Load()
			}
			m.tr.Mark(label, "finish", c, 0)
		}
	}
}

// OptimizerEstimate returns the optimizer estimate captured for op at
// monitor construction (0 when unknown).
func (m *Monitor) OptimizerEstimate(op exec.Operator) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.optimizer[op]
}

// Mode returns the estimation mode.
func (m *Monitor) Mode() Mode { return m.mode }

// Finish records the query's terminal state from its execution error:
// nil is done, context cancellation or deadline expiry is cancelled,
// anything else is failed. Safe to call from the execution goroutine
// while other goroutines snapshot the monitor.
func (m *Monitor) Finish(err error) {
	switch {
	case err == nil:
		m.state.Store(int32(StateDone))
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		m.state.Store(int32(StateCancelled))
	default:
		m.state.Store(int32(StateFailed))
	}
	m.mu.RLock()
	m.tracePipelines()
	m.mu.RUnlock()
}

// State returns the query's lifecycle state.
func (m *Monitor) State() State { return State(m.state.Load()) }

// opTotal returns the monitor's belief about one operator's N_i.
func (m *Monitor) opTotal(op exec.Operator, pipelineStarted bool) float64 {
	st := op.Stats()
	if st.IsDone() {
		return float64(st.Emitted.Load())
	}
	if !pipelineStarted {
		// Future pipeline: optimizer estimate refined by propagating the
		// current beliefs about its inputs, with sanity bounds — the
		// [9]-style refinement of §4.4.
		return m.refineFuture(op)
	}
	switch m.mode {
	case ModeDNE:
		return floorAt(core.DNEEstimate(op, m.optimizer[op]), float64(st.Emitted.Load()))
	case ModeByte:
		return floorAt(core.ByteEstimate(op, m.optimizer[op]), float64(st.Emitted.Load()))
	case ModeRobust:
		em := float64(st.Emitted.Load())
		dne := floorAt(core.DNEEstimate(op, m.optimizer[op]), em)
		byt := floorAt(core.ByteEstimate(op, m.optimizer[op]), em)
		src := st.Source()
		switch {
		case src == "once-exact" || src == "exact" || src == "agg-pushdown":
			return st.Total()
		case strings.HasPrefix(src, "once") || src == "gee" || src == "mle":
			return floorAt(0.6*st.Total()+0.2*dne+0.2*byt, em)
		default:
			return (dne + byt) / 2
		}
	default:
		if strings.HasPrefix(st.Source(), "once") || st.Source() == "gee" ||
			st.Source() == "mle" || st.Source() == "agg-pushdown" || st.Source() == "exact" {
			return st.Total()
		}
		// §4.3/§4.4: operators without a push-down estimator use dne.
		return floorAt(core.DNEEstimate(op, m.optimizer[op]), float64(st.Emitted.Load()))
	}
}

// refineFuture estimates the total output of an operator in a pipeline
// that has not started, scaling the original optimizer estimate by how
// much the beliefs about its inputs have moved and clamping to structural
// bounds (a join cannot exceed the product of its refined inputs, a
// unary operator cannot exceed its input where output ≤ input holds).
func (m *Monitor) refineFuture(op exec.Operator) float64 {
	st := op.Stats()
	if st.IsDone() {
		return float64(st.Emitted.Load())
	}
	// An operator that has already produced output (its own pipeline is
	// running or done) carries a live estimate.
	if st.Emitted.Load() > 0 {
		return m.opTotal(op, true)
	}
	// Already refined by an online estimator (e.g. a converged chain
	// below a pending aggregation): trust it.
	if src := st.Source(); src != "optimizer" && src != "" {
		return st.Total()
	}
	children := op.Children()
	if len(children) == 0 {
		return st.Total()
	}
	refined := make([]float64, len(children))
	ratio := 1.0
	for i, c := range children {
		refined[i] = m.refineFuture(c)
		if orig := m.optimizer[c]; orig > 0 {
			ratio *= refined[i] / orig
		}
	}
	est := m.optimizer[op] * ratio
	// Structural bounds.
	switch op.(type) {
	case *exec.HashJoin, *exec.MergeJoin, *exec.NestedLoopsJoin:
		upper := 1.0
		for _, r := range refined {
			upper *= r
		}
		if est > upper {
			est = upper
		}
	case *exec.HashAgg, *exec.SortAgg:
		// An aggregation emits at most its input, and at most its
		// distinct-count belief (which survives input misestimates).
		if hint := st.GroupsHint; hint > 0 && est > hint {
			est = hint
		}
		if est > refined[0] {
			est = refined[0]
		}
	case *exec.Filter, *exec.Limit:
		if est > refined[0] {
			est = refined[0]
		}
	case *exec.Sort, *exec.Project:
		est = refined[0]
	}
	if est < 0 {
		est = 0
	}
	return est
}

// ProgressInterval returns a two-sided α confidence interval around the
// progress estimate, derived from the chain estimators' cardinality
// intervals (only meaningful with ModeOnce and an attachment; otherwise
// it degenerates to the point estimate).
func (m *Monitor) ProgressInterval(alpha float64) (lo, hi float64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, _ := m.totals()
	var tLo, tHi float64
	for _, p := range m.pipelines {
		started := p.Started()
		for _, op := range p.Ops {
			point := m.opTotal(op, started)
			l, h := point, point
			if m.att != nil && !op.Stats().IsDone() {
				if pe := m.att.ChainOf[op]; pe != nil && pe.ProbeTuplesSeen() > 0 {
					l, h = pe.ConfidenceInterval(m.att.LevelOf[op], alpha)
				}
			}
			if l > point {
				l = point
			}
			if h < point {
				h = point
			}
			tLo += l
			tHi += h
		}
	}
	if tHi <= 0 {
		return 0, 0
	}
	lo = c / tHi
	hi = 1.0
	if tLo > 0 {
		hi = c / tLo
	}
	if hi > 1 {
		hi = 1
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

func floorAt(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}

// Totals returns C(Q) and the current estimate of T(Q).
func (m *Monitor) Totals() (c float64, t float64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.totals()
}

func (m *Monitor) totals() (c float64, t float64) {
	for _, p := range m.pipelines {
		started := p.Started()
		for _, op := range p.Ops {
			c += float64(op.Stats().Emitted.Load())
			t += m.opTotal(op, started)
		}
	}
	return c, t
}

// Progress returns C(Q)/T(Q) in [0,1].
func (m *Monitor) Progress() float64 {
	c, t := m.Totals()
	if t <= 0 {
		return 0
	}
	p := c / t
	if p > 1 {
		p = 1
	}
	return p
}

// PipelineReport summarizes one pipeline for Report.
type PipelineReport struct {
	ID      int
	C       float64
	T       float64
	Started bool
	Done    bool
	Root    string
}

// Report is a point-in-time snapshot of query progress.
type Report struct {
	Progress  float64
	C, T      float64
	Mode      Mode
	State     State
	Pipelines []PipelineReport
}

// Report captures a full snapshot.
func (m *Monitor) Report() Report {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.tracePipelines()
	r := Report{Mode: m.mode, State: m.State()}
	for _, p := range m.pipelines {
		started := p.Started()
		pr := PipelineReport{ID: p.ID, Started: started, Done: p.Done(), Root: p.Root.Name()}
		for _, op := range p.Ops {
			pr.C += float64(op.Stats().Emitted.Load())
			pr.T += m.opTotal(op, started)
		}
		r.C += pr.C
		r.T += pr.T
		r.Pipelines = append(r.Pipelines, pr)
	}
	if r.T > 0 {
		r.Progress = r.C / r.T
		if r.Progress > 1 {
			r.Progress = 1
		}
	}
	return r
}

// String renders the report as a one-line progress summary plus one line
// per pipeline.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "progress %5.1f%%  (C=%.0f T=%.0f, mode=%s, %s)\n",
		100*r.Progress, r.C, r.T, r.Mode, r.State)
	for _, p := range r.Pipelines {
		state := "pending"
		if p.Done {
			state = "done"
		} else if p.Started {
			state = "running"
		}
		fmt.Fprintf(&b, "  P%d %-8s C=%-10.0f T=%-10.0f %s\n", p.ID, state, p.C, p.T, p.Root)
	}
	return b.String()
}

// InstallTicker arranges for f to be called once every `every` units of
// work (tuples flowing through scans, join phases and blocking input
// passes). Progress experiments use it to sample the monitor at evenly
// spaced points of actual work without a second goroutine.
func InstallTicker(root exec.Operator, every int64, f func()) {
	var counter int64
	tick := func() {
		counter++
		if counter%every == 0 {
			f()
		}
	}
	hook := func(prev func(data.Tuple)) func(data.Tuple) {
		return func(t data.Tuple) {
			if prev != nil {
				prev(t)
			}
			tick()
		}
	}
	exec.Walk(root, func(op exec.Operator) {
		switch o := op.(type) {
		case *exec.Scan:
			o.OnTuple = hook(o.OnTuple)
		case *exec.HashJoin:
			o.OnBuildTuple = hook(o.OnBuildTuple)
			o.OnProbeTuple = hook(o.OnProbeTuple)
			o.OnOutput = hook(o.OnOutput)
		case *exec.MergeJoin:
			o.OnOutput = hook(o.OnOutput)
		case *exec.Sort:
			o.OnInput = hook(o.OnInput)
		case *exec.HashAgg:
			o.OnInput = hook(o.OnInput)
		}
	})
}
