package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast while exercising the full code
// paths.
func tinyConfig() Config {
	return Config{
		Rows:           4000,
		DomainSmall:    200,
		DomainLarge:    3000,
		SF:             0.004,
		SampleFraction: 0.10,
		Seed:           7,
		Checkpoints:    []float64{0.05, 0.10, 0.50, 1.00},
	}
}

func TestSeriesAt(t *testing.T) {
	s := Series{Points: []Point{{0.1, 1}, {0.5, 2}, {1, 3}}}
	if s.At(0.05) != 1 || s.At(0.6) != 2 || s.At(1) != 3 {
		t.Errorf("At = %g, %g, %g", s.At(0.05), s.At(0.6), s.At(1))
	}
	var empty Series
	if empty.At(0.5) != 0 {
		t.Error("empty series should yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	out := tb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "long-header") {
		t.Errorf("render = %q", out)
	}
	if !strings.Contains(out, "---") {
		t.Error("missing separator")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{100, "100 B"},
		{2048, "2.0 KB"},
		{3 << 20, "3.00 MB"},
	}
	for _, c := range cases {
		if got := humanBytes(c.n); got != c.want {
			t.Errorf("humanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// ratioAtEnd extracts the final (100%) value of a named series column in
// a SeriesTable.
func finalRatios(t *testing.T, tb *Table) map[string]string {
	t.Helper()
	out := map[string]string{}
	if len(tb.Rows) == 0 {
		t.Fatalf("table %q has no rows", tb.Title)
	}
	last := tb.Rows[len(tb.Rows)-1]
	for i, h := range tb.Headers {
		if i == 0 {
			continue
		}
		out[h] = last[i]
	}
	return out
}

func TestFigure3ConvergesToOne(t *testing.T) {
	tables, err := Figure3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		for name, v := range finalRatios(t, tb) {
			if v != "1.000" {
				t.Errorf("%s: series %s final ratio = %s, want 1.000", tb.Title, name, v)
			}
		}
	}
}

func TestFigure4OnceConvergesEarly(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	// once must be at ratio 1.000 at the 100% checkpoint of both plots.
	for _, tb := range tables {
		final := finalRatios(t, tb)
		if final["once"] != "1.000" {
			t.Errorf("%s: once final = %s", tb.Title, final["once"])
		}
		if final["dne"] != "1.000" || final["byte"] != "1.000" {
			t.Errorf("%s: baselines final = %v", tb.Title, final)
		}
	}
}

func TestFigure5BothLevelsConverge(t *testing.T) {
	tables, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		for name, v := range finalRatios(t, tb) {
			if v != "1.000" {
				t.Errorf("%s / %s final = %s", tb.Title, name, v)
			}
		}
	}
}

func TestFigure6BothCasesConverge(t *testing.T) {
	tables, err := Figure6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if len(tb.Headers) < 2 {
			t.Fatalf("%s: no surviving series", tb.Title)
		}
		for name, v := range finalRatios(t, tb) {
			if v != "1.000" {
				t.Errorf("%s / %s final = %s", tb.Title, name, v)
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tb, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 { // 3 domains × 3 skews
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != 6 {
			t.Fatalf("row arity = %d", len(r))
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tb, err := Table2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d (scaled config)", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][1], "KB") {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestTable3Shape(t *testing.T) {
	tb, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 { // 3 SFs × 2 join kinds
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestTable4Shape(t *testing.T) {
	tables, err := Table4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if len(tables[0].Rows) != 4 { // 2 SFs × 2 cases
		t.Errorf("pipeline rows = %d", len(tables[0].Rows))
	}
	if len(tables[1].Rows) != 3 { // 3 SFs
		t.Errorf("agg rows = %d", len(tables[1].Rows))
	}
}

func TestFigure8ProgressShapes(t *testing.T) {
	tb, err := Figure8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	last := tb.Rows[len(tb.Rows)-1]
	// Both estimators must reach 1.000 at actual progress 100%.
	if last[1] != "1.000" || last[2] != "1.000" {
		t.Errorf("final row = %v", last)
	}
}

func TestRegistryRunsAll(t *testing.T) {
	cfg := tinyConfig()
	for _, name := range Names() {
		tables, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables) == 0 {
			t.Errorf("%s: no tables", name)
		}
		for _, tb := range tables {
			if tb.String() == "" {
				t.Errorf("%s: empty render", name)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}
