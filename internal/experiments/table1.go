package experiments

import (
	"fmt"
	"math"

	"qpi/internal/data"
	"qpi/internal/distinct"
	"qpi/internal/zipf"
)

// Figure 1 of the paper's tables: Table 1 compares GEE and MLE on
// customer-sized streams with varying domain size and skew, reporting the
// γ² skew measure at a 10% sample and the number of rows each estimator
// needs before staying within 10% of the true distinct count, plus the
// rows needed to see every value ("All Seen").
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Table 1: GEE vs MLE (stream of %d rows; rows to reach within 10%% of truth)", cfg.Rows),
		Headers: []string{"#Values", "z", "γ²@10%", "GEE", "MLE", "All Seen"},
	}
	domains := []int{cfg.DomainSmall / 10, cfg.DomainSmall, cfg.DomainLarge}
	for _, domain := range domains {
		if domain < 1 {
			continue
		}
		for _, z := range []float64{0, 1, 2} {
			row, err := table1Row(cfg, domain, z)
			if err != nil {
				return nil, err
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

func table1Row(cfg Config, domain int, z float64) ([]string, error) {
	g, err := zipf.New(domain, z, cfg.Seed+int64(domain)*7+int64(z*13), 0)
	if err != nil {
		return nil, err
	}
	n := cfg.Rows
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = g.Next()
	}
	// Ground truth and "all seen" point.
	seen := map[int64]bool{}
	allSeenAt := n
	var truth int
	for i, v := range vals {
		if !seen[v] {
			seen[v] = true
			allSeenAt = i + 1
		}
	}
	truth = len(seen)

	gee := distinct.NewGEE(float64(n))
	mle := distinct.NewMLEWithInterval(float64(n), int64(float64(n)*distinct.DefaultLowerFrac)+1,
		int64(float64(n)*distinct.DefaultUpperFrac)+1, distinct.DefaultK)
	chooser := distinct.NewChooser(float64(n), distinct.DefaultTau)

	within := func(est float64) bool {
		return math.Abs(est-float64(truth)) <= 0.10*float64(truth)
	}
	// An estimator "reaches" the truth at the first row after which it
	// stays within 10% forever.
	geeAt, mleAt := -1, -1
	var gamma2At10 float64
	for i, v := range vals {
		dv := data.Int(v)
		gee.Observe(dv)
		mle.Observe(dv)
		chooser.Observe(dv)
		if i+1 == n/10 {
			gamma2At10 = chooser.Gamma2()
		}
		if within(gee.Estimate()) {
			if geeAt < 0 {
				geeAt = i + 1
			}
		} else {
			geeAt = -1
		}
		if within(mle.Estimate()) {
			if mleAt < 0 {
				mleAt = i + 1
			}
		} else {
			mleAt = -1
		}
	}
	if geeAt < 0 {
		geeAt = n
	}
	if mleAt < 0 {
		mleAt = n
	}
	return []string{
		itoa(int64(domain)),
		fmt.Sprintf("%g", z),
		fmt.Sprintf("%.2f", gamma2At10),
		itoa(int64(geeAt)),
		itoa(int64(mleAt)),
		itoa(int64(allSeenAt)),
	}, nil
}
