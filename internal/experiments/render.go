package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: headers plus rows of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// SeriesTable renders a set of series sampled at shared checkpoints
// (fractions of the driving input), one row per checkpoint.
func SeriesTable(title string, checkpoints []float64, series ...Series) *Table {
	t := &Table{Title: title, Headers: []string{"%input"}}
	for _, s := range series {
		t.Headers = append(t.Headers, s.Name)
	}
	for _, x := range checkpoints {
		row := []string{fmt.Sprintf("%.0f%%", 100*x)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3f", s.At(x)))
		}
		t.AddRow(row...)
	}
	return t
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

// humanBytes renders byte counts as the paper's Table 2 does.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
