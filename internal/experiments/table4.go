package experiments

import (
	"fmt"
	"time"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/distinct"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/tpch"
)

// Table4 reproduces Table 4: (a) the runtime overhead of push-down
// estimation on two-join pipelines over copies of the orders relation
// with duplicated key columns — Case 1 (upper join key from the lower
// probe input) and Case 2 (from the lower build input, requiring the
// derived histogram); and (b) the overhead the GEE and MLE estimators add
// to a GROUP BY custkey over orders, across scale factors.
func Table4(cfg Config) ([]*Table, error) {
	a, err := table4Pipelines(cfg)
	if err != nil {
		return nil, err
	}
	b, err := table4Aggregation(cfg)
	if err != nil {
		return nil, err
	}
	return []*Table{a, b}, nil
}

func table4Pipelines(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Table 4 (a): pipeline estimation overhead (two-join chains, 10% samples)",
		Headers: []string{"SF", "case", "baseline", "with estimation", "overhead"},
	}
	for _, sf := range []float64{cfg.SF, cfg.SF * 2} {
		rows := int(float64(tpch.OrdersBase) * sf)
		for _, kase := range []int{1, 2} {
			kase := kase
			base, err := bestOf(3, func() (time.Duration, error) {
				return timePipeline(cfg, rows, kase, false)
			})
			if err != nil {
				return nil, err
			}
			est, err := bestOf(3, func() (time.Duration, error) {
				return timePipeline(cfg, rows, kase, true)
			})
			if err != nil {
				return nil, err
			}
			ovh := 100 * (est.Seconds() - base.Seconds()) / base.Seconds()
			t.AddRow(fmt.Sprintf("%.3g", sf), fmt.Sprintf("Case %d", kase),
				fmtDur(base), fmtDur(est), fmt.Sprintf("%+.1f%%", ovh))
		}
	}
	return t, nil
}

// timePipeline builds a two-join chain over three copies of an
// orders-like relation with duplicated key columns (k1, k2) and times its
// execution. kase selects whether the upper join keys off the lower probe
// (1) or lower build (2) relation.
func timePipeline(cfg Config, rows, kase int, estimate bool) (time.Duration, error) {
	domain := rows / 4
	if domain < 10 {
		domain = 10
	}
	mk := func(name string, seed int64) (*catalog.Entry, error) {
		tb, err := tpch.SkewedTable(name, rows, seed,
			tpch.ColumnSpec{Name: "k1", Domain: domain, Z: 0, PermSeed: seed + 1},
			tpch.ColumnSpec{Name: "k2", Domain: domain, Z: 0, PermSeed: seed + 2},
		)
		if err != nil {
			return nil, err
		}
		c := catalog.New()
		return c.Register(tb), nil
	}
	cat := catalog.New()
	var tables [3]*catalog.Entry
	for i, name := range []string{"oa", "ob", "oc"} {
		e, err := mk(name, cfg.Seed+int64(i)*17)
		if err != nil {
			return 0, err
		}
		cat.Register(e.Table)
		tables[i] = e
	}
	a := exec.NewScan(tables[0].Table, "")
	b := exec.NewScan(tables[1].Table, "")
	c := exec.NewScan(tables[2].Table, "")
	if estimate {
		for i, sc := range []*exec.Scan{a, b, c} {
			sc.SampleFraction = cfg.SampleFraction
			sc.Seed = cfg.Seed + int64(i)
		}
	}
	lower := exec.NewHashJoin(b, c,
		b.Schema().MustResolve("ob", "k1"), c.Schema().MustResolve("oc", "k1"))
	var probeKey int
	if kase == 1 {
		probeKey = lower.Schema().MustResolve("oc", "k2")
	} else {
		probeKey = lower.Schema().MustResolve("ob", "k2")
	}
	top := exec.NewHashJoin(a, lower, a.Schema().MustResolve("oa", "k2"), probeKey)
	plan.EstimateCardinalities(top, cat)
	if estimate {
		core.Attach(top)
	}
	start := time.Now()
	if _, err := exec.Run(top); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func table4Aggregation(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Table 4 (b): aggregation estimation overhead (GROUP BY custkey on orders, 10% samples)",
		Headers: []string{"SF", "baseline", "GEE", "MLE", "ovh GEE", "ovh MLE"},
	}
	for _, sf := range []float64{cfg.SF / 2, cfg.SF, cfg.SF * 2} {
		cat, err := tpch.Generate(tpch.Config{
			SF: sf, Seed: cfg.Seed, Tables: []string{"orders"},
		})
		if err != nil {
			return nil, err
		}
		base, err := bestOf(5, func() (time.Duration, error) { return timeAgg(cfg, cat, "none") })
		if err != nil {
			return nil, err
		}
		gee, err := bestOf(5, func() (time.Duration, error) { return timeAgg(cfg, cat, "gee") })
		if err != nil {
			return nil, err
		}
		mle, err := bestOf(5, func() (time.Duration, error) { return timeAgg(cfg, cat, "mle") })
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.3g", sf), fmtDur(base), fmtDur(gee), fmtDur(mle),
			fmt.Sprintf("%+.1f%%", 100*(gee.Seconds()-base.Seconds())/base.Seconds()),
			fmt.Sprintf("%+.1f%%", 100*(mle.Seconds()-base.Seconds())/base.Seconds()))
	}
	return t, nil
}

// timeAgg times GROUP BY custkey over orders with the chosen estimator
// ("none", "gee", "mle") attached to the aggregation's input pass.
func timeAgg(cfg Config, cat *catalog.Catalog, estimator string) (time.Duration, error) {
	orders := cat.MustLookup("orders").Table
	sc := exec.NewScan(orders, "")
	if estimator != "none" {
		sc.SampleFraction = cfg.SampleFraction
		sc.Seed = cfg.Seed
	}
	ck := sc.Schema().MustResolve("orders", "custkey")
	agg := exec.NewHashAgg(sc, []int{ck}, []exec.AggSpec{{Func: exec.CountStar, Name: "cnt"}})
	plan.EstimateCardinalities(agg, cat)
	total := float64(orders.NumRows())
	// Both estimators ride the aggregation's own hash table via the
	// group-count hook (the paper's interleaved integration); GEE is the
	// pure O(1)-per-tuple update, MLE additionally recomputes on the
	// Algorithm 3 adaptive interval.
	switch estimator {
	case "gee":
		tr := distinct.NewProfileTracker(total, -1) // τ=-1: always GEE
		tr.DisableMLERecompute()
		agg.OnInputGroupCount = tr.ObserveCount
	case "mle":
		tr := distinct.NewProfileTracker(total, 1e18) // τ huge: always MLE
		agg.OnInputGroupCount = tr.ObserveCount
	}
	start := time.Now()
	if _, err := exec.Run(agg); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
