package experiments

import (
	"fmt"

	"qpi/internal/catalog"
	"qpi/internal/exec"
	"qpi/internal/tpch"
)

// Figure6 reproduces Figure 6: pipelines of two hash joins on different
// attributes, with both custkey and nationkey replaced by skewed
// distributions over a common domain (paper: 25K; scaled here).
//
// (a) Case 1 — the upper join's key comes from the lower join's *probe*
// relation (A.y = C.y). The lower join's skew is fixed at z=2 and the
// upper join columns vary over z ∈ {0, 1} (the paper notes z=2 produced
// an empty upper join, so that curve does not exist).
//
// (b) Case 2 — the upper join's key comes from the lower join's *build*
// relation (A.y = B.y), exercising the derived histogram. The lower
// join's skew is fixed at z=1 and the upper join columns vary.
func Figure6(cfg Config) ([]*Table, error) {
	// The paper pairs 150K-row tables with 25K-value domains (six rows
	// per value); keep that density at any scale so the joins are neither
	// empty nor trivially dense.
	dom := cfg.Rows / 6
	if dom < 10 {
		dom = 10
	}
	var out []*Table

	// Case 1: A(custkey) ⋈ (B(nationkey) ⋈ C(nationkey, custkey)) with
	// the upper join on C.custkey.
	{
		var series []Series
		for _, zUpper := range []float64{0, 1, 2} {
			cat := catalog.New()
			a, err := tpch.SkewedTable("a", cfg.Rows, cfg.Seed+1,
				tpch.ColumnSpec{Name: "custkey", Domain: dom, Z: zUpper, PermSeed: 101})
			if err != nil {
				return nil, err
			}
			b, err := tpch.SkewedTable("b", cfg.Rows, cfg.Seed+2,
				tpch.ColumnSpec{Name: "nationkey", Domain: dom, Z: 2, PermSeed: 202})
			if err != nil {
				return nil, err
			}
			c, err := tpch.SkewedTable("c", cfg.Rows, cfg.Seed+3,
				tpch.ColumnSpec{Name: "nationkey", Domain: dom, Z: 2, PermSeed: 303},
				tpch.ColumnSpec{Name: "custkey", Domain: dom, Z: zUpper, PermSeed: 404})
			if err != nil {
				return nil, err
			}
			cat.Register(a)
			cat.Register(b)
			cat.Register(c)
			lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""),
				"b", "nationkey", "c", "nationkey")
			upperBuild := exec.NewScan(a, "")
			top := exec.NewHashJoin(upperBuild, lower,
				upperBuild.Schema().MustResolve("a", "custkey"),
				lower.Schema().MustResolve("c", "custkey"))
			sers, truths, err := chainTrajectories(cat, top, 200)
			if err != nil {
				return nil, err
			}
			if truths[0] == 0 {
				// The paper: "The reason why there is no graph for z=2
				// for the upper join is that the join produced no
				// tuples."
				continue
			}
			s := sers[0]
			s.Name = fmt.Sprintf("upper z=%g", zUpper)
			series = append(series, s)
		}
		out = append(out, SeriesTable(
			fmt.Sprintf("Figure 6 (a) Case 1 (lower z=2 fixed, domain %d): upper-join ratio error vs %% lower probe input", dom),
			cfg.Checkpoints, series...))
	}

	// Case 2: A(custkey) ⋈ (B(nationkey, custkey) ⋈ C(nationkey)) with
	// the upper join on B.custkey — the derived-histogram case.
	{
		var series []Series
		for _, zUpper := range []float64{0, 1, 2} {
			cat := catalog.New()
			a, err := tpch.SkewedTable("a", cfg.Rows, cfg.Seed+4,
				tpch.ColumnSpec{Name: "custkey", Domain: dom, Z: zUpper, PermSeed: 111})
			if err != nil {
				return nil, err
			}
			b, err := tpch.SkewedTable("b", cfg.Rows, cfg.Seed+5,
				tpch.ColumnSpec{Name: "nationkey", Domain: dom, Z: 1, PermSeed: 222},
				tpch.ColumnSpec{Name: "custkey", Domain: dom, Z: zUpper, PermSeed: 333})
			if err != nil {
				return nil, err
			}
			c, err := tpch.SkewedTable("c", cfg.Rows, cfg.Seed+6,
				tpch.ColumnSpec{Name: "nationkey", Domain: dom, Z: 1, PermSeed: 444})
			if err != nil {
				return nil, err
			}
			cat.Register(a)
			cat.Register(b)
			cat.Register(c)
			lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""),
				"b", "nationkey", "c", "nationkey")
			upperBuild := exec.NewScan(a, "")
			top := exec.NewHashJoin(upperBuild, lower,
				upperBuild.Schema().MustResolve("a", "custkey"),
				lower.Schema().MustResolve("b", "custkey"))
			sers, truths, err := chainTrajectories(cat, top, 200)
			if err != nil {
				return nil, err
			}
			if truths[0] == 0 {
				continue
			}
			s := sers[0]
			s.Name = fmt.Sprintf("upper z=%g", zUpper)
			series = append(series, s)
		}
		out = append(out, SeriesTable(
			fmt.Sprintf("Figure 6 (b) Case 2 (lower z=1 fixed, domain %d): upper-join ratio error vs %% lower probe input", dom),
			cfg.Checkpoints, series...))
	}
	return out, nil
}
