package experiments

import (
	"fmt"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/plan"
	"qpi/internal/progress"
	"qpi/internal/storage"
	"qpi/internal/tpch"
)

// Figure8 reproduces Figure 8: estimated vs actual progress over the
// lifetime of a TPC-H-Q8-shaped query (an 8-table join whose main
// processing is a pipeline of three hash joins feeding an aggregation) on
// Zipf-skewed data, comparing the once-based progress monitor against the
// dne baseline. Both monitors observe the same single execution; actual
// progress is C(Q) at the sample over the final C(Q).
func Figure8(cfg Config) (*Table, error) {
	cat, err := tpch.Generate(tpch.Config{SF: cfg.SF, Seed: cfg.Seed, Skew: 2})
	if err != nil {
		return nil, err
	}
	root := q8Plan(cat, cfg)
	plan.EstimateCardinalities(root, cat)
	core.Attach(root)
	onceMon := progress.NewMonitor(root, progress.ModeOnce)
	dneMon := progress.NewMonitor(root, progress.ModeDNE)

	type sample struct{ c, once, dne float64 }
	var samples []sample
	// Sample roughly every 1/400 of a rough work guess; refine post-hoc
	// with the true final C(Q).
	_, tGuess := onceMon.Totals()
	every := int64(tGuess / 400)
	if every < 1 {
		every = 1
	}
	progress.InstallTicker(root, every, func() {
		c, _ := onceMon.Totals()
		samples = append(samples, sample{c: c, once: onceMon.Progress(), dne: dneMon.Progress()})
	})
	if _, err := exec.Run(root); err != nil {
		return nil, err
	}
	// Final sample at completion.
	{
		c, _ := onceMon.Totals()
		samples = append(samples, sample{c: c, once: onceMon.Progress(), dne: dneMon.Progress()})
	}
	cFinal, _ := onceMon.Totals()
	var once, dne Series
	once.Name, dne.Name = "once", "dne"
	for _, s := range samples {
		x := s.c / cFinal
		once.Points = append(once.Points, Point{X: x, Y: s.once})
		dne.Points = append(dne.Points, Point{X: x, Y: s.dne})
	}
	checkpoints := []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00}
	t := SeriesTable(
		fmt.Sprintf("Figure 8: estimated progress vs actual progress (Q8-shaped plan, SF %.3g, Zipf 2)", cfg.SF),
		checkpoints, once, dne)
	t.Headers[0] = "actual"
	return t, nil
}

// q8Plan hand-builds the TPC-H Q8 plan shape over our tables: the main
// pipeline is three hash joins probing lineitem; their build inputs are
// part, (nation ⋈ supplier) and a chain joining region ⋈ nation ⋈
// customer ⋈ orders; an aggregation on the order date sits on top. Eight
// base table scans in total (nation scanned twice), as in the paper's
// 8-table join.
func q8Plan(cat *catalog.Catalog, cfg Config) exec.Operator {
	// The fact table carries no column statistics (the everyday "never
	// ANALYZEd the big table" situation): the optimizer falls back to
	// worst-case distinct counts and underestimates every join against
	// lineitem — reproducing the paper's "sizes of which are
	// underestimated by the optimizer".
	cat.MustLookup("lineitem").Stats.Columns = map[string]*catalog.ColumnStats{}

	scan := func(table, alias string) *exec.Scan {
		sc := exec.NewScan(cat.MustLookup(table).Table, alias)
		if cfg.SampleFraction > 0 {
			sc.SampleFraction = cfg.SampleFraction
			sc.Seed = cfg.Seed + int64(len(alias)) + int64(len(table))*3
		}
		return sc
	}
	region := scan("region", "")
	n1 := scan("nation", "n1")
	customerS := scan("customer", "")
	orders := scan("orders", "")
	n2 := scan("nation", "n2")
	supplier := scan("supplier", "")
	part := scan("part", "")
	lineitem := scan("lineitem", "")

	// Q8's selections, placed around the skew's hot keys (the paper's
	// workloads are engineered the same way with the skew tool [8]): the
	// optimizer's uniform-range selectivity estimate sees a narrow key
	// range, but under Zipf(2) that range carries most of the probe
	// tuples — so the optimizer underestimates the pipeline joins, the
	// paper's Figure 8 scenario.
	partF := exec.NewFilter(part, hotKeyRangePred(
		cat.MustLookup("lineitem").Table, "partkey",
		part.Schema(), "part", "partkey",
		cat.MustLookup("part").Table.NumRows()/25))
	custF := exec.NewFilter(customerS, hotKeyRangePred(
		cat.MustLookup("orders").Table, "custkey",
		customerS.Schema(), "customer", "custkey",
		cat.MustLookup("customer").Table.NumRows()/25))

	// Build-side chain: region ⋈ n1 ⋈ σ(customer) ⋈ orders.
	jRN := exec.NewHashJoin(region, n1,
		region.Schema().MustResolve("region", "regionkey"),
		n1.Schema().MustResolve("n1", "regionkey"))
	jRNC := exec.NewHashJoin(jRN, custF,
		jRN.Schema().MustResolve("n1", "nationkey"),
		custF.Schema().MustResolve("customer", "nationkey"))
	ordersSub := exec.NewHashJoin(jRNC, orders,
		jRNC.Schema().MustResolve("customer", "custkey"),
		orders.Schema().MustResolve("orders", "custkey"))

	// Supplier side: n2 ⋈ supplier.
	supplierSub := exec.NewHashJoin(n2, supplier,
		n2.Schema().MustResolve("n2", "nationkey"),
		supplier.Schema().MustResolve("supplier", "nationkey"))

	// Main pipeline: three hash joins probing lineitem.
	j3 := exec.NewHashJoin(ordersSub, lineitem,
		ordersSub.Schema().MustResolve("orders", "orderkey"),
		lineitem.Schema().MustResolve("lineitem", "orderkey"))
	j2 := exec.NewHashJoin(supplierSub, j3,
		supplierSub.Schema().MustResolve("supplier", "suppkey"),
		j3.Schema().MustResolve("lineitem", "suppkey"))
	j1 := exec.NewHashJoin(partF, j2,
		partF.Schema().MustResolve("part", "partkey"),
		j2.Schema().MustResolve("lineitem", "partkey"))

	dateIdx := j1.Schema().MustResolve("orders", "orderdate")
	return exec.NewHashAgg(j1, []int{dateIdx},
		[]exec.AggSpec{{Func: exec.CountStar, Name: "cnt"}})
}

// hotKeyRangePred builds a range predicate on filterCol of the filtered
// table, centered on the most frequent value of refCol in the referencing
// table. The range has width 2·halfWidth, so the optimizer's uniform
// range selectivity is small while the true fraction of referencing
// tuples passing it is dominated by the hot key — the engineered
// underestimation of the Figure 8 workload.
func hotKeyRangePred(referencing *storage.Table, refCol string,
	filtered *data.Schema, filterTable, filterCol string, halfWidth int) expr.Expr {

	idx := referencing.Schema().MustResolve(referencing.Name(), refCol)
	counts := map[int64]int64{}
	it := referencing.SequentialOrder()
	for tu := it.Next(); tu != nil; tu = it.Next() {
		counts[tu[idx].I]++
	}
	var hot, best int64
	for v, c := range counts {
		if c > best || (c == best && v < hot) {
			hot, best = v, c
		}
	}
	if halfWidth < 1 {
		halfWidth = 1
	}
	col := expr.Column(filtered, filterTable, filterCol)
	return expr.AndOf(
		expr.Compare(expr.GE, col, expr.IntLit(hot-int64(halfWidth))),
		expr.Compare(expr.LE, col, expr.IntLit(hot+int64(halfWidth))),
	)
}
