package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qpi/internal/core"
	"qpi/internal/disk"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/tpch"
)

// ExtDisk is an extension experiment that re-runs Table 3's join-overhead
// measurement with the probe table resident on disk, approximating the
// paper's setting (PostgreSQL scans disk pages): when the baseline pays
// real I/O and decoding, the framework's CPU cost hides behind it and the
// relative overhead drops toward the paper's small percentages.
func ExtDisk(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Extension: join overhead with on-disk probe input (lineitem ⋈ orders, 10% samples)",
		Headers: []string{"SF", "baseline", "with estimation", "overhead"},
	}
	dir, err := os.MkdirTemp("", "qpi-disk-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	for _, sf := range []float64{cfg.SF, cfg.SF * 2} {
		cat, err := tpch.Generate(tpch.Config{
			SF: sf, Seed: cfg.Seed, Tables: []string{"orders", "lineitem"},
		})
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("lineitem-%g.qpit", sf))
		if err := disk.WriteTable(path, cat.MustLookup("lineitem").Table); err != nil {
			return nil, err
		}
		run := func(estimate bool) (time.Duration, error) {
			tf, err := disk.OpenTable(path)
			if err != nil {
				return 0, err
			}
			defer tf.Close()
			orders := cat.MustLookup("orders").Table
			buildScan := exec.NewScan(orders, "")
			probeScan := disk.NewScan(tf, "")
			if estimate {
				buildScan.SampleFraction = cfg.SampleFraction
				buildScan.Seed = cfg.Seed
				probeScan.SampleFraction = cfg.SampleFraction
				probeScan.Seed = cfg.Seed + 1
			}
			j := exec.NewHashJoin(buildScan, probeScan,
				buildScan.Schema().MustResolve("orders", "orderkey"),
				probeScan.Schema().MustResolve("lineitem", "orderkey"))
			plan.EstimateCardinalities(j, cat)
			if estimate {
				core.Attach(j)
			}
			start := time.Now()
			if _, err := exec.Run(j); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		base, err := bestOf(3, func() (time.Duration, error) { return run(false) })
		if err != nil {
			return nil, err
		}
		est, err := bestOf(3, func() (time.Duration, error) { return run(true) })
		if err != nil {
			return nil, err
		}
		ovh := 100 * (est.Seconds() - base.Seconds()) / base.Seconds()
		t.AddRow(fmt.Sprintf("%.3g", sf), fmtDur(base), fmtDur(est),
			fmt.Sprintf("%+.1f%%", ovh))
	}
	return t, nil
}
