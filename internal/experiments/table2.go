package experiments

import (
	"qpi/internal/core"
	"qpi/internal/data"
)

// Table2 reproduces Table 2: the memory footprint of the exact frequency
// histograms as a function of entry count. The paper stores 8 payload
// bytes per entry inside PostgreSQL's generic hash table and observes
// ~20 B/entry of structure overhead; we report the same payload
// accounting plus the estimated Go map allocation.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Table 2: memory overheads of histograms",
		Headers: []string{"#Values", "Mem. Used", "Mem. Alloc."},
	}
	sizes := []int64{1000, 10000, 100000, 1000000}
	if cfg.Rows < 150000 {
		// Scaled-down runs keep the largest size affordable.
		sizes = []int64{1000, 10000, 100000}
	}
	for _, n := range sizes {
		h := core.NewFreqHistogram()
		for i := int64(0); i < n; i++ {
			h.Add(data.Int(i))
		}
		t.AddRow(itoa(n), humanBytes(h.MemoryUsed()), humanBytes(h.MemoryAllocated()))
	}
	return t, nil
}
