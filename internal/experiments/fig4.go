package experiments

import (
	"fmt"

	"qpi/internal/catalog"
	"qpi/internal/tpch"
)

// Figure4 reproduces Figure 4: once vs dne vs byte ratio errors.
//
// (a) C_{1,large} ⋈ C'_{1,large} on nationkey — the scenario where the
// optimizer estimate is badly off and the byte estimator converges slowly
// while dne fluctuates with the hash partitioning order.
//
// (b) a primary-key/foreign-key join between a customer table and its
// (domain-widened) nation table with a selection nationkey < domain/2.5
// on the build side.
//
// The x axis for dne/byte is the fraction of the probe input *joined*
// (second pass); once has already converged before that pass begins, so
// its ratio error is reported against the fraction of the probe input
// *seen* (first pass) — the same presentation as the paper's Figure 4.
func Figure4(cfg Config) ([]*Table, error) {
	var out []*Table

	// (a) skewed self-join with misaligned hot values.
	{
		cat := catalog.New()
		build := customer("cb", cfg.Rows, cfg.DomainLarge, 1, cfg.Seed+1, 77)
		probe := customer("cp", cfg.Rows, cfg.DomainLarge, 1, cfg.Seed+2, 99)
		cat.Register(build)
		cat.Register(probe)
		once, dne, byteS, truth, opt, err := binaryJoinTrajectories(
			cat, build, probe, "nationkey", "nationkey", 200, "", 0)
		if err != nil {
			return nil, err
		}
		t := SeriesTable(
			fmt.Sprintf("Figure 4 (a) C_{1,%d} ⋈ C'_{1,%d}: ratio error (optimizer off by %.1fx, true size %d)",
				cfg.DomainLarge, cfg.DomainLarge, ratioOff(opt, truth), truth),
			cfg.Checkpoints, once, dne, byteS)
		out = append(out, t)
	}

	// (b) PK-FK join with a selection on the build side.
	{
		cat := catalog.New()
		probe := customer("cust", cfg.Rows, cfg.DomainLarge, 1, cfg.Seed+3, 55)
		nation := tpch.NationTable("nation", cfg.DomainLarge)
		cat.Register(probe)
		cat.Register(nation)
		cut := int64(float64(cfg.DomainLarge) / 2.5)
		once, dne, byteS, truth, opt, err := binaryJoinTrajectories(
			cat, nation, probe, "nationkey", "nationkey", 200, "nationkey", cut)
		if err != nil {
			return nil, err
		}
		t := SeriesTable(
			fmt.Sprintf("Figure 4 (b) σ(nationkey<%d)(nation) ⋈ customer: ratio error (optimizer off by %.1fx, true size %d)",
				cut, ratioOff(opt, truth), truth),
			cfg.Checkpoints, once, dne, byteS)
		out = append(out, t)
	}
	return out, nil
}

func ratioOff(opt float64, truth int64) float64 {
	if truth == 0 || opt == 0 {
		return 0
	}
	r := opt / float64(truth)
	if r < 1 {
		r = 1 / r
	}
	return r
}
