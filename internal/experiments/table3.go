package experiments

import (
	"fmt"
	"time"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/tpch"
)

// Table3 reproduces Table 3: the runtime overhead the estimation
// framework adds to a lineitem ⋈ orders primary-key/foreign-key join
// (both grace hash join and sort-merge join) at varying block-sample
// sizes, across TPC-H scale factors. The paper's claim: overheads are a
// small fraction of the query time because estimation rides the
// preprocessing passes.
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Table 3: join runtime overhead of the estimation framework",
		Headers: []string{"SF", "join", "baseline", "1% sample", "5% sample", "10% sample",
			"ovh@10%"},
	}
	for _, sf := range []float64{cfg.SF / 2, cfg.SF, cfg.SF * 2} {
		cat, err := tpch.Generate(tpch.Config{
			SF: sf, Seed: cfg.Seed, Tables: []string{"orders", "lineitem"},
		})
		if err != nil {
			return nil, err
		}
		for _, kind := range []string{"hash", "sort-merge"} {
			base, err := bestOf(3, func() (time.Duration, error) {
				return timeJoin(cat, kind, false, 0, cfg.Seed)
			})
			if err != nil {
				return nil, err
			}
			var withEst [3]time.Duration
			for i, frac := range []float64{0.01, 0.05, 0.10} {
				frac := frac
				d, err := bestOf(3, func() (time.Duration, error) {
					return timeJoin(cat, kind, true, frac, cfg.Seed)
				})
				if err != nil {
					return nil, err
				}
				withEst[i] = d
			}
			ovh := 100 * (withEst[2].Seconds() - base.Seconds()) / base.Seconds()
			t.AddRow(
				fmt.Sprintf("%.3g", sf),
				kind,
				fmtDur(base),
				fmtDur(withEst[0]),
				fmtDur(withEst[1]),
				fmtDur(withEst[2]),
				fmt.Sprintf("%+.1f%%", ovh),
			)
		}
	}
	return t, nil
}

// timeJoin builds and runs a lineitem ⋈ orders join, returning the wall
// time. When estimate is true the framework is attached and the scans
// deliver a block sample of sampleFrac first.
func timeJoin(cat *catalog.Catalog, kind string, estimate bool, sampleFrac float64, seed int64) (time.Duration, error) {
	orders := cat.MustLookup("orders").Table
	lineitem := cat.MustLookup("lineitem").Table
	buildScan := exec.NewScan(orders, "")
	probeScan := exec.NewScan(lineitem, "")
	if estimate && sampleFrac > 0 {
		buildScan.SampleFraction = sampleFrac
		buildScan.Seed = seed
		probeScan.SampleFraction = sampleFrac
		probeScan.Seed = seed + 1
	}
	var root exec.Operator
	switch kind {
	case "hash":
		root = exec.NewHashJoin(buildScan, probeScan,
			buildScan.Schema().MustResolve("orders", "orderkey"),
			probeScan.Schema().MustResolve("lineitem", "orderkey"))
	default:
		mj, _, _ := exec.NewSortMergeJoin(buildScan, probeScan,
			buildScan.Schema().MustResolve("orders", "orderkey"),
			probeScan.Schema().MustResolve("lineitem", "orderkey"))
		root = mj
	}
	plan.EstimateCardinalities(root, cat)
	if estimate {
		core.Attach(root)
	}
	start := time.Now()
	if _, err := exec.Run(root); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// bestOf returns the minimum duration over n runs (the standard
// de-noising for wall-clock microbenchmarks).
func bestOf(n int, f func() (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < n; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}
