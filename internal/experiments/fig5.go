package experiments

import (
	"fmt"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/storage"
)

// chainTrajectories executes a hash-join chain rooted at top with the
// framework attached, sampling every join level's estimate during the
// bottom probe pass. It returns one ratio-error series per level (0 =
// top) plus the true cardinalities.
func chainTrajectories(cat *catalog.Catalog, top *exec.HashJoin, samples int) ([]Series, []int64, error) {
	plan.EstimateCardinalities(top, cat)
	att := core.Attach(top)
	pe := att.ChainOf[top]
	if pe == nil || att.LevelOf[top] != 0 {
		return nil, nil, fmt.Errorf("experiments: no chain estimator for top join")
	}
	m := pe.Levels()
	raw := make([]Series, m)

	// The bottom stream size: read from the bottom join's probe scan.
	var bottom *exec.HashJoin = top
	for {
		next, ok := bottom.Probe().(*exec.HashJoin)
		if !ok {
			break
		}
		bottom = next
	}
	probeRows := int64(1)
	if sc, ok := bottom.Probe().(*exec.Scan); ok {
		probeRows = int64(sc.Table().NumRows())
	}
	every := probeRows / int64(samples)
	if every < 1 {
		every = 1
	}
	pe.OnProbeObserved = func(t int64) {
		if t%every == 0 || t == probeRows {
			x := float64(t) / float64(probeRows)
			for k := 0; k < m; k++ {
				raw[k].Points = append(raw[k].Points, Point{X: x, Y: pe.Estimate(k)})
			}
		}
	}
	if _, err := exec.Run(top); err != nil {
		return nil, nil, err
	}
	// True sizes per level.
	truths := make([]int64, m)
	cur := top
	for k := 0; k < m; k++ {
		truths[k] = cur.Stats().Emitted.Load()
		if next, ok := cur.Probe().(*exec.HashJoin); ok {
			cur = next
		}
	}
	series := make([]Series, m)
	for k := 0; k < m; k++ {
		series[k] = toRatio(raw[k], fmt.Sprintf("level%d", k), truths[k])
	}
	return series, truths, nil
}

// sameAttrPipeline builds A ⋈x (B ⋈x C): a two-join pipeline on one
// attribute.
func sameAttrPipeline(a, b, c *storage.Table) *exec.HashJoin {
	lower := exec.NewHashJoinOn(exec.NewScan(b, ""), exec.NewScan(c, ""),
		b.Name(), "nationkey", c.Name(), "nationkey")
	return exec.NewHashJoin(exec.NewScan(a, ""), lower,
		exec.NewScan(a, "").Schema().MustResolve(a.Name(), "nationkey"),
		lower.Schema().MustResolve(c.Name(), "nationkey"))
}

// Figure5 reproduces Figure 5: a pipeline of two hash joins on the same
// attribute over three equal-skew, differently-permuted tables; (a) the
// upper join's estimate and (b) the lower join's estimate, both against
// the fraction of the lower probe input seen, for z ∈ {0, 1, 2}.
func Figure5(cfg Config) ([]*Table, error) {
	var upperSeries, lowerSeries []Series
	for _, z := range []float64{0, 1, 2} {
		cat := catalog.New()
		a := customer("a", cfg.Rows, cfg.DomainSmall, z, cfg.Seed+1, 11)
		b := customer("b", cfg.Rows, cfg.DomainSmall, z, cfg.Seed+2, 22)
		c := customer("c", cfg.Rows, cfg.DomainSmall, z, cfg.Seed+3, 33)
		cat.Register(a)
		cat.Register(b)
		cat.Register(c)
		top := sameAttrPipeline(a, b, c)
		series, truths, err := chainTrajectories(cat, top, 200)
		if err != nil {
			return nil, err
		}
		if truths[0] == 0 || truths[1] == 0 {
			continue // empty joins have no ratio error (cf. Figure 6 note)
		}
		series[0].Name = fmt.Sprintf("z=%g", z)
		series[1].Name = fmt.Sprintf("z=%g", z)
		upperSeries = append(upperSeries, series[0])
		lowerSeries = append(lowerSeries, series[1])
	}
	ta := SeriesTable(
		fmt.Sprintf("Figure 5 (a) upper join of same-attribute pipeline (domain %d): ratio error vs %% lower probe input",
			cfg.DomainSmall),
		cfg.Checkpoints, upperSeries...)
	tb := SeriesTable(
		fmt.Sprintf("Figure 5 (b) lower join of same-attribute pipeline (domain %d): ratio error vs %% lower probe input",
			cfg.DomainSmall),
		cfg.Checkpoints, lowerSeries...)
	return []*Table{ta, tb}, nil
}
