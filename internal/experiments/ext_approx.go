package experiments

import (
	"fmt"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/exec"
	"qpi/internal/plan"
)

// ExtApprox is an extension experiment beyond the paper's evaluation: it
// explores the accuracy/memory trade-off of approximate (bucketized)
// histograms that §6 proposes as future work. A skewed binary join runs
// with exact histograms and with bucket histograms of decreasing size;
// the table reports the converged ratio error (approximate counts can
// only overestimate) against the histogram memory.
func ExtApprox(cfg Config) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Extension: approximate histograms (C_{1,%d} ⋈ C'_{1,%d}, %d rows)",
			cfg.DomainLarge, cfg.DomainLarge, cfg.Rows),
		Headers: []string{"histogram", "memory", "converged ratio error"},
	}
	build := customer("cb", cfg.Rows, cfg.DomainLarge, 1, cfg.Seed+1, 7)
	probe := customer("cp", cfg.Rows, cfg.DomainLarge, 1, cfg.Seed+2, 8)

	run := func(factory core.HistogramFactory) (ratio float64, mem int64, err error) {
		cat := catalog.New()
		cat.Register(build)
		cat.Register(probe)
		j := exec.NewHashJoinOn(exec.NewScan(build, ""), exec.NewScan(probe, ""),
			"cb", "nationkey", "cp", "nationkey")
		plan.EstimateCardinalities(j, cat)
		att := core.AttachWith(j, core.AttachOptions{Histograms: factory})
		n, err := exec.Run(j)
		if err != nil {
			return 0, 0, err
		}
		pe := att.ChainOf[j]
		est := pe.Estimate(0)
		if n > 0 {
			ratio = est / float64(n)
		}
		mem = pe.Histogram(0, 0).MemoryUsed()
		return ratio, mem, nil
	}

	ratio, mem, err := run(core.ExactHistograms)
	if err != nil {
		return nil, err
	}
	t.AddRow("exact", humanBytes(mem), f3(ratio))
	for _, buckets := range []int{4096, 1024, 256, 64} {
		ratio, mem, err := run(core.ApproximateHistograms(buckets))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d buckets", buckets), humanBytes(mem), f3(ratio))
	}
	return t, nil
}
