package experiments

import (
	"fmt"

	"qpi/internal/catalog"
)

// Figure3 reproduces Figure 3: the ratio error of the once estimator for
// binary hash joins between two equal-skew, differently-permuted customer
// tables, (a) on a small key domain and (b) on a large key domain, for
// Zipf z ∈ {0, 1, 2}. The paper's claim: the estimator converges to ratio
// error ~1 after seeing only a small fraction of the probe input.
func Figure3(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, dom := range []struct {
		label  string
		domain int
	}{
		{"(a) small domain", cfg.DomainSmall},
		{"(b) large domain", cfg.DomainLarge},
	} {
		var series []Series
		for _, z := range []float64{0, 1, 2} {
			cat := catalog.New()
			build := customer("cb", cfg.Rows, dom.domain, z, cfg.Seed+1, 1001)
			probe := customer("cp", cfg.Rows, dom.domain, z, cfg.Seed+2, 2002)
			cat.Register(build)
			cat.Register(probe)
			once, _, _, truth, _, err := binaryJoinTrajectories(
				cat, build, probe, "nationkey", "nationkey", 200, "", 0)
			if err != nil {
				return nil, err
			}
			if truth == 0 {
				// Extreme skew on a large domain with misaligned hot
				// values can produce an empty join; the ratio error is
				// undefined, matching the paper's omission of such
				// curves.
				continue
			}
			once.Name = fmt.Sprintf("z=%g", z)
			series = append(series, once)
		}
		t := SeriesTable(
			fmt.Sprintf("Figure 3 %s (%d values): once ratio error vs %% probe input seen",
				dom.label, dom.domain),
			cfg.Checkpoints, series...)
		out = append(out, t)
	}
	return out, nil
}
