package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper table or figure.
type Runner func(Config) ([]*Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig3": Figure3,
	"fig4": Figure4,
	"fig5": Figure5,
	"fig6": Figure6,
	"table1": func(c Config) ([]*Table, error) {
		t, err := Table1(c)
		return []*Table{t}, err
	},
	"table2": func(c Config) ([]*Table, error) {
		t, err := Table2(c)
		return []*Table{t}, err
	},
	"table3": func(c Config) ([]*Table, error) {
		t, err := Table3(c)
		return []*Table{t}, err
	},
	"table4": Table4,
	"fig8": func(c Config) ([]*Table, error) {
		t, err := Figure8(c)
		return []*Table{t}, err
	},
	"ext-approx": func(c Config) ([]*Table, error) {
		t, err := ExtApprox(c)
		return []*Table{t}, err
	},
	"ext-disk": func(c Config) ([]*Table, error) {
		t, err := ExtDisk(c)
		return []*Table{t}, err
	},
	"ext-distinct": func(c Config) ([]*Table, error) {
		t, err := ExtDistinct(c)
		return []*Table{t}, err
	},
}

// Names lists the available experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one experiment by id.
func Run(name string, cfg Config) ([]*Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg)
}
