package experiments

import (
	"fmt"
	"math"

	"qpi/internal/data"
	"qpi/internal/distinct"
	"qpi/internal/zipf"
)

// ExtDistinct is an extension experiment comparing the paper's GEE and
// MLE against the classic literature estimators it cites (Chao '84,
// first-order jackknife, Shlosser): ratio error at a 10% sample across
// domain sizes and skews. It extends Table 1's design space with the
// baselines [5] surveys.
func ExtDistinct(cfg Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Extension: distinct estimators at a 10%% sample (ratio error, stream of %d rows)", cfg.Rows),
		Headers: []string{"#Values", "z", "truth", "GEE", "MLE", "Chao84", "Jackknife1", "Shlosser"},
	}
	for _, domain := range []int{cfg.DomainSmall, cfg.DomainLarge} {
		for _, z := range []float64{0, 1, 2} {
			g, err := zipf.New(domain, z, cfg.Seed+int64(domain)+int64(z*31), 0)
			if err != nil {
				return nil, err
			}
			n := cfg.Rows
			vals := make([]int64, n)
			seen := map[int64]bool{}
			for i := range vals {
				vals[i] = g.Next()
				seen[vals[i]] = true
			}
			truth := float64(len(seen))

			ests := []distinct.Estimator{
				distinct.NewGEE(float64(n)),
				distinct.NewMLE(float64(n)),
				distinct.NewChao84(float64(n)),
				distinct.NewJackknife1(float64(n)),
				distinct.NewShlosser(float64(n)),
			}
			for _, v := range vals[:n/10] {
				dv := data.Int(v)
				for _, e := range ests {
					e.Observe(dv)
				}
			}
			row := []string{itoa(int64(domain)), fmt.Sprintf("%g", z), itoa(int64(truth))}
			for _, e := range ests {
				r := math.NaN()
				if truth > 0 {
					r = e.Estimate() / truth
				}
				row = append(row, f3(r))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
