// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment builds its workload with the same
// parameters the paper reports (scaled by a configurable factor so the
// full suite runs on a laptop), executes it on the engine with the
// estimators attached, and returns the series/rows the paper plots.
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/plan"
	"qpi/internal/storage"
	"qpi/internal/tpch"
)

// Config scales the experiments. The paper's accuracy experiments use
// customer tables of 150K rows (TPC-H SF 1) and overhead experiments use
// SF 0.5–2; the defaults here shrink both so the whole suite runs in
// seconds. Multiply up to approach the paper's absolute sizes.
type Config struct {
	// Rows is the row count of the synthetic customer tables
	// (paper: 150000).
	Rows int
	// DomainSmall and DomainLarge are the Figure 3 key domains
	// (paper: 5000 and 125000).
	DomainSmall, DomainLarge int
	// SF is the TPC-H scale factor for the overhead and progress
	// experiments (paper: 0.5, 1, 2).
	SF float64
	// SampleFraction is the block-sample size for scans (paper: 10%).
	SampleFraction float64
	// Seed drives all generators.
	Seed int64
	// Checkpoints are the probe-input fractions at which ratio errors
	// are reported.
	Checkpoints []float64
}

// DefaultConfig returns laptop-friendly defaults (about 1/5 the paper's
// scale).
func DefaultConfig() Config {
	return Config{
		Rows:           30000,
		DomainSmall:    1000,
		DomainLarge:    25000,
		SF:             0.02,
		SampleFraction: 0.10,
		Seed:           42,
		Checkpoints:    []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00},
	}
}

// PaperConfig returns the paper's original scale (needs a few GB of RAM
// and minutes of runtime).
func PaperConfig() Config {
	return Config{
		Rows:           150000,
		DomainSmall:    5000,
		DomainLarge:    125000,
		SF:             1,
		SampleFraction: 0.10,
		Seed:           42,
		Checkpoints:    []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00},
	}
}

// Point is one sample of an estimate trajectory.
type Point struct {
	// X is the fraction of the driving input consumed (probe input for
	// joins, total work for progress curves).
	X float64
	// Y is the estimate at that instant (a ratio error for accuracy
	// figures, a progress fraction for Figure 8).
	Y float64
}

// Series is a named trajectory.
type Series struct {
	Name   string
	Points []Point
}

// At returns the series value at the latest point with X <= x (NaN-free:
// the first point when x precedes the series).
func (s Series) At(x float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	y := s.Points[0].Y
	for _, p := range s.Points {
		if p.X > x {
			break
		}
		y = p.Y
	}
	return y
}

// customer builds a paper-style C_{z,domain} customer table.
func customer(name string, rows, domain int, z float64, seed, permSeed int64) *storage.Table {
	return tpch.MustSkewedCustomer(name, rows, domain, z, seed, permSeed)
}

// binaryJoinTrajectories runs build ⋈ probe as a grace hash join with the
// full framework attached and returns the once / dne / byte estimate
// trajectories as ratio errors (estimate / true size), plus the true join
// size.
//
// The once series is sampled during the probe partition pass (x =
// fraction of probe input seen); the dne and byte series are sampled
// during the join pass (x = fraction of probe input joined), which is
// where those estimators actually observe output — the reordering effect
// of §5.1.2.
func binaryJoinTrajectories(cat *catalog.Catalog, build, probe *storage.Table,
	buildCol, probeCol string, samples int, buildFilterKey string, buildFilterBelow int64) (once, dne, byteS Series, truth int64, optEst float64, err error) {

	var buildOp exec.Operator = exec.NewScan(build, "")
	if buildFilterKey != "" {
		sc := buildOp.(*exec.Scan)
		buildOp = exec.NewFilter(sc, ltPred(sc, build.Name(), buildFilterKey, buildFilterBelow))
	}
	probeScan := exec.NewScan(probe, "")
	j := exec.NewHashJoin(buildOp, probeScan,
		buildOp.Schema().MustResolve(build.Name(), buildCol),
		probeScan.Schema().MustResolve(probe.Name(), probeCol))
	plan.EstimateCardinalities(j, cat)
	optEst = j.Stats().Estimate()

	att := core.Attach(j)
	pe := att.ChainOf[j]

	probeRows := int64(probe.NumRows())
	every := probeRows / int64(samples)
	if every < 1 {
		every = 1
	}
	// once: sample during the probe partition pass.
	pe.OnProbeObserved = func(t int64) {
		if t%every == 0 || t == probeRows {
			once.Points = append(once.Points, Point{
				X: float64(t) / float64(probeRows),
				Y: pe.Estimate(0),
			})
		}
	}
	// dne/byte: sample during the join pass, as output is produced.
	sampleJoin := func() {
		f := j.JoinedProbeFraction()
		dne.Points = append(dne.Points, Point{X: f, Y: core.DNEEstimate(j, optEst)})
		byteS.Points = append(byteS.Points, Point{X: f, Y: core.ByteEstimate(j, optEst)})
	}

	if err = j.Open(); err != nil {
		return
	}
	var n int64
	var lastSampled int64 = -1
	sampleEveryOut := int64(1)
	for {
		tup, e := j.Next()
		if e != nil {
			err = e
			return
		}
		if tup == nil {
			break
		}
		n++
		if n-lastSampled >= sampleEveryOut {
			sampleJoin()
			lastSampled = n
			// Keep roughly `samples` points by growing the stride.
			if int64(len(dne.Points)) > int64(samples) {
				sampleEveryOut *= 2
			}
		}
	}
	sampleJoin() // final point: both baselines are exact once done
	if cerr := j.Close(); cerr != nil && err == nil {
		err = cerr
	}
	truth = n
	// Convert to ratio errors.
	once = toRatio(once, "once", truth)
	dne = toRatio(dne, "dne", truth)
	byteS = toRatio(byteS, "byte", truth)
	return
}

// ltPred builds the predicate table.col < below against a scan's schema.
func ltPred(sc *exec.Scan, table, col string, below int64) expr.Expr {
	return expr.Compare(expr.LT, expr.Column(sc.Schema(), table, col), expr.IntLit(below))
}

// toRatio converts raw estimates to ratio errors (estimate / truth).
func toRatio(s Series, name string, truth int64) Series {
	out := Series{Name: name, Points: make([]Point, len(s.Points))}
	for i, p := range s.Points {
		r := 0.0
		if truth > 0 {
			r = p.Y / float64(truth)
		}
		out.Points[i] = Point{X: p.X, Y: r}
	}
	return out
}
