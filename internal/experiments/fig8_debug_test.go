package experiments

import (
	"testing"

	"qpi/internal/core"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/tpch"
)

// TestFigure8OptimizerMisestimatesPipeline documents the Figure 8 setup:
// the engineered selections must make the optimizer misestimate the main
// pipeline joins by a large factor (the paper observed underestimation),
// and the once framework must correct every join exactly by the end of
// its probe pass.
func TestFigure8OptimizerMisestimatesPipeline(t *testing.T) {
	cfg := tinyConfig()
	cat, err := tpch.Generate(tpch.Config{SF: cfg.SF, Seed: cfg.Seed, Skew: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := q8Plan(cat, cfg)
	plan.EstimateCardinalities(root, cat)
	optEst := map[exec.Operator]float64{}
	exec.Walk(root, func(op exec.Operator) { optEst[op] = op.Stats().Estimate() })
	core.Attach(root)
	if _, err := exec.Run(root); err != nil {
		t.Fatal(err)
	}
	worst := 1.0
	exec.Walk(root, func(op exec.Operator) {
		j, ok := op.(*exec.HashJoin)
		if !ok {
			return
		}
		truth := float64(j.Stats().Emitted.Load())
		if j.Stats().Source() != "once-exact" {
			t.Errorf("%s: source %q", j.Name(), j.Stats().Source())
		}
		if truth > 0 && j.Stats().Estimate() != truth {
			t.Errorf("%s: converged est %g != %g", j.Name(), j.Stats().Estimate(), truth)
		}
		if truth > 0 && optEst[j] > 0 {
			r := truth / optEst[j]
			t.Logf("%-55s optimizer=%-12.0f true=%-12.0f true/opt=%.2f",
				j.Name(), optEst[j], truth, r)
			if r > worst {
				worst = r
			}
		}
	})
	if worst < 3 {
		t.Errorf("largest underestimation factor %.2f; Figure 8 needs the optimizer to underestimate the pipeline", worst)
	}
}
