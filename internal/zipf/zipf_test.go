package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1, 0); err == nil {
		t.Error("New(0, ...) should fail")
	}
	if _, err := New(-3, 1, 1, 0); err == nil {
		t.Error("New(-3, ...) should fail")
	}
	if _, err := New(10, -0.5, 1, 0); err == nil {
		t.Error("New(.., -0.5, ..) should fail")
	}
	if _, err := New(10, 0, 1, 0); err != nil {
		t.Errorf("New uniform failed: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0,...) did not panic")
		}
	}()
	MustNew(0, 1, 1, 0)
}

func TestDomainBounds(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 2} {
		g := MustNew(50, z, 42, 7)
		for i := 0; i < 5000; i++ {
			v := g.Next()
			if v < 1 || v > 50 {
				t.Fatalf("z=%g: value %d out of [1,50]", z, v)
			}
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	g := MustNew(10, 0, 1, 0)
	counts := map[int64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for v := int64(1); v <= 10; v++ {
		frac := float64(counts[v]) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("value %d frequency %.3f, want ~0.1", v, frac)
		}
	}
}

func TestSkewConcentratesMass(t *testing.T) {
	// With z=2 over 1000 values and identity permutation, value 1 (rank 1)
	// should carry p = 1/H ~ 0.61 of the mass.
	g := MustNew(1000, 2, 3, 0)
	const n = 50000
	top := 0
	for i := 0; i < n; i++ {
		if g.Next() == 1 {
			top++
		}
	}
	frac := float64(top) / n
	if frac < 0.55 || frac > 0.68 {
		t.Errorf("rank-1 frequency %.3f, want ~0.61", frac)
	}
}

func TestPermutationMovesHotValue(t *testing.T) {
	a := MustNew(1000, 2, 3, 101)
	b := MustNew(1000, 2, 3, 202)
	hot := func(g *Generator) int64 {
		counts := map[int64]int{}
		for i := 0; i < 20000; i++ {
			counts[g.Next()]++
		}
		var best int64
		max := -1
		for v, c := range counts {
			if c > max {
				best, max = v, c
			}
		}
		return best
	}
	// With overwhelming probability the two permutations put rank 1 on
	// different values.
	if ha, hb := hot(a), hot(b); ha == hb {
		t.Errorf("both permutations made value %d hot; expected different values", ha)
	}
}

func TestSameSeedIsDeterministic(t *testing.T) {
	a := MustNew(100, 1, 9, 5)
	b := MustNew(100, 1, 9, 5)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestRankProbSumsToOne(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		g := MustNew(200, z, 1, 0)
		sum := 0.0
		for r := 1; r <= 200; r++ {
			p := g.RankProb(r)
			if p < 0 {
				t.Fatalf("z=%g rank %d: negative probability %g", z, r, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("z=%g: probabilities sum to %g", z, sum)
		}
	}
	g := MustNew(10, 1, 1, 0)
	if g.RankProb(0) != 0 || g.RankProb(11) != 0 {
		t.Error("out-of-range ranks should have probability 0")
	}
}

func TestRankProbMonotoneNonIncreasing(t *testing.T) {
	g := MustNew(500, 1.5, 1, 0)
	for r := 2; r <= 500; r++ {
		if g.RankProb(r) > g.RankProb(r-1)+1e-15 {
			t.Fatalf("RankProb(%d)=%g > RankProb(%d)=%g", r, g.RankProb(r), r-1, g.RankProb(r-1))
		}
	}
}

func TestValueProbMatchesEmpirical(t *testing.T) {
	g := MustNew(20, 1, 77, 13)
	const n = 200000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for v := int64(1); v <= 20; v++ {
		want := g.ValueProb(v)
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("value %d: empirical %.4f vs analytic %.4f", v, got, want)
		}
	}
	if g.ValueProb(0) != 0 || g.ValueProb(21) != 0 {
		t.Error("out-of-domain values should have probability 0")
	}
}

func TestDrawReusesBuffer(t *testing.T) {
	g := MustNew(10, 0, 1, 0)
	buf := make([]int64, 8)
	out := g.Draw(5, buf)
	if len(out) != 5 {
		t.Fatalf("len = %d, want 5", len(out))
	}
	if &out[0] != &buf[0] {
		t.Error("Draw did not reuse the provided buffer")
	}
	out2 := g.Draw(100, buf)
	if len(out2) != 100 {
		t.Fatalf("len = %d, want 100", len(out2))
	}
}

func TestAccessors(t *testing.T) {
	g := MustNew(42, 1.5, 1, 0)
	if g.N() != 42 || g.Skew() != 1.5 {
		t.Errorf("N=%d Skew=%g", g.N(), g.Skew())
	}
}

func TestDomainBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, zRaw uint8) bool {
		n := int(nRaw%100) + 1
		z := float64(zRaw%30) / 10
		g := MustNew(n, z, seed, seed+1)
		for i := 0; i < 100; i++ {
			v := g.Next()
			if v < 1 || v > int64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
