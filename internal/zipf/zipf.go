// Package zipf generates Zipfian-distributed integer attribute values,
// mirroring the modified TPC-H data generator used in the paper's
// evaluation (§5.1.1).
//
// A Generator draws values from the domain [1..N]. Rank r of the Zipf
// distribution has probability proportional to 1/r^z (z = 0 is uniform).
// Which *value* carries which rank is controlled by a seeded permutation,
// so two generators with the same skew but different permutation seeds
// model the paper's C^1, C^2, ... tables: same skew, different
// high-frequency values — the worst case for join-size estimation.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Generator draws Zipf(z) values over the domain [1..N].
type Generator struct {
	n    int
	z    float64
	cum  []float64 // cumulative probability by rank, len n
	perm []int32   // rank (0-based) -> value-1
	inv  []int32   // value-1 -> rank (0-based), built lazily by ValueProb
	rng  *rand.Rand
}

// New creates a generator over [1..n] with skew z >= 0.
//
// seed drives the random draws; permSeed drives the rank→value permutation
// (the paper's superscript). Two generators with equal (n, z) and different
// permSeed produce identically-shaped but differently-aligned frequency
// distributions. permSeed 0 means the identity permutation: value v has
// rank v.
func New(n int, z float64, seed, permSeed int64) (*Generator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: domain size %d must be positive", n)
	}
	if z < 0 {
		return nil, fmt.Errorf("zipf: skew %g must be non-negative", z)
	}
	g := &Generator{n: n, z: z, rng: rand.New(rand.NewSource(seed))}
	if z > 0 {
		g.cum = make([]float64, n)
		sum := 0.0
		for r := 1; r <= n; r++ {
			sum += 1 / math.Pow(float64(r), z)
			g.cum[r-1] = sum
		}
		for i := range g.cum {
			g.cum[i] /= sum
		}
	}
	g.perm = make([]int32, n)
	for i := range g.perm {
		g.perm[i] = int32(i)
	}
	if permSeed != 0 {
		prng := rand.New(rand.NewSource(permSeed))
		prng.Shuffle(n, func(i, j int) { g.perm[i], g.perm[j] = g.perm[j], g.perm[i] })
	}
	return g, nil
}

// MustNew is New, panicking on invalid parameters.
func MustNew(n int, z float64, seed, permSeed int64) *Generator {
	g, err := New(n, z, seed, permSeed)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the domain size.
func (g *Generator) N() int { return g.n }

// Skew returns the Zipf parameter z.
func (g *Generator) Skew() float64 { return g.z }

// Next draws one value in [1..N].
func (g *Generator) Next() int64 {
	var rank int
	if g.z == 0 {
		rank = g.rng.Intn(g.n)
	} else {
		u := g.rng.Float64()
		rank = sort.SearchFloat64s(g.cum, u)
		if rank >= g.n {
			rank = g.n - 1
		}
	}
	return int64(g.perm[rank]) + 1
}

// Draw fills out with count draws and returns it (allocating when out is
// too small).
func (g *Generator) Draw(count int, out []int64) []int64 {
	if cap(out) < count {
		out = make([]int64, count)
	}
	out = out[:count]
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// RankProb returns the probability of the value holding rank r (1-based).
func (g *Generator) RankProb(r int) float64 {
	if r < 1 || r > g.n {
		return 0
	}
	if g.z == 0 {
		return 1 / float64(g.n)
	}
	if r == 1 {
		return g.cum[0]
	}
	return g.cum[r-1] - g.cum[r-2]
}

// ValueProb returns the probability of drawing value v in [1..N].
func (g *Generator) ValueProb(v int64) float64 {
	if v < 1 || v > int64(g.n) {
		return 0
	}
	// perm maps rank -> value-1; invert lazily (domain sizes here are
	// small enough that a linear scan would be fine, but keep it O(1)
	// after first use).
	if g.inv == nil {
		g.inv = make([]int32, g.n)
		for r, val := range g.perm {
			g.inv[val] = int32(r)
		}
	}
	return g.RankProb(int(g.inv[v-1]) + 1)
}
