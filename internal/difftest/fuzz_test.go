package difftest

import (
	"testing"

	"qpi/internal/qgen"
)

// FuzzDifferential lets the fuzzer explore the (seed, Options) space
// directly. Each input is one generated case checked against the oracle
// in tuple, batch, parallel and columnar mode — parallel sends every
// grace join through the partition-parallel join phase, columnar through
// the vectorized partition passes and column-lane output gather (the
// full mode sweep, including spills and cancellation, runs in
// TestDifferentialSuite). Minimized suite failures land in
// testdata/fuzz/FuzzDifferential as permanent regressions.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), 32, 2, true, true, true)
	f.Add(int64(7), 64, 3, false, true, false)
	f.Add(int64(42), 8, 1, true, false, true)
	f.Fuzz(func(t *testing.T, seed int64, maxRows, maxJoins int, groupBy, altJoins, nonInner bool) {
		if maxRows < 8 || maxRows > 200 || maxJoins < 1 || maxJoins > 4 {
			t.Skip("out of bounds")
		}
		opts := qgen.Options{
			MaxRows:  maxRows,
			MaxJoins: maxJoins,
			GroupBy:  groupBy,
			AltJoins: altJoins,
			NonInner: nonInner,
		}
		if err := CheckCase(seed, opts, nil, ModeTuple, ModeBatch, ModeParallel, ModeColumnar); err != nil {
			t.Fatalf("%v\nreplay: %s", err, ReplayCommand(seed, opts))
		}
	})
}
