// Package difftest is the randomized differential-testing harness: it
// runs every qgen-generated plan through all execution modes of the real
// engine (tuple-at-a-time, batch, batch-parallel, forced-spill,
// parallel-spill, columnar, columnar-spill, morsel-driven row and
// columnar scans, forced mid-query re-optimization in serial and morsel
// flavors, and mid-query cancel/re-run)
// and checks each run against the exact oracle
// and the paper's estimator invariants:
//
//   - result-set equivalence: the run's output multiset equals the
//     oracle's, and every join emits exactly its true cardinality;
//   - once-exactness: every chain estimator freezes at the end of its
//     first probe pass with estimates exactly equal to the true join
//     cardinalities (source "once-exact");
//   - confidence intervals are well-formed mid-probe and their empirical
//     coverage of the truth is tracked suite-wide;
//   - gnm progress: C(Q) is monotone, progress stays in [0,1], and plans
//     that drain every operator finish at exactly 1;
//   - the GEE/MLE chooser sits on the right side of γ² vs τ and returns
//     the exact group count once its input is exhausted.
//
// Every failure message embeds the replay seed and options; the test
// driver shrinks failures and re-emits them as Go fuzz corpus entries.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/distinct"
	"qpi/internal/exec"
	"qpi/internal/oracle"
	"qpi/internal/plan"
	"qpi/internal/progress"
	"qpi/internal/qgen"
)

// Mode is one execution configuration of the engine under test.
type Mode int

// Execution modes.
const (
	// ModeTuple is the default tuple-at-a-time executor.
	ModeTuple Mode = iota
	// ModeBatch moves batches with serial partition passes.
	ModeBatch
	// ModeParallel runs batched partition passes with 3 scatter workers.
	ModeParallel
	// ModeSpill forces grace-join and sort spills with a tiny budget.
	ModeSpill
	// ModeParallelSpill combines both stressors: a tiny budget forces every
	// partition to disk (and keeps the scatter passes serial), while 3-way
	// parallelism sends the grace joins through the partition-parallel join
	// phase — concurrent workers reading spilled partitions back under the
	// oracle's eye.
	ModeParallelSpill
	// ModeCancelRerun cancels the context after the first bottom-stream
	// tuple, verifies the terminal state, then re-runs a fresh build to
	// completion with full checks.
	ModeCancelRerun
	// ModeColumnar drives the plan column-at-a-time: hash joins run the
	// columnar partition passes with span-at-a-time estimator observation
	// and gather output straight into column lanes.
	ModeColumnar
	// ModeColumnarSpill combines the columnar passes with a tiny budget,
	// forcing partitions through the columnar spill frame codec.
	ModeColumnarSpill
	// ModeMorsel runs the row partition passes morsel-driven: 3 scan
	// workers claim single-block morsels (forcing many claims even on tiny
	// qgen tables) and scatter concurrently, exercising the sharded
	// estimator observation and the hook serialization under real
	// concurrency.
	ModeMorsel
	// ModeColMorsel is ModeMorsel over the columnar partition passes, with
	// worker-sharded span-at-a-time estimator observation.
	ModeColMorsel
	// ModeReopt runs with a Force-mode sketch-backed re-optimizer: every
	// eligible unstarted join segment is re-ordered (or side-swapped) at
	// its pipeline boundary, and the run is checked against TWO oracles —
	// the original spec for the final result multiset, and the permuted
	// spec (recovered from the executed tree) for per-join cardinalities
	// and once-exactness of the re-attached chain estimators.
	ModeReopt
	// ModeReoptMorsel is ModeReopt over morsel-driven parallel partition
	// passes: the restructure window races 3 scan workers.
	ModeReoptMorsel
)

// AllModes is every execution mode, in suite order.
var AllModes = []Mode{ModeTuple, ModeBatch, ModeParallel, ModeSpill, ModeParallelSpill, ModeColumnar, ModeColumnarSpill, ModeMorsel, ModeColMorsel, ModeReopt, ModeReoptMorsel, ModeCancelRerun}

func (m Mode) String() string {
	switch m {
	case ModeBatch:
		return "batch"
	case ModeParallel:
		return "parallel"
	case ModeSpill:
		return "spill"
	case ModeParallelSpill:
		return "parallel-spill"
	case ModeCancelRerun:
		return "cancel-rerun"
	case ModeColumnar:
		return "columnar"
	case ModeColumnarSpill:
		return "columnar-spill"
	case ModeMorsel:
		return "morsel"
	case ModeColMorsel:
		return "columnar-morsel"
	case ModeReopt:
		return "reopt"
	case ModeReoptMorsel:
		return "reopt-morsel"
	default:
		return "tuple"
	}
}

// spillBudget is the per-operator memory budget (bytes) of ModeSpill —
// small enough that even 8-row partitions overflow.
const spillBudget = 128

// ciSampleAt is the probe-tuple count at which ModeTuple snapshots each
// chain's confidence intervals for the suite-wide coverage statistic.
const ciSampleAt = 8

// SuiteStats aggregates cross-case statistics; the suite test asserts
// floors on them so the harness cannot silently degrade into checking
// nothing.
type SuiteStats struct {
	Cases         int
	Runs          int
	ChainsChecked int // joins verified against the once-exact invariant
	AggsChecked   int // aggregations verified against the chooser invariants
	CISamples     int
	CICovered     int
	Cancelled     int   // runs that observed a real mid-query cancellation
	SpillFiles    int64 // spill files created across ModeSpill runs
	PlanChanges   int   // restructurings applied across the re-opt modes
	ReoptRuns     int   // re-opt runs whose executed plan actually changed
}

// CheckCase generates the case for (seed, opts), evaluates the oracle and
// runs every requested mode (all of them by default), returning the first
// violation. st may be nil.
func CheckCase(seed int64, opts qgen.Options, st *SuiteStats, modes ...Mode) error {
	if st == nil {
		st = &SuiteStats{}
	}
	if len(modes) == 0 {
		modes = AllModes
	}
	c := qgen.Generate(seed, opts)
	want := oracle.Eval(c)
	st.Cases++
	for _, m := range modes {
		if err := runMode(c, want, m, st); err != nil {
			return fmt.Errorf("mode %s: %w\ncase:\n%s", m, err, c.Describe())
		}
	}
	return nil
}

type ciSnapshot struct {
	lo, hi float64
	taken  bool
}

// runMode builds a fresh executor tree, runs it in the given mode and
// checks every invariant.
func runMode(c *qgen.Case, want *oracle.Result, m Mode, st *SuiteStats) error {
	b, err := c.Build()
	if err != nil {
		return err
	}
	switch m {
	case ModeBatch:
		setParallelism(b.Root, 1)
	case ModeParallel:
		setParallelism(b.Root, 3)
	case ModeSpill:
		setBudget(b.Root, spillBudget)
	case ModeParallelSpill:
		setParallelism(b.Root, 3)
		setBudget(b.Root, spillBudget)
	case ModeColumnar:
		setColumnar(b.Root)
	case ModeColumnarSpill:
		setColumnar(b.Root)
		setBudget(b.Root, spillBudget)
	case ModeMorsel:
		setMorsel(b.Root)
	case ModeColMorsel:
		setColumnar(b.Root)
		setMorsel(b.Root)
	case ModeReoptMorsel:
		setMorsel(b.Root)
	}
	att := core.Attach(b.Root)
	mon := progress.NewMonitorWith(b.Root, progress.ModeOnce, att)
	var ro *plan.Reoptimizer
	if m == ModeReopt || m == ModeReoptMorsel {
		rc := plan.DefaultReoptConfig()
		rc.Force = true
		ro = plan.NewReoptimizer(rc, att)
		ro.SetSketches(core.AttachSketches(b.Root))
		ro.SetOnRestructure(mon.Refresh)
		ro.Install(b.Root)
	}
	st.Runs++

	// gnm invariants, sampled at work-based ticks on the execution path.
	var lastC float64
	var progErr error
	progress.InstallTicker(b.Root, 5, func() {
		if progErr != nil {
			return
		}
		rep := mon.Report()
		if rep.C+1e-9 < lastC {
			progErr = fmt.Errorf("gnm C regressed: %g -> %g", lastC, rep.C)
		}
		lastC = rep.C
		if rep.Progress < -1e-9 || rep.Progress > 1+1e-6 {
			progErr = fmt.Errorf("gnm progress %g outside [0,1]", rep.Progress)
		}
	})

	// Mid-probe CI snapshots (serial probe observation only: sharded
	// chains fire OnProbeObserved at the pass barrier, not per tuple).
	cis := map[*core.PipelineEstimator][]ciSnapshot{}
	if m == ModeTuple {
		for _, pe := range att.Chains {
			pe := pe
			snaps := make([]ciSnapshot, pe.Levels())
			cis[pe] = snaps
			prev := pe.OnProbeObserved
			pe.OnProbeObserved = func(t int64) {
				if prev != nil {
					prev(t)
				}
				if t == ciSampleAt && !pe.Converged() {
					for k := range snaps {
						lo, hi := pe.ConfidenceInterval(k, 0.95)
						snaps[k] = ciSnapshot{lo: lo, hi: hi, taken: true}
					}
				}
			}
		}
	}

	ctx := context.Background()
	if m == ModeCancelRerun {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ctx = cctx
		prev := b.Bottom.OnTuple
		fired := false
		b.Bottom.OnTuple = func(t data.Tuple) {
			if prev != nil {
				prev(t)
			}
			if !fired {
				fired = true
				cancel()
			}
		}
	}
	exec.Bind(b.Root, ctx)
	rows, runErr := drain(b.Root, m)
	mon.Finish(runErr)

	if progErr != nil {
		return progErr
	}
	if m == ModeCancelRerun && runErr != nil {
		// The amortized context poll tripped mid-query: verify the
		// terminal state, then re-run a fresh build to completion.
		if !errors.Is(runErr, context.Canceled) {
			return fmt.Errorf("cancelled run returned %v, want context.Canceled", runErr)
		}
		rep := mon.Report()
		if rep.State != progress.StateCancelled {
			return fmt.Errorf("cancelled run state = %v, want cancelled", rep.State)
		}
		if rep.Progress < -1e-9 || rep.Progress > 1+1e-6 {
			return fmt.Errorf("cancelled run progress %g outside [0,1]", rep.Progress)
		}
		st.Cancelled++
		return runMode(c, want, ModeTuple, st)
	}
	if runErr != nil {
		return fmt.Errorf("run failed: %w", runErr)
	}

	// Re-opt runs: verify the barrier witness on every applied change and
	// swap in the permuted-spec oracle for the per-join checks. The final
	// result multiset is still checked against the ORIGINAL oracle below —
	// the Reorder wrapper must have restored the root schema exactly.
	if ro != nil {
		var roErr error
		if want, roErr = reoptWant(c, b, ro, want, st); roErr != nil {
			return roErr
		}
	}

	// (a) Result-set equivalence against the oracle.
	if err := compareRows(rows, want.Rows); err != nil {
		return err
	}
	// Exact per-join cardinalities.
	for i, j := range b.Joins {
		if got := j.Stats().Emitted.Load(); got != want.JoinCards[i] {
			return fmt.Errorf("join %d (%s) emitted %d, oracle says %d", i, j.Name(), got, want.JoinCards[i])
		}
		if m == ModeSpill || m == ModeParallelSpill || m == ModeColumnarSpill {
			st.SpillFiles += j.Stats().SpillFiles.Load()
		}
	}
	// (b) Paper invariants.
	if err := checkOnceExact(b, att, want, cis, st); err != nil {
		return err
	}
	if err := checkAgg(b, att, want, st); err != nil {
		return err
	}
	// Terminal gnm state. Merge joins may exhaust one side early and
	// leave the other sort partially undrained, so exact termination at 1
	// is only guaranteed for fully draining plans.
	rep := mon.Report()
	if rep.State != progress.StateDone {
		return fmt.Errorf("terminal state = %v, want done", rep.State)
	}
	if rep.Progress > 1+1e-6 {
		return fmt.Errorf("terminal progress %g > 1", rep.Progress)
	}
	if !hasMergeJoin(c) && rep.Progress < 1-1e-6 {
		return fmt.Errorf("terminal progress %g, want 1 for a fully draining plan", rep.Progress)
	}
	return nil
}

// reoptWant audits a forced re-optimization run. Every applied change
// must carry the barrier witness (the restructured subtree was verified
// unstarted at commit time). If the executed plan changed, the per-join
// truths shift: the function recovers the executed bottom-up join order
// from the live tree (by subtree containment, which is agnostic to the
// Reorder wrapper and to a swapped bottom join), re-evaluates the exact
// oracle on the correspondingly permuted spec, and returns a Result whose
// JoinCards are re-indexed back onto b.Joins' original positions — so
// the standard per-join and once-exact checks run unmodified against the
// plan that actually executed. The final row multiset deliberately stays
// the ORIGINAL oracle's: re-optimization must be invisible at the root.
func reoptWant(c *qgen.Case, b *qgen.Built, ro *plan.Reoptimizer,
	want *oracle.Result, st *SuiteStats) (*oracle.Result, error) {
	changes := ro.Changes()
	for _, ch := range changes {
		if !ch.AllUnstarted {
			return nil, fmt.Errorf("re-opt change lacks the barrier witness: %+v", ch)
		}
	}
	if rs := ro.Stats(); rs.Applied != int64(len(changes)) {
		return nil, fmt.Errorf("re-opt stats disagree with change log: Applied=%d, %d changes",
			rs.Applied, len(changes))
	}
	st.PlanChanges += len(changes)
	if len(changes) == 0 {
		return want, nil
	}
	st.ReoptRuns++

	order, err := executedJoinOrder(b)
	if err != nil {
		return nil, err
	}
	origIdx := make(map[exec.Operator]int, len(b.Joins))
	for i, j := range b.Joins {
		origIdx[j] = i
	}
	permSpec := c.Spec
	permSpec.Joins = make([]qgen.JoinSpec, len(order))
	for pos, j := range order {
		oi, ok := origIdx[j]
		if !ok {
			return nil, fmt.Errorf("restructured spine contains an unknown join %s", j.Name())
		}
		permSpec.Joins[pos] = c.Spec.Joins[oi]
	}
	permWant := oracle.Eval(&qgen.Case{Seed: c.Seed, Opts: c.Opts, Spec: permSpec, Tables: c.Tables})
	remapped := *want
	remapped.JoinCards = make([]int64, len(order))
	for pos, j := range order {
		remapped.JoinCards[origIdx[j]] = permWant.JoinCards[pos]
	}
	return &remapped, nil
}

// executedJoinOrder recovers the bottom-up join order of the (possibly
// restructured) live tree. qgen plans are left-deep — every join's build
// side is a base scan — so each join's subtree contains exactly the
// joins below it on the probe spine, and counting contained joins ranks
// them 0..n-1 regardless of Reorder wrappers or a swapped bottom join.
func executedJoinOrder(b *qgen.Built) ([]exec.Operator, error) {
	inPlan := make(map[exec.Operator]bool, len(b.Joins))
	for _, j := range b.Joins {
		inPlan[j] = true
	}
	order := make([]exec.Operator, len(b.Joins))
	for _, j := range b.Joins {
		j := j
		below := 0
		exec.Walk(j, func(op exec.Operator) {
			if op != j && inPlan[op] {
				below++
			}
		})
		if below >= len(order) || order[below] != nil {
			return nil, fmt.Errorf("executed tree is not a join spine: rank %d duplicated or out of range", below)
		}
		order[below] = j
	}
	return order, nil
}

// checkOnceExact verifies the central once-estimator claim: every chain
// estimator froze at the end of its first probe pass with estimates
// exactly equal to the true join cardinalities.
func checkOnceExact(b *qgen.Built, att *core.Attachment, want *oracle.Result,
	cis map[*core.PipelineEstimator][]ciSnapshot, st *SuiteStats) error {
	for i, j := range b.Joins {
		pe := att.ChainOf[j]
		if pe == nil {
			continue // dne fallback (e.g. non-sorted NL joins): no claim
		}
		truth := float64(want.JoinCards[i])
		lvl := att.LevelOf[j]
		if !pe.Converged() {
			return fmt.Errorf("join %d (%s): chain estimator never converged", i, j.Name())
		}
		if est := pe.Estimate(lvl); !approxEq(est, truth) {
			return fmt.Errorf("join %d (%s): converged estimate %g != exact %g", i, j.Name(), est, truth)
		}
		// The frozen estimate must collapse the CI to the exact point.
		if lo, hi := pe.ConfidenceInterval(lvl, 0.95); !approxEq(lo, truth) || !approxEq(hi, truth) {
			return fmt.Errorf("join %d (%s): frozen CI [%g,%g] not collapsed on %g", i, j.Name(), lo, hi, truth)
		}
		if src := j.Stats().Source(); src != "once-exact" {
			return fmt.Errorf("join %d (%s): source %q, want once-exact", i, j.Name(), src)
		}
		if est := j.Stats().Estimate(); !approxEq(est, truth) {
			return fmt.Errorf("join %d (%s): published estimate %g != exact %g", i, j.Name(), est, truth)
		}
		st.ChainsChecked++
		if snaps := cis[pe]; snaps != nil && snaps[lvl].taken {
			s := snaps[lvl]
			if s.lo > s.hi+1e-9 {
				return fmt.Errorf("join %d (%s): malformed mid-probe CI [%g,%g]", i, j.Name(), s.lo, s.hi)
			}
			st.CISamples++
			if s.lo-1e-9 <= truth && truth <= s.hi+1e-9 {
				st.CICovered++
			}
		}
	}
	return nil
}

// checkAgg verifies the grouping estimator: exact group counts, chooser
// flips consistent with γ² against τ, and exactness once the input pass
// is exhausted (push-down estimates ride the join's output distribution
// and are checked loosely).
func checkAgg(b *qgen.Built, att *core.Attachment, want *oracle.Result, st *SuiteStats) error {
	if b.Agg == nil {
		return nil
	}
	if got := b.Agg.Stats().Emitted.Load(); got != want.GroupCount {
		return fmt.Errorf("agg emitted %d groups, oracle says %d", got, want.GroupCount)
	}
	ae := att.Aggs[b.Agg]
	if ae == nil {
		return nil
	}
	truth := float64(want.GroupCount)
	switch {
	case ae.Chooser() != nil, ae.Tracker() != nil:
		if mle := ae.Source() == "mle"; mle != (ae.Gamma2() < distinct.DefaultTau) {
			return fmt.Errorf("chooser flip inconsistent: source=%s γ²=%g τ=%g",
				ae.Source(), ae.Gamma2(), distinct.DefaultTau)
		}
		if est := ae.Estimate(); !approxEq(est, truth) {
			return fmt.Errorf("exhausted chooser estimate %g != exact groups %g", est, truth)
		}
	default:
		// Push-down over the join output distribution: the histograms it
		// rides skip NULL keys, so compare against the non-NULL group
		// count, loosely (it is the one estimator the paper does not
		// claim exactness for) with absolute slack for tiny counts.
		if tr := float64(want.GroupNonNull); tr > 0 {
			est := ae.Estimate()
			if est < 0.5*tr-3 || est > 2*tr+3 {
				return fmt.Errorf("push-down estimate %g vs exact non-NULL groups %g (outside 2x)", est, tr)
			}
		}
	}
	st.AggsChecked++
	return nil
}

func drain(root exec.Operator, m Mode) ([]data.Tuple, error) {
	if err := root.Open(); err != nil {
		return nil, err
	}
	var rows []data.Tuple
	var err error
	switch m {
	case ModeBatch, ModeParallel, ModeParallelSpill, ModeMorsel, ModeReoptMorsel:
		rows, err = exec.DrainBatch(exec.AsBatch(root))
	case ModeColumnar, ModeColumnarSpill, ModeColMorsel:
		rows, err = exec.DrainCol(exec.AsColOperator(root))
	default:
		rows, err = exec.Drain(root)
	}
	if cerr := root.Close(); err == nil {
		err = cerr
	}
	return rows, err
}

func setParallelism(root exec.Operator, workers int) {
	exec.Walk(root, func(op exec.Operator) {
		if j, ok := op.(*exec.HashJoin); ok {
			j.SetParallelism(workers)
		}
	})
}

// setMorsel enables morsel-driven scans with 3 workers and single-block
// morsels, so even the smallest qgen tables split into many concurrent
// claims.
func setMorsel(root exec.Operator) {
	exec.Walk(root, func(op exec.Operator) {
		if j, ok := op.(*exec.HashJoin); ok {
			j.SetParallelism(3)
			j.SetMorsel(true)
			j.SetMorselBlocks(1)
		}
	})
}

func setColumnar(root exec.Operator) {
	exec.Walk(root, func(op exec.Operator) {
		switch o := op.(type) {
		case *exec.HashJoin:
			o.SetColumnar(true)
		case *exec.Sort:
			o.SetColumnar(true)
		}
	})
}

func setBudget(root exec.Operator, bytes int64) {
	exec.Walk(root, func(op exec.Operator) {
		switch o := op.(type) {
		case *exec.HashJoin:
			o.SetMemoryBudget(bytes)
		case *exec.Sort:
			o.SetMemoryBudget(bytes)
		}
	})
}

func hasMergeJoin(c *qgen.Case) bool {
	for _, js := range c.Spec.Joins {
		if js.Kind == qgen.KindMerge {
			return true
		}
	}
	return false
}

// compareRows compares result multisets via canonical string renderings.
func compareRows(got, want []data.Tuple) error {
	g := canon(got)
	w := canon(want)
	if len(g) != len(w) {
		return fmt.Errorf("result has %d rows, oracle says %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("result multiset mismatch at sorted row %d:\n  engine: %s\n  oracle: %s", i, g[i], w[i])
		}
	}
	return nil
}

func canon(rows []data.Tuple) []string {
	out := make([]string, len(rows))
	for i, t := range rows {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 {
		scale = b
	}
	return d <= 1e-6*scale
}

// ReplayCommand renders the command line that reproduces a failing case.
func ReplayCommand(seed int64, o qgen.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "go test ./internal/difftest -run TestReplaySeed -qgen.seed=%d -qgen.maxrows=%d -qgen.maxjoins=%d",
		seed, o.MaxRows, o.MaxJoins)
	fmt.Fprintf(&b, " -qgen.groupby=%v -qgen.altjoins=%v -qgen.noninner=%v", o.GroupBy, o.AltJoins, o.NonInner)
	return b.String()
}
