package difftest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"qpi/internal/qgen"
)

// Replay flags: reproduce one failing case printed by a suite failure, e.g.
//
//	go test ./internal/difftest -run TestReplaySeed -qgen.seed=1042 ...
var (
	replaySeed  = flag.Int64("qgen.seed", 0, "replay a single generated case with this seed")
	replayRows  = flag.Int("qgen.maxrows", 120, "MaxRows for -qgen.seed replay")
	replayJoins = flag.Int("qgen.maxjoins", 3, "MaxJoins for -qgen.seed replay")
	replayGroup = flag.Bool("qgen.groupby", true, "GroupBy for -qgen.seed replay")
	replayAlt   = flag.Bool("qgen.altjoins", true, "AltJoins for -qgen.seed replay")
	replayNonIn = flag.Bool("qgen.noninner", true, "NonInner for -qgen.seed replay")
)

// suiteCases is the number of generated plans per `go test` invocation.
const suiteCases = 200

const suiteBaseSeed = 1000

// TestDifferentialSuite runs every generated plan through all execution
// modes against the exact oracle. It is fully deterministic: a failure
// prints the replay command, and the driver shrinks the options space and
// emits a fuzz corpus seed for the minimized reproduction.
func TestDifferentialSuite(t *testing.T) {
	opts := qgen.DefaultOptions()
	st := &SuiteStats{}
	for i := 0; i < suiteCases; i++ {
		seed := int64(suiteBaseSeed + i)
		if err := CheckCase(seed, opts, st); err != nil {
			min := qgen.Shrink(opts, func(o qgen.Options) bool {
				return CheckCase(seed, o, nil) != nil
			})
			emitCorpusSeed(t, seed, min)
			t.Fatalf("differential failure (seed %d):\n%v\nminimized opts: %+v\nreplay: %s",
				seed, err, min, ReplayCommand(seed, min))
		}
	}
	t.Logf("stats: %+v", *st)

	// Aggregate floors: the harness must actually have exercised what it
	// claims to check. These are deliberately loose lower bounds.
	if st.Runs < suiteCases*len(AllModes) {
		t.Errorf("ran %d mode-runs, want >= %d", st.Runs, suiteCases*len(AllModes))
	}
	if st.ChainsChecked < suiteCases {
		t.Errorf("verified %d chain estimators, want >= %d", st.ChainsChecked, suiteCases)
	}
	if st.AggsChecked < suiteCases/10 {
		t.Errorf("verified %d aggregations, want >= %d", st.AggsChecked, suiteCases/10)
	}
	if st.Cancelled < suiteCases/10 {
		t.Errorf("observed %d real cancellations, want >= %d", st.Cancelled, suiteCases/10)
	}
	if st.SpillFiles == 0 {
		t.Error("forced-spill mode never created a spill file")
	}
	// Non-vacuousness of the re-opt modes: the forced re-optimizer must
	// have actually restructured plans, not skipped every segment. Many
	// generated cases legitimately decline (single-join chains, merge/NL
	// or semi/anti segments, push-down chains, already-optimal orders),
	// so the floor is over the suite, not per case.
	if st.PlanChanges < suiteCases/20 {
		t.Errorf("re-opt modes applied %d plan changes, want >= %d — the harness is checking nothing",
			st.PlanChanges, suiteCases/20)
	}
	if st.ReoptRuns < suiteCases/20 {
		t.Errorf("only %d re-opt runs changed their executed plan, want >= %d",
			st.ReoptRuns, suiteCases/20)
	}
	if st.CISamples >= 50 {
		// Nominal coverage is 95%, but these are CLT intervals sampled
		// only 8 tuples into the probe over heavily skewed keys; the
		// empirically measured rate is ~0.70, so floor well below it.
		cov := float64(st.CICovered) / float64(st.CISamples)
		if cov < 0.55 {
			t.Errorf("mid-probe CI coverage %.2f (%d/%d) below floor 0.55",
				cov, st.CICovered, st.CISamples)
		}
	} else {
		t.Errorf("only %d mid-probe CI samples, want >= 50", st.CISamples)
	}
}

// emitCorpusSeed writes the minimized failing case into the Go fuzz
// corpus so FuzzDifferential permanently regresses it.
func emitCorpusSeed(t *testing.T, seed int64, o qgen.Options) {
	t.Helper()
	body := fmt.Sprintf("go test fuzz v1\nint64(%d)\nint(%d)\nint(%d)\nbool(%v)\nbool(%v)\nbool(%v)\n",
		seed, o.MaxRows, o.MaxJoins, o.GroupBy, o.AltJoins, o.NonInner)
	dir := filepath.Join("testdata", "fuzz", "FuzzDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("could not create corpus dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("shrunk-seed-%d", seed))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("could not write corpus seed: %v", err)
		return
	}
	t.Logf("wrote minimized fuzz corpus seed %s", path)
}

// TestReplaySeed re-runs a single case by seed; it is a no-op unless
// -qgen.seed is given. Use the flags printed in a suite failure.
func TestReplaySeed(t *testing.T) {
	if *replaySeed == 0 {
		t.Skip("no -qgen.seed given")
	}
	opts := qgen.Options{
		MaxRows:  *replayRows,
		MaxJoins: *replayJoins,
		GroupBy:  *replayGroup,
		AltJoins: *replayAlt,
		NonInner: *replayNonIn,
	}
	c := qgen.Generate(*replaySeed, opts)
	t.Logf("replaying case:\n%s", c.Describe())
	if err := CheckCase(*replaySeed, opts, nil); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
}

// TestShrinkMinimizes checks the shrinker against a synthetic predicate:
// a failure that only needs one join and small tables must minimize to
// the floor options.
func TestShrinkMinimizes(t *testing.T) {
	fails := func(o qgen.Options) bool { return o.MaxRows >= 8 } // always fails
	min := qgen.Shrink(qgen.DefaultOptions(), fails)
	want := qgen.Options{MaxRows: 8, MaxJoins: 1}
	if min != want {
		t.Fatalf("Shrink = %+v, want %+v", min, want)
	}

	// A predicate that needs GroupBy must keep it and drop the rest.
	needsGroup := func(o qgen.Options) bool { return o.GroupBy }
	min = qgen.Shrink(qgen.DefaultOptions(), needsGroup)
	want = qgen.Options{MaxRows: 8, MaxJoins: 1, GroupBy: true}
	if min != want {
		t.Fatalf("Shrink = %+v, want %+v", min, want)
	}

	// A passing case shrinks to itself.
	passing := qgen.DefaultOptions()
	if got := qgen.Shrink(passing, func(qgen.Options) bool { return false }); got != passing {
		t.Fatalf("Shrink of passing case = %+v, want unchanged", got)
	}
}
