// Package oracle is a deliberately naive exact executor for qgen plan
// specs. It shares no code with internal/exec: joins are evaluated with a
// plain Go map from build key to rows, filters and aggregates re-derive
// the engine's NULL semantics from first principles, and nothing is
// estimated — every number it returns is ground truth. The differential
// harness (internal/difftest) compares every execution mode of the real
// engine against it.
package oracle

import (
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/qgen"
)

// Result is the ground truth for one generated case.
type Result struct {
	// Rows is the exact result multiset (order unspecified).
	Rows []data.Tuple
	// JoinCards holds the exact output cardinality of every join,
	// bottom-up, aligned with Spec.Joins.
	JoinCards []int64
	// GroupCount is the exact number of groups (0 without grouping).
	GroupCount int64
	// GroupNonNull is the exact number of groups with a non-NULL key.
	// The engine's push-down estimator rides histograms that skip NULLs,
	// so it is compared against this count rather than GroupCount.
	GroupNonNull int64
}

// Eval computes the exact result of a generated case.
func Eval(c *qgen.Case) *Result {
	sp := &c.Spec
	res := &Result{}
	rows := tableRows(c, sp.BottomTable)
	cols := aliasCols(sp.BottomAlias)
	if f := sp.BottomFilter; f != nil {
		idx := qgen.ResolveStream(cols, f.Col)
		var kept []data.Tuple
		for _, t := range rows {
			if f.FilterKeeps(t[idx]) {
				kept = append(kept, t)
			}
		}
		rows = kept
	}
	for _, js := range sp.Joins {
		build := tableRows(c, js.Table)
		pIdx := qgen.ResolveStream(cols, js.ProbeKey)
		rows = joinRows(build, rows, pIdx, js)
		res.JoinCards = append(res.JoinCards, int64(len(rows)))
		switch js.Type {
		case exec.SemiJoin, exec.AntiJoin:
		default:
			cols = append(aliasCols(js.Alias), cols...)
		}
	}
	if g := sp.Group; g != nil {
		rows = groupRows(rows, cols, g)
		res.GroupCount = int64(len(rows))
		for _, r := range rows {
			if !r[0].IsNull() {
				res.GroupNonNull++
			}
		}
	}
	res.Rows = rows
	return res
}

func tableRows(c *qgen.Case, i int) []data.Tuple {
	var out []data.Tuple
	it := c.Tables[i].SequentialOrder()
	for t := it.Next(); t != nil; t = it.Next() {
		out = append(out, t)
	}
	return out
}

func aliasCols(alias string) []data.Column {
	cols := make([]data.Column, qgen.NumCols)
	names := []string{qgen.ColID, qgen.ColKey, qgen.ColVal, qgen.ColGroup, qgen.ColStr}
	for i, n := range names {
		kind := data.KindInt
		if n == qgen.ColStr {
			kind = data.KindString
		}
		cols[i] = data.Column{Table: alias, Name: n, Kind: kind}
	}
	return cols
}

// buildKeyIdx is the position of the k column in every generated table.
const buildKeyIdx = 1

// joinRows evaluates one join naively. NULL keys never match; semi and
// anti joins preserve the probe schema (anti additionally preserves
// NULL-key probe tuples, which by definition have no match); probe-outer
// joins NULL-pad the build columns for unmatched probe tuples. Output
// column order is build columns followed by probe columns, matching the
// engine's HashJoin/MergeJoin/IndexedNLJoin orientation in qgen plans.
func joinRows(build, probe []data.Tuple, pIdx int, js qgen.JoinSpec) []data.Tuple {
	index := make(map[data.Value][]data.Tuple)
	for _, b := range build {
		k := b[buildKeyIdx]
		if k.IsNull() {
			continue
		}
		index[k] = append(index[k], b)
	}
	var out []data.Tuple
	nullBuild := make(data.Tuple, qgen.NumCols)
	for _, p := range probe {
		var matches []data.Tuple
		if k := p[pIdx]; !k.IsNull() {
			matches = index[k]
		}
		switch js.Type {
		case exec.SemiJoin:
			if len(matches) > 0 {
				out = append(out, p)
			}
		case exec.AntiJoin:
			if len(matches) == 0 {
				out = append(out, p)
			}
		case exec.ProbeOuterJoin:
			if len(matches) == 0 {
				out = append(out, concat(nullBuild, p))
				continue
			}
			for _, b := range matches {
				out = append(out, concat(b, p))
			}
		default: // inner (hash, merge, indexed NL)
			for _, b := range matches {
				out = append(out, concat(b, p))
			}
		}
	}
	return out
}

func concat(a, b data.Tuple) data.Tuple {
	out := make(data.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// aggAcc mirrors the executor's per-group aggregate state semantics:
// COUNT(*) counts all rows; every other function skips NULLs; SUM and AVG
// promote to float64 (exact for the generator's small integers); MIN/MAX
// keep the original kind.
type aggAcc struct {
	count    int64
	sum      float64
	min, max data.Value
}

func (s *aggAcc) add(f exec.AggFunc, v data.Value) {
	if f == exec.CountStar {
		s.count++
		return
	}
	if v.IsNull() {
		return
	}
	s.count++
	s.sum += v.AsFloat()
	if s.min.IsNull() || data.Compare(v, s.min) < 0 {
		s.min = v
	}
	if s.max.IsNull() || data.Compare(v, s.max) > 0 {
		s.max = v
	}
}

func (s *aggAcc) result(f exec.AggFunc) data.Value {
	switch f {
	case exec.CountStar, exec.Count:
		return data.Int(s.count)
	case exec.Sum:
		if s.count == 0 {
			return data.Null()
		}
		return data.Float(s.sum)
	case exec.Min:
		return s.min
	case exec.Max:
		return s.max
	default: // Avg
		if s.count == 0 {
			return data.Null()
		}
		return data.Float(s.sum / float64(s.count))
	}
}

func groupRows(rows []data.Tuple, cols []data.Column, g *qgen.GroupSpec) []data.Tuple {
	gIdx := qgen.ResolveStream(cols, g.By)
	aggIdx := make([]int, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Func != exec.CountStar {
			aggIdx[i] = qgen.ResolveStream(cols, a.Col)
		}
	}
	groups := make(map[data.Value][]*aggAcc)
	var order []data.Value
	for _, t := range rows {
		key := t[gIdx]
		accs := groups[key]
		if accs == nil {
			accs = make([]*aggAcc, len(g.Aggs))
			for i := range accs {
				accs[i] = &aggAcc{}
			}
			groups[key] = accs
			order = append(order, key)
		}
		for i, a := range g.Aggs {
			var v data.Value
			if a.Func != exec.CountStar {
				v = t[aggIdx[i]]
			}
			accs[i].add(a.Func, v)
		}
	}
	out := make([]data.Tuple, 0, len(order))
	for _, key := range order {
		row := make(data.Tuple, 0, 1+len(g.Aggs))
		row = append(row, key)
		for i, a := range g.Aggs {
			row = append(row, groups[key][i].result(a.Func))
		}
		out = append(out, row)
	}
	return out
}
