package oracle

import (
	"reflect"
	"testing"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/qgen"
	"qpi/internal/storage"
)

// The oracle is the ground truth of the differential suite, so its own
// tests are hand-computed fixtures — if the oracle and the engine ever
// agreed on the same wrong answer, these would still catch it.

func fiveColSchema(name string) *data.Schema {
	return data.NewSchema(
		data.Column{Table: name, Name: qgen.ColID, Kind: data.KindInt},
		data.Column{Table: name, Name: qgen.ColKey, Kind: data.KindInt},
		data.Column{Table: name, Name: qgen.ColVal, Kind: data.KindInt},
		data.Column{Table: name, Name: qgen.ColGroup, Kind: data.KindInt},
		data.Column{Table: name, Name: qgen.ColStr, Kind: data.KindString},
	)
}

func mkTable(t *testing.T, name string, rows [][3]interface{}) *storage.Table {
	t.Helper()
	tb := storage.NewTable(name, fiveColSchema(name))
	for i, r := range rows {
		k := data.Null()
		if v, ok := r[0].(int); ok {
			k = data.Int(int64(v))
		}
		g := data.Null()
		if v, ok := r[2].(int); ok {
			g = data.Int(int64(v))
		}
		tb.MustAppend(data.Tuple{
			data.Int(int64(i)), k, data.Int(int64(r[1].(int))), g, data.Str("s"),
		})
	}
	return tb
}

// fixtureTables: bottom has keys {1,1,2,NULL}, build has keys {1,2,2,NULL}.
func fixtureTables(t *testing.T) []*storage.Table {
	bottom := mkTable(t, "t0", [][3]interface{}{
		{1, 0, 0}, {1, 1, 0}, {2, 2, 1}, {nil, 3, 1},
	})
	build := mkTable(t, "t1", [][3]interface{}{
		{1, 5, 0}, {2, 6, 1}, {2, 7, 1}, {nil, 8, 2},
	})
	return []*storage.Table{bottom, build}
}

func joinCase(t *testing.T, typ exec.JoinType) *qgen.Case {
	return &qgen.Case{
		Spec: qgen.Spec{
			BottomTable: 0,
			BottomAlias: "a0",
			Joins: []qgen.JoinSpec{{
				Kind:     qgen.KindHash,
				Type:     typ,
				Table:    1,
				Alias:    "b0",
				ProbeKey: qgen.ColRef{Alias: "a0", Col: qgen.ColKey},
			}},
		},
		Tables: fixtureTables(t),
	}
}

// Hand computation: probe keys 1,1 each match one build row (2 rows),
// probe key 2 matches two build rows (2 rows), NULL matches nothing.
func TestJoinCardinalities(t *testing.T) {
	cases := []struct {
		typ  exec.JoinType
		card int64
	}{
		{exec.InnerJoin, 4},
		{exec.SemiJoin, 3},       // probe rows with >= 1 match
		{exec.AntiJoin, 1},       // only the NULL-key probe row
		{exec.ProbeOuterJoin, 5}, // 4 inner + 1 NULL-padded
	}
	for _, c := range cases {
		res := Eval(joinCase(t, c.typ))
		if got := res.JoinCards[0]; got != c.card {
			t.Errorf("%v: JoinCards[0] = %d, want %d", c.typ, got, c.card)
		}
		if int64(len(res.Rows)) != c.card {
			t.Errorf("%v: %d rows, want %d", c.typ, len(res.Rows), c.card)
		}
	}
}

func TestJoinRowShapes(t *testing.T) {
	// Inner join rows are build ++ probe (10 columns); semi/anti keep the
	// probe schema (5 columns).
	if res := Eval(joinCase(t, exec.InnerJoin)); len(res.Rows[0]) != 10 {
		t.Errorf("inner row width = %d, want 10", len(res.Rows[0]))
	}
	if res := Eval(joinCase(t, exec.SemiJoin)); len(res.Rows[0]) != 5 {
		t.Errorf("semi row width = %d, want 5", len(res.Rows[0]))
	}
	// The outer join's unmatched probe row is NULL-padded on the build side.
	res := Eval(joinCase(t, exec.ProbeOuterJoin))
	var padded int
	for _, r := range res.Rows {
		if r[0].IsNull() && r[1].IsNull() {
			padded++
		}
	}
	if padded != 1 {
		t.Errorf("outer join has %d NULL-padded rows, want 1", padded)
	}
}

func TestBottomFilter(t *testing.T) {
	c := joinCase(t, exec.InnerJoin)
	// v <= 1 keeps the two k=1 probe rows; each matches one build row.
	c.Spec.BottomFilter = &qgen.FilterSpec{
		Col: qgen.ColRef{Alias: "a0", Col: qgen.ColVal}, Op: "le", Arg: 1,
	}
	res := Eval(c)
	if res.JoinCards[0] != 2 {
		t.Errorf("filtered JoinCards[0] = %d, want 2", res.JoinCards[0])
	}
}

func TestGroupAggregates(t *testing.T) {
	// Group the bottom table alone by g: group 0 = rows {id 0 (k=1,v=0),
	// id 1 (k=1,v=1)}, group 1 = rows {id 2 (k=2,v=2), id 3 (k=NULL,v=3)}.
	c := &qgen.Case{
		Spec: qgen.Spec{
			BottomTable: 0,
			BottomAlias: "a0",
			Group: &qgen.GroupSpec{
				By: qgen.ColRef{Alias: "a0", Col: qgen.ColGroup},
				Aggs: []qgen.AggCol{
					{Func: exec.CountStar},
					{Func: exec.Sum, Col: qgen.ColRef{Alias: "a0", Col: qgen.ColVal}},
					{Func: exec.Count, Col: qgen.ColRef{Alias: "a0", Col: qgen.ColKey}},
					{Func: exec.Avg, Col: qgen.ColRef{Alias: "a0", Col: qgen.ColVal}},
				},
			},
		},
		Tables: fixtureTables(t),
	}
	res := Eval(c)
	if res.GroupCount != 2 || res.GroupNonNull != 2 {
		t.Fatalf("GroupCount=%d GroupNonNull=%d, want 2/2", res.GroupCount, res.GroupNonNull)
	}
	want := []data.Tuple{
		{data.Int(0), data.Int(2), data.Float(1), data.Int(2), data.Float(0.5)},
		{data.Int(1), data.Int(2), data.Float(5), data.Int(1), data.Float(2.5)},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("group rows = %v, want %v", res.Rows, want)
	}
}

func TestNullGroupCounted(t *testing.T) {
	// A NULL grouping key forms its own group, counted by GroupCount but
	// not GroupNonNull.
	bottom := mkTable(t, "t0", [][3]interface{}{{1, 0, nil}, {1, 1, 0}})
	c := &qgen.Case{
		Spec: qgen.Spec{
			BottomTable: 0,
			BottomAlias: "a0",
			Group: &qgen.GroupSpec{
				By:   qgen.ColRef{Alias: "a0", Col: qgen.ColGroup},
				Aggs: []qgen.AggCol{{Func: exec.CountStar}},
			},
		},
		Tables: []*storage.Table{bottom},
	}
	res := Eval(c)
	if res.GroupCount != 2 || res.GroupNonNull != 1 {
		t.Fatalf("GroupCount=%d GroupNonNull=%d, want 2/1", res.GroupCount, res.GroupNonNull)
	}
}
