package sql

import (
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 42, 3.5, 'it''s' FROM t")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokKeyword, TokIdent, TokDot, TokIdent, TokComma,
		TokInt, TokComma, TokFloat, TokComma, TokString, TokKeyword, TokIdent}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %v, want %v", i, got[i], want[i])
		}
	}
	if toks[9].Text != "it's" {
		t.Errorf("string literal = %q", toks[9].Text)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("select From wHeRe")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"SELECT", "FROM", "WHERE"} {
		if toks[i].Kind != TokKeyword || toks[i].Text != want {
			t.Errorf("token %d = %+v, want keyword %s", i, toks[i], want)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("= <> != < <= > >= + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"=", "<>", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT -- comment here\n 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[1].Kind != TokInt {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexSemicolonTerminates(t *testing.T) {
	toks, err := Lex("SELECT 1; garbage !!!")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("SELECT #"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("bare ! accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Errorf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}
