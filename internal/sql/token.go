// Package sql implements a SQL front-end for the engine: a lexer and
// recursive-descent parser for a SELECT subset (joins, WHERE, GROUP BY,
// ORDER BY, LIMIT, aggregates) and a planner that produces executor plans
// shaped the way the estimation framework likes them — left-deep hash
// join chains probing the largest input, with filters pushed down.
package sql

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokOp // = <> != < <= > >= + - * / %
	TokLParen
	TokRParen
	TokComma
	TokDot
	TokStar
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokInt:
		return "integer"
	case TokFloat:
		return "float"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokStar:
		return "'*'"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token. Text preserves the original spelling except
// for keywords, which are upper-cased.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

// keywords recognized by the lexer (upper-case).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "JOIN": true, "ON": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true, "SEMI": true,
	"ANTI": true, "AND": true, "OR": true, "NOT": true, "ASC": true,
	"DESC": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AVG": true, "NULL": true, "IS": true, "BETWEEN": true, "IN": true,
	"DISTINCT": true, "HAVING": true, "USING": true, "CROSS": true,
	"LIKE": true,
}

// Error is a SQL front-end error with a position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: at offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
