package sql

import (
	"strings"
	"unicode"
)

// Lex tokenizes a SQL string. It returns the token stream without the
// trailing EOF token errors are positioned at the offending byte.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			if i < n && input[i] == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, errf(start, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '(':
			toks = append(toks, Token{Kind: TokLParen, Text: "(", Pos: i})
			i++
		case c == ')':
			toks = append(toks, Token{Kind: TokRParen, Text: ")", Pos: i})
			i++
		case c == ',':
			toks = append(toks, Token{Kind: TokComma, Text: ",", Pos: i})
			i++
		case c == '.':
			toks = append(toks, Token{Kind: TokDot, Text: ".", Pos: i})
			i++
		case c == '*':
			toks = append(toks, Token{Kind: TokStar, Text: "*", Pos: i})
			i++
		case c == '=' || c == '+' || c == '-' || c == '/' || c == '%':
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokOp, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: "!=", Pos: i})
				i += 2
			} else {
				return nil, errf(i, "unexpected character %q", c)
			}
		case c == ';':
			// Statement terminator: stop lexing.
			i = n
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}
