package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT a, b FROM t WHERE a < 5 LIMIT 3")
	if len(s.Items) != 2 || len(s.From) != 1 || s.From[0].Name != "t" {
		t.Fatalf("stmt = %+v", s)
	}
	if s.Where == nil || s.Limit == nil || *s.Limit != 3 {
		t.Fatalf("where/limit missing: %+v", s)
	}
}

func TestParseStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t")
	if !s.Items[0].Star {
		t.Error("star not parsed")
	}
}

func TestParseQualifiedAndAliases(t *testing.T) {
	s := mustParse(t, "SELECT c.name AS n, o.total price FROM customer AS c, orders o")
	if s.Items[0].Alias != "n" || s.Items[1].Alias != "price" {
		t.Errorf("aliases = %+v", s.Items)
	}
	if s.From[0].Alias != "c" || s.From[1].Alias != "o" {
		t.Errorf("from = %+v", s.From)
	}
	c := s.Items[0].Expr.(*ColRef)
	if c.Table != "c" || c.Column != "name" {
		t.Errorf("colref = %+v", c)
	}
}

func TestParseJoins(t *testing.T) {
	s := mustParse(t, `SELECT * FROM a
		JOIN b ON a.x = b.x
		LEFT JOIN c ON c.y = a.y
		SEMI JOIN d ON d.z = a.z
		ANTI JOIN e ON e.w = a.w
		CROSS JOIN f`)
	if len(s.Joins) != 5 {
		t.Fatalf("joins = %d", len(s.Joins))
	}
	kinds := []JoinKind{JoinInner, JoinLeft, JoinSemi, JoinAnti, JoinCross}
	for i, k := range kinds {
		if s.Joins[i].Kind != k {
			t.Errorf("join %d kind = %v, want %v", i, s.Joins[i].Kind, k)
		}
	}
	if s.Joins[4].On != nil {
		t.Error("cross join should have no ON")
	}
}

func TestParseGroupByOrderBy(t *testing.T) {
	s := mustParse(t, `SELECT k, COUNT(*) AS c, SUM(v) s FROM t
		GROUP BY k ORDER BY k ASC, c DESC LIMIT 10`)
	if len(s.GroupBy) != 1 || s.GroupBy[0].Column != "k" {
		t.Fatalf("group by = %+v", s.GroupBy)
	}
	if len(s.OrderBy) != 2 || s.OrderBy[1].Desc != true || s.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", s.OrderBy)
	}
	fc := s.Items[1].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Errorf("count(*) = %+v", fc)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a + 2 * 3 = 7 AND b < 1 OR c > 2")
	// ((a + (2*3)) = 7 AND b<1) OR c>2
	or := s.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("top = %v", or.Op)
	}
	and := or.L.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("left = %v", and.Op)
	}
	eq := and.L.(*Binary)
	if eq.Op != "=" {
		t.Fatalf("cmp = %v", eq.Op)
	}
	add := eq.L.(*Binary)
	if add.Op != "+" {
		t.Fatalf("add = %v", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != "*" {
		t.Fatalf("mul = %v", mul.Op)
	}
}

func TestParsePredicateForms(t *testing.T) {
	s := mustParse(t, `SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL
		AND c BETWEEN 1 AND 5 AND d IN (1, 2, 3) AND NOT (e = 1)`)
	conjs := splitConjuncts(s.Where)
	if len(conjs) != 5 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	if _, ok := conjs[0].(*IsNull); !ok {
		t.Errorf("conj 0 = %T", conjs[0])
	}
	if n, ok := conjs[1].(*IsNull); !ok || !n.Negate {
		t.Errorf("conj 1 = %+v", conjs[1])
	}
	if _, ok := conjs[2].(*Between); !ok {
		t.Errorf("conj 2 = %T", conjs[2])
	}
	if in, ok := conjs[3].(*InList); !ok || len(in.List) != 3 {
		t.Errorf("conj 3 = %+v", conjs[3])
	}
	if _, ok := conjs[4].(*Unary); !ok {
		t.Errorf("conj 4 = %T", conjs[4])
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a > -5 AND b < -2.5")
	conjs := splitConjuncts(s.Where)
	gt := conjs[0].(*Binary)
	if lit := gt.R.(*Lit); lit.Value.(int64) != -5 {
		t.Errorf("lit = %+v", lit)
	}
	lt := conjs[1].(*Binary)
	if lit := lt.R.(*Lit); lit.Value.(float64) != -2.5 {
		t.Errorf("lit = %+v", lit)
	}
}

func TestParseStringRendering(t *testing.T) {
	q := "SELECT a AS x FROM t AS u JOIN v ON u.a = v.a WHERE a < 5 GROUP BY a ORDER BY a LIMIT 2"
	s := mustParse(t, q)
	out := s.String()
	for _, frag := range []string{"SELECT", "AS x", "JOIN v", "WHERE", "GROUP BY", "ORDER BY", "LIMIT 2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering %q missing %q", out, frag)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t JOIN b",
		"SELECT a FROM t trailing junk (",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t WHERE (a = 1",
		"SELECT a FROM t WHERE a BETWEEN 1",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseAggregates(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(a), SUM(b), MIN(c), MAX(d), AVG(e) FROM t")
	names := []string{"COUNT", "SUM", "MIN", "MAX", "AVG"}
	for i, n := range names {
		fc := s.Items[i].Expr.(*FuncCall)
		if fc.Name != n || fc.Star {
			t.Errorf("item %d = %+v", i, fc)
		}
	}
}
