package sql

import (
	"strings"
	"testing"
)

// FuzzParse checks the lexer/parser never panic and that anything that
// parses re-renders to something that parses again to the same rendering
// (a parse/print fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT * FROM t WHERE a < 5 AND b IS NOT NULL",
		"SELECT a, COUNT(*) c FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 3",
		"SELECT t.a FROM t JOIN u ON t.a = u.a LEFT JOIN v ON v.b = t.b",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR b IN (1, 2.5, 'x')",
		"SELECT -a * (b + 3) % 2 FROM t -- comment",
		"SELECT 'it''s' FROM t;",
		"select sum(x) from y cross join z",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", rendered, input, err)
		}
		if got := stmt2.String(); got != rendered {
			t.Fatalf("print fixpoint violated:\n first: %q\nsecond: %q", rendered, got)
		}
	})
}

// TestParsePrintFixpointCorpus runs the fuzz property over a corpus in
// normal test runs (fuzzing is opt-in with -fuzz).
func TestParsePrintFixpointCorpus(t *testing.T) {
	corpus := []string{
		"SELECT a FROM t",
		"SELECT a AS x, b y FROM t u WHERE u.a <> 3",
		"SELECT COUNT(*) FROM a JOIN b ON a.x = b.x AND a.y = b.y",
		"SELECT a FROM t SEMI JOIN u ON u.k = t.k ANTI JOIN v ON v.k = t.k",
		"SELECT a FROM t WHERE NOT (a = 1 OR a = 2) GROUP BY a HAVING MIN(a) >= 0",
		"SELECT a FROM t ORDER BY a, b DESC LIMIT 0",
	}
	for _, q := range corpus {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		r1 := stmt.String()
		stmt2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-parse of %q (%q): %v", q, r1, err)
		}
		if r2 := stmt2.String(); r2 != r1 {
			t.Fatalf("fixpoint: %q vs %q", r1, r2)
		}
		if !strings.HasPrefix(r1, "SELECT") {
			t.Fatalf("odd rendering %q", r1)
		}
	}
}
