package sql

import (
	"sort"
	"testing"

	"qpi/internal/catalog"
	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/plan"
	"qpi/internal/storage"
)

// testCatalog builds a small catalog:
//
//	emp(id, dept, salary): 6 rows
//	dept(id, region): 3 rows
//	region(id): 2 rows
//	bonus(emp_id): 2 rows
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()

	emp := storage.NewTable("emp", data.NewSchema(
		data.Column{Table: "emp", Name: "id", Kind: data.KindInt},
		data.Column{Table: "emp", Name: "dept", Kind: data.KindInt},
		data.Column{Table: "emp", Name: "salary", Kind: data.KindInt},
	))
	for _, r := range [][3]int64{
		{1, 10, 100}, {2, 10, 200}, {3, 20, 300},
		{4, 20, 400}, {5, 30, 500}, {6, 99, 600},
	} {
		emp.MustAppend(data.Tuple{data.Int(r[0]), data.Int(r[1]), data.Int(r[2])})
	}
	cat.Register(emp)

	dept := storage.NewTable("dept", data.NewSchema(
		data.Column{Table: "dept", Name: "id", Kind: data.KindInt},
		data.Column{Table: "dept", Name: "region", Kind: data.KindInt},
	))
	for _, r := range [][2]int64{{10, 1}, {20, 1}, {30, 2}} {
		dept.MustAppend(data.Tuple{data.Int(r[0]), data.Int(r[1])})
	}
	cat.Register(dept)

	region := storage.NewTable("region", data.NewSchema(
		data.Column{Table: "region", Name: "id", Kind: data.KindInt},
	))
	region.MustAppend(data.Tuple{data.Int(1)})
	region.MustAppend(data.Tuple{data.Int(2)})
	cat.Register(region)

	bonus := storage.NewTable("bonus", data.NewSchema(
		data.Column{Table: "bonus", Name: "emp_id", Kind: data.KindInt},
	))
	bonus.MustAppend(data.Tuple{data.Int(1)})
	bonus.MustAppend(data.Tuple{data.Int(3)})
	cat.Register(bonus)

	return cat
}

// runSQL parses, plans, and executes a query, returning the rows.
func runSQL(t *testing.T, cat *catalog.Catalog, q string) []data.Tuple {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	root, err := Plan(stmt, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	if err := root.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	return rows
}

func ints(rows []data.Tuple, col int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[col].I
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestSelectStar(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT * FROM emp")
	if len(rows) != 6 || len(rows[0]) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelectProjectionAndFilter(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT id FROM emp WHERE salary >= 400")
	if got := ints(rows, 0); len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Fatalf("ids = %v", got)
	}
}

func TestComputedProjection(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT salary * 2 AS dbl FROM emp WHERE id = 1")
	if len(rows) != 1 || rows[0][0].I != 200 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInnerJoinOnClause(t *testing.T) {
	rows := runSQL(t, testCatalog(t),
		"SELECT emp.id FROM emp JOIN dept ON emp.dept = dept.id")
	// dept 99 has no match → 5 rows.
	if got := ints(rows, 0); len(got) != 5 || got[4] != 5 {
		t.Fatalf("ids = %v", got)
	}
}

func TestImplicitJoinViaWhere(t *testing.T) {
	rows := runSQL(t, testCatalog(t),
		"SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id AND dept.region = 2")
	if got := ints(rows, 0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("ids = %v", got)
	}
}

func TestThreeWayJoinChain(t *testing.T) {
	rows := runSQL(t, testCatalog(t), `SELECT emp.id FROM emp
		JOIN dept ON emp.dept = dept.id
		JOIN region ON dept.region = region.id`)
	if got := ints(rows, 0); len(got) != 5 {
		t.Fatalf("ids = %v", got)
	}
}

func TestLeftJoinPreservesUnmatched(t *testing.T) {
	rows := runSQL(t, testCatalog(t), `SELECT emp.id, dept.region FROM emp
		LEFT JOIN dept ON emp.dept = dept.id`)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	nulls := 0
	for _, r := range rows {
		if r[1].IsNull() {
			nulls++
			if r[0].I != 6 {
				t.Errorf("unexpected preserved row %v", r)
			}
		}
	}
	if nulls != 1 {
		t.Errorf("null rows = %d, want 1 (emp 6)", nulls)
	}
}

func TestSemiJoin(t *testing.T) {
	rows := runSQL(t, testCatalog(t),
		"SELECT emp.id FROM emp SEMI JOIN bonus ON bonus.emp_id = emp.id")
	if got := ints(rows, 0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ids = %v", got)
	}
}

func TestAntiJoin(t *testing.T) {
	rows := runSQL(t, testCatalog(t),
		"SELECT emp.id FROM emp ANTI JOIN bonus ON bonus.emp_id = emp.id")
	if got := ints(rows, 0); len(got) != 4 || got[0] != 2 {
		t.Fatalf("ids = %v", got)
	}
}

func TestCrossJoin(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT * FROM dept CROSS JOIN region")
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3x2", len(rows))
	}
}

func TestGroupByWithAggregates(t *testing.T) {
	rows := runSQL(t, testCatalog(t), `SELECT dept, COUNT(*) AS c, SUM(salary) AS s
		FROM emp GROUP BY dept ORDER BY dept`)
	if len(rows) != 4 {
		t.Fatalf("groups = %d", len(rows))
	}
	// dept 10: count 2 sum 300.
	if rows[0][0].I != 10 || rows[0][1].I != 2 || rows[0][2].F != 300 {
		t.Errorf("group 10 = %v", rows[0])
	}
}

func TestGlobalAggregate(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT COUNT(*) AS c, AVG(salary) AS a FROM emp")
	if len(rows) != 1 || rows[0][0].I != 6 || rows[0][1].F != 350 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelectListReordering(t *testing.T) {
	// Aggregate first, group column second: requires the projection
	// remap.
	rows := runSQL(t, testCatalog(t),
		"SELECT COUNT(*) AS c, dept FROM emp GROUP BY dept ORDER BY dept")
	if len(rows) != 4 || rows[0][1].I != 10 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByLimit(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT id FROM emp ORDER BY id LIMIT 2")
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWherePredicateForms(t *testing.T) {
	cat := testCatalog(t)
	rows := runSQL(t, cat, "SELECT id FROM emp WHERE salary BETWEEN 200 AND 400")
	if got := ints(rows, 0); len(got) != 3 {
		t.Fatalf("between ids = %v", got)
	}
	rows = runSQL(t, cat, "SELECT id FROM emp WHERE dept IN (10, 30)")
	if got := ints(rows, 0); len(got) != 3 {
		t.Fatalf("in ids = %v", got)
	}
	rows = runSQL(t, cat, "SELECT id FROM emp WHERE NOT (dept = 10)")
	if got := ints(rows, 0); len(got) != 4 {
		t.Fatalf("not ids = %v", got)
	}
	rows = runSQL(t, cat, "SELECT id FROM emp WHERE salary IS NOT NULL")
	if len(rows) != 6 {
		t.Fatalf("is-not-null rows = %d", len(rows))
	}
}

func TestUnqualifiedColumnResolution(t *testing.T) {
	rows := runSQL(t, testCatalog(t),
		"SELECT salary FROM emp JOIN dept ON dept = dept.id WHERE region = 2")
	if len(rows) != 1 || rows[0][0].I != 500 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlannerProducesHashChainForEstimation(t *testing.T) {
	// The planner must produce a plan the estimation framework can push
	// estimates through: run a 3-way join and check the top join
	// converges to its exact cardinality.
	cat := testCatalog(t)
	stmt, err := Parse(`SELECT emp.id FROM emp
		JOIN dept ON emp.dept = dept.id
		JOIN region ON dept.region = region.id`)
	if err != nil {
		t.Fatal(err)
	}
	root, err := Plan(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	plan.EstimateCardinalities(root, cat)
	att := core.Attach(root)
	if len(att.Chains) == 0 {
		t.Fatal("no chains attached to planned query")
	}
	if _, err := exec.Run(root); err != nil {
		t.Fatal(err)
	}
	var joins int
	exec.Walk(root, func(op exec.Operator) {
		if j, ok := op.(*exec.HashJoin); ok {
			joins++
			if j.Stats().Source() != "once-exact" {
				t.Errorf("join %s source = %q", j.Name(), j.Stats().Source())
			}
		}
	})
	if joins != 2 {
		t.Errorf("hash joins = %d, want 2", joins)
	}
}

func TestPlannerErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT id FROM nope",
		"SELECT id FROM emp, emp",                    // duplicate alias
		"SELECT nope FROM emp",                       // unknown column
		"SELECT id FROM emp, dept",                   // ambiguous "id"
		"SELECT id FROM emp WHERE zzz = 1",           // unknown col in where
		"SELECT id FROM emp LEFT JOIN dept ON 1 = 1", // no equi cond
		"SELECT dept FROM emp GROUP BY id",           // dept not grouped
		"SELECT * FROM emp GROUP BY dept",            // star with group by
		"SELECT SUM(salary + 1) FROM emp",            // computed agg arg
		"SELECT id FROM emp ORDER BY zzz",            // unknown order col
		"SELECT id, * FROM emp",                      // mixed star
	}
	for _, q := range bad {
		stmt, err := Parse(q)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := Plan(stmt, cat); err == nil {
			t.Errorf("Plan(%q) should fail", q)
		}
	}
}

func TestResidualMultiTablePredicate(t *testing.T) {
	rows := runSQL(t, testCatalog(t), `SELECT emp.id FROM emp
		JOIN dept ON emp.dept = dept.id WHERE emp.salary > dept.region * 100`)
	// All joined emps have salary 100..500 vs region*100 = 100 or 200:
	// emp1 (100 > 100 false), emp2 (200>100), emp3 (300>100), emp4
	// (400>100), emp5 (500>200). → 4 rows.
	if got := ints(rows, 0); len(got) != 4 || got[0] != 2 {
		t.Fatalf("ids = %v", got)
	}
}

func TestConstantPredicate(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT id FROM emp WHERE 1 = 2")
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMultiColumnJoinCondition(t *testing.T) {
	// Two tables joined on BOTH columns: the planner must produce one
	// conjunctive multi-attribute hash join (not a join plus a residual
	// filter), and the estimator must converge on it.
	cat := catalog.New()
	mk := func(name string, rows [][2]int64) {
		s := data.NewSchema(
			data.Column{Table: name, Name: "x", Kind: data.KindInt},
			data.Column{Table: name, Name: "y", Kind: data.KindInt},
		)
		tb := storage.NewTable(name, s)
		for _, r := range rows {
			tb.MustAppend(data.Tuple{data.Int(r[0]), data.Int(r[1])})
		}
		cat.Register(tb)
	}
	mk("l", [][2]int64{{1, 1}, {1, 2}, {2, 1}, {2, 2}})
	mk("r", [][2]int64{{1, 1}, {2, 2}, {2, 2}, {3, 1}})

	stmt, err := Parse("SELECT l.x FROM l JOIN r ON l.x = r.x AND l.y = r.y")
	if err != nil {
		t.Fatal(err)
	}
	root, err := Plan(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	var multi *exec.HashJoin
	exec.Walk(root, func(op exec.Operator) {
		if j, ok := op.(*exec.HashJoin); ok {
			multi = j
		}
	})
	if multi == nil || len(multi.BuildKeys()) != 2 {
		t.Fatalf("expected one 2-column hash join, got %v", multi)
	}
	plan.EstimateCardinalities(root, cat)
	att := core.Attach(root)
	if err := root.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(root)
	if err != nil {
		t.Fatal(err)
	}
	root.Close()
	// matches: (1,1)x1, (2,2)x2 → 3 rows.
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if pe := att.ChainOf[multi]; pe == nil || pe.Estimate(0) != 3 {
		t.Errorf("multi-key join estimate wrong")
	}
}

func TestHaving(t *testing.T) {
	cat := testCatalog(t)
	// Groups with at least 2 employees: dept 10 and 20.
	rows := runSQL(t, cat, `SELECT dept, COUNT(*) c FROM emp
		GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept`)
	if len(rows) != 2 || rows[0][0].I != 10 || rows[1][0].I != 20 {
		t.Fatalf("rows = %v", rows)
	}
	// HAVING aggregate not in the select list (hidden column dropped).
	// Sums per dept: 10→300, 20→700, 30→500, 99→600; > 500 keeps 20, 99.
	rows = runSQL(t, cat, `SELECT dept FROM emp
		GROUP BY dept HAVING SUM(salary) > 500 ORDER BY dept`)
	if len(rows) != 2 || rows[0][0].I != 20 || rows[1][0].I != 99 {
		t.Fatalf("rows = %v", rows)
	}
	if len(rows[0]) != 1 {
		t.Fatalf("hidden having column leaked: %v", rows[0])
	}
	// HAVING on a group column.
	rows = runSQL(t, cat, `SELECT dept, COUNT(*) c FROM emp
		GROUP BY dept HAVING dept < 25 ORDER BY dept`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHavingErrors(t *testing.T) {
	cat := testCatalog(t)
	for _, q := range []string{
		"SELECT id FROM emp HAVING id > 1",                       // no group by
		"SELECT dept FROM emp GROUP BY dept HAVING salary > 1",   // non-grouped col
		"SELECT dept FROM emp GROUP BY dept HAVING MAX(zzz) > 1", // unknown col in agg
	} {
		stmt, err := Parse(q)
		if err != nil {
			continue
		}
		if _, err := Plan(stmt, cat); err == nil {
			t.Errorf("Plan(%q) should fail", q)
		}
	}
}

func TestOrderByDesc(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT id FROM emp ORDER BY id DESC LIMIT 3")
	if len(rows) != 3 || rows[0][0].I != 6 || rows[2][0].I != 4 {
		t.Fatalf("rows = %v", rows)
	}
	// Mixed directions.
	rows = runSQL(t, testCatalog(t), "SELECT dept, id FROM emp ORDER BY dept ASC, id DESC")
	if rows[0][0].I != 10 || rows[0][1].I != 2 || rows[1][1].I != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLikePredicate(t *testing.T) {
	cat := catalog.New()
	tb := storage.NewTable("n", data.NewSchema(
		data.Column{Table: "n", Name: "id", Kind: data.KindInt},
		data.Column{Table: "n", Name: "name", Kind: data.KindString},
	))
	for i, nm := range []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT"} {
		tb.MustAppend(data.Tuple{data.Int(int64(i + 1)), data.Str(nm)})
	}
	cat.Register(tb)
	rows := runSQL(t, cat, "SELECT id FROM n WHERE name LIKE 'A%A' ORDER BY id")
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 2 {
		t.Fatalf("LIKE rows = %v", rows)
	}
	rows = runSQL(t, cat, "SELECT id FROM n WHERE name NOT LIKE '%A%' ORDER BY id")
	// Names without an A anywhere: EGYPT only (BRAZIL has an A).
	if len(rows) != 1 || rows[0][0].I != 5 {
		t.Fatalf("NOT LIKE rows = %v", rows)
	}
	rows = runSQL(t, cat, "SELECT id FROM n WHERE name LIKE '_RAZIL'")
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("underscore rows = %v", rows)
	}
}

func TestOrderByNonProjectedColumn(t *testing.T) {
	rows := runSQL(t, testCatalog(t), "SELECT id FROM emp ORDER BY salary DESC LIMIT 2")
	// Highest salaries: emp 6 (600), emp 5 (500).
	if len(rows) != 2 || rows[0][0].I != 6 || rows[1][0].I != 5 {
		t.Fatalf("rows = %v", rows)
	}
	// Alias ordering still works on aggregates.
	rows = runSQL(t, testCatalog(t), `SELECT dept, SUM(salary) s FROM emp
		GROUP BY dept ORDER BY s DESC LIMIT 1`)
	if len(rows) != 1 || rows[0][0].I != 20 {
		t.Fatalf("rows = %v", rows)
	}
}
