package sql

import (
	"fmt"
	"strings"
)

// Expr is a parsed scalar or boolean expression.
type Expr interface {
	String() string
	exprNode()
}

// ColRef references table.column (Table may be empty).
type ColRef struct {
	Table  string
	Column string
	Pos    int
}

func (c *ColRef) exprNode() {}
func (c *ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Lit is a literal: int64, float64, string, or nil (NULL).
type Lit struct {
	Value any
	Pos   int
}

func (l *Lit) exprNode() {}
func (l *Lit) String() string {
	if l.Value == nil {
		return "NULL"
	}
	if s, ok := l.Value.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return fmt.Sprint(l.Value)
}

// Binary is a binary operation: comparisons (= <> < <= > >=), arithmetic
// (+ - * / %), and boolean AND/OR.
type Binary struct {
	Op   string
	L, R Expr
	Pos  int
}

func (b *Binary) exprNode() {}
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Unary is NOT expr or -expr.
type Unary struct {
	Op  string // "NOT" or "-"
	E   Expr
	Pos int
}

func (u *Unary) exprNode() {}
func (u *Unary) String() string {
	return u.Op + " (" + u.E.String() + ")"
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	E      Expr
	Negate bool
	Pos    int
}

func (i *IsNull) exprNode() {}
func (i *IsNull) String() string {
	if i.Negate {
		return i.E.String() + " IS NOT NULL"
	}
	return i.E.String() + " IS NULL"
}

// Between is "expr BETWEEN lo AND hi".
type Between struct {
	E, Lo, Hi Expr
	Pos       int
}

func (b *Between) exprNode() {}
func (b *Between) String() string {
	return b.E.String() + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String()
}

// InList is "expr IN (v1, v2, ...)".
type InList struct {
	E    Expr
	List []Expr
	Pos  int
}

func (in *InList) exprNode() {}
func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return in.E.String() + " IN (" + strings.Join(parts, ", ") + ")"
}

// LikePred is "expr [NOT] LIKE 'pattern'".
type LikePred struct {
	E       Expr
	Pattern string
	Negate  bool
	Pos     int
}

func (l *LikePred) exprNode() {}
func (l *LikePred) String() string {
	op := " LIKE '"
	if l.Negate {
		op = " NOT LIKE '"
	}
	return l.E.String() + op + strings.ReplaceAll(l.Pattern, "'", "''") + "'"
}

// FuncCall is an aggregate call: COUNT(*), COUNT(x), SUM/MIN/MAX/AVG(x).
type FuncCall struct {
	Name string // upper-case
	Star bool
	Arg  Expr
	Pos  int
}

func (f *FuncCall) exprNode() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	return f.Name + "(" + f.Arg.String() + ")"
}

// SelectItem is one projection: an expression with an optional alias, or
// the bare star.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef is a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
	Pos   int
}

// AliasOrName returns the effective relation name.
func (t TableRef) AliasOrName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinKind enumerates join types.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinSemi
	JoinAnti
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT"
	case JoinSemi:
		return "SEMI"
	case JoinAnti:
		return "ANTI"
	default:
		return "CROSS"
	}
}

// JoinClause is "JOIN table ON cond".
type JoinClause struct {
	Kind  JoinKind
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY column.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef // comma-separated FROM list
	Joins   []JoinClause
	Where   Expr
	GroupBy []ColRef
	Having  Expr
	OrderBy []OrderItem
	Limit   *int64
}

// String reassembles a normalized SQL rendering (for diagnostics).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		if t.Alias != "" {
			b.WriteString(" AS " + t.Alias)
		}
	}
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " %s JOIN %s", j.Kind, j.Table.Name)
		if j.Table.Alias != "" {
			b.WriteString(" AS " + j.Table.Alias)
		}
		if j.On != nil {
			b.WriteString(" ON " + j.On.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	return b.String()
}
