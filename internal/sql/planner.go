package sql

import (
	"sort"
	"strings"

	"qpi/internal/catalog"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/plan"
)

// Plan compiles a parsed SELECT into a physical operator tree over the
// catalog. The planner:
//
//   - pushes single-table WHERE conjuncts below the joins (except onto
//     tables preserved by outer joins, where that would change results);
//   - turns the inner-join graph into a left-deep chain of grace hash
//     joins whose probe side is always the largest estimated input —
//     exactly the pipeline shape the online estimation framework pushes
//     estimates down through;
//   - applies LEFT/SEMI/ANTI joins (probe-preserving hash joins) after
//     the inner core, in statement order;
//   - adds residual filters, grouping, ordering, projection and limit.
func Plan(stmt *SelectStmt, cat *catalog.Catalog) (exec.Operator, error) {
	p := &planner{cat: cat, rels: map[string]*rel{}}
	return p.plan(stmt)
}

// rel is one base relation in the query.
type rel struct {
	ref     TableRef
	scan    *exec.Scan
	filters []Expr // pushed-down single-table conjuncts
	op      exec.Operator
	rows    float64
	// outer marks tables joined by a non-inner join (no WHERE pushdown).
	outerKind JoinKind
	isOuter   bool
	on        Expr // ON condition for non-inner joins
	order     int  // statement order, for non-inner join application
}

type planner struct {
	cat  *catalog.Catalog
	rels map[string]*rel
}

func (p *planner) plan(stmt *SelectStmt) (exec.Operator, error) {
	if len(stmt.From) == 0 {
		return nil, errf(0, "FROM clause is required")
	}
	// Register relations.
	for _, tr := range stmt.From {
		if err := p.addRel(tr, JoinInner, nil, false); err != nil {
			return nil, err
		}
	}
	for i, jc := range stmt.Joins {
		isOuter := jc.Kind != JoinInner && jc.Kind != JoinCross
		if err := p.addRel(jc.Table, jc.Kind, jc.On, isOuter); err != nil {
			return nil, err
		}
		p.rels[jc.Table.AliasOrName()].order = i
	}

	// Collect conjuncts from WHERE and inner-join ON clauses.
	var conjuncts []Expr
	if stmt.Where != nil {
		conjuncts = splitConjuncts(stmt.Where)
	}
	for _, jc := range stmt.Joins {
		if jc.Kind == JoinInner && jc.On != nil {
			conjuncts = append(conjuncts, splitConjuncts(jc.On)...)
		}
	}

	// Classify conjuncts.
	type joinEdge struct {
		a, b        string // relation aliases
		aCol, bCol  *ColRef
		fromOuterOn bool
	}
	var edges []joinEdge
	var residual []Expr
	for _, c := range conjuncts {
		rels, err := p.referencedRels(c)
		if err != nil {
			return nil, err
		}
		switch len(rels) {
		case 0:
			residual = append(residual, c) // constant predicate
		case 1:
			r := p.rels[rels[0]]
			if r.isOuter {
				// Pushing a WHERE filter below an outer join would
				// change semantics; keep it residual.
				residual = append(residual, c)
			} else {
				r.filters = append(r.filters, c)
			}
		case 2:
			if l, rr, ok := equiCols(c); ok {
				la, _ := p.relOf(l)
				ra, _ := p.relOf(rr)
				if !p.rels[la].isOuter && !p.rels[ra].isOuter {
					edges = append(edges, joinEdge{a: la, b: ra, aCol: l, bCol: rr})
					continue
				}
			}
			residual = append(residual, c)
		default:
			residual = append(residual, c)
		}
	}

	// Non-inner join ON conditions: single equi condition between the
	// outer table and the inner core.
	for alias, r := range p.rels {
		if !r.isOuter {
			continue
		}
		if r.on == nil {
			return nil, errf(r.ref.Pos, "%s JOIN %s needs an ON condition", r.outerKind, alias)
		}
		// ON single-table conjuncts on the outer table itself can be
		// pushed (they filter the build input before preservation).
		for _, c := range splitConjuncts(r.on) {
			rels, err := p.referencedRels(c)
			if err != nil {
				return nil, err
			}
			if len(rels) == 1 && rels[0] == alias {
				r.filters = append(r.filters, c)
			}
		}
	}

	// Build per-relation subplans (scan + pushed filters) and estimate.
	for _, r := range p.rels {
		op := exec.Operator(r.scan)
		for _, f := range r.filters {
			e, err := p.toExpr(f, op.Schema())
			if err != nil {
				return nil, err
			}
			op = exec.NewFilter(op, e)
		}
		r.op = op
		plan.EstimateCardinalities(op, p.cat)
		r.rows = op.Stats().Estimate()
	}

	// Inner core: greedy left-deep chain, largest input as the stream.
	var innerAliases []string
	for a, r := range p.rels {
		if !r.isOuter {
			innerAliases = append(innerAliases, a)
		}
	}
	sort.Slice(innerAliases, func(i, j int) bool {
		ri, rj := p.rels[innerAliases[i]], p.rels[innerAliases[j]]
		if ri.rows != rj.rows {
			return ri.rows > rj.rows
		}
		return innerAliases[i] < innerAliases[j]
	})
	if len(innerAliases) == 0 {
		return nil, errf(0, "at least one inner relation is required")
	}
	stream := p.rels[innerAliases[0]].op
	joined := map[string]bool{innerAliases[0]: true}
	remaining := innerAliases[1:]
	usedEdge := make([]bool, len(edges))
	for len(remaining) > 0 {
		// Find the smallest joinable relation.
		bestIdx, bestEdge := -1, -1
		for i, alias := range remaining {
			for ei, e := range edges {
				if usedEdge[ei] {
					continue
				}
				var other string
				switch {
				case e.a == alias && joined[e.b]:
					other = e.b
				case e.b == alias && joined[e.a]:
					other = e.a
				default:
					continue
				}
				_ = other
				if bestIdx < 0 || p.rels[alias].rows < p.rels[remaining[bestIdx]].rows {
					bestIdx, bestEdge = i, ei
				}
				break
			}
		}
		if bestIdx < 0 {
			// Disconnected: cross product with the smallest remaining.
			sort.Slice(remaining, func(i, j int) bool {
				return p.rels[remaining[i]].rows < p.rels[remaining[j]].rows
			})
			alias := remaining[0]
			stream = exec.NewNestedLoopsJoin(stream, p.rels[alias].op, nil)
			joined[alias] = true
			remaining = remaining[1:]
			continue
		}
		alias := remaining[bestIdx]
		_ = bestEdge
		// Gather every usable equality between the new relation and the
		// stream so far: multiple conditions become one conjunctive
		// multi-attribute hash join (§4.1).
		build := p.rels[alias].op
		var buildKeys, probeKeys []int
		for ei, e := range edges {
			if usedEdge[ei] {
				continue
			}
			var buildCol, probeCol *ColRef
			switch {
			case e.a == alias && joined[e.b]:
				buildCol, probeCol = e.aCol, e.bCol
			case e.b == alias && joined[e.a]:
				buildCol, probeCol = e.bCol, e.aCol
			default:
				continue
			}
			bIdx := build.Schema().Resolve(buildCol.Table, buildCol.Column)
			pIdx := stream.Schema().Resolve(probeCol.Table, probeCol.Column)
			if bIdx < 0 || pIdx < 0 {
				return nil, errf(buildCol.Pos, "cannot resolve join columns %s = %s", buildCol, probeCol)
			}
			usedEdge[ei] = true
			buildKeys = append(buildKeys, bIdx)
			probeKeys = append(probeKeys, pIdx)
		}
		stream = exec.NewHashJoinMulti(build, stream, buildKeys, probeKeys, exec.InnerJoin)
		joined[alias] = true
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	// Unused edges between already-joined relations become residual
	// filters over the join output.
	for ei, e := range edges {
		if !usedEdge[ei] {
			residual = append(residual, &Binary{Op: "=",
				L: e.aCol, R: e.bCol, Pos: e.aCol.Pos})
		}
	}

	// Non-inner joins, in statement order.
	var outers []*rel
	for _, r := range p.rels {
		if r.isOuter {
			outers = append(outers, r)
		}
	}
	sort.Slice(outers, func(i, j int) bool { return outers[i].order < outers[j].order })
	for _, r := range outers {
		var cond *Binary
		for _, c := range splitConjuncts(r.on) {
			if l, rr, ok := equiCols(c); ok {
				la, _ := p.relOf(l)
				ra, _ := p.relOf(rr)
				if (la == r.ref.AliasOrName()) != (ra == r.ref.AliasOrName()) {
					cond = &Binary{Op: "=", L: l, R: rr}
					break
				}
			}
		}
		if cond == nil {
			return nil, errf(r.ref.Pos, "%s JOIN %s: ON must contain an equality between %s and a prior table",
				r.outerKind, r.ref.AliasOrName(), r.ref.AliasOrName())
		}
		l := cond.L.(*ColRef)
		rr := cond.R.(*ColRef)
		buildCol, probeCol := l, rr
		if la, _ := p.relOf(l); la != r.ref.AliasOrName() {
			buildCol, probeCol = rr, l
		}
		bIdx := r.op.Schema().Resolve(buildCol.Table, buildCol.Column)
		pIdx := stream.Schema().Resolve(probeCol.Table, probeCol.Column)
		if bIdx < 0 || pIdx < 0 {
			return nil, errf(buildCol.Pos, "cannot resolve join columns %s = %s", buildCol, probeCol)
		}
		var jt exec.JoinType
		switch r.outerKind {
		case JoinLeft:
			jt = exec.ProbeOuterJoin
		case JoinSemi:
			jt = exec.SemiJoin
		case JoinAnti:
			jt = exec.AntiJoin
		default:
			return nil, errf(r.ref.Pos, "unsupported join kind %s", r.outerKind)
		}
		stream = exec.NewHashJoinTyped(r.op, stream, bIdx, pIdx, jt)
	}

	// Residual filters.
	for _, c := range residual {
		e, err := p.toExpr(c, stream.Schema())
		if err != nil {
			return nil, err
		}
		stream = exec.NewFilter(stream, e)
	}

	// ORDER BY on columns that are not projected (standard SQL allows
	// this) sorts before the projection; otherwise the sort runs over the
	// output schema, where select-list aliases are visible.
	hasAggOrGroup := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAggOrGroup = true
		}
	}
	orderApplied := false
	if len(stmt.OrderBy) > 0 && !hasAggOrGroup {
		keys := make([]int, 0, len(stmt.OrderBy))
		desc := make([]bool, 0, len(stmt.OrderBy))
		ok := true
		for _, o := range stmt.OrderBy {
			idx := stream.Schema().Resolve(o.Col.Table, o.Col.Column)
			if idx < 0 {
				ok = false
				break
			}
			keys = append(keys, idx)
			desc = append(desc, o.Desc)
		}
		if ok {
			stream = exec.NewSortDirs(stream, keys, desc)
			orderApplied = true
		}
	}

	// Grouping / aggregation / projection.
	out, err := p.planProjection(stmt, stream)
	if err != nil {
		return nil, err
	}

	// ORDER BY over the output schema (aliases or column names).
	if len(stmt.OrderBy) > 0 && !orderApplied {
		keys := make([]int, 0, len(stmt.OrderBy))
		desc := make([]bool, 0, len(stmt.OrderBy))
		for _, o := range stmt.OrderBy {
			idx := out.Schema().Resolve(o.Col.Table, o.Col.Column)
			if idx < 0 {
				return nil, errf(o.Col.Pos, "ORDER BY column %s not in output (and not a base column)", o.Col.String())
			}
			keys = append(keys, idx)
			desc = append(desc, o.Desc)
		}
		out = exec.NewSortDirs(out, keys, desc)
	}
	if stmt.Limit != nil {
		out = exec.NewLimit(out, *stmt.Limit)
	}
	return out, nil
}

func (p *planner) addRel(tr TableRef, kind JoinKind, on Expr, isOuter bool) error {
	alias := tr.AliasOrName()
	if _, dup := p.rels[alias]; dup {
		return errf(tr.Pos, "duplicate table alias %q", alias)
	}
	entry, err := p.cat.Lookup(tr.Name)
	if err != nil {
		return errf(tr.Pos, "unknown table %q", tr.Name)
	}
	p.rels[alias] = &rel{
		ref:       tr,
		scan:      exec.NewScan(entry.Table, alias),
		outerKind: kind,
		isOuter:   isOuter,
		on:        on,
	}
	return nil
}

// relOf resolves which relation a column reference belongs to.
func (p *planner) relOf(c *ColRef) (string, error) {
	if c.Table != "" {
		if _, ok := p.rels[c.Table]; !ok {
			return "", errf(c.Pos, "unknown table %q in column %s", c.Table, c)
		}
		return c.Table, nil
	}
	found := ""
	for alias, r := range p.rels {
		if r.scan.Schema().Resolve(alias, c.Column) >= 0 {
			if found != "" {
				return "", errf(c.Pos, "ambiguous column %q (in %s and %s)", c.Column, found, alias)
			}
			found = alias
		}
	}
	if found == "" {
		return "", errf(c.Pos, "unknown column %q", c.Column)
	}
	return found, nil
}

func relAlias(c *ColRef) string { return c.Table }

// referencedRels returns the distinct relation aliases an expression
// touches (resolving unqualified columns).
func (p *planner) referencedRels(e Expr) ([]string, error) {
	set := map[string]bool{}
	var walk func(Expr) error
	walk = func(e Expr) error {
		switch x := e.(type) {
		case *ColRef:
			alias, err := p.relOf(x)
			if err != nil {
				return err
			}
			x.Table = alias // normalize for later resolution
			set[alias] = true
		case *Binary:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *Unary:
			return walk(x.E)
		case *IsNull:
			return walk(x.E)
		case *Between:
			for _, s := range []Expr{x.E, x.Lo, x.Hi} {
				if err := walk(s); err != nil {
					return err
				}
			}
		case *InList:
			if err := walk(x.E); err != nil {
				return err
			}
			for _, s := range x.List {
				if err := walk(s); err != nil {
					return err
				}
			}
		case *LikePred:
			return walk(x.E)
		case *FuncCall:
			if x.Arg != nil {
				return walk(x.Arg)
			}
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out, nil
}

// splitConjuncts flattens a boolean expression into AND-connected terms.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// equiCols matches "col = col" between two different relations.
func equiCols(e Expr) (*ColRef, *ColRef, bool) {
	b, ok := e.(*Binary)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	l, lok := b.L.(*ColRef)
	r, rok := b.R.(*ColRef)
	if !lok || !rok || l.Table == r.Table {
		return nil, nil, false
	}
	return l, r, true
}

// toExpr compiles an AST expression against a schema.
func (p *planner) toExpr(e Expr, s *data.Schema) (expr.Expr, error) {
	switch x := e.(type) {
	case *ColRef:
		idx := s.Resolve(x.Table, x.Column)
		if idx < 0 {
			return nil, errf(x.Pos, "column %s not found in %s", x, s)
		}
		return expr.Col{Index: idx, Name: x.String()}, nil
	case *Lit:
		switch v := x.Value.(type) {
		case nil:
			return expr.Lit(data.Null()), nil
		case int64:
			return expr.IntLit(v), nil
		case float64:
			return expr.Lit(data.Float(v)), nil
		case string:
			return expr.Lit(data.Str(v)), nil
		default:
			return nil, errf(x.Pos, "unsupported literal %T", x.Value)
		}
	case *Binary:
		l, err := p.toExpr(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := p.toExpr(x.R, s)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "AND":
			return expr.AndOf(l, r), nil
		case "OR":
			return expr.OrOf(l, r), nil
		case "=":
			return expr.Compare(expr.EQ, l, r), nil
		case "<>":
			return expr.Compare(expr.NE, l, r), nil
		case "<":
			return expr.Compare(expr.LT, l, r), nil
		case "<=":
			return expr.Compare(expr.LE, l, r), nil
		case ">":
			return expr.Compare(expr.GT, l, r), nil
		case ">=":
			return expr.Compare(expr.GE, l, r), nil
		case "+":
			return expr.Arith{Op: expr.Add, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Div, L: l, R: r}, nil
		case "%":
			return expr.Arith{Op: expr.Mod, L: l, R: r}, nil
		default:
			return nil, errf(x.Pos, "unsupported operator %q", x.Op)
		}
	case *Unary:
		inner, err := p.toExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return expr.Not{E: inner}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: expr.IntLit(0), R: inner}, nil
		default:
			return nil, errf(x.Pos, "unsupported unary %q", x.Op)
		}
	case *IsNull:
		inner, err := p.toExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		return expr.IsNull{E: inner, Negate: x.Negate}, nil
	case *Between:
		inner, err := p.toExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		lo, err := p.toExpr(x.Lo, s)
		if err != nil {
			return nil, err
		}
		hi, err := p.toExpr(x.Hi, s)
		if err != nil {
			return nil, err
		}
		return expr.AndOf(expr.Compare(expr.GE, inner, lo), expr.Compare(expr.LE, inner, hi)), nil
	case *InList:
		inner, err := p.toExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		terms := make([]expr.Expr, len(x.List))
		for i, item := range x.List {
			it, err := p.toExpr(item, s)
			if err != nil {
				return nil, err
			}
			terms[i] = expr.Compare(expr.EQ, inner, it)
		}
		return expr.OrOf(terms...), nil
	case *LikePred:
		inner, err := p.toExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		lk, err := expr.NewLike(inner, x.Pattern, x.Negate)
		if err != nil {
			return nil, errf(x.Pos, "%v", err)
		}
		return lk, nil
	case *FuncCall:
		return nil, errf(x.Pos, "aggregate %s not allowed here", x.Name)
	default:
		return nil, errf(0, "unsupported expression %T", e)
	}
}

// planProjection adds grouping/aggregation and the final projection.
func (p *planner) planProjection(stmt *SelectStmt, in exec.Operator) (exec.Operator, error) {
	hasAgg := false
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg && len(stmt.GroupBy) == 0 {
		if stmt.Having != nil {
			return nil, errf(0, "HAVING requires GROUP BY or aggregates")
		}
		// Plain projection (or star).
		if len(stmt.Items) == 1 && stmt.Items[0].Star {
			return in, nil
		}
		exprs := make([]expr.Expr, 0, len(stmt.Items))
		names := make([]string, 0, len(stmt.Items))
		for _, it := range stmt.Items {
			if it.Star {
				return nil, errf(0, "* cannot be mixed with other select items")
			}
			e, err := p.toExpr(it.Expr, in.Schema())
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			names = append(names, itemName(it))
		}
		return exec.NewProject(in, exprs, names), nil
	}

	// Aggregation path. Group columns must resolve in the input schema.
	gidx := make([]int, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		idx := in.Schema().Resolve(g.Table, g.Column)
		if idx < 0 {
			return nil, errf(g.Pos, "GROUP BY column %s not found", g.String())
		}
		gidx[i] = idx
	}
	// Collect aggregate specs from the select list.
	var specs []exec.AggSpec
	type outputRef struct {
		isGroup bool
		pos     int // index into gidx or specs
		name    string
	}
	var outputs []outputRef
	for _, it := range stmt.Items {
		if it.Star {
			return nil, errf(0, "* is not valid with GROUP BY/aggregates")
		}
		switch x := it.Expr.(type) {
		case *FuncCall:
			spec, err := p.aggSpec(x, in.Schema(), itemName(it))
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, outputRef{isGroup: false, pos: len(specs), name: itemName(it)})
			specs = append(specs, spec)
		case *ColRef:
			idx := in.Schema().Resolve(x.Table, x.Column)
			if idx < 0 {
				return nil, errf(x.Pos, "column %s not found", x)
			}
			gpos := -1
			for i, g := range gidx {
				if g == idx {
					gpos = i
				}
			}
			if gpos < 0 {
				return nil, errf(x.Pos, "column %s must appear in GROUP BY or inside an aggregate", x)
			}
			outputs = append(outputs, outputRef{isGroup: true, pos: gpos, name: itemName(it)})
		default:
			return nil, errf(0, "select items with GROUP BY must be group columns or aggregates")
		}
	}
	// HAVING may reference aggregates not in the select list; add them as
	// hidden columns (dropped by the final projection).
	var havingAggs []*FuncCall
	if stmt.Having != nil {
		collectAggs(stmt.Having, &havingAggs)
		for _, f := range havingAggs {
			if _, err := p.findOrAddSpec(f, in.Schema(), &specs); err != nil {
				return nil, err
			}
		}
	}

	agg := exec.NewHashAgg(in, gidx, specs)
	var out exec.Operator = agg
	if stmt.Having != nil {
		he, err := p.havingExpr(stmt.Having, in.Schema(), gidx, specs)
		if err != nil {
			return nil, err
		}
		out = exec.NewFilter(out, he)
	}
	// Reorder/select via projection when the select order differs from
	// (groups..., aggs...).
	needProject := len(outputs) != len(gidx)+len(specs)
	for i, o := range outputs {
		want := o.pos
		if !o.isGroup {
			want = len(gidx) + o.pos
		}
		if want != i {
			needProject = true
		}
	}
	if !needProject {
		return out, nil
	}
	exprs := make([]expr.Expr, len(outputs))
	names := make([]string, len(outputs))
	for i, o := range outputs {
		idx := o.pos
		if !o.isGroup {
			idx = len(gidx) + o.pos
		}
		exprs[i] = expr.Col{Index: idx, Name: o.name}
		names[i] = o.name
	}
	return exec.NewProject(out, exprs, names), nil
}

// collectAggs gathers aggregate calls in an expression.
func collectAggs(e Expr, out *[]*FuncCall) {
	switch x := e.(type) {
	case *FuncCall:
		*out = append(*out, x)
	case *Binary:
		collectAggs(x.L, out)
		collectAggs(x.R, out)
	case *Unary:
		collectAggs(x.E, out)
	case *IsNull:
		collectAggs(x.E, out)
	case *Between:
		collectAggs(x.E, out)
		collectAggs(x.Lo, out)
		collectAggs(x.Hi, out)
	case *InList:
		collectAggs(x.E, out)
		for _, i := range x.List {
			collectAggs(i, out)
		}
	}
}

// findOrAddSpec locates the aggregate spec matching f, appending a hidden
// one if absent; it returns the spec index.
func (p *planner) findOrAddSpec(f *FuncCall, in *data.Schema, specs *[]exec.AggSpec) (int, error) {
	cand, err := p.aggSpec(f, in, "__having_"+strings.ToLower(f.String()))
	if err != nil {
		return 0, err
	}
	for i, s := range *specs {
		if s.Func == cand.Func && (s.Func == exec.CountStar || s.Col == cand.Col) {
			return i, nil
		}
	}
	*specs = append(*specs, cand)
	return len(*specs) - 1, nil
}

// havingExpr compiles a HAVING expression against the aggregate output
// schema: aggregate calls become references to their output columns and
// plain columns must be group columns.
func (p *planner) havingExpr(e Expr, in *data.Schema, gidx []int, specs []exec.AggSpec) (expr.Expr, error) {
	switch x := e.(type) {
	case *FuncCall:
		cand, err := p.aggSpec(x, in, "")
		if err != nil {
			return nil, err
		}
		for i, s := range specs {
			if s.Func == cand.Func && (s.Func == exec.CountStar || s.Col == cand.Col) {
				return expr.Col{Index: len(gidx) + i, Name: x.String()}, nil
			}
		}
		return nil, errf(x.Pos, "aggregate %s not available in HAVING", x)
	case *ColRef:
		idx := in.Resolve(x.Table, x.Column)
		if idx < 0 {
			return nil, errf(x.Pos, "column %s not found", x)
		}
		for i, g := range gidx {
			if g == idx {
				return expr.Col{Index: i, Name: x.String()}, nil
			}
		}
		return nil, errf(x.Pos, "HAVING column %s must appear in GROUP BY or inside an aggregate", x)
	case *Binary:
		l, err := p.havingExpr(x.L, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		r, err := p.havingExpr(x.R, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		return combineBinary(x, l, r)
	case *Unary:
		inner, err := p.havingExpr(x.E, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return expr.Not{E: inner}, nil
		}
		return expr.Arith{Op: expr.Sub, L: expr.IntLit(0), R: inner}, nil
	case *IsNull:
		inner, err := p.havingExpr(x.E, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		return expr.IsNull{E: inner, Negate: x.Negate}, nil
	case *Between:
		inner, err := p.havingExpr(x.E, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		lo, err := p.havingExpr(x.Lo, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		hi, err := p.havingExpr(x.Hi, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		return expr.AndOf(expr.Compare(expr.GE, inner, lo), expr.Compare(expr.LE, inner, hi)), nil
	case *InList:
		inner, err := p.havingExpr(x.E, in, gidx, specs)
		if err != nil {
			return nil, err
		}
		terms := make([]expr.Expr, len(x.List))
		for i, item := range x.List {
			it, err := p.havingExpr(item, in, gidx, specs)
			if err != nil {
				return nil, err
			}
			terms[i] = expr.Compare(expr.EQ, inner, it)
		}
		return expr.OrOf(terms...), nil
	case *Lit:
		return p.toExpr(x, in) // literals are schema-independent
	default:
		return nil, errf(0, "unsupported expression %T in HAVING", e)
	}
}

// combineBinary maps a binary AST node onto compiled operands.
func combineBinary(x *Binary, l, r expr.Expr) (expr.Expr, error) {
	switch x.Op {
	case "AND":
		return expr.AndOf(l, r), nil
	case "OR":
		return expr.OrOf(l, r), nil
	case "=":
		return expr.Compare(expr.EQ, l, r), nil
	case "<>":
		return expr.Compare(expr.NE, l, r), nil
	case "<":
		return expr.Compare(expr.LT, l, r), nil
	case "<=":
		return expr.Compare(expr.LE, l, r), nil
	case ">":
		return expr.Compare(expr.GT, l, r), nil
	case ">=":
		return expr.Compare(expr.GE, l, r), nil
	case "+":
		return expr.Arith{Op: expr.Add, L: l, R: r}, nil
	case "-":
		return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
	case "*":
		return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
	case "/":
		return expr.Arith{Op: expr.Div, L: l, R: r}, nil
	case "%":
		return expr.Arith{Op: expr.Mod, L: l, R: r}, nil
	default:
		return nil, errf(x.Pos, "unsupported operator %q", x.Op)
	}
}

func (p *planner) aggSpec(f *FuncCall, s *data.Schema, name string) (exec.AggSpec, error) {
	var fn exec.AggFunc
	switch f.Name {
	case "COUNT":
		if f.Star {
			return exec.AggSpec{Func: exec.CountStar, Name: name}, nil
		}
		fn = exec.Count
	case "SUM":
		fn = exec.Sum
	case "MIN":
		fn = exec.Min
	case "MAX":
		fn = exec.Max
	case "AVG":
		fn = exec.Avg
	default:
		return exec.AggSpec{}, errf(f.Pos, "unknown aggregate %q", f.Name)
	}
	col, ok := f.Arg.(*ColRef)
	if !ok {
		return exec.AggSpec{}, errf(f.Pos, "%s argument must be a column", f.Name)
	}
	idx := s.Resolve(col.Table, col.Column)
	if idx < 0 {
		return exec.AggSpec{}, errf(col.Pos, "column %s not found", col)
	}
	return exec.AggSpec{Func: fn, Col: idx, Name: name}, nil
}

// containsAgg reports whether an expression contains an aggregate call.
func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		return true
	case *Binary:
		return containsAgg(x.L) || containsAgg(x.R)
	case *Unary:
		return containsAgg(x.E)
	case *IsNull:
		return containsAgg(x.E)
	case *Between:
		return containsAgg(x.E) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case *InList:
		if containsAgg(x.E) {
			return true
		}
		for _, i := range x.List {
			if containsAgg(i) {
				return true
			}
		}
	case *LikePred:
		return containsAgg(x.E)
	}
	return false
}

// itemName derives the output column name of a select item.
func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Column
	}
	return strings.ToLower(it.Expr.String())
}
