package sql

import "strconv"

// Parse parses one SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.peek().Pos, "unexpected %s %q after statement", p.peek().Kind, p.peek().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return Token{Kind: TokEOF, Pos: endPos(p.toks)}
}

func endPos(toks []Token) int {
	if len(toks) == 0 {
		return 0
	}
	last := toks[len(toks)-1]
	return last.Pos + len(last.Text)
}

func (p *parser) next() Token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) atEOF() bool { return p.peek().Kind == TokEOF }

// peekAhead looks n tokens past the cursor.
func (p *parser) peekAhead(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return Token{Kind: TokEOF, Pos: endPos(p.toks)}
}

// acceptKeyword consumes kw if present.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Kind != TokKeyword || t.Text != kw {
		return errf(t.Pos, "expected %s, found %s %q", kw, t.Kind, t.Text)
	}
	p.pos++
	return nil
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.peek()
	if t.Kind != kind {
		return t, errf(t.Pos, "expected %s, found %s %q", kind, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	// FROM.
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, tr)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	// JOIN clauses.
	for {
		kind, isJoin, err := p.parseJoinKind()
		if err != nil {
			return nil, err
		}
		if !isJoin {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		jc := JoinClause{Kind: kind, Table: tr}
		if kind != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			jc.On = on
		}
		stmt.Joins = append(stmt.Joins, jc)
	}
	// WHERE.
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	// GROUP BY.
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, *c)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	// ORDER BY.
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: *c}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	// LIMIT.
	if p.acceptKeyword("LIMIT") {
		t, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, errf(t.Pos, "invalid LIMIT %q", t.Text)
		}
		stmt.Limit = &n
	}
	return stmt, nil
}

// parseJoinKind consumes an optional join prefix; isJoin reports whether
// a join clause follows.
func (p *parser) parseJoinKind() (JoinKind, bool, error) {
	switch {
	case p.acceptKeyword("JOIN"):
		return JoinInner, true, nil
	case p.acceptKeyword("INNER"):
		return JoinInner, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		return JoinLeft, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("SEMI"):
		return JoinSemi, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("ANTI"):
		return JoinAnti, true, p.expectKeyword("JOIN")
	case p.acceptKeyword("CROSS"):
		return JoinCross, true, p.expectKeyword("JOIN")
	default:
		return JoinInner, false, nil
	}
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().Kind == TokStar {
		p.next()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: t.Text, Pos: t.Pos}
	if p.acceptKeyword("AS") {
		a, err := p.expect(TokIdent)
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a.Text
	} else if p.peek().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

func (p *parser) parseColRef() (*ColRef, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	c := &ColRef{Column: t.Text, Pos: t.Pos}
	if p.peek().Kind == TokDot {
		p.next()
		col, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		c.Table = t.Text
		c.Column = col.Text
	}
	return c, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	pred    := addExpr (cmpOp addExpr | IS [NOT] NULL | BETWEEN a AND b | IN (list))?
//	addExpr := mulExpr (('+'|'-') mulExpr)*
//	mulExpr := unary (('*'|'/'|'%') unary)*
//	unary   := '-' unary | primary
//	primary := literal | colref | aggcall | '(' expr ')'
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokKeyword && p.peek().Text == "OR" {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokKeyword && p.peek().Text == "AND" {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().Kind == TokKeyword && p.peek().Text == "NOT" {
		pos := p.next().Pos
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e, Pos: pos}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.Kind == TokOp && isCmpOp(t.Text):
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := t.Text
		if op == "!=" {
			op = "<>"
		}
		return &Binary{Op: op, L: l, R: r, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "LIKE":
		p.next()
		lit, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		return &LikePred{E: l, Pattern: lit.Text, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "NOT" && p.peekAhead(1).Text == "LIKE":
		p.next()
		p.next()
		lit, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		return &LikePred{E: l, Pattern: lit.Text, Negate: true, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "IS":
		p.next()
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Negate: neg, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.next()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Between{E: l, Lo: lo, Hi: hi, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "IN":
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &InList{E: l, List: list, Pos: t.Pos}, nil
	}
	return l, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOp && (p.peek().Text == "+" || p.peek().Text == "-") {
		t := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Text, L: l, R: r, Pos: t.Pos}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.peek().Kind == TokOp && (p.peek().Text == "/" || p.peek().Text == "%")) ||
		p.peek().Kind == TokStar {
		t := p.next()
		op := t.Text
		if t.Kind == TokStar {
			op = "*"
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Pos: t.Pos}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().Kind == TokOp && p.peek().Text == "-" {
		t := p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negative literals.
		if lit, ok := e.(*Lit); ok {
			switch v := lit.Value.(type) {
			case int64:
				return &Lit{Value: -v, Pos: t.Pos}, nil
			case float64:
				return &Lit{Value: -v, Pos: t.Pos}, nil
			}
		}
		return &Unary{Op: "-", E: e, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid integer %q", t.Text)
		}
		return &Lit{Value: n, Pos: t.Pos}, nil
	case TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid float %q", t.Text)
		}
		return &Lit{Value: f, Pos: t.Pos}, nil
	case TokString:
		p.next()
		return &Lit{Value: t.Text, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Lit{Value: nil, Pos: t.Pos}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			return p.parseAggCall()
		}
		return nil, errf(t.Pos, "unexpected keyword %q in expression", t.Text)
	case TokIdent:
		return p.parseColRef()
	default:
		return nil, errf(t.Pos, "unexpected %s %q in expression", t.Kind, t.Text)
	}
}

func (p *parser) parseAggCall() (Expr, error) {
	name := p.next() // COUNT/SUM/...
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: name.Text, Pos: name.Pos}
	if p.peek().Kind == TokStar {
		if name.Text != "COUNT" {
			return nil, errf(p.peek().Pos, "%s(*) is not valid", name.Text)
		}
		p.next()
		f.Star = true
	} else {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Arg = arg
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return f, nil
}
