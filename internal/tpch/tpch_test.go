package tpch

import (
	"testing"

	"qpi/internal/data"
)

func TestGenerateCardinalities(t *testing.T) {
	cat := MustGenerate(Config{SF: 0.01, Seed: 1})
	cases := []struct {
		table string
		rows  int64
	}{
		{"region", 5},
		{"nation", 25},
		{"supplier", 100},
		{"customer", 1500},
		{"orders", 15000},
		{"lineitem", 60000},
		{"part", 2000},
	}
	for _, c := range cases {
		e := cat.MustLookup(c.table)
		if e.Stats.Rows != c.rows {
			t.Errorf("%s: rows = %d, want %d", c.table, e.Stats.Rows, c.rows)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{SF: 0}); err == nil {
		t.Error("SF=0 should fail")
	}
	if _, err := Generate(Config{SF: -1}); err == nil {
		t.Error("SF<0 should fail")
	}
}

func TestGenerateSubset(t *testing.T) {
	cat := MustGenerate(Config{SF: 0.01, Seed: 1, Tables: []string{"orders", "customer"}})
	if got := cat.Names(); len(got) != 2 {
		t.Fatalf("Names = %v", got)
	}
	if _, err := cat.Lookup("lineitem"); err == nil {
		t.Error("lineitem should not be generated")
	}
}

func TestForeignKeysInRange(t *testing.T) {
	cat := MustGenerate(Config{SF: 0.01, Seed: 2})
	orders := cat.MustLookup("orders").Table
	nCust := int64(cat.MustLookup("customer").Stats.Rows)
	ckIdx := orders.Schema().MustResolve("orders", "custkey")
	it := orders.SequentialOrder()
	for tu := it.Next(); tu != nil; tu = it.Next() {
		ck := tu[ckIdx].I
		if ck < 1 || ck > nCust {
			t.Fatalf("custkey %d out of [1,%d]", ck, nCust)
		}
	}
}

func TestSkewChangesDistribution(t *testing.T) {
	top := func(c Config) float64 {
		cat := MustGenerate(c)
		cust := cat.MustLookup("customer").Table
		idx := cust.Schema().MustResolve("customer", "nationkey")
		counts := map[int64]int{}
		it := cust.SequentialOrder()
		for tu := it.Next(); tu != nil; tu = it.Next() {
			counts[tu[idx].I]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(cust.NumRows())
	}
	u := top(Config{SF: 0.02, Seed: 3, Skew: 0})
	s := top(Config{SF: 0.02, Seed: 3, Skew: 2})
	if s < 2*u {
		t.Errorf("skewed top fraction %.3f not clearly above uniform %.3f", s, u)
	}
}

func TestSkewedCustomerShape(t *testing.T) {
	tb := MustSkewedCustomer("c1", 1000, 50, 1, 7, 11)
	if tb.NumRows() != 1000 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	nkIdx := tb.Schema().MustResolve("c1", "nationkey")
	ckIdx := tb.Schema().MustResolve("c1", "custkey")
	it := tb.SequentialOrder()
	i := int64(1)
	for tu := it.Next(); tu != nil; tu = it.Next() {
		if tu[ckIdx].I != i {
			t.Fatalf("custkey %d, want %d", tu[ckIdx].I, i)
		}
		if nk := tu[nkIdx].I; nk < 1 || nk > 50 {
			t.Fatalf("nationkey %d out of domain", nk)
		}
		i++
	}
}

func TestSkewedCustomerPermSeedsDiffer(t *testing.T) {
	hot := func(permSeed int64) int64 {
		tb := MustSkewedCustomer("c", 5000, 1000, 2, 7, permSeed)
		idx := tb.Schema().MustResolve("c", "nationkey")
		counts := map[int64]int{}
		it := tb.SequentialOrder()
		for tu := it.Next(); tu != nil; tu = it.Next() {
			counts[tu[idx].I]++
		}
		var best int64
		max := -1
		for v, c := range counts {
			if c > max {
				best, max = v, c
			}
		}
		return best
	}
	if hot(11) == hot(222) {
		t.Error("different permSeeds produced the same hot value")
	}
}

func TestSkewedTableMultiColumn(t *testing.T) {
	tb, err := SkewedTable("t", 500, 3,
		ColumnSpec{Name: "x", Domain: 10, Z: 1, PermSeed: 1},
		ColumnSpec{Name: "y", Domain: 20, Z: 0, PermSeed: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema().Len() != 3 {
		t.Fatalf("schema = %v", tb.Schema())
	}
	xIdx := tb.Schema().MustResolve("t", "x")
	yIdx := tb.Schema().MustResolve("t", "y")
	it := tb.SequentialOrder()
	for tu := it.Next(); tu != nil; tu = it.Next() {
		if x := tu[xIdx].I; x < 1 || x > 10 {
			t.Fatalf("x=%d out of domain", x)
		}
		if y := tu[yIdx].I; y < 1 || y > 20 {
			t.Fatalf("y=%d out of domain", y)
		}
	}
}

func TestSkewedTableValidation(t *testing.T) {
	if _, err := SkewedTable("t", -1, 1); err == nil {
		t.Error("negative rows should fail")
	}
	if _, err := SkewedTable("t", 1, 1, ColumnSpec{Name: "x", Domain: 0}); err == nil {
		t.Error("zero domain should fail")
	}
	if _, err := SkewedCustomer("c", 10, 0, 0, 1, 1); err == nil {
		t.Error("zero domain customer should fail")
	}
}

func TestNationTable(t *testing.T) {
	tb := NationTable("nation", 100)
	if tb.NumRows() != 100 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	idx := tb.Schema().MustResolve("nation", "nationkey")
	rows := tb.Rows()
	for i, r := range rows {
		if r[idx].I != int64(i+1) {
			t.Fatalf("row %d nationkey = %v", i, r[idx])
		}
		if r[1].Kind != data.KindString {
			t.Fatal("name column not string")
		}
	}
}

func TestMustHelpersPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"MustGenerate":    func() { MustGenerate(Config{SF: 0}) },
		"MustSkewedTable": func() { MustSkewedTable("t", -1, 1) },
		"MustSkewedCust":  func() { MustSkewedCustomer("c", 1, 0, 0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
