// Package tpch generates TPC-H-style tables at a configurable scale
// factor, with optional Zipfian skew on foreign-key columns. It stands in
// for the paper's modified dbgen + the Chaudhuri/Narasayya skew tool [8]
// (§5 "Experiment Design"): the evaluation only depends on the schema
// shape, the table cardinalities and Zipf(z) key columns, all of which are
// reproduced here.
package tpch

import (
	"fmt"
	"math/rand"

	"qpi/internal/catalog"
	"qpi/internal/data"
	"qpi/internal/storage"
	"qpi/internal/zipf"
)

// Base cardinalities at scale factor 1, per the TPC-H specification.
const (
	NationRows   = 25
	RegionRows   = 5
	SupplierBase = 10000
	CustomerBase = 150000
	OrdersBase   = 1500000
	LineitemBase = 6000000
	PartBase     = 200000
)

// Config controls generation.
type Config struct {
	// SF is the TPC-H scale factor (1.0 = 150K customers, 6M lineitems).
	SF float64
	// Seed drives all random draws.
	Seed int64
	// Skew is the Zipf parameter applied to foreign-key columns
	// (0 = uniform, per the TPC-H spec).
	Skew float64
	// Tables optionally restricts generation to the named tables (all
	// when empty). Parent keys are always available because foreign keys
	// are drawn from [1..parent cardinality] rather than from the parent
	// table itself.
	Tables []string
}

// Generate builds the configured tables and registers them (with full
// statistics) in a fresh catalog.
func Generate(cfg Config) (*catalog.Catalog, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("tpch: scale factor %g must be positive", cfg.SF)
	}
	want := map[string]bool{}
	for _, t := range cfg.Tables {
		want[t] = true
	}
	all := len(want) == 0
	cat := catalog.New()
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}

	builders := []struct {
		name  string
		build func() (*storage.Table, error)
	}{
		{"region", g.region},
		{"nation", g.nation},
		{"supplier", g.supplier},
		{"customer", g.customer},
		{"orders", g.orders},
		{"lineitem", g.lineitem},
		{"part", g.part},
	}
	for _, b := range builders {
		if !all && !want[b.name] {
			continue
		}
		t, err := b.build()
		if err != nil {
			return nil, err
		}
		cat.Register(t)
	}
	return cat, nil
}

// MustGenerate is Generate, panicking on error.
func MustGenerate(cfg Config) *catalog.Catalog {
	c, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

type gen struct {
	cfg Config
	rng *rand.Rand
}

func (g *gen) scaled(base int) int {
	n := int(float64(base) * g.cfg.SF)
	if n < 1 {
		n = 1
	}
	return n
}

// fk returns a foreign-key generator over [1..n] with the configured skew.
func (g *gen) fk(n int, salt int64) *zipf.Generator {
	return zipf.MustNew(n, g.cfg.Skew, g.cfg.Seed+salt, g.cfg.Seed+salt*31)
}

func intCol(table, name string) data.Column {
	return data.Column{Table: table, Name: name, Kind: data.KindInt}
}

func floatCol(table, name string) data.Column {
	return data.Column{Table: table, Name: name, Kind: data.KindFloat}
}

func strCol(table, name string) data.Column {
	return data.Column{Table: table, Name: name, Kind: data.KindString}
}

func (g *gen) region() (*storage.Table, error) {
	t := storage.NewTable("region", data.NewSchema(
		intCol("region", "regionkey"),
		strCol("region", "name"),
	))
	names := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	for i := 0; i < RegionRows; i++ {
		t.MustAppend(data.Tuple{data.Int(int64(i + 1)), data.Str(names[i])})
	}
	return t, nil
}

func (g *gen) nation() (*storage.Table, error) {
	t := storage.NewTable("nation", data.NewSchema(
		intCol("nation", "nationkey"),
		intCol("nation", "regionkey"),
		strCol("nation", "name"),
	))
	for i := 0; i < NationRows; i++ {
		t.MustAppend(data.Tuple{
			data.Int(int64(i + 1)),
			data.Int(int64(i%RegionRows + 1)),
			data.Str(fmt.Sprintf("NATION_%02d", i+1)),
		})
	}
	return t, nil
}

func (g *gen) supplier() (*storage.Table, error) {
	t := storage.NewTable("supplier", data.NewSchema(
		intCol("supplier", "suppkey"),
		intCol("supplier", "nationkey"),
		floatCol("supplier", "acctbal"),
	))
	nation := g.fk(NationRows, 11)
	for i := 0; i < g.scaled(SupplierBase); i++ {
		t.MustAppend(data.Tuple{
			data.Int(int64(i + 1)),
			data.Int(nation.Next()),
			data.Float(g.money()),
		})
	}
	return t, nil
}

func (g *gen) customer() (*storage.Table, error) {
	t := storage.NewTable("customer", data.NewSchema(
		intCol("customer", "custkey"),
		intCol("customer", "nationkey"),
		floatCol("customer", "acctbal"),
	))
	nation := g.fk(NationRows, 13)
	for i := 0; i < g.scaled(CustomerBase); i++ {
		t.MustAppend(data.Tuple{
			data.Int(int64(i + 1)),
			data.Int(nation.Next()),
			data.Float(g.money()),
		})
	}
	return t, nil
}

func (g *gen) orders() (*storage.Table, error) {
	t := storage.NewTable("orders", data.NewSchema(
		intCol("orders", "orderkey"),
		intCol("orders", "custkey"),
		intCol("orders", "orderdate"),
		floatCol("orders", "totalprice"),
	))
	cust := g.fk(g.scaled(CustomerBase), 17)
	for i := 0; i < g.scaled(OrdersBase); i++ {
		t.MustAppend(data.Tuple{
			data.Int(int64(i + 1)),
			data.Int(cust.Next()),
			data.Int(int64(19920101 + g.rng.Intn(2556))), // 1992..1998
			data.Float(g.money()),
		})
	}
	return t, nil
}

func (g *gen) lineitem() (*storage.Table, error) {
	t := storage.NewTable("lineitem", data.NewSchema(
		intCol("lineitem", "orderkey"),
		intCol("lineitem", "partkey"),
		intCol("lineitem", "suppkey"),
		floatCol("lineitem", "extendedprice"),
	))
	nOrders := g.scaled(OrdersBase)
	nLines := g.scaled(LineitemBase)
	order := g.fk(nOrders, 19)
	part := g.fk(g.scaled(PartBase), 23)
	supp := g.fk(g.scaled(SupplierBase), 29)
	for i := 0; i < nLines; i++ {
		t.MustAppend(data.Tuple{
			data.Int(order.Next()),
			data.Int(part.Next()),
			data.Int(supp.Next()),
			data.Float(g.money()),
		})
	}
	return t, nil
}

func (g *gen) part() (*storage.Table, error) {
	t := storage.NewTable("part", data.NewSchema(
		intCol("part", "partkey"),
		intCol("part", "size"),
	))
	for i := 0; i < g.scaled(PartBase); i++ {
		t.MustAppend(data.Tuple{
			data.Int(int64(i + 1)),
			data.Int(int64(g.rng.Intn(50) + 1)),
		})
	}
	return t, nil
}

func (g *gen) money() float64 {
	return float64(g.rng.Intn(9999999)) / 100
}
