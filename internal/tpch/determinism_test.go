package tpch

import (
	"testing"

	"qpi/internal/storage"
)

// Seed determinism of the synthetic generators: the differential-test
// replay workflow regenerates datasets from printed seeds, so identical
// (seed, spec) inputs must reproduce identical tables.

func tableRows(t *testing.T, tb *storage.Table) []string {
	t.Helper()
	out := make([]string, 0, tb.NumRows())
	for _, tu := range tb.Rows() {
		out = append(out, tu.String())
	}
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSkewedTableDeterministic(t *testing.T) {
	spec := ColumnSpec{Name: "k", Domain: 50, Z: 1, PermSeed: 9}
	a := MustSkewedTable("t", 800, 4, spec)
	b := MustSkewedTable("t", 800, 4, spec)
	if !sameRows(tableRows(t, a), tableRows(t, b)) {
		t.Error("same seed produced different skewed tables")
	}
	c := MustSkewedTable("t", 800, 5, spec)
	if sameRows(tableRows(t, a), tableRows(t, c)) {
		t.Error("different seeds produced identical skewed tables")
	}
	spec.PermSeed = 10
	d := MustSkewedTable("t", 800, 4, spec)
	if sameRows(tableRows(t, a), tableRows(t, d)) {
		t.Error("different perm seeds produced identical skewed tables")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{SF: 0.002, Seed: 3, Skew: 1}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for _, name := range a.Names() {
		ea, err := a.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(tableRows(t, ea.Table), tableRows(t, eb.Table)) {
			t.Errorf("table %s differs across same-seed generations", name)
		}
	}
	c := MustGenerate(Config{SF: 0.002, Seed: 4, Skew: 1})
	eo, _ := a.Lookup("orders")
	ec, _ := c.Lookup("orders")
	if sameRows(tableRows(t, eo.Table), tableRows(t, ec.Table)) {
		t.Error("different seeds produced identical orders tables")
	}
}
