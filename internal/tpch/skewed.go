package tpch

import (
	"fmt"

	"qpi/internal/data"
	"qpi/internal/storage"
	"qpi/internal/zipf"
)

// ColumnSpec describes one Zipf-distributed integer column of a synthetic
// table, mirroring the paper's C_{z,n} notation (§5.1.1): values are drawn
// from [1..Domain] with Zipfian skew Z, and PermSeed selects which values
// carry the high frequencies (the paper's C^1, C^2, ... superscripts).
type ColumnSpec struct {
	Name     string
	Domain   int
	Z        float64
	PermSeed int64
}

// SkewedTable builds a table whose first column is a sequential key
// ("<name>key") and whose remaining columns follow the given specs. It is
// the workhorse behind the accuracy experiments' C_{z,n} tables.
func SkewedTable(name string, rows int, seed int64, specs ...ColumnSpec) (*storage.Table, error) {
	if rows < 0 {
		return nil, fmt.Errorf("tpch: rows %d must be non-negative", rows)
	}
	cols := make([]data.Column, 0, len(specs)+1)
	cols = append(cols, intCol(name, "rowid"))
	gens := make([]*zipf.Generator, len(specs))
	for i, sp := range specs {
		cols = append(cols, intCol(name, sp.Name))
		g, err := zipf.New(sp.Domain, sp.Z, seed+int64(i)*101, sp.PermSeed)
		if err != nil {
			return nil, fmt.Errorf("tpch: column %s: %w", sp.Name, err)
		}
		gens[i] = g
	}
	t := storage.NewTable(name, data.NewSchema(cols...))
	for r := 0; r < rows; r++ {
		tu := make(data.Tuple, len(specs)+1)
		tu[0] = data.Int(int64(r + 1))
		for i, g := range gens {
			tu[i+1] = data.Int(g.Next())
		}
		t.MustAppend(tu)
	}
	return t, nil
}

// MustSkewedTable is SkewedTable, panicking on error.
func MustSkewedTable(name string, rows int, seed int64, specs ...ColumnSpec) *storage.Table {
	t, err := SkewedTable(name, rows, seed, specs...)
	if err != nil {
		panic(err)
	}
	return t
}

// SkewedCustomer builds a paper-style customer table C_{z,domain}: 150K·SF
// rows restricted to (custkey, nationkey), with nationkey ~ Zipf(z) over
// [1..domain] and the rank→value permutation chosen by permSeed.
func SkewedCustomer(name string, rows, domain int, z float64, seed, permSeed int64) (*storage.Table, error) {
	g, err := zipf.New(domain, z, seed, permSeed)
	if err != nil {
		return nil, err
	}
	t := storage.NewTable(name, data.NewSchema(
		intCol(name, "custkey"),
		intCol(name, "nationkey"),
	))
	for i := 0; i < rows; i++ {
		t.MustAppend(data.Tuple{data.Int(int64(i + 1)), data.Int(g.Next())})
	}
	return t, nil
}

// MustSkewedCustomer is SkewedCustomer, panicking on error.
func MustSkewedCustomer(name string, rows, domain int, z float64, seed, permSeed int64) *storage.Table {
	t, err := SkewedCustomer(name, rows, domain, z, seed, permSeed)
	if err != nil {
		panic(err)
	}
	return t
}

// NationTable builds a nation-shaped dimension table with sequential
// nationkey over [1..domain]; the paper widens the nationkey domain the
// same way for the PK-FK experiment of Figure 4(b).
func NationTable(name string, domain int) *storage.Table {
	t := storage.NewTable(name, data.NewSchema(
		intCol(name, "nationkey"),
		strCol(name, "name"),
	))
	for i := 0; i < domain; i++ {
		t.MustAppend(data.Tuple{
			data.Int(int64(i + 1)),
			data.Str(fmt.Sprintf("N%06d", i+1)),
		})
	}
	return t
}
