package expr

import (
	"testing"
	"testing/quick"

	"qpi/internal/data"
)

var schema = data.NewSchema(
	data.Column{Table: "t", Name: "a", Kind: data.KindInt},
	data.Column{Table: "t", Name: "b", Kind: data.KindInt},
	data.Column{Table: "t", Name: "s", Kind: data.KindString},
)

func row(a, b int64, s string) data.Tuple {
	return data.Tuple{data.Int(a), data.Int(b), data.Str(s)}
}

func TestColumnResolutionAndEval(t *testing.T) {
	c := Column(schema, "t", "b")
	if got := c.Eval(row(1, 2, "x")); got.I != 2 {
		t.Errorf("Eval = %v", got)
	}
	if c.String() != "t.b" {
		t.Errorf("String = %q", c.String())
	}
	if (Col{Index: 3}).String() != "$3" {
		t.Error("unnamed Col String")
	}
}

func TestConst(t *testing.T) {
	if got := IntLit(5).Eval(nil); got.I != 5 {
		t.Errorf("IntLit = %v", got)
	}
	if got := Lit(data.Str("q")).Eval(nil); got.S != "q" {
		t.Errorf("Lit = %v", got)
	}
}

func TestCompareOps(t *testing.T) {
	a := Column(schema, "t", "a")
	five := IntLit(5)
	cases := []struct {
		op   CmpOp
		av   int64
		want bool
	}{
		{EQ, 5, true}, {EQ, 4, false},
		{NE, 4, true}, {NE, 5, false},
		{LT, 4, true}, {LT, 5, false},
		{LE, 5, true}, {LE, 6, false},
		{GT, 6, true}, {GT, 5, false},
		{GE, 5, true}, {GE, 4, false},
	}
	for _, c := range cases {
		got := Compare(c.op, a, five).Eval(row(c.av, 0, "")).IsTrue()
		if got != c.want {
			t.Errorf("%d %s 5 = %v, want %v", c.av, c.op, got, c.want)
		}
	}
}

func TestCompareWithNullIsFalse(t *testing.T) {
	nullRow := data.Tuple{data.Null(), data.Int(1), data.Str("")}
	a := Column(schema, "t", "a")
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if Compare(op, a, IntLit(0)).Eval(nullRow).IsTrue() {
			t.Errorf("NULL %s 0 should be false", op)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	tr, fa := Lit(data.Bool(true)), Lit(data.Bool(false))
	if !AndOf(tr, tr).Eval(nil).IsTrue() || AndOf(tr, fa).Eval(nil).IsTrue() {
		t.Error("AND wrong")
	}
	if !AndOf().Eval(nil).IsTrue() {
		t.Error("empty AND should be true")
	}
	if !OrOf(fa, tr).Eval(nil).IsTrue() || OrOf(fa, fa).Eval(nil).IsTrue() {
		t.Error("OR wrong")
	}
	if OrOf().Eval(nil).IsTrue() {
		t.Error("empty OR should be false")
	}
	if (Not{tr}).Eval(nil).IsTrue() || !(Not{fa}).Eval(nil).IsTrue() {
		t.Error("NOT wrong")
	}
}

func TestArithmeticInt(t *testing.T) {
	cases := []struct {
		op   ArithOp
		want int64
	}{
		{Add, 13}, {Sub, 7}, {Mul, 30}, {Div, 3}, {Mod, 1},
	}
	for _, c := range cases {
		got := Arith{c.op, IntLit(10), IntLit(3)}.Eval(nil)
		if got.Kind != data.KindInt || got.I != c.want {
			t.Errorf("10 %s 3 = %v, want %d", c.op, got, c.want)
		}
	}
}

func TestArithmeticFloatAndNulls(t *testing.T) {
	got := Arith{Div, Lit(data.Float(1)), IntLit(2)}.Eval(nil)
	if got.Kind != data.KindFloat || got.F != 0.5 {
		t.Errorf("1.0/2 = %v", got)
	}
	if !(Arith{Div, IntLit(1), IntLit(0)}).Eval(nil).IsNull() {
		t.Error("1/0 should be NULL")
	}
	if !(Arith{Mod, IntLit(1), IntLit(0)}).Eval(nil).IsNull() {
		t.Error("1%0 should be NULL")
	}
	if !(Arith{Div, Lit(data.Float(1)), Lit(data.Float(0))}).Eval(nil).IsNull() {
		t.Error("1.0/0.0 should be NULL")
	}
	if !(Arith{Mod, Lit(data.Float(1)), Lit(data.Float(2))}).Eval(nil).IsNull() {
		t.Error("float mod should be NULL")
	}
	if !(Arith{Add, Lit(data.Null()), IntLit(1)}).Eval(nil).IsNull() {
		t.Error("NULL+1 should be NULL")
	}
}

func TestStringsRender(t *testing.T) {
	a := Column(schema, "t", "a")
	e := AndOf(Compare(LT, a, IntLit(5)), OrOf(Compare(EQ, a, IntLit(1))))
	want := "(t.a < 5) AND ((t.a = 1))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	ar := Arith{Mul, a, IntLit(2)}
	if ar.String() != "(t.a * 2)" {
		t.Errorf("Arith String = %q", ar.String())
	}
	n := Not{a}
	if n.String() != "NOT (t.a)" {
		t.Errorf("Not String = %q", n.String())
	}
}

func TestComparisonMatchesGoSemantics(t *testing.T) {
	f := func(a, b int64) bool {
		r := row(a, b, "")
		ca, cb := Column(schema, "t", "a"), Column(schema, "t", "b")
		return Compare(LT, ca, cb).Eval(r).IsTrue() == (a < b) &&
			Compare(EQ, ca, cb).Eval(r).IsTrue() == (a == b) &&
			Compare(GE, ca, cb).Eval(r).IsTrue() == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntArithmeticMatchesGo(t *testing.T) {
	f := func(a, b int32) bool {
		l, r := IntLit(int64(a)), IntLit(int64(b))
		add := Arith{Add, l, r}.Eval(nil).I == int64(a)+int64(b)
		sub := Arith{Sub, l, r}.Eval(nil).I == int64(a)-int64(b)
		mul := Arith{Mul, l, r}.Eval(nil).I == int64(a)*int64(b)
		div := true
		if b != 0 {
			div = Arith{Div, l, r}.Eval(nil).I == int64(a)/int64(b)
		}
		return add && sub && mul && div
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLike(t *testing.T) {
	col := Column(schema, "t", "s")
	mk := func(pat string, neg bool) Like {
		l, err := NewLike(col, pat, neg)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	cases := []struct {
		pat  string
		val  string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "abcd", false},
		{"a%", "axyz", true},
		{"%z", "axyz", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%b%", "abc", true},
		{"", "", true},
		{"%", "anything", true},
		{"a.c", "abc", false}, // regexp metachars are literal
		{"a.c", "a.c", true},
	}
	for _, c := range cases {
		got := mk(c.pat, false).Eval(row(0, 0, c.val)).IsTrue()
		if got != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.val, c.pat, got, c.want)
		}
		if neg := mk(c.pat, true).Eval(row(0, 0, c.val)).IsTrue(); neg == got {
			t.Errorf("NOT LIKE should negate for %q/%q", c.val, c.pat)
		}
	}
	// NULL and non-string operands are false either way.
	nullRow := data.Tuple{data.Int(1), data.Int(2), data.Null()}
	if mk("x", false).Eval(nullRow).IsTrue() {
		t.Error("NULL LIKE should be false")
	}
	l := mk("a%", false)
	if l.String() != "t.s LIKE 'a%'" {
		t.Errorf("String = %q", l.String())
	}
	ln := mk("a%", true)
	if ln.String() != "t.s NOT LIKE 'a%'" {
		t.Errorf("String = %q", ln.String())
	}
}
