package expr

import (
	"strings"

	"qpi/internal/data"
)

// This file is the columnar evaluation path. EvalSel filters a whole
// column span into a selection vector in one call; EvalVec computes one
// output vector per expression for projections. Both must agree exactly
// with the per-tuple Eval semantics — the fast paths below are
// specialized only where the scalar semantics are reproduced bit for
// bit, and everything else routes through evalValue, a per-row
// interpreter that reads column vectors instead of tuples (falling back
// to Expr.Eval over a materialized row for expression types this
// package does not know).

// EvalSel appends to out the row indexes in sel (nil = all cb.NRows
// rows) for which e evaluates true, and returns out. The result is a
// valid selection vector for cb.
func EvalSel(e Expr, cb *data.ColBatch, sel []int32, out []int32) []int32 {
	switch x := e.(type) {
	case Cmp:
		if res, ok := evalSelCmp(x, cb, sel, out); ok {
			return res
		}
	case Like:
		if res, ok := evalSelLike(x, cb, sel, out); ok {
			return res
		}
	case And:
		// Narrow the selection through each term; intermediate
		// selections are scratch-allocated, the last lands in out.
		cur := sel
		for i, term := range x.Terms {
			if i == len(x.Terms)-1 {
				return EvalSel(term, cb, cur, out)
			}
			cur = EvalSel(term, cb, cur, nil)
			if len(cur) == 0 {
				return out[:0]
			}
		}
		// Empty conjunction: everything passes.
		return appendAll(cb, sel, out)
	}
	// Generic per-row path.
	out = out[:0]
	forEachRow(cb, sel, func(i int) {
		if evalValue(e, cb, i).IsTrue() {
			out = append(out, int32(i))
		}
	})
	return out
}

// appendAll appends every row of sel (or all rows) to out.
func appendAll(cb *data.ColBatch, sel []int32, out []int32) []int32 {
	out = out[:0]
	if sel != nil {
		return append(out, sel...)
	}
	for i := 0; i < cb.NRows; i++ {
		out = append(out, int32(i))
	}
	return out
}

// forEachRow visits the rows of sel (nil = all) in order.
func forEachRow(cb *data.ColBatch, sel []int32, f func(i int)) {
	if sel == nil {
		for i := 0; i < cb.NRows; i++ {
			f(i)
		}
		return
	}
	for _, i := range sel {
		f(int(i))
	}
}

// evalSelCmp handles the hot Cmp shapes over homogeneous typed lanes:
// Col-vs-Const and Col-vs-Col. Returns ok=false when no fast path
// applies (mixed columns, cross-category comparisons, other operand
// shapes).
func evalSelCmp(c Cmp, cb *data.ColBatch, sel []int32, out []int32) ([]int32, bool) {
	lc, lok := c.L.(Col)
	if !lok {
		return nil, false
	}
	switch r := c.R.(type) {
	case Const:
		return evalSelColConst(c.Op, cb, lc.Index, r.V, sel, out)
	case Col:
		lv, rv := cb.Col(lc.Index), cb.Col(r.Index)
		if !lv.Homogeneous() || !rv.Homogeneous() {
			return nil, false
		}
		if lv.Kind == data.KindInt && rv.Kind == data.KindInt {
			out = out[:0]
			forEachRow(cb, sel, func(i int) {
				if lv.Nulls.Get(i) || rv.Nulls.Get(i) {
					return
				}
				if cmpHolds(c.Op, compareI64(lv.Ints[i], rv.Ints[i])) {
					out = append(out, int32(i))
				}
			})
			return out, true
		}
		if lv.Kind == data.KindString && rv.Kind == data.KindString {
			out = out[:0]
			forEachRow(cb, sel, func(i int) {
				if lv.Nulls.Get(i) || rv.Nulls.Get(i) {
					return
				}
				if cmpHolds(c.Op, compareStr(lv.Strs[i], rv.Strs[i])) {
					out = append(out, int32(i))
				}
			})
			return out, true
		}
		return nil, false
	}
	return nil, false
}

// evalSelLike handles LIKE over a homogeneous string lane. Literal
// patterns (exact and prefix%) run as string compares, everything else
// through the compiled regexp — still one lane pass with no per-row
// Value construction. NULL rows are false (never selected) regardless of
// Negate, matching Like.Eval.
func evalSelLike(l Like, cb *data.ColBatch, sel []int32, out []int32) ([]int32, bool) {
	col, ok := l.E.(Col)
	if !ok {
		return nil, false
	}
	v := cb.Col(col.Index)
	if !v.Homogeneous() || v.Kind != data.KindString {
		return nil, false
	}
	var match func(s string) bool
	switch l.litMode {
	case likeExact:
		lit := l.litStr
		match = func(s string) bool { return s == lit }
	case likePrefix:
		lit := l.litStr
		match = func(s string) bool { return strings.HasPrefix(s, lit) }
	default:
		match = l.re.MatchString
	}
	out = out[:0]
	forEachRow(cb, sel, func(i int) {
		if v.Nulls.Get(i) {
			return
		}
		if match(v.Strs[i]) != l.Negate {
			out = append(out, int32(i))
		}
	})
	return out, true
}

// evalSelColConst filters column col against a constant.
func evalSelColConst(op CmpOp, cb *data.ColBatch, col int, k data.Value, sel []int32, out []int32) ([]int32, bool) {
	if k.IsNull() {
		// NULL comparand: Cmp.Eval is false for every row.
		return out[:0], true
	}
	v := cb.Col(col)
	if !v.Homogeneous() {
		return nil, false
	}
	switch {
	case v.Kind == data.KindInt && k.Kind == data.KindInt:
		kv := k.I
		out = out[:0]
		forEachRow(cb, sel, func(i int) {
			if v.Nulls.Get(i) {
				return
			}
			if cmpHolds(op, compareI64(v.Ints[i], kv)) {
				out = append(out, int32(i))
			}
		})
		return out, true
	case v.Kind == data.KindInt && k.Kind == data.KindFloat:
		// data.Compare compares int-vs-float as floats.
		kf := k.F
		out = out[:0]
		forEachRow(cb, sel, func(i int) {
			if v.Nulls.Get(i) {
				return
			}
			if cmpHolds(op, compareF64(float64(v.Ints[i]), kf)) {
				out = append(out, int32(i))
			}
		})
		return out, true
	case v.Kind == data.KindFloat && (k.Kind == data.KindFloat || k.Kind == data.KindInt):
		kf := k.AsFloat()
		out = out[:0]
		forEachRow(cb, sel, func(i int) {
			if v.Nulls.Get(i) {
				return
			}
			if cmpHolds(op, compareF64(v.Floats[i], kf)) {
				out = append(out, int32(i))
			}
		})
		return out, true
	case v.Kind == data.KindString && k.Kind == data.KindString:
		ks := k.S
		out = out[:0]
		forEachRow(cb, sel, func(i int) {
			if v.Nulls.Get(i) {
				return
			}
			if cmpHolds(op, compareStr(v.Strs[i], ks)) {
				out = append(out, int32(i))
			}
		})
		return out, true
	}
	return nil, false
}

func compareI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpHolds(op CmpOp, cmp int) bool {
	switch op {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// evalValue evaluates e over row i of cb without materializing the row,
// reproducing Expr.Eval exactly. Unknown expression types fall back to
// Eval over the batch's (cached or materialized) row.
func evalValue(e Expr, cb *data.ColBatch, i int) data.Value {
	switch x := e.(type) {
	case Col:
		return cb.Col(x.Index).ValueAt(i)
	case Const:
		return x.V
	case Cmp:
		l, r := evalValue(x.L, cb, i), evalValue(x.R, cb, i)
		if l.IsNull() || r.IsNull() {
			return data.Bool(false)
		}
		return data.Bool(cmpHolds(x.Op, data.Compare(l, r)))
	case And:
		for _, term := range x.Terms {
			if !evalValue(term, cb, i).IsTrue() {
				return data.Bool(false)
			}
		}
		return data.Bool(true)
	case Or:
		for _, term := range x.Terms {
			if evalValue(term, cb, i).IsTrue() {
				return data.Bool(true)
			}
		}
		return data.Bool(false)
	case Not:
		return data.Bool(!evalValue(x.E, cb, i).IsTrue())
	case IsNull:
		isNull := evalValue(x.E, cb, i).IsNull()
		if x.Negate {
			return data.Bool(!isNull)
		}
		return data.Bool(isNull)
	case Like:
		v := evalValue(x.E, cb, i)
		if v.IsNull() || v.Kind != data.KindString {
			return data.Bool(false)
		}
		m := x.re.MatchString(v.S)
		if x.Negate {
			m = !m
		}
		return data.Bool(m)
	case Arith:
		return Arith{Op: x.Op, L: constOf(evalValue(x.L, cb, i)), R: constOf(evalValue(x.R, cb, i))}.Eval(nil)
	default:
		return e.Eval(cb.MaterializeRows()[i])
	}
}

// constOf wraps an evaluated value so composite arithmetic can reuse
// Arith.Eval verbatim.
func constOf(v data.Value) Const { return Const{V: v} }

// EvalVec evaluates e for every live row of cb, writing results into out
// at the original row indexes (so out shares cb's NRows/Sel geometry).
// Pass-through columns (bare Col) should be handled by the caller via
// vector sharing; EvalVec always computes.
func EvalVec(e Expr, cb *data.ColBatch, out *data.ColVec) {
	out.Reset()
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			out.AppendVal(i, evalValue(e, cb, i))
		}
		return
	}
	prev := 0
	for _, i32 := range cb.Sel {
		i := int(i32)
		// Dead rows between live ones are NULL-padded so the vector
		// stays index-aligned.
		for ; prev < i; prev++ {
			out.AppendVal(prev, data.Null())
		}
		out.AppendVal(i, evalValue(e, cb, i))
		prev = i + 1
	}
}

// ColRefs appends the column indexes referenced by e to set (a caller-
// provided dedup map), so columnar operators can pivot only the columns
// an expression touches.
func ColRefs(e Expr, set map[int]bool) {
	switch x := e.(type) {
	case Col:
		set[x.Index] = true
	case Cmp:
		ColRefs(x.L, set)
		ColRefs(x.R, set)
	case And:
		for _, t := range x.Terms {
			ColRefs(t, set)
		}
	case Or:
		for _, t := range x.Terms {
			ColRefs(t, set)
		}
	case Not:
		ColRefs(x.E, set)
	case IsNull:
		ColRefs(x.E, set)
	case Like:
		ColRefs(x.E, set)
	case Arith:
		ColRefs(x.L, set)
		ColRefs(x.R, set)
	}
}
