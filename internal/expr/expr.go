// Package expr implements scalar expressions evaluated over tuples:
// column references, constants, comparisons, boolean connectives and
// arithmetic. Predicates evaluate to BIGINT 0/1 (NULL-involving
// comparisons evaluate to 0, collapsing SQL's three-valued logic to the
// filter semantics the executor needs).
package expr

import (
	"fmt"
	"regexp"
	"strings"

	"qpi/internal/data"
)

// Expr is a scalar expression over a tuple.
type Expr interface {
	// Eval computes the expression over a tuple.
	Eval(t data.Tuple) data.Value
	// String renders the expression for EXPLAIN-style output.
	String() string
}

// Col references a column by position, resolved against a schema at plan
// build time.
type Col struct {
	Index int
	Name  string // display name, e.g. "c.nationkey"
}

// Column builds a column reference resolved against schema.
func Column(s *data.Schema, table, name string) Col {
	idx := s.MustResolve(table, name)
	return Col{Index: idx, Name: s.Cols[idx].Qualified()}
}

// Eval returns the referenced column value.
func (c Col) Eval(t data.Tuple) data.Value { return t[c.Index] }

func (c Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Index)
}

// Const is a literal value.
type Const struct{ V data.Value }

// Lit builds a literal expression.
func Lit(v data.Value) Const { return Const{V: v} }

// IntLit builds an integer literal.
func IntLit(i int64) Const { return Const{V: data.Int(i)} }

// Eval returns the literal.
func (c Const) Eval(data.Tuple) data.Value { return c.V }

func (c Const) String() string { return c.V.String() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	default:
		return ">="
	}
}

// Cmp compares two subexpressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Compare builds a comparison expression.
func Compare(op CmpOp, l, r Expr) Cmp { return Cmp{Op: op, L: l, R: r} }

// Eval returns Bool(l op r); comparisons involving NULL are false.
func (c Cmp) Eval(t data.Tuple) data.Value {
	l, r := c.L.Eval(t), c.R.Eval(t)
	if l.IsNull() || r.IsNull() {
		return data.Bool(false)
	}
	cmp := data.Compare(l, r)
	switch c.Op {
	case EQ:
		return data.Bool(cmp == 0)
	case NE:
		return data.Bool(cmp != 0)
	case LT:
		return data.Bool(cmp < 0)
	case LE:
		return data.Bool(cmp <= 0)
	case GT:
		return data.Bool(cmp > 0)
	default:
		return data.Bool(cmp >= 0)
	}
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is a conjunction of predicates.
type And struct{ Terms []Expr }

// AndOf builds a conjunction.
func AndOf(terms ...Expr) And { return And{Terms: terms} }

// Eval returns true iff every term is true (empty conjunction is true).
func (a And) Eval(t data.Tuple) data.Value {
	for _, e := range a.Terms {
		if !e.Eval(t).IsTrue() {
			return data.Bool(false)
		}
	}
	return data.Bool(true)
}

func (a And) String() string { return joinExprs(a.Terms, " AND ") }

// Or is a disjunction of predicates.
type Or struct{ Terms []Expr }

// OrOf builds a disjunction.
func OrOf(terms ...Expr) Or { return Or{Terms: terms} }

// Eval returns true iff any term is true (empty disjunction is false).
func (o Or) Eval(t data.Tuple) data.Value {
	for _, e := range o.Terms {
		if e.Eval(t).IsTrue() {
			return data.Bool(true)
		}
	}
	return data.Bool(false)
}

func (o Or) String() string { return joinExprs(o.Terms, " OR ") }

// Not negates a predicate.
type Not struct{ E Expr }

// Eval returns the boolean negation.
func (n Not) Eval(t data.Tuple) data.Value { return data.Bool(!n.E.Eval(t).IsTrue()) }

func (n Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// IsNull tests a subexpression for SQL NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval returns Bool(E IS [NOT] NULL).
func (n IsNull) Eval(t data.Tuple) data.Value {
	isNull := n.E.Eval(t).IsNull()
	if n.Negate {
		return data.Bool(!isNull)
	}
	return data.Bool(isNull)
}

func (n IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("%s IS NOT NULL", n.E)
	}
	return fmt.Sprintf("%s IS NULL", n.E)
}

// Like tests a string subexpression against a SQL LIKE pattern
// (% matches any run, _ matches one character). The pattern is compiled
// to a regular expression once at construction.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
	re      *regexp.Regexp
	// litMode classifies patterns the vectorized evaluator can run
	// without the regexp engine: likeExact (no wildcards → string
	// equality) and likePrefix (literal prefix + single trailing '%' →
	// strings.HasPrefix). The regexp stays compiled either way — the
	// scalar Eval path and generic patterns use it.
	litMode byte
	litStr  string
}

const (
	likeRegexp byte = iota
	likeExact
	likePrefix
)

// classifyLike detects the literal pattern shapes: no wildcard at all,
// or a literal prefix followed by exactly one trailing '%'.
func classifyLike(pattern string) (byte, string) {
	for i, r := range pattern {
		switch r {
		case '_':
			return likeRegexp, ""
		case '%':
			if i == len(pattern)-1 {
				return likePrefix, pattern[:i]
			}
			return likeRegexp, ""
		}
	}
	return likeExact, pattern
}

// NewLike compiles a LIKE predicate.
func NewLike(e Expr, pattern string, negate bool) (Like, error) {
	var sb strings.Builder
	sb.WriteString("^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString("(?s).*")
		case '_':
			sb.WriteString("(?s).")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return Like{}, fmt.Errorf("expr: bad LIKE pattern %q: %w", pattern, err)
	}
	mode, lit := classifyLike(pattern)
	return Like{E: e, Pattern: pattern, Negate: negate, re: re, litMode: mode, litStr: lit}, nil
}

// Eval returns whether the operand matches (NULL operands are false).
func (l Like) Eval(t data.Tuple) data.Value {
	v := l.E.Eval(t)
	if v.IsNull() || v.Kind != data.KindString {
		return data.Bool(false)
	}
	m := l.re.MatchString(v.S)
	if l.Negate {
		m = !m
	}
	return data.Bool(m)
}

func (l Like) String() string {
	if l.Negate {
		return fmt.Sprintf("%s NOT LIKE '%s'", l.E, l.Pattern)
	}
	return fmt.Sprintf("%s LIKE '%s'", l.E, l.Pattern)
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "%"
	}
}

// Arith combines two numeric subexpressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval computes l op r with int arithmetic when both sides are ints (except
// Div by zero and Mod by zero, which yield NULL), float otherwise.
func (a Arith) Eval(t data.Tuple) data.Value {
	l, r := a.L.Eval(t), a.R.Eval(t)
	if l.IsNull() || r.IsNull() {
		return data.Null()
	}
	if l.Kind == data.KindInt && r.Kind == data.KindInt {
		switch a.Op {
		case Add:
			return data.Int(l.I + r.I)
		case Sub:
			return data.Int(l.I - r.I)
		case Mul:
			return data.Int(l.I * r.I)
		case Div:
			if r.I == 0 {
				return data.Null()
			}
			return data.Int(l.I / r.I)
		default:
			if r.I == 0 {
				return data.Null()
			}
			return data.Int(l.I % r.I)
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch a.Op {
	case Add:
		return data.Float(lf + rf)
	case Sub:
		return data.Float(lf - rf)
	case Mul:
		return data.Float(lf * rf)
	case Div:
		if rf == 0 {
			return data.Null()
		}
		return data.Float(lf / rf)
	default:
		return data.Null() // Mod undefined for floats
	}
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

func joinExprs(terms []Expr, sep string) string {
	s := ""
	for i, e := range terms {
		if i > 0 {
			s += sep
		}
		s += "(" + e.String() + ")"
	}
	return s
}
