package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"qpi/internal/data"
)

// Differential test of the vectorized string kernels: EvalSel over a
// column batch must select exactly the rows the scalar Eval selects,
// for every pattern class (exact, prefix, generic regexp), every
// comparison operator, NOT LIKE, NULL-bearing lanes, mixed-kind
// columns (fallback path) and pre-narrowed selection vectors.
func TestEvalSelStringKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	words := []string{"", "a", "ab", "abc", "abd", "b", "ba", "cust-001", "cust-002", "dog"}
	mkLike := func(pat string, neg bool) Like {
		l, err := NewLike(Col{Index: 0}, pat, neg)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	preds := []Expr{
		Compare(EQ, Col{Index: 0}, Lit(data.Str("abc"))),
		Compare(LT, Col{Index: 0}, Lit(data.Str("b"))),
		Compare(LE, Col{Index: 0}, Lit(data.Str("ab"))),
		Compare(GE, Col{Index: 0}, Lit(data.Str("cust-001"))),
		Compare(EQ, Col{Index: 0}, Col{Index: 1}),
		Compare(LE, Col{Index: 0}, Col{Index: 1}),
		mkLike("abc", false),     // exact
		mkLike("ab%", false),     // prefix
		mkLike("ab%", true),      // NOT LIKE prefix
		mkLike("%b%", false),     // generic regexp
		mkLike("a_c", false),     // generic regexp (underscore)
		mkLike("", false),        // exact empty
		AndOf(mkLike("c%", false), Compare(LE, Col{Index: 0}, Lit(data.Str("cust-001")))),
	}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(2*data.BatchSize())
		mixed := trial%5 == 4 // every fifth trial forces the fallback path
		rows := make([]data.Tuple, n)
		for i := range rows {
			tu := make(data.Tuple, 2)
			for c := 0; c < 2; c++ {
				switch {
				case rng.Intn(5) == 0:
					tu[c] = data.Null()
				case mixed && rng.Intn(4) == 0:
					tu[c] = data.Int(rng.Int63n(10))
				default:
					tu[c] = data.Str(words[rng.Intn(len(words))])
				}
			}
			rows[i] = tu
		}
		var cb data.ColBatch
		cb.FromTuples(rows, 2)
		var sel []int32
		if trial%2 == 1 {
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 {
					sel = append(sel, int32(i))
				}
			}
		}
		inSel := func(i int) bool {
			if sel == nil {
				return true
			}
			for _, s := range sel {
				if int(s) == i {
					return true
				}
			}
			return false
		}
		for pi, p := range preds {
			got := EvalSel(p, &cb, sel, nil)
			var want []int32
			for i := 0; i < n; i++ {
				if inSel(i) && p.Eval(rows[i]).IsTrue() {
					want = append(want, int32(i))
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d pred %d (%s): EvalSel=%v scalar=%v (mixed=%v, sel=%v)",
					trial, pi, p, got, want, mixed, sel != nil)
			}
		}
	}
}

// TestClassifyLike pins the pattern classification driving the
// non-regexp LIKE kernels.
func TestClassifyLike(t *testing.T) {
	cases := []struct {
		pat  string
		mode byte
		lit  string
	}{
		{"abc", likeExact, "abc"},
		{"", likeExact, ""},
		{"abc%", likePrefix, "abc"},
		{"%", likePrefix, ""},
		{"a%c", likeRegexp, ""},
		{"%abc", likeRegexp, ""},
		{"a_c", likeRegexp, ""},
		{"abc%%", likeRegexp, ""},
		{"_", likeRegexp, ""},
	}
	for _, c := range cases {
		mode, lit := classifyLike(c.pat)
		if mode != c.mode || lit != c.lit {
			t.Errorf("classifyLike(%q) = (%d, %q), want (%d, %q)", c.pat, mode, lit, c.mode, c.lit)
		}
	}
}
