package sketch_test

import (
	"math"
	"math/rand"
	"testing"

	"qpi/internal/data"
	"qpi/internal/qgen"
	"qpi/internal/sketch"
	"qpi/internal/storage"
)

// buildShards splits items into n shards round-robin and builds one
// ColumnSketch per shard.
func buildShards(items []uint64, n int, cfg sketch.Config) []*sketch.ColumnSketch {
	shards := make([]*sketch.ColumnSketch, n)
	for i := range shards {
		shards[i] = sketch.NewColumnSketch(cfg)
	}
	for i, it := range items {
		shards[i%n].AGMS.Add(it)
		shards[i%n].CM.Add(it)
		shards[i%n].Rows++
	}
	return shards
}

func cellsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeAssociativity asserts the core shard property: merging
// per-worker shards in any order (including different tree shapes)
// produces counters bit-identical to a serial build.
func TestMergeAssociativity(t *testing.T) {
	cfg := sketch.Config{Rows: 3, Buckets: 64, Seed: sketch.DefaultSeed}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		items := make([]uint64, n)
		for i := range items {
			items[i] = uint64(rng.Intn(40)) // heavy duplication
		}
		serial := sketch.NewColumnSketch(cfg)
		for _, it := range items {
			serial.AGMS.Add(it)
			serial.CM.Add(it)
			serial.Rows++
		}
		nShards := 1 + rng.Intn(7)
		shards := buildShards(items, nShards, cfg)

		// Left fold over a random shard permutation.
		perm := rng.Perm(nShards)
		left := sketch.NewColumnSketch(cfg)
		for _, p := range perm {
			if err := left.Merge(shards[p]); err != nil {
				t.Fatal(err)
			}
		}
		// Pairwise tree fold (clone first: Merge mutates the receiver).
		tree := make([]*sketch.ColumnSketch, nShards)
		for i, s := range buildShards(items, nShards, cfg) {
			tree[i] = s
		}
		for len(tree) > 1 {
			var next []*sketch.ColumnSketch
			for i := 0; i < len(tree); i += 2 {
				if i+1 < len(tree) {
					if err := tree[i].Merge(tree[i+1]); err != nil {
						t.Fatal(err)
					}
				}
				next = append(next, tree[i])
			}
			tree = next
		}
		for name, got := range map[string]*sketch.ColumnSketch{"fold": left, "tree": tree[0]} {
			if !cellsEqual(serial.AGMS.Cells(), got.AGMS.Cells()) {
				t.Fatalf("trial %d: %s-merged AGMS cells differ from serial", trial, name)
			}
			if !cellsEqual(serial.CM.Cells(), got.CM.Cells()) {
				t.Fatalf("trial %d: %s-merged CM cells differ from serial", trial, name)
			}
			if got.Rows != serial.Rows {
				t.Fatalf("trial %d: %s rows %d != serial %d", trial, name, got.Rows, serial.Rows)
			}
		}
		// Identical counters imply identical estimates; spot-check one.
		se, err := sketch.JoinSizeEstimate(serial.AGMS, serial.AGMS)
		if err != nil {
			t.Fatal(err)
		}
		le, err := sketch.JoinSizeEstimate(left.AGMS, left.AGMS)
		if err != nil {
			t.Fatal(err)
		}
		if se != le {
			t.Fatalf("trial %d: merged estimate %g != serial %g", trial, le, se)
		}
	}
}

// TestCountMinOverestimateOnly asserts the count-min contract: every
// point estimate is >= the true count, and within the standard
// 2N/Buckets accuracy band (generous slack for the small widths).
func TestCountMinOverestimateOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		cfg := sketch.Config{Rows: 1 + rng.Intn(5), Buckets: 16 << rng.Intn(4), Seed: sketch.DefaultSeed}
		cm := sketch.NewCountMin(cfg)
		truth := map[uint64]int64{}
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Zipf-ish: low items are hot.
			it := uint64(rng.Intn(1 + rng.Intn(200)))
			cm.Add(it)
			truth[it]++
		}
		var maxTrue int64
		for it, want := range truth {
			got := cm.Estimate(it)
			if got < want {
				t.Fatalf("trial %d: Estimate(%d)=%d underestimates true count %d", trial, it, got, want)
			}
			if slack := got - want; slack > 8*int64(n)/int64(cfg.Buckets)+1 {
				t.Fatalf("trial %d: Estimate(%d)=%d exceeds true %d by %d (> 8N/w)", trial, it, got, want, slack)
			}
			if want > maxTrue {
				maxTrue = want
			}
		}
		if cm.MaxEst() < maxTrue {
			t.Fatalf("trial %d: MaxEst %d below the true hottest frequency %d", trial, cm.MaxEst(), maxTrue)
		}
		if cm.Count() != int64(n) {
			t.Fatalf("trial %d: Count %d != %d", trial, cm.Count(), n)
		}
	}
}

// keyCounts tallies the non-NULL join keys of one qgen table column.
func keyCounts(tb *storage.Table, col int) (map[data.Value]int64, int64) {
	counts := map[data.Value]int64{}
	var nulls int64
	it := tb.SequentialOrder()
	for t := it.Next(); t != nil; t = it.Next() {
		v := t[col]
		if v.IsNull() {
			nulls++
			continue
		}
		counts[v]++
	}
	return counts, nulls
}

// TestFastAGMSAccuracyOnQgenTables builds ColumnSketches over the join
// keys of generated Zipf/correlated/NULL-heavy tables and checks the
// pairwise join-size estimate against the exact join size, within the
// documented Fast-AGMS error bound: |est - true| <= 6·sqrt(F2(R)·F2(S)/w)
// (the per-row standard error is sqrt(F2(R)·F2(S)/w); the median of 5
// rows at 6 sigma leaves no realistic failure mass, and the seeds are
// fixed so the test is deterministic).
func TestFastAGMSAccuracyOnQgenTables(t *testing.T) {
	const keyCol = 1 // qgen's k column
	cfg := sketch.DefaultConfig()
	for seed := int64(1); seed <= 25; seed++ {
		c := qgen.Generate(seed, qgen.DefaultOptions())
		for i := 0; i < len(c.Tables); i++ {
			for j := i + 1; j < len(c.Tables); j++ {
				sketches := make([]*sketch.ColumnSketch, 2)
				counts := make([]map[data.Value]int64, 2)
				for si, ti := range []int{i, j} {
					cs := sketch.NewColumnSketch(cfg)
					it := c.Tables[ti].SequentialOrder()
					for tup := it.Next(); tup != nil; tup = it.Next() {
						cs.Observe(tup[keyCol])
					}
					sketches[si] = cs
					counts[si], _ = keyCounts(c.Tables[ti], keyCol)
				}
				var truth, f2a, f2b float64
				for v, ca := range counts[0] {
					truth += float64(ca) * float64(counts[1][v])
				}
				for _, ca := range counts[0] {
					f2a += float64(ca) * float64(ca)
				}
				for _, cb := range counts[1] {
					f2b += float64(cb) * float64(cb)
				}
				est, err := sketch.JoinSizeEstimate(sketches[0].AGMS, sketches[1].AGMS)
				if err != nil {
					t.Fatal(err)
				}
				bound := 6*math.Sqrt(f2a*f2b/float64(cfg.Buckets)) + 1e-9
				if diff := math.Abs(est - truth); diff > bound {
					t.Fatalf("seed %d tables %d,%d: estimate %g vs true %g differs by %g > bound %g",
						seed, i, j, est, truth, diff, bound)
				}
			}
		}
	}
}

// TestValueItemJoinEquality pins the kind-tagged hashing to the
// executor's join-key equality: equal keys hash equal, keys of
// different kinds (Int(2) vs Float(2.0)) do not join and must not
// collide by construction.
func TestValueItemJoinEquality(t *testing.T) {
	if sketch.ValueItem(data.Int(2)) != sketch.ValueItem(data.Int(2)) {
		t.Fatal("equal int keys produced different items")
	}
	if sketch.ValueItem(data.Str("ab")) != sketch.ValueItem(data.Str("ab")) {
		t.Fatal("equal string keys produced different items")
	}
	if sketch.ValueItem(data.Int(2)) == sketch.ValueItem(data.Float(2.0)) {
		t.Fatal("Int(2) and Float(2.0) mapped to the same item, but they never join")
	}
	if sketch.IntItem(7) != sketch.ValueItem(data.Int(7)) {
		t.Fatal("IntItem disagrees with ValueItem on the same integer")
	}
}

// TestMergeConfigMismatch asserts sketches of different families
// refuse to merge or dot.
func TestMergeConfigMismatch(t *testing.T) {
	a := sketch.NewFastAGMS(sketch.Config{Rows: 3, Buckets: 64, Seed: 1})
	b := sketch.NewFastAGMS(sketch.Config{Rows: 3, Buckets: 128, Seed: 1})
	if err := a.Merge(b); err == nil {
		t.Fatal("FastAGMS.Merge across configs succeeded")
	}
	if _, err := sketch.JoinSizeEstimate(a, b); err == nil {
		t.Fatal("JoinSizeEstimate across configs succeeded")
	}
	if _, err := sketch.JoinSizeEstimate(a); err == nil {
		t.Fatal("JoinSizeEstimate of one sketch succeeded")
	}
	ca := sketch.NewCountMin(sketch.Config{Rows: 2, Buckets: 32, Seed: 1})
	cb := sketch.NewCountMin(sketch.Config{Rows: 2, Buckets: 32, Seed: 2})
	if err := ca.Merge(cb); err == nil {
		t.Fatal("CountMin.Merge across seeds succeeded")
	}
}

// TestCloneIndependence asserts Clone detaches the counters.
func TestCloneIndependence(t *testing.T) {
	cfg := sketch.Config{Rows: 2, Buckets: 16, Seed: sketch.DefaultSeed}
	a := sketch.NewFastAGMS(cfg)
	a.Add(1)
	cl := a.Clone()
	a.Add(2)
	if cl.Count() != 1 {
		t.Fatalf("clone count %d, want 1", cl.Count())
	}
	if cellsEqual(a.Cells(), cl.Cells()) {
		t.Fatal("clone shares state with original")
	}
}
