package sketch_test

import (
	"encoding/binary"
	"testing"

	"qpi/internal/sketch"
)

// FuzzSketchMerge drives the shard-merge invariants from raw bytes:
// any item stream, split into any number of shards and merged in a
// byte-derived order, must reproduce the serial sketch counter for
// counter, and count-min point estimates must never underestimate.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3))
	f.Add([]byte{0xff, 0, 0xff, 0, 0xff, 0, 1, 1}, uint8(1))
	f.Add(make([]byte, 64), uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, nShardsByte uint8) {
		cfg := sketch.Config{Rows: 3, Buckets: 32, Seed: sketch.DefaultSeed}
		nShards := 1 + int(nShardsByte%8)
		var items []uint64
		for len(raw) >= 2 {
			items = append(items, uint64(binary.LittleEndian.Uint16(raw))%97)
			raw = raw[2:]
		}
		serial := sketch.NewColumnSketch(cfg)
		truth := map[uint64]int64{}
		for _, it := range items {
			serial.AGMS.Add(it)
			serial.CM.Add(it)
			serial.Rows++
			truth[it]++
		}
		shards := make([]*sketch.ColumnSketch, nShards)
		for i := range shards {
			shards[i] = sketch.NewColumnSketch(cfg)
		}
		for i, it := range items {
			s := shards[i%nShards]
			s.AGMS.Add(it)
			s.CM.Add(it)
			s.Rows++
		}
		// Merge in an input-derived order: rotate by the item count.
		merged := sketch.NewColumnSketch(cfg)
		for i := 0; i < nShards; i++ {
			if err := merged.Merge(shards[(i+len(items))%nShards]); err != nil {
				t.Fatal(err)
			}
		}
		sc, mc := serial.AGMS.Cells(), merged.AGMS.Cells()
		for i := range sc {
			if sc[i] != mc[i] {
				t.Fatalf("AGMS cell %d: serial %d != merged %d", i, sc[i], mc[i])
			}
		}
		sc, mc = serial.CM.Cells(), merged.CM.Cells()
		for i := range sc {
			if sc[i] != mc[i] {
				t.Fatalf("CM cell %d: serial %d != merged %d", i, sc[i], mc[i])
			}
		}
		for it, want := range truth {
			if got := merged.CM.Estimate(it); got < want {
				t.Fatalf("CM.Estimate(%d)=%d underestimates %d", it, got, want)
			}
		}
		if len(items) > 0 {
			se, err := sketch.JoinSizeEstimate(serial.AGMS, serial.AGMS)
			if err != nil {
				t.Fatal(err)
			}
			me, err := sketch.JoinSizeEstimate(merged.AGMS, merged.AGMS)
			if err != nil {
				t.Fatal(err)
			}
			if se != me {
				t.Fatalf("merged self-join estimate %g != serial %g", me, se)
			}
		}
	})
}
