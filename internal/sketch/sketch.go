// Package sketch implements the two mergeable frequency sketches the
// mid-query re-optimizer builds during grace-join partition passes:
// Fast-AGMS (Cormode & Garofalakis) for join-size estimation and
// count-min (Cormode & Muthukrishnan) for overestimate-only point
// frequencies. Both are linear sketches over uint64 items: per-worker
// shards built independently over disjoint spans of a column merge by
// plain integer addition into exactly the sketch a serial pass would
// have produced, so merge order can never change an estimate — a
// property the fuzz tests assert with == on the raw counters.
//
// Items are pre-hashed uint64s. ValueItem maps engine values onto items
// with kind-tagged hashing that mirrors the executor's join-key
// equality (Int(2) and Float(2.0) are different join keys, so they are
// different items; NULLs never join, so callers skip them).
package sketch

import (
	"fmt"
	"math"
	"sort"

	"qpi/internal/data"
)

// Config fixes a sketch family: two sketches interoperate (Merge,
// JoinSizeEstimate) only when their Config is identical, because the
// hash functions are derived from it.
type Config struct {
	// Rows is the number of independent hash rows (the median width d).
	Rows int
	// Buckets is the number of counters per row (the accuracy width w).
	Buckets int
	// Seed derives every row's bucket and sign hash functions.
	Seed uint64
}

// DefaultSeed is the process-wide default hash seed. Every sketch the
// engine builds uses it, so sketches of different columns, tables and
// workers are always mergeable and dot-able with each other.
const DefaultSeed uint64 = 0x9e3779b97f4a7c15

// DefaultConfig sizes the sketches for the engine's scout passes: 5
// rows x 512 buckets (20 KiB of int64 counters) keeps the standard
// Fast-AGMS error bound sqrt(F2(R)·F2(S)/w) far below the join sizes
// the qgen property suite measures against.
func DefaultConfig() Config { return Config{Rows: 5, Buckets: 512, Seed: DefaultSeed} }

func (c Config) validate() error {
	if c.Rows < 1 || c.Buckets < 1 {
		return fmt.Errorf("sketch: invalid config %+v", c)
	}
	return nil
}

// mix is the splitmix64 finalizer keyed by seed: the per-row hash
// functions are mix with distinct derived seeds.
func mix(x, seed uint64) uint64 {
	x += seed + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rowSeeds derives one (bucket, sign) seed pair per row.
func rowSeeds(cfg Config) []uint64 {
	seeds := make([]uint64, 2*cfg.Rows)
	s := cfg.Seed
	for i := range seeds {
		s = mix(s, uint64(i)*0x100000001b3)
		seeds[i] = s
	}
	return seeds
}

// fnv1a hashes a string (string join keys) onto an item.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Kind tags keep ValueItem aligned with the executor's join equality:
// the hash join keys integers through a dedicated int64 map and
// everything else through Value-struct equality, so values of
// different kinds never match even when numerically equal.
const (
	tagInt    uint64 = 0x496e7431
	tagFloat  uint64 = 0x466c7431
	tagString uint64 = 0x53747231
	tagNull   uint64 = 0x4e756c31
)

// ValueItem maps an engine value onto a sketch item with kind-tagged
// hashing matching join-key equality. NULL gets a stable item of its
// own, but NULL join keys never match, so sketch builders skip NULLs
// and account for them separately (ColumnSketch.Nulls).
func ValueItem(v data.Value) uint64 {
	switch v.Kind {
	case data.KindInt:
		return mix(uint64(v.I), tagInt)
	case data.KindFloat:
		return mix(math.Float64bits(v.F), tagFloat)
	case data.KindString:
		return mix(fnv1a(v.S), tagString)
	default:
		return mix(0, tagNull)
	}
}

// IntItem is ValueItem for a non-NULL integer key, usable straight off
// a flat int64 column lane.
func IntItem(i int64) uint64 { return mix(uint64(i), tagInt) }

// FastAGMS is a Fast-AGMS (a.k.a. AGMS with hashing / count sketch)
// linear sketch: Rows independent rows of Buckets signed counters. An
// item lands in one bucket per row with a ±1 sign; the dot product of
// two rows is an unbiased estimate of the join size Σ_v f_R(v)·f_S(v),
// and the median over rows controls the failure probability.
type FastAGMS struct {
	cfg   Config
	seeds []uint64
	cells []int64 // Rows × Buckets, row-major
	n     int64   // items added (weighted)
}

// NewFastAGMS creates an empty sketch. Panics on an invalid config
// (construction sites are plan-time code).
func NewFastAGMS(cfg Config) *FastAGMS {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &FastAGMS{
		cfg:   cfg,
		seeds: rowSeeds(cfg),
		cells: make([]int64, cfg.Rows*cfg.Buckets),
	}
}

// Config returns the sketch's family config.
func (s *FastAGMS) Config() Config { return s.cfg }

// Count returns the total (weighted) item count added so far.
func (s *FastAGMS) Count() int64 { return s.n }

// Add records one occurrence of item.
func (s *FastAGMS) Add(item uint64) { s.AddN(item, 1) }

// AddN records n occurrences of item.
func (s *FastAGMS) AddN(item uint64, n int64) {
	w := uint64(s.cfg.Buckets)
	for r := 0; r < s.cfg.Rows; r++ {
		b := mix(item, s.seeds[2*r]) % w
		if mix(item, s.seeds[2*r+1])&1 == 0 {
			s.cells[r*s.cfg.Buckets+int(b)] += n
		} else {
			s.cells[r*s.cfg.Buckets+int(b)] -= n
		}
	}
	s.n += n
}

// Merge adds o's counters into s. Both sketches must share a Config;
// the result is bit-identical to a single sketch built over the union
// of the two input streams in any order.
func (s *FastAGMS) Merge(o *FastAGMS) error {
	if o == nil {
		return nil
	}
	if s.cfg != o.cfg {
		return fmt.Errorf("sketch: merge of mismatched FastAGMS configs %+v vs %+v", s.cfg, o.cfg)
	}
	for i, c := range o.cells {
		s.cells[i] += c
	}
	s.n += o.n
	return nil
}

// Clone returns a deep copy.
func (s *FastAGMS) Clone() *FastAGMS {
	out := NewFastAGMS(s.cfg)
	copy(out.cells, s.cells)
	out.n = s.n
	return out
}

// Cells exposes the raw counters (tests assert merge order cannot
// change them). The returned slice is live; do not mutate.
func (s *FastAGMS) Cells() []int64 { return s.cells }

// SelfJoinSize estimates F2 = Σ_v f(v)², the self-join size.
func (s *FastAGMS) SelfJoinSize() float64 {
	est, _ := JoinSizeEstimate(s, s)
	return est
}

// JoinSizeEstimate estimates the size of the natural join of the
// relations the sketches summarize: for each row, the sum over buckets
// of the product of the sketches' counters, medianed across rows and
// clamped at 0 (the raw estimator can go negative on tiny inputs).
// Two sketches give the classic unbiased Fast-AGMS pairwise estimate
// with standard error sqrt(F2(R)·F2(S)/Buckets); three or more apply
// the same product form as a multi-way heuristic; because the sign
// hashes are shared across sketches of one family, an odd-arity dot
// carries an odd sign power on its diagonal and is biased toward zero
// — callers wanting multi-join sizes compose pairwise estimates
// instead (core.SketchSet.JoinSizeEstimate, the re-optimizer's cost
// cascade). All sketches must share a Config.
func JoinSizeEstimate(sketches ...*FastAGMS) (float64, error) {
	if len(sketches) < 2 {
		return 0, fmt.Errorf("sketch: JoinSizeEstimate needs >= 2 sketches, got %d", len(sketches))
	}
	cfg := sketches[0].cfg
	for _, s := range sketches[1:] {
		if s.cfg != cfg {
			return 0, fmt.Errorf("sketch: JoinSizeEstimate over mismatched configs %+v vs %+v", cfg, s.cfg)
		}
	}
	rows := make([]float64, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		var sum float64
		for b := 0; b < cfg.Buckets; b++ {
			prod := 1.0
			for _, s := range sketches {
				prod *= float64(s.cells[r*cfg.Buckets+b])
			}
			sum += prod
		}
		rows[r] = sum
	}
	est := median(rows)
	if est < 0 {
		est = 0
	}
	return est, nil
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// CountMin is a count-min sketch: Rows rows of Buckets non-negative
// counters; an item increments one counter per row, and its estimate
// is the minimum across rows — always >= the true count (the
// overestimate-only bound the property tests assert), within
// 2·N/Buckets of it with probability 1-2^-Rows.
type CountMin struct {
	cfg   Config
	seeds []uint64
	cells []int64 // Rows × Buckets, row-major
	n     int64
	// maxEst tracks the largest post-insert Estimate seen, a cheap
	// upper-ish bound on the hottest item's frequency. Under shard
	// merges it is combined with max(), which is a heuristic: the true
	// post-merge maximum can exceed both shards' maxima when a hot
	// item's occurrences were split across shards. Documented; the
	// re-optimizer only uses it as a skew hint, never for correctness.
	maxEst int64
}

// NewCountMin creates an empty sketch. Panics on an invalid config.
func NewCountMin(cfg Config) *CountMin {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &CountMin{
		cfg:   cfg,
		seeds: rowSeeds(cfg),
		cells: make([]int64, cfg.Rows*cfg.Buckets),
	}
}

// Config returns the sketch's family config.
func (c *CountMin) Config() Config { return c.cfg }

// Count returns the total (weighted) item count added so far.
func (c *CountMin) Count() int64 { return c.n }

// Add records one occurrence of item.
func (c *CountMin) Add(item uint64) { c.AddN(item, 1) }

// AddN records n occurrences of item.
func (c *CountMin) AddN(item uint64, n int64) {
	w := uint64(c.cfg.Buckets)
	est := int64(math.MaxInt64)
	for r := 0; r < c.cfg.Rows; r++ {
		b := mix(item, c.seeds[2*r]) % w
		cell := &c.cells[r*c.cfg.Buckets+int(b)]
		*cell += n
		if *cell < est {
			est = *cell
		}
	}
	c.n += n
	if est > c.maxEst {
		c.maxEst = est
	}
}

// Estimate returns the item's frequency estimate: the minimum counter
// across rows, always >= the true count.
func (c *CountMin) Estimate(item uint64) int64 {
	w := uint64(c.cfg.Buckets)
	est := int64(math.MaxInt64)
	for r := 0; r < c.cfg.Rows; r++ {
		b := mix(item, c.seeds[2*r]) % w
		if v := c.cells[r*c.cfg.Buckets+int(b)]; v < est {
			est = v
		}
	}
	return est
}

// MaxEst returns the largest post-insert point estimate observed — a
// skew hint (see the field comment for its behaviour under Merge).
func (c *CountMin) MaxEst() int64 { return c.maxEst }

// Merge adds o's counters into c; the counters are bit-identical to a
// single sketch built over the union of the streams in any order.
// MaxEst combines with max() (heuristic; see field comment).
func (c *CountMin) Merge(o *CountMin) error {
	if o == nil {
		return nil
	}
	if c.cfg != o.cfg {
		return fmt.Errorf("sketch: merge of mismatched CountMin configs %+v vs %+v", c.cfg, o.cfg)
	}
	for i, v := range o.cells {
		c.cells[i] += v
	}
	c.n += o.n
	if o.maxEst > c.maxEst {
		c.maxEst = o.maxEst
	}
	return nil
}

// Clone returns a deep copy.
func (c *CountMin) Clone() *CountMin {
	out := NewCountMin(c.cfg)
	copy(out.cells, c.cells)
	out.n = c.n
	out.maxEst = c.maxEst
	return out
}

// Cells exposes the raw counters (tests assert merge order cannot
// change them). The returned slice is live; do not mutate.
func (c *CountMin) Cells() []int64 { return c.cells }

// ColumnSketch summarizes one column of one relation: a Fast-AGMS
// sketch for join sizes, a count-min sketch for point frequencies, and
// exact row/NULL tallies. NULL keys are counted but never added to the
// sketches (NULLs never join).
type ColumnSketch struct {
	AGMS  *FastAGMS
	CM    *CountMin
	Rows  int64 // rows observed, including NULL keys
	Nulls int64 // rows with a NULL key
}

// NewColumnSketch creates an empty column sketch of the given family.
func NewColumnSketch(cfg Config) *ColumnSketch {
	return &ColumnSketch{AGMS: NewFastAGMS(cfg), CM: NewCountMin(cfg)}
}

// Observe records one key value.
func (cs *ColumnSketch) Observe(v data.Value) {
	cs.Rows++
	if v.IsNull() {
		cs.Nulls++
		return
	}
	item := ValueItem(v)
	cs.AGMS.Add(item)
	cs.CM.Add(item)
}

// ObserveInt records one non-NULL integer key straight off a flat lane.
func (cs *ColumnSketch) ObserveInt(i int64) {
	cs.Rows++
	item := IntItem(i)
	cs.AGMS.Add(item)
	cs.CM.Add(item)
}

// ObserveItem records one non-NULL, pre-hashed key item (composite
// join keys fold their per-column items before sketching).
func (cs *ColumnSketch) ObserveItem(item uint64) {
	cs.Rows++
	cs.AGMS.Add(item)
	cs.CM.Add(item)
}

// ObserveNull records one NULL key.
func (cs *ColumnSketch) ObserveNull() {
	cs.Rows++
	cs.Nulls++
}

// Merge folds o into cs (shard merge). Order never changes the result.
func (cs *ColumnSketch) Merge(o *ColumnSketch) error {
	if o == nil {
		return nil
	}
	if err := cs.AGMS.Merge(o.AGMS); err != nil {
		return err
	}
	if err := cs.CM.Merge(o.CM); err != nil {
		return err
	}
	cs.Rows += o.Rows
	cs.Nulls += o.Nulls
	return nil
}

// NonNull returns the number of non-NULL keys observed.
func (cs *ColumnSketch) NonNull() int64 { return cs.Rows - cs.Nulls }
