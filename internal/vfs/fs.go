package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file is the injectable filesystem seam for the engine's temporary
// spill I/O (grace hash-join partitions, external sort runs). Production
// code uses OS; tests wrap it in a FaultFS to force create/write/read/
// seek/close failures at any point of a spilling operator's lifecycle and
// to assert descriptor-clean shutdown.

// File is the I/O surface the spill paths need from a temporary file.
// *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
}

// FS creates (and removes) temporary files. Implementations must be safe
// for concurrent use.
type FS interface {
	// CreateTemp creates a new temporary file in the default temp
	// directory, named after pattern as in os.CreateTemp.
	CreateTemp(pattern string) (File, error)
	// Remove unlinks a file by name.
	Remove(name string) error
}

// OS is the real filesystem.
type OS struct{}

// CreateTemp implements FS.
func (OS) CreateTemp(pattern string) (File, error) { return os.CreateTemp("", pattern) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Op enumerates the fault-injectable file operations.
type Op uint8

// Fault-injectable operations.
const (
	OpCreate Op = iota
	OpWrite
	OpRead
	OpSeek
	OpClose
	numOps
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpSeek:
		return "seek"
	default:
		return "close"
	}
}

// ErrInjected is the sentinel error FaultFS fails with; injected faults
// wrap it, so callers assert propagation with errors.Is.
var ErrInjected = errors.New("vfs: injected I/O fault")

// FaultFS wraps an FS, counting every operation and failing the
// configured n-th occurrence of each kind with ErrInjected — a
// deterministic fault-injection seam for spill I/O. It also tracks how
// many of its files are currently open, so tests can assert that error
// and cancellation paths release every descriptor. A close that fails by
// injection still closes the underlying file (the descriptor is gone
// either way, as with a real failed close(2)).
type FaultFS struct {
	base FS

	mu      sync.Mutex
	failAt  [numOps]int // fail the n-th op, 1-based; 0 = never
	count   [numOps]int
	open    int
	maxOpen int
}

// NewFaultFS wraps base (nil = the real filesystem) with fault injection.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OS{}
	}
	return &FaultFS{base: base}
}

// FailAt arranges for the n-th (1-based) operation of the given kind to
// fail; n <= 0 clears the trigger. Returns the FaultFS for chaining.
func (f *FaultFS) FailAt(op Op, n int) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	f.failAt[op] = n
	return f
}

// Count returns how many operations of the given kind have been issued.
func (f *FaultFS) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count[op]
}

// OpenFiles returns the number of currently open files created through
// this FS; 0 after clean shutdown.
func (f *FaultFS) OpenFiles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.open
}

// MaxOpenFiles returns the high-water mark of simultaneously open files.
func (f *FaultFS) MaxOpenFiles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxOpen
}

// trip counts one operation and returns the injected error when it is the
// configured trigger.
func (f *FaultFS) trip(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count[op]++
	if f.failAt[op] != 0 && f.count[op] == f.failAt[op] {
		return fmt.Errorf("%w: %s #%d", ErrInjected, op, f.count[op])
	}
	return nil
}

// CreateTemp implements FS.
func (f *FaultFS) CreateTemp(pattern string) (File, error) {
	if err := f.trip(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(pattern)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.open++
	if f.open > f.maxOpen {
		f.maxOpen = f.open
	}
	f.mu.Unlock()
	return &faultFile{file: file, fs: f}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.base.Remove(name) }

// faultFile routes every operation through the owning FaultFS's triggers.
type faultFile struct {
	file   File
	fs     *FaultFS
	closed bool
}

func (ff *faultFile) Name() string { return ff.file.Name() }

func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.trip(OpWrite); err != nil {
		return 0, err
	}
	return ff.file.Write(p)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.trip(OpRead); err != nil {
		return 0, err
	}
	return ff.file.Read(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := ff.fs.trip(OpSeek); err != nil {
		return 0, err
	}
	return ff.file.Seek(offset, whence)
}

func (ff *faultFile) Close() error {
	err := ff.fs.trip(OpClose)
	if !ff.closed {
		ff.closed = true
		ff.fs.mu.Lock()
		ff.fs.open--
		ff.fs.mu.Unlock()
		if cerr := ff.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
