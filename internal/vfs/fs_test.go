package vfs

import (
	"errors"
	"io"
	"os"
	"testing"
)

func TestOSCreateTempRoundTrip(t *testing.T) {
	f, err := OS{}.CreateTemp("qpi-vfs-test-*")
	if err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	defer OS{}.Remove(name)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(f, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read back %q, %v", buf, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := (OS{}).Remove(name); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("file still exists after Remove: %v", err)
	}
}

func TestFaultFSFailsNthOp(t *testing.T) {
	fs := NewFaultFS(nil).FailAt(OpWrite, 2)
	f, err := fs.CreateTemp("qpi-vfs-test-*")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Remove(f.Name())
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write: want ErrInjected, got %v", err)
	}
	// The trigger is one-shot: only the exact n-th op fails.
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("third write: %v", err)
	}
	if fs.Count(OpWrite) != 3 {
		t.Fatalf("write count = %d, want 3", fs.Count(OpWrite))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSFailsCreate(t *testing.T) {
	fs := NewFaultFS(nil).FailAt(OpCreate, 1)
	if _, err := fs.CreateTemp("qpi-vfs-test-*"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if fs.OpenFiles() != 0 {
		t.Fatalf("open files after failed create: %d", fs.OpenFiles())
	}
}

func TestFaultFSOpenCounting(t *testing.T) {
	fs := NewFaultFS(nil)
	var files []File
	for i := 0; i < 3; i++ {
		f, err := fs.CreateTemp("qpi-vfs-test-*")
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Remove(f.Name())
		files = append(files, f)
	}
	if fs.OpenFiles() != 3 || fs.MaxOpenFiles() != 3 {
		t.Fatalf("open=%d max=%d, want 3/3", fs.OpenFiles(), fs.MaxOpenFiles())
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if fs.OpenFiles() != 0 {
		t.Fatalf("open files after close: %d", fs.OpenFiles())
	}
	if fs.MaxOpenFiles() != 3 {
		t.Fatalf("high-water mark changed: %d", fs.MaxOpenFiles())
	}
}

func TestFaultFSInjectedCloseStillReleases(t *testing.T) {
	fs := NewFaultFS(nil).FailAt(OpClose, 1)
	f, err := fs.CreateTemp("qpi-vfs-test-*")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Remove(f.Name())
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// As with a real failed close(2), the descriptor is gone either way.
	if fs.OpenFiles() != 0 {
		t.Fatalf("open files after injected close: %d", fs.OpenFiles())
	}
}
