package exec

import (
	"errors"
	"fmt"
	"sort"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// Sort is a blocking operator that materializes and sorts its input by one
// or more key columns (ascending). The input pass fires OnInput for every
// tuple, which is where the online estimation framework builds histograms
// for sort-merge joins (§4.1.2: "every tuple of R is seen at least once
// before any output is produced").
type Sort struct {
	base
	child Operator
	keys  []int
	desc  []bool // per-key descending flags (nil = all ascending)

	// OnInput fires for every input tuple during the (blocking) sort read.
	OnInput func(data.Tuple)
	// OnInputEnd fires when the input is exhausted, before output starts.
	OnInputEnd func()

	rows      []data.Tuple
	pos       int
	sorted    bool
	inputRows int64 // total input tuples read (survives spill resets)
	spanEnded bool

	// Columnar input (SetColumnar): the input pass consumes the child's
	// ColBatches, extracts the key columns into contiguous lanes, and
	// sorts an index vector with typed lane comparators instead of
	// per-tuple data.Compare chains. keyVecs holds the extracted lanes,
	// keyIdx the index scratch.
	colMode bool
	keyVecs []data.ColVec
	keyIdx  []int32

	// External sorting (see extsort.go).
	memBudget int64
	bufBytes  int64
	spillFS   vfs.FS // injectable spill I/O (nil = real filesystem)
	runs      []*spillFile
	merge     *mergeState
}

// NewSort sorts child by the given column indexes, ascending.
func NewSort(child Operator, keys ...int) *Sort {
	s := &Sort{child: child, keys: keys}
	s.schema = child.Schema()
	return s
}

// NewSortDirs sorts child with per-key directions (desc[i] true =
// descending). len(desc) must equal len(keys).
func NewSortDirs(child Operator, keys []int, desc []bool) *Sort {
	if len(keys) != len(desc) {
		panic("exec: NewSortDirs: keys/desc length mismatch")
	}
	s := &Sort{child: child, keys: keys, desc: desc}
	s.schema = child.Schema()
	return s
}

// SetColumnar selects the columnar input pass: when the child serves
// column vectors natively and no memory budget is set (the external
// path's run spilling stays row-oriented), the sort extracts its key
// columns into lanes and sorts an index vector over them. Output order,
// OnInput firing order, and trace spans are identical to the row path.
func (s *Sort) SetColumnar(on bool) *Sort {
	s.colMode = on
	return s
}

// Columnar reports whether the columnar input pass is selected.
func (s *Sort) Columnar() bool { return s.colMode }

// Name implements Operator.
func (s *Sort) Name() string { return fmt.Sprintf("Sort(%v)", s.keys) }

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.child} }

// Open implements Operator.
func (s *Sort) Open() error { return s.child.Open() }

// Next implements Operator.
func (s *Sort) Next() (data.Tuple, error) {
	if err := s.pollCtx(); err != nil {
		return nil, err
	}
	if !s.sorted {
		s.traceBegin("input")
		var colIn ColOperator
		if s.colMode && s.memBudget <= 0 {
			colIn, _ = s.child.(ColOperator)
		}
		if colIn != nil {
			if err := s.readInputColumnar(colIn); err != nil {
				return nil, err
			}
		} else {
			for {
				if err := s.pollCtx(); err != nil {
					return nil, err
				}
				t, err := s.child.Next()
				if err != nil {
					return nil, err
				}
				if t == nil {
					break
				}
				if s.OnInput != nil {
					s.OnInput(t)
				}
				s.inputRows++
				s.rows = append(s.rows, t)
				if s.memBudget > 0 {
					s.bufBytes += int64(t.Size())
					if s.bufBytes > s.memBudget {
						if err := s.spillRun(); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		s.traceEnd("input", s.inputRows, 0, int64(len(s.runs)))
		if s.OnInputEnd != nil {
			s.OnInputEnd()
		}
		switch {
		case len(s.runs) > 0:
			// External path: flush the tail as the final run and merge.
			if err := s.spillRun(); err != nil {
				return nil, err
			}
			s.traceBegin("merge")
			if err := s.startMerge(); err != nil {
				return nil, err
			}
		case colIn != nil:
			s.sortColumnar()
			s.traceMark("sort", int64(len(s.rows)), 0)
		default:
			sort.SliceStable(s.rows, func(i, j int) bool { return s.less(s.rows[i], s.rows[j]) })
			s.traceMark("sort", int64(len(s.rows)), 0)
		}
		s.sorted = true
	}
	if s.merge != nil {
		t, err := s.mergeNext()
		if err != nil {
			return nil, err
		}
		if t == nil {
			if !s.spanEnded {
				s.spanEnded = true
				s.traceEnd("merge", s.stats.Emitted.Load(), 0, int64(len(s.runs)))
			}
			return s.finish()
		}
		return s.emit(t)
	}
	if s.pos >= len(s.rows) {
		return s.finish()
	}
	t := s.rows[s.pos]
	s.pos++
	return s.emit(t)
}

// readInputColumnar drains the child batch-at-a-time: rows materialize
// once per batch (OnInput fires per tuple in row order, as the row pass
// would), and the key columns are extracted lane-to-lane into contiguous
// key lanes indexed alongside s.rows.
func (s *Sort) readInputColumnar(in ColOperator) error {
	if s.keyVecs == nil {
		s.keyVecs = make([]data.ColVec, len(s.keys))
	}
	for k := range s.keyVecs {
		s.keyVecs[k].Reset()
	}
	var idx []int32
	for {
		if err := s.pollCtx(); err != nil {
			return err
		}
		cb, err := in.NextColBatch()
		if err != nil {
			return err
		}
		if cb == nil {
			return nil
		}
		base := len(s.rows)
		s.rows = cb.ToTuples(s.rows)
		added := len(s.rows) - base
		if s.OnInput != nil {
			for _, t := range s.rows[base:] {
				s.OnInput(t)
			}
		}
		s.inputRows += int64(added)
		idx = idx[:0]
		if cb.Sel == nil {
			for i := 0; i < cb.NRows; i++ {
				idx = append(idx, int32(i))
			}
		} else {
			idx = append(idx, cb.Sel...)
		}
		for k, key := range s.keys {
			s.keyVecs[k].GatherFrom(cb.Col(key), idx, base)
		}
	}
}

// colVecCompare mirrors data.Compare over one extracted key lane: NULLs
// first, typed same-kind comparisons off the lane, mixed lanes through
// ValueAt + data.Compare.
func colVecCompare(v *data.ColVec, a, b int) int {
	if !v.Homogeneous() {
		return data.Compare(v.ValueAt(a), v.ValueAt(b))
	}
	na, nb := v.Nulls.Get(a), v.Nulls.Get(b)
	if na || nb {
		switch {
		case na && nb:
			return 0
		case na:
			return -1
		default:
			return 1
		}
	}
	switch v.Kind {
	case data.KindInt:
		x, y := v.Ints[a], v.Ints[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case data.KindFloat:
		x, y := v.Floats[a], v.Floats[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case data.KindString:
		x, y := v.Strs[a], v.Strs[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	}
	return 0
}

// sortColumnar stable-sorts an index vector over the extracted key lanes
// and permutes the row buffer into that order — the same ordering the
// row path's tuple comparator produces, with the key loads hitting
// contiguous lanes instead of scattered tuple headers.
func (s *Sort) sortColumnar() {
	n := len(s.rows)
	idx := s.keyIdx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := int(idx[i]), int(idx[j])
		for ki := range s.keyVecs {
			if c := colVecCompare(&s.keyVecs[ki], a, b); c != 0 {
				if s.desc != nil && s.desc[ki] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	sorted := make([]data.Tuple, n)
	for out, i := range idx {
		sorted[out] = s.rows[i]
	}
	s.rows = sorted
	s.keyIdx = idx
	for k := range s.keyVecs {
		s.keyVecs[k].Reset()
	}
}

// Close implements Operator. The child is always closed and every run
// file released; all errors are reported via errors.Join.
func (s *Sort) Close() error {
	s.rows = nil
	var errs []error
	for _, f := range s.runs {
		errs = append(errs, f.close())
	}
	s.runs, s.merge = nil, nil
	errs = append(errs, s.child.Close())
	return errors.Join(errs...)
}

// MergeJoin merges two inputs that are sorted on the join keys, emitting
// the cross product of each matching key group. Compose it over Sort
// operators (see NewSortMergeJoin) unless the inputs are already sorted —
// the case where the paper's framework cannot push estimation down and
// falls back to dne (§4.1.2 end).
type MergeJoin struct {
	base
	left, right       Operator
	leftKey, rightKey int

	// OnOutput fires for every emitted join tuple.
	OnOutput func(data.Tuple)

	leftTup   data.Tuple
	rightTup  data.Tuple
	group     []data.Tuple // right tuples matching current left key
	groupPos  int
	started   bool
	done      bool
	leftRead  int64
	rightRead int64
}

// Progress returns the fraction of the (sorted) inputs consumed by the
// merge pass, the driver progress dne/byte observe for sort-merge joins.
func (j *MergeJoin) Progress() float64 {
	lt := j.left.Stats().Total()
	rt := j.right.Stats().Total()
	if lt+rt == 0 {
		if j.done {
			return 1
		}
		return 0
	}
	return float64(j.leftRead+j.rightRead) / (lt + rt)
}

// NewMergeJoin joins two key-sorted inputs.
func NewMergeJoin(left, right Operator, leftKey, rightKey int) *MergeJoin {
	j := &MergeJoin{left: left, right: right, leftKey: leftKey, rightKey: rightKey}
	j.schema = left.Schema().Concat(right.Schema())
	return j
}

// NewSortMergeJoin wraps both children in Sort operators and merges them.
// It returns the join and the two sorts (for estimator attachment).
func NewSortMergeJoin(left, right Operator, leftKey, rightKey int) (*MergeJoin, *Sort, *Sort) {
	ls := NewSort(left, leftKey)
	rs := NewSort(right, rightKey)
	return NewMergeJoin(ls, rs, leftKey, rightKey), ls, rs
}

// Name implements Operator.
func (j *MergeJoin) Name() string {
	return fmt.Sprintf("MergeJoin(%s = %s)",
		j.left.Schema().Cols[j.leftKey].Qualified(),
		j.right.Schema().Cols[j.rightKey].Qualified())
}

// Children implements Operator.
func (j *MergeJoin) Children() []Operator { return []Operator{j.left, j.right} }

// Open implements Operator.
func (j *MergeJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	return j.right.Open()
}

// LeftKey returns the left join column index.
func (j *MergeJoin) LeftKey() int { return j.leftKey }

// RightKey returns the right join column index.
func (j *MergeJoin) RightKey() int { return j.rightKey }

// Left returns the left child; Right the right child.
func (j *MergeJoin) Left() Operator { return j.left }

// Right returns the right child.
func (j *MergeJoin) Right() Operator { return j.right }

// nextLeft advances the left cursor, counting consumed tuples.
func (j *MergeJoin) nextLeft() error {
	t, err := j.left.Next()
	if err != nil {
		return err
	}
	if t != nil {
		j.leftRead++
	}
	j.leftTup = t
	return nil
}

// nextRight advances the right cursor, counting consumed tuples.
func (j *MergeJoin) nextRight() error {
	t, err := j.right.Next()
	if err != nil {
		return err
	}
	if t != nil {
		j.rightRead++
	}
	j.rightTup = t
	return nil
}

// Next implements Operator.
func (j *MergeJoin) Next() (data.Tuple, error) {
	if j.done {
		return j.finish()
	}
	if !j.started {
		j.traceBegin("merge")
		if err := j.nextLeft(); err != nil {
			return nil, err
		}
		if err := j.nextRight(); err != nil {
			return nil, err
		}
		j.started = true
	}
	for {
		if err := j.pollCtx(); err != nil {
			return nil, err
		}
		// Emit pending pairs for the current left tuple and group.
		if j.groupPos < len(j.group) {
			out := j.leftTup.Concat(j.group[j.groupPos])
			j.groupPos++
			if j.OnOutput != nil {
				j.OnOutput(out)
			}
			return j.emit(out)
		}
		// Current left tuple's group exhausted: advance left; if the key
		// is unchanged reuse the group.
		if j.group != nil {
			prevKey := j.leftTup[j.leftKey]
			if err := j.nextLeft(); err != nil {
				return nil, err
			}
			if j.leftTup != nil && data.Equal(j.leftTup[j.leftKey], prevKey) {
				j.groupPos = 0
				continue
			}
			j.group = nil
		}
		if j.leftTup == nil || j.rightTup == nil {
			j.done = true
			j.traceEnd("merge", j.leftRead+j.rightRead, 0, 0)
			return j.finish()
		}
		lk := j.leftTup[j.leftKey]
		rk := j.rightTup[j.rightKey]
		// NULL keys never join; NULLs sort first so skip them.
		if lk.IsNull() {
			if err := j.nextLeft(); err != nil {
				return nil, err
			}
			continue
		}
		if rk.IsNull() {
			if err := j.nextRight(); err != nil {
				return nil, err
			}
			continue
		}
		switch c := data.Compare(lk, rk); {
		case c < 0:
			if err := j.nextLeft(); err != nil {
				return nil, err
			}
		case c > 0:
			if err := j.nextRight(); err != nil {
				return nil, err
			}
		default:
			// Collect the right group for this key.
			j.group = j.group[:0]
			for j.rightTup != nil && data.Equal(j.rightTup[j.rightKey], lk) {
				j.group = append(j.group, j.rightTup)
				if err := j.nextRight(); err != nil {
					return nil, err
				}
			}
			j.groupPos = 0
		}
	}
}

// Close implements Operator. Both children are always closed; errors
// from either side are reported via errors.Join.
func (j *MergeJoin) Close() error {
	j.group = nil
	return errors.Join(j.left.Close(), j.right.Close())
}
