package exec

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// Tests for the partition-parallel join (second) phase. The contract under
// test is stronger than multiset equality (joinmodes_test covers that
// across every mode): given identical partition contents, the parallel
// join phase must emit the exact tuple sequence of the serial join phase —
// clustered by partition, probe order within each partition — with all
// hooks firing on the consumer goroutine, cancellation honoured mid-join,
// and no goroutine or spill descriptor outliving the operator.
//
// Exact-order comparisons pin the scatter pass serial via a memory budget
// (Workers() == 1 when a budget is set) so both runs see identical
// partition contents on any GOMAXPROCS; the join phase still fans out
// (JoinWorkers is not budget-gated).

// drainExact pulls every output row in order, via Next or NextBatch,
// copying tuples out of reused batch buffers.
func drainExact(t *testing.T, j *HashJoin, batched bool) []string {
	t.Helper()
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	var out []string
	if batched {
		in := AsBatch(j)
		for {
			b, err := in.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				break
			}
			for _, tu := range b {
				out = append(out, tu.String())
			}
		}
	} else {
		for {
			tu, err := j.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tu == nil {
				break
			}
			out = append(out, tu.String())
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// joinUnderTest builds a two-table join with duplicate and NULL keys on
// both sides, a serial-scatter budget, and the given join-phase
// parallelism.
func joinUnderTest(jt JoinType, budget int64, workers int, seed int64) *HashJoin {
	rng := rand.New(rand.NewSource(seed))
	build := randKeys(rng, 400, 37, 0.15)
	probe := randKeys(rng, 600, 37, 0.15)
	j := NewHashJoinMulti(
		NewScan(kvTable("b", build), ""),
		NewScan(kvTable("p", probe), ""),
		[]int{0}, []int{0}, jt,
	)
	j.SetMemoryBudget(budget)
	j.SetParallelism(workers)
	return j
}

func TestParallelJoinOutputOrderMatchesSerial(t *testing.T) {
	for _, jt := range []JoinType{InnerJoin, SemiJoin, AntiJoin, ProbeOuterJoin} {
		for _, spill := range []bool{false, true} {
			budget := int64(1 << 30) // serial scatter, nothing spills
			name := jt.String() + "/mem"
			if spill {
				budget = 512 // serial scatter, everything spills
				name = jt.String() + "/spill"
			}
			t.Run(name, func(t *testing.T) {
				want := drainExact(t, joinUnderTest(jt, budget, 1, 99), true)
				for _, batched := range []bool{true, false} {
					j := joinUnderTest(jt, budget, 4, 99)
					if got := j.JoinWorkers(); got != 4 {
						t.Fatalf("JoinWorkers() = %d, want 4", got)
					}
					have := drainExact(t, j, batched)
					if j.joinPar == nil {
						t.Fatal("parallel join phase never engaged")
					}
					if len(have) != len(want) {
						t.Fatalf("batched=%v: %d rows, serial produced %d", batched, len(have), len(want))
					}
					for i := range have {
						if have[i] != want[i] {
							t.Fatalf("batched=%v: order diverges at row %d: got %s want %s",
								batched, i, have[i], want[i])
						}
					}
					if spill && j.Stats().SpillFiles.Load() == 0 {
						t.Fatal("spill variant never spilled")
					}
				}
			})
		}
	}
}

// TestParallelJoinHooksAndStats: OnOutput fires once per emitted tuple in
// emission order on the consumer goroutine (a plain counter in the hook is
// the -race witness), the emission counter agrees, and the probe-progress
// fraction converges to 1.
func TestParallelJoinHooksAndStats(t *testing.T) {
	// NULL-free keys: dropped NULL probe rows never reach the join pass, so
	// only a NULL-free probe input converges to fraction exactly 1 (in
	// serial mode too).
	rng := rand.New(rand.NewSource(7))
	j := NewHashJoinMulti(
		NewScan(kvTable("b", randKeys(rng, 400, 37, 0)), ""),
		NewScan(kvTable("p", randKeys(rng, 600, 37, 0)), ""),
		[]int{0}, []int{0}, InnerJoin,
	)
	j.SetMemoryBudget(1 << 30)
	j.SetParallelism(4)
	var hooked []string
	j.OnOutput = func(tu data.Tuple) { hooked = append(hooked, tu.String()) }
	got := drainExact(t, j, true)
	if len(hooked) != len(got) {
		t.Fatalf("OnOutput fired %d times for %d rows", len(hooked), len(got))
	}
	for i := range got {
		if hooked[i] != got[i] {
			t.Fatalf("OnOutput order diverges at %d", i)
		}
	}
	if e := j.Stats().Emitted.Load(); e != int64(len(got)) {
		t.Fatalf("Emitted = %d, want %d", e, len(got))
	}
	if f := j.JoinedProbeFraction(); f != 1 {
		t.Fatalf("JoinedProbeFraction = %v after drain, want 1", f)
	}
}

// TestCancelParallelJoinPhase cancels from the OnOutput hook, i.e. while
// join-phase workers are mid-flight behind the consumer: the run must
// return ctx.Err() promptly, close every spill descriptor, and reap every
// worker goroutine. (The Cancel prefix places this in the leakcheck
// suite.)
func TestCancelParallelJoinPhase(t *testing.T) {
	for _, batched := range []bool{true, false} {
		before := runtime.NumGoroutine()
		fs := vfs.NewFaultFS(nil)
		j := joinUnderTest(InnerJoin, 512, 4, 31)
		j.SetSpillFS(fs)
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		j.OnOutput = func(data.Tuple) {
			if n++; n == 50 {
				cancel()
			}
		}
		Bind(j, ctx)
		var err error
		if batched {
			_, err = RunBatch(j)
		} else {
			_, err = Run(j)
		}
		cancel()
		expectCanceled(t, err)
		if open := fs.OpenFiles(); open != 0 {
			t.Errorf("batched=%v: %d spill files open after cancelled parallel join", batched, open)
		}
		expectNoExtraGoroutines(t, before)
	}
}

// TestCancelParallelJoinUndrained closes the operator mid-drain without a
// context at all: Close alone must stop workers that are blocked sending
// into full partition queues.
func TestCancelParallelJoinUndrained(t *testing.T) {
	before := runtime.NumGoroutine()
	j := joinUnderTest(InnerJoin, 1<<30, 4, 13)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	// Pull a single tuple so the join phase has started, then abandon.
	if tu, err := j.Next(); err != nil || tu == nil {
		t.Fatalf("first Next = (%v, %v)", tu, err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	expectNoExtraGoroutines(t, before)
}

// TestSpillFaultParallelJoinWorkers injects read/seek faults that can only
// fire inside join-phase workers (the partition passes never read spill
// files): the injected error must surface from the drain, in partition
// order, with every descriptor released and every worker reaped.
func TestSpillFaultParallelJoinWorkers(t *testing.T) {
	for _, op := range []vfs.Op{vfs.OpRead, vfs.OpSeek} {
		t.Run(op.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			fs := vfs.NewFaultFS(nil).FailAt(op, 1)
			j := joinUnderTest(InnerJoin, 512, 4, 17)
			j.SetSpillFS(fs)
			_, err := RunBatch(j)
			expectInjectedIO(t, fs, err)
			if fs.Count(op) == 0 {
				t.Fatalf("join never issued a %s; fault not exercised", op)
			}
			expectNoExtraGoroutines(t, before)
		})
	}
}
