package exec

import (
	"qpi/internal/data"
	"qpi/internal/expr"
)

// This file is the columnar execution layer, stacked on the batch layer
// the way batch.go stacks on Volcano: operators that can serve typed
// column vectors implement ColOperator natively (Scan, Filter, Project,
// Limit, HashJoin, HashAgg); everything else composes through
// AsColOperator, which wraps the operator's batch path and exposes the
// rows as a lazily-pivoted ColBatch. Selection vectors flow through
// filters without copying tuples, and the join's columnar output path
// gathers values straight into pooled lanes (see hashjoin_col.go).

// ColOperator is the columnar executor contract. NextColBatch returns
// the next batch in columnar form, or nil at end of stream. The batch
// (struct, vectors, selection) is valid until the next NextColBatch call
// on the same operator — see the ColBatch ownership contract in
// internal/data/batch.go.
type ColOperator interface {
	Operator
	NextColBatch() (*data.ColBatch, error)
}

// AsColOperator returns op as a ColOperator: native implementations are
// returned as-is, anything else is wrapped in an adapter over the batch
// path whose ColBatch carries the rows and pivots columns on demand.
func AsColOperator(op Operator) ColOperator {
	if c, ok := op.(ColOperator); ok {
		return c
	}
	return &colAdapter{Operator: op}
}

// colAdapter lifts a row-producing operator to the columnar contract.
type colAdapter struct {
	Operator
	bchild BatchOperator
	buf    data.ColBatch
}

func (a *colAdapter) NextColBatch() (*data.ColBatch, error) {
	if a.bchild == nil {
		a.bchild = AsBatch(a.Operator)
	}
	b, err := a.bchild.NextBatch()
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	a.buf.SetRows(b, a.Operator.Schema().Len())
	return &a.buf, nil
}

// Unwrap exposes the adapted operator.
func (a *colAdapter) Unwrap() Operator { return a.Operator }

// emitColBatch counts a columnar emission; nil or empty-selection
// batches mark the operator done.
func (b *base) emitColBatch(cb *data.ColBatch) (*data.ColBatch, error) {
	if cb == nil || cb.Live() == 0 {
		b.stats.MarkDone()
		return nil, nil
	}
	b.stats.Emitted.Add(int64(cb.Live()))
	b.stats.Batches.Add(1)
	return cb, nil
}

// DrainCol runs an opened operator to exhaustion through its columnar
// path, returning all live rows as tuples (copied out of the reused
// batches, safe to retain).
func DrainCol(op ColOperator) ([]data.Tuple, error) {
	var out []data.Tuple
	for {
		cb, err := op.NextColBatch()
		if err != nil {
			return out, err
		}
		if cb == nil {
			return out, nil
		}
		out = cb.ToTuples(out)
	}
}

// RunCol opens, drains and closes an operator through its columnar path,
// returning the live row count — the columnar counterpart of Run and
// RunBatch. No tuples are materialized at the root.
func RunCol(op ColOperator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	var n int64
	for {
		cb, err := op.NextColBatch()
		if err != nil {
			op.Close()
			return n, err
		}
		if cb == nil {
			break
		}
		n += int64(cb.Live())
	}
	return n, op.Close()
}

// NextColBatch implements ColOperator for Scan: the row batch from
// NextBatch (hooks, punctuation and counters fire there exactly once) is
// exposed columnar, with columns pivoted only if a consumer touches
// them.
func (s *Scan) NextColBatch() (*data.ColBatch, error) {
	b, err := s.NextBatch()
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	s.colBuf.SetRows(b, s.schema.Len())
	return &s.colBuf, nil
}

// NextColBatch implements ColOperator for Filter: the predicate
// evaluates over whole column spans into a selection vector — no tuples
// are copied, the output is a shallow view of the child's batch with a
// narrowed selection. Fully filtered batches are skipped without
// returning.
func (f *Filter) NextColBatch() (*data.ColBatch, error) {
	if f.cchild == nil {
		f.cchild = AsColOperator(f.child)
	}
	for {
		if err := f.ctxErr(); err != nil {
			return nil, err
		}
		in, err := f.cchild.NextColBatch()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return f.emitColBatch(nil)
		}
		f.selBuf = expr.EvalSel(f.pred, in, in.Sel, f.selBuf[:0])
		if len(f.selBuf) == 0 {
			continue
		}
		f.colView = *in
		f.colView.Sel = f.selBuf
		return f.emitColBatch(&f.colView)
	}
}

// NextColBatch implements ColOperator for Project: pass-through columns
// (bare column references) share the child's vectors without copying;
// computed columns are evaluated vector-at-a-time into reused lanes. The
// output keeps the child's selection geometry.
func (p *Project) NextColBatch() (*data.ColBatch, error) {
	if p.cchild == nil {
		p.cchild = AsColOperator(p.child)
	}
	in, err := p.cchild.NextColBatch()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return p.emitColBatch(nil)
	}
	out := &p.colOut
	out.EnsureWidth(len(p.exprs))
	out.NRows = in.NRows
	out.Sel = in.Sel
	out.Rows = nil
	for i, e := range p.exprs {
		if c, ok := e.(expr.Col); ok {
			out.ShareCol(i, in.Col(c.Index))
			continue
		}
		expr.EvalVec(e, in, out.OwnCol(i))
	}
	return p.emitColBatch(out)
}

// NextColBatch implements ColOperator for Limit, truncating the final
// batch's selection at the limit.
func (l *Limit) NextColBatch() (*data.ColBatch, error) {
	rem := l.n - l.stats.Emitted.Load()
	if rem <= 0 {
		return l.emitColBatch(nil)
	}
	if l.cchild == nil {
		l.cchild = AsColOperator(l.child)
	}
	in, err := l.cchild.NextColBatch()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return l.emitColBatch(nil)
	}
	if int64(in.Live()) <= rem {
		return l.emitColBatch(in)
	}
	l.colView = *in
	if in.Sel != nil {
		l.colView.Sel = in.Sel[:rem]
	} else {
		l.selBuf = l.selBuf[:0]
		for i := int64(0); i < rem; i++ {
			l.selBuf = append(l.selBuf, int32(i))
		}
		l.colView.Sel = l.selBuf
	}
	return l.emitColBatch(&l.colView)
}

// NextColBatch implements ColOperator for HashAgg: input is consumed
// through the columnar path (vectorized grouping over the key column,
// identical hook order — see consumeColumnar in agg.go), and the group
// emission reuses the row batches exposed columnar.
func (a *HashAgg) NextColBatch() (*data.ColBatch, error) {
	if !a.computed {
		if err := a.consumeColumnar(); err != nil {
			return nil, err
		}
	}
	if a.buf == nil {
		a.buf = make(data.Batch, 0, data.BatchSize())
	}
	out := a.buf[:0]
	for len(out) < cap(out) && a.pos < len(a.order) {
		out = append(out, a.groupTuple(a.order[a.pos]))
		a.pos++
	}
	a.buf = out
	bt, err := a.emitBatch(out)
	if bt == nil || err != nil {
		a.endEmitSpan()
		return nil, err
	}
	a.colBuf.SetRows(bt, a.schema.Len())
	return &a.colBuf, nil
}
