package exec

import (
	"hash/maphash"
	"math"
	"testing"

	"qpi/internal/data"
)

// hashValueSerialized is the seed implementation of hashValue, kept here
// as the benchmark baseline: a fresh maphash.Hash per call, re-seeded,
// fed a kind-tagged byte serialization of the value. The replacement
// (maphash.Comparable) deletes the serialization and guarantees the
// partition hash agrees with the map-key equality the join tables use.
// The allocation win of the hashing rework shows up one level up, in
// BenchmarkJoinTable: the seed engine's build tables were keyed by the
// 40-byte Value struct, the int fast path keys bare int64 — run both
// with -benchmem to see the B/op drop.
func hashValueSerialized(v data.Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.Kind {
	case data.KindInt:
		var b [9]byte
		b[0] = 1
		for i := 0; i < 8; i++ {
			b[i+1] = byte(v.I >> (8 * i))
		}
		h.Write(b[:])
	case data.KindFloat:
		var b [9]byte
		b[0] = 2
		bits := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			b[i+1] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	case data.KindString:
		h.WriteByte(3)
		h.WriteString(v.S)
	default:
		h.WriteByte(0)
	}
	return h.Sum64()
}

var benchKeys = func() []data.Value {
	out := make([]data.Value, 1024)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = data.Int(int64(i * 7919))
		case 1:
			out[i] = data.Float(float64(i) * 0.37)
		default:
			out[i] = data.Str("customer-key-" + string(rune('a'+i%26)))
		}
	}
	return out
}()

var hashSink uint64

func BenchmarkHashValue(b *testing.B) {
	b.Run("serialized-old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hashSink = hashValueSerialized(benchKeys[i%len(benchKeys)])
		}
	})
	b.Run("comparable-new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hashSink = hashValue(benchKeys[i%len(benchKeys)])
		}
	})
}

// BenchmarkJoinTable compares the seed build-table layout
// (map[data.Value][]data.Tuple, hashing the full 40-byte struct per
// insert/lookup) against joinTable's int64 fast path on integer join
// keys — the dominant case in every TPC-H-style workload.
func BenchmarkJoinTable(b *testing.B) {
	const n = 4096
	tuples := make([]data.Tuple, n)
	keys := make([]data.Value, n)
	for i := range tuples {
		keys[i] = data.Int(int64(i % 512))
		tuples[i] = data.Tuple{keys[i]}
	}
	b.Run("value-keyed-old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[data.Value][]data.Tuple, n)
			for k := range tuples {
				m[keys[k]] = append(m[keys[k]], tuples[k])
			}
			for k := range tuples {
				hashSink += uint64(len(m[keys[k]]))
			}
		}
	})
	b.Run("int-fast-path-new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var jt joinTable
			jt.init(n)
			for k := range tuples {
				jt.add(keys[k], tuples[k])
			}
			for k := range tuples {
				hashSink += uint64(len(jt.lookup(keys[k])))
			}
		}
	})
}

// TestHashValueDistinguishesKinds guards the property both implementations
// share: values of different kinds (or different payloads) hash apart with
// overwhelming probability, and equal values hash equal.
func TestHashValueDistinguishesKinds(t *testing.T) {
	vals := []data.Value{
		data.Null(), data.Int(0), data.Int(1), data.Float(0), data.Float(1),
		data.Str(""), data.Str("0"), data.Str("a"),
	}
	for i, a := range vals {
		for k, b := range vals {
			ha, hb := hashValue(a), hashValue(b)
			if i == k && ha != hb {
				t.Fatalf("hashValue(%v) not deterministic", a)
			}
			if i != k && ha == hb {
				t.Errorf("hashValue collision: %v vs %v", a, b)
			}
		}
	}
}
