package exec

import (
	"hash/maphash"
	"math"
	"testing"

	"qpi/internal/data"
)

// hashValueSerialized is the seed implementation of hashValue, kept here
// as the benchmark baseline: a fresh maphash.Hash per call, re-seeded,
// fed a kind-tagged byte serialization of the value. The replacement
// (maphash.Comparable) deletes the serialization and guarantees the
// partition hash agrees with the map-key equality the join tables use.
// The allocation win of the hashing rework shows up one level up, in
// BenchmarkJoinTable: the seed engine's build tables were keyed by the
// 40-byte Value struct, the int fast path keys bare int64 — run both
// with -benchmem to see the B/op drop.
func hashValueSerialized(v data.Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.Kind {
	case data.KindInt:
		var b [9]byte
		b[0] = 1
		for i := 0; i < 8; i++ {
			b[i+1] = byte(v.I >> (8 * i))
		}
		h.Write(b[:])
	case data.KindFloat:
		var b [9]byte
		b[0] = 2
		bits := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			b[i+1] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	case data.KindString:
		h.WriteByte(3)
		h.WriteString(v.S)
	default:
		h.WriteByte(0)
	}
	return h.Sum64()
}

var benchKeys = func() []data.Value {
	out := make([]data.Value, 1024)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = data.Int(int64(i * 7919))
		case 1:
			out[i] = data.Float(float64(i) * 0.37)
		default:
			out[i] = data.Str("customer-key-" + string(rune('a'+i%26)))
		}
	}
	return out
}()

var hashSink uint64

func BenchmarkHashValue(b *testing.B) {
	b.Run("serialized-old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hashSink = hashValueSerialized(benchKeys[i%len(benchKeys)])
		}
	})
	b.Run("comparable-new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hashSink = hashValue(benchKeys[i%len(benchKeys)])
		}
	})
}

// BenchmarkJoinTable compares three generations of the build-table
// layout: the seed engine's map[data.Value][]data.Tuple (hashing the full
// 40-byte struct per insert/lookup), the PR-1 map[int64][]data.Tuple fast
// path (one per-key slice allocation each), and the current joinTable —
// an open-addressing span table over one flat tuple arena, built in two
// passes with a handful of allocations per partition.
func BenchmarkJoinTable(b *testing.B) {
	const n = 4096
	tuples := make([]data.Tuple, n)
	keys := make([]data.Value, n)
	for i := range tuples {
		keys[i] = data.Int(int64(i % 512))
		tuples[i] = data.Tuple{keys[i]}
	}
	b.Run("value-keyed-old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[data.Value][]data.Tuple, n)
			for k := range tuples {
				m[keys[k]] = append(m[keys[k]], tuples[k])
			}
			for k := range tuples {
				hashSink += uint64(len(m[keys[k]]))
			}
		}
	})
	b.Run("int-map-pr1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[int64][]data.Tuple, n)
			for k := range tuples {
				m[keys[k].I] = append(m[keys[k].I], tuples[k])
			}
			for k := range tuples {
				hashSink += uint64(len(m[keys[k].I]))
			}
		}
	})
	b.Run("open-addressing-new", func(b *testing.B) {
		b.ReportAllocs()
		var jt joinTable
		for i := 0; i < b.N; i++ {
			jt.build(tuples, []int{0})
			for k := range tuples {
				hashSink += uint64(len(jt.lookup(keys[k])))
			}
		}
	})
}

// TestJoinTableBuild pins the span-table semantics: lookups return the
// exact per-key tuple groups (in input order), missing and NULL keys
// return nothing, non-integer keys take the fallback map, and a reused
// table forgets its previous partition.
func TestJoinTableBuild(t *testing.T) {
	mk := func(k data.Value, id int64) data.Tuple { return data.Tuple{k, data.Int(id)} }
	var jt joinTable
	jt.build([]data.Tuple{
		mk(data.Int(1), 0), mk(data.Int(2), 1), mk(data.Int(1), 2),
		mk(data.Str("x"), 3), mk(data.Null(), 4), mk(data.Int(1), 5),
	}, []int{0})
	if got := jt.lookup(data.Int(1)); len(got) != 3 ||
		got[0][1].I != 0 || got[1][1].I != 2 || got[2][1].I != 5 {
		t.Fatalf("lookup(1) = %v, want ids 0,2,5", got)
	}
	if got := jt.lookup(data.Int(2)); len(got) != 1 || got[0][1].I != 1 {
		t.Fatalf("lookup(2) = %v, want id 1", got)
	}
	if got := jt.lookup(data.Str("x")); len(got) != 1 || got[0][1].I != 3 {
		t.Fatalf("lookup(x) = %v, want id 3", got)
	}
	if got := jt.lookup(data.Int(99)); got != nil {
		t.Fatalf("lookup(99) = %v, want nil", got)
	}
	// NULL keys are droppable on the build side; a NULL probe key is never
	// looked up, but the table must not have indexed the NULL row.
	if got := jt.lookup(data.Null()); len(got) != 0 {
		t.Fatalf("lookup(NULL) = %v, want empty", got)
	}
	// Reuse across partitions.
	jt.build([]data.Tuple{mk(data.Int(7), 9)}, []int{0})
	if got := jt.lookup(data.Int(1)); len(got) != 0 {
		t.Fatalf("stale key survived rebuild: %v", got)
	}
	if got := jt.lookup(data.Int(7)); len(got) != 1 || got[0][1].I != 9 {
		t.Fatalf("lookup(7) after rebuild = %v, want id 9", got)
	}
	if got := jt.lookup(data.Str("x")); len(got) != 0 {
		t.Fatalf("stale fallback key survived rebuild: %v", got)
	}
}

// TestHashValueDistinguishesKinds guards the property both implementations
// share: values of different kinds (or different payloads) hash apart with
// overwhelming probability, and equal values hash equal.
func TestHashValueDistinguishesKinds(t *testing.T) {
	vals := []data.Value{
		data.Null(), data.Int(0), data.Int(1), data.Float(0), data.Float(1),
		data.Str(""), data.Str("0"), data.Str("a"),
	}
	for i, a := range vals {
		for k, b := range vals {
			ha, hb := hashValue(a), hashValue(b)
			if i == k && ha != hb {
				t.Fatalf("hashValue(%v) not deterministic", a)
			}
			if i != k && ha == hb {
				t.Errorf("hashValue collision: %v vs %v", a, b)
			}
		}
	}
}
