package exec

import (
	"hash/maphash"
	"math"
	"math/rand"
	"testing"

	"qpi/internal/data"
	"qpi/internal/storage"
)

// hashValueSerialized is the seed implementation of hashValue, kept here
// as the benchmark baseline: a fresh maphash.Hash per call, re-seeded,
// fed a kind-tagged byte serialization of the value. The replacement
// (maphash.Comparable) deletes the serialization and guarantees the
// partition hash agrees with the map-key equality the join tables use.
// The allocation win of the hashing rework shows up one level up, in
// BenchmarkJoinTable: the seed engine's build tables were keyed by the
// 40-byte Value struct, the int fast path keys bare int64 — run both
// with -benchmem to see the B/op drop.
func hashValueSerialized(v data.Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.Kind {
	case data.KindInt:
		var b [9]byte
		b[0] = 1
		for i := 0; i < 8; i++ {
			b[i+1] = byte(v.I >> (8 * i))
		}
		h.Write(b[:])
	case data.KindFloat:
		var b [9]byte
		b[0] = 2
		bits := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			b[i+1] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	case data.KindString:
		h.WriteByte(3)
		h.WriteString(v.S)
	default:
		h.WriteByte(0)
	}
	return h.Sum64()
}

var benchKeys = func() []data.Value {
	out := make([]data.Value, 1024)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = data.Int(int64(i * 7919))
		case 1:
			out[i] = data.Float(float64(i) * 0.37)
		default:
			out[i] = data.Str("customer-key-" + string(rune('a'+i%26)))
		}
	}
	return out
}()

var hashSink uint64

func BenchmarkHashValue(b *testing.B) {
	b.Run("serialized-old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hashSink = hashValueSerialized(benchKeys[i%len(benchKeys)])
		}
	})
	b.Run("comparable-new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hashSink = hashValue(benchKeys[i%len(benchKeys)])
		}
	})
}

// BenchmarkJoinTable compares three generations of the build-table
// layout: the seed engine's map[data.Value][]data.Tuple (hashing the full
// 40-byte struct per insert/lookup), the PR-1 map[int64][]data.Tuple fast
// path (one per-key slice allocation each), and the current joinTable —
// an open-addressing span table over one flat tuple arena, built in two
// passes with a handful of allocations per partition.
func BenchmarkJoinTable(b *testing.B) {
	const n = 4096
	tuples := make([]data.Tuple, n)
	keys := make([]data.Value, n)
	for i := range tuples {
		keys[i] = data.Int(int64(i % 512))
		tuples[i] = data.Tuple{keys[i]}
	}
	b.Run("value-keyed-old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[data.Value][]data.Tuple, n)
			for k := range tuples {
				m[keys[k]] = append(m[keys[k]], tuples[k])
			}
			for k := range tuples {
				hashSink += uint64(len(m[keys[k]]))
			}
		}
	})
	b.Run("int-map-pr1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[int64][]data.Tuple, n)
			for k := range tuples {
				m[keys[k].I] = append(m[keys[k].I], tuples[k])
			}
			for k := range tuples {
				hashSink += uint64(len(m[keys[k].I]))
			}
		}
	})
	b.Run("open-addressing-new", func(b *testing.B) {
		b.ReportAllocs()
		var jt joinTable
		for i := 0; i < b.N; i++ {
			jt.build(tuples, []int{0})
			for k := range tuples {
				hashSink += uint64(len(jt.lookup(keys[k])))
			}
		}
	})
}

// TestJoinTableBuild pins the span-table semantics: lookups return the
// exact per-key tuple groups (in input order), missing and NULL keys
// return nothing, non-integer keys take the fallback map, and a reused
// table forgets its previous partition.
func TestJoinTableBuild(t *testing.T) {
	mk := func(k data.Value, id int64) data.Tuple { return data.Tuple{k, data.Int(id)} }
	var jt joinTable
	jt.build([]data.Tuple{
		mk(data.Int(1), 0), mk(data.Int(2), 1), mk(data.Int(1), 2),
		mk(data.Str("x"), 3), mk(data.Null(), 4), mk(data.Int(1), 5),
	}, []int{0})
	if got := jt.lookup(data.Int(1)); len(got) != 3 ||
		got[0][1].I != 0 || got[1][1].I != 2 || got[2][1].I != 5 {
		t.Fatalf("lookup(1) = %v, want ids 0,2,5", got)
	}
	if got := jt.lookup(data.Int(2)); len(got) != 1 || got[0][1].I != 1 {
		t.Fatalf("lookup(2) = %v, want id 1", got)
	}
	if got := jt.lookup(data.Str("x")); len(got) != 1 || got[0][1].I != 3 {
		t.Fatalf("lookup(x) = %v, want id 3", got)
	}
	if got := jt.lookup(data.Int(99)); got != nil {
		t.Fatalf("lookup(99) = %v, want nil", got)
	}
	// NULL keys are droppable on the build side; a NULL probe key is never
	// looked up, but the table must not have indexed the NULL row.
	if got := jt.lookup(data.Null()); len(got) != 0 {
		t.Fatalf("lookup(NULL) = %v, want empty", got)
	}
	// Reuse across partitions.
	jt.build([]data.Tuple{mk(data.Int(7), 9)}, []int{0})
	if got := jt.lookup(data.Int(1)); len(got) != 0 {
		t.Fatalf("stale key survived rebuild: %v", got)
	}
	if got := jt.lookup(data.Int(7)); len(got) != 1 || got[0][1].I != 9 {
		t.Fatalf("lookup(7) after rebuild = %v, want id 9", got)
	}
	if got := jt.lookup(data.Str("x")); len(got) != 0 {
		t.Fatalf("stale fallback key survived rebuild: %v", got)
	}
}

// TestColJoinTableBuild pins the lane-native build table to the same
// semantics as joinTable: per-key row-index groups in input order,
// missing and NULL keys empty, non-integer keys on the fallback map,
// rebuilds forget the previous partition, and the homogeneous int lane
// takes the no-Value fast path with identical results.
func TestColJoinTableBuild(t *testing.T) {
	rows := []data.Tuple{
		{data.Int(1), data.Int(0)}, {data.Int(2), data.Int(1)}, {data.Int(1), data.Int(2)},
		{data.Str("x"), data.Int(3)}, {data.Null(), data.Int(4)}, {data.Int(1), data.Int(5)},
	}
	var cb data.ColBatch
	cb.FromTuples(rows, 2)
	var jt colJoinTable
	var scratch data.Tuple
	jt.build(&cb, []int{0}, &scratch)
	wantRows := func(label string, got []int32, want ...int32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s = %v, want %v", label, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s = %v, want %v", label, got, want)
			}
		}
	}
	wantRows("lookupInt(1)", jt.lookupInt(1), 0, 2, 5)
	wantRows("lookupInt(2)", jt.lookupInt(2), 1)
	wantRows(`lookup("x")`, jt.lookup(data.Str("x")), 3)
	wantRows("lookupInt(99)", jt.lookupInt(99))
	wantRows("lookup(NULL)", jt.lookup(data.Null()))

	// Rebuild over a homogeneous int lane (fast path: no Value per row).
	intRows := []data.Tuple{
		{data.Int(7), data.Int(0)}, {data.Int(8), data.Int(1)}, {data.Int(7), data.Int(2)},
	}
	var icb data.ColBatch
	icb.FromTuples(intRows, 2)
	if v := icb.Col(0); !v.Homogeneous() || v.Kind != data.KindInt {
		t.Fatal("int key lane should be homogeneous")
	}
	jt.build(&icb, []int{0}, &scratch)
	wantRows("lookupInt(7)", jt.lookupInt(7), 0, 2)
	wantRows("lookupInt(8)", jt.lookupInt(8), 1)
	wantRows("stale lookupInt(1)", jt.lookupInt(1))
	wantRows(`stale lookup("x")`, jt.lookup(data.Str("x")))
}

// benchJoinTables builds the kvTable pair reused by the columnar join
// benchmark and the alloc bound below: skewed int keys, a few NULLs.
func benchJoinTables() (*storage.Table, *storage.Table) {
	rng := rand.New(rand.NewSource(99))
	build := randKeys(rng, 4096, 512, 0.05)
	probe := randKeys(rng, 8192, 512, 0.05)
	return kvTable("b", build), kvTable("p", probe)
}

func runColumnarJoinOnce(bt, pt *storage.Table) (int64, error) {
	j := NewHashJoin(NewScan(bt, ""), NewScan(pt, ""), 0, 0)
	j.SetColumnar(true)
	return RunCol(j)
}

// BenchmarkColumnarJoin measures the lane-native columnar grace join
// end-to-end (partition scatter + build + probe + gather) with
// allocation reporting: the pooled partition buffers are what keeps
// allocs/op flat as row counts grow.
func BenchmarkColumnarJoin(b *testing.B) {
	bt, pt := benchJoinTables()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runColumnarJoinOnce(bt, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestColumnarJoinAllocsPooled asserts the pooling contract of the
// lane-native partition path: once the ColBatch pool is warm, a full
// columnar join run allocates O(partitions + output batches), not
// O(rows). Without GetColBatch/PutColBatch on the scatter and gather
// buffers this blows past the bound by an order of magnitude.
func TestColumnarJoinAllocsPooled(t *testing.T) {
	bt, pt := benchJoinTables()
	// Warm the pools (and pin the expected cardinality).
	want, err := runColumnarJoinOnce(bt, pt)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		n, err := runColumnarJoinOnce(bt, pt)
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("join returned %d rows, want %d", n, want)
		}
	})
	// The bench workload (135k scanned rows) holds at ~460 allocs/op;
	// this 12k-row shape sits far below that. The bound is loose enough
	// for allocator noise, tight enough that a per-row or per-partition
	// regression (≥ thousands of allocs) fails loudly.
	if avg > 800 {
		t.Errorf("columnar join allocations = %.0f per run, want ≤ 800 (pooling regression)", avg)
	}
}

// TestHashValueDistinguishesKinds guards the property both implementations
// share: values of different kinds (or different payloads) hash apart with
// overwhelming probability, and equal values hash equal.
func TestHashValueDistinguishesKinds(t *testing.T) {
	vals := []data.Value{
		data.Null(), data.Int(0), data.Int(1), data.Float(0), data.Float(1),
		data.Str(""), data.Str("0"), data.Str("a"),
	}
	for i, a := range vals {
		for k, b := range vals {
			ha, hb := hashValue(a), hashValue(b)
			if i == k && ha != hb {
				t.Fatalf("hashValue(%v) not deterministic", a)
			}
			if i != k && ha == hb {
				t.Errorf("hashValue collision: %v vs %v", a, b)
			}
		}
	}
}
