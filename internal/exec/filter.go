package exec

import (
	"fmt"

	"qpi/internal/data"
	"qpi/internal/expr"
)

// Filter emits the input tuples for which the predicate is true.
type Filter struct {
	base
	child Operator
	pred  expr.Expr

	bchild BatchOperator
	buf    data.Batch

	cchild  ColOperator
	selBuf  []int32
	colView data.ColBatch
}

// NewFilter creates a selection over child.
func NewFilter(child Operator, pred expr.Expr) *Filter {
	f := &Filter{child: child, pred: pred}
	f.schema = child.Schema()
	return f
}

// Name implements Operator.
func (f *Filter) Name() string { return fmt.Sprintf("Filter(%s)", f.pred) }

// Pred returns the selection predicate.
func (f *Filter) Pred() expr.Expr { return f.pred }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.child} }

// Open implements Operator.
func (f *Filter) Open() error { return f.child.Open() }

// Next implements Operator.
func (f *Filter) Next() (data.Tuple, error) {
	for {
		t, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return f.finish()
		}
		if f.pred.Eval(t).IsTrue() {
			return f.emit(t)
		}
	}
}

// NextBatch implements BatchOperator: it evaluates the predicate over
// whole input batches, skipping fully filtered batches without returning.
func (f *Filter) NextBatch() (data.Batch, error) {
	if f.bchild == nil {
		f.bchild = AsBatch(f.child)
		f.buf = make(data.Batch, 0, data.BatchSize())
	}
	for {
		in, err := f.bchild.NextBatch()
		if err != nil {
			return nil, err
		}
		if len(in) == 0 {
			return f.emitBatch(nil)
		}
		out := f.buf[:0]
		for _, t := range in {
			if f.pred.Eval(t).IsTrue() {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			f.buf = out
			return f.emitBatch(out)
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

// Project computes one output column per expression.
type Project struct {
	base
	child Operator
	exprs []expr.Expr

	bchild BatchOperator
	buf    data.Batch

	cchild ColOperator
	colOut data.ColBatch
}

// NewProject creates a projection. names supplies the output column names
// (same length as exprs).
func NewProject(child Operator, exprs []expr.Expr, names []string) *Project {
	if len(exprs) != len(names) {
		panic("exec: NewProject: len(exprs) != len(names)")
	}
	cols := make([]data.Column, len(exprs))
	for i := range exprs {
		kind := data.KindInt
		if c, ok := exprs[i].(expr.Col); ok {
			kind = child.Schema().Cols[c.Index].Kind
		}
		cols[i] = data.Column{Name: names[i], Kind: kind}
	}
	p := &Project{child: child, exprs: exprs}
	p.schema = data.NewSchema(cols...)
	return p
}

// ProjectColumns is a convenience for projecting existing columns by
// qualified name.
func ProjectColumns(child Operator, cols ...[2]string) *Project {
	exprs := make([]expr.Expr, len(cols))
	names := make([]string, len(cols))
	for i, c := range cols {
		exprs[i] = expr.Column(child.Schema(), c[0], c[1])
		names[i] = c[1]
	}
	return NewProject(child, exprs, names)
}

// Name implements Operator.
func (p *Project) Name() string { return "Project" }

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.child} }

// Open implements Operator.
func (p *Project) Open() error { return p.child.Open() }

// Next implements Operator.
func (p *Project) Next() (data.Tuple, error) {
	t, err := p.child.Next()
	if err != nil {
		return nil, err
	}
	if t == nil {
		return p.finish()
	}
	out := make(data.Tuple, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = e.Eval(t)
	}
	return p.emit(out)
}

// NextBatch implements BatchOperator: output tuples for a whole batch are
// carved out of one arena allocation instead of one make per row.
func (p *Project) NextBatch() (data.Batch, error) {
	if p.bchild == nil {
		p.bchild = AsBatch(p.child)
		p.buf = make(data.Batch, 0, data.BatchSize())
	}
	in, err := p.bchild.NextBatch()
	if err != nil {
		return nil, err
	}
	if len(in) == 0 {
		return p.emitBatch(nil)
	}
	width := len(p.exprs)
	arena := make([]data.Value, len(in)*width)
	out := p.buf[:0]
	for _, t := range in {
		row := arena[:width:width]
		arena = arena[width:]
		for i, e := range p.exprs {
			row[i] = e.Eval(t)
		}
		out = append(out, data.Tuple(row))
	}
	p.buf = out
	return p.emitBatch(out)
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// Limit emits at most n tuples.
type Limit struct {
	base
	child  Operator
	n      int64
	bchild BatchOperator

	cchild  ColOperator
	selBuf  []int32
	colView data.ColBatch
}

// NewLimit creates a LIMIT n operator.
func NewLimit(child Operator, n int64) *Limit {
	l := &Limit{child: child, n: n}
	l.schema = child.Schema()
	return l
}

// Name implements Operator.
func (l *Limit) Name() string { return fmt.Sprintf("Limit(%d)", l.n) }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.child} }

// Open implements Operator.
func (l *Limit) Open() error { return l.child.Open() }

// Next implements Operator.
func (l *Limit) Next() (data.Tuple, error) {
	if l.stats.Emitted.Load() >= l.n {
		return l.finish()
	}
	t, err := l.child.Next()
	if err != nil {
		return nil, err
	}
	if t == nil {
		return l.finish()
	}
	return l.emit(t)
}

// NextBatch implements BatchOperator, truncating the final batch at the
// limit.
func (l *Limit) NextBatch() (data.Batch, error) {
	rem := l.n - l.stats.Emitted.Load()
	if rem <= 0 {
		return l.emitBatch(nil)
	}
	if l.bchild == nil {
		l.bchild = AsBatch(l.child)
	}
	in, err := l.bchild.NextBatch()
	if err != nil {
		return nil, err
	}
	if int64(len(in)) > rem {
		in = in[:rem]
	}
	return l.emitBatch(in)
}

// Close implements Operator.
func (l *Limit) Close() error { return l.child.Close() }
