package exec

import (
	"sync"
	"sync/atomic"

	"qpi/internal/data"
)

// This file implements morsel-driven parallel scans for the grace
// partition passes (HyPer-style, after Leis et al.): when a pass's child
// is a plain sequential Scan, the pass skips the single-reader pipeline
// entirely — Workers() scan workers claim fixed-size block-range morsels
// from an atomic counter (storage.MorselSource), hash/scatter their
// tuples into worker-private partition buffers, and merge at the pass
// barrier. Both the row and the columnar partition passes morselize; a
// pass whose child is not an eligible scan falls back per pass to the
// existing single-reader parallel scatter (row) or serial columnar pass,
// so a join can run its build pass morselized and its probe pass not.
//
// Hook contract under concurrent scans. Worker-indexed hooks
// (OnBuildBatch/OnProbeBatch and OnBuildColBatch/OnProbeColBatch) fire
// lock-free on the worker that owns the batch — the estimation framework
// backs them with per-worker shards merged at the barrier, and the merge
// order is fixed (worker 0..K-1), so estimator state is bit-identical to
// the serial pass: histogram counts are integers and the probe moment
// sums accumulate integer-valued float64 deltas, both order-independent.
// Legacy per-tuple hooks (Scan.OnTuple, OnBuildTuple/OnProbeTuple — the
// progress monitors' sampling tickers) fire under a per-pass mutex:
// exclusive but order-nondeterministic, which is sound because those
// consumers only bump counters and read atomic Stats snapshots. The
// worker join (WaitGroup) is the happens-before edge to everything the
// coordinator does after the pass.
//
// The scan's punctuation contract stays trivially safe: only sequential
// scans are morselable, so OnSampleEnd can never fire, and MarkDone plus
// the trace span end fire exactly once on the coordinator after the
// barrier (Scan.finishMorselPass).

// SetMorsel enables morsel-driven parallel scans for the partition
// passes. It takes effect when SetParallelism(k ≥ 2) is also set and no
// memory budget is configured (spill accounting stays single-threaded);
// passes whose child is not a sequential Scan fall back individually.
func (j *HashJoin) SetMorsel(on bool) *HashJoin {
	j.morsel = on
	return j
}

// Morseled reports whether morsel-driven scans are enabled.
func (j *HashJoin) Morseled() bool { return j.morsel }

// SetMorselBlocks overrides the number of blocks per morsel claim
// (≤ 0 restores storage.DefaultMorselBlocks). Tests use single-block
// morsels to force many claims on small tables.
func (j *HashJoin) SetMorselBlocks(n int) *HashJoin {
	j.morselBlocks = n
	return j
}

// morselScanOf returns the pass child as a morsel-eligible scan, or nil
// when the pass must fall back: morsel mode off, a memory budget forcing
// serial scatter, fewer than two workers, a non-Scan child, or a sampled
// scan (whose global sample-prefix order is inherently serial).
func (j *HashJoin) morselScanOf(child Operator) *Scan {
	if !j.morsel || j.memBudget > 0 || j.Workers() < 2 {
		return nil
	}
	s, ok := child.(*Scan)
	if !ok || !s.morselable() {
		return nil
	}
	return s
}

// scatterBatchLocal hashes one batch's join keys and appends the tuples
// to worker-local partition buffers — the lock-free scatter kernel
// shared by the morsel and single-reader parallel passes.
func (j *HashJoin) scatterBatchLocal(local [][]data.Tuple, b data.Batch, keys []int, keepNull bool) {
	for _, t := range b {
		k := JoinKeyOf(t, keys)
		p := 0
		if k.IsNull() {
			if !keepNull {
				continue
			}
		} else {
			p = int(hashValue(k) % uint64(j.parts))
		}
		local[p] = append(local[p], t)
	}
}

// mergeLocals concatenates the worker-private partition buffers onto the
// shared partition buffers, in worker order, at a pass barrier.
func (j *HashJoin) mergeLocals(parts [][]data.Tuple, locals [][][]data.Tuple) {
	for p := 0; p < j.parts; p++ {
		n := len(parts[p])
		for w := range locals {
			n += len(locals[w][p])
		}
		if n == 0 {
			continue
		}
		merged := make([]data.Tuple, 0, n)
		merged = append(merged, parts[p]...)
		for w := range locals {
			merged = append(merged, locals[w][p]...)
		}
		parts[p] = merged
	}
}

// morselPassState carries the per-worker accumulators of one morsel pass.
type morselPassState struct {
	locals [][][]data.Tuple
	rows   []int64
	errs   []error
	hookMu sync.Mutex
	wg     sync.WaitGroup
}

func newMorselPassState(workers, parts int) *morselPassState {
	st := &morselPassState{
		locals: make([][][]data.Tuple, workers),
		rows:   make([]int64, workers),
		errs:   make([]error, workers),
	}
	for w := range st.locals {
		st.locals[w] = make([][]data.Tuple, parts)
	}
	return st
}

// finish joins the workers and folds the pass results into the shared
// partition state; it returns the first worker error (context expiry).
func (j *HashJoin) finishMorselPass(st *morselPassState, sc *Scan, rows *atomic.Int64, parts [][]data.Tuple) error {
	st.wg.Wait()
	for _, err := range st.errs {
		if err != nil {
			return err
		}
	}
	sc.finishMorselPass()
	for _, n := range st.rows {
		rows.Add(n)
	}
	j.mergeLocals(parts, st.locals)
	return nil
}

// partitionPassMorsel runs one row partition pass with Workers() scan
// workers draining the child scan's morsels concurrently.
func (j *HashJoin) partitionPassMorsel(cfg *passConfig, sc *Scan) error {
	workers := j.Workers()
	src := sc.beginMorselPass(j.morselBlocks)
	st := newMorselPassState(workers, j.parts)
	for w := 0; w < workers; w++ {
		st.wg.Add(1)
		go func(w int) {
			defer st.wg.Done()
			local := st.locals[w]
			st.errs[w] = sc.drainMorsels(src, func(b data.Batch) error {
				st.rows[w] += int64(len(b))
				if sc.OnTuple != nil || cfg.tupleHook != nil {
					st.hookMu.Lock()
					if sc.OnTuple != nil {
						for _, t := range b {
							sc.OnTuple(t)
						}
					}
					if cfg.tupleHook != nil {
						for _, t := range b {
							cfg.tupleHook(t)
						}
					}
					st.hookMu.Unlock()
				}
				if cfg.batchHook != nil {
					cfg.batchHook(w, b)
				}
				j.scatterBatchLocal(local, b, cfg.keys, cfg.keepNull)
				return nil
			})
		}(w)
	}
	return j.finishMorselPass(st, sc, cfg.rows, cfg.parts)
}

// colMorselPassState carries the per-worker lane accumulators of one
// columnar morsel pass: each worker scatters into private per-partition
// ColBatch lane buffers, merged lane-to-lane at the barrier.
type colMorselPassState struct {
	locals [][]*data.ColBatch
	rows   []int64
	errs   []error
	hookMu sync.Mutex
	wg     sync.WaitGroup
}

func newColMorselPassState(workers, parts int) *colMorselPassState {
	st := &colMorselPassState{
		locals: make([][]*data.ColBatch, workers),
		rows:   make([]int64, workers),
		errs:   make([]error, workers),
	}
	for w := range st.locals {
		st.locals[w] = make([]*data.ColBatch, parts)
	}
	return st
}

// mergeColLocals folds the worker-private partition lanes into the
// shared partition buffers, in fixed worker order so the merged row
// order is deterministic. The first buffer seen for a partition is
// adopted wholesale — no copy — and later workers' rows append
// lane-to-lane before their buffers return to the pool.
func (j *HashJoin) mergeColLocals(parts []*data.ColBatch, locals [][]*data.ColBatch) {
	for p := 0; p < j.parts; p++ {
		for w := range locals {
			l := locals[w][p]
			if l == nil {
				continue
			}
			locals[w][p] = nil
			if parts[p] == nil {
				parts[p] = l
				continue
			}
			parts[p].AppendBatchFrom(l)
			data.PutColBatch(l)
		}
	}
}

// partitionPassColMorsel is the columnar morsel pass: each worker pivots
// its batches into a worker-private ColBatch, fires the worker-indexed
// columnar hook lock-free, and scatters lane-to-lane off the flat key
// lane into worker-private partition lanes.
func (j *HashJoin) partitionPassColMorsel(cfg *colPassConfig, sc *Scan) error {
	workers := j.Workers()
	src := sc.beginMorselPass(j.morselBlocks)
	st := newColMorselPassState(workers, j.parts)
	for w := 0; w < workers; w++ {
		st.wg.Add(1)
		go func(w int) {
			defer st.wg.Done()
			local := st.locals[w]
			var cb data.ColBatch
			var scratch data.Tuple // per-worker multi-key extraction scratch
			st.errs[w] = sc.drainMorsels(src, func(b data.Batch) error {
				st.rows[w] += int64(len(b))
				if sc.OnTuple != nil || cfg.tupleHook != nil {
					st.hookMu.Lock()
					if sc.OnTuple != nil {
						for _, t := range b {
							sc.OnTuple(t)
						}
					}
					if cfg.tupleHook != nil {
						for _, t := range b {
							cfg.tupleHook(t)
						}
					}
					st.hookMu.Unlock()
				}
				cb.SetRows(b, cfg.width)
				if cfg.colHook != nil {
					// Serial span hook on a concurrent pass (mixed chain):
					// exclusive, order-free — histogram increments commute.
					st.hookMu.Lock()
					cfg.colHook(&cb)
					st.hookMu.Unlock()
				}
				if cfg.colBatchHook != nil {
					cfg.colBatchHook(w, &cb)
				}
				j.scatterColLocal(local, &cb, cfg.keys, cfg.keepNull, cfg.width, &scratch)
				return nil
			})
		}(w)
	}
	st.wg.Wait()
	for _, err := range st.errs {
		if err != nil {
			return err
		}
	}
	sc.finishMorselPass()
	for _, n := range st.rows {
		cfg.rows.Add(n)
	}
	j.mergeColLocals(cfg.colParts, st.locals)
	return nil
}

// scatterColLocal scatters one batch's rows lane-to-lane into the
// worker-private partition lanes. A single homogeneous integer key
// column partitions straight off the flat Ints lane, hashing the exact
// Value JoinKeyOf would produce, so the partition layout matches the row
// scatter bit for bit; other key shapes extract the key off the lanes
// per row via the worker's scratch tuple.
func (j *HashJoin) scatterColLocal(local []*data.ColBatch, cb *data.ColBatch, keys []int, keepNull bool, width int, scratch *data.Tuple) {
	appendTo := func(p, i int) {
		dst := local[p]
		if dst == nil {
			dst = data.GetColBatch()
			dst.BeginBuild(width)
			local[p] = dst
		}
		dst.AppendFrom(cb, i)
	}
	if len(keys) == 1 {
		if kv := cb.Col(keys[0]); kv.Homogeneous() && kv.Kind == data.KindInt {
			nparts := uint64(j.parts)
			for i := 0; i < cb.NRows; i++ {
				if kv.Nulls.Get(i) {
					if keepNull {
						appendTo(0, i)
					}
					continue
				}
				appendTo(int(hashValue(data.Int(kv.Ints[i]))%nparts), i)
			}
			return
		}
	}
	for i := 0; i < cb.NRows; i++ {
		k := colJoinKeyAt(cb, keys, i, scratch)
		p := 0
		if k.IsNull() {
			if !keepNull {
				continue
			}
		} else {
			p = int(hashValue(k) % uint64(j.parts))
		}
		appendTo(p, i)
	}
}
