package exec

import (
	"testing"

	"qpi/internal/data"
	"qpi/internal/storage"
)

func typedJoin(t *testing.T, build, probe []int64, jt JoinType) []data.Tuple {
	t.Helper()
	j := NewHashJoinTyped(
		NewScan(makeTable("b", build), ""),
		NewScan(makeTable("p", probe), ""),
		0, 0, jt)
	return collect(t, j)
}

func TestSemiJoin(t *testing.T) {
	rows := typedJoin(t, []int64{1, 1, 3}, []int64{1, 2, 3, 3, 9}, SemiJoin)
	// probe tuples with a match: 1, 3, 3 → 3 rows, each probe-only arity 1.
	if len(rows) != 3 {
		t.Fatalf("semi join rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if len(r) != 1 {
			t.Fatalf("semi join output arity %d, want 1 (probe only)", len(r))
		}
		if r[0].I != 1 && r[0].I != 3 {
			t.Fatalf("unexpected row %v", r)
		}
	}
}

func TestAntiJoin(t *testing.T) {
	rows := typedJoin(t, []int64{1, 3}, []int64{1, 2, 3, 9, 9}, AntiJoin)
	// probe tuples without a match: 2, 9, 9.
	if len(rows) != 3 {
		t.Fatalf("anti join rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r[0].I != 2 && r[0].I != 9 {
			t.Fatalf("unexpected row %v", r)
		}
	}
}

func TestProbeOuterJoin(t *testing.T) {
	rows := typedJoin(t, []int64{1, 1}, []int64{1, 2}, ProbeOuterJoin)
	// probe tuple 1 matches twice; probe tuple 2 is preserved with NULL
	// build columns. Total 3 rows.
	if len(rows) != 3 {
		t.Fatalf("outer join rows = %d, want 3", len(rows))
	}
	var preserved int
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("outer join arity %d, want 2", len(r))
		}
		if r[0].IsNull() {
			preserved++
			if r[1].I != 2 {
				t.Fatalf("preserved row %v should carry probe key 2", r)
			}
		}
	}
	if preserved != 1 {
		t.Errorf("preserved rows = %d, want 1", preserved)
	}
}

func TestOuterAndAntiPreserveNullProbeKeys(t *testing.T) {
	s := data.NewSchema(data.Column{Table: "p", Name: "k", Kind: data.KindInt})
	tp := storage.NewTable("p", s)
	tp.MustAppend(data.Tuple{data.Null()})
	tp.MustAppend(data.Tuple{data.Int(1)})
	build := NewScan(makeTable("b", []int64{1}), "")

	outer := NewHashJoinTyped(build, NewScan(tp, ""), 0, 0, ProbeOuterJoin)
	rows := collect(t, outer)
	if len(rows) != 2 {
		t.Errorf("outer join rows = %d, want 2 (NULL probe preserved)", len(rows))
	}

	anti := NewHashJoinTyped(
		NewScan(makeTable("b", []int64{1}), ""),
		NewScan(cloneNullTable(), ""), 0, 0, AntiJoin)
	rows = collect(t, anti)
	if len(rows) != 1 || !rows[0][0].IsNull() {
		t.Errorf("anti join rows = %v, want just the NULL row", rows)
	}

	semi := NewHashJoinTyped(
		NewScan(makeTable("b", []int64{1}), ""),
		NewScan(cloneNullTable(), ""), 0, 0, SemiJoin)
	rows = collect(t, semi)
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Errorf("semi join rows = %v, want just key 1", rows)
	}
}

func cloneNullTable() *storage.Table {
	s := data.NewSchema(data.Column{Table: "p", Name: "k", Kind: data.KindInt})
	tp := storage.NewTable("p", s)
	tp.MustAppend(data.Tuple{data.Null()})
	tp.MustAppend(data.Tuple{data.Int(1)})
	return tp
}

func TestJoinTypeNames(t *testing.T) {
	j := NewHashJoinTyped(
		NewScan(makeTable("b", nil), ""),
		NewScan(makeTable("p", nil), ""), 0, 0, SemiJoin)
	if j.Name() != "HashJoin(semi b.k = p.k)" {
		t.Errorf("Name = %q", j.Name())
	}
	if j.Type() != SemiJoin {
		t.Error("Type wrong")
	}
	for _, c := range []struct {
		t    JoinType
		want string
	}{{InnerJoin, "inner"}, {ProbeOuterJoin, "outer"}, {SemiJoin, "semi"}, {AntiJoin, "anti"}} {
		if c.t.String() != c.want {
			t.Errorf("%d.String() = %q", c.t, c.t.String())
		}
	}
}

func TestSemiJoinSchemaIsProbeOnly(t *testing.T) {
	j := NewHashJoinTyped(
		NewScan(makeTable("b", nil), ""),
		NewScan(makeTable2("p", nil), ""), 0, 0, SemiJoin)
	if j.Schema().Len() != 2 || j.Schema().Resolve("p", "x") != 0 {
		t.Errorf("schema = %v", j.Schema())
	}
}
