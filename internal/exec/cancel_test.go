package exec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// The cancellation contract under test: after Bind(root, ctx), cancelling
// ctx (or letting its deadline expire) makes execution return ctx.Err()
// within one batch of work, in every phase of every operator, with Close
// releasing all spill descriptors and no goroutine left behind.

func expectCanceled(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// expectNoExtraGoroutines polls until the goroutine count drops back to
// the before mark (hand-rolled leak check; no external deps).
func expectNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestCancelMidScan(t *testing.T) {
	vals := randTable("t", 100000, 1000, 11)
	sc := NewScan(makeTable("t", vals), "")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 500
	n := 0
	sc.OnTuple = func(data.Tuple) {
		if n++; n == cancelAt {
			cancel()
		}
	}
	Bind(sc, ctx)
	_, err := Run(sc)
	expectCanceled(t, err)
	// "Within one batch of work": the amortized poll checks every 128th
	// call, far under the 1024-tuple batch bound.
	if emitted := sc.Stats().Emitted.Load(); emitted > cancelAt+128 {
		t.Errorf("scan emitted %d tuples after cancel at %d", emitted, cancelAt)
	}
}

func TestCancelAlreadyExpired(t *testing.T) {
	sc := NewScan(makeTable("t", randTable("t", 10000, 100, 12)), "")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Bind(sc, ctx)
	_, err := Run(sc)
	expectCanceled(t, err)
}

func TestCancelDeadlineExceeded(t *testing.T) {
	sc := NewScan(makeTable("t", randTable("t", 10000, 100, 13)), "")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	Bind(sc, ctx)
	_, err := Run(sc)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// cancelJoin builds a budgeted (spilling) hash join whose ctx is cancelled
// by the phase hook configured in arm, runs it, and asserts cancellation
// plus descriptor-clean shutdown.
func cancelJoin(t *testing.T, budget int64, workers int, arm func(j *HashJoin, cancel func())) {
	t.Helper()
	a := randTable("a", 3000, 100, 14)
	b := randTable("b", 4000, 100, 15)
	fs := vfs.NewFaultFS(nil)
	j := NewHashJoinOn(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""),
		"a", "k", "b", "k")
	if budget > 0 {
		j.SetMemoryBudget(budget)
	}
	j.SetSpillFS(fs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	arm(j, cancel)
	Bind(j, ctx)
	var err error
	if workers > 0 {
		j.SetParallelism(workers)
		_, err = RunBatch(j)
	} else {
		_, err = Run(j)
	}
	expectCanceled(t, err)
	if open := fs.OpenFiles(); open != 0 {
		t.Errorf("%d spill files still open after cancelled run", open)
	}
}

func TestCancelMidBuild(t *testing.T) {
	cancelJoin(t, 0, 0, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnBuildTuple = func(data.Tuple) {
			if n++; n == 700 {
				cancel()
			}
		}
	})
}

func TestCancelMidProbe(t *testing.T) {
	cancelJoin(t, 0, 0, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnProbeTuple = func(data.Tuple) {
			if n++; n == 700 {
				cancel()
			}
		}
	})
}

func TestCancelMidSpillBuild(t *testing.T) {
	cancelJoin(t, 16*1024, 0, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnBuildTuple = func(data.Tuple) {
			if n++; n == 2500 {
				cancel()
			}
		}
	})
}

func TestCancelMidSpillProbe(t *testing.T) {
	cancelJoin(t, 16*1024, 0, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnProbeTuple = func(data.Tuple) {
			if n++; n == 2000 {
				cancel()
			}
		}
	})
}

func TestCancelMidOutput(t *testing.T) {
	cancelJoin(t, 16*1024, 0, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnOutput = func(data.Tuple) {
			if n++; n == 1000 {
				cancel()
			}
		}
	})
}

func TestCancelBatchedSpillJoin(t *testing.T) {
	// The budget keeps the batched passes serial, exercising the
	// per-batch ctx check in partitionPassBatched.
	cancelJoin(t, 16*1024, 4, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnProbeTuple = func(data.Tuple) {
			if n++; n == 2000 {
				cancel()
			}
		}
	})
}

// TestCancelParallelPass cancels during the parallel scatter: the reader
// stops, closes the work channel, and the workers must all exit — the
// hand-rolled goroutine check catches any that linger.
func TestCancelParallelPass(t *testing.T) {
	before := runtime.NumGoroutine()
	cancelJoin(t, 0, 4, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnBuildTuple = func(data.Tuple) {
			if n++; n == 1500 {
				cancel()
			}
		}
	})
	expectNoExtraGoroutines(t, before)
}

func TestCancelParallelProbePass(t *testing.T) {
	before := runtime.NumGoroutine()
	cancelJoin(t, 0, 4, func(j *HashJoin, cancel func()) {
		n := 0
		j.OnProbeTuple = func(data.Tuple) {
			if n++; n == 1500 {
				cancel()
			}
		}
	})
	expectNoExtraGoroutines(t, before)
}

func TestCancelMidSortInput(t *testing.T) {
	vals := randTable("t", 5000, 100000, 16)
	fs := vfs.NewFaultFS(nil)
	sc := NewScan(makeTable("t", vals), "")
	s := NewSort(sc, 0)
	s.SetMemoryBudget(8 * 1024)
	s.SetSpillFS(fs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	s.OnInput = func(data.Tuple) {
		if n++; n == 3000 {
			cancel()
		}
	}
	Bind(s, ctx)
	_, err := Run(s)
	expectCanceled(t, err)
	if open := fs.OpenFiles(); open != 0 {
		t.Errorf("%d spill files still open after cancelled sort", open)
	}
	if fs.MaxOpenFiles() == 0 {
		t.Error("sort never spilled; the test did not cover the spill path")
	}
}

// TestCancelMidSortMerge cancels after output has started, i.e. during
// the k-way merge of spilled runs.
func TestCancelMidSortMerge(t *testing.T) {
	vals := randTable("t", 5000, 100000, 17)
	fs := vfs.NewFaultFS(nil)
	s := NewSort(NewScan(makeTable("t", vals), ""), 0)
	s.SetMemoryBudget(8 * 1024)
	s.SetSpillFS(fs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	Bind(s, ctx)
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; ; i++ {
		var tu data.Tuple
		tu, err = s.Next()
		if err != nil || tu == nil {
			break
		}
		if i == 100 {
			cancel()
		}
	}
	expectCanceled(t, err)
	if s.Runs() == 0 {
		t.Fatal("sort never spilled; merge phase not exercised")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if open := fs.OpenFiles(); open != 0 {
		t.Errorf("%d spill files still open after Close", open)
	}
}

func TestCancelMergeJoin(t *testing.T) {
	a := randTable("a", 2000, 60, 18)
	b := randTable("b", 2500, 60, 19)
	mj, _, _ := NewSortMergeJoin(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""), 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	mj.OnOutput = func(data.Tuple) {
		if n++; n == 500 {
			cancel()
		}
	}
	Bind(mj, ctx)
	_, err := Run(mj)
	expectCanceled(t, err)
}

func TestCancelNLJoin(t *testing.T) {
	a := randTable("a", 500, 60, 20)
	b := randTable("b", 500, 60, 21)
	j := NewIndexedNLJoin(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""), 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	Bind(j, ctx)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; ; i++ {
		var tu data.Tuple
		tu, err = j.Next()
		if err != nil || tu == nil {
			break
		}
		if i == 300 {
			cancel()
		}
	}
	expectCanceled(t, err)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelHashAgg(t *testing.T) {
	vals := randTable("t", 50000, 500, 22)
	sc := NewScan(makeTable("t", vals), "")
	agg := NewHashAgg(sc, []int{0}, []AggSpec{{Func: CountStar}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	sc.OnTuple = func(data.Tuple) {
		if n++; n == 10000 {
			cancel()
		}
	}
	Bind(agg, ctx)
	_, err := Run(agg)
	expectCanceled(t, err)
}

// TestBindIsUniform verifies Bind reaches every operator in a bushy plan
// (the contract Query.Run relies on).
func TestBindIsUniform(t *testing.T) {
	j := NewHashJoinOn(
		NewScan(makeTable("a", []int64{1, 2}), ""),
		NewScan(makeTable("b", []int64{1, 2}), ""),
		"a", "k", "b", "k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Bind(j, ctx)
	bound := 0
	Walk(j, func(op Operator) {
		type ctxHolder interface{ ctxErr() error }
		if h, ok := op.(ctxHolder); ok && h.ctxErr() != nil {
			bound++
		}
	})
	if bound != 3 {
		t.Fatalf("Bind reached %d of 3 operators", bound)
	}
}
