package exec

import "qpi/internal/data"

// This file is the batch-at-a-time execution layer. Operators that can
// move data.DefaultBatchSize tuples per call implement BatchOperator
// natively (Scan, Filter, Project, Limit, HashJoin, HashAgg); everything
// else — and every existing tuple-at-a-time caller — keeps working through
// the adapter pair below, so the two execution modes compose freely in one
// plan.

// BatchOperator is the batch-at-a-time executor contract. NextBatch
// returns the next batch of output tuples; an empty (or nil) batch signals
// end of stream. The returned slice is valid only until the next NextBatch
// call (see data.Batch); the tuples it references are stable.
type BatchOperator interface {
	Operator
	NextBatch() (data.Batch, error)
}

// AsBatch returns op as a BatchOperator: operators with a native batch
// path are returned as-is, anything else (sort, merge join, nested loops,
// user operators) is wrapped in an adapter that accumulates tuples from
// Next into batches. Stats, hooks and schema pass through unchanged.
func AsBatch(op Operator) BatchOperator {
	if b, ok := op.(BatchOperator); ok {
		return b
	}
	return &batchAdapter{Operator: op}
}

// batchAdapter lifts a tuple-at-a-time Operator to the batch contract.
type batchAdapter struct {
	Operator
	buf data.Batch
}

func (a *batchAdapter) NextBatch() (data.Batch, error) {
	if a.buf == nil {
		a.buf = make(data.Batch, 0, data.BatchSize())
	}
	b := a.buf[:0]
	for len(b) < cap(b) {
		t, err := a.Operator.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			break
		}
		b = append(b, t)
	}
	a.buf = b
	return b, nil
}

// Unwrap exposes the adapted operator (for callers that type-switch).
func (a *batchAdapter) Unwrap() Operator { return a.Operator }

// AsTuples returns op as a plain Operator driven through its batch path:
// Next serves tuples out of an internally pulled batch. All native batch
// operators also implement Next directly, so this adapter exists for
// consumers that want tuple-at-a-time delivery with batch-sized pulls
// underneath (and for symmetry tests).
func AsTuples(op BatchOperator) Operator {
	return &tupleAdapter{BatchOperator: op}
}

// tupleAdapter serves single tuples from an underlying batch stream.
type tupleAdapter struct {
	BatchOperator
	cur  data.Batch
	pos  int
	done bool
}

func (a *tupleAdapter) Next() (data.Tuple, error) {
	for {
		if a.pos < len(a.cur) {
			t := a.cur[a.pos]
			a.pos++
			return t, nil
		}
		if a.done {
			return nil, nil
		}
		b, err := a.BatchOperator.NextBatch()
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			a.done = true
			return nil, nil
		}
		a.cur, a.pos = b, 0
	}
}

// DrainBatch runs an opened operator to exhaustion through its batch path,
// returning all tuples. The returned tuples are copied out of the reused
// batch buffers and safe to retain.
func DrainBatch(op BatchOperator) ([]data.Tuple, error) {
	var out []data.Tuple
	for {
		b, err := op.NextBatch()
		if err != nil {
			return out, err
		}
		if len(b) == 0 {
			return out, nil
		}
		out = append(out, b...)
	}
}

// RunBatch opens, drains and closes an operator through its batch path,
// returning the row count — the batch-mode counterpart of Run.
func RunBatch(op BatchOperator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	var n int64
	for {
		b, err := op.NextBatch()
		if err != nil {
			op.Close()
			return n, err
		}
		if len(b) == 0 {
			break
		}
		n += int64(len(b))
	}
	return n, op.Close()
}
