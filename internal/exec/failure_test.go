package exec

import (
	"errors"
	"testing"

	"qpi/internal/data"
)

// faultOp emits good tuples then fails, exercising error propagation
// through every composite operator.
type faultOp struct {
	base
	good    int
	emitted int
}

var errInjected = errors.New("injected failure")

func newFaultOp(good int) *faultOp {
	f := &faultOp{good: good}
	f.schema = data.NewSchema(data.Column{Table: "f", Name: "k", Kind: data.KindInt})
	return f
}

func (f *faultOp) Name() string         { return "Fault" }
func (f *faultOp) Children() []Operator { return nil }
func (f *faultOp) Open() error          { return nil }
func (f *faultOp) Close() error         { return nil }
func (f *faultOp) Next() (data.Tuple, error) {
	if f.emitted >= f.good {
		return nil, errInjected
	}
	f.emitted++
	return data.Tuple{data.Int(int64(f.emitted))}, nil
}

// openFaultOp fails at Open.
type openFaultOp struct{ faultOp }

func (o *openFaultOp) Open() error { return errInjected }

func expectInjected(t *testing.T, op Operator) {
	t.Helper()
	if err := op.Open(); err != nil {
		if !errors.Is(err, errInjected) {
			t.Fatalf("unexpected open error: %v", err)
		}
		return
	}
	for {
		tu, err := op.Next()
		if err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		if tu == nil {
			t.Fatal("stream ended without the injected error")
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	mk := func() *faultOp { return newFaultOp(5) }
	good := func() Operator { return NewScan(makeTable("g", []int64{1, 2, 3}), "") }

	cases := map[string]Operator{
		"filter":          NewFilter(mk(), alwaysTrueExpr{}),
		"project":         NewProject(mk(), nil, nil),
		"limit":           NewLimit(mk(), 100),
		"sort":            NewSort(mk(), 0),
		"hashjoin-build":  NewHashJoin(mk(), good(), 0, 0),
		"hashjoin-probe":  NewHashJoin(good(), mk(), 0, 0),
		"mergejoin-left":  NewMergeJoin(NewSort(mk(), 0), NewSort(good(), 0), 0, 0),
		"mergejoin-right": NewMergeJoin(NewSort(good(), 0), NewSort(mk(), 0), 0, 0),
		"nljoin-outer":    NewIndexedNLJoin(mk(), good(), 0, 0),
		"nljoin-inner":    NewIndexedNLJoin(good(), mk(), 0, 0),
		"hashagg":         NewHashAgg(mk(), []int{0}, []AggSpec{{Func: CountStar}}),
		"sortagg":         NewSortAgg(mk(), []int{0}, []AggSpec{{Func: CountStar}}),
	}
	for name, op := range cases {
		t.Run(name, func(t *testing.T) { expectInjected(t, op) })
	}
}

func TestOpenErrorPropagation(t *testing.T) {
	bad := &openFaultOp{}
	bad.schema = data.NewSchema(data.Column{Table: "f", Name: "k", Kind: data.KindInt})
	j := NewHashJoin(bad, NewScan(makeTable("g", []int64{1}), ""), 0, 0)
	if err := j.Open(); !errors.Is(err, errInjected) {
		t.Fatalf("open error not propagated: %v", err)
	}
}

type alwaysTrueExpr struct{}

func (alwaysTrueExpr) Eval(data.Tuple) data.Value { return data.Bool(true) }
func (alwaysTrueExpr) String() string             { return "true" }

// closeFaultOp scans a small table but fails Close with its own error.
type closeFaultOp struct {
	*Scan
	err error
}

func (c *closeFaultOp) Close() error {
	c.Scan.Close()
	return c.err
}

func newCloseFaultOp(name string, err error) *closeFaultOp {
	return &closeFaultOp{
		Scan: NewScan(makeTable(name, []int64{1, 2, 3}), ""),
		err:  err,
	}
}

// TestCloseErrorsJoined: when both children of a binary operator fail
// Close, neither error may be dropped — both must surface from the
// parent's Close (via errors.Join).
func TestCloseErrorsJoined(t *testing.T) {
	errL := errors.New("left close failure")
	errR := errors.New("right close failure")
	cases := map[string]func() Operator{
		"hashjoin": func() Operator {
			return NewHashJoin(newCloseFaultOp("a", errL), newCloseFaultOp("b", errR), 0, 0)
		},
		"mergejoin": func() Operator {
			return NewMergeJoin(newCloseFaultOp("a", errL), newCloseFaultOp("b", errR), 0, 0)
		},
		"nljoin": func() Operator {
			return NewIndexedNLJoin(newCloseFaultOp("a", errL), newCloseFaultOp("b", errR), 0, 0)
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			op := mk()
			if _, err := Run(op); err == nil {
				t.Fatal("Run reported no error despite both children failing Close")
			} else if !errors.Is(err, errL) || !errors.Is(err, errR) {
				t.Fatalf("Close dropped a child error: %v", err)
			}
		})
	}
}

// TestSortCloseChildError: Sort.Close must close its child and report the
// child's error even when run files are also being released.
func TestSortCloseChildError(t *testing.T) {
	errC := errors.New("child close failure")
	s := NewSort(newCloseFaultOp("t", errC), 0)
	if _, err := Run(s); !errors.Is(err, errC) {
		t.Fatalf("Sort.Close dropped the child error: %v", err)
	}
}
