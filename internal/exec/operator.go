// Package exec implements a Volcano-style (Open/Next/Close iterator)
// query executor: table scans with block-level sampling, filters,
// projections, grace hash joins, sorts, sort-merge joins, nested-loops
// joins and hash/sort aggregation.
//
// Every operator counts the getnext() calls it has satisfied (paper §3's
// gnm work model) in its Stats, and the join/sort/aggregation operators
// expose per-phase hooks (build tuple, probe tuple, input tuple, sample
// end) that the online estimation framework in internal/core attaches to.
// The executor itself knows nothing about estimation.
package exec

import (
	"context"
	"math"
	"sync/atomic"

	"qpi/internal/data"
	"qpi/internal/obs"
)

// Operator is the Volcano iterator contract. Next returns a nil tuple when
// the stream is exhausted. Operators are single-use: Open, drain, Close.
type Operator interface {
	// Open prepares the operator (recursively opening children).
	Open() error
	// Next returns the next output tuple, or nil at end of stream.
	Next() (data.Tuple, error)
	// Close releases resources (recursively closing children).
	Close() error
	// Schema describes the output tuples.
	Schema() *data.Schema
	// Children returns the input operators, left to right.
	Children() []Operator
	// Stats returns the operator's live counters; estimators and the
	// progress monitor read and write it during execution.
	Stats() *Stats
	// Name returns a short EXPLAIN-style label ("HashJoin", "Scan(t)").
	Name() string
}

// Stats carries the live execution counters of one operator.
//
// Emitted is the K_i of the gnm model: the number of getnext() calls this
// operator has satisfied. Every live field is atomic so progress
// monitors, metrics scrapers and the HTTP observability endpoint can
// read Stats from other goroutines while the plan (including the
// parallel partition pass) runs, with no locks and a quiet race
// detector. The estimate of N_i — the total number of getnext() calls
// over the operator's lifetime — starts as the optimizer estimate and
// is refined online by the estimators; read it with Estimate/Source.
type Stats struct {
	Emitted atomic.Int64 // K_i: tuples emitted so far

	// Observability counters, incremented on amortized slow paths
	// (per batch, per spill switchover) so tracing them is ~free.
	Batches    atomic.Int64 // batches emitted (batch mode)
	SpillFiles atomic.Int64 // spill files created by this operator
	SpillBytes atomic.Int64 // bytes written to spill files

	estBits atomic.Uint64          // math.Float64bits of the N_i estimate
	estSrc  atomic.Pointer[string] // provenance (nil = not yet estimated)
	done    atomic.Bool            // operator exhausted (Emitted is exact N_i)

	// Plan-time fields, written before execution starts and constant
	// afterwards (safe to read concurrently without atomics).
	InputTotal int64 // leaf scans: total rows in the underlying table
	// GroupsHint preserves an aggregation's distinct-count belief before
	// it is capped at the (possibly misestimated) input cardinality, so
	// progress refinement can re-cap when the input belief changes.
	GroupsHint float64
}

// Interned provenance strings so SetEstimate does not allocate for the
// common sources on every estimator publish.
var (
	srcOptimizer = "optimizer"
	srcOnce      = "once"
	srcOnceExact = "once-exact"
	srcDNE       = "dne"
	srcByte      = "byte"
	srcExact     = "exact"
	srcGEE       = "gee"
	srcMLE       = "mle"
)

func internSource(s string) *string {
	switch s {
	case "optimizer":
		return &srcOptimizer
	case "once":
		return &srcOnce
	case "once-exact":
		return &srcOnceExact
	case "dne":
		return &srcDNE
	case "byte":
		return &srcByte
	case "exact":
		return &srcExact
	case "gee":
		return &srcGEE
	case "mle":
		return &srcMLE
	}
	return &s
}

// SetEstimate records a refined estimate of the operator's total output.
func (s *Stats) SetEstimate(total float64, source string) {
	s.estBits.Store(math.Float64bits(total))
	s.estSrc.Store(internSource(source))
}

// Estimate returns the current estimate of N_i.
func (s *Stats) Estimate() float64 {
	return math.Float64frombits(s.estBits.Load())
}

// Source returns the estimate's provenance: "optimizer", "once",
// "once-exact", "dne", "byte", "exact", ... ("" before any estimate).
func (s *Stats) Source() string {
	if p := s.estSrc.Load(); p != nil {
		return *p
	}
	return ""
}

// MarkDone records that the operator is exhausted (Emitted is exact N_i).
func (s *Stats) MarkDone() { s.done.Store(true) }

// IsDone reports whether the operator has been exhausted.
func (s *Stats) IsDone() bool { return s.done.Load() }

// Total returns the best current belief about N_i: exact when done,
// the refined estimate otherwise (never below what has already been
// emitted).
func (s *Stats) Total() float64 {
	emitted := float64(s.Emitted.Load())
	if s.done.Load() {
		return emitted
	}
	if est := s.Estimate(); est >= emitted {
		return est
	}
	return emitted
}

// base provides the shared bookkeeping for operators.
type base struct {
	stats  Stats
	schema *data.Schema

	// ctx is the plan's cancellation token, installed by Bind before
	// execution (nil = never cancelled). Operators poll it in their
	// Next/NextBatch loops so a cancelled or expired context unwinds the
	// whole plan within a bounded amount of work.
	ctx     context.Context
	ctxTick uint32

	// tr is the plan's tracer, installed by BindTracer before execution
	// (nil = tracing disabled). trLabel caches the operator's Name() at
	// bind time so emission sites never re-render labels.
	tr      *obs.Tracer
	trLabel string
}

func (b *base) Stats() *Stats        { return &b.stats }
func (b *base) Schema() *data.Schema { return b.schema }

// BindContext installs the plan's cancellation context (see Bind).
func (b *base) BindContext(ctx context.Context) { b.ctx = ctx }

// bindTracer installs the plan's tracer and the operator's cached label.
func (b *base) bindTracer(tr *obs.Tracer, label string) {
	b.tr = tr
	b.trLabel = label
}

// traceBegin opens a phase span if tracing is enabled. The nil-check is
// the entire cost of the disabled path at every emission site.
func (b *base) traceBegin(phase string) {
	if b.tr != nil {
		b.tr.Begin(b.trLabel, phase)
	}
}

// traceEnd closes a phase span with the phase's counters.
func (b *base) traceEnd(phase string, tuples, bytes, spills int64) {
	if b.tr != nil {
		b.tr.End(b.trLabel, phase, tuples, bytes, spills)
	}
}

// traceMark records a point event.
func (b *base) traceMark(phase string, tuples, bytes int64) {
	if b.tr != nil {
		b.tr.Mark(b.trLabel, phase, tuples, bytes)
	}
}

// tracing reports whether a tracer is bound (for sites that need to
// assemble counters before emitting).
func (b *base) tracing() bool { return b.tr != nil }

// TraceBinder is implemented by every operator embedding base; BindTracer
// uses it to thread a tracer through a plan.
type TraceBinder interface {
	bindTracer(tr *obs.Tracer, label string)
}

// BindTracer installs tr as the trace sink of every operator in the
// plan, caching each operator's Name() as its span label. Like Bind it
// must be called before Open; a nil tr is a no-op (and leaves the
// executor on its zero-cost untraced path).
func BindTracer(root Operator, tr *obs.Tracer) {
	if tr == nil {
		return
	}
	Walk(root, func(op Operator) {
		if tb, ok := op.(TraceBinder); ok {
			tb.bindTracer(tr, op.Name())
		}
	})
}

// pollCtx is the amortized per-tuple cancellation check: one increment
// and branch per call, a real ctx.Err() every 128th call, so the hot
// loops stay cheap while cancellation is still observed well within one
// batch of work.
func (b *base) pollCtx() error {
	if b.ctx == nil {
		return nil
	}
	if b.ctxTick++; b.ctxTick&127 != 0 {
		return nil
	}
	return b.ctx.Err()
}

// ctxErr checks cancellation directly; used at batch and phase
// boundaries where the check is already amortized over many tuples.
func (b *base) ctxErr() error {
	if b.ctx == nil {
		return nil
	}
	return b.ctx.Err()
}

// ContextBinder is implemented by every operator embedding base; Bind
// uses it to thread a cancellation context through a plan.
type ContextBinder interface {
	BindContext(ctx context.Context)
}

// Bind installs ctx as the cancellation token of every operator in the
// plan. Once bound, a cancelled (or deadline-expired) context makes
// Next/NextBatch return ctx.Err() within a bounded amount of work; the
// caller then unwinds via Close as with any other execution error, which
// releases spill files and buffered state. Bind must be called before
// Open; a nil ctx is a no-op.
func Bind(root Operator, ctx context.Context) {
	if ctx == nil {
		return
	}
	Walk(root, func(op Operator) {
		if b, ok := op.(ContextBinder); ok {
			b.BindContext(ctx)
		}
	})
}

// emit counts an emitted tuple and returns it, keeping Next bodies terse.
func (b *base) emit(t data.Tuple) (data.Tuple, error) {
	b.stats.Emitted.Add(1)
	return t, nil
}

// emitBatch counts an emitted batch and returns it; empty batches mark the
// operator done, keeping NextBatch bodies terse.
func (b *base) emitBatch(bt data.Batch) (data.Batch, error) {
	if len(bt) == 0 {
		b.stats.MarkDone()
		return nil, nil
	}
	b.stats.Emitted.Add(int64(len(bt)))
	b.stats.Batches.Add(1)
	return bt, nil
}

// finish marks the operator done.
func (b *base) finish() (data.Tuple, error) {
	b.stats.MarkDone()
	return nil, nil
}

// Drain runs an opened operator to exhaustion, returning the tuples.
// It is a convenience for tests, examples and materializing consumers.
func Drain(op Operator) ([]data.Tuple, error) {
	var out []data.Tuple
	for {
		t, err := op.Next()
		if err != nil {
			return out, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// Run opens, drains and closes an operator, returning the row count. It is
// the cheapest way to execute a query whose output is not needed.
func Run(op Operator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	var n int64
	for {
		t, err := op.Next()
		if err != nil {
			op.Close()
			return n, err
		}
		if t == nil {
			break
		}
		n++
	}
	return n, op.Close()
}

// Walk visits op and all descendants in pre-order.
func Walk(op Operator, visit func(Operator)) {
	visit(op)
	for _, c := range op.Children() {
		Walk(c, visit)
	}
}
