// Package exec implements a Volcano-style (Open/Next/Close iterator)
// query executor: table scans with block-level sampling, filters,
// projections, grace hash joins, sorts, sort-merge joins, nested-loops
// joins and hash/sort aggregation.
//
// Every operator counts the getnext() calls it has satisfied (paper §3's
// gnm work model) in its Stats, and the join/sort/aggregation operators
// expose per-phase hooks (build tuple, probe tuple, input tuple, sample
// end) that the online estimation framework in internal/core attaches to.
// The executor itself knows nothing about estimation.
package exec

import (
	"context"
	"sync/atomic"

	"qpi/internal/data"
)

// Operator is the Volcano iterator contract. Next returns a nil tuple when
// the stream is exhausted. Operators are single-use: Open, drain, Close.
type Operator interface {
	// Open prepares the operator (recursively opening children).
	Open() error
	// Next returns the next output tuple, or nil at end of stream.
	Next() (data.Tuple, error)
	// Close releases resources (recursively closing children).
	Close() error
	// Schema describes the output tuples.
	Schema() *data.Schema
	// Children returns the input operators, left to right.
	Children() []Operator
	// Stats returns the operator's live counters; estimators and the
	// progress monitor read and write it during execution.
	Stats() *Stats
	// Name returns a short EXPLAIN-style label ("HashJoin", "Scan(t)").
	Name() string
}

// Stats carries the live execution counters of one operator.
//
// Emitted is the K_i of the gnm model: the number of getnext() calls this
// operator has satisfied. It is atomic so progress monitors and tickers
// can read it from other goroutines while batch workers run (and so the
// race detector stays quiet under the parallel partition pass). EstTotal
// is the current estimate of N_i, the total number of getnext() calls
// over the operator's lifetime; it starts as the optimizer estimate and
// is refined online by the estimators.
type Stats struct {
	Emitted    atomic.Int64 // K_i: tuples emitted so far
	EstTotal   float64      // current estimate of N_i
	EstSource  string       // provenance: "optimizer", "once", "dne", "byte", "exact"
	Done       bool         // operator exhausted (Emitted is exact N_i)
	InputTotal int64        // leaf scans: total rows in the underlying table
	// GroupsHint preserves an aggregation's distinct-count belief before
	// it is capped at the (possibly misestimated) input cardinality, so
	// progress refinement can re-cap when the input belief changes.
	GroupsHint float64
}

// SetEstimate records a refined estimate of the operator's total output.
func (s *Stats) SetEstimate(total float64, source string) {
	s.EstTotal = total
	s.EstSource = source
}

// Total returns the best current belief about N_i: exact when done,
// the refined estimate otherwise (never below what has already been
// emitted).
func (s *Stats) Total() float64 {
	emitted := float64(s.Emitted.Load())
	if s.Done {
		return emitted
	}
	if s.EstTotal < emitted {
		return emitted
	}
	return s.EstTotal
}

// base provides the shared bookkeeping for operators.
type base struct {
	stats  Stats
	schema *data.Schema

	// ctx is the plan's cancellation token, installed by Bind before
	// execution (nil = never cancelled). Operators poll it in their
	// Next/NextBatch loops so a cancelled or expired context unwinds the
	// whole plan within a bounded amount of work.
	ctx     context.Context
	ctxTick uint32
}

func (b *base) Stats() *Stats        { return &b.stats }
func (b *base) Schema() *data.Schema { return b.schema }

// BindContext installs the plan's cancellation context (see Bind).
func (b *base) BindContext(ctx context.Context) { b.ctx = ctx }

// pollCtx is the amortized per-tuple cancellation check: one increment
// and branch per call, a real ctx.Err() every 128th call, so the hot
// loops stay cheap while cancellation is still observed well within one
// batch of work.
func (b *base) pollCtx() error {
	if b.ctx == nil {
		return nil
	}
	if b.ctxTick++; b.ctxTick&127 != 0 {
		return nil
	}
	return b.ctx.Err()
}

// ctxErr checks cancellation directly; used at batch and phase
// boundaries where the check is already amortized over many tuples.
func (b *base) ctxErr() error {
	if b.ctx == nil {
		return nil
	}
	return b.ctx.Err()
}

// ContextBinder is implemented by every operator embedding base; Bind
// uses it to thread a cancellation context through a plan.
type ContextBinder interface {
	BindContext(ctx context.Context)
}

// Bind installs ctx as the cancellation token of every operator in the
// plan. Once bound, a cancelled (or deadline-expired) context makes
// Next/NextBatch return ctx.Err() within a bounded amount of work; the
// caller then unwinds via Close as with any other execution error, which
// releases spill files and buffered state. Bind must be called before
// Open; a nil ctx is a no-op.
func Bind(root Operator, ctx context.Context) {
	if ctx == nil {
		return
	}
	Walk(root, func(op Operator) {
		if b, ok := op.(ContextBinder); ok {
			b.BindContext(ctx)
		}
	})
}

// emit counts an emitted tuple and returns it, keeping Next bodies terse.
func (b *base) emit(t data.Tuple) (data.Tuple, error) {
	b.stats.Emitted.Add(1)
	return t, nil
}

// emitBatch counts an emitted batch and returns it; empty batches mark the
// operator done, keeping NextBatch bodies terse.
func (b *base) emitBatch(bt data.Batch) (data.Batch, error) {
	if len(bt) == 0 {
		b.stats.Done = true
		return nil, nil
	}
	b.stats.Emitted.Add(int64(len(bt)))
	return bt, nil
}

// finish marks the operator done.
func (b *base) finish() (data.Tuple, error) {
	b.stats.Done = true
	return nil, nil
}

// Drain runs an opened operator to exhaustion, returning the tuples.
// It is a convenience for tests, examples and materializing consumers.
func Drain(op Operator) ([]data.Tuple, error) {
	var out []data.Tuple
	for {
		t, err := op.Next()
		if err != nil {
			return out, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// Run opens, drains and closes an operator, returning the row count. It is
// the cheapest way to execute a query whose output is not needed.
func Run(op Operator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	var n int64
	for {
		t, err := op.Next()
		if err != nil {
			op.Close()
			return n, err
		}
		if t == nil {
			break
		}
		n++
	}
	return n, op.Close()
}

// Walk visits op and all descendants in pre-order.
func Walk(op Operator, visit func(Operator)) {
	visit(op)
	for _, c := range op.Children() {
		Walk(c, visit)
	}
}
