package exec

import (
	"container/heap"
	"sort"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// External sorting support for the Sort operator: when a memory budget is
// set, the input pass accumulates runs of at most the budget, sorts each
// and spills it, then merges the runs with a k-way heap. The OnInput hook
// still fires for every input tuple during the (unsorted) input pass, so
// the estimation framework behaves identically in both modes.

// SetMemoryBudget caps the bytes buffered during the sort (0 = unlimited,
// fully in-memory). Overflowing input spills as sorted runs merged on
// output.
func (s *Sort) SetMemoryBudget(bytes int64) *Sort {
	s.memBudget = bytes
	return s
}

// Runs reports how many sorted runs spilled to disk.
func (s *Sort) Runs() int { return len(s.runs) }

// SetSpillFS routes the sort's run I/O through fs (nil restores the real
// filesystem); tests inject a vfs.FaultFS here.
func (s *Sort) SetSpillFS(fs vfs.FS) *Sort {
	s.spillFS = fs
	return s
}

// less orders two tuples by the sort keys and directions.
func (s *Sort) less(a, b data.Tuple) bool {
	for ki, k := range s.keys {
		if c := data.Compare(a[k], b[k]); c != 0 {
			if s.desc != nil && s.desc[ki] {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// spillRun sorts and writes the current buffer as one run.
func (s *Sort) spillRun() error {
	if len(s.rows) == 0 {
		return nil
	}
	sort.SliceStable(s.rows, func(i, j int) bool { return s.less(s.rows[i], s.rows[j]) })
	f, err := newSpillFile(s.spillFS, s.schema.Len())
	if err != nil {
		return err
	}
	for _, t := range s.rows {
		if err := f.append(t); err != nil {
			f.close()
			return err
		}
	}
	s.runs = append(s.runs, f)
	s.stats.SpillFiles.Add(1)
	s.stats.SpillBytes.Add(s.bufBytes)
	s.traceMark("spill-run", int64(len(s.rows)), s.bufBytes)
	s.rows = s.rows[:0]
	s.bufBytes = 0
	return nil
}

// mergeState is the k-way merge cursor set.
type mergeState struct {
	s       *Sort
	heads   []data.Tuple
	sources []*spillFile
	order   []int // heap of source indexes
}

func (m *mergeState) Len() int { return len(m.order) }
func (m *mergeState) Less(i, j int) bool {
	return m.s.less(m.heads[m.order[i]], m.heads[m.order[j]])
}
func (m *mergeState) Swap(i, j int) { m.order[i], m.order[j] = m.order[j], m.order[i] }
func (m *mergeState) Push(x any)    { m.order = append(m.order, x.(int)) }
func (m *mergeState) Pop() any {
	x := m.order[len(m.order)-1]
	m.order = m.order[:len(m.order)-1]
	return x
}

// startMerge opens all runs and primes the heap.
func (s *Sort) startMerge() error {
	m := &mergeState{s: s}
	for _, f := range s.runs {
		if err := f.startRead(); err != nil {
			return err
		}
		t, err := f.next()
		if err != nil {
			return err
		}
		if t == nil {
			if err := f.close(); err != nil {
				return err
			}
			continue
		}
		m.sources = append(m.sources, f)
		m.heads = append(m.heads, t)
		m.order = append(m.order, len(m.sources)-1)
	}
	heap.Init(m)
	s.merge = m
	return nil
}

// mergeNext pops the smallest head across runs.
func (s *Sort) mergeNext() (data.Tuple, error) {
	m := s.merge
	if m.Len() == 0 {
		return nil, nil
	}
	src := m.order[0]
	out := m.heads[src]
	t, err := m.sources[src].next()
	if err != nil {
		return nil, err
	}
	if t == nil {
		err := m.sources[src].close()
		heap.Pop(m)
		if err != nil {
			return nil, err
		}
	} else {
		m.heads[src] = t
		heap.Fix(m, 0)
	}
	return out, nil
}
