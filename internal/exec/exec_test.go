package exec

import (
	"math/rand"
	"sort"
	"testing"

	"qpi/internal/data"
	"qpi/internal/expr"
	"qpi/internal/storage"
)

// makeTable builds a single-int-column table named name with column "k".
func makeTable(name string, vals []int64) *storage.Table {
	s := data.NewSchema(data.Column{Table: name, Name: "k", Kind: data.KindInt})
	t := storage.NewTable(name, s)
	for _, v := range vals {
		t.MustAppend(data.Tuple{data.Int(v)})
	}
	return t
}

// makeTable2 builds a two-int-column table (x, y).
func makeTable2(name string, rows [][2]int64) *storage.Table {
	s := data.NewSchema(
		data.Column{Table: name, Name: "x", Kind: data.KindInt},
		data.Column{Table: name, Name: "y", Kind: data.KindInt},
	)
	t := storage.NewTable(name, s)
	for _, r := range rows {
		t.MustAppend(data.Tuple{data.Int(r[0]), data.Int(r[1])})
	}
	return t
}

func collect(t *testing.T, op Operator) []data.Tuple {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	rows, err := Drain(op)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rows
}

func firstInts(rows []data.Tuple, col int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[col].I
	}
	return out
}

func TestScanSequential(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1, 2, 3}), "")
	rows := collect(t, sc)
	if got := firstInts(rows, 0); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("rows = %v", got)
	}
	if sc.Stats().Emitted.Load() != 3 || !sc.Stats().IsDone() {
		t.Errorf("stats = %+v", sc.Stats())
	}
	if sc.Stats().InputTotal != 3 {
		t.Errorf("InputTotal = %d", sc.Stats().InputTotal)
	}
}

func TestScanAliasRenamesSchema(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1}), "u")
	if sc.Schema().Resolve("u", "k") < 0 {
		t.Error("alias u not applied")
	}
	if sc.Schema().Resolve("t", "k") >= 0 {
		t.Error("original table name still resolvable")
	}
	if sc.Name() != "Scan(t AS u)" {
		t.Errorf("Name = %q", sc.Name())
	}
}

func TestScanSamplePunctuation(t *testing.T) {
	vals := make([]int64, 10*storage.BlockSize)
	for i := range vals {
		vals[i] = int64(i)
	}
	sc := NewScan(makeTable("t", vals), "")
	sc.SampleFraction = 0.3
	sc.Seed = 7
	fired := -1
	seen := 0
	sc.OnTuple = func(data.Tuple) { seen++ }
	sc.OnSampleEnd = func() { fired = seen }
	rows := collect(t, sc)
	if len(rows) != len(vals) {
		t.Fatalf("emitted %d rows, want %d", len(rows), len(vals))
	}
	want := 3 * storage.BlockSize
	if fired != want {
		t.Errorf("OnSampleEnd after %d tuples, want %d", fired, want)
	}
}

func TestScanSampleEndFiresForZeroFraction(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1}), "")
	fired := false
	sc.OnSampleEnd = func() { fired = true }
	collect(t, sc)
	if fired {
		t.Error("OnSampleEnd should not fire when no sample configured")
	}
}

func TestScanInvalidFraction(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1}), "")
	sc.SampleFraction = 1.5
	if err := sc.Open(); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestScanFraction(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1, 2, 3, 4}), "")
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	sc.Next()
	sc.Next()
	if f := sc.Fraction(); f != 0.5 {
		t.Errorf("Fraction = %g, want 0.5", f)
	}
}

func TestFilter(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1, 2, 3, 4, 5}), "")
	f := NewFilter(sc, expr.Compare(expr.GT, expr.Column(sc.Schema(), "t", "k"), expr.IntLit(3)))
	rows := collect(t, f)
	if got := firstInts(rows, 0); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("rows = %v", got)
	}
	if f.Stats().Emitted.Load() != 2 {
		t.Errorf("Emitted = %d", f.Stats().Emitted.Load())
	}
}

func TestProject(t *testing.T) {
	sc := NewScan(makeTable2("t", [][2]int64{{1, 10}, {2, 20}}), "")
	p := NewProject(sc,
		[]expr.Expr{
			expr.Column(sc.Schema(), "t", "y"),
			expr.Arith{Op: expr.Mul, L: expr.Column(sc.Schema(), "t", "x"), R: expr.IntLit(2)},
		},
		[]string{"y", "x2"})
	rows := collect(t, p)
	if len(rows) != 2 || rows[0][0].I != 10 || rows[0][1].I != 2 || rows[1][1].I != 4 {
		t.Errorf("rows = %v", rows)
	}
	if p.Schema().Resolve("", "x2") != 1 {
		t.Errorf("schema = %v", p.Schema())
	}
}

func TestProjectColumns(t *testing.T) {
	sc := NewScan(makeTable2("t", [][2]int64{{1, 10}}), "")
	p := ProjectColumns(sc, [2]string{"t", "y"})
	rows := collect(t, p)
	if len(rows) != 1 || rows[0][0].I != 10 {
		t.Errorf("rows = %v", rows)
	}
}

func TestProjectArityPanics(t *testing.T) {
	sc := NewScan(makeTable("t", nil), "")
	defer func() {
		if recover() == nil {
			t.Error("no panic on arity mismatch")
		}
	}()
	NewProject(sc, []expr.Expr{expr.IntLit(1)}, []string{"a", "b"})
}

func TestLimit(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1, 2, 3, 4}), "")
	l := NewLimit(sc, 2)
	rows := collect(t, l)
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

// bruteJoin computes the expected equijoin result counts.
func bruteJoinCount(a, b []int64) int64 {
	counts := map[int64]int64{}
	for _, v := range a {
		counts[v]++
	}
	var n int64
	for _, v := range b {
		n += counts[v]
	}
	return n
}

func TestHashJoinCorrectness(t *testing.T) {
	a := []int64{1, 2, 2, 3, 5, 5, 5}
	b := []int64{2, 3, 3, 5, 9}
	j := NewHashJoinOn(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""),
		"a", "k", "b", "k")
	rows := collect(t, j)
	if int64(len(rows)) != bruteJoinCount(a, b) {
		t.Errorf("join size = %d, want %d", len(rows), bruteJoinCount(a, b))
	}
	for _, r := range rows {
		if r[0].I != r[1].I {
			t.Fatalf("joined mismatched keys: %v", r)
		}
	}
	if j.BuildRows() != int64(len(a)) || j.ProbeRows() != int64(len(b)) {
		t.Errorf("BuildRows/ProbeRows = %d/%d", j.BuildRows(), j.ProbeRows())
	}
}

func TestHashJoinEmptyInputs(t *testing.T) {
	j := NewHashJoinOn(
		NewScan(makeTable("a", nil), ""),
		NewScan(makeTable("b", []int64{1}), ""),
		"a", "k", "b", "k")
	if rows := collect(t, j); len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
	j2 := NewHashJoinOn(
		NewScan(makeTable("a", []int64{1}), ""),
		NewScan(makeTable("b", nil), ""),
		"a", "k", "b", "k")
	if rows := collect(t, j2); len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestHashJoinNullKeysDoNotJoin(t *testing.T) {
	s := data.NewSchema(data.Column{Table: "a", Name: "k", Kind: data.KindInt})
	ta := storage.NewTable("a", s)
	ta.MustAppend(data.Tuple{data.Null()})
	ta.MustAppend(data.Tuple{data.Int(1)})
	sb := data.NewSchema(data.Column{Table: "b", Name: "k", Kind: data.KindInt})
	tb := storage.NewTable("b", sb)
	tb.MustAppend(data.Tuple{data.Null()})
	tb.MustAppend(data.Tuple{data.Int(1)})
	j := NewHashJoinOn(NewScan(ta, ""), NewScan(tb, ""), "a", "k", "b", "k")
	rows := collect(t, j)
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestHashJoinHookOrdering(t *testing.T) {
	// All build hooks must fire before any probe hook; all probe hooks
	// before OnProbeEnd; OnProbeEnd before the first output tuple.
	j := NewHashJoinOn(
		NewScan(makeTable("a", []int64{1, 2}), ""),
		NewScan(makeTable("b", []int64{1, 2, 2}), ""),
		"a", "k", "b", "k")
	var events []string
	j.OnBuildTuple = func(data.Tuple) { events = append(events, "b") }
	j.OnProbeTuple = func(data.Tuple) { events = append(events, "p") }
	j.OnProbeEnd = func() { events = append(events, "end") }
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	tu, err := j.Next()
	if err != nil || tu == nil {
		t.Fatalf("first Next = %v, %v", tu, err)
	}
	want := []string{"b", "b", "p", "p", "p", "end"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
	j.Close()
}

func TestHashJoinOutputClusteredByPartition(t *testing.T) {
	// The grace join must emit whole partitions at a time: the partition
	// id sequence of the output must never revisit an earlier partition.
	var vals []int64
	for i := int64(0); i < 500; i++ {
		vals = append(vals, i%50)
	}
	j := NewHashJoinOn(
		NewScan(makeTable("a", vals), ""),
		NewScan(makeTable("b", vals), ""),
		"a", "k", "b", "k").SetPartitions(8)
	rows := collect(t, j)
	seen := map[int]bool{}
	cur := -1
	for _, r := range rows {
		p := int(hashValue(r[0]) % 8)
		if p != cur {
			if seen[p] {
				t.Fatalf("partition %d revisited", p)
			}
			seen[p] = true
			cur = p
		}
	}
}

func TestHashJoinStatsEstimate(t *testing.T) {
	j := NewHashJoinOn(
		NewScan(makeTable("a", []int64{1}), ""),
		NewScan(makeTable("b", []int64{1, 1}), ""),
		"a", "k", "b", "k")
	j.Stats().SetEstimate(42, "optimizer")
	if j.Stats().Total() != 42 {
		t.Errorf("Total = %g", j.Stats().Total())
	}
	rows := collect(t, j)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if j.Stats().Total() != 2 { // done → exact
		t.Errorf("Total after done = %g", j.Stats().Total())
	}
}

func TestSortOrdersAndHooks(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{3, 1, 2}), "")
	s := NewSort(sc, 0)
	var seen []int64
	endFired := false
	s.OnInput = func(tu data.Tuple) { seen = append(seen, tu[0].I) }
	s.OnInputEnd = func() { endFired = len(seen) == 3 }
	rows := collect(t, s)
	if got := firstInts(rows, 0); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("sorted = %v", got)
	}
	if !endFired {
		t.Error("OnInputEnd did not fire after all input")
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	a := []int64{5, 1, 3, 3, 7, 3}
	b := []int64{3, 3, 1, 9, 5, 5}
	mj, _, _ := NewSortMergeJoin(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""),
		0, 0)
	rows := collect(t, mj)
	if int64(len(rows)) != bruteJoinCount(a, b) {
		t.Errorf("merge join size = %d, want %d", len(rows), bruteJoinCount(a, b))
	}
	for _, r := range rows {
		if r[0].I != r[1].I {
			t.Fatalf("mismatched keys: %v", r)
		}
	}
}

func TestMergeJoinDuplicateGroups(t *testing.T) {
	// 3 left copies x 2 right copies of key 4 → 6 outputs.
	mj, _, _ := NewSortMergeJoin(
		NewScan(makeTable("a", []int64{4, 4, 4}), ""),
		NewScan(makeTable("b", []int64{4, 4}), ""),
		0, 0)
	rows := collect(t, mj)
	if len(rows) != 6 {
		t.Errorf("rows = %d, want 6", len(rows))
	}
}

func TestMergeJoinNullKeys(t *testing.T) {
	s := data.NewSchema(data.Column{Table: "a", Name: "k", Kind: data.KindInt})
	ta := storage.NewTable("a", s)
	ta.MustAppend(data.Tuple{data.Null()})
	ta.MustAppend(data.Tuple{data.Int(2)})
	sb := data.NewSchema(data.Column{Table: "b", Name: "k", Kind: data.KindInt})
	tb := storage.NewTable("b", sb)
	tb.MustAppend(data.Tuple{data.Null()})
	tb.MustAppend(data.Tuple{data.Int(2)})
	mj, _, _ := NewSortMergeJoin(NewScan(ta, ""), NewScan(tb, ""), 0, 0)
	rows := collect(t, mj)
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestMergeJoinEmpty(t *testing.T) {
	mj, _, _ := NewSortMergeJoin(
		NewScan(makeTable("a", nil), ""),
		NewScan(makeTable("b", []int64{1}), ""),
		0, 0)
	if rows := collect(t, mj); len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestIndexedNLJoin(t *testing.T) {
	a := []int64{1, 2, 2, 9}
	b := []int64{2, 2, 1}
	j := NewIndexedNLJoin(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""),
		0, 0)
	rows := collect(t, j)
	if int64(len(rows)) != bruteJoinCount(b, a) {
		t.Errorf("rows = %d, want %d", len(rows), bruteJoinCount(b, a))
	}
}

func TestThetaNLJoin(t *testing.T) {
	outer := NewScan(makeTable("a", []int64{1, 2, 3}), "")
	inner := NewScan(makeTable("b", []int64{2, 3}), "")
	sch := outer.Schema().Concat(inner.Schema())
	pred := expr.Compare(expr.LT,
		expr.Col{Index: sch.MustResolve("a", "k")},
		expr.Col{Index: sch.MustResolve("b", "k")})
	j := NewNestedLoopsJoin(outer, inner, pred)
	rows := collect(t, j)
	// pairs with a.k < b.k: (1,2),(1,3),(2,3) = 3
	if len(rows) != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestCrossNLJoin(t *testing.T) {
	j := NewNestedLoopsJoin(
		NewScan(makeTable("a", []int64{1, 2}), ""),
		NewScan(makeTable("b", []int64{10, 20, 30}), ""),
		nil)
	rows := collect(t, j)
	if len(rows) != 6 {
		t.Errorf("rows = %d, want 6", len(rows))
	}
}

func TestNLJoinHooks(t *testing.T) {
	j := NewIndexedNLJoin(
		NewScan(makeTable("a", []int64{1, 2}), ""),
		NewScan(makeTable("b", []int64{1}), ""),
		0, 0)
	var outer, inner int
	j.OnOuterTuple = func(data.Tuple) { outer++ }
	j.OnInnerTuple = func(data.Tuple) { inner++ }
	collect(t, j)
	if outer != 2 || inner != 1 {
		t.Errorf("hooks outer=%d inner=%d", outer, inner)
	}
}

func TestHashAggBasic(t *testing.T) {
	tb := makeTable2("t", [][2]int64{{1, 10}, {1, 20}, {2, 5}, {1, 30}})
	sc := NewScan(tb, "")
	agg := NewHashAgg(sc, []int{0}, []AggSpec{
		{Func: CountStar, Name: "cnt"},
		{Func: Sum, Col: 1, Name: "sum_y"},
		{Func: Min, Col: 1, Name: "min_y"},
		{Func: Max, Col: 1, Name: "max_y"},
		{Func: Avg, Col: 1, Name: "avg_y"},
	})
	rows := collect(t, agg)
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows))
	}
	byKey := map[int64]data.Tuple{}
	for _, r := range rows {
		byKey[r[0].I] = r
	}
	g1 := byKey[1]
	if g1[1].I != 3 || g1[2].F != 60 || g1[3].I != 10 || g1[4].I != 30 || g1[5].F != 20 {
		t.Errorf("group 1 = %v", g1)
	}
	g2 := byKey[2]
	if g2[1].I != 1 || g2[2].F != 5 {
		t.Errorf("group 2 = %v", g2)
	}
	if agg.InputRows() != 4 {
		t.Errorf("InputRows = %d", agg.InputRows())
	}
}

func TestHashAggHook(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1, 1, 2}), "")
	agg := NewHashAgg(sc, []int{0}, []AggSpec{{Func: CountStar}})
	n := 0
	end := false
	agg.OnInput = func(data.Tuple) { n++ }
	agg.OnInputEnd = func() { end = n == 3 }
	collect(t, agg)
	if !end {
		t.Errorf("OnInputEnd fired with n=%d", n)
	}
}

func TestSortAggMatchesHashAgg(t *testing.T) {
	var rows [][2]int64
	for i := int64(0); i < 200; i++ {
		rows = append(rows, [2]int64{i % 17, i})
	}
	tb := makeTable2("t", rows)
	h := NewHashAgg(NewScan(tb, ""), []int{0}, []AggSpec{
		{Func: CountStar, Name: "cnt"}, {Func: Sum, Col: 1, Name: "s"},
	})
	s := NewSortAgg(NewScan(tb, ""), []int{0}, []AggSpec{
		{Func: CountStar, Name: "cnt"}, {Func: Sum, Col: 1, Name: "s"},
	})
	hr, sr := collect(t, h), collect(t, s)
	if len(hr) != len(sr) {
		t.Fatalf("group counts differ: %d vs %d", len(hr), len(sr))
	}
	key := func(r data.Tuple) int64 { return r[0].I }
	sort.Slice(hr, func(i, j int) bool { return key(hr[i]) < key(hr[j]) })
	sort.Slice(sr, func(i, j int) bool { return key(sr[i]) < key(sr[j]) })
	for i := range hr {
		if hr[i][0].I != sr[i][0].I || hr[i][1].I != sr[i][1].I || hr[i][2].F != sr[i][2].F {
			t.Fatalf("group %d: hash %v vs sort %v", i, hr[i], sr[i])
		}
	}
}

func TestMultiColumnGroupBy(t *testing.T) {
	tb := makeTable2("t", [][2]int64{{1, 1}, {1, 1}, {1, 2}, {2, 1}})
	agg := NewHashAgg(NewScan(tb, ""), []int{0, 1}, []AggSpec{{Func: CountStar, Name: "c"}})
	rows := collect(t, agg)
	if len(rows) != 3 {
		t.Errorf("groups = %d, want 3", len(rows))
	}
}

func TestAggNullHandling(t *testing.T) {
	s := data.NewSchema(
		data.Column{Table: "t", Name: "g", Kind: data.KindInt},
		data.Column{Table: "t", Name: "v", Kind: data.KindInt},
	)
	tb := storage.NewTable("t", s)
	tb.MustAppend(data.Tuple{data.Int(1), data.Null()})
	tb.MustAppend(data.Tuple{data.Int(1), data.Int(5)})
	agg := NewHashAgg(NewScan(tb, ""), []int{0}, []AggSpec{
		{Func: CountStar, Name: "star"},
		{Func: Count, Col: 1, Name: "cnt"},
		{Func: Sum, Col: 1, Name: "sum"},
	})
	rows := collect(t, agg)
	if len(rows) != 1 {
		t.Fatalf("groups = %d", len(rows))
	}
	r := rows[0]
	if r[1].I != 2 || r[2].I != 1 || r[3].F != 5 {
		t.Errorf("row = %v", r)
	}
}

func TestRunAndWalk(t *testing.T) {
	j := NewHashJoinOn(
		NewScan(makeTable("a", []int64{1, 2}), ""),
		NewScan(makeTable("b", []int64{1, 2, 2}), ""),
		"a", "k", "b", "k")
	n, err := Run(j)
	if err != nil || n != 3 {
		t.Fatalf("Run = %d, %v", n, err)
	}
	var names []string
	Walk(j, func(op Operator) { names = append(names, op.Name()) })
	if len(names) != 3 {
		t.Errorf("Walk visited %v", names)
	}
}

func TestEmittedCountsEqualGetnextCalls(t *testing.T) {
	// gnm invariant: an operator's Emitted equals the number of non-nil
	// Next() results its parent observed.
	sc := NewScan(makeTable("t", []int64{1, 2, 3}), "")
	f := NewFilter(sc, expr.Compare(expr.GE, expr.Col{Index: 0}, expr.IntLit(2)))
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		tu, err := f.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tu == nil {
			break
		}
		n++
	}
	if int64(n) != f.Stats().Emitted.Load() {
		t.Errorf("parent saw %d, Emitted = %d", n, f.Stats().Emitted.Load())
	}
	if sc.Stats().Emitted.Load() != 3 {
		t.Errorf("scan Emitted = %d", sc.Stats().Emitted.Load())
	}
}

// TestJoinAlgorithmEquivalence: the three equijoin algorithms must agree
// on output multiset for random inputs — the classic engine invariant.
func TestJoinAlgorithmEquivalence(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		na, nb := 100+rng.Intn(400), 100+rng.Intn(400)
		dom := 1 + rng.Intn(60)
		a := make([]int64, na)
		b := make([]int64, nb)
		for i := range a {
			a[i] = int64(rng.Intn(dom))
		}
		for i := range b {
			b[i] = int64(rng.Intn(dom))
		}
		multiset := func(rows []data.Tuple, l, r int) map[[2]int64]int {
			m := map[[2]int64]int{}
			for _, t := range rows {
				m[[2]int64{t[l].I, t[r].I}]++
			}
			return m
		}
		hj := NewHashJoinOn(NewScan(makeTable("a", a), ""), NewScan(makeTable("b", b), ""), "a", "k", "b", "k")
		hjRows := collect(t, hj)
		mj, _, _ := NewSortMergeJoin(NewScan(makeTable("a", a), ""), NewScan(makeTable("b", b), ""), 0, 0)
		mjRows := collect(t, mj)
		nl := NewIndexedNLJoin(NewScan(makeTable("b", b), ""), NewScan(makeTable("a", a), ""), 0, 0)
		nlRows := collect(t, nl)

		h := multiset(hjRows, 0, 1)
		m := multiset(mjRows, 0, 1)
		n := multiset(nlRows, 1, 0) // NL output is outer⧺inner = b⧺a
		if len(h) != len(m) || len(h) != len(n) {
			t.Fatalf("trial %d: key-pair counts differ: %d/%d/%d", trial, len(h), len(m), len(n))
		}
		for k, c := range h {
			if m[k] != c || n[k] != c {
				t.Fatalf("trial %d: pair %v: hash %d merge %d nl %d", trial, k, c, m[k], n[k])
			}
		}
	}
}

func TestOperatorNamesAndAccessors(t *testing.T) {
	sc := NewScan(makeTable("t", []int64{1, 2}), "")
	f := NewFilter(sc, alwaysTrueExpr{})
	if f.Name() != "Filter(true)" || f.Pred() == nil || len(f.Children()) != 1 {
		t.Errorf("filter accessors: %q", f.Name())
	}
	agg := NewHashAgg(NewScan(makeTable("t", []int64{1, 1, 2}), ""), []int{0},
		[]AggSpec{{Func: CountStar}})
	if agg.Name() != "HashAgg([0])" || len(agg.Children()) != 1 ||
		len(agg.GroupBy()) != 1 || agg.Child() == nil {
		t.Errorf("hashagg accessors: %q", agg.Name())
	}
	if agg.GroupsSeen() != 0 {
		t.Error("groups before execution")
	}
	if err := agg.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(agg); err != nil {
		t.Fatal(err)
	}
	if agg.GroupsSeen() != 2 { // inspect before Close releases the table
		t.Errorf("GroupsSeen = %d", agg.GroupsSeen())
	}
	agg.Close()
	sagg := NewSortAgg(NewScan(makeTable("t", []int64{1}), ""), []int{0},
		[]AggSpec{{Func: CountStar}})
	if sagg.Name() != "SortAgg([0])" || sagg.Sorter() == nil ||
		len(sagg.GroupBy()) != 1 || len(sagg.Children()) != 1 {
		t.Errorf("sortagg accessors: %q", sagg.Name())
	}
	for f, want := range map[AggFunc]string{
		CountStar: "COUNT(*)", Count: "COUNT", Sum: "SUM",
		Min: "MIN", Max: "MAX", Avg: "AVG",
	} {
		if f.String() != want {
			t.Errorf("AggFunc(%d).String() = %q", f, f.String())
		}
	}
	nl := NewNestedLoopsJoin(NewScan(makeTable("a", nil), ""), NewScan(makeTable("b", nil), ""), nil)
	if nl.Name() != "NLJoin(cross)" {
		t.Errorf("cross name = %q", nl.Name())
	}
	nl2 := NewNestedLoopsJoin(NewScan(makeTable("a", nil), ""), NewScan(makeTable("b", nil), ""),
		alwaysTrueExpr{})
	if nl2.Name() != "NLJoin(true)" {
		t.Errorf("theta name = %q", nl2.Name())
	}
	inl := NewIndexedNLJoin(NewScan(makeTable("a", nil), ""), NewScan(makeTable("b", nil), ""), 0, 0)
	if inl.Name() != "IndexedNLJoin(a.k = b.k)" || inl.Outer() == nil || inl.Inner() == nil {
		t.Errorf("indexed name = %q", inl.Name())
	}
	mj, ls, rs := NewSortMergeJoin(NewScan(makeTable("a", nil), ""), NewScan(makeTable("b", nil), ""), 0, 0)
	if mj.Name() != "MergeJoin(a.k = b.k)" || ls.Name() != "Sort([0])" || rs == nil {
		t.Errorf("merge names: %q %q", mj.Name(), ls.Name())
	}
	if mj.LeftKey() != 0 || mj.RightKey() != 0 || mj.Left() != Operator(ls) {
		t.Error("merge accessors")
	}
}

func TestSortTuplesByKey(t *testing.T) {
	rows := []data.Tuple{
		{data.Int(3)}, {data.Int(1)}, {data.Int(2)},
	}
	SortTuplesByKey(rows, 0)
	if rows[0][0].I != 1 || rows[2][0].I != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestStatsTotalFloors(t *testing.T) {
	var s Stats
	s.Emitted.Store(10)
	s.SetEstimate(5, "optimizer") // estimate below observed: floor at emitted
	if s.Total() != 10 {
		t.Errorf("Total = %g", s.Total())
	}
	s.SetEstimate(20, "once")
	if s.Total() != 20 {
		t.Errorf("Total = %g", s.Total())
	}
	s.MarkDone()
	if s.Total() != 10 {
		t.Errorf("done Total = %g", s.Total())
	}
}
