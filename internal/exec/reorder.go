package exec

import (
	"fmt"

	"qpi/internal/data"
)

// Reorder permutes the columns of its input: output column i is child
// column Perm()[i]. It is the identity-restoring wrapper the mid-query
// re-optimizer inserts above a restructured join segment — the joins
// below it carry their honest (re-ordered, possibly side-swapped)
// schemas, and one Reorder puts the columns back in the order the rest
// of the plan was compiled against. Schema().Project preserves the
// full Column metadata (table qualifiers included), so name resolution
// above the wrapper is unaffected.
type Reorder struct {
	base
	child Operator
	perm  []int

	bchild BatchOperator
	buf    data.Batch
	arena  []data.Value
}

// NewReorder creates a column permutation over child. perm must be a
// permutation of child's column indexes.
func NewReorder(child Operator, perm []int) *Reorder {
	w := child.Schema().Len()
	if len(perm) != w {
		panic(fmt.Sprintf("exec: NewReorder perm width %d vs schema width %d", len(perm), w))
	}
	seen := make([]bool, w)
	for _, p := range perm {
		if p < 0 || p >= w || seen[p] {
			panic(fmt.Sprintf("exec: NewReorder perm %v is not a permutation of %d columns", perm, w))
		}
		seen[p] = true
	}
	r := &Reorder{child: child, perm: append([]int(nil), perm...)}
	r.schema = child.Schema().Project(r.perm)
	// Cardinality passes through 1:1; seed the belief from the child so
	// progress floors stay sane before the chain estimators re-attach.
	r.stats.SetEstimate(child.Stats().Total(), "optimizer")
	return r
}

// Perm returns the permutation (output column i = child column Perm()[i]).
func (r *Reorder) Perm() []int { return r.perm }

// Name implements Operator.
func (r *Reorder) Name() string { return fmt.Sprintf("Reorder(%d)", len(r.perm)) }

// Children implements Operator.
func (r *Reorder) Children() []Operator { return []Operator{r.child} }

// Open implements Operator.
func (r *Reorder) Open() error { return r.child.Open() }

// Close implements Operator.
func (r *Reorder) Close() error { return r.child.Close() }

// Next implements Operator.
func (r *Reorder) Next() (data.Tuple, error) {
	t, err := r.child.Next()
	if err != nil {
		return nil, err
	}
	if t == nil {
		return r.finish()
	}
	out := make(data.Tuple, len(r.perm))
	for i, p := range r.perm {
		out[i] = t[p]
	}
	return r.emit(out)
}

// NextBatch implements BatchOperator, carving the permuted tuples out
// of one arena allocation per batch.
func (r *Reorder) NextBatch() (data.Batch, error) {
	if r.bchild == nil {
		r.bchild = AsBatch(r.child)
		r.buf = make(data.Batch, 0, data.BatchSize())
	}
	in, err := r.bchild.NextBatch()
	if err != nil {
		return nil, err
	}
	if len(in) == 0 {
		return r.emitBatch(nil)
	}
	w := len(r.perm)
	arena := make([]data.Value, len(in)*w)
	out := r.buf[:0]
	for _, t := range in {
		row := arena[:w:w]
		arena = arena[w:]
		for i, p := range r.perm {
			row[i] = t[p]
		}
		out = append(out, data.Tuple(row))
	}
	r.buf = out
	return r.emitBatch(out)
}
