package exec

import (
	"bufio"
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"qpi/internal/data"
)

func randTable(name string, n, domain int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(domain))
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	tuples := []data.Tuple{
		{data.Int(-7), data.Float(2.5), data.Str("hello"), data.Null()},
		{data.Int(1 << 62), data.Float(-0.0), data.Str(""), data.Int(0)},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, tu := range tuples {
		if err := data.EncodeTuple(w, tu); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	for i, want := range tuples {
		got, err := data.DecodeTuple(r, len(want))
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("tuple %d col %d: %v vs %v", i, c, got[c], want[c])
			}
		}
	}
	if tu, err := data.DecodeTuple(r, 4); tu != nil || err == nil {
		// clean EOF expected
		if err.Error() != "EOF" {
			t.Fatalf("expected EOF, got %v, %v", tu, err)
		}
	}
}

func TestSpilledHashJoinMatchesInMemory(t *testing.T) {
	a := randTable("a", 3000, 100, 1)
	b := randTable("b", 4000, 100, 2)
	run := func(budget int64) (int64, int) {
		j := NewHashJoinOn(
			NewScan(makeTable("a", a), ""),
			NewScan(makeTable("b", b), ""),
			"a", "k", "b", "k")
		if budget > 0 {
			j.SetMemoryBudget(budget)
		}
		n, err := Run(j)
		if err != nil {
			t.Fatal(err)
		}
		return n, j.Spilled()
	}
	plainN, plainSpills := run(0)
	if plainSpills != 0 {
		t.Fatalf("unbudgeted join spilled %d partitions", plainSpills)
	}
	spilledN, spills := run(16 * 1024) // tiny budget: everything spills
	if spills == 0 {
		t.Fatal("budgeted join did not spill")
	}
	if spilledN != plainN {
		t.Fatalf("spilled join produced %d rows, in-memory %d", spilledN, plainN)
	}
}

func TestSpilledTypedJoins(t *testing.T) {
	a := randTable("a", 1000, 40, 3)
	b := randTable("b", 1500, 40, 4)
	for _, jt := range []JoinType{InnerJoin, SemiJoin, AntiJoin, ProbeOuterJoin} {
		run := func(budget int64) int64 {
			j := NewHashJoinMulti(
				NewScan(makeTable("a", a), ""),
				NewScan(makeTable("b", b), ""),
				[]int{0}, []int{0}, jt)
			j.SetMemoryBudget(budget)
			n, err := Run(j)
			if err != nil {
				t.Fatal(err)
			}
			return n
		}
		if mem, spill := run(0), run(8*1024); mem != spill {
			t.Errorf("%v join: in-memory %d vs spilled %d", jt, mem, spill)
		}
	}
}

func TestExternalSortMatchesInMemory(t *testing.T) {
	vals := randTable("t", 5000, 100000, 5)
	run := func(budget int64) ([]int64, int) {
		s := NewSort(NewScan(makeTable("t", vals), ""), 0)
		if budget > 0 {
			s.SetMemoryBudget(budget)
		}
		if err := s.Open(); err != nil {
			t.Fatal(err)
		}
		rows, err := Drain(s)
		if err != nil {
			t.Fatal(err)
		}
		runs := s.Runs()
		s.Close()
		out := make([]int64, len(rows))
		for i, r := range rows {
			out[i] = r[0].I
		}
		return out, runs
	}
	mem, memRuns := run(0)
	if memRuns != 0 {
		t.Fatalf("in-memory sort produced %d runs", memRuns)
	}
	ext, extRuns := run(8 * 1024)
	if extRuns < 2 {
		t.Fatalf("external sort produced only %d runs", extRuns)
	}
	if len(mem) != len(ext) {
		t.Fatalf("lengths differ: %d vs %d", len(mem), len(ext))
	}
	if !sort.SliceIsSorted(ext, func(i, j int) bool { return ext[i] < ext[j] }) {
		t.Fatal("external sort output not sorted")
	}
	for i := range mem {
		if mem[i] != ext[i] {
			t.Fatalf("row %d: %d vs %d", i, mem[i], ext[i])
		}
	}
}

func TestExternalSortDescending(t *testing.T) {
	vals := randTable("t", 2000, 1000, 6)
	s := NewSortDirs(NewScan(makeTable("t", vals), ""), []int{0}, []bool{true})
	s.SetMemoryBudget(4 * 1024)
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	for i := 1; i < len(rows); i++ {
		if rows[i][0].I > rows[i-1][0].I {
			t.Fatalf("not descending at %d", i)
		}
	}
}

func TestBudgetedSortMergeJoinMatches(t *testing.T) {
	a := randTable("a", 2000, 60, 7)
	b := randTable("b", 2500, 60, 8)
	run := func(budget int64) int64 {
		mj, ls, rs := NewSortMergeJoin(
			NewScan(makeTable("a", a), ""),
			NewScan(makeTable("b", b), ""), 0, 0)
		if budget > 0 {
			ls.SetMemoryBudget(budget)
			rs.SetMemoryBudget(budget)
		}
		n, err := Run(mj)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if mem, ext := run(0), run(8*1024); mem != ext {
		t.Fatalf("SMJ in-memory %d vs external %d", mem, ext)
	}
}

// TestSpilledJoinBatchedMatchesTuple runs the same budgeted join in tuple
// mode and batch mode (SetParallelism forces the batched passes; the
// budget forces them serial so spill accounting stays single-threaded) and
// demands identical results, stats and hook counts.
func TestSpilledJoinBatchedMatchesTuple(t *testing.T) {
	a := randTable("a", 3000, 100, 31)
	b := randTable("b", 4000, 100, 32)
	type result struct {
		rows            []data.Tuple
		emitted         int64
		spilled         int
		builds, probes  int
		buildEnd, probe bool
	}
	run := func(workers int) result {
		j := NewHashJoinOn(
			NewScan(makeTable("a", a), ""),
			NewScan(makeTable("b", b), ""),
			"a", "k", "b", "k")
		j.SetMemoryBudget(16 * 1024)
		j.SetParallelism(workers)
		var r result
		j.OnBuildTuple = func(data.Tuple) { r.builds++ }
		j.OnProbeTuple = func(data.Tuple) { r.probes++ }
		j.OnBuildEnd = func() { r.buildEnd = true }
		j.OnProbeEnd = func() { r.probe = true }
		if err := j.Open(); err != nil {
			t.Fatal(err)
		}
		var err error
		if workers > 0 {
			r.rows, err = DrainBatch(j)
		} else {
			r.rows, err = Drain(j)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		r.emitted = j.Stats().Emitted.Load()
		r.spilled = j.Spilled()
		return r
	}
	tup := run(0)
	// workers=4 still runs serial because of the budget (Workers() == 1),
	// exercising the batched spill path.
	bat := run(4)
	if bat.spilled == 0 || tup.spilled == 0 {
		t.Fatalf("expected spills in both modes (tuple %d, batch %d)", tup.spilled, bat.spilled)
	}
	requireSameRows(t, tup.rows, bat.rows, true, "spilled join")
	if tup.emitted != bat.emitted {
		t.Errorf("Emitted %d vs %d", tup.emitted, bat.emitted)
	}
	if bat.builds != len(a) || bat.probes != len(b) || !bat.probe {
		t.Errorf("batched hooks: builds=%d probes=%d end=%v", bat.builds, bat.probes, bat.probe)
	}
	if !bat.buildEnd {
		t.Error("OnBuildEnd did not fire in batched mode")
	}
	if tup.buildEnd {
		t.Error("OnBuildEnd fired in tuple mode (batched-only barrier)")
	}
}

func TestSpilledJoinHooksStillFire(t *testing.T) {
	a := randTable("a", 800, 30, 9)
	b := randTable("b", 900, 30, 10)
	j := NewHashJoinOn(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""),
		"a", "k", "b", "k")
	j.SetMemoryBudget(4 * 1024)
	var builds, probes int
	end := false
	j.OnBuildTuple = func(data.Tuple) { builds++ }
	j.OnProbeTuple = func(data.Tuple) { probes++ }
	j.OnProbeEnd = func() { end = true }
	if _, err := Run(j); err != nil {
		t.Fatal(err)
	}
	if builds != 800 || probes != 900 || !end {
		t.Errorf("hooks: builds=%d probes=%d end=%v", builds, probes, end)
	}
	if j.Spilled() == 0 {
		t.Error("expected spills")
	}
}
