package exec

import (
	"bufio"
	"io"
	"sync"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// Spill I/O buffers are 64 KiB each; a budgeted join can run through
// 2×partitions spill files per execution, so the bufio.Writer/Reader pair
// dominated spill-path allocations. Both are pooled: a spillFile takes a
// writer at creation and a reader at startRead, and returns them — Reset
// to nil first, so a pooled buffer never pins a file descriptor — when the
// file closes. The pools are shared across operators and join-phase
// workers; sync.Pool handles the concurrency.
var (
	spillWriterPool = sync.Pool{
		New: func() any { return bufio.NewWriterSize(nil, 1<<16) },
	}
	spillReaderPool = sync.Pool{
		New: func() any { return bufio.NewReaderSize(nil, 1<<16) },
	}
)

// spillFile is a temporary on-disk run of tuples used by the
// memory-budgeted operators (grace hash join partitions, external sort
// runs). Write everything first, then iterate; the file is deleted on
// close. All I/O goes through an injectable vfs.FS so tests can force
// failures at every phase and count descriptors.
type spillFile struct {
	f     vfs.File
	w     *bufio.Writer
	r     *bufio.Reader
	ncols int
	rows  int64
}

// newSpillFile creates a spill file in the default temp directory via fs
// (nil = the real filesystem).
func newSpillFile(fs vfs.FS, ncols int) (*spillFile, error) {
	if fs == nil {
		fs = vfs.OS{}
	}
	f, err := fs.CreateTemp("qpi-spill-*")
	if err != nil {
		return nil, err
	}
	// Unlink immediately: the file lives until the descriptor closes,
	// and crashes can't leak it.
	fs.Remove(f.Name())
	w := spillWriterPool.Get().(*bufio.Writer)
	w.Reset(f)
	return &spillFile{f: f, w: w, ncols: ncols}, nil
}

// append writes one tuple.
func (s *spillFile) append(t data.Tuple) error {
	s.rows++
	return data.EncodeTuple(s.w, t)
}

// releaseBuffers returns the bufio pair to the pools, detached from the
// file so pooled buffers hold no descriptor (and a stale reader can never
// serve bytes from a previous file).
func (s *spillFile) releaseBuffers() {
	if s.w != nil {
		s.w.Reset(nil)
		spillWriterPool.Put(s.w)
		s.w = nil
	}
	if s.r != nil {
		s.r.Reset(nil)
		spillReaderPool.Put(s.r)
		s.r = nil
	}
}

// startRead flushes writes and rewinds for iteration.
func (s *spillFile) startRead() error {
	if s.w != nil {
		err := s.w.Flush()
		s.w.Reset(nil)
		spillWriterPool.Put(s.w)
		s.w = nil
		if err != nil {
			return err
		}
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.r = spillReaderPool.Get().(*bufio.Reader)
	s.r.Reset(s.f)
	return nil
}

// next returns the next tuple, or (nil, nil) at end of file.
func (s *spillFile) next() (data.Tuple, error) {
	t, err := data.DecodeTuple(s.r, s.ncols)
	if err == io.EOF {
		return nil, nil
	}
	return t, err
}

// readAll materializes the remaining tuples.
func (s *spillFile) readAll() ([]data.Tuple, error) {
	if err := s.startRead(); err != nil {
		return nil, err
	}
	out := make([]data.Tuple, 0, s.rows)
	for {
		t, err := s.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// close deletes the spill file. Idempotent.
func (s *spillFile) close() error {
	if s.f == nil {
		return nil
	}
	s.releaseBuffers()
	err := s.f.Close()
	s.f = nil
	return err
}
