package exec

import (
	"bufio"
	"io"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// spillFile is a temporary on-disk run of tuples used by the
// memory-budgeted operators (grace hash join partitions, external sort
// runs). Write everything first, then iterate; the file is deleted on
// close. All I/O goes through an injectable vfs.FS so tests can force
// failures at every phase and count descriptors.
type spillFile struct {
	f     vfs.File
	w     *bufio.Writer
	r     *bufio.Reader
	ncols int
	rows  int64
}

// newSpillFile creates a spill file in the default temp directory via fs
// (nil = the real filesystem).
func newSpillFile(fs vfs.FS, ncols int) (*spillFile, error) {
	if fs == nil {
		fs = vfs.OS{}
	}
	f, err := fs.CreateTemp("qpi-spill-*")
	if err != nil {
		return nil, err
	}
	// Unlink immediately: the file lives until the descriptor closes,
	// and crashes can't leak it.
	fs.Remove(f.Name())
	return &spillFile{f: f, w: bufio.NewWriterSize(f, 1<<16), ncols: ncols}, nil
}

// append writes one tuple.
func (s *spillFile) append(t data.Tuple) error {
	s.rows++
	return data.EncodeTuple(s.w, t)
}

// startRead flushes writes and rewinds for iteration.
func (s *spillFile) startRead() error {
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return err
		}
		s.w = nil
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.r = bufio.NewReaderSize(s.f, 1<<16)
	return nil
}

// next returns the next tuple, or (nil, nil) at end of file.
func (s *spillFile) next() (data.Tuple, error) {
	t, err := data.DecodeTuple(s.r, s.ncols)
	if err == io.EOF {
		return nil, nil
	}
	return t, err
}

// readAll materializes the remaining tuples.
func (s *spillFile) readAll() ([]data.Tuple, error) {
	if err := s.startRead(); err != nil {
		return nil, err
	}
	out := make([]data.Tuple, 0, s.rows)
	for {
		t, err := s.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// close deletes the spill file. Idempotent.
func (s *spillFile) close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
