package exec

import (
	"bufio"
	"io"
	"sync"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// Spill I/O buffers are 64 KiB each; a budgeted join can run through
// 2×partitions spill files per execution, so the bufio.Writer/Reader pair
// dominated spill-path allocations. Both are pooled: a spillFile takes a
// writer at creation and a reader at startRead, and returns them — Reset
// to nil first, so a pooled buffer never pins a file descriptor — when the
// file closes. The pools are shared across operators and join-phase
// workers; sync.Pool handles the concurrency.
var (
	spillWriterPool = sync.Pool{
		New: func() any { return bufio.NewWriterSize(nil, 1<<16) },
	}
	spillReaderPool = sync.Pool{
		New: func() any { return bufio.NewReaderSize(nil, 1<<16) },
	}
)

// spillFile is a temporary on-disk run of tuples used by the
// memory-budgeted operators (grace hash join partitions, external sort
// runs). Write everything first, then iterate; the file is deleted on
// close. All I/O goes through an injectable vfs.FS so tests can force
// failures at every phase and count descriptors.
type spillFile struct {
	f     vfs.File
	w     *bufio.Writer
	r     *bufio.Reader
	ncols int
	rows  int64

	// Columnar frame mode (setColumnar): append buffers tuples and
	// flushes them to disk as columnar frames of up to colFrameRows rows
	// (data.EncodeColFrame); next decodes one frame at a time and serves
	// its rows sequentially. The scratch ColBatches are pooled.
	col     bool
	pending data.Batch
	enc     *data.ColBatch
	dec     *data.ColBatch
	decRows data.Batch
	decPos  int

	// Lane-native appends (appendColRow/appendColAll) buffer rows in pcol
	// — a pooled lane batch filled by typed lane-to-lane copies, no tuple
	// materialization — and flush it as columnar frames. selWin is the
	// selection-window scratch for chunking a whole partition dump.
	pcol   *data.ColBatch
	selWin []int32
}

// colFrameRows is the number of tuples per columnar spill frame: large
// enough to amortize the frame header and give the typed spans some
// length, small enough that a partially filled partition flushes
// promptly.
const colFrameRows = 256

// setColumnar switches the file to the columnar frame format; must be
// called before the first append.
func (s *spillFile) setColumnar() { s.col = true }

// newSpillFile creates a spill file in the default temp directory via fs
// (nil = the real filesystem).
func newSpillFile(fs vfs.FS, ncols int) (*spillFile, error) {
	if fs == nil {
		fs = vfs.OS{}
	}
	f, err := fs.CreateTemp("qpi-spill-*")
	if err != nil {
		return nil, err
	}
	// Unlink immediately: the file lives until the descriptor closes,
	// and crashes can't leak it.
	fs.Remove(f.Name())
	w := spillWriterPool.Get().(*bufio.Writer)
	w.Reset(f)
	return &spillFile{f: f, w: w, ncols: ncols}, nil
}

// append writes one tuple (columnar mode: buffers it toward the next
// frame flush).
func (s *spillFile) append(t data.Tuple) error {
	s.rows++
	if !s.col {
		return data.EncodeTuple(s.w, t)
	}
	s.pending = append(s.pending, t)
	if len(s.pending) >= colFrameRows {
		return s.flushFrame()
	}
	return nil
}

// flushFrame writes the buffered tuples as one columnar frame.
func (s *spillFile) flushFrame() error {
	if len(s.pending) == 0 {
		return nil
	}
	if s.enc == nil {
		s.enc = data.GetColBatch()
	}
	s.enc.SetRows(s.pending, s.ncols)
	err := data.EncodeColFrame(s.w, s.enc)
	s.pending = s.pending[:0]
	return err
}

// appendColRow writes one row of src lane-to-lane toward the next frame
// flush (columnar mode only).
func (s *spillFile) appendColRow(src *data.ColBatch, i int) error {
	s.rows++
	if s.pcol == nil {
		s.pcol = data.GetColBatch()
		s.pcol.BeginBuild(s.ncols)
	}
	s.pcol.AppendFrom(src, i)
	if s.pcol.NRows >= colFrameRows {
		return s.flushColLanes()
	}
	return nil
}

// flushColLanes writes the buffered lane rows as one columnar frame.
func (s *spillFile) flushColLanes() error {
	if s.pcol == nil || s.pcol.NRows == 0 {
		return nil
	}
	err := data.EncodeColFrame(s.w, s.pcol)
	s.pcol.BeginBuild(s.ncols)
	return err
}

// appendColAll dumps an entire partition lane batch as columnar frames,
// windowed through the selection vector so decode buffers stay bounded
// at colFrameRows. Partition lane batches are dense (built row-append by
// the scatter), so installing a temporary Sel window is safe; it is
// cleared before returning.
func (s *spillFile) appendColAll(cb *data.ColBatch) error {
	for start := 0; start < cb.NRows; start += colFrameRows {
		end := start + colFrameRows
		if end > cb.NRows {
			end = cb.NRows
		}
		s.selWin = s.selWin[:0]
		for i := start; i < end; i++ {
			s.selWin = append(s.selWin, int32(i))
		}
		cb.Sel = s.selWin
		err := data.EncodeColFrame(s.w, cb)
		if err != nil {
			cb.Sel = nil
			return err
		}
	}
	cb.Sel = nil
	s.rows += int64(cb.NRows)
	return nil
}

// nextColFrame decodes the next columnar frame into dst, reusing its
// lanes; io.EOF at end of file.
func (s *spillFile) nextColFrame(dst *data.ColBatch) error {
	return data.DecodeColFrame(s.r, s.ncols, dst)
}

// readAllCol reads every remaining frame back into dst's lanes.
func (s *spillFile) readAllCol(dst *data.ColBatch) error {
	if err := s.startRead(); err != nil {
		return err
	}
	dst.BeginBuild(s.ncols)
	if s.dec == nil {
		s.dec = data.GetColBatch()
	}
	for {
		err := data.DecodeColFrame(s.r, s.ncols, s.dec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		dst.AppendBatchFrom(s.dec)
	}
}

// releaseBuffers returns the bufio pair to the pools, detached from the
// file so pooled buffers hold no descriptor (and a stale reader can never
// serve bytes from a previous file).
func (s *spillFile) releaseBuffers() {
	if s.w != nil {
		s.w.Reset(nil)
		spillWriterPool.Put(s.w)
		s.w = nil
	}
	if s.r != nil {
		s.r.Reset(nil)
		spillReaderPool.Put(s.r)
		s.r = nil
	}
}

// startRead flushes writes and rewinds for iteration.
func (s *spillFile) startRead() error {
	if s.col && s.w != nil {
		if err := s.flushFrame(); err != nil {
			return err
		}
		s.pending = nil
		if err := s.flushColLanes(); err != nil {
			return err
		}
	}
	if s.w != nil {
		err := s.w.Flush()
		s.w.Reset(nil)
		spillWriterPool.Put(s.w)
		s.w = nil
		if err != nil {
			return err
		}
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.r = spillReaderPool.Get().(*bufio.Reader)
	s.r.Reset(s.f)
	return nil
}

// next returns the next tuple, or (nil, nil) at end of file.
func (s *spillFile) next() (data.Tuple, error) {
	if s.col {
		return s.nextCol()
	}
	t, err := data.DecodeTuple(s.r, s.ncols)
	if err == io.EOF {
		return nil, nil
	}
	return t, err
}

// nextCol serves tuples out of decoded columnar frames.
func (s *spillFile) nextCol() (data.Tuple, error) {
	for s.decPos >= len(s.decRows) {
		if s.dec == nil {
			s.dec = data.GetColBatch()
		}
		err := data.DecodeColFrame(s.r, s.ncols, s.dec)
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		s.decRows = s.dec.ToTuples(s.decRows[:0])
		s.decPos = 0
	}
	t := s.decRows[s.decPos]
	s.decPos++
	return t, nil
}

// readAll materializes the remaining tuples.
func (s *spillFile) readAll() ([]data.Tuple, error) {
	if err := s.startRead(); err != nil {
		return nil, err
	}
	out := make([]data.Tuple, 0, s.rows)
	for {
		t, err := s.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// close deletes the spill file. Idempotent.
func (s *spillFile) close() error {
	if s.f == nil {
		return nil
	}
	if s.enc != nil {
		data.PutColBatch(s.enc)
		s.enc = nil
	}
	if s.dec != nil {
		data.PutColBatch(s.dec)
		s.dec = nil
	}
	if s.pcol != nil {
		data.PutColBatch(s.pcol)
		s.pcol = nil
	}
	s.pending, s.decRows = nil, nil
	s.releaseBuffers()
	err := s.f.Close()
	s.f = nil
	return err
}
