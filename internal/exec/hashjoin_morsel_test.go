package exec

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// Tests for the morsel-driven partition passes. Multiset equivalence
// across all modes lives in joinmodes_test and internal/difftest; this
// file pins the contracts around them: pass engagement and fallback
// rules, the scan punctuation/stats contract under concurrent morsel
// drains, cancellation mid-morsel, spill faults on the fallback path,
// goroutine hygiene, and the batch-size knob race.

// morselJoin builds a join over two multi-block tables with morsel-driven
// scans: single-block morsels so even these tables split into many
// concurrent claims.
func morselJoin(workers int, columnar bool, seed int64) *HashJoin {
	rng := rand.New(rand.NewSource(seed))
	j := NewHashJoinMulti(
		NewScan(kvTable("b", randKeys(rng, 400, 37, 0.15)), ""),
		NewScan(kvTable("p", randKeys(rng, 600, 37, 0.15)), ""),
		[]int{0}, []int{0}, InnerJoin,
	)
	j.SetParallelism(workers)
	j.SetMorsel(true).SetMorselBlocks(1)
	j.SetColumnar(columnar)
	return j
}

// TestMorselPassEngages: with morsel mode on and eligible scan children,
// both partition passes must actually run morselized (the scans end the
// pass morsel-drained), the output must match the serial run's multiset,
// and the worker-indexed batch hooks must collectively see every input
// row with worker indexes inside [0, Workers).
func TestMorselPassEngages(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		rng := rand.New(rand.NewSource(5))
		build := randKeys(rng, 400, 37, 0.15)
		probe := randKeys(rng, 600, 37, 0.15)
		want := refJoin(build, probe, InnerJoin)

		j := NewHashJoinMulti(
			NewScan(kvTable("b", build), ""),
			NewScan(kvTable("p", probe), ""),
			[]int{0}, []int{0}, InnerJoin,
		)
		j.SetParallelism(3)
		j.SetMorsel(true).SetMorselBlocks(1)
		j.SetColumnar(columnar)

		var buildSeen, probeSeen atomic.Int64
		count := func(seen *atomic.Int64) func(int, *data.ColBatch) {
			return func(w int, cb *data.ColBatch) {
				if w < 0 || w >= j.Workers() {
					t.Errorf("columnar hook fired with worker %d outside [0,%d)", w, j.Workers())
				}
				seen.Add(int64(cb.Live()))
			}
		}
		countRow := func(seen *atomic.Int64) func(int, data.Batch) {
			return func(w int, b data.Batch) {
				if w < 0 || w >= j.Workers() {
					t.Errorf("batch hook fired with worker %d outside [0,%d)", w, j.Workers())
				}
				seen.Add(int64(len(b)))
			}
		}
		if columnar {
			j.OnBuildColBatch = count(&buildSeen)
			j.OnProbeColBatch = count(&probeSeen)
		} else {
			j.OnBuildBatch = countRow(&buildSeen)
			j.OnProbeBatch = countRow(&probeSeen)
		}

		equalMultisets(t, "morsel", drainMode(t, j, !columnar, columnar), want)
		bs, ps := j.build.(*Scan), j.probe.(*Scan)
		if !bs.morselDrained || !ps.morselDrained {
			t.Fatalf("columnar=%v: morsel pass never engaged (build drained=%v probe drained=%v)",
				columnar, bs.morselDrained, ps.morselDrained)
		}
		if buildSeen.Load() != 400 || probeSeen.Load() != 600 {
			t.Fatalf("columnar=%v: worker hooks saw %d build / %d probe rows, want 400/600",
				columnar, buildSeen.Load(), probeSeen.Load())
		}
	}
}

// TestMorselEligibility pins the fallback rules: sampled scans, memory
// budgets, single workers, morsel mode off, and non-scan children must
// all refuse to morselize.
func TestMorselEligibility(t *testing.T) {
	j := morselJoin(3, false, 1)
	sc := j.build.(*Scan)
	if j.morselScanOf(sc) == nil {
		t.Fatal("eligible scan refused")
	}
	sc.SampleFraction = 0.5
	if j.morselScanOf(sc) != nil {
		t.Fatal("sampled scan accepted: the sample prefix order is serial")
	}
	sc.SampleFraction = 0

	j.SetMemoryBudget(128)
	if j.morselScanOf(sc) != nil {
		t.Fatal("budgeted join accepted: spill accounting is single-threaded")
	}
	j.SetMemoryBudget(0)

	j.SetParallelism(1)
	if j.morselScanOf(sc) != nil {
		t.Fatal("single-worker join accepted")
	}
	j.SetParallelism(3)

	j.SetMorsel(false)
	if j.morselScanOf(sc) != nil {
		t.Fatal("morsel mode off but scan accepted")
	}
	j.SetMorsel(true)

	inner := morselJoin(3, false, 2)
	if j.morselScanOf(inner) != nil {
		t.Fatal("non-scan child accepted")
	}
}

// TestMorselScanPunctuationContract: after a morsel pass each scan's
// stats must look exactly like a completed sequential scan — Emitted
// equals InputTotal with no double-counting across workers, the scan is
// done, OnSampleEnd never fired, and a stray post-pass Next/NextBatch
// returns end-of-stream instead of re-emitting the table.
func TestMorselScanPunctuationContract(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		j := morselJoin(4, columnar, 11)
		bs, ps := j.build.(*Scan), j.probe.(*Scan)
		sampleEnds := 0
		bs.OnSampleEnd = func() { sampleEnds++ }
		ps.OnSampleEnd = func() { sampleEnds++ }
		drainMode(t, j, !columnar, columnar)

		for _, sc := range []*Scan{bs, ps} {
			if got, want := sc.Stats().Emitted.Load(), sc.Stats().InputTotal; got != want {
				t.Fatalf("columnar=%v: %s emitted %d, input total %d", columnar, sc.Name(), got, want)
			}
			if !sc.Stats().IsDone() {
				t.Fatalf("columnar=%v: %s not done after morsel pass", columnar, sc.Name())
			}
			if sc.Stats().Batches.Load() == 0 {
				t.Fatalf("columnar=%v: %s recorded no batches", columnar, sc.Name())
			}
			if tu, err := sc.Next(); err != nil || tu != nil {
				t.Fatalf("columnar=%v: post-pass Next = (%v, %v), want (nil, nil)", columnar, tu, err)
			}
			if b, err := sc.NextBatch(); err != nil || b != nil {
				t.Fatalf("columnar=%v: post-pass NextBatch = (%v, %v), want (nil, nil)", columnar, b, err)
			}
		}
		if sampleEnds != 0 {
			t.Fatalf("columnar=%v: OnSampleEnd fired %d times on sequential scans", columnar, sampleEnds)
		}
	}
}

// TestCancelMidMorselScan cancels from the scan's OnTuple hook while
// morsel workers are mid-claim: the drain must return context.Canceled
// and every scan worker must be reaped. (The Cancel prefix places this
// in the leakcheck suite.)
func TestCancelMidMorselScan(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		before := runtime.NumGoroutine()
		j := morselJoin(4, columnar, 23)
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		j.probe.(*Scan).OnTuple = func(data.Tuple) {
			// Fires under the pass hook mutex; cancel partway through the
			// probe pass so workers still hold unclaimed morsels.
			if n++; n == 100 {
				cancel()
			}
		}
		Bind(j, ctx)
		var err error
		if columnar {
			err = drainColErr(j)
		} else {
			_, err = RunBatch(j)
		}
		cancel()
		expectCanceled(t, err)
		expectNoExtraGoroutines(t, before)
	}
}

// drainColErr drains the columnar path returning only the error.
func drainColErr(j *HashJoin) error {
	if err := j.Open(); err != nil {
		return err
	}
	_, err := DrainCol(AsColOperator(j))
	if cerr := j.Close(); err == nil {
		err = cerr
	}
	return err
}

// TestSpillFaultMorselFallback: a morsel-enabled join with a memory
// budget falls back to the serial scatter (spill accounting is
// single-threaded); injected write faults during that scatter must
// surface cleanly with every descriptor closed — the morsel knob must
// not disturb the spill fault paths.
func TestSpillFaultMorselFallback(t *testing.T) {
	before := runtime.NumGoroutine()
	fs := vfs.NewFaultFS(nil).FailAt(vfs.OpWrite, 1)
	j := morselJoin(4, false, 29)
	j.SetMemoryBudget(512)
	j.SetSpillFS(fs)
	_, err := RunBatch(j)
	expectInjectedIO(t, fs, err)
	expectNoExtraGoroutines(t, before)
}

// TestMorselLeakOnCleanRun: a successful morsel run leaves no goroutines
// behind (the Leak suffix places this in the leakcheck suite).
func TestMorselLeakOnCleanRun(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, columnar := range []bool{false, true} {
		j := morselJoin(4, columnar, 41)
		drainMode(t, j, !columnar, columnar)
	}
	expectNoExtraGoroutines(t, before)
}

// TestBatchSizeKnobStartRace: the data.BatchSize knob is written by
// bench sweeps while queries run; the knob must be safely readable from
// concurrent scan workers (the knob was a plain int — this is the -race
// witness for the atomic fix). Restores the default on exit.
func TestBatchSizeKnobStartRace(t *testing.T) {
	defer data.SetBatchSize(data.DefaultBatchSize)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{64, 256, 1024, 100}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				data.SetBatchSize(sizes[i%len(sizes)])
			}
		}
	}()
	for i := 0; i < 4; i++ {
		j := morselJoin(3, i%2 == 1, int64(50+i))
		drainMode(t, j, i%2 == 0, i%2 == 1)
	}
	close(stop)
	wg.Wait()
}
