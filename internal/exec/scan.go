package exec

import (
	"fmt"

	"qpi/internal/data"
	"qpi/internal/storage"
)

// Scan reads a stored table. When SampleFraction > 0 the scan delivers a
// block-level random sample of that fraction of the table first and the
// remaining blocks afterwards (excluding sampled blocks), firing
// OnSampleEnd as the punctuation between the two phases — the paper's
// modified table scan (§5 "Implementation").
type Scan struct {
	base
	table *storage.Table
	alias string

	// SampleFraction in [0,1] selects the size of the random block sample
	// delivered first; 0 scans sequentially.
	SampleFraction float64
	// Seed makes the block sample reproducible.
	Seed int64

	// OnTuple fires for every emitted tuple, before it is returned.
	OnTuple func(data.Tuple)
	// OnSampleEnd fires once, after the last tuple of the random sample.
	OnSampleEnd func()

	it         *storage.Iterator
	sampleLeft int
	punctuated bool
	spanEnded  bool
	// morselDrained marks that a morsel pass consumed the whole table; a
	// later Next/NextBatch on the same scan must not restart the (never
	// advanced) iterator and re-emit the tuples.
	morselDrained bool
	batch         data.Batch
	colBuf        data.ColBatch
}

// NewScan creates a sequential scan over a table. alias renames the output
// columns ("" keeps the stored table name).
func NewScan(t *storage.Table, alias string) *Scan {
	s := &Scan{table: t, alias: alias}
	sch := t.Schema()
	if alias != "" && alias != t.Name() {
		sch = sch.Rename(alias)
	}
	s.schema = sch
	s.stats.InputTotal = int64(t.NumRows())
	s.stats.SetEstimate(float64(t.NumRows()), "exact")
	return s
}

// Table returns the underlying stored table.
func (s *Scan) Table() *storage.Table { return s.table }

// Name implements Operator.
func (s *Scan) Name() string {
	n := s.table.Name()
	if s.alias != "" && s.alias != n {
		n += " AS " + s.alias
	}
	return fmt.Sprintf("Scan(%s)", n)
}

// Children implements Operator.
func (s *Scan) Children() []Operator { return nil }

// Open implements Operator.
func (s *Scan) Open() error {
	if s.SampleFraction < 0 || s.SampleFraction > 1 {
		return fmt.Errorf("exec: scan %s: sample fraction %g out of [0,1]",
			s.Name(), s.SampleFraction)
	}
	if s.SampleFraction > 0 {
		s.it = s.table.SampleOrder(s.SampleFraction, s.Seed)
	} else {
		s.it = s.table.SequentialOrder()
	}
	s.sampleLeft = s.it.SampleBoundary()
	s.punctuated = s.sampleLeft == 0
	s.traceBegin("scan")
	return nil
}

// punctuate fires the sample-end hook and mark exactly once, at the
// boundary between the random sample and the sequential remainder.
func (s *Scan) punctuate() {
	s.punctuated = true
	s.traceMark("sample-end", s.stats.Emitted.Load(), 0)
	if s.OnSampleEnd != nil {
		s.OnSampleEnd()
	}
}

// endSpan closes the scan span exactly once, when the table is exhausted.
func (s *Scan) endSpan() {
	if !s.spanEnded {
		s.spanEnded = true
		s.traceEnd("scan", s.stats.Emitted.Load(), 0, 0)
	}
}

// Next implements Operator.
func (s *Scan) Next() (data.Tuple, error) {
	if err := s.pollCtx(); err != nil {
		return nil, err
	}
	if s.morselDrained {
		s.endSpan()
		return s.finish()
	}
	t := s.it.Next()
	if t == nil {
		if !s.punctuated {
			s.punctuate()
		}
		s.endSpan()
		return s.finish()
	}
	if s.OnTuple != nil {
		s.OnTuple(t)
	}
	if !s.punctuated {
		s.sampleLeft--
		if s.sampleLeft == 0 {
			s.punctuate()
		}
	}
	return s.emit(t)
}

// NextBatch implements BatchOperator: it moves up to a batch of tuples
// per call with identical hook semantics to Next — OnTuple fires per
// tuple and the sample punctuation fires mid-batch at exactly the sample
// boundary, so estimators observe the same stream in either mode.
func (s *Scan) NextBatch() (data.Batch, error) {
	if err := s.ctxErr(); err != nil {
		return nil, err
	}
	if s.morselDrained {
		s.endSpan()
		s.stats.MarkDone()
		return nil, nil
	}
	if s.batch == nil {
		s.batch = make(data.Batch, 0, data.BatchSize())
	}
	b := s.batch[:0]
	for len(b) < cap(b) {
		t := s.it.Next()
		if t == nil {
			if !s.punctuated {
				s.punctuate()
			}
			s.stats.MarkDone()
			break
		}
		if s.OnTuple != nil {
			s.OnTuple(t)
		}
		if !s.punctuated {
			s.sampleLeft--
			if s.sampleLeft == 0 {
				s.punctuate()
			}
		}
		b = append(b, t)
	}
	s.batch = b
	bt, err := s.emitBatch(b)
	if bt == nil && err == nil {
		s.endSpan()
	}
	return bt, err
}

// Close implements Operator.
func (s *Scan) Close() error {
	s.it = nil
	return nil
}

// Morsel-driven parallel scan support. A hash join's partition pass may
// decompose an eligible scan into block-range morsels and drain them from
// N workers concurrently (see hashjoin_morsel.go). The scan's punctuation
// and accounting contract under concurrency:
//
//   - InputTotal and the "exact" estimate are plan-time fields written
//     once in NewScan and only read during the pass;
//   - Emitted/Batches are counted atomically per flushed worker batch, so
//     Fraction stays monotone under any interleaving;
//   - OnSampleEnd cannot fire: only sequential scans (SampleFraction == 0)
//     are morselable, and Open marks those punctuated from the start — a
//     sampled scan's global sample-prefix order is inherently serial;
//   - MarkDone and the trace span end fire exactly once, on the
//     coordinating goroutine, after every worker has joined
//     (finishMorselPass).

// morselable reports whether the scan can be decomposed into concurrent
// block-range morsels: only sequential scans qualify.
func (s *Scan) morselable() bool { return s.SampleFraction == 0 }

// beginMorselPass hands out the claim source for a concurrent pass. The
// caller must drain it with drainMorsels workers and then call
// finishMorselPass exactly once after they join.
func (s *Scan) beginMorselPass(blocksPerMorsel int) *storage.MorselSource {
	return s.table.Morsels(blocksPerMorsel)
}

// drainMorsels is one worker's scan loop: claim a morsel, stream its
// blocks through a worker-private batch buffer, hand each full batch to
// scatter. The batch is valid only for the duration of the scatter call
// (the data.Batch reuse contract). Cancellation is polled once per morsel
// claim, bounding the overrun after ctx expiry to one morsel per worker.
func (s *Scan) drainMorsels(src *storage.MorselSource, scatter func(data.Batch) error) error {
	buf := make(data.Batch, 0, data.BatchSize())
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		s.stats.Emitted.Add(int64(len(buf)))
		s.stats.Batches.Add(1)
		err := scatter(buf)
		buf = buf[:0]
		return err
	}
	for {
		m, ok := src.Claim()
		if !ok {
			break
		}
		if err := s.ctxErr(); err != nil {
			return err
		}
		for b := m.Lo; b < m.Hi; b++ {
			for _, t := range s.table.Block(b).Tuples {
				buf = append(buf, t)
				if len(buf) == cap(buf) {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
	}
	return flush()
}

// finishMorselPass seals the scan after a concurrent pass: the done mark
// and span end fire exactly once, and the scan is pinned exhausted so a
// stray Next/NextBatch cannot re-emit the table.
func (s *Scan) finishMorselPass() {
	s.morselDrained = true
	s.stats.MarkDone()
	s.endSpan()
}

// Fraction returns the fraction of the table emitted so far, used by the
// driver-node (dne) and byte estimators.
func (s *Scan) Fraction() float64 {
	if s.stats.InputTotal == 0 {
		return 1
	}
	return float64(s.stats.Emitted.Load()) / float64(s.stats.InputTotal)
}
