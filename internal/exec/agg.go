package exec

import (
	"fmt"
	"sort"

	"qpi/internal/data"
	"qpi/internal/hashtab"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	CountStar AggFunc = iota
	Count
	Sum
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	switch f {
	case CountStar:
		return "COUNT(*)"
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return "AVG"
	}
}

// AggSpec requests one aggregate over an input column (Col ignored for
// COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Col  int
	Name string
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sum   float64
	min   data.Value
	max   data.Value
}

func (s *aggState) add(f AggFunc, v data.Value) {
	if f == CountStar {
		s.count++
		return
	}
	if v.IsNull() {
		return
	}
	s.count++
	s.sum += v.AsFloat()
	if s.min.IsNull() || data.Compare(v, s.min) < 0 {
		s.min = v
	}
	if s.max.IsNull() || data.Compare(v, s.max) > 0 {
		s.max = v
	}
}

func (s *aggState) result(f AggFunc) data.Value {
	switch f {
	case CountStar, Count:
		return data.Int(s.count)
	case Sum:
		if s.count == 0 {
			return data.Null()
		}
		return data.Float(s.sum)
	case Min:
		return s.min
	case Max:
		return s.max
	default: // Avg
		if s.count == 0 {
			return data.Null()
		}
		return data.Float(s.sum / float64(s.count))
	}
}

// aggSchema builds the output schema of a grouping operator.
func aggSchema(in *data.Schema, groupBy []int, aggs []AggSpec) *data.Schema {
	cols := make([]data.Column, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		cols = append(cols, in.Cols[g])
	}
	for _, a := range aggs {
		kind := data.KindFloat
		if a.Func == Count || a.Func == CountStar {
			kind = data.KindInt
		} else if a.Func == Min || a.Func == Max {
			kind = in.Cols[a.Col].Kind
		}
		name := a.Name
		if name == "" {
			name = a.Func.String()
		}
		cols = append(cols, data.Column{Name: name, Kind: kind})
	}
	return data.NewSchema(cols...)
}

// GroupKey builds a comparable key for a group (single-column groups use
// the value directly; multi-column groups concatenate string renderings,
// which is slower but correct). It is exported for the estimation
// framework, which must group exactly the way the operators do.
func GroupKey(t data.Tuple, groupBy []int) data.Value {
	if len(groupBy) == 1 {
		return t[groupBy[0]]
	}
	key := ""
	for i, g := range groupBy {
		if i > 0 {
			key += "\x00"
		}
		key += t[g].String()
	}
	return data.Str(key)
}

// HashAgg implements hash-based grouping: the input is fully read and
// partitioned by group key (firing OnInput per tuple — where the distinct-
// value estimators attach), then groups are computed and emitted.
type HashAgg struct {
	base
	child   Operator
	groupBy []int
	aggs    []AggSpec

	// OnInput fires for every input tuple during the blocking read.
	OnInput func(data.Tuple)
	// OnInputGroupCount fires for every input tuple with the tuple's
	// group's new observation count — n=1 means a new group. It rides the
	// group lookup the aggregation performs anyway, so distinct-value
	// estimators can update without any hashing of their own (the paper's
	// "interleaved with the actual partitioning to keep overheads low").
	OnInputGroupCount func(n int64)
	// OnInputEnd fires when the input is exhausted.
	OnInputEnd func()
	// OnInputGroupCounts is the span-at-a-time form of OnInputGroupCount:
	// during a columnar input pass the per-row counts of one batch are
	// collected and delivered in a single call at the batch boundary,
	// suppressing the per-row hook for those rows. Row-at-a-time passes
	// ignore it. Consumers must process the span in order to stay
	// state-identical with the per-row hook (see
	// core.AggEstimator.ObserveGroupCounts).
	OnInputGroupCounts func(ns []int64)

	// Integer group keys — the dominant case — live in an open-addressing
	// table; everything else shares a Value-keyed map. order preserves
	// first-seen emission order across both.
	intGroups hashtab.I64Map[*groupState]
	groups    map[data.Value]*groupState
	order     []*groupState
	pos       int
	computed  bool
	inputRows int64
	buf       data.Batch
	spanEnded bool

	// Columnar input state: colBuf re-exposes emitted group batches,
	// countsBuf accumulates one batch's group counts for the span hook,
	// collectCounts suppresses the per-row count hook while a span is
	// being collected.
	colBuf        data.ColBatch
	countsBuf     []int64
	collectCounts bool
}

// endEmitSpan closes the emit span exactly once, when all groups are out.
func (a *HashAgg) endEmitSpan() {
	if !a.spanEnded {
		a.spanEnded = true
		a.traceEnd("emit", a.stats.Emitted.Load(), 0, 0)
	}
}

// groupState is one group's accumulators plus its observation count. The
// accumulators are stored inline (one backing array per group, not one
// allocation per aggregate).
type groupState struct {
	states []aggState
	repr   data.Tuple
	n      int64
}

// NewHashAgg groups child by the groupBy column indexes and computes aggs.
func NewHashAgg(child Operator, groupBy []int, aggs []AggSpec) *HashAgg {
	a := &HashAgg{child: child, groupBy: groupBy, aggs: aggs}
	a.schema = aggSchema(child.Schema(), groupBy, aggs)
	return a
}

// Name implements Operator.
func (a *HashAgg) Name() string { return fmt.Sprintf("HashAgg(%v)", a.groupBy) }

// Children implements Operator.
func (a *HashAgg) Children() []Operator { return []Operator{a.child} }

// GroupBy returns the grouping column indexes.
func (a *HashAgg) GroupBy() []int { return a.groupBy }

// Child returns the input operator.
func (a *HashAgg) Child() Operator { return a.child }

// Open implements Operator.
func (a *HashAgg) Open() error { return a.child.Open() }

// Next implements Operator.
func (a *HashAgg) Next() (data.Tuple, error) {
	if !a.computed {
		if err := a.consume(); err != nil {
			return nil, err
		}
	}
	if a.pos >= len(a.order) {
		a.endEmitSpan()
		return a.finish()
	}
	gs := a.order[a.pos]
	a.pos++
	return a.emit(a.groupTuple(gs))
}

func (a *HashAgg) consume() error {
	a.initGroups()
	a.traceBegin("input")
	for {
		if err := a.pollCtx(); err != nil {
			return err
		}
		t, err := a.child.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		a.observe(t)
	}
	a.traceEnd("input", a.inputRows, 0, 0)
	a.traceBegin("emit")
	if a.OnInputEnd != nil {
		a.OnInputEnd()
	}
	a.computed = true
	return nil
}

// consumeBatched is consume driven through the child's batch path. The
// per-tuple hooks still fire for every input tuple, on this goroutine, so
// estimator behaviour is identical in both modes.
func (a *HashAgg) consumeBatched() error {
	a.initGroups()
	a.traceBegin("input")
	in := AsBatch(a.child)
	for {
		if err := a.ctxErr(); err != nil {
			return err
		}
		b, err := in.NextBatch()
		if err != nil {
			return err
		}
		if len(b) == 0 {
			break
		}
		for _, t := range b {
			a.observe(t)
		}
	}
	a.traceEnd("input", a.inputRows, 0, 0)
	a.traceBegin("emit")
	if a.OnInputEnd != nil {
		a.OnInputEnd()
	}
	a.computed = true
	return nil
}

// consumeColumnar is consume driven through the child's columnar path.
// When the group key is a single homogeneous int64 column and no
// per-row input hook is attached, grouping runs vectorized over the
// flat key lane (see observeKeyVector); otherwise each live row is
// observed exactly as in the row passes. Group-count observations are
// delivered span-at-a-time through OnInputGroupCounts when set; the
// span preserves row order so consumers stay state-identical with the
// per-row hook.
func (a *HashAgg) consumeColumnar() error {
	a.initGroups()
	a.traceBegin("input")
	in := AsColOperator(a.child)
	for {
		if err := a.ctxErr(); err != nil {
			return err
		}
		cb, err := in.NextColBatch()
		if err != nil {
			return err
		}
		if cb == nil {
			break
		}
		a.collectCounts = a.OnInputGroupCounts != nil
		a.countsBuf = a.countsBuf[:0]
		a.observeColBatch(cb)
		if a.collectCounts {
			a.collectCounts = false
			a.OnInputGroupCounts(a.countsBuf)
		}
	}
	a.traceEnd("input", a.inputRows, 0, 0)
	a.traceBegin("emit")
	if a.OnInputEnd != nil {
		a.OnInputEnd()
	}
	a.computed = true
	return nil
}

// observeColBatch folds one columnar input batch into the groups.
func (a *HashAgg) observeColBatch(cb *data.ColBatch) {
	if len(a.groupBy) == 1 && a.OnInput == nil {
		kv := cb.Col(a.groupBy[0])
		if kv.Homogeneous() && kv.Kind == data.KindInt {
			a.observeKeyVector(cb, kv)
			return
		}
	}
	rows := cb.MaterializeRows()
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			a.observe(rows[i])
		}
		return
	}
	for _, i := range cb.Sel {
		a.observe(rows[i])
	}
}

// observeKeyVector is the vectorized grouping loop over a flat int64
// key lane: the group lookup indexes the open-addressing table straight
// from the lane, and a representative tuple is materialized only when a
// group is first seen. State, hook order and group emission order are
// identical to per-row observe.
func (a *HashAgg) observeKeyVector(cb *data.ColBatch, kv *data.ColVec) {
	observeRow := func(i int) {
		a.inputRows++
		var gs *groupState
		if kv.Nulls.Get(i) {
			var ok bool
			gs, ok = a.groups[data.Null()]
			if !ok {
				gs = a.newGroup(a.rowTuple(cb, i))
				a.groups[data.Null()] = gs
			}
		} else {
			p := a.intGroups.Ref(kv.Ints[i])
			if *p == nil {
				*p = a.newGroup(a.rowTuple(cb, i))
			}
			gs = *p
		}
		gs.n++
		if a.collectCounts {
			a.countsBuf = append(a.countsBuf, gs.n)
		} else if a.OnInputGroupCount != nil {
			a.OnInputGroupCount(gs.n)
		}
		for si, spec := range a.aggs {
			var v data.Value
			if spec.Func != CountStar {
				v = cb.Value(spec.Col, i)
			}
			gs.states[si].add(spec.Func, v)
		}
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			observeRow(i)
		}
		return
	}
	for _, i := range cb.Sel {
		observeRow(int(i))
	}
}

// rowTuple returns row i as a tuple, preferring the batch's row cache.
func (a *HashAgg) rowTuple(cb *data.ColBatch, i int) data.Tuple {
	if cb.Rows != nil {
		return cb.Rows[i]
	}
	t := make(data.Tuple, cb.Width())
	for c := range t {
		t[c] = cb.Cols[c].ValueAt(i)
	}
	return t
}

func (a *HashAgg) initGroups() {
	a.intGroups.Reset()
	a.groups = map[data.Value]*groupState{}
}

func (a *HashAgg) newGroup(t data.Tuple) *groupState {
	gs := &groupState{states: make([]aggState, len(a.aggs)), repr: t}
	a.order = append(a.order, gs)
	return gs
}

// observe folds one input tuple into its group, firing the input hooks.
func (a *HashAgg) observe(t data.Tuple) {
	a.inputRows++
	if a.OnInput != nil {
		a.OnInput(t)
	}
	k := GroupKey(t, a.groupBy)
	var gs *groupState
	if k.Kind == data.KindInt {
		p := a.intGroups.Ref(k.I)
		if *p == nil {
			*p = a.newGroup(t)
		}
		gs = *p
	} else {
		var ok bool
		gs, ok = a.groups[k]
		if !ok {
			gs = a.newGroup(t)
			a.groups[k] = gs
		}
	}
	gs.n++
	if a.collectCounts {
		a.countsBuf = append(a.countsBuf, gs.n)
	} else if a.OnInputGroupCount != nil {
		a.OnInputGroupCount(gs.n)
	}
	for i, spec := range a.aggs {
		var v data.Value
		if spec.Func != CountStar {
			v = t[spec.Col]
		}
		gs.states[i].add(spec.Func, v)
	}
}

// NextBatch implements BatchOperator: the blocking input read pulls whole
// batches from the child and the group emission phase fills whole output
// batches.
func (a *HashAgg) NextBatch() (data.Batch, error) {
	if !a.computed {
		if err := a.consumeBatched(); err != nil {
			return nil, err
		}
	}
	if a.buf == nil {
		a.buf = make(data.Batch, 0, data.BatchSize())
	}
	out := a.buf[:0]
	for len(out) < cap(out) && a.pos < len(a.order) {
		out = append(out, a.groupTuple(a.order[a.pos]))
		a.pos++
	}
	a.buf = out
	bt, err := a.emitBatch(out)
	if bt == nil && err == nil {
		a.endEmitSpan()
	}
	return bt, err
}

// GroupsSeen returns the number of distinct groups observed so far during
// the input pass.
func (a *HashAgg) GroupsSeen() int64 { return int64(a.intGroups.Len() + len(a.groups)) }

func (a *HashAgg) groupTuple(gs *groupState) data.Tuple {
	out := make(data.Tuple, 0, len(a.groupBy)+len(a.aggs))
	for _, g := range a.groupBy {
		out = append(out, gs.repr[g])
	}
	for i, spec := range a.aggs {
		out = append(out, gs.states[i].result(spec.Func))
	}
	return out
}

// InputRows returns the number of input tuples consumed.
func (a *HashAgg) InputRows() int64 { return a.inputRows }

// Close implements Operator.
func (a *HashAgg) Close() error {
	a.intGroups = hashtab.I64Map[*groupState]{}
	a.groups, a.order = nil, nil
	return a.child.Close()
}

// SortAgg implements sort-based grouping: the input is sorted on the group
// key (a blocking pass firing OnInput per tuple), then adjacent runs are
// aggregated.
type SortAgg struct {
	base
	child   Operator
	sorter  *Sort
	groupBy []int
	aggs    []AggSpec

	cur     data.Tuple // first tuple of the pending group
	started bool
	done    bool
}

// NewSortAgg groups child by the groupBy column indexes using sorting.
func NewSortAgg(child Operator, groupBy []int, aggs []AggSpec) *SortAgg {
	a := &SortAgg{
		child:   child,
		sorter:  NewSort(child, groupBy...),
		groupBy: groupBy,
		aggs:    aggs,
	}
	a.schema = aggSchema(child.Schema(), groupBy, aggs)
	return a
}

// Sorter exposes the internal sort for estimator attachment.
func (a *SortAgg) Sorter() *Sort { return a.sorter }

// GroupBy returns the grouping column indexes.
func (a *SortAgg) GroupBy() []int { return a.groupBy }

// Name implements Operator.
func (a *SortAgg) Name() string { return fmt.Sprintf("SortAgg(%v)", a.groupBy) }

// Children implements Operator. The internal sort is part of the visible
// plan tree so that its getnext() counts reach the progress monitor.
func (a *SortAgg) Children() []Operator { return []Operator{a.sorter} }

// Open implements Operator.
func (a *SortAgg) Open() error { return a.sorter.Open() }

// Next implements Operator.
func (a *SortAgg) Next() (data.Tuple, error) {
	if a.done {
		return a.finish()
	}
	if !a.started {
		a.traceBegin("aggregate")
		t, err := a.sorter.Next()
		if err != nil {
			return nil, err
		}
		a.cur = t
		a.started = true
	}
	if a.cur == nil {
		a.done = true
		a.traceEnd("aggregate", a.stats.Emitted.Load(), 0, 0)
		return a.finish()
	}
	states := make([]aggState, len(a.aggs))
	groupRepr := a.cur
	key := GroupKey(a.cur, a.groupBy)
	for a.cur != nil && data.Compare(GroupKey(a.cur, a.groupBy), key) == 0 {
		for i, spec := range a.aggs {
			var v data.Value
			if spec.Func != CountStar {
				v = a.cur[spec.Col]
			}
			states[i].add(spec.Func, v)
		}
		t, err := a.sorter.Next()
		if err != nil {
			return nil, err
		}
		a.cur = t
	}
	out := make(data.Tuple, 0, len(a.groupBy)+len(a.aggs))
	for _, g := range a.groupBy {
		out = append(out, groupRepr[g])
	}
	for i, spec := range a.aggs {
		out = append(out, states[i].result(spec.Func))
	}
	return a.emit(out)
}

// Close implements Operator.
func (a *SortAgg) Close() error { return a.sorter.Close() }

// SortTuplesByKey sorts tuples in place by the given key columns; shared
// helper for tests.
func SortTuplesByKey(rows []data.Tuple, keys ...int) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			if c := data.Compare(rows[i][k], rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
