package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qpi/internal/data"
)

// This file implements the partition-parallel join (second) phase of the
// grace hash join. After the partition passes the P partitions are fully
// independent, so JoinWorkers() goroutines claim contiguous partition
// ranges in ascending order from an atomic counter (see
// joinAffinitySpan); each worker builds its partitions' hash tables
// (reusing one worker-private joinTable across the partitions it
// processes), streams each partition's probe rows — from the in-memory
// buffer or back from its spill file — and emits output batches into a
// bounded per-partition queue. Next/NextBatch drain the queues strictly
// in partition order, so the output is byte-for-byte the serial join's
// clustered output, and all hooks (OnOutput), Stats writes and trace
// spans still fire on the single consumer goroutine.
//
// Why this cannot deadlock: ranges are claimed in ascending order, a
// worker processes its range's partitions in ascending order, and the
// consumer drains in ascending partition order. If the consumer is
// blocked on partition p's queue, every queue before p has been drained
// to close. Either p's range is claimed — its owner finished everything
// before p in the range (those queues closed), so it is producing into
// p's queue or about to close it (progress) — or p's range is unclaimed,
// in which case no later range is claimed either, and a worker mid-way
// through an earlier range would contradict those queues being closed;
// so some worker is finishing its claim loop and will claim the next
// range ≤ p's (progress).
//
// Cancellation and teardown: workers poll the plan context and a stop
// channel on an amortized tick and on every (blocking) queue send; the
// consumer polls the context per batch. Close (and any error return)
// closes the stop channel and waits for the workers, so spill-file
// cleanup happens-after all worker I/O and no goroutine outlives the
// operator — the leakcheck suite runs these paths under -race.

// joinQueueDepth bounds each partition's output queue (in batches). Two
// in-flight batches per partition keep workers ahead of the consumer
// without buffering whole partitions in memory.
const joinQueueDepth = 2

// batchPool recycles output batch buffers between the join-phase workers
// and the consumer: a worker fills a pooled batch, the consumer hands it
// to the caller, and recycles it on the caller's next pull (matching the
// data.Batch reuse contract).
var batchPool = sync.Pool{
	New: func() any {
		b := make(data.Batch, 0, data.BatchSize())
		return &b
	},
}

func getBatch() data.Batch {
	return (*batchPool.Get().(*data.Batch))[:0]
}

func putBatch(b data.Batch) {
	// Drop buffers whose capacity no longer matches the active batch size
	// (a bench sweep may change it between runs), so the pool never serves
	// stale-sized buffers.
	if cap(b) == 0 || cap(b) != data.BatchSize() {
		return
	}
	b = b[:0]
	batchPool.Put(&b)
}

// partStream is one partition's output queue. err and probes are written
// by the owning worker before it closes ch; the channel close is the
// happens-before edge that lets the consumer read them without atomics.
type partStream struct {
	ch     chan data.Batch
	err    error
	probes int64 // probe tuples consumed by this partition's join
}

// parallelJoinState carries the join-phase workers and the consumer-side
// drain cursor.
type parallelJoinState struct {
	res  []partStream
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// Consumer state (single goroutine).
	cur    int        // partition being drained
	opened bool       // trace span for cur is open
	batch  data.Batch // current batch served tuple-at-a-time
	pos    int
	prev   data.Batch // last batch handed to a NextBatch caller
}

// shutdown stops the workers (idempotent) and waits for them.
func (st *parallelJoinState) shutdown() {
	st.once.Do(func() { close(st.stop) })
	st.wg.Wait()
}

// joinAffinitySpan is the number of contiguous partitions one join-phase
// claim covers: per-core partition affinity. Claiming ranges instead of
// interleaved singles keeps one worker's consecutive partitions — their
// build tables and probe buffers — streaming through the same core's
// cache instead of ping-ponging claim order across cores. Two ranges per
// worker (rather than one) leaves the tail balanced when partitions are
// skewed: a worker that drew cheap partitions picks up a second range.
func (j *HashJoin) joinAffinitySpan(workers int) int {
	span := j.parts / (2 * workers)
	if span < 1 {
		span = 1
	}
	return span
}

// startParallelJoin launches the join-phase workers. It cannot fail;
// worker errors surface on the partition they occurred in, in partition
// order, from nextParallelBatch.
func (j *HashJoin) startParallelJoin() {
	st := &parallelJoinState{
		res:  make([]partStream, j.parts),
		stop: make(chan struct{}),
	}
	for p := range st.res {
		st.res[p].ch = make(chan data.Batch, joinQueueDepth)
	}
	j.joinPar = st
	workers := j.JoinWorkers()
	span := j.joinAffinitySpan(workers)
	nRanges := (j.parts + span - 1) / span
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			var jt joinTable
			var arena []data.Value
			for {
				r := int(next.Add(1) - 1)
				if r >= nRanges {
					return
				}
				hi := (r + 1) * span
				if hi > j.parts {
					hi = j.parts
				}
				for p := r * span; p < hi; p++ {
					out := &st.res[p]
					out.err = j.joinOnePartition(p, &jt, &arena, out, st.stop)
					close(out.ch)
					if out.err != nil {
						// The consumer will stop at this partition; stop
						// claiming so later queues close promptly too.
						return
					}
				}
			}
		}()
	}
}

// joinOnePartition builds partition p's table and streams its probe rows
// through it, sending output batches on out.ch. Runs on a worker
// goroutine: it touches only partition-p state (buildParts[p],
// probeParts[p], the two spill slots) plus worker-private jt/arena, and
// reports probe consumption via out.probes.
func (j *HashJoin) joinOnePartition(p int, jt *joinTable, arena *[]data.Value,
	out *partStream, stop <-chan struct{}) error {
	var buildTuples []data.Tuple
	if j.colMode {
		// Lane-native partitions: materialize the partition's lanes into
		// row tuples for the row-oriented parallel drain (a difftest-only
		// crossing — the perf-gated columnar path runs the serial join
		// phase's lane-to-lane gather).
		if cp := j.buildColParts[p]; cp != nil {
			j.buildColParts[p] = nil
			buildTuples = cp.ToTuples(nil)
			data.PutColBatch(cp)
		}
	} else {
		buildTuples = j.buildParts[p]
	}
	if f := j.buildSpill[p]; f != nil {
		var err error
		buildTuples, err = f.readAll()
		j.buildSpill[p] = nil
		cerr := f.close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
	}
	jt.build(buildTuples, j.buildKeys)
	var memProbe []data.Tuple
	if j.colMode {
		if pp := j.probeColParts[p]; pp != nil {
			j.probeColParts[p] = nil
			memProbe = pp.ToTuples(nil)
			data.PutColBatch(pp)
		}
	} else {
		j.buildParts[p] = nil
		memProbe = j.probeParts[p]
	}
	var pf *spillFile
	if f := j.probeSpill[p]; f != nil {
		if err := f.startRead(); err != nil {
			j.probeSpill[p] = nil
			f.close()
			return err
		}
		pf = f
	}
	closeProbe := func() error {
		if pf == nil {
			return nil
		}
		j.probeSpill[p] = nil
		return pf.close()
	}

	batch := getBatch()
	emit := func(t data.Tuple) bool {
		batch = append(batch, t)
		if len(batch) < cap(batch) {
			return true
		}
		select {
		case out.ch <- batch:
			batch = getBatch()
			return true
		case <-stop:
			return false
		}
	}
	concat := func(a, b data.Tuple) data.Tuple {
		n := len(a) + len(b)
		if len(*arena) < n {
			*arena = make([]data.Value, n*data.BatchSize())
		}
		o := (*arena)[:n:n]
		*arena = (*arena)[n:]
		copy(o, a)
		copy(o[len(a):], b)
		return data.Tuple(o)
	}

	var tick uint32
	cursor := 0
	for {
		// Amortized cancellation/stop poll, mirroring base.pollCtx but on
		// worker-private state.
		if tick++; tick&127 == 0 {
			select {
			case <-stop:
				closeProbe()
				return nil // torn down; the consumer already has its error
			default:
			}
			if j.ctx != nil {
				if err := j.ctx.Err(); err != nil {
					closeProbe()
					return err
				}
			}
		}
		var t data.Tuple
		if pf != nil {
			var err error
			t, err = pf.next()
			if err != nil {
				closeProbe()
				return err
			}
		} else if cursor < len(memProbe) {
			t = memProbe[cursor]
			cursor++
		}
		if t == nil {
			break
		}
		out.probes++
		key := JoinKeyOf(t, j.probeKeys)
		var matches []data.Tuple
		if !key.IsNull() {
			matches = jt.lookup(key)
		}
		switch j.joinType {
		case SemiJoin:
			if len(matches) > 0 && !emit(t) {
				closeProbe()
				return nil
			}
		case AntiJoin:
			if len(matches) == 0 && !emit(t) {
				closeProbe()
				return nil
			}
		case ProbeOuterJoin:
			if len(matches) == 0 {
				if !emit(concat(j.nullBuild, t)) {
					closeProbe()
					return nil
				}
				continue
			}
			fallthrough
		default:
			for _, m := range matches {
				if !emit(concat(m, t)) {
					closeProbe()
					return nil
				}
			}
		}
	}
	if err := closeProbe(); err != nil {
		return err
	}
	if !j.colMode {
		j.probeParts[p] = nil
	}
	if len(batch) > 0 {
		select {
		case out.ch <- batch:
		case <-stop:
		}
	} else {
		putBatch(batch)
	}
	return nil
}

// nextParallelBatch returns the next non-empty output batch in partition
// order, or nil at end of join. It runs on the consumer goroutine and
// owns the partition cursor, per-partition trace spans and the
// joinedProbes roll-up.
func (j *HashJoin) nextParallelBatch() (data.Batch, error) {
	st := j.joinPar
	for j.state == hjJoin {
		if err := j.ctxErr(); err != nil {
			st.shutdown()
			return nil, err
		}
		if st.cur >= j.parts {
			j.state = hjDone
			j.done.Store(true)
			break
		}
		out := &st.res[st.cur]
		if !st.opened {
			st.opened = true
			j.traceBegin(fmt.Sprintf("join[%d]", st.cur))
		}
		b, ok := <-out.ch
		if ok {
			return b, nil
		}
		// Partition finished: the close is the happens-before edge for
		// err/probes.
		if out.err != nil {
			st.shutdown()
			return nil, out.err
		}
		j.joinedProbes.Add(out.probes)
		j.traceEnd(fmt.Sprintf("join[%d]", st.cur), out.probes, 0, 0)
		st.cur++
		st.opened = false
	}
	// All partitions drained: reap the workers so no goroutine outlives
	// the join.
	st.wg.Wait()
	return nil, nil
}

// nextParallel serves the parallel join phase tuple-at-a-time; the Next
// caller sees exactly the serial emission order.
func (j *HashJoin) nextParallel() (data.Tuple, error) {
	st := j.joinPar
	for {
		if st.pos < len(st.batch) {
			t := st.batch[st.pos]
			st.pos++
			return t, nil
		}
		if st.batch != nil {
			putBatch(st.batch)
			st.batch = nil
		}
		b, err := j.nextParallelBatch()
		if err != nil || b == nil {
			return nil, err
		}
		st.batch, st.pos = b, 0
	}
}

// nextParallelOutBatch is the NextBatch drain of the parallel join
// phase: worker batches pass straight through to the caller (recycled on
// the caller's next pull), with OnOutput and the emission counters fired
// here on the consumer goroutine.
func (j *HashJoin) nextParallelOutBatch() (data.Batch, error) {
	st := j.joinPar
	if st.prev != nil {
		putBatch(st.prev)
		st.prev = nil
	}
	b, err := j.nextParallelBatch()
	if err != nil {
		return nil, err
	}
	if j.OnOutput != nil {
		for _, t := range b {
			j.OnOutput(t)
		}
	}
	st.prev = b
	return j.emitBatch(b)
}
