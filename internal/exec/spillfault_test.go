package exec

import (
	"errors"
	"testing"

	"qpi/internal/data"
	"qpi/internal/vfs"
)

// Fault-injection matrix over the spill I/O seam: every file operation of
// the spilling hash join and the external sort can fail, and in every
// case the injected error must surface through Run while all descriptors
// are released. (Spill files are unlinked at creation, so "no leftover
// temp files" is exactly "no open descriptors".)

var spillOps = []vfs.Op{vfs.OpCreate, vfs.OpWrite, vfs.OpRead, vfs.OpSeek, vfs.OpClose}

func expectInjectedIO(t *testing.T, fs *vfs.FaultFS, err error) {
	t.Helper()
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want vfs.ErrInjected, got %v", err)
	}
	if open := fs.OpenFiles(); open != 0 {
		t.Errorf("%d spill files still open after injected fault", open)
	}
}

func TestSpillFaultHashJoin(t *testing.T) {
	a := randTable("a", 3000, 100, 23)
	b := randTable("b", 4000, 100, 24)
	for _, op := range spillOps {
		t.Run(op.String(), func(t *testing.T) {
			fs := vfs.NewFaultFS(nil).FailAt(op, 1)
			j := NewHashJoinOn(
				NewScan(makeTable("a", a), ""),
				NewScan(makeTable("b", b), ""),
				"a", "k", "b", "k")
			j.SetMemoryBudget(16 * 1024)
			j.SetSpillFS(fs)
			_, err := Run(j)
			expectInjectedIO(t, fs, err)
			if fs.Count(op) == 0 {
				t.Fatalf("join never issued a %s; fault not exercised", op)
			}
		})
	}
}

func TestSpillFaultHashJoinBatched(t *testing.T) {
	a := randTable("a", 3000, 100, 25)
	b := randTable("b", 4000, 100, 26)
	for _, op := range spillOps {
		t.Run(op.String(), func(t *testing.T) {
			fs := vfs.NewFaultFS(nil).FailAt(op, 1)
			j := NewHashJoinOn(
				NewScan(makeTable("a", a), ""),
				NewScan(makeTable("b", b), ""),
				"a", "k", "b", "k")
			j.SetMemoryBudget(16 * 1024)
			j.SetParallelism(4) // budget keeps the passes serial
			j.SetSpillFS(fs)
			_, err := RunBatch(j)
			expectInjectedIO(t, fs, err)
		})
	}
}

func TestSpillFaultExternalSort(t *testing.T) {
	vals := randTable("t", 5000, 100000, 27)
	for _, op := range spillOps {
		t.Run(op.String(), func(t *testing.T) {
			fs := vfs.NewFaultFS(nil).FailAt(op, 1)
			s := NewSort(NewScan(makeTable("t", vals), ""), 0)
			s.SetMemoryBudget(8 * 1024)
			s.SetSpillFS(fs)
			_, err := Run(s)
			expectInjectedIO(t, fs, err)
			if fs.Count(op) == 0 {
				t.Fatalf("sort never issued a %s; fault not exercised", op)
			}
		})
	}
}

// TestSpillFaultLateClose injects a close failure that only fires during
// the join's final Close (after a clean drain), proving spill cleanup
// errors are not swallowed.
func TestSpillFaultLateClose(t *testing.T) {
	a := randTable("a", 3000, 100, 28)
	b := randTable("b", 4000, 100, 29)
	fs := vfs.NewFaultFS(nil)
	j := NewHashJoinOn(
		NewScan(makeTable("a", a), ""),
		NewScan(makeTable("b", b), ""),
		"a", "k", "b", "k")
	j.SetMemoryBudget(16 * 1024)
	j.SetSpillFS(fs)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(j); err != nil {
		t.Fatal(err)
	}
	// Every partition has been consumed and its descriptor closed by now;
	// a clean run must end descriptor-clean even before Close.
	if open := fs.OpenFiles(); open != 0 {
		t.Fatalf("%d spill files open after full drain", open)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillFaultCleanRunLeaksNothing(t *testing.T) {
	vals := randTable("t", 5000, 100000, 30)
	fs := vfs.NewFaultFS(nil)
	s := NewSort(NewScan(makeTable("t", vals), ""), 0)
	s.SetMemoryBudget(8 * 1024)
	s.SetSpillFS(fs)
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	if open := fs.OpenFiles(); open != 0 {
		t.Errorf("%d spill files open after clean run", open)
	}
	if fs.MaxOpenFiles() == 0 {
		t.Error("sort never spilled; nothing was tested")
	}
}

// TestSpillFaultPooledBuffersIsolated churns spill files through the
// shared bufio pools with faults interleaved: a buffer recycled from a
// faulted (or abandoned-before-read) file must serve the next file
// correctly — no stale bytes, no retained descriptor, no poisoned error
// state. Each iteration alternates a victim file that dies at a different
// op with a clean file whose round-trip is verified byte-exactly.
func TestSpillFaultPooledBuffersIsolated(t *testing.T) {
	mkTuple := func(i int64) data.Tuple { return data.Tuple{data.Int(i), data.Str("row")} }
	ops := []vfs.Op{vfs.OpWrite, vfs.OpRead, vfs.OpSeek, vfs.OpClose}
	for round := 0; round < 8; round++ {
		// Victim: fault at the round's op, then close (idempotent, returns
		// its buffers to the pools regardless of where the fault hit).
		op := ops[round%len(ops)]
		fs := vfs.NewFaultFS(nil).FailAt(op, 1)
		victim, err := newSpillFile(fs, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 2000; i++ { // >64 KiB: forces mid-write flushes
			if err := victim.append(mkTuple(i)); err != nil {
				break
			}
		}
		if err := victim.startRead(); err == nil {
			for {
				tu, err := victim.next()
				if tu == nil || err != nil {
					break
				}
			}
		}
		victim.close()
		if open := fs.OpenFiles(); open != 0 {
			t.Fatalf("round %d (%s): %d descriptors open after faulted victim", round, op, open)
		}

		// Clean file: its pooled buffers almost certainly just served the
		// victim; the round-trip must still be exact.
		cleanFS := vfs.NewFaultFS(nil)
		f, err := newSpillFile(cleanFS, 2)
		if err != nil {
			t.Fatal(err)
		}
		const n = 500
		for i := int64(0); i < n; i++ {
			if err := f.append(mkTuple(i)); err != nil {
				t.Fatal(err)
			}
		}
		rows, err := f.readAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != n {
			t.Fatalf("round %d: clean file read %d rows, want %d", round, len(rows), n)
		}
		for i, tu := range rows {
			if tu[0].I != int64(i) || tu[1].S != "row" {
				t.Fatalf("round %d: row %d corrupted: %v", round, i, tu)
			}
		}
		if err := f.close(); err != nil {
			t.Fatal(err)
		}
		if open := cleanFS.OpenFiles(); open != 0 {
			t.Fatalf("round %d: %d descriptors open after clean round-trip", round, open)
		}
	}
}
