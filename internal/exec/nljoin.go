package exec

import (
	"errors"
	"fmt"

	"qpi/internal/data"
	"qpi/internal/expr"
)

// NestedLoopsJoin materializes the inner input once, then joins each outer
// tuple against it as the outer is read (no preprocessing pass over the
// outer — which is why the paper's framework cannot do better than the
// dne estimator here, §4.1.3).
//
// When Indexed is set, a temporary hash index on the inner join column is
// built during materialization (the common engine optimization the paper
// notes); the join predicate is then an equijoin on the key columns.
// Otherwise an arbitrary predicate over the concatenated tuple is
// supported (theta joins).
type NestedLoopsJoin struct {
	base
	outer, inner Operator

	// Equijoin configuration (used when Indexed is true).
	outerKey, innerKey int
	// Pred is the general join predicate over outer⧺inner (used when
	// Indexed is false). A nil Pred means cross product.
	Pred expr.Expr
	// Indexed selects the temporary-index variant.
	Indexed bool

	// OnOuterTuple fires for every outer tuple as it is read.
	OnOuterTuple func(data.Tuple)
	// OnInnerTuple fires for every inner tuple during materialization.
	OnInnerTuple func(data.Tuple)

	innerRows []data.Tuple
	index     map[data.Value][]data.Tuple
	loaded    bool
	innerRead int64
	spanEnded bool

	outerTup data.Tuple
	matches  []data.Tuple
	matchPos int
}

// NewNestedLoopsJoin creates a theta nested-loops join with predicate pred
// over the concatenated (outer ⧺ inner) tuple.
func NewNestedLoopsJoin(outer, inner Operator, pred expr.Expr) *NestedLoopsJoin {
	j := &NestedLoopsJoin{outer: outer, inner: inner, Pred: pred}
	j.schema = outer.Schema().Concat(inner.Schema())
	return j
}

// NewIndexedNLJoin creates an equijoin nested-loops join with a temporary
// hash index on the inner join column.
func NewIndexedNLJoin(outer, inner Operator, outerKey, innerKey int) *NestedLoopsJoin {
	j := &NestedLoopsJoin{
		outer: outer, inner: inner,
		outerKey: outerKey, innerKey: innerKey,
		Indexed: true,
	}
	j.schema = outer.Schema().Concat(inner.Schema())
	return j
}

// Name implements Operator.
func (j *NestedLoopsJoin) Name() string {
	if j.Indexed {
		return fmt.Sprintf("IndexedNLJoin(%s = %s)",
			j.outer.Schema().Cols[j.outerKey].Qualified(),
			j.inner.Schema().Cols[j.innerKey].Qualified())
	}
	if j.Pred == nil {
		return "NLJoin(cross)"
	}
	return fmt.Sprintf("NLJoin(%s)", j.Pred)
}

// Children implements Operator.
func (j *NestedLoopsJoin) Children() []Operator { return []Operator{j.outer, j.inner} }

// Outer returns the outer child; Inner the inner child.
func (j *NestedLoopsJoin) Outer() Operator { return j.outer }

// Inner returns the inner child.
func (j *NestedLoopsJoin) Inner() Operator { return j.inner }

// OuterKey returns the outer join column index (indexed variant).
func (j *NestedLoopsJoin) OuterKey() int { return j.outerKey }

// InnerKey returns the inner join column index (indexed variant).
func (j *NestedLoopsJoin) InnerKey() int { return j.innerKey }

// Open implements Operator.
func (j *NestedLoopsJoin) Open() error {
	if err := j.outer.Open(); err != nil {
		return err
	}
	return j.inner.Open()
}

// Next implements Operator.
func (j *NestedLoopsJoin) Next() (data.Tuple, error) {
	if !j.loaded {
		if err := j.loadInner(); err != nil {
			return nil, err
		}
	}
	for {
		if err := j.pollCtx(); err != nil {
			return nil, err
		}
		if j.matchPos < len(j.matches) {
			m := j.matches[j.matchPos]
			j.matchPos++
			return j.emit(j.outerTup.Concat(m))
		}
		t, err := j.outer.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			if !j.spanEnded {
				j.spanEnded = true
				j.traceEnd("join", j.stats.Emitted.Load(), 0, 0)
			}
			return j.finish()
		}
		if j.OnOuterTuple != nil {
			j.OnOuterTuple(t)
		}
		j.outerTup = t
		j.matchPos = 0
		if j.Indexed {
			k := t[j.outerKey]
			if k.IsNull() {
				j.matches = nil
				continue
			}
			j.matches = j.index[k]
			continue
		}
		// Theta join: filter the materialized inner.
		j.matches = j.matches[:0]
		for _, in := range j.innerRows {
			if j.Pred == nil || j.Pred.Eval(t.Concat(in)).IsTrue() {
				j.matches = append(j.matches, in)
			}
		}
	}
}

func (j *NestedLoopsJoin) loadInner() error {
	j.traceBegin("inner-build")
	if j.Indexed {
		j.index = map[data.Value][]data.Tuple{}
	}
	for {
		if err := j.pollCtx(); err != nil {
			return err
		}
		t, err := j.inner.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		j.innerRead++
		if j.OnInnerTuple != nil {
			j.OnInnerTuple(t)
		}
		if j.Indexed {
			k := t[j.innerKey]
			if k.IsNull() {
				continue
			}
			j.index[k] = append(j.index[k], t)
		} else {
			j.innerRows = append(j.innerRows, t)
		}
	}
	j.loaded = true
	j.traceEnd("inner-build", j.innerRead, 0, 0)
	j.traceBegin("join")
	return nil
}

// Close implements Operator. Both children are always closed; errors
// from either side are reported via errors.Join.
func (j *NestedLoopsJoin) Close() error {
	j.innerRows, j.index, j.matches = nil, nil, nil
	return errors.Join(j.outer.Close(), j.inner.Close())
}
