package exec

import (
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync/atomic"

	"qpi/internal/data"
	"qpi/internal/hashtab"
	"qpi/internal/vfs"
)

// hashSeed is the process-wide seed for partitioning hashes.
var hashSeed = maphash.MakeSeed()

// hashValue hashes a join key for partitioning. maphash.Comparable hashes
// the Value struct directly with the runtime's AES-backed hash — no
// per-tuple maphash.Hash state, no re-seeding, no hand-rolled kind-tagged
// byte serialization, and partition assignment agrees with map-key
// equality by construction (the join tables key maps on the same struct).
// BenchmarkHashValue compares it against the seed implementation;
// BenchmarkJoinTable measures the companion win, keying integer join keys
// by bare int64 instead of the 40-byte struct.
func hashValue(v data.Value) uint64 {
	return maphash.Comparable(hashSeed, v)
}

// HashJoin is a grace hash join: it fully partitions the build input, then
// fully partitions the probe input, then joins partition by partition.
//
// The explicit probe partition pass matters for two reasons. First, the
// online estimator attaches there (OnProbeTuple) and converges to the
// exact join cardinality before any output is produced (§4.1.1). Second,
// the join output is clustered by partition, which is exactly the
// reordering that makes the dne and byte estimators fluctuate on skewed
// data (§5.1.2 / Figure 4).
type HashJoin struct {
	base
	build, probe         Operator
	buildKeys, probeKeys []int
	parts                int

	// OnBuildTuple fires for every build-input tuple during the build
	// partition pass.
	OnBuildTuple func(data.Tuple)
	// OnProbeTuple fires for every probe-input tuple during the probe
	// partition pass (before any join output is produced).
	OnProbeTuple func(data.Tuple)
	// OnProbeEnd fires when the probe input is exhausted, i.e. when the
	// online estimate has converged.
	OnProbeEnd func()
	// OnOutput fires for every emitted join tuple (the second pass),
	// letting progress monitors sample during long emission phases.
	OnOutput func(data.Tuple)

	// Batched-pass hooks (set alongside, not instead of, the per-tuple
	// hooks above). During a batched partition pass OnBuildBatch /
	// OnProbeBatch fire once per input batch on the scatter worker that
	// owns the batch (worker index in [0, Workers())), while the per-tuple
	// hooks keep firing on the reader goroutine — so estimators can shard
	// per worker and monitors keep their single-threaded view. OnBuildEnd
	// fires on the reader after the build pass barrier, before any probe
	// input is pulled; shards merge there.
	OnBuildBatch func(worker int, b data.Batch)
	OnProbeBatch func(worker int, b data.Batch)
	OnBuildEnd   func()

	// Columnar-pass hooks (set alongside the per-tuple hooks). During a
	// columnar partition pass OnBuildCol / OnProbeCol fire once per input
	// ColBatch, after the per-tuple hooks have fired for the batch's live
	// rows; the serial pass needs no consumer locking, and a morselized
	// pass serializes these hooks under its pass mutex. The batch is
	// only valid for the duration of the call (see the ColBatch ownership
	// contract in internal/data).
	OnBuildCol func(cb *data.ColBatch)
	OnProbeCol func(cb *data.ColBatch)

	// Worker-indexed columnar hooks: the columnar counterpart of
	// OnBuildBatch/OnProbeBatch, firing once per ColBatch on the scan
	// worker that owns it during a morselized columnar pass (worker 0 on
	// the serial columnar pass). The estimation framework backs them with
	// per-worker histogram shards merged at the pass barriers, keeping
	// estimates bit-identical to serial execution.
	OnBuildColBatch func(worker int, cb *data.ColBatch)
	OnProbeColBatch func(worker int, cb *data.ColBatch)

	// OnBeforePartition fires exactly once, at the top of the join's
	// first pull, before the build partition pass starts and before
	// PartitionStarted flips — the re-optimizer's only safe window to
	// restructure this join's probe subtree (none of whose operators
	// have produced a tuple yet; the build subtree is about to run).
	// It fires on the executor goroutine with the join quiescent.
	OnBeforePartition func(j *HashJoin)

	// workers > 0 selects the batch-at-a-time partition passes with that
	// many scatter workers (see SetParallelism); 0 is the legacy
	// tuple-at-a-time pass.
	workers int

	// colMode selects the columnar partition passes (serial, vectorized
	// key hashing off flat int64 lanes) and the columnar spill frame
	// format; see SetColumnar. It takes precedence over workers for the
	// partition passes; the join (second) phase still parallelizes per
	// JoinWorkers.
	colMode bool

	// morsel enables morsel-driven parallel scans for the partition
	// passes (row and columnar); morselBlocks overrides the blocks per
	// claim. See hashjoin_morsel.go.
	morsel       bool
	morselBlocks int

	state      hjState
	buildParts [][]data.Tuple
	probeParts [][]data.Tuple
	// partStarted flips just before the build partition pass begins
	// (after OnBeforePartition has returned). It is the re-optimizer's
	// started/unstarted barrier witness: once set, the join's inputs are
	// being consumed and the operator must never be relinked or swapped.
	partStarted atomic.Bool
	// buildRows/probeRows and done are read by monitor goroutines
	// (Report/Metrics via BuildRows/ProbeRows/JoinedProbeFraction) while
	// the executor advances, so they are atomics; state itself stays an
	// executor-private field.
	buildRows atomic.Int64
	probeRows atomic.Int64
	done      atomic.Bool

	// Memory-budgeted (spilling) mode: when memBudget > 0, partitions
	// whose buffered bytes exceed the per-partition share spill to temp
	// files — the grace hash join's actual on-disk behaviour. The hash
	// table for the partition being joined is still built in memory.
	memBudget  int64
	spillFS    vfs.FS // injectable spill I/O (nil = real filesystem)
	buildSpill []*spillFile
	probeSpill []*spillFile
	buildBytes []int64
	probeBytes []int64
	probeFile  *spillFile // reader for the current spilled probe partition
	spilled    int        // partition buffers that went to disk

	curPart  int
	ht       joinTable
	curProbe int
	matches  []data.Tuple
	matchPos int
	probeTup data.Tuple

	// Lane-native columnar partition state (colMode): per-partition pooled
	// ColBatch lane buffers replace the row-major buffers end-to-end — the
	// passes scatter lane-to-lane, the join table indexes rows of the
	// partition's lanes, and the join phase gathers output lane-to-lane.
	// See hashjoin_col.go.
	buildColParts []*data.ColBatch
	probeColParts []*data.ColBatch
	colTab        colJoinTable
	colBuild      *data.ColBatch // current partition's build lanes (gather source)
	colProbe      *data.ColBatch // current probe chunk (partition lanes or a decoded spill frame)
	colProbePart  *data.ColBatch // the in-memory probe partition batch being served (owned)
	colProbeRow   int            // next probe row index within colProbe
	colProbeCur   int32          // probe row whose matches are streaming
	colProbeKey   *data.ColVec   // cached int key lane of the current probe chunk (nil = generic keys)
	colMatches    []int32
	colMatchPos   int
	colDecA       *data.ColBatch // double-buffered spilled-probe frames: the
	colDecB       *data.ColBatch // previous frame stays gatherable while the next decodes
	colRetire     []*data.ColBatch
	colGen        uint64 // bumps whenever colBuild/colProbe switch sources
	colPairB      []int32
	colPairP      []int32
	colGatherB    *data.ColBatch // gather sources snapshotted when the first
	colGatherP    *data.ColBatch // pair of a fill appends (stable across a source switch)
	colPendB      int32 // pair produced after a source switch, served first next fill
	colPendP      int32
	colPendSet    bool
	colKeyScratch data.Tuple
	colRowArena   []data.Value
	// joinedProbes counts probe tuples consumed in the join (second)
	// pass. Atomic: the parallel join phase folds in per-partition counts
	// from the drain side while monitor goroutines read it through
	// JoinedProbeFraction.
	joinedProbes atomic.Int64
	partProbes   int64 // joinedProbes at the current partition's start (trace counters)

	// joinPar is the parallel join-phase state (nil in serial mode); see
	// hashjoin_parallel.go.
	joinPar *parallelJoinState

	// Batch output state: outBuf is the reused output batch, arena the
	// bump allocator backing concatenated output tuples in batch mode.
	outBuf data.Batch
	arena  []data.Value

	// Columnar output state: colOut is the reused output ColBatch.
	colOut data.ColBatch

	joinType  JoinType
	nullBuild data.Tuple // all-NULL build-side padding for ProbeOuterJoin
}

// joinTable is the per-partition build hash table. Integer join keys —
// the dominant case — index an open-addressing hashtab.I64Map whose
// values are spans into one flat tuple arena: building is two passes
// (count per key, then fill), so a partition's table costs a handful of
// allocations regardless of its distinct-key count, and probing touches
// a flat int64 key array instead of chasing map buckets. Non-integer
// keys fall back to a Value-keyed map. A joinTable is reusable across
// partitions (build resets it, retaining capacity), which is how the
// parallel join phase amortizes table memory per worker.
type joinTable struct {
	ints hashtab.I64Map[tupleSpan]
	flat []data.Tuple
	// other holds non-integer-keyed rows (strings, floats); appended
	// incrementally during the count pass since the fast layout does not
	// apply.
	other map[data.Value][]data.Tuple
}

// tupleSpan is one key's region of the flat arena.
type tupleSpan struct {
	off, n int32
}

// build (re)constructs the table from a partition's build tuples. NULL
// keys never reach here (the partition passes drop them), but a guard
// keeps the table correct if one does.
func (jt *joinTable) build(tuples []data.Tuple, keys []int) {
	jt.ints.Reset()
	jt.other = nil
	nInt := 0
	for _, t := range tuples {
		k := JoinKeyOf(t, keys)
		switch {
		case k.Kind == data.KindInt:
			jt.ints.Ref(k.I).n++
			nInt++
		case k.IsNull():
			// dropped
		default:
			if jt.other == nil {
				jt.other = make(map[data.Value][]data.Tuple)
			}
			jt.other[k] = append(jt.other[k], t)
		}
	}
	if cap(jt.flat) < nInt {
		jt.flat = make([]data.Tuple, nInt)
	} else {
		jt.flat = jt.flat[:nInt]
	}
	// Counts become offsets; n doubles as the fill cursor and converges
	// back to the key's count.
	var off int32
	jt.ints.EachRef(func(_ int64, sp *tupleSpan) bool {
		sp.off = off
		off += sp.n
		sp.n = 0
		return true
	})
	for _, t := range tuples {
		k := JoinKeyOf(t, keys)
		if k.Kind == data.KindInt {
			sp := jt.ints.Ref(k.I)
			jt.flat[sp.off+sp.n] = t
			sp.n++
		}
	}
}

func (jt *joinTable) lookup(k data.Value) []data.Tuple {
	if k.Kind == data.KindInt {
		sp, ok := jt.ints.Get(k.I)
		if !ok {
			return nil
		}
		return jt.flat[sp.off : sp.off+sp.n]
	}
	if jt.other == nil {
		return nil
	}
	return jt.other[k]
}

func (jt *joinTable) clear() {
	jt.ints.Reset()
	jt.flat, jt.other = nil, nil
}

// colJoinTable is the lane-native per-partition build table: the same
// two-pass count/fill layout as joinTable, but the spans index rows of
// the partition's ColBatch lanes (int32 row numbers) instead of holding
// tuple references — building reads the flat key lane, probing returns
// row indexes for the lane-to-lane gather, and no build tuple is ever
// materialized.
type colJoinTable struct {
	ints hashtab.I64Map[tupleSpan]
	flat []int32
	// other holds non-integer-keyed row indexes (strings, floats).
	other map[data.Value][]int32
}

// build (re)constructs the table over cb's rows. NULL keys never reach a
// build partition (the scatter drops them), but the generic path guards
// anyway, matching joinTable.
func (jt *colJoinTable) build(cb *data.ColBatch, keys []int, scratch *data.Tuple) {
	jt.ints.Reset()
	jt.other = nil
	if cb == nil || cb.NRows == 0 {
		jt.flat = jt.flat[:0]
		return
	}
	n := cb.NRows
	nInt := 0
	var kv *data.ColVec
	if len(keys) == 1 {
		if v := cb.Col(keys[0]); v.Homogeneous() && v.Kind == data.KindInt && !v.Nulls.Any() {
			kv = v
		}
	}
	if kv != nil {
		for _, k := range kv.Ints[:n] {
			jt.ints.Ref(k).n++
		}
		nInt = n
	} else {
		for i := 0; i < n; i++ {
			k := colJoinKeyAt(cb, keys, i, scratch)
			switch {
			case k.Kind == data.KindInt:
				jt.ints.Ref(k.I).n++
				nInt++
			case k.IsNull():
				// dropped
			default:
				if jt.other == nil {
					jt.other = make(map[data.Value][]int32)
				}
				jt.other[k] = append(jt.other[k], int32(i))
			}
		}
	}
	if cap(jt.flat) < nInt {
		jt.flat = make([]int32, nInt)
	} else {
		jt.flat = jt.flat[:nInt]
	}
	var off int32
	jt.ints.EachRef(func(_ int64, sp *tupleSpan) bool {
		sp.off = off
		off += sp.n
		sp.n = 0
		return true
	})
	if kv != nil {
		for i, k := range kv.Ints[:n] {
			sp := jt.ints.Ref(k)
			jt.flat[sp.off+sp.n] = int32(i)
			sp.n++
		}
		return
	}
	for i := 0; i < n; i++ {
		k := colJoinKeyAt(cb, keys, i, scratch)
		if k.Kind == data.KindInt {
			sp := jt.ints.Ref(k.I)
			jt.flat[sp.off+sp.n] = int32(i)
			sp.n++
		}
	}
}

// lookupInt returns the build row indexes matching an int key — the hot
// probe path, fed straight from the probe partition's key lane.
func (jt *colJoinTable) lookupInt(k int64) []int32 {
	sp, ok := jt.ints.Get(k)
	if !ok {
		return nil
	}
	return jt.flat[sp.off : sp.off+sp.n]
}

func (jt *colJoinTable) lookup(k data.Value) []int32 {
	if k.Kind == data.KindInt {
		return jt.lookupInt(k.I)
	}
	if jt.other == nil {
		return nil
	}
	return jt.other[k]
}

func (jt *colJoinTable) clear() {
	jt.ints.Reset()
	jt.flat, jt.other = nil, nil
}

// colJoinKeyAt is JoinKeyOf evaluated off column lanes: the single key
// column's value, or the composite GroupKey for multi-column keys (any
// NULL component yields NULL). scratch is a reusable tuple the key
// columns are staged into for GroupKey.
func colJoinKeyAt(cb *data.ColBatch, keys []int, i int, scratch *data.Tuple) data.Value {
	if len(keys) == 1 {
		return cb.Col(keys[0]).ValueAt(i)
	}
	w := cb.Width()
	if cap(*scratch) < w {
		*scratch = make(data.Tuple, w)
	}
	t := (*scratch)[:w]
	for _, c := range keys {
		v := cb.Col(c).ValueAt(i)
		if v.IsNull() {
			return data.Null()
		}
		t[c] = v
	}
	return GroupKey(t, keys)
}

type hjState uint8

const (
	hjInit hjState = iota
	hjJoin
	hjDone
)

// JoinType selects the join semantics of a HashJoin. The probe side is
// the preserved side for the outer/semi/anti variants, because the probe
// input streams and a preserved build side would require end-of-join
// bitmap scans; the SQL planner orients joins accordingly.
type JoinType uint8

// Join types.
const (
	// InnerJoin emits build ⧺ probe for every match.
	InnerJoin JoinType = iota
	// ProbeOuterJoin additionally emits NULL-padded build columns for
	// probe tuples without a match (SQL LEFT JOIN with the preserved
	// relation on the probe side).
	ProbeOuterJoin
	// SemiJoin emits each probe tuple once iff a match exists; the output
	// schema is the probe schema alone.
	SemiJoin
	// AntiJoin emits each probe tuple iff no match exists; the output
	// schema is the probe schema alone.
	AntiJoin
)

func (t JoinType) String() string {
	switch t {
	case InnerJoin:
		return "inner"
	case ProbeOuterJoin:
		return "outer"
	case SemiJoin:
		return "semi"
	default:
		return "anti"
	}
}

// NewHashJoin joins build ⋈ probe on build.Schema()[buildKey] =
// probe.Schema()[probeKey]. The output schema is build columns followed by
// probe columns.
func NewHashJoin(build, probe Operator, buildKey, probeKey int) *HashJoin {
	return NewHashJoinMulti(build, probe, []int{buildKey}, []int{probeKey}, InnerJoin)
}

// NewHashJoinMulti joins on the conjunction of several column equalities
// (§4.1's "join conditions involving ... conjunctions of multiple
// attributes"): tuples match when every corresponding key column pair is
// equal. buildKeys and probeKeys must have equal non-zero length.
func NewHashJoinMulti(build, probe Operator, buildKeys, probeKeys []int, t JoinType) *HashJoin {
	if len(buildKeys) == 0 || len(buildKeys) != len(probeKeys) {
		panic(fmt.Sprintf("exec: NewHashJoinMulti: key arity mismatch %d vs %d",
			len(buildKeys), len(probeKeys)))
	}
	j := &HashJoin{
		build:     build,
		probe:     probe,
		buildKeys: buildKeys,
		probeKeys: probeKeys,
		parts:     16,
		joinType:  t,
	}
	j.schema = build.Schema().Concat(probe.Schema())
	switch t {
	case SemiJoin, AntiJoin:
		j.schema = probe.Schema()
	case ProbeOuterJoin:
		j.nullBuild = make(data.Tuple, build.Schema().Len())
	}
	return j
}

// NewHashJoinTyped creates a hash join with explicit join semantics.
func NewHashJoinTyped(build, probe Operator, buildKey, probeKey int, t JoinType) *HashJoin {
	return NewHashJoinMulti(build, probe, []int{buildKey}, []int{probeKey}, t)
}

// JoinKeyOf extracts a join key from a tuple: the single column value, or
// a composite value for multi-column keys (any NULL component yields
// NULL, since a NULL never equals anything).
func JoinKeyOf(t data.Tuple, cols []int) data.Value {
	if len(cols) == 1 {
		return t[cols[0]]
	}
	for _, c := range cols {
		if t[c].IsNull() {
			return data.Null()
		}
	}
	return GroupKey(t, cols)
}

// Type returns the join semantics.
func (j *HashJoin) Type() JoinType { return j.joinType }

// NewHashJoinOn resolves the join columns by qualified name.
func NewHashJoinOn(build, probe Operator, buildTable, buildCol, probeTable, probeCol string) *HashJoin {
	return NewHashJoin(build, probe,
		build.Schema().MustResolve(buildTable, buildCol),
		probe.Schema().MustResolve(probeTable, probeCol))
}

// SetPartitions overrides the number of grace partitions (default 16).
func (j *HashJoin) SetPartitions(p int) *HashJoin {
	if p < 1 {
		p = 1
	}
	j.parts = p
	return j
}

// SetMemoryBudget caps the bytes buffered across partition buffers;
// overflowing partitions spill to temporary files (0 = unlimited, the
// default). The budget is split evenly across partitions and sides.
func (j *HashJoin) SetMemoryBudget(bytes int64) *HashJoin {
	j.memBudget = bytes
	return j
}

// Spilled reports how many partition buffers went to disk (both sides).
func (j *HashJoin) Spilled() int { return j.spilled }

// SetSpillFS routes the join's spill I/O through fs (nil restores the
// real filesystem); tests inject a vfs.FaultFS here.
func (j *HashJoin) SetSpillFS(fs vfs.FS) *HashJoin {
	j.spillFS = fs
	return j
}

// SetParallelism selects the batch-at-a-time grace partition passes with
// k scatter workers, and — for k ≥ 2 — the partition-parallel join
// (second) phase with min(k, partitions) join workers (see
// JoinWorkers). k is capped at GOMAXPROCS when the scatter passes run;
// k=1 runs the batched passes serially (still batch-at-a-time, no extra
// goroutines); k=0 restores the default tuple-at-a-time passes. When a
// memory budget is set, the partition passes run batched but serial
// regardless of k so spill accounting stays single-threaded — the join
// phase still parallelizes, since joining spilled partitions is
// per-partition independent.
func (j *HashJoin) SetParallelism(k int) *HashJoin {
	if k < 0 {
		k = 0
	}
	j.workers = k
	return j
}

// Batched reports whether the partition passes run batch-at-a-time.
func (j *HashJoin) Batched() bool { return j.workers > 0 }

// Workers returns the number of scatter workers the batched partition
// passes will use (≥ 1; 1 when batching is off). Without morsel scans
// the count is capped at GOMAXPROCS — extra single-reader scatter
// workers only add handoff cost. Morsel mode lifts the cap, like
// JoinWorkers: goroutines time-slice, and the differential tests
// exercise the concurrent claim path on any machine. A memory budget
// always forces 1 (spill accounting is single-threaded).
func (j *HashJoin) Workers() int {
	k := j.workers
	if max := runtime.GOMAXPROCS(0); !j.morsel && k > max {
		k = max
	}
	if j.memBudget > 0 || k < 1 {
		k = 1
	}
	return k
}

// JoinWorkers returns the number of workers the join (second) phase will
// use: min(SetParallelism k, partitions), 1 when batching is off or k=1.
// Unlike the scatter passes it is neither capped at GOMAXPROCS
// (goroutines time-slice, and tests exercise the concurrent path on any
// machine) nor forced serial by a memory budget: after the partition
// passes every partition — in-memory or spilled — is joined
// independently.
func (j *HashJoin) JoinWorkers() int {
	k := j.workers
	if k > j.parts {
		k = j.parts
	}
	if k < 1 {
		k = 1
	}
	return k
}

// partitionAppend buffers a tuple for partition p on one side, spilling
// the buffer when it exceeds its budget share.
func (j *HashJoin) partitionAppend(parts [][]data.Tuple, spill []*spillFile,
	bytes []int64, p int, t data.Tuple, width int) error {
	if spill != nil && spill[p] != nil {
		j.stats.SpillBytes.Add(int64(t.Size()))
		return spill[p].append(t)
	}
	parts[p] = append(parts[p], t)
	if j.memBudget <= 0 {
		return nil
	}
	bytes[p] += int64(t.Size())
	if bytes[p] <= j.memBudget/int64(2*j.parts) {
		return nil
	}
	// Overflow: dump this partition's buffer and switch it to disk.
	f, err := newSpillFile(j.spillFS, width)
	if err != nil {
		return err
	}
	for _, buf := range parts[p] {
		if err := f.append(buf); err != nil {
			f.close()
			return err
		}
	}
	j.stats.SpillFiles.Add(1)
	j.stats.SpillBytes.Add(bytes[p])
	j.traceMark("spill", int64(len(parts[p])), bytes[p])
	parts[p] = nil
	spill[p] = f
	j.spilled++
	return nil
}

// Build returns the build child; Probe the probe child.
func (j *HashJoin) Build() Operator { return j.build }

// Probe returns the probe child.
func (j *HashJoin) Probe() Operator { return j.probe }

// BuildKey returns the first build-side join column index.
func (j *HashJoin) BuildKey() int { return j.buildKeys[0] }

// ProbeKey returns the first probe-side join column index.
func (j *HashJoin) ProbeKey() int { return j.probeKeys[0] }

// BuildKeys returns the build-side join column indexes.
func (j *HashJoin) BuildKeys() []int { return j.buildKeys }

// ProbeKeys returns the probe-side join column indexes.
func (j *HashJoin) ProbeKeys() []int { return j.probeKeys }

// Name implements Operator.
func (j *HashJoin) Name() string {
	kind := ""
	if j.joinType != InnerJoin {
		kind = j.joinType.String() + " "
	}
	conds := ""
	for i := range j.buildKeys {
		if i > 0 {
			conds += " AND "
		}
		conds += j.build.Schema().Cols[j.buildKeys[i]].Qualified() + " = " +
			j.probe.Schema().Cols[j.probeKeys[i]].Qualified()
	}
	return fmt.Sprintf("HashJoin(%s%s)", kind, conds)
}

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.build, j.probe} }

// Open implements Operator.
func (j *HashJoin) Open() error {
	if err := j.build.Open(); err != nil {
		return err
	}
	return j.probe.Open()
}

// Next implements Operator.
func (j *HashJoin) Next() (data.Tuple, error) {
	if err := j.ensurePartitioned(); err != nil {
		return nil, err
	}
	var t data.Tuple
	var err error
	switch {
	case j.joinPar != nil:
		t, err = j.nextParallel()
	case j.colMode:
		t, err = j.advanceColRow()
	default:
		t, err = j.advance(data.Tuple.Concat)
	}
	if err != nil {
		return nil, err
	}
	if t == nil {
		return j.finish()
	}
	return j.emitOut(t)
}

// NextBatch implements BatchOperator: the join (second) pass fills whole
// output batches, bump-allocating the concatenated tuples out of a shared
// arena instead of one make per output row. Hooks and counters behave as
// in Next.
func (j *HashJoin) NextBatch() (data.Batch, error) {
	if err := j.ensurePartitioned(); err != nil {
		return nil, err
	}
	if j.joinPar != nil {
		return j.nextParallelOutBatch()
	}
	if j.outBuf == nil {
		j.outBuf = make(data.Batch, 0, data.BatchSize())
	}
	out := j.outBuf[:0]
	for len(out) < cap(out) {
		var t data.Tuple
		var err error
		if j.colMode {
			t, err = j.advanceColRow()
		} else {
			t, err = j.advance(j.arenaConcat)
		}
		if err != nil {
			return nil, err
		}
		if t == nil {
			break
		}
		if j.OnOutput != nil {
			j.OnOutput(t)
		}
		out = append(out, t)
	}
	j.outBuf = out
	return j.emitBatch(out)
}

// ensurePartitioned runs the partition phases once, choosing the batched
// passes when parallelism is enabled.
func (j *HashJoin) ensurePartitioned() error {
	if j.state != hjInit {
		return nil
	}
	if j.OnBeforePartition != nil {
		j.OnBeforePartition(j)
	}
	j.partStarted.Store(true)
	var err error
	switch {
	case j.colMode:
		err = j.partitionPhasesColumnar()
	case j.workers > 0:
		err = j.partitionPhasesBatched()
	default:
		err = j.partitionPhases()
	}
	if err != nil {
		return err
	}
	j.state = hjJoin
	return nil
}

// beginJoinPhase starts the join (second) phase after the partition
// passes: the partition-parallel workers when JoinWorkers() > 1, the
// serial partition cursor otherwise.
func (j *HashJoin) beginJoinPhase() error {
	j.curPart = 0
	if j.JoinWorkers() > 1 {
		j.startParallelJoin()
		return nil
	}
	if j.colMode {
		return j.loadColPartition(0)
	}
	return j.loadPartition(0)
}

// arenaConcat concatenates two tuples into the join's output arena,
// amortizing the allocation across a whole batch of output rows.
func (j *HashJoin) arenaConcat(a, b data.Tuple) data.Tuple {
	n := len(a) + len(b)
	if len(j.arena) < n {
		j.arena = make([]data.Value, n*data.BatchSize())
	}
	out := j.arena[:n:n]
	j.arena = j.arena[n:]
	copy(out, a)
	copy(out[len(a):], b)
	return data.Tuple(out)
}

// advance produces the next join output tuple of the second pass, or nil
// when the join is exhausted. concat builds build⧺probe output rows, so
// Next and NextBatch can allocate differently. The OnOutput hook and the
// emission count are the caller's responsibility.
func (j *HashJoin) advance(concat func(a, b data.Tuple) data.Tuple) (data.Tuple, error) {
	for j.state == hjJoin {
		if err := j.pollCtx(); err != nil {
			return nil, err
		}
		// Emit pending matches for the current probe tuple.
		if j.matchPos < len(j.matches) {
			m := j.matches[j.matchPos]
			j.matchPos++
			return concat(m, j.probeTup), nil
		}
		// Advance to the next probe tuple in the current partition.
		probeTup, err := j.nextProbeInPartition()
		if err != nil {
			return nil, err
		}
		if probeTup != nil {
			j.probeTup = probeTup
			j.joinedProbes.Add(1)
			key := JoinKeyOf(j.probeTup, j.probeKeys)
			var matches []data.Tuple
			if !key.IsNull() {
				matches = j.ht.lookup(key)
			}
			switch j.joinType {
			case SemiJoin:
				if len(matches) > 0 {
					return j.probeTup, nil
				}
				continue
			case AntiJoin:
				if len(matches) == 0 {
					return j.probeTup, nil
				}
				continue
			case ProbeOuterJoin:
				if len(matches) == 0 {
					return concat(j.nullBuild, j.probeTup), nil
				}
			}
			j.matches = matches
			j.matchPos = 0
			continue
		}
		// Advance to the next partition.
		if j.probeFile != nil {
			err := j.probeFile.close()
			j.probeSpill[j.curPart] = nil
			j.probeFile = nil
			if err != nil {
				return nil, err
			}
		}
		if j.tracing() {
			j.traceEnd(fmt.Sprintf("join[%d]", j.curPart), j.joinedProbes.Load()-j.partProbes, 0, 0)
		}
		j.curPart++
		if j.curPart >= j.parts {
			j.state = hjDone
			j.done.Store(true)
			break
		}
		if err := j.loadPartition(j.curPart); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// initPartitions allocates the per-partition buffers for both sides.
// colMode uses pooled lane buffers (fetched lazily on first append)
// instead of the row-major slices.
func (j *HashJoin) initPartitions() {
	if j.colMode {
		j.buildColParts = make([]*data.ColBatch, j.parts)
		j.probeColParts = make([]*data.ColBatch, j.parts)
	} else {
		j.buildParts = make([][]data.Tuple, j.parts)
		j.probeParts = make([][]data.Tuple, j.parts)
	}
	j.buildSpill = make([]*spillFile, j.parts)
	j.probeSpill = make([]*spillFile, j.parts)
	j.buildBytes = make([]int64, j.parts)
	j.probeBytes = make([]int64, j.parts)
}

// partitionPhases runs the tuple-at-a-time build and probe partition
// passes (the default mode).
func (j *HashJoin) partitionPhases() error {
	j.initPartitions()
	buildWidth := j.build.Schema().Len()
	probeWidth := j.probe.Schema().Len()
	j.traceBegin("build")
	for {
		if err := j.pollCtx(); err != nil {
			return err
		}
		t, err := j.build.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		j.buildRows.Add(1)
		if j.OnBuildTuple != nil {
			j.OnBuildTuple(t)
		}
		k := JoinKeyOf(t, j.buildKeys)
		if k.IsNull() {
			continue // NULL keys never join
		}
		p := int(hashValue(k) % uint64(j.parts))
		if err := j.partitionAppend(j.buildParts, j.buildSpill, j.buildBytes, p, t, buildWidth); err != nil {
			return err
		}
	}
	j.traceEnd("build", j.buildRows.Load(), 0, int64(j.spilled))
	j.traceBegin("probe")
	for {
		if err := j.pollCtx(); err != nil {
			return err
		}
		t, err := j.probe.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		j.probeRows.Add(1)
		if j.OnProbeTuple != nil {
			j.OnProbeTuple(t)
		}
		k := JoinKeyOf(t, j.probeKeys)
		if k.IsNull() {
			// NULL keys never match; they are preserved only by the
			// probe-preserving join types.
			if j.joinType == ProbeOuterJoin || j.joinType == AntiJoin {
				if err := j.partitionAppend(j.probeParts, j.probeSpill, j.probeBytes, 0, t, probeWidth); err != nil {
					return err
				}
			}
			continue
		}
		p := int(hashValue(k) % uint64(j.parts))
		if err := j.partitionAppend(j.probeParts, j.probeSpill, j.probeBytes, p, t, probeWidth); err != nil {
			return err
		}
	}
	j.traceEnd("probe", j.probeRows.Load(), 0, int64(j.spilled))
	if j.OnProbeEnd != nil {
		j.OnProbeEnd()
	}
	return j.beginJoinPhase()
}

// emitOut fires the output hook and counts the emission.
func (j *HashJoin) emitOut(out data.Tuple) (data.Tuple, error) {
	if j.OnOutput != nil {
		j.OnOutput(out)
	}
	return j.emit(out)
}

// loadPartition builds the in-memory hash table for one partition,
// reading spilled build tuples back from disk, and positions the probe
// cursor (in-memory slice or spilled stream).
func (j *HashJoin) loadPartition(p int) error {
	if err := j.ctxErr(); err != nil {
		return err
	}
	if j.tracing() {
		j.traceBegin(fmt.Sprintf("join[%d]", p))
		j.partProbes = j.joinedProbes.Load()
	}
	buildTuples := j.buildParts[p]
	if f := j.buildSpill[p]; f != nil {
		var err error
		buildTuples, err = f.readAll()
		if err != nil {
			return err
		}
		j.buildSpill[p] = nil
		if err := f.close(); err != nil {
			return err
		}
	}
	j.ht.build(buildTuples, j.buildKeys)
	j.buildParts[p] = nil // partition consumed
	j.probeFile = nil
	if f := j.probeSpill[p]; f != nil {
		if err := f.startRead(); err != nil {
			return err
		}
		j.probeFile = f
	}
	j.curProbe = 0
	j.matches = nil
	j.matchPos = 0
	return nil
}

// nextProbeInPartition advances the probe cursor within the current
// partition, returning nil at partition end.
func (j *HashJoin) nextProbeInPartition() (data.Tuple, error) {
	if j.probeFile != nil {
		return j.probeFile.next()
	}
	if j.curPart < j.parts && j.curProbe < len(j.probeParts[j.curPart]) {
		t := j.probeParts[j.curPart][j.curProbe]
		j.curProbe++
		return t, nil
	}
	return nil, nil
}

// Close implements Operator. Both children are always closed and every
// spill file released; all errors are reported via errors.Join.
func (j *HashJoin) Close() error {
	if j.joinPar != nil {
		// Stop the join-phase workers (no-op if they already drained every
		// partition) and wait for them, so the spill-file cleanup below
		// happens-after any worker I/O.
		j.joinPar.shutdown()
	}
	j.buildParts, j.probeParts, j.matches = nil, nil, nil
	j.ht.clear()
	j.releaseColParts()
	var errs []error
	for _, f := range j.buildSpill {
		if f != nil {
			errs = append(errs, f.close())
		}
	}
	for _, f := range j.probeSpill {
		if f != nil {
			errs = append(errs, f.close())
		}
	}
	j.buildSpill, j.probeSpill, j.probeFile = nil, nil, nil
	j.traceMark("close", j.stats.Emitted.Load(), 0)
	errs = append(errs, j.build.Close(), j.probe.Close())
	return errors.Join(errs...)
}

// BuildRows returns the number of build tuples read (available after the
// first Next call).
func (j *HashJoin) BuildRows() int64 { return j.buildRows.Load() }

// ProbeRows returns the number of probe tuples read.
func (j *HashJoin) ProbeRows() int64 { return j.probeRows.Load() }

// PartitionStarted reports whether the join has begun consuming its
// inputs (the build partition pass has started). Once true, the join —
// and transitively its children — must never be restructured; the
// re-optimizer re-verifies this barrier per operator before touching a
// segment, and the adversarial timing tests read it under -race.
func (j *HashJoin) PartitionStarted() bool { return j.partStarted.Load() }

// mutable panics unless the join can still be restructured: inputs not
// yet consumed, no output produced. The re-optimizer checks the same
// conditions before committing, so a panic here is a barrier bug, not
// a recoverable condition.
func (j *HashJoin) mutable(opName string) {
	if j.partStarted.Load() || j.state != hjInit || j.stats.Emitted.Load() > 0 {
		panic(fmt.Sprintf("exec: %s on a started HashJoin %s", opName, j.Name()))
	}
}

// SwapSides exchanges the build and probe inputs (and their key lists)
// of a not-yet-started inner join, recomputing the output schema as
// newBuild ⧺ newProbe — the honest schema of the swapped orientation,
// deliberately NOT the original column order (the estimator framework
// resolves key provenance against build-width prefixes, so lying about
// the schema would corrupt it). Callers restore the original column
// order with one Reorder wrapper above the restructured segment.
// Inner joins only: the probe side is the preserved side of the other
// join types, so swapping them changes semantics.
func (j *HashJoin) SwapSides() {
	j.mutable("SwapSides")
	if j.joinType != InnerJoin {
		panic(fmt.Sprintf("exec: SwapSides on a %s join %s", j.joinType, j.Name()))
	}
	j.build, j.probe = j.probe, j.build
	j.buildKeys, j.probeKeys = j.probeKeys, j.buildKeys
	j.schema = j.build.Schema().Concat(j.probe.Schema())
}

// Relink replaces the probe child (and its key columns) of a
// not-yet-started join, recomputing the output schema. The
// re-optimizer uses it to rewire a chain segment's interior joins onto
// their new downstream inputs; probeKeys must index newProbe's schema.
func (j *HashJoin) Relink(newProbe Operator, probeKeys []int) {
	j.mutable("Relink")
	if len(probeKeys) != len(j.buildKeys) {
		panic(fmt.Sprintf("exec: Relink key arity %d vs %d on %s",
			len(probeKeys), len(j.buildKeys), j.Name()))
	}
	j.probe = newProbe
	j.probeKeys = probeKeys
	switch j.joinType {
	case SemiJoin, AntiJoin:
		j.schema = newProbe.Schema()
	default:
		j.schema = j.build.Schema().Concat(newProbe.Schema())
	}
}

// ReplaceProbe swaps in a schema-identical probe child of a
// not-yet-started join — the seam for inserting the identity-restoring
// Reorder wrapper at the top of a restructured segment. Unlike Relink
// it works for any join type, because the schema cannot change. The
// check compares the new child against the probe segment of the join's
// own (fixed) output schema rather than the old child's: by the time
// the re-optimizer inserts the wrapper, the old child is an interior
// join it has already relinked, so its live schema no longer reflects
// what this join was built over.
func (j *HashJoin) ReplaceProbe(newProbe Operator) {
	j.mutable("ReplaceProbe")
	want := j.schema.Cols
	switch j.joinType {
	case SemiJoin, AntiJoin:
		// Output schema is the probe schema alone.
	default:
		want = want[len(j.build.Schema().Cols):]
	}
	newCols := newProbe.Schema().Cols
	if len(want) != len(newCols) {
		panic(fmt.Sprintf("exec: ReplaceProbe schema width %d vs %d", len(newCols), len(want)))
	}
	for i := range want {
		if want[i] != newCols[i] {
			panic(fmt.Sprintf("exec: ReplaceProbe schema mismatch at column %d (%s vs %s)",
				i, newCols[i].Qualified(), want[i].Qualified()))
		}
	}
	j.probe = newProbe
}

// ResetObservers detaches every estimator/monitor hook from the join.
// Composed hooks cannot be un-composed individually, so when the
// re-optimizer restructures a chain it discards the whole observer set
// of the affected joins and reattaches fresh estimators (safe exactly
// because the joins are unstarted: no observation state exists yet).
// OnBeforePartition survives — it is the re-optimizer's own seam.
func (j *HashJoin) ResetObservers() {
	j.OnBuildTuple = nil
	j.OnProbeTuple = nil
	j.OnProbeEnd = nil
	j.OnOutput = nil
	j.OnBuildBatch = nil
	j.OnProbeBatch = nil
	j.OnBuildEnd = nil
	j.OnBuildCol = nil
	j.OnProbeCol = nil
	j.OnBuildColBatch = nil
	j.OnProbeColBatch = nil
}

// JoinedProbeFraction returns the fraction of the probe input consumed by
// the join (second) pass — the x-axis of the paper's Figure 4 and the
// driver progress the dne/byte estimators observe for hash joins.
func (j *HashJoin) JoinedProbeFraction() float64 {
	probed := j.probeRows.Load()
	if probed == 0 {
		if j.done.Load() {
			return 1
		}
		return 0
	}
	return float64(j.joinedProbes.Load()) / float64(probed)
}
