package exec

import (
	"fmt"
	"io"
	"sync/atomic"

	"qpi/internal/data"
)

// This file implements the lane-native columnar grace hash join: the
// partition passes scatter input rows lane-to-lane into per-partition
// ColBatch buffers (no row-major partition buffers, no per-row tuple
// references), the join table indexes rows of the build partition's
// lanes straight off its key lane, and the join (second) phase gathers
// output lane-to-lane through (build row, probe row) pair buffers.
// Spilled partitions write columnar frames directly from the lanes and
// stream back as lane chunks — no FromTuples/ToTuples pivot anywhere on
// the columnar path.
//
// Partition assignment hashes the identical data.Value either way, so
// the partition layout — and therefore the join's partition-clustered
// output order — is byte-identical to the row passes. Estimator hooks
// (per-tuple, span, worker-indexed) fire on the input batches before the
// scatter, exactly as before, so estimates are bit-identical too.

// SetColumnar selects the columnar partition passes, columnar spill
// frames, and the columnar join output (NextColBatch). The passes are
// serial — vectorized scatter replaces worker parallelism — and take
// precedence over SetParallelism for the partition phase; the join
// (second) phase still parallelizes per JoinWorkers.
func (j *HashJoin) SetColumnar(on bool) *HashJoin {
	j.colMode = on
	return j
}

// Columnar reports whether the columnar partition passes are selected.
func (j *HashJoin) Columnar() bool { return j.colMode }

// colPassConfig describes one columnar partition pass (build or probe
// side); the mirror of passConfig for the lane-native scatter.
type colPassConfig struct {
	child     Operator
	keys      []int
	tupleHook func(data.Tuple)
	colHook   func(cb *data.ColBatch)
	// colBatchHook is the worker-indexed span hook
	// (OnBuildColBatch/OnProbeColBatch): fired by the owning scan worker
	// under a morselized pass, by the single pass goroutine as worker 0
	// otherwise.
	colBatchHook func(worker int, cb *data.ColBatch)
	colParts     []*data.ColBatch
	spill        []*spillFile
	bytes        []int64
	width        int
	rows         *atomic.Int64
	// keepNull routes NULL-key tuples to partition 0 instead of dropping
	// them (probe side of the probe-preserving join types).
	keepNull bool
}

// partitionPhasesColumnar is partitionPhases driven ColBatch-at-a-time.
func (j *HashJoin) partitionPhasesColumnar() error {
	j.initPartitions()
	build := colPassConfig{
		child:        j.build,
		keys:         j.buildKeys,
		tupleHook:    j.OnBuildTuple,
		colHook:      j.OnBuildCol,
		colBatchHook: j.OnBuildColBatch,
		colParts:     j.buildColParts,
		spill:        j.buildSpill,
		bytes:        j.buildBytes,
		width:        j.build.Schema().Len(),
		rows:         &j.buildRows,
	}
	j.traceBegin("build")
	if err := j.partitionPassColumnar(&build); err != nil {
		return err
	}
	j.traceEnd("build", j.buildRows.Load(), 0, int64(j.spilled))
	if j.OnBuildEnd != nil {
		j.OnBuildEnd()
	}
	probe := colPassConfig{
		child:        j.probe,
		keys:         j.probeKeys,
		tupleHook:    j.OnProbeTuple,
		colHook:      j.OnProbeCol,
		colBatchHook: j.OnProbeColBatch,
		colParts:     j.probeColParts,
		spill:        j.probeSpill,
		bytes:        j.probeBytes,
		width:        j.probe.Schema().Len(),
		rows:         &j.probeRows,
		keepNull:     j.joinType == ProbeOuterJoin || j.joinType == AntiJoin,
	}
	j.traceBegin("probe")
	if err := j.partitionPassColumnar(&probe); err != nil {
		return err
	}
	j.traceEnd("probe", j.probeRows.Load(), 0, int64(j.spilled))
	if j.OnProbeEnd != nil {
		j.OnProbeEnd()
	}
	return j.beginJoinPhase()
}

// partitionPassColumnar runs one partition pass over whole ColBatches —
// morsel-driven when the child is an eligible scan, serial otherwise.
// Per-tuple hooks fire in row order before the columnar hooks, matching
// the hook ordering contract of the row passes.
func (j *HashJoin) partitionPassColumnar(cfg *colPassConfig) error {
	if sc := j.morselScanOf(cfg.child); sc != nil {
		return j.partitionPassColMorsel(cfg, sc)
	}
	in := AsColOperator(cfg.child)
	for {
		if err := j.ctxErr(); err != nil {
			return err
		}
		cb, err := in.NextColBatch()
		if err != nil {
			return err
		}
		if cb == nil {
			return nil
		}
		cfg.rows.Add(int64(cb.Live()))
		if cfg.tupleHook != nil {
			rows := cb.MaterializeRows()
			if cb.Sel == nil {
				for i := 0; i < cb.NRows; i++ {
					cfg.tupleHook(rows[i])
				}
			} else {
				for _, i := range cb.Sel {
					cfg.tupleHook(rows[i])
				}
			}
		}
		if cfg.colHook != nil {
			cfg.colHook(cb)
		}
		if cfg.colBatchHook != nil {
			cfg.colBatchHook(0, cb)
		}
		if err := j.scatterColBatch(cfg, cb); err != nil {
			return err
		}
	}
}

// scatterColBatch partitions one batch's live rows lane-to-lane. Single
// homogeneous integer keys partition straight off the flat Ints lane;
// everything else extracts the key off the lanes per row.
func (j *HashJoin) scatterColBatch(cfg *colPassConfig, cb *data.ColBatch) error {
	if len(cfg.keys) == 1 {
		kv := cb.Col(cfg.keys[0])
		if kv.Homogeneous() && kv.Kind == data.KindInt {
			return j.scatterIntKey(cfg, cb, kv)
		}
	}
	scatter := func(i int) error {
		k := colJoinKeyAt(cb, cfg.keys, i, &j.colKeyScratch)
		p := 0
		if k.IsNull() {
			if !cfg.keepNull {
				return nil
			}
		} else {
			p = int(hashValue(k) % uint64(j.parts))
		}
		return j.colPartitionAppend(cfg, p, cb, i)
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			if err := scatter(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range cb.Sel {
		if err := scatter(int(i)); err != nil {
			return err
		}
	}
	return nil
}

// scatterIntKey is the vectorized scatter for a single homogeneous
// integer key column: partition assignment reads the flat int64 lane and
// hashes data.Int(v) — the exact Value JoinKeyOf would produce — so the
// layout matches the row passes bit for bit.
func (j *HashJoin) scatterIntKey(cfg *colPassConfig, cb *data.ColBatch, kv *data.ColVec) error {
	nparts := uint64(j.parts)
	scatter := func(i int) error {
		if kv.Nulls.Get(i) {
			if !cfg.keepNull {
				return nil
			}
			return j.colPartitionAppend(cfg, 0, cb, i)
		}
		p := int(hashValue(data.Int(kv.Ints[i])) % nparts)
		return j.colPartitionAppend(cfg, p, cb, i)
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			if err := scatter(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range cb.Sel {
		if err := scatter(int(i)); err != nil {
			return err
		}
	}
	return nil
}

// colPartitionAppend appends src's row i to partition p lane-to-lane,
// spilling the partition's lanes when they exceed their budget share —
// the columnar mirror of partitionAppend. Partition buffers come from
// the ColBatch pool and keep their lane capacity across reuse.
func (j *HashJoin) colPartitionAppend(cfg *colPassConfig, p int, src *data.ColBatch, i int) error {
	if cfg.spill[p] != nil {
		j.stats.SpillBytes.Add(int64(src.RowBytes(i)))
		return cfg.spill[p].appendColRow(src, i)
	}
	dst := cfg.colParts[p]
	if dst == nil {
		dst = data.GetColBatch()
		dst.BeginBuild(cfg.width)
		cfg.colParts[p] = dst
	}
	dst.AppendFrom(src, i)
	if j.memBudget <= 0 {
		return nil
	}
	cfg.bytes[p] += int64(src.RowBytes(i))
	if cfg.bytes[p] <= j.memBudget/int64(2*j.parts) {
		return nil
	}
	// Overflow: dump this partition's lanes frame-at-a-time and switch it
	// to disk.
	f, err := newSpillFile(j.spillFS, cfg.width)
	if err != nil {
		return err
	}
	f.setColumnar()
	if err := f.appendColAll(dst); err != nil {
		f.close()
		return err
	}
	j.stats.SpillFiles.Add(1)
	j.stats.SpillBytes.Add(cfg.bytes[p])
	j.traceMark("spill", int64(dst.NRows), cfg.bytes[p])
	data.PutColBatch(dst)
	cfg.colParts[p] = nil
	cfg.spill[p] = f
	j.spilled++
	return nil
}

// Pair markers for the build side of a (build row, probe row) pair.
const (
	colPairProbeOnly int32 = -2 // semi/anti: the output row is the probe row alone
	colPairNullBuild int32 = -1 // outer miss: NULL-padded build columns
)

// loadColPartition builds the lane-native hash table for one partition
// (reading spilled build frames back into lanes) and positions the probe
// cursor on the partition's lanes or its spill frame stream.
func (j *HashJoin) loadColPartition(p int) error {
	if err := j.ctxErr(); err != nil {
		return err
	}
	if j.tracing() {
		j.traceBegin(fmt.Sprintf("join[%d]", p))
		j.partProbes = j.joinedProbes.Load()
	}
	cp := j.buildColParts[p]
	j.buildColParts[p] = nil
	if f := j.buildSpill[p]; f != nil {
		cp = data.GetColBatch()
		err := f.readAllCol(cp)
		j.buildSpill[p] = nil
		cerr := f.close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			data.PutColBatch(cp)
			return err
		}
	}
	j.colTab.build(cp, j.buildKeys, &j.colKeyScratch)
	j.colBuild = cp
	j.probeFile = nil
	j.colProbePart = nil
	j.colProbe = nil
	j.colProbeRow = 0
	j.colProbeKey = nil
	j.colMatches = nil
	j.colMatchPos = 0
	j.colGen++
	if f := j.probeSpill[p]; f != nil {
		if err := f.startRead(); err != nil {
			return err
		}
		j.probeFile = f
		return nil
	}
	if pp := j.probeColParts[p]; pp != nil {
		j.probeColParts[p] = nil
		j.colProbePart = pp
		j.setColProbeChunk(pp)
	}
	return nil
}

// setColProbeChunk points the probe cursor at a new chunk (partition
// lanes or a decoded spill frame) and caches its int key lane when the
// single-integer-key fast path applies.
func (j *HashJoin) setColProbeChunk(cb *data.ColBatch) {
	j.colProbe = cb
	j.colProbeRow = 0
	j.colProbeKey = nil
	j.colGen++
	if cb != nil && len(j.probeKeys) == 1 {
		if kv := cb.Col(j.probeKeys[0]); kv.Homogeneous() && kv.Kind == data.KindInt {
			j.colProbeKey = kv
		}
	}
}

// nextProbeFrame decodes the next spilled probe frame into the decode
// buffer not currently being gathered from (double-buffered, so pending
// pairs against the previous frame stay valid), returning nil at end of
// partition.
func (j *HashJoin) nextProbeFrame() (*data.ColBatch, error) {
	if j.colDecA == nil {
		j.colDecA = data.GetColBatch()
		j.colDecB = data.GetColBatch()
	}
	// Pick the decode buffer no live reference pins. Pending (ungathered)
	// pairs pin their snapshot source — which survives partition
	// boundaries, where colProbe has already been reset — otherwise the
	// current chunk is the only hot buffer. At most one buffer is ever
	// pinned: a chunk that produced pairs forces a fill break before the
	// next decode, so the other buffer is free by construction.
	dst := j.colDecA
	if len(j.colPairB) > 0 {
		if j.colGatherP == j.colDecA {
			dst = j.colDecB
		}
	} else if j.colProbe == j.colDecA {
		dst = j.colDecB
	}
	err := j.probeFile.nextColFrame(dst)
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// endColPartition closes out the current partition: the finished
// partition's lanes move to the retire queue (they stay gatherable until
// the caller's next pair fill) and the next partition loads.
func (j *HashJoin) endColPartition() error {
	if j.probeFile != nil {
		err := j.probeFile.close()
		j.probeSpill[j.curPart] = nil
		j.probeFile = nil
		if err != nil {
			return err
		}
	}
	if j.tracing() {
		j.traceEnd(fmt.Sprintf("join[%d]", j.curPart), j.joinedProbes.Load()-j.partProbes, 0, 0)
	}
	if j.colBuild != nil {
		j.colRetire = append(j.colRetire, j.colBuild)
		j.colBuild = nil
	}
	if j.colProbePart != nil {
		j.colRetire = append(j.colRetire, j.colProbePart)
		j.colProbePart = nil
	}
	j.colProbe = nil
	j.colProbeKey = nil
	j.colGen++
	j.curPart++
	if j.curPart >= j.parts {
		j.state = hjDone
		j.done.Store(true)
		return nil
	}
	return j.loadColPartition(j.curPart)
}

// nextColPair advances the columnar join state machine by one output
// row, returning its (build row, probe row) pair: a matched build row
// index, colPairNullBuild for an outer miss, or colPairProbeOnly for
// semi/anti output. ok is false when the join is exhausted. The row
// indexes address j.colBuild / j.colProbe as of return; those sources
// switch only when colGen bumps.
func (j *HashJoin) nextColPair() (br, pr int32, ok bool, err error) {
	for j.state == hjJoin {
		if err := j.pollCtx(); err != nil {
			return 0, 0, false, err
		}
		// Emit pending matches for the current probe row.
		if j.colMatchPos < len(j.colMatches) {
			m := j.colMatches[j.colMatchPos]
			j.colMatchPos++
			return m, j.colProbeCur, true, nil
		}
		// Advance to the next probe row in the current chunk.
		if j.colProbe != nil && j.colProbeRow < j.colProbe.NRows {
			i := j.colProbeRow
			j.colProbeRow++
			j.joinedProbes.Add(1)
			j.colProbeCur = int32(i)
			var matches []int32
			if kv := j.colProbeKey; kv != nil {
				if !kv.Nulls.Get(i) {
					matches = j.colTab.lookupInt(kv.Ints[i])
				}
			} else {
				k := colJoinKeyAt(j.colProbe, j.probeKeys, i, &j.colKeyScratch)
				if !k.IsNull() {
					matches = j.colTab.lookup(k)
				}
			}
			switch j.joinType {
			case SemiJoin:
				if len(matches) > 0 {
					return colPairProbeOnly, int32(i), true, nil
				}
				continue
			case AntiJoin:
				if len(matches) == 0 {
					return colPairProbeOnly, int32(i), true, nil
				}
				continue
			case ProbeOuterJoin:
				if len(matches) == 0 {
					return colPairNullBuild, int32(i), true, nil
				}
			}
			j.colMatches = matches
			j.colMatchPos = 0
			continue
		}
		// Chunk exhausted: next spill frame, else next partition.
		if j.probeFile != nil {
			next, err := j.nextProbeFrame()
			if err != nil {
				return 0, 0, false, err
			}
			if next != nil {
				j.setColProbeChunk(next)
				continue
			}
		}
		if err := j.endColPartition(); err != nil {
			return 0, 0, false, err
		}
	}
	return 0, 0, false, nil
}

// drainColRetire returns retired partition lanes to the pool. Called at
// the top of each fill/advance, when the previous call's output no
// longer references them.
func (j *HashJoin) drainColRetire() {
	for i, cb := range j.colRetire {
		data.PutColBatch(cb)
		j.colRetire[i] = nil
	}
	j.colRetire = j.colRetire[:0]
}

// fillColPairs fills the pair buffers with up to max output rows, all
// addressing one (colGatherB, colGatherP) source pair. A pair produced
// just after a source switch is stashed and served first on the next
// fill. Returns 0 only when the join is exhausted.
func (j *HashJoin) fillColPairs(max int) (int, error) {
	j.drainColRetire()
	j.colPairB = j.colPairB[:0]
	j.colPairP = j.colPairP[:0]
	appendPair := func(b, p int32) {
		if len(j.colPairB) == 0 {
			j.colGatherB, j.colGatherP = j.colBuild, j.colProbe
		}
		j.colPairB = append(j.colPairB, b)
		j.colPairP = append(j.colPairP, p)
	}
	if j.colPendSet {
		j.colPendSet = false
		appendPair(j.colPendB, j.colPendP)
	}
	gen := j.colGen
	for len(j.colPairB) < max {
		br, pr, ok, err := j.nextColPair()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		if j.colGen != gen {
			if len(j.colPairB) > 0 {
				// Sources switched under this pair: gather what we have and
				// serve it on the next fill.
				j.colPendB, j.colPendP, j.colPendSet = br, pr, true
				break
			}
			gen = j.colGen
		}
		appendPair(br, pr)
	}
	return len(j.colPairB), nil
}

// gatherPairs appends the buffered pairs' output rows to out, one typed
// lane copy per column — no intermediate tuple materialization.
func (j *HashJoin) gatherPairs(out *data.ColBatch) {
	n := len(j.colPairB)
	if n == 0 {
		return
	}
	base := out.NRows
	off := 0
	if j.joinType == InnerJoin || j.joinType == ProbeOuterJoin {
		bw := j.build.Schema().Len()
		for c := 0; c < bw; c++ {
			var src *data.ColVec
			if j.colGatherB != nil {
				src = j.colGatherB.Col(c)
			}
			out.OwnCol(c).GatherFrom(src, j.colPairB, base)
		}
		off = bw
	}
	pw := j.probe.Schema().Len()
	for c := 0; c < pw; c++ {
		out.OwnCol(off+c).GatherFrom(j.colGatherP.Col(c), j.colPairP, base)
	}
	out.NRows = base + n
	j.colPairB = j.colPairB[:0]
	j.colPairP = j.colPairP[:0]
}

// advanceColRow is the row-output driver over the columnar join phase:
// it produces one pair per call and materializes the output tuple from
// the partition lanes into the row arena (Next/NextBatch in colMode, and
// the NextColBatch hook fallback).
func (j *HashJoin) advanceColRow() (data.Tuple, error) {
	j.drainColRetire()
	var br, pr int32
	if j.colPendSet {
		br, pr = j.colPendB, j.colPendP
		j.colPendSet = false
	} else {
		var ok bool
		var err error
		br, pr, ok, err = j.nextColPair()
		if err != nil || !ok {
			return nil, err
		}
	}
	return j.materializeColRow(br, pr), nil
}

// materializeColRow builds the output tuple for one pair out of the
// current partition lanes, bump-allocated from the row arena.
func (j *HashJoin) materializeColRow(br, pr int32) data.Tuple {
	pw := j.probe.Schema().Len()
	probe := j.colProbe
	if j.joinType == SemiJoin || j.joinType == AntiJoin {
		out := j.colRowAlloc(pw)
		for c := 0; c < pw; c++ {
			out[c] = probe.Value(c, int(pr))
		}
		return out
	}
	bw := j.build.Schema().Len()
	out := j.colRowAlloc(bw + pw)
	if br < 0 {
		for c := range out[:bw] {
			out[c] = data.Value{} // NULL-padded build side, as nullBuild
		}
	} else {
		b := j.colBuild
		for c := 0; c < bw; c++ {
			out[c] = b.Value(c, int(br))
		}
	}
	for c := 0; c < pw; c++ {
		out[bw+c] = probe.Value(c, int(pr))
	}
	return out
}

// colRowAlloc carves one output tuple from the columnar row arena.
func (j *HashJoin) colRowAlloc(n int) data.Tuple {
	if len(j.colRowArena) < n {
		j.colRowArena = make([]data.Value, n*data.BatchSize())
	}
	out := j.colRowArena[:n:n]
	j.colRowArena = j.colRowArena[n:]
	return data.Tuple(out)
}

// releaseColParts returns every columnar partition buffer and decode
// buffer to the pool (Close path; also safe mid-join).
func (j *HashJoin) releaseColParts() {
	for i, cb := range j.buildColParts {
		if cb != nil {
			data.PutColBatch(cb)
			j.buildColParts[i] = nil
		}
	}
	for i, cb := range j.probeColParts {
		if cb != nil {
			data.PutColBatch(cb)
			j.probeColParts[i] = nil
		}
	}
	j.buildColParts, j.probeColParts = nil, nil
	if j.colBuild != nil {
		data.PutColBatch(j.colBuild)
		j.colBuild = nil
	}
	if j.colProbePart != nil {
		data.PutColBatch(j.colProbePart)
		j.colProbePart = nil
	}
	if j.colDecA != nil {
		data.PutColBatch(j.colDecA)
		j.colDecA = nil
	}
	if j.colDecB != nil {
		data.PutColBatch(j.colDecB)
		j.colDecB = nil
	}
	j.drainColRetire()
	j.colProbe, j.colProbeKey = nil, nil
	j.colGatherB, j.colGatherP = nil, nil
	j.colTab.clear()
	j.colMatches = nil
}

// NextColBatch implements ColOperator: the join (second) pass gathers
// output values directly into reused column lanes, one typed copy per
// column per pair buffer. When a per-tuple output hook is attached
// (progress monitors) or the parallel join phase is active, output falls
// back to the row batch path — hooks see materialized tuples, parallel
// drains stay row-oriented — and the rows are re-exposed columnar
// without copying.
func (j *HashJoin) NextColBatch() (*data.ColBatch, error) {
	if err := j.ensurePartitioned(); err != nil {
		return nil, err
	}
	if j.joinPar != nil || j.OnOutput != nil {
		b, err := j.NextBatch()
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			return nil, nil
		}
		j.colOut.SetRows(b, j.schema.Len())
		return &j.colOut, nil
	}
	out := &j.colOut
	out.BeginBuild(j.schema.Len())
	limit := data.BatchSize()
	for out.NRows < limit {
		n, err := j.fillColPairs(limit - out.NRows)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		j.gatherPairs(out)
	}
	return j.emitColBatch(out)
}
