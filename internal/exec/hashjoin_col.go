package exec

import (
	"sync/atomic"

	"qpi/internal/data"
)

// This file implements the columnar grace partition passes and the
// columnar join output. The partition passes consume ColBatches and, for
// the dominant single-integer-key case, hash partition assignments
// straight off the flat int64 key lane without materializing a key Value
// per row. Partition assignment hashes the identical data.Value either
// way, so the partition layout — and therefore the join's
// partition-clustered output order — is byte-identical to the row
// passes. The join (second) pass gathers output values directly into
// reused column lanes: no per-row tuple concatenation, no Value copies
// into an arena (the dominant allocation cost of the batch output path
// on wide outputs).

// SetColumnar selects the columnar partition passes, columnar spill
// frames, and the columnar join output (NextColBatch). The passes are
// serial — vectorized scatter replaces worker parallelism — and take
// precedence over SetParallelism for the partition phase; the join
// (second) phase still parallelizes per JoinWorkers.
func (j *HashJoin) SetColumnar(on bool) *HashJoin {
	j.colMode = on
	return j
}

// Columnar reports whether the columnar partition passes are selected.
func (j *HashJoin) Columnar() bool { return j.colMode }

// colPassConfig describes one columnar partition pass (build or probe
// side); the mirror of passConfig for the columnar scatter.
type colPassConfig struct {
	child     Operator
	keys      []int
	tupleHook func(data.Tuple)
	colHook   func(cb *data.ColBatch)
	// colBatchHook is the worker-indexed span hook
	// (OnBuildColBatch/OnProbeColBatch): fired by the owning scan worker
	// under a morselized pass, by the single pass goroutine as worker 0
	// otherwise.
	colBatchHook func(worker int, cb *data.ColBatch)
	parts        [][]data.Tuple
	spill        []*spillFile
	bytes        []int64
	width        int
	rows         *atomic.Int64
	// keepNull routes NULL-key tuples to partition 0 instead of dropping
	// them (probe side of the probe-preserving join types).
	keepNull bool
}

// partitionPhasesColumnar is partitionPhases driven ColBatch-at-a-time.
func (j *HashJoin) partitionPhasesColumnar() error {
	j.initPartitions()
	build := colPassConfig{
		child:        j.build,
		keys:         j.buildKeys,
		tupleHook:    j.OnBuildTuple,
		colHook:      j.OnBuildCol,
		colBatchHook: j.OnBuildColBatch,
		parts:        j.buildParts,
		spill:        j.buildSpill,
		bytes:        j.buildBytes,
		width:        j.build.Schema().Len(),
		rows:         &j.buildRows,
	}
	j.traceBegin("build")
	if err := j.partitionPassColumnar(&build); err != nil {
		return err
	}
	j.traceEnd("build", j.buildRows.Load(), 0, int64(j.spilled))
	if j.OnBuildEnd != nil {
		j.OnBuildEnd()
	}
	probe := colPassConfig{
		child:        j.probe,
		keys:         j.probeKeys,
		tupleHook:    j.OnProbeTuple,
		colHook:      j.OnProbeCol,
		colBatchHook: j.OnProbeColBatch,
		parts:        j.probeParts,
		spill:        j.probeSpill,
		bytes:        j.probeBytes,
		width:        j.probe.Schema().Len(),
		rows:         &j.probeRows,
		keepNull:     j.joinType == ProbeOuterJoin || j.joinType == AntiJoin,
	}
	j.traceBegin("probe")
	if err := j.partitionPassColumnar(&probe); err != nil {
		return err
	}
	j.traceEnd("probe", j.probeRows.Load(), 0, int64(j.spilled))
	if j.OnProbeEnd != nil {
		j.OnProbeEnd()
	}
	return j.beginJoinPhase()
}

// partitionPassColumnar runs one partition pass over whole ColBatches —
// morsel-driven when the child is an eligible scan, serial otherwise.
// Per-tuple hooks fire in row order before the columnar hooks, matching
// the hook ordering contract of the row passes.
func (j *HashJoin) partitionPassColumnar(cfg *colPassConfig) error {
	if sc := j.morselScanOf(cfg.child); sc != nil {
		return j.partitionPassColMorsel(cfg, sc)
	}
	in := AsColOperator(cfg.child)
	for {
		if err := j.ctxErr(); err != nil {
			return err
		}
		cb, err := in.NextColBatch()
		if err != nil {
			return err
		}
		if cb == nil {
			return nil
		}
		cfg.rows.Add(int64(cb.Live()))
		var rows []data.Tuple
		if cfg.tupleHook != nil {
			rows = cb.MaterializeRows()
			if cb.Sel == nil {
				for i := 0; i < cb.NRows; i++ {
					cfg.tupleHook(rows[i])
				}
			} else {
				for _, i := range cb.Sel {
					cfg.tupleHook(rows[i])
				}
			}
		}
		if cfg.colHook != nil {
			cfg.colHook(cb)
		}
		if cfg.colBatchHook != nil {
			cfg.colBatchHook(0, cb)
		}
		if err := j.scatterColBatch(cfg, cb, rows); err != nil {
			return err
		}
	}
}

// scatterColBatch partitions one batch's live rows. Single homogeneous
// integer keys partition straight off the flat Ints lane; everything
// else goes through JoinKeyOf per row.
func (j *HashJoin) scatterColBatch(cfg *colPassConfig, cb *data.ColBatch, rows []data.Tuple) error {
	if rows == nil {
		rows = cb.MaterializeRows()
	}
	if len(cfg.keys) == 1 {
		kv := cb.Col(cfg.keys[0])
		if kv.Homogeneous() && kv.Kind == data.KindInt {
			return j.scatterIntKey(cfg, cb, kv, rows)
		}
	}
	scatter := func(i int) error {
		k := JoinKeyOf(rows[i], cfg.keys)
		p := 0
		if k.IsNull() {
			if !cfg.keepNull {
				return nil
			}
		} else {
			p = int(hashValue(k) % uint64(j.parts))
		}
		return j.partitionAppend(cfg.parts, cfg.spill, cfg.bytes, p, rows[i], cfg.width)
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			if err := scatter(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range cb.Sel {
		if err := scatter(int(i)); err != nil {
			return err
		}
	}
	return nil
}

// scatterIntKey is the vectorized scatter for a single homogeneous
// integer key column: partition assignment reads the flat int64 lane and
// hashes data.Int(v) — the exact Value JoinKeyOf would produce — so the
// layout matches the row passes bit for bit.
func (j *HashJoin) scatterIntKey(cfg *colPassConfig, cb *data.ColBatch, kv *data.ColVec, rows []data.Tuple) error {
	nparts := uint64(j.parts)
	scatter := func(i int) error {
		if kv.Nulls.Get(i) {
			if !cfg.keepNull {
				return nil
			}
			return j.partitionAppend(cfg.parts, cfg.spill, cfg.bytes, 0, rows[i], cfg.width)
		}
		p := int(hashValue(data.Int(kv.Ints[i])) % nparts)
		return j.partitionAppend(cfg.parts, cfg.spill, cfg.bytes, p, rows[i], cfg.width)
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			if err := scatter(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range cb.Sel {
		if err := scatter(int(i)); err != nil {
			return err
		}
	}
	return nil
}

// hjColSentinel marks a join row already gathered into the columnar
// output lanes by gatherConcat; advance returns it in place of a
// materialized concatenation. Distinguishable from real rows because
// every join output schema has at least one column.
var hjColSentinel = make(data.Tuple, 0)

// gatherConcat appends the concatenated output row straight into the
// columnar output lanes and returns the sentinel — no per-row Value copy
// into an arena, no output tuple headers. (A column-at-a-time transpose
// of buffered pairs was tried and measured no faster: it trades the
// lane-cycling dispatch for a pointer chase into 2×BatchSize scattered
// tuples per lane, and the source-side misses dominate.)
func (j *HashJoin) gatherConcat(a, b data.Tuple) data.Tuple {
	j.colOut.AppendRow2(a, b)
	return hjColSentinel
}

// NextColBatch implements ColOperator: the join (second) pass gathers
// output values directly into reused column lanes. When a per-tuple
// output hook is attached (progress monitors) or the parallel join phase
// is active, output falls back to the row batch path — hooks see
// materialized tuples, parallel drains stay row-oriented — and the rows
// are re-exposed columnar without copying.
func (j *HashJoin) NextColBatch() (*data.ColBatch, error) {
	if err := j.ensurePartitioned(); err != nil {
		return nil, err
	}
	if j.joinPar != nil || j.OnOutput != nil {
		b, err := j.NextBatch()
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			return nil, nil
		}
		j.colOut.SetRows(b, j.schema.Len())
		return &j.colOut, nil
	}
	if j.gatherFn == nil {
		j.gatherFn = j.gatherConcat
	}
	out := &j.colOut
	out.BeginBuild(j.schema.Len())
	limit := data.BatchSize()
	for out.NRows < limit {
		t, err := j.advance(j.gatherFn)
		if err != nil {
			return nil, err
		}
		if t == nil {
			break
		}
		if len(t) != 0 {
			// Semi/anti joins return the probe tuple itself rather than a
			// concatenation; gathered concatenations (inner and outer
			// output) already landed in the lanes via the sentinel.
			out.AppendRow(t)
		}
	}
	return j.emitColBatch(out)
}
