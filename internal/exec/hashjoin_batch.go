package exec

import (
	"sync"
	"sync/atomic"

	"qpi/internal/data"
)

// This file implements the batch-at-a-time grace partition passes,
// including the parallel scatter: K workers consume input batches, hash
// the join keys and scatter tuples into per-worker partition buffers that
// are concatenated (in worker order) at the pass barrier. The reader
// goroutine keeps firing the per-tuple hooks, so monitors and composed
// user hooks never see concurrency; workers fire only the batch hooks
// (OnBuildBatch/OnProbeBatch), which the estimation framework backs with
// per-worker histogram shards merged at the barrier.

// passConfig describes one partition pass (build or probe side).
type passConfig struct {
	child     Operator
	keys      []int
	tupleHook func(data.Tuple)
	batchHook func(worker int, b data.Batch)
	parts     [][]data.Tuple
	spill     []*spillFile
	bytes     []int64
	width     int
	rows      *atomic.Int64
	// keepNull routes NULL-key tuples to partition 0 instead of dropping
	// them (probe side of the probe-preserving join types).
	keepNull bool
}

// partitionPhasesBatched is partitionPhases driven batch-at-a-time, with
// the scatter work fanned out to Workers() goroutines when no memory
// budget forces serial spill accounting.
func (j *HashJoin) partitionPhasesBatched() error {
	j.initPartitions()
	build := passConfig{
		child:     j.build,
		keys:      j.buildKeys,
		tupleHook: j.OnBuildTuple,
		batchHook: j.OnBuildBatch,
		parts:     j.buildParts,
		spill:     j.buildSpill,
		bytes:     j.buildBytes,
		width:     j.build.Schema().Len(),
		rows:      &j.buildRows,
	}
	j.traceBegin("build")
	if err := j.partitionPassBatched(&build); err != nil {
		return err
	}
	j.traceEnd("build", j.buildRows.Load(), 0, int64(j.spilled))
	if j.OnBuildEnd != nil {
		j.OnBuildEnd()
	}
	probe := passConfig{
		child:     j.probe,
		keys:      j.probeKeys,
		tupleHook: j.OnProbeTuple,
		batchHook: j.OnProbeBatch,
		parts:     j.probeParts,
		spill:     j.probeSpill,
		bytes:     j.probeBytes,
		width:     j.probe.Schema().Len(),
		rows:      &j.probeRows,
		keepNull:  j.joinType == ProbeOuterJoin || j.joinType == AntiJoin,
	}
	j.traceBegin("probe")
	if err := j.partitionPassBatched(&probe); err != nil {
		return err
	}
	j.traceEnd("probe", j.probeRows.Load(), 0, int64(j.spilled))
	if j.OnProbeEnd != nil {
		j.OnProbeEnd()
	}
	return j.beginJoinPhase()
}

// partitionPassBatched runs one partition pass over whole batches:
// morsel-driven when the child is an eligible scan, single-reader
// parallel scatter when workers are configured, serial otherwise.
func (j *HashJoin) partitionPassBatched(cfg *passConfig) error {
	if sc := j.morselScanOf(cfg.child); sc != nil {
		return j.partitionPassMorsel(cfg, sc)
	}
	if j.Workers() > 1 {
		return j.partitionPassParallel(cfg)
	}
	in := AsBatch(cfg.child)
	for {
		if err := j.ctxErr(); err != nil {
			return err
		}
		b, err := in.NextBatch()
		if err != nil {
			return err
		}
		if len(b) == 0 {
			return nil
		}
		cfg.rows.Add(int64(len(b)))
		if cfg.tupleHook != nil {
			for _, t := range b {
				cfg.tupleHook(t)
			}
		}
		if cfg.batchHook != nil {
			cfg.batchHook(0, b)
		}
		for _, t := range b {
			k := JoinKeyOf(t, cfg.keys)
			p := 0
			if k.IsNull() {
				if !cfg.keepNull {
					continue
				}
			} else {
				p = int(hashValue(k) % uint64(j.parts))
			}
			if err := j.partitionAppend(cfg.parts, cfg.spill, cfg.bytes, p, t, cfg.width); err != nil {
				return err
			}
		}
	}
}

// partitionPassParallel fans the hash/scatter work of one pass out to
// Workers() goroutines. The reader pulls batches, fires the per-tuple
// hooks, and hands each batch (copied out of the producer's reused
// buffer) to a worker; each worker fires the batch hook and scatters into
// its private per-partition buffers. At the barrier the private buffers
// are concatenated in worker order. Only reachable with no memory budget,
// so scatter never spills and workers cannot fail.
func (j *HashJoin) partitionPassParallel(cfg *passConfig) error {
	workers := j.Workers()
	locals := make([][][]data.Tuple, workers)
	work := make(chan data.Batch, workers)
	free := make(chan data.Batch, workers+1)
	for i := 0; i < workers+1; i++ {
		free <- make(data.Batch, 0, data.BatchSize())
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([][]data.Tuple, j.parts)
			for b := range work {
				if cfg.batchHook != nil {
					cfg.batchHook(w, b)
				}
				j.scatterBatchLocal(local, b, cfg.keys, cfg.keepNull)
				free <- b[:0]
			}
			locals[w] = local
		}(w)
	}
	in := AsBatch(cfg.child)
	var readErr error
	for {
		// The reader is the single cancellation point of the parallel
		// pass: on ctx expiry it stops pulling and closes the work
		// channel, so the scatter workers finish their in-flight batch
		// and exit — no leaked goroutines, at most one extra batch of
		// work per worker.
		if readErr = j.ctxErr(); readErr != nil {
			break
		}
		b, err := in.NextBatch()
		if err != nil {
			readErr = err
			break
		}
		if len(b) == 0 {
			break
		}
		cfg.rows.Add(int64(len(b)))
		if cfg.tupleHook != nil {
			for _, t := range b {
				cfg.tupleHook(t)
			}
		}
		buf := <-free
		work <- append(buf, b...)
	}
	close(work)
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	j.mergeLocals(cfg.parts, locals)
	return nil
}
