package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"qpi/internal/data"
	"qpi/internal/expr"
	"qpi/internal/storage"
)

// Differential tests for the join operators themselves: every physical
// join and every execution mode (tuple, batch, parallel partition pass,
// forced spill) must produce the same multiset as a naive reference join
// written from first principles. Unlike internal/difftest this layer has
// no plan generator and no estimators — it isolates operator semantics.

// keyVal maps the test key encoding to a join key value: key < 0 means
// NULL; str renders the key as a string (same equality classes, but the
// join is forced off the int-lane fast paths onto the generic scatter,
// fallback table and string-lane kernels).
func keyVal(k int64, str bool) data.Value {
	if k < 0 {
		return data.Null()
	}
	if str {
		return data.Str(fmt.Sprintf("key-%03d", k))
	}
	return data.Int(k)
}

// kvTable builds a two-column table (k, id): key < 0 means NULL key, and
// id is the row position so every row is distinguishable.
func kvTable(name string, keys []int64) *storage.Table {
	return kvTableKeyed(name, keys, false)
}

// kvTableKeyed is kvTable with a selectable key kind.
func kvTableKeyed(name string, keys []int64, str bool) *storage.Table {
	kind := data.KindInt
	if str {
		kind = data.KindString
	}
	s := data.NewSchema(
		data.Column{Table: name, Name: "k", Kind: kind},
		data.Column{Table: name, Name: "id", Kind: data.KindInt},
	)
	t := storage.NewTable(name, s)
	for i, k := range keys {
		t.MustAppend(data.Tuple{keyVal(k, str), data.Int(int64(i))})
	}
	return t
}

// refJoin is the naive reference: NULL keys never match; semi/anti emit
// the probe tuple alone (anti keeps NULL-key probe rows); probe-outer
// NULL-pads the build side; inner emits build ++ probe per match.
func refJoin(build, probe []int64, jt JoinType) []string {
	return refJoinKeyed(build, probe, jt, false)
}

// refJoinKeyed is refJoin with a selectable key kind. The int encoding
// is injective into the string rendering, so match structure is
// identical either way.
func refJoinKeyed(build, probe []int64, jt JoinType, str bool) []string {
	index := map[int64][]int{}
	for i, k := range build {
		if k >= 0 {
			index[k] = append(index[k], i)
		}
	}
	var out []string
	for pi, pk := range probe {
		var matches []int
		if pk >= 0 {
			matches = index[pk]
		}
		p := data.Tuple{keyVal(pk, str), data.Int(int64(pi))}
		switch jt {
		case SemiJoin:
			if len(matches) > 0 {
				out = append(out, p.String())
			}
		case AntiJoin:
			if len(matches) == 0 {
				out = append(out, p.String())
			}
		case ProbeOuterJoin:
			if len(matches) == 0 {
				row := append(data.Tuple{data.Null(), data.Null()}, p...)
				out = append(out, row.String())
				continue
			}
			fallthrough
		default:
			for _, bi := range matches {
				row := append(data.Tuple{keyVal(build[bi], str), data.Int(int64(bi))}, p...)
				out = append(out, row.String())
			}
		}
	}
	sort.Strings(out)
	return out
}

func sortedStrings(rows []data.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func drainMode(t *testing.T, op Operator, batched, columnar bool) []data.Tuple {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var rows []data.Tuple
	var err error
	switch {
	case columnar:
		rows, err = DrainCol(AsColOperator(op))
	case batched:
		rows, err = DrainBatch(AsBatch(op))
	default:
		rows, err = Drain(op)
	}
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rows
}

func equalMultisets(t *testing.T, label string, got []data.Tuple, want []string) {
	t.Helper()
	g := sortedStrings(got)
	if len(g) != len(want) {
		t.Fatalf("%s: %d rows, reference says %d", label, len(g), len(want))
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("%s: multiset mismatch at sorted row %d: got %s want %s", label, i, g[i], want[i])
		}
	}
}

// randKeys draws n keys from [0, dom) with a NULL fraction; negative
// values encode NULL.
func randKeys(rng *rand.Rand, n, dom int, nullFrac float64) []int64 {
	out := make([]int64, n)
	for i := range out {
		if rng.Float64() < nullFrac {
			out[i] = -1
			continue
		}
		out[i] = int64(rng.Intn(dom))
	}
	return out
}

// checkHashJoinModes runs one (build, probe, type) input through tuple,
// batch, parallel, forced-spill, columnar and columnar-spill execution
// and compares each against the reference.
func checkHashJoinModes(t *testing.T, build, probe []int64, jt JoinType) {
	t.Helper()
	checkHashJoinModesKeyed(t, build, probe, jt, false)
}

// checkHashJoinModesKeyed is checkHashJoinModes with a selectable key
// kind. String keys route the scatter, build table and probe off the
// int-lane fast paths; the build input is additionally run through a
// vectorized string filter (LIKE-prefix AND >= kernels, both
// tautologies over the key encoding) so the columnar modes exercise the
// sel-in/sel-out string kernels inline. The filter drops NULL build
// keys, which the join drops anyway for every type checked here.
func checkHashJoinModesKeyed(t *testing.T, build, probe []int64, jt JoinType, str bool) {
	t.Helper()
	want := refJoinKeyed(build, probe, jt, str)
	modes := []struct {
		name     string
		batched  bool
		columnar bool
		morsel   bool
		workers  int
		budget   int64
	}{
		{name: "tuple"},
		{name: "batch", batched: true, workers: 1},
		{name: "parallel", batched: true, workers: 3},
		{name: "spill", budget: 128},
		{name: "columnar", columnar: true},
		{name: "columnar-spill", columnar: true, budget: 128},
		{name: "morsel", batched: true, morsel: true, workers: 3},
		{name: "columnar-morsel", columnar: true, morsel: true, workers: 3},
	}
	for _, m := range modes {
		var bsrc Operator = NewScan(kvTableKeyed("b", build, str), "")
		if str {
			like, err := expr.NewLike(expr.Col{Index: 0}, "key-%", false)
			if err != nil {
				t.Fatal(err)
			}
			bsrc = NewFilter(bsrc, expr.AndOf(
				like,
				expr.Compare(expr.GE, expr.Col{Index: 0}, expr.Lit(data.Str("key-"))),
			))
		}
		j := NewHashJoinMulti(
			bsrc,
			NewScan(kvTableKeyed("p", probe, str), ""),
			[]int{0}, []int{0}, jt,
		)
		if m.workers > 0 {
			j.SetParallelism(m.workers)
		}
		if m.budget > 0 {
			j.SetMemoryBudget(m.budget)
		}
		if m.columnar {
			j.SetColumnar(true)
		}
		if m.morsel {
			// Single-block morsels force many concurrent claims even on
			// these small tables.
			j.SetMorsel(true).SetMorselBlocks(1)
		}
		equalMultisets(t, jt.String()+"/"+m.name, drainMode(t, j, m.batched, m.columnar), want)
		if m.budget > 0 && j.Stats().SpillFiles.Load() == 0 {
			t.Errorf("%s/%s: no spill files created", jt, m.name)
		}
	}
}

func TestHashJoinModesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	types := []JoinType{InnerJoin, SemiJoin, AntiJoin, ProbeOuterJoin}
	for trial := 0; trial < 12; trial++ {
		build := randKeys(rng, 20+rng.Intn(60), 1+rng.Intn(12), 0.2)
		probe := randKeys(rng, 20+rng.Intn(60), 1+rng.Intn(12), 0.2)
		// Odd trials rerun the same key structure as strings, covering
		// the generic (non-int-lane) scatter and fallback build table.
		checkHashJoinModesKeyed(t, build, probe, types[trial%len(types)], trial%2 == 1)
	}
}

// FuzzJoinModes lets the fuzzer pick the key distributions; every input
// is checked across all four join types and every execution mode. Bit 0
// of flags switches the join keys to strings, driving the generic
// lane-native scatter, the fallback build table and the vectorized
// string-comparison kernels.
func FuzzJoinModes(f *testing.F) {
	f.Add(int64(1), 20, 30, 5, uint8(0), uint8(0))
	f.Add(int64(9), 50, 8, 2, uint8(1), uint8(0))
	f.Add(int64(3), 8, 80, 16, uint8(3), uint8(0))
	f.Add(int64(5), 25, 40, 6, uint8(0), uint8(1))
	f.Add(int64(13), 60, 12, 3, uint8(2), uint8(1))
	f.Add(int64(21), 10, 90, 20, uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nb, np, dom int, jti, flags uint8) {
		if nb < 1 || nb > 120 || np < 1 || np > 120 || dom < 1 || dom > 64 {
			t.Skip("out of bounds")
		}
		rng := rand.New(rand.NewSource(seed))
		build := randKeys(rng, nb, dom, 0.15)
		probe := randKeys(rng, np, dom, 0.15)
		jt := []JoinType{InnerJoin, SemiJoin, AntiJoin, ProbeOuterJoin}[int(jti)%4]
		checkHashJoinModesKeyed(t, build, probe, jt, flags&1 == 1)
	})
}

// TestMergeJoinTupleBatchEquivalence: the sort-merge join must agree with
// the reference inner join and with itself across tuple and batch pulls.
func TestMergeJoinTupleBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		left := randKeys(rng, 15+rng.Intn(50), 1+rng.Intn(10), 0)
		right := randKeys(rng, 15+rng.Intn(50), 1+rng.Intn(10), 0)
		want := refJoin(left, right, InnerJoin)
		for _, batched := range []bool{false, true} {
			mj, _, _ := NewSortMergeJoin(
				NewScan(kvTable("l", left), ""),
				NewScan(kvTable("r", right), ""),
				0, 0,
			)
			label := "merge/tuple"
			if batched {
				label = "merge/batch"
			}
			equalMultisets(t, label, drainMode(t, mj, batched, false), want)
		}
	}
}

// TestNLJoinTupleBatchEquivalence: same for the indexed nested-loops
// join, including NULL keys on both sides (skipped by the index).
func TestNLJoinTupleBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		outer := randKeys(rng, 15+rng.Intn(50), 1+rng.Intn(10), 0.2)
		inner := randKeys(rng, 15+rng.Intn(50), 1+rng.Intn(10), 0.2)
		want := refJoin(outer, inner, InnerJoin)
		for _, batched := range []bool{false, true} {
			nl := NewIndexedNLJoin(
				NewScan(kvTable("o", outer), ""),
				NewScan(kvTable("i", inner), ""),
				0, 0,
			)
			label := "nl/tuple"
			if batched {
				label = "nl/batch"
			}
			equalMultisets(t, label, drainMode(t, nl, batched, false), want)
		}
	}
}
