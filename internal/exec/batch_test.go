package exec

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"qpi/internal/data"
	"qpi/internal/expr"
	"qpi/internal/storage"
)

// allowWorkers raises GOMAXPROCS for the duration of a test so the
// parallel scatter path actually runs multi-worker even on single-CPU
// machines (HashJoin.Workers caps at GOMAXPROCS).
func allowWorkers(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// drainTuples runs an operator tuple-at-a-time and returns its rows.
func drainTuples(t *testing.T, op Operator) []data.Tuple {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	rows, err := Drain(op)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rows
}

// drainBatches runs an operator through its batch path and returns its rows.
func drainBatches(t *testing.T, op Operator) []data.Tuple {
	t.Helper()
	b := AsBatch(op)
	if err := b.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	rows, err := DrainBatch(b)
	if err != nil {
		t.Fatalf("DrainBatch: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return rows
}

// fingerprints renders rows into comparable strings.
func fingerprints(rows []data.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

// requireSameRows asserts two result sets are identical; ordered compares
// row-by-row, unordered compares sorted multisets (the parallel scatter
// interleaves tuples within a partition nondeterministically).
func requireSameRows(t *testing.T, want, got []data.Tuple, ordered bool, label string) {
	t.Helper()
	w, g := fingerprints(want), fingerprints(got)
	if !ordered {
		sort.Strings(w)
		sort.Strings(g)
	}
	if len(w) != len(g) {
		t.Fatalf("%s: %d rows vs %d", label, len(w), len(g))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: row %d differs: %s vs %s", label, i, w[i], g[i])
		}
	}
}

// requireSameStats asserts the final operator stats agree between modes.
func requireSameStats(t *testing.T, a, b Operator, label string) {
	t.Helper()
	sa, sb := a.Stats(), b.Stats()
	if sa.Emitted.Load() != sb.Emitted.Load() {
		t.Errorf("%s: Emitted %d vs %d", label, sa.Emitted.Load(), sb.Emitted.Load())
	}
	if sa.IsDone() != sb.IsDone() {
		t.Errorf("%s: Done %v vs %v", label, sa.IsDone(), sb.IsDone())
	}
}

func TestScanBatchEquivalence(t *testing.T) {
	vals := make([]int64, 5*storage.BlockSize+17) // partial last batch + partial block
	for i := range vals {
		vals[i] = int64(i)
	}
	mk := func() *Scan {
		sc := NewScan(makeTable("t", vals), "")
		sc.SampleFraction = 0.3
		sc.Seed = 7
		return sc
	}
	tup := mk()
	var tupAt int
	seen := 0
	tup.OnTuple = func(data.Tuple) { seen++ }
	tup.OnSampleEnd = func() { tupAt = seen }
	want := drainTuples(t, tup)

	bat := mk()
	var batAt int
	bseen := 0
	bat.OnTuple = func(data.Tuple) { bseen++ }
	bat.OnSampleEnd = func() { batAt = bseen }
	got := drainBatches(t, bat)

	requireSameRows(t, want, got, true, "scan")
	requireSameStats(t, tup, bat, "scan")
	if tupAt != batAt || tupAt == 0 {
		t.Errorf("sample punctuation: tuple mode at %d, batch mode at %d", tupAt, batAt)
	}
}

func TestFilterProjectLimitBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := make([][2]int64, 4000)
	for i := range rows {
		rows[i] = [2]int64{int64(rng.Intn(50)), int64(rng.Intn(1000))}
	}
	mk := func() Operator {
		sc := NewScan(makeTable2("t", rows), "")
		f := NewFilter(sc, expr.Compare(expr.LT, expr.Column(sc.Schema(), "t", "x"), expr.IntLit(20)))
		p := ProjectColumns(f, [2]string{"t", "y"}, [2]string{"t", "x"})
		return NewLimit(p, 1500)
	}
	a, b := mk(), mk()
	requireSameRows(t, drainTuples(t, a), drainBatches(t, b), true, "filter/project/limit")
	requireSameStats(t, a, b, "filter/project/limit")
}

func TestHashAggBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows := make([][2]int64, 3000)
	for i := range rows {
		rows[i] = [2]int64{int64(rng.Intn(40)), int64(rng.Intn(100))}
	}
	mk := func() Operator {
		return NewHashAgg(NewScan(makeTable2("t", rows), ""), []int{0}, []AggSpec{
			{Func: CountStar, Name: "c"},
			{Func: Sum, Col: 1, Name: "s"},
			{Func: Min, Col: 1, Name: "lo"},
		})
	}
	a, b := mk(), mk()
	requireSameRows(t, drainTuples(t, a), drainBatches(t, b), true, "hashagg")
	requireSameStats(t, a, b, "hashagg")
}

func TestHashJoinBatchEquivalence(t *testing.T) {
	allowWorkers(t, 4)
	rng := rand.New(rand.NewSource(13))
	build := make([]int64, 2500)
	probe := make([]int64, 3000)
	for i := range build {
		build[i] = int64(rng.Intn(80))
	}
	for i := range probe {
		probe[i] = int64(rng.Intn(80))
	}
	for _, jt := range []JoinType{InnerJoin, ProbeOuterJoin, SemiJoin, AntiJoin} {
		mk := func(workers int) *HashJoin {
			j := NewHashJoinMulti(
				NewScan(makeTable("a", build), ""),
				NewScan(makeTable("b", probe), ""),
				[]int{0}, []int{0}, jt)
			j.SetParallelism(workers)
			return j
		}
		base := mk(0)
		want := drainTuples(t, base)
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("%v join, %d workers", jt, workers)
			j := mk(workers)
			got := drainBatches(t, j)
			// K=1 keeps input order within partitions; K>1 interleaves.
			requireSameRows(t, want, got, workers == 1, label)
			requireSameStats(t, base, j, label)
			if j.BuildRows() != base.BuildRows() || j.ProbeRows() != base.ProbeRows() {
				t.Errorf("%s: rows build=%d/%d probe=%d/%d", label,
					j.BuildRows(), base.BuildRows(), j.ProbeRows(), base.ProbeRows())
			}
		}
	}
}

// TestHashJoinNullKeysBatched checks the NULL-key rules survive the batched
// passes: build NULLs never join, probe NULLs are preserved only by the
// probe-preserving join types.
func TestHashJoinNullKeysBatched(t *testing.T) {
	allowWorkers(t, 3)
	mkSide := func(name string, vals []int64, nulls int) *storage.Table {
		sch := data.NewSchema(data.Column{Table: name, Name: "k", Kind: data.KindInt})
		tb := storage.NewTable(name, sch)
		for _, v := range vals {
			tb.MustAppend(data.Tuple{data.Int(v)})
		}
		for i := 0; i < nulls; i++ {
			tb.MustAppend(data.Tuple{data.Null()})
		}
		return tb
	}
	for _, jt := range []JoinType{InnerJoin, ProbeOuterJoin, SemiJoin, AntiJoin} {
		mk := func(workers int) *HashJoin {
			j := NewHashJoinMulti(
				NewScan(mkSide("a", []int64{1, 2, 2, 3}, 2), ""),
				NewScan(mkSide("b", []int64{2, 3, 3, 4}, 3), ""),
				[]int{0}, []int{0}, jt)
			j.SetParallelism(workers)
			return j
		}
		want := drainTuples(t, NewHashJoinMulti(
			NewScan(mkSide("a", []int64{1, 2, 2, 3}, 2), ""),
			NewScan(mkSide("b", []int64{2, 3, 3, 4}, 3), ""),
			[]int{0}, []int{0}, jt))
		for _, workers := range []int{1, 3} {
			got := drainBatches(t, mk(workers))
			requireSameRows(t, want, got, workers == 1,
				fmt.Sprintf("%v join nulls, %d workers", jt, workers))
		}
	}
}

// TestHashJoinBatchHooks checks the batched pass hook contract: per-tuple
// hooks fire once per input tuple (on the reader), batch hooks cover every
// tuple exactly once across workers, and OnBuildEnd fires between the
// passes.
func TestHashJoinBatchHooks(t *testing.T) {
	allowWorkers(t, 4)
	a := randTable("a", 2000, 50, 21)
	b := randTable("b", 2400, 50, 22)
	for _, workers := range []int{1, 4} {
		j := NewHashJoinOn(
			NewScan(makeTable("a", a), ""),
			NewScan(makeTable("b", b), ""),
			"a", "k", "b", "k")
		j.SetParallelism(workers)
		var buildTuples, probeTuples, outputs int
		var buildBatched, probeBatched int64
		buildEnd, probeEnd := false, false
		j.OnBuildTuple = func(data.Tuple) {
			if buildEnd {
				t.Error("OnBuildTuple after OnBuildEnd")
			}
			buildTuples++
		}
		j.OnProbeTuple = func(data.Tuple) {
			if !buildEnd {
				t.Error("OnProbeTuple before OnBuildEnd")
			}
			probeTuples++
		}
		j.OnBuildEnd = func() { buildEnd = true }
		j.OnProbeEnd = func() { probeEnd = true }
		j.OnOutput = func(data.Tuple) { outputs++ }
		counts := make([]int64, 8) // per-worker tallies, no sharing
		j.OnBuildBatch = func(w int, b data.Batch) { counts[w] += int64(len(b)) }
		j.OnProbeBatch = func(w int, b data.Batch) { counts[4+w] += int64(len(b)) }
		n, err := RunBatch(j)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 4; w++ {
			buildBatched += counts[w]
			probeBatched += counts[4+w]
		}
		if buildTuples != len(a) || probeTuples != len(b) {
			t.Errorf("workers=%d: per-tuple hooks build=%d probe=%d", workers, buildTuples, probeTuples)
		}
		if buildBatched != int64(len(a)) || probeBatched != int64(len(b)) {
			t.Errorf("workers=%d: batch hooks build=%d probe=%d", workers, buildBatched, probeBatched)
		}
		if !buildEnd || !probeEnd {
			t.Errorf("workers=%d: barriers build=%v probe=%v", workers, buildEnd, probeEnd)
		}
		if int64(outputs) != n {
			t.Errorf("workers=%d: OnOutput fired %d times for %d rows", workers, outputs, n)
		}
	}
}

// TestAdaptersCompose drives a tuple-only operator (Sort) through AsBatch,
// and a native batch operator through AsTuples, asserting both directions
// preserve the stream.
func TestAdaptersCompose(t *testing.T) {
	vals := randTable("t", 3000, 10000, 23)

	// Tuple-only op lifted to batches.
	s1 := NewSort(NewScan(makeTable("t", vals), ""), 0)
	want := drainTuples(t, s1)
	s2 := NewSort(NewScan(makeTable("t", vals), ""), 0)
	got := drainBatches(t, s2) // AsBatch wraps: Sort has no NextBatch
	if _, native := Operator(s2).(BatchOperator); native {
		t.Fatal("Sort unexpectedly implements BatchOperator; test needs a tuple-only op")
	}
	requireSameRows(t, want, got, true, "sort via batchAdapter")

	// Native batch op served tuple-at-a-time through AsTuples.
	sc := NewScan(makeTable("t", vals), "")
	ad := AsTuples(AsBatch(sc))
	if err := ad.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(ad)
	if err != nil {
		t.Fatal(err)
	}
	ad.Close()
	sc2 := NewScan(makeTable("t", vals), "")
	requireSameRows(t, drainTuples(t, sc2), rows, true, "scan via tupleAdapter")
}

// TestMixedModePlan pipelines a native-batch join under a tuple-only sort
// under a batch drain: the adapters must compose transparently.
func TestMixedModePlan(t *testing.T) {
	allowWorkers(t, 4)
	a := randTable("a", 1200, 60, 24)
	b := randTable("b", 1500, 60, 25)
	mk := func(workers int) Operator {
		j := NewHashJoinOn(
			NewScan(makeTable("a", a), ""),
			NewScan(makeTable("b", b), ""),
			"a", "k", "b", "k")
		j.SetParallelism(workers)
		return NewSort(j, 1)
	}
	want := drainTuples(t, mk(0))
	got := drainBatches(t, mk(4))
	// Sort on the probe key makes the comparison order-insensitive enough;
	// still compare as multisets since equal keys may interleave.
	requireSameRows(t, want, got, false, "join under sort")
}
