package data

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(7), KindInt},
		{Float(1.5), KindFloat},
		{Str("x"), KindString},
		{Bool(true), KindInt},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
}

func TestValueIsTrue(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{Int(0), false},
		{Int(1), true},
		{Int(-3), true},
		{Float(0), false},
		{Float(0.1), true},
		{Str(""), false},
		{Str("a"), true},
		{Bool(true), true},
		{Bool(false), false},
	}
	for _, c := range cases {
		if got := c.v.IsTrue(); got != c.want {
			t.Errorf("%v.IsTrue() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueConversions(t *testing.T) {
	if got := Int(3).AsFloat(); got != 3 {
		t.Errorf("Int(3).AsFloat() = %v", got)
	}
	if got := Float(3.9).AsInt(); got != 3 {
		t.Errorf("Float(3.9).AsInt() = %v", got)
	}
	if got := Str("x").AsFloat(); got != 0 {
		t.Errorf("Str.AsFloat() = %v", got)
	}
	if got := Null().AsInt(); got != 0 {
		t.Errorf("Null().AsInt() = %v", got)
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(2), Float(2.0), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Int(1), Str("1"), -1}, // numerics order before strings
		{Str("1"), Int(1), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareIntFloatConsistency(t *testing.T) {
	f := func(a int32, b int32) bool {
		// int/int and int/float comparisons must agree for exactly
		// representable values.
		return Compare(Int(int64(a)), Int(int64(b))) ==
			Compare(Int(int64(a)), Float(float64(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL should be false for join keys")
	}
	if Equal(Null(), Int(0)) || Equal(Int(0), Null()) {
		t.Error("NULL = 0 should be false")
	}
	if !Equal(Int(5), Int(5)) {
		t.Error("5 = 5 should be true")
	}
	if !Equal(Int(5), Float(5)) {
		t.Error("5 = 5.0 should be true")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-4), "-4"},
		{Float(2.5), "2.5"},
		{Str("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueIsMapKeyCompatible(t *testing.T) {
	m := map[Value]int{}
	m[Int(1)]++
	m[Int(1)]++
	m[Float(1)]++ // distinct key from Int(1): kinds differ
	m[Str("1")]++
	if m[Int(1)] != 2 {
		t.Errorf("map[Int(1)] = %d, want 2", m[Int(1)])
	}
	if len(m) != 3 {
		t.Errorf("len(m) = %d, want 3", len(m))
	}
}

func TestSchemaResolve(t *testing.T) {
	s := NewSchema(
		Column{"c", "custkey", KindInt},
		Column{"c", "nationkey", KindInt},
		Column{"n", "nationkey", KindInt},
	)
	if i := s.Resolve("c", "custkey"); i != 0 {
		t.Errorf("Resolve(c.custkey) = %d, want 0", i)
	}
	if i := s.Resolve("n", "nationkey"); i != 2 {
		t.Errorf("Resolve(n.nationkey) = %d, want 2", i)
	}
	if i := s.Resolve("", "custkey"); i != 0 {
		t.Errorf("Resolve(custkey) = %d, want 0", i)
	}
	if i := s.Resolve("", "nationkey"); i != -1 {
		t.Errorf("Resolve(nationkey) = %d, want -1 (ambiguous)", i)
	}
	if i := s.Resolve("x", "missing"); i != -1 {
		t.Errorf("Resolve(x.missing) = %d, want -1", i)
	}
}

func TestSchemaMustResolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustResolve on missing column did not panic")
		}
	}()
	NewSchema().MustResolve("t", "nope")
}

func TestSchemaConcatProjectRename(t *testing.T) {
	a := NewSchema(Column{"a", "x", KindInt}, Column{"a", "y", KindInt})
	b := NewSchema(Column{"b", "z", KindString})
	j := a.Concat(b)
	if j.Len() != 3 {
		t.Fatalf("Concat len = %d, want 3", j.Len())
	}
	if j.Resolve("b", "z") != 2 {
		t.Error("Concat lost b.z")
	}
	p := j.Project([]int{2, 0})
	if p.Len() != 2 || p.Cols[0].Name != "z" || p.Cols[1].Name != "x" {
		t.Errorf("Project = %v", p)
	}
	r := a.Rename("q")
	if r.Resolve("q", "x") != 0 || r.Resolve("a", "x") != -1 {
		t.Errorf("Rename = %v", r)
	}
	// Original schema must be unchanged.
	if a.Cols[0].Table != "a" {
		t.Error("Rename mutated receiver")
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(Column{"t", "a", KindInt}, Column{"", "b", KindString})
	want := "(t.a BIGINT, b VARCHAR)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Float(2)}
	j := a.Concat(b)
	if len(j) != 3 || j[2].F != 2 {
		t.Errorf("Concat = %v", j)
	}
	p := j.Project([]int{2, 0})
	if len(p) != 2 || p[0].F != 2 || p[1].I != 1 {
		t.Errorf("Project = %v", p)
	}
	c := a.Clone()
	c[0] = Int(99)
	if a[0].I != 1 {
		t.Error("Clone shares storage with original")
	}
	if a.Size() <= 0 {
		t.Error("Size() <= 0")
	}
}

func TestTupleString(t *testing.T) {
	tu := Tuple{Int(1), Str("x"), Null()}
	if got := tu.String(); got != "[1, x, NULL]" {
		t.Errorf("String() = %q", got)
	}
}
