package data

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ncols := int(n%6) + 1
		tuples := make([]Tuple, 20)
		for i := range tuples {
			tu := make(Tuple, ncols)
			for c := range tu {
				switch rng.Intn(4) {
				case 0:
					tu[c] = Null()
				case 1:
					tu[c] = Int(rng.Int63() - rng.Int63())
				case 2:
					tu[c] = Float(rng.NormFloat64())
				default:
					b := make([]byte, rng.Intn(20))
					rng.Read(b)
					tu[c] = Str(string(b))
				}
			}
			tuples[i] = tu
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		for _, tu := range tuples {
			if err := EncodeTuple(w, tu); err != nil {
				return false
			}
		}
		w.Flush()
		r := bufio.NewReader(&buf)
		for _, want := range tuples {
			got, err := DecodeTuple(r, ncols)
			if err != nil {
				return false
			}
			for c := range want {
				if got[c] != want[c] {
					return false
				}
			}
		}
		_, err := DecodeTuple(r, ncols)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := EncodeTuple(w, Tuple{Int(1), Str("abc")}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	// Every strict prefix must fail (not silently succeed), except the
	// empty prefix which is clean EOF.
	for cut := 1; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, err := DecodeTuple(r, 2); err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", cut)
		}
	}
	r := bufio.NewReader(bytes.NewReader(nil))
	if _, err := DecodeTuple(r, 2); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestDecodeBadKind(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{0xEE}))
	if _, err := DecodeTuple(r, 1); err == nil {
		t.Fatal("bad kind byte accepted")
	}
}

func TestEncodeBadKind(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := EncodeTuple(w, Tuple{{Kind: Kind(99)}}); err == nil {
		t.Fatal("bad kind encoded")
	}
}

func TestKindStringAndValueSize(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "BIGINT", KindFloat: "DOUBLE", KindString: "VARCHAR",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind renders empty")
	}
	if Str("abcd").Size() <= Str("").Size() {
		t.Error("string size should grow with content")
	}
}
