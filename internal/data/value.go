// Package data defines the value, tuple and schema model shared by the
// storage layer, the executor and the estimation framework.
//
// Values are small comparable structs so that they can be used directly as
// map keys by the frequency histograms at the heart of the online
// estimation framework (see internal/core).
package data

import (
	"fmt"
	"strconv"
)

// Kind enumerates the supported value types.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single column value. The zero Value is SQL NULL.
//
// Value is comparable (usable as a map key); exactly one of I, F, S is
// meaningful depending on Kind.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns an integer-encoded boolean (1/0), matching the engine's
// convention that predicates evaluate to BIGINT 0 or 1.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsTrue reports whether v is a non-null, non-zero value, i.e. whether a
// predicate that produced v passed.
func (v Value) IsTrue() bool {
	switch v.Kind {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsFloat converts numeric values to float64. Strings and NULL yield 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt converts numeric values to int64 (floats truncate).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value for display and CSV output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	default:
		return fmt.Sprintf("<bad kind %d>", v.Kind)
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare by numeric value (so Int(2) == Float(2.0)); strings compare
// lexicographically. Comparing a numeric with a string orders by kind.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == KindNull && b.Kind == KindNull:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	an, bn := a.Kind != KindString, b.Kind != KindString
	switch {
	case an && bn:
		af, bf := a.AsFloat(), b.AsFloat()
		// Fast path for the common int/int case avoids float rounding.
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case !an && !bn:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	case an:
		return -1
	default:
		return 1
	}
}

// Equal reports whether two values compare equal under Compare semantics.
// NULL is not equal to anything, including NULL (SQL three-valued logic is
// collapsed to false here, which is what join and group-by keys need).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Size returns the approximate in-memory footprint of the value in bytes,
// used by the histogram memory accounting (paper §5.2.1).
func (v Value) Size() int {
	const base = 8 + 8 + 16 + 8 // I + F + string header + kind/padding
	return base + len(v.S)
}
