package data

// DefaultBatchSize is the number of tuples moved per NextBatch call in the
// batch-at-a-time executor. 1024 keeps a batch of slice headers around
// 24 KiB — small enough to stay cache-resident, large enough to amortize
// the per-call interface dispatch the tuple-at-a-time path pays per row.
const DefaultBatchSize = 1024

// Batch is a slice of tuples moved through the executor in one step.
//
// Ownership contract: a Batch returned by NextBatch (and the slice header
// only, not the tuples it references) is valid until the next NextBatch
// call on the same operator — producers reuse the backing array. Consumers
// that need the batch beyond that point must copy the slice (the tuples
// themselves are immutable and may be retained).
type Batch []Tuple
