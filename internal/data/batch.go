package data

import "sync/atomic"

// DefaultBatchSize is the number of tuples moved per NextBatch call in the
// batch-at-a-time executor. 1024 keeps a batch of slice headers around
// 24 KiB — small enough to stay cache-resident, large enough to amortize
// the per-call interface dispatch the tuple-at-a-time path pays per row.
// The qpi-bench -batchsize sweep (recorded in BENCH_join.json) justifies
// the choice empirically; SetBatchSize overrides it for such sweeps.
const DefaultBatchSize = 1024

// batchSize is the live batch size used by producers that size their
// buffers at runtime. It exists so benchmarks can sweep batch sizes.
// Atomic: sweeps may flip it while unrelated plans execute (qpi-bench
// runs next to a live registry; tests run queries concurrently with knob
// writes). A plan that straddles a change may size successive buffers
// differently — harmless, since every consumer handles short batches —
// but no read tears. Zero means "unset" so the default needs no init().
var batchSize atomic.Int64

// BatchSize returns the current batch size (DefaultBatchSize unless
// overridden).
func BatchSize() int {
	if n := batchSize.Load(); n > 0 {
		return int(n)
	}
	return DefaultBatchSize
}

// SetBatchSize overrides the batch size for subsequently constructed
// batch buffers (n < 1 restores the default). Safe to call concurrently
// with executing plans: they pick the new size up at their next buffer
// construction.
func SetBatchSize(n int) {
	if n < 1 {
		n = DefaultBatchSize
	}
	batchSize.Store(int64(n))
}

// Batch is a slice of tuples moved through the executor in one step.
//
// Ownership contract: a Batch returned by NextBatch (and the slice header
// only, not the tuples it references) is valid until the next NextBatch
// call on the same operator — producers reuse the backing array. Consumers
// that need the batch beyond that point must copy the slice (the tuples
// themselves are immutable and may be retained).
//
// The columnar counterpart (ColBatch, see colbatch.go) extends the same
// contract to vectors: a *ColBatch returned by NextColBatch — struct,
// column lanes and selection vector — is valid until the next
// NextColBatch call on the same operator. Consumers narrowing a
// selection copy the struct header and substitute their own selection
// slice; they never mutate the producer's. Reused lanes retain stale
// string entries and row references between fills (bounded by one batch,
// like a reused Batch retaining tuple references), so pooled vectors
// MUST be length-reset and string-cleared before Put — ColBatch.Release
// does exactly that, and PutColBatch calls it — ensuring a pooled string
// column never pins a large backing array.
type Batch []Tuple
