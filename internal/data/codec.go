package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Tuple wire format, shared by the table-file format (internal/disk) and
// the operator spill files (internal/exec): per value a kind byte
// followed by the payload — int64/float64 little-endian, strings with a
// u32 length prefix, NULL with no payload.

// EncodeTuple appends the wire encoding of t to w.
func EncodeTuple(w *bufio.Writer, t Tuple) error {
	var b [8]byte
	for _, v := range t {
		if err := w.WriteByte(byte(v.Kind)); err != nil {
			return err
		}
		switch v.Kind {
		case KindNull:
		case KindInt:
			binary.LittleEndian.PutUint64(b[:], uint64(v.I))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		case KindFloat:
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		case KindString:
			binary.LittleEndian.PutUint32(b[:4], uint32(len(v.S)))
			if _, err := w.Write(b[:4]); err != nil {
				return err
			}
			if _, err := w.WriteString(v.S); err != nil {
				return err
			}
		default:
			return fmt.Errorf("data: encode: unknown kind %d", v.Kind)
		}
	}
	return nil
}

// DecodeTuple reads one ncols-wide tuple from r. It returns io.EOF
// cleanly when the stream ends exactly at a tuple boundary.
func DecodeTuple(r *bufio.Reader, ncols int) (Tuple, error) {
	t := make(Tuple, ncols)
	var b [8]byte
	for c := 0; c < ncols; c++ {
		kind, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && c == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("data: decode: truncated tuple: %w", err)
		}
		switch Kind(kind) {
		case KindNull:
			t[c] = Null()
		case KindInt:
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, fmt.Errorf("data: decode int: %w", err)
			}
			t[c] = Int(int64(binary.LittleEndian.Uint64(b[:])))
		case KindFloat:
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, fmt.Errorf("data: decode float: %w", err)
			}
			t[c] = Float(math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
		case KindString:
			if _, err := io.ReadFull(r, b[:4]); err != nil {
				return nil, fmt.Errorf("data: decode string length: %w", err)
			}
			n := binary.LittleEndian.Uint32(b[:4])
			s := make([]byte, n)
			if _, err := io.ReadFull(r, s); err != nil {
				return nil, fmt.Errorf("data: decode string: %w", err)
			}
			t[c] = Str(string(s))
		default:
			return nil, fmt.Errorf("data: decode: unknown kind %d", kind)
		}
	}
	return t, nil
}

// Columnar frame wire format, used by the spill files of columnar-mode
// operators: a frame packs the live rows of one ColBatch column-major —
// a magic byte, a u32 row count, then per column a kind/flags byte
// followed by the column payload. Homogeneous columns encode a packed
// NULL bitmap (only when NULLs are present) and one typed span: int64
// and float64 lanes as n×8 little-endian bytes, string lanes as n u32
// cumulative end-offsets followed by the concatenated bytes (the
// dictionary/offsets layout). Mixed columns fall back to n per-row kind
// tags with per-row payloads.

// colFrameMagic marks the start of a columnar frame.
const colFrameMagic = 0xCF

// Column flag bits in the high nibble of the kind/flags byte.
const (
	colFlagNulls = 0x10
	colFlagMixed = 0x20
)

// EncodeColFrame appends one frame holding cb's live rows (selection
// compacted away) to w.
func EncodeColFrame(w *bufio.Writer, cb *ColBatch) error {
	n := cb.Live()
	if err := w.WriteByte(colFrameMagic); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(n))
	if _, err := w.Write(b[:4]); err != nil {
		return err
	}
	for c := 0; c < cb.Width(); c++ {
		if err := encodeColumn(w, cb, c, n); err != nil {
			return err
		}
	}
	return nil
}

// liveValue returns the k-th live row's value of column c.
func (cb *ColBatch) liveValue(c, k int) Value {
	if cb.Sel != nil {
		return cb.Value(c, int(cb.Sel[k]))
	}
	return cb.Value(c, k)
}

func encodeColumn(w *bufio.Writer, cb *ColBatch, c, n int) error {
	// One detection pass over the live rows decides the layout.
	kind := KindNull
	mixed := false
	hasNulls := false
	for k := 0; k < n; k++ {
		vk := cb.liveValue(c, k).Kind
		if vk == KindNull {
			hasNulls = true
			continue
		}
		if kind == KindNull {
			kind = vk
		} else if vk != kind {
			mixed = true
			break
		}
	}
	var b [8]byte
	if mixed {
		if err := w.WriteByte(byte(kind) | colFlagMixed); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			if err := w.WriteByte(byte(cb.liveValue(c, k).Kind)); err != nil {
				return err
			}
		}
		for k := 0; k < n; k++ {
			v := cb.liveValue(c, k)
			switch v.Kind {
			case KindInt:
				binary.LittleEndian.PutUint64(b[:], uint64(v.I))
				if _, err := w.Write(b[:]); err != nil {
					return err
				}
			case KindFloat:
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
				if _, err := w.Write(b[:]); err != nil {
					return err
				}
			case KindString:
				binary.LittleEndian.PutUint32(b[:4], uint32(len(v.S)))
				if _, err := w.Write(b[:4]); err != nil {
					return err
				}
				if _, err := w.WriteString(v.S); err != nil {
					return err
				}
			}
		}
		return nil
	}
	flags := byte(kind)
	if hasNulls {
		flags |= colFlagNulls
	}
	if err := w.WriteByte(flags); err != nil {
		return err
	}
	if hasNulls {
		if err := writeNullBits(w, cb, c, n); err != nil {
			return err
		}
	}
	switch kind {
	case KindNull:
		// All rows NULL: no payload.
	case KindInt:
		for k := 0; k < n; k++ {
			binary.LittleEndian.PutUint64(b[:], uint64(cb.liveValue(c, k).I))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		}
	case KindFloat:
		for k := 0; k < n; k++ {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(cb.liveValue(c, k).F))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		}
	case KindString:
		// Cumulative end-offsets (NULL rows repeat the previous offset),
		// then the concatenated bytes.
		off := uint32(0)
		for k := 0; k < n; k++ {
			off += uint32(len(cb.liveValue(c, k).S))
			binary.LittleEndian.PutUint32(b[:4], off)
			if _, err := w.Write(b[:4]); err != nil {
				return err
			}
		}
		for k := 0; k < n; k++ {
			if s := cb.liveValue(c, k).S; s != "" {
				if _, err := w.WriteString(s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeNullBits packs the live rows' NULL flags LSB-first.
func writeNullBits(w *bufio.Writer, cb *ColBatch, c, n int) error {
	var cur byte
	for k := 0; k < n; k++ {
		if cb.liveValue(c, k).Kind == KindNull {
			cur |= 1 << uint(k&7)
		}
		if k&7 == 7 {
			if err := w.WriteByte(cur); err != nil {
				return err
			}
			cur = 0
		}
	}
	if n&7 != 0 {
		return w.WriteByte(cur)
	}
	return nil
}

// DecodeColFrame reads one ncols-wide frame from r into cb (reusing its
// lane capacity). It returns io.EOF cleanly when the stream ends exactly
// at a frame boundary.
func DecodeColFrame(r *bufio.Reader, ncols int, cb *ColBatch) error {
	magic, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("data: decode frame: %w", err)
	}
	if magic != colFrameMagic {
		return fmt.Errorf("data: decode frame: bad magic 0x%x", magic)
	}
	var b [8]byte
	if _, err := io.ReadFull(r, b[:4]); err != nil {
		return fmt.Errorf("data: decode frame header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(b[:4]))
	cb.ensureWidth(ncols)
	cb.NRows = n
	cb.Sel = nil
	cb.Rows = nil
	for c := 0; c < ncols; c++ {
		if err := decodeColumn(r, &cb.Cols[c], n); err != nil {
			return fmt.Errorf("data: decode frame col %d: %w", c, err)
		}
	}
	return nil
}

func decodeColumn(r *bufio.Reader, v *ColVec, n int) error {
	flags, err := r.ReadByte()
	if err != nil {
		return err
	}
	v.reset()
	kind := Kind(flags & 0x0f)
	var b [8]byte
	if flags&colFlagMixed != 0 {
		tags := make([]Kind, n)
		for k := 0; k < n; k++ {
			tb, err := r.ReadByte()
			if err != nil {
				return err
			}
			tags[k] = Kind(tb)
		}
		v.Kind = kind
		v.Tags = tags
		v.Ints = growLane(v.Ints, n)
		v.Floats = growLane(v.Floats, n)
		v.Strs = growLane(v.Strs, n)
		for k := 0; k < n; k++ {
			v.Ints[k], v.Floats[k], v.Strs[k] = 0, 0, ""
			switch tags[k] {
			case KindInt:
				if _, err := io.ReadFull(r, b[:]); err != nil {
					return err
				}
				v.Ints[k] = int64(binary.LittleEndian.Uint64(b[:]))
			case KindFloat:
				if _, err := io.ReadFull(r, b[:]); err != nil {
					return err
				}
				v.Floats[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
			case KindString:
				if _, err := io.ReadFull(r, b[:4]); err != nil {
					return err
				}
				s := make([]byte, binary.LittleEndian.Uint32(b[:4]))
				if _, err := io.ReadFull(r, s); err != nil {
					return err
				}
				v.Strs[k] = string(s)
			case KindNull:
			default:
				return fmt.Errorf("bad tag %d", tags[k])
			}
		}
		return nil
	}
	v.Kind = kind
	if flags&colFlagNulls != 0 {
		nb := (n + 7) / 8
		for i := 0; i < nb; i++ {
			bb, err := r.ReadByte()
			if err != nil {
				return err
			}
			for j := 0; j < 8; j++ {
				if bb&(1<<uint(j)) != 0 {
					v.Nulls.Set(i*8 + j)
				}
			}
		}
	}
	switch kind {
	case KindNull:
		for k := 0; k < n; k++ {
			v.Nulls.Set(k)
		}
	case KindInt:
		v.Ints = growLane(v.Ints, n)
		for k := 0; k < n; k++ {
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return err
			}
			v.Ints[k] = int64(binary.LittleEndian.Uint64(b[:]))
		}
	case KindFloat:
		v.Floats = growLane(v.Floats, n)
		for k := 0; k < n; k++ {
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return err
			}
			v.Floats[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		}
	case KindString:
		offs := make([]uint32, n)
		for k := 0; k < n; k++ {
			if _, err := io.ReadFull(r, b[:4]); err != nil {
				return err
			}
			offs[k] = binary.LittleEndian.Uint32(b[:4])
		}
		total := uint32(0)
		if n > 0 {
			total = offs[n-1]
		}
		blob := make([]byte, total)
		if _, err := io.ReadFull(r, blob); err != nil {
			return err
		}
		v.Strs = growLane(v.Strs, n)
		prev := uint32(0)
		for k := 0; k < n; k++ {
			if offs[k] < prev || offs[k] > total {
				return fmt.Errorf("bad string offset %d", offs[k])
			}
			v.Strs[k] = string(blob[prev:offs[k]])
			prev = offs[k]
		}
	default:
		return fmt.Errorf("bad kind %d", kind)
	}
	return nil
}
