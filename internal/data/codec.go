package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Tuple wire format, shared by the table-file format (internal/disk) and
// the operator spill files (internal/exec): per value a kind byte
// followed by the payload — int64/float64 little-endian, strings with a
// u32 length prefix, NULL with no payload.

// EncodeTuple appends the wire encoding of t to w.
func EncodeTuple(w *bufio.Writer, t Tuple) error {
	var b [8]byte
	for _, v := range t {
		if err := w.WriteByte(byte(v.Kind)); err != nil {
			return err
		}
		switch v.Kind {
		case KindNull:
		case KindInt:
			binary.LittleEndian.PutUint64(b[:], uint64(v.I))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		case KindFloat:
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			if _, err := w.Write(b[:]); err != nil {
				return err
			}
		case KindString:
			binary.LittleEndian.PutUint32(b[:4], uint32(len(v.S)))
			if _, err := w.Write(b[:4]); err != nil {
				return err
			}
			if _, err := w.WriteString(v.S); err != nil {
				return err
			}
		default:
			return fmt.Errorf("data: encode: unknown kind %d", v.Kind)
		}
	}
	return nil
}

// DecodeTuple reads one ncols-wide tuple from r. It returns io.EOF
// cleanly when the stream ends exactly at a tuple boundary.
func DecodeTuple(r *bufio.Reader, ncols int) (Tuple, error) {
	t := make(Tuple, ncols)
	var b [8]byte
	for c := 0; c < ncols; c++ {
		kind, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && c == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("data: decode: truncated tuple: %w", err)
		}
		switch Kind(kind) {
		case KindNull:
			t[c] = Null()
		case KindInt:
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, fmt.Errorf("data: decode int: %w", err)
			}
			t[c] = Int(int64(binary.LittleEndian.Uint64(b[:])))
		case KindFloat:
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, fmt.Errorf("data: decode float: %w", err)
			}
			t[c] = Float(math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
		case KindString:
			if _, err := io.ReadFull(r, b[:4]); err != nil {
				return nil, fmt.Errorf("data: decode string length: %w", err)
			}
			n := binary.LittleEndian.Uint32(b[:4])
			s := make([]byte, n)
			if _, err := io.ReadFull(r, s); err != nil {
				return nil, fmt.Errorf("data: decode string: %w", err)
			}
			t[c] = Str(string(s))
		default:
			return nil, fmt.Errorf("data: decode: unknown kind %d", kind)
		}
	}
	return t, nil
}
