package data

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema. Table is the relation alias
// the column belongs to ("" for computed columns).
type Column struct {
	Table string
	Name  string
	Kind  Kind
}

// Qualified returns "table.name" (or just "name" when unqualified).
func (c Column) Qualified() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing a tuple stream.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Resolve finds the index of a column. table may be "" to match any table;
// in that case the name must be unambiguous. It returns -1 if not found.
func (s *Schema) Resolve(table, name string) int {
	found := -1
	for i, c := range s.Cols {
		if c.Name != name {
			continue
		}
		if table != "" {
			if c.Table == table {
				return i
			}
			continue
		}
		if found >= 0 {
			return -1 // ambiguous
		}
		found = i
	}
	return found
}

// MustResolve is Resolve, panicking on failure. It is used by plan
// construction where a missing column is a programming error.
func (s *Schema) MustResolve(table, name string) int {
	i := s.Resolve(table, name)
	if i < 0 {
		panic(fmt.Sprintf("data: column %q not found (or ambiguous) in schema %s", table+"."+name, s))
	}
	return i
}

// Concat returns a new schema with the columns of s followed by those of o,
// as produced by a join.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return &Schema{Cols: cols}
}

// Project returns a new schema with the selected column indexes.
func (s *Schema) Project(idxs []int) *Schema {
	cols := make([]Column, len(idxs))
	for i, idx := range idxs {
		cols[i] = s.Cols[idx]
	}
	return &Schema{Cols: cols}
}

// Rename returns a copy of the schema with every column's table alias
// replaced, as produced by `FROM t AS alias`.
func (s *Schema) Rename(alias string) *Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		c.Table = alias
		cols[i] = c
	}
	return &Schema{Cols: cols}
}

// String renders the schema as "(t.a BIGINT, t.b VARCHAR)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Qualified())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
