package data

import "strings"

// Tuple is one row of values, positionally aligned with a Schema.
type Tuple []Value

// Concat returns a new tuple with the values of t followed by those of o,
// as produced by a join.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Project returns a new tuple with the selected column indexes.
func (t Tuple) Project(idxs []int) Tuple {
	out := make(Tuple, len(idxs))
	for i, idx := range idxs {
		out[i] = t[idx]
	}
	return out
}

// Clone returns a copy of the tuple that does not share backing storage.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Size returns the approximate in-memory footprint of the tuple in bytes.
func (t Tuple) Size() int {
	n := 24 // slice header
	for _, v := range t {
		n += v.Size()
	}
	return n
}

// String renders the tuple as "[a, b, c]".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}
