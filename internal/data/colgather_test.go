package data

import (
	"math/rand"
	"testing"
)

// Property test of the lane-to-lane output gather: GatherFrom must be
// byte-identical to the row-major gather (per-row ValueAt + AppendVal)
// on every batch shape the join emits — selection-vector'd sources,
// NULL-heavy lanes, mixed-kind columns, kind-conflicting destinations
// and the negative indexes the probe-outer join uses to NULL-pad its
// build columns.

// rowMajorGather is the reference implementation: one Value per row.
func rowMajorGather(dst *ColVec, src *ColVec, idx []int32, base int) {
	for k, i := range idx {
		if src == nil || i < 0 {
			dst.appendVal(base+k, Null())
			continue
		}
		dst.appendVal(base+k, src.ValueAt(int(i)))
	}
}

func TestGatherFromMatchesRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(BatchSize()+1)
		w := 1 + rng.Intn(4)
		rows := randColRows(rng, n, w)
		var src ColBatch
		src.FromTuples(rows, w)

		// Half the trials gather through a selection vector (the idx
		// entries are physical rows drawn from the live set, as the join
		// produces them); a sprinkle of -1 entries NULL-pads.
		live := make([]int32, 0, n)
		if rng.Intn(2) == 0 {
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 {
					live = append(live, int32(i))
				}
			}
			src.Sel = live
		} else {
			for i := 0; i < n; i++ {
				live = append(live, int32(i))
			}
		}
		nIdx := rng.Intn(2 * n)
		idx := make([]int32, nIdx)
		for k := range idx {
			if rng.Intn(8) == 0 || len(live) == 0 {
				idx[k] = -1
			} else {
				idx[k] = live[rng.Intn(len(live))]
			}
		}

		// A random prefix below base exercises appends into non-empty
		// destinations, including kind conflicts with the gathered lane.
		base := rng.Intn(4)
		prefix := randColRows(rng, base, w)

		for c := 0; c < w; c++ {
			sv := src.Col(c)
			if rng.Intn(12) == 0 {
				sv = nil // outer-join build side of an empty partition
			}
			var got, want ColVec
			for r := 0; r < base; r++ {
				got.appendVal(r, prefix[r][c])
				want.appendVal(r, prefix[r][c])
			}
			got.GatherFrom(sv, idx, base)
			rowMajorGather(&want, sv, idx, base)
			for r := 0; r < base+nIdx; r++ {
				g, x := got.ValueAt(r), want.ValueAt(r)
				if g != x {
					t.Fatalf("trial %d col %d row %d: GatherFrom=%v rowMajor=%v (src kind %v, base %d)",
						trial, c, r, g, x, src.Col(c).Kind, base)
				}
			}
		}
	}
}
