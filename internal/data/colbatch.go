package data

import "sync"

// This file is the columnar (SoA) counterpart of Batch: a ColBatch holds
// one typed vector per column plus a selection vector, so the vectorized
// kernels in internal/exec can run tight loops over flat []int64 /
// []float64 / []string lanes instead of dispatching on boxed Values per
// row. A ColBatch converts losslessly to and from the row representation
// (FromTuples/ToTuples) and can carry the original rows alongside the
// vectors, which lets operators pivot only the columns they touch.
//
// Ownership contract (the columnar extension of the Batch contract in
// batch.go): a *ColBatch returned by NextColBatch — the struct, its
// vectors and its selection — is valid until the next NextColBatch call
// on the same operator; producers reuse all backing arrays. Consumers
// narrowing the selection must copy the struct header (a shallow copy
// sharing the column lanes) and substitute their own selection slice
// rather than mutate the producer's. String lane entries and row
// references persist in reused backing arrays until overwritten or the
// batch is released; Release (and PutColBatch) clears them so a pooled
// batch never pins string or tuple backing memory.

// Bitmap is a packed per-row bit set, used to mark NULL rows in a column
// vector. The zero value is an empty bitmap with no bits set; bits past
// the stored words read as unset.
type Bitmap []uint64

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// Set sets bit i, growing the bitmap as needed.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << uint(i&63)
}

// Clear unsets every bit, retaining capacity.
func (b *Bitmap) Clear() {
	s := *b
	for i := range s {
		s[i] = 0
	}
	*b = s[:0]
}

// Any reports whether any bit is set.
func (b Bitmap) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// ColVec is one column's vector: a typed lane per value kind plus a NULL
// bitmap. Kind is the column's value kind; when every non-NULL row shares
// one kind (the overwhelmingly common case) only that kind's lane is
// populated and Tags is nil. Mixed-kind columns carry a per-row Tags
// slice and populate every lane, trading memory for correctness.
type ColVec struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  Bitmap
	// Tags holds per-row kinds for mixed columns; nil means homogeneous
	// (every non-NULL row is v.Kind).
	Tags []Kind

	built bool
}

// Homogeneous reports whether the vector is single-kinded (no per-row
// tags), the precondition of every typed fast path.
func (v *ColVec) Homogeneous() bool { return v.Tags == nil }

// ValueAt reconstructs the row's Value without allocating.
func (v *ColVec) ValueAt(i int) Value {
	if v.Tags != nil {
		switch v.Tags[i] {
		case KindInt:
			return Int(v.Ints[i])
		case KindFloat:
			return Float(v.Floats[i])
		case KindString:
			return Str(v.Strs[i])
		default:
			return Null()
		}
	}
	if v.Nulls.Get(i) {
		return Null()
	}
	switch v.Kind {
	case KindInt:
		return Int(v.Ints[i])
	case KindFloat:
		return Float(v.Floats[i])
	case KindString:
		return Str(v.Strs[i])
	default:
		return Null()
	}
}

// reset prepares the vector for refilling. Lanes are truncated, not
// zeroed: stale string entries persist in the backing array until
// overwritten or Release, mirroring how a reused Batch retains tuple
// references between fills.
func (v *ColVec) reset() {
	v.Kind = KindNull
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Nulls.Clear()
	v.Tags = nil
	v.built = true
}

// release clears the vector for pooling: string lane entries are zeroed
// across the full capacity so a pooled vector never pins string backing
// arrays.
func (v *ColVec) release() {
	clear(v.Strs[:cap(v.Strs)])
	v.reset()
	v.built = false
}

// Reset prepares the vector for refilling (exported for the vectorized
// expression evaluator, which writes computed columns directly).
func (v *ColVec) Reset() { v.reset() }

// AppendVal appends val as row index row; rows must be appended in
// ascending order starting at 0.
func (v *ColVec) AppendVal(row int, val Value) { v.appendVal(row, val) }

// appendGrow appends x to a lane, reserving a full batch worth of
// capacity on the lane's first growth: a building vector pays one
// allocation per lane instead of log2(BatchSize) doublings, and reuse
// via reset/BeginBuild then never reallocates.
func appendGrow[T any](s []T, x T) []T {
	if len(s) == cap(s) {
		n := 2 * cap(s)
		if bs := BatchSize(); n < bs {
			n = bs
		}
		ns := make([]T, len(s), n)
		copy(ns, s)
		s = ns
	}
	return append(s, x)
}

// padTo extends the active lane with zero values up to length n, so rows
// written after a NULL- or other-kind prefix still index correctly.
func (v *ColVec) padTo(n int) {
	switch v.Kind {
	case KindInt:
		for len(v.Ints) < n {
			v.Ints = appendGrow(v.Ints, 0)
		}
	case KindFloat:
		for len(v.Floats) < n {
			v.Floats = appendGrow(v.Floats, 0)
		}
	case KindString:
		for len(v.Strs) < n {
			v.Strs = appendGrow(v.Strs, "")
		}
	}
}

// promoteMixed converts a homogeneous vector holding row rows into the
// tagged mixed representation.
func (v *ColVec) promoteMixed(rows int) {
	tags := make([]Kind, rows)
	for i := 0; i < rows; i++ {
		if v.Nulls.Get(i) {
			tags[i] = KindNull
		} else {
			tags[i] = v.Kind
		}
	}
	v.Tags = tags
	v.padTo(rows)
	for len(v.Ints) < rows {
		v.Ints = append(v.Ints, 0)
	}
	for len(v.Floats) < rows {
		v.Floats = append(v.Floats, 0)
	}
	for len(v.Strs) < rows {
		v.Strs = append(v.Strs, "")
	}
}

// appendVal appends val as row index row (rows must be appended in
// order starting at 0). The leading branch is the dense hot path — a
// matching-kind value landing exactly at the lane's end, which is every
// value of a homogeneous NULL-free column — and touches one lane once;
// padding, kind adoption and mixed promotion live in the cold tail.
func (v *ColVec) appendVal(row int, val Value) {
	if v.Tags != nil {
		v.appendMixed(val)
		return
	}
	if k := val.Kind; k == v.Kind && k != KindNull {
		switch k {
		case KindInt:
			if len(v.Ints) == row {
				v.Ints = appendGrow(v.Ints, val.I)
				return
			}
		case KindFloat:
			if len(v.Floats) == row {
				v.Floats = appendGrow(v.Floats, val.F)
				return
			}
		case KindString:
			if len(v.Strs) == row {
				v.Strs = appendGrow(v.Strs, val.S)
				return
			}
		}
		// Sparse lane (a NULL run left it short): pad, then push.
		v.padTo(row)
		v.push(val)
		return
	}
	switch {
	case val.Kind == KindNull:
		v.Nulls.Set(row)
		v.padTo(row + 1)
	case v.Kind == KindNull:
		// First non-NULL value: the vector adopts its kind.
		v.Kind = val.Kind
		v.padTo(row)
		v.push(val)
	default:
		v.promoteMixed(row)
		v.appendMixed(val)
	}
}

// push appends val to the active lane (val.Kind == v.Kind).
func (v *ColVec) push(val Value) {
	switch val.Kind {
	case KindInt:
		v.Ints = appendGrow(v.Ints, val.I)
	case KindFloat:
		v.Floats = appendGrow(v.Floats, val.F)
	case KindString:
		v.Strs = appendGrow(v.Strs, val.S)
	}
}

// appendMixed appends val to a tagged vector, keeping every lane aligned.
func (v *ColVec) appendMixed(val Value) {
	v.Tags = append(v.Tags, val.Kind)
	var iv int64
	var fv float64
	var sv string
	switch val.Kind {
	case KindInt:
		iv = val.I
	case KindFloat:
		fv = val.F
	case KindString:
		sv = val.S
	}
	v.Ints = appendGrow(v.Ints, iv)
	v.Floats = appendGrow(v.Floats, fv)
	v.Strs = appendGrow(v.Strs, sv)
}

// ColBatch is a batch in columnar form: NRows rows across len(Cols)
// columns, with an optional selection vector and an optional row-major
// cache of the same rows.
type ColBatch struct {
	NRows int
	Cols  []ColVec
	// Sel is the selection vector: the live row indexes in ascending
	// order. nil selects all NRows rows (the fast path); an empty non-nil
	// Sel selects none.
	Sel []int32
	// Rows optionally carries the same rows in row-major form, indexed by
	// row number like the vectors. Operators wrapping a row producer set
	// Rows and pivot columns lazily via Col; purely columnar producers
	// leave it nil.
	Rows []Tuple
}

// Width returns the number of columns.
func (cb *ColBatch) Width() int { return len(cb.Cols) }

// Live returns the number of selected rows.
func (cb *ColBatch) Live() int {
	if cb.Sel != nil {
		return len(cb.Sel)
	}
	return cb.NRows
}

// ensureWidth sizes Cols to w columns, retaining existing vector buffers.
func (cb *ColBatch) ensureWidth(w int) {
	if cap(cb.Cols) >= w {
		cb.Cols = cb.Cols[:w]
		return
	}
	nc := make([]ColVec, w)
	copy(nc, cb.Cols)
	cb.Cols = nc
}

// EnsureWidth sizes the batch to w columns, retaining vector buffers
// (exported for columnar operators assembling output batches).
func (cb *ColBatch) EnsureWidth(w int) { cb.ensureWidth(w) }

// ShareCol makes column i a shallow copy of v, sharing its lanes — the
// projection pass-through path. The share is valid exactly as long as v
// is (until the producer's next NextColBatch).
func (cb *ColBatch) ShareCol(i int, v *ColVec) { cb.Cols[i] = *v }

// OwnCol returns column i for in-place vector writing (computed
// projection columns), marking it built.
func (cb *ColBatch) OwnCol(i int) *ColVec {
	v := &cb.Cols[i]
	v.built = true
	return v
}

// SetRows points the batch at a row-major slice without pivoting any
// column: columns materialize lazily on first Col access. The rows are
// referenced, not copied, and must stay valid for the batch's lifetime.
func (cb *ColBatch) SetRows(rows []Tuple, width int) {
	cb.ensureWidth(width)
	cb.NRows = len(rows)
	cb.Sel = nil
	cb.Rows = rows
	for c := range cb.Cols {
		cb.Cols[c].built = false
	}
}

// Col returns column c, pivoting it out of the row cache on first
// access. Untouched columns of a row-backed batch are never pivoted —
// that is the pass-through path projections and scans rely on.
func (cb *ColBatch) Col(c int) *ColVec {
	v := &cb.Cols[c]
	if !v.built {
		cb.materialize(c)
	}
	return v
}

// materialize pivots column c from the row cache.
func (cb *ColBatch) materialize(c int) {
	if cb.Rows == nil {
		panic("data: ColBatch.Col: column not built and no row cache")
	}
	v := &cb.Cols[c]
	v.reset()
	n := cb.NRows
	// Detect the column's kind profile over all rows (selection
	// independent, so a narrowed view shares the pivot).
	kind := KindNull
	mixed := false
	for i := 0; i < n; i++ {
		k := cb.Rows[i][c].Kind
		if k == KindNull || k == kind {
			continue
		}
		if kind == KindNull {
			kind = k
			continue
		}
		mixed = true
		break
	}
	if mixed {
		for i := 0; i < n; i++ {
			v.appendVal(i, cb.Rows[i][c])
		}
		return
	}
	v.Kind = kind
	switch kind {
	case KindInt:
		v.Ints = growLane(v.Ints, n)
		for i := 0; i < n; i++ {
			if val := cb.Rows[i][c]; val.Kind == KindNull {
				v.Ints[i] = 0
				v.Nulls.Set(i)
			} else {
				v.Ints[i] = val.I
			}
		}
	case KindFloat:
		v.Floats = growLane(v.Floats, n)
		for i := 0; i < n; i++ {
			if val := cb.Rows[i][c]; val.Kind == KindNull {
				v.Floats[i] = 0
				v.Nulls.Set(i)
			} else {
				v.Floats[i] = val.F
			}
		}
	case KindString:
		v.Strs = growLane(v.Strs, n)
		for i := 0; i < n; i++ {
			if val := cb.Rows[i][c]; val.Kind == KindNull {
				v.Strs[i] = ""
				v.Nulls.Set(i)
			} else {
				v.Strs[i] = val.S
			}
		}
	default:
		// All-NULL column: no lane, ValueAt returns NULL for every row.
		for i := 0; i < n; i++ {
			v.Nulls.Set(i)
		}
	}
}

func growLane[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Value returns the value at (col, row) without allocating, preferring
// the row cache so reads never force a pivot.
func (cb *ColBatch) Value(col, row int) Value {
	if cb.Rows != nil {
		return cb.Rows[row][col]
	}
	return cb.Col(col).ValueAt(row)
}

// FromTuples pivots rows into a pure columnar image: every column is
// materialized eagerly and the row cache is dropped, so the result
// depends only on the vectors. width is the schema arity (needed when
// rows is empty).
func (cb *ColBatch) FromTuples(rows []Tuple, width int) {
	cb.SetRows(rows, width)
	for c := range cb.Cols {
		cb.Col(c)
	}
	cb.Rows = nil
}

// ToTuples appends the live rows to buf in selection order and returns
// it. Row-backed batches hand out the cached tuples; columnar batches
// materialize fresh tuples carved from one arena allocation.
func (cb *ColBatch) ToTuples(buf Batch) Batch {
	if cb.Rows != nil {
		if cb.Sel == nil {
			return append(buf, cb.Rows[:cb.NRows]...)
		}
		for _, i := range cb.Sel {
			buf = append(buf, cb.Rows[i])
		}
		return buf
	}
	w := len(cb.Cols)
	live := cb.Live()
	arena := make([]Value, live*w)
	emitRow := func(i int) {
		row := arena[:w:w]
		arena = arena[w:]
		for c := range cb.Cols {
			row[c] = cb.Cols[c].ValueAt(i)
		}
		buf = append(buf, Tuple(row))
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			emitRow(i)
		}
	} else {
		for _, i := range cb.Sel {
			emitRow(int(i))
		}
	}
	return buf
}

// MaterializeRows builds and caches the row-major form of a columnar
// batch. Only live rows are filled; dead row slots stay nil. The cache
// is stored on the batch, so repeated calls are free.
func (cb *ColBatch) MaterializeRows() []Tuple {
	if cb.Rows != nil {
		return cb.Rows
	}
	w := len(cb.Cols)
	rows := make([]Tuple, cb.NRows)
	arena := make([]Value, cb.Live()*w)
	fill := func(i int) {
		row := arena[:w:w]
		arena = arena[w:]
		for c := range cb.Cols {
			row[c] = cb.Cols[c].ValueAt(i)
		}
		rows[i] = Tuple(row)
	}
	if cb.Sel == nil {
		for i := 0; i < cb.NRows; i++ {
			fill(i)
		}
	} else {
		for _, i := range cb.Sel {
			fill(int(i))
		}
	}
	cb.Rows = rows
	return rows
}

// BeginBuild prepares the batch for row-at-a-time appending via
// AppendRow/AppendRow2: width columns, all built, no selection, no row
// cache. Lane backing arrays are retained across calls; stale string
// entries beyond the new fill persist until Release, exactly like tuple
// references in a reused Batch.
func (cb *ColBatch) BeginBuild(width int) {
	cb.ensureWidth(width)
	cb.NRows = 0
	cb.Sel = nil
	cb.Rows = nil
	for c := range cb.Cols {
		cb.Cols[c].reset()
	}
}

// AppendRow appends t as the next row.
func (cb *ColBatch) AppendRow(t Tuple) {
	row := cb.NRows
	for c := range cb.Cols {
		cb.Cols[c].appendVal(row, t[c])
	}
	cb.NRows++
}

// AppendRow2 appends the concatenation a ⧺ b as the next row without
// materializing the concatenated tuple — the join's zero-copy output
// path.
func (cb *ColBatch) AppendRow2(a, b Tuple) {
	row := cb.NRows
	for c := range a {
		cb.Cols[c].appendVal(row, a[c])
	}
	off := len(a)
	for c := range b {
		cb.Cols[off+c].appendVal(row, b[c])
	}
	cb.NRows++
}

// appendFrom appends src's row i as row index row of v — the lane-to-lane
// copy primitive behind the columnar partition scatter and gather. The
// fast path is a matching-kind typed push straight from src's lane, no
// Value construction; NULLs, kind adoption and mixed sources fall back to
// the appendVal cold tail, which reproduces row-major appends exactly.
func (v *ColVec) appendFrom(src *ColVec, i, row int) {
	if v.Tags != nil || src.Tags != nil {
		v.appendVal(row, src.ValueAt(i))
		return
	}
	if src.Nulls.Get(i) {
		v.Nulls.Set(row)
		v.padTo(row + 1)
		return
	}
	if src.Kind != v.Kind {
		v.appendVal(row, src.ValueAt(i))
		return
	}
	switch v.Kind {
	case KindInt:
		if len(v.Ints) == row {
			v.Ints = appendGrow(v.Ints, src.Ints[i])
			return
		}
	case KindFloat:
		if len(v.Floats) == row {
			v.Floats = appendGrow(v.Floats, src.Floats[i])
			return
		}
	case KindString:
		if len(v.Strs) == row {
			v.Strs = appendGrow(v.Strs, src.Strs[i])
			return
		}
	case KindNull:
		// Both sides all-NULL so far and src row i is non-NULL only when
		// src has a lane; src.Kind == KindNull means the row is NULL.
		v.Nulls.Set(row)
		v.padTo(row + 1)
		return
	}
	// Sparse lane (a NULL run left it short): pad, then push.
	v.padTo(row)
	v.push(src.ValueAt(i))
}

// AppendFrom appends src's row i (an unselected row index) as the next
// row of cb, copying lane-to-lane. cb must be in build form (BeginBuild)
// with the same width as src.
func (cb *ColBatch) AppendFrom(src *ColBatch, i int) {
	row := cb.NRows
	for c := range cb.Cols {
		cb.Cols[c].appendFrom(src.Col(c), i, row)
	}
	cb.NRows++
}

// AppendBatchFrom appends every live row of src to cb in selection
// order — the pass-barrier merge of worker-local lane buffers. Equivalent
// to AppendFrom row by row.
func (cb *ColBatch) AppendBatchFrom(src *ColBatch) {
	if cb.Cols == nil && src.Width() > 0 {
		cb.ensureWidth(src.Width())
		for c := range cb.Cols {
			cb.Cols[c].reset()
		}
	}
	if src.Sel == nil {
		for i := 0; i < src.NRows; i++ {
			cb.AppendFrom(src, i)
		}
		return
	}
	for _, i := range src.Sel {
		cb.AppendFrom(src, int(i))
	}
}

// GatherFrom appends src's rows idx[0..n) as rows base+k of v — the
// join's lane-to-lane output gather. A negative index (or a nil src)
// appends NULL, which is how the outer join NULL-pads its build columns.
// The fast paths copy typed lanes with one dispatch per column per call;
// mixed or kind-conflicting columns fall back to appendVal, reproducing
// the row-major gather exactly.
func (v *ColVec) GatherFrom(src *ColVec, idx []int32, base int) {
	n := len(idx)
	if src == nil || (src.Tags == nil && src.Kind == KindNull) {
		for k := 0; k < n; k++ {
			v.appendVal(base+k, Null())
		}
		return
	}
	if src.Tags != nil || v.Tags != nil || (v.Kind != src.Kind && v.Kind != KindNull) {
		for k, i := range idx {
			if i < 0 {
				v.appendVal(base+k, Null())
			} else {
				v.appendVal(base+k, src.ValueAt(int(i)))
			}
		}
		return
	}
	if v.Kind == KindNull {
		v.Kind = src.Kind // adoption: every prior row of v is NULL
	}
	v.padTo(base)
	clean := !src.Nulls.Any()
	if clean {
		for _, i := range idx {
			if i < 0 {
				clean = false
				break
			}
		}
	}
	switch v.Kind {
	case KindInt:
		lane := reserveLane(v.Ints, base+n)
		if clean {
			for _, i := range idx {
				lane = append(lane, src.Ints[i])
			}
		} else {
			for k, i := range idx {
				if i < 0 || src.Nulls.Get(int(i)) {
					v.Nulls.Set(base + k)
					lane = append(lane, 0)
				} else {
					lane = append(lane, src.Ints[i])
				}
			}
		}
		v.Ints = lane
	case KindFloat:
		lane := reserveLane(v.Floats, base+n)
		if clean {
			for _, i := range idx {
				lane = append(lane, src.Floats[i])
			}
		} else {
			for k, i := range idx {
				if i < 0 || src.Nulls.Get(int(i)) {
					v.Nulls.Set(base + k)
					lane = append(lane, 0)
				} else {
					lane = append(lane, src.Floats[i])
				}
			}
		}
		v.Floats = lane
	case KindString:
		lane := reserveLane(v.Strs, base+n)
		if clean {
			for _, i := range idx {
				lane = append(lane, src.Strs[i])
			}
		} else {
			for k, i := range idx {
				if i < 0 || src.Nulls.Get(int(i)) {
					v.Nulls.Set(base + k)
					lane = append(lane, "")
				} else {
					lane = append(lane, src.Strs[i])
				}
			}
		}
		v.Strs = lane
	}
}

// reserveLane grows s's capacity to at least n without changing its
// length, with appendGrow's reservation policy.
func reserveLane[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	if bs := BatchSize(); c < bs {
		c = bs
	}
	ns := make([]T, len(s), c)
	copy(ns, s)
	return ns
}

// RowBytes returns the Tuple.Size of row i as if materialized — the
// spill accounting mirror of the row-major partition path.
func (cb *ColBatch) RowBytes(i int) int {
	if cb.Rows != nil {
		return cb.Rows[i].Size()
	}
	n := 24 + 40*len(cb.Cols) // slice header + one Value struct per column
	for c := range cb.Cols {
		v := cb.Col(c)
		switch {
		case v.Tags != nil:
			if v.Tags[i] == KindString {
				n += len(v.Strs[i])
			}
		case v.Kind == KindString && !v.Nulls.Get(i) && i < len(v.Strs):
			n += len(v.Strs[i])
		}
	}
	return n
}

// Release clears the batch for reuse or pooling: row references are
// dropped and string lane entries zeroed across their full capacity, so
// a released batch never pins tuple or string backing arrays. The lane
// backing arrays themselves are retained.
func (cb *ColBatch) Release() {
	for c := range cb.Cols {
		cb.Cols[c].release()
	}
	cb.NRows = 0
	cb.Sel = nil
	cb.Rows = nil
}

// colBatchPool recycles ColBatch structs (and their lane capacity)
// across operators; see GetColBatch/PutColBatch.
var colBatchPool = sync.Pool{New: func() any { return new(ColBatch) }}

// GetColBatch takes a cleared batch from the pool.
func GetColBatch() *ColBatch { return colBatchPool.Get().(*ColBatch) }

// PutColBatch releases cb (clearing row and string references, see
// Release) and returns it to the pool.
func PutColBatch(cb *ColBatch) {
	cb.Release()
	colBatchPool.Put(cb)
}
