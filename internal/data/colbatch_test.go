package data

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// randColValue draws a value whose kind distribution exercises NULLs,
// homogeneous lanes and (for high mixed probability) mixed columns.
func randColValue(rng *rand.Rand, kinds []Kind) Value {
	switch kinds[rng.Intn(len(kinds))] {
	case KindInt:
		return Int(rng.Int63n(1000) - 500)
	case KindFloat:
		return Float(rng.NormFloat64())
	case KindString:
		return Str(string(rune('a' + rng.Intn(26))))
	default:
		return Null()
	}
}

// randColRows builds n rows of width w. Each column gets its own kind
// palette so the batch mixes homogeneous, nullable, all-NULL and
// mixed-kind columns.
func randColRows(rng *rand.Rand, n, w int) []Tuple {
	palettes := make([][]Kind, w)
	for c := range palettes {
		switch rng.Intn(5) {
		case 0:
			palettes[c] = []Kind{KindInt}
		case 1:
			palettes[c] = []Kind{KindInt, KindNull}
		case 2:
			palettes[c] = []Kind{KindFloat, KindNull}
		case 3:
			palettes[c] = []Kind{KindNull}
		default:
			palettes[c] = []Kind{KindInt, KindFloat, KindString, KindNull}
		}
	}
	rows := make([]Tuple, n)
	for i := range rows {
		t := make(Tuple, w)
		for c := range t {
			t[c] = randColValue(rng, palettes[c])
		}
		rows[i] = t
	}
	return rows
}

// TestColBatchRoundTripProperty is the property test of the pivot:
// FromTuples followed by ToTuples must reproduce the row path exactly,
// for every mix of kinds, NULLs and sizes — including sizes that
// straddle the batch-size boundary (BatchSize-1, BatchSize, BatchSize+1).
func TestColBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, 7, BatchSize() - 1, BatchSize(), BatchSize() + 1}
	for trial := 0; trial < 30; trial++ {
		n := sizes[trial%len(sizes)]
		w := 1 + rng.Intn(5)
		rows := randColRows(rng, n, w)
		var cb ColBatch
		cb.FromTuples(rows, w)
		if cb.Rows != nil {
			t.Fatal("FromTuples must drop the row cache")
		}
		if cb.NRows != n || cb.Width() != w || cb.Live() != n {
			t.Fatalf("shape: NRows=%d Width=%d Live=%d want %d/%d/%d",
				cb.NRows, cb.Width(), cb.Live(), n, w, n)
		}
		got := cb.ToTuples(nil)
		if len(got) != n {
			t.Fatalf("trial %d: ToTuples returned %d rows, want %d", trial, len(got), n)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], rows[i]) {
				t.Fatalf("trial %d row %d: got %v want %v", trial, i, got[i], rows[i])
			}
		}
		// Per-cell reads must agree with the row path too.
		for i := 0; i < n; i++ {
			for c := 0; c < w; c++ {
				if v := cb.Col(c).ValueAt(i); v != rows[i][c] {
					t.Fatalf("trial %d ValueAt(%d,%d)=%v want %v", trial, c, i, v, rows[i][c])
				}
			}
		}
	}
}

// TestColBatchEmptySelection: an empty non-nil selection selects no rows
// everywhere — Live, ToTuples and the codec all see zero rows.
func TestColBatchEmptySelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randColRows(rng, 16, 3)
	var cb ColBatch
	cb.FromTuples(rows, 3)
	cb.Sel = []int32{}
	if cb.Live() != 0 {
		t.Fatalf("Live=%d want 0", cb.Live())
	}
	if got := cb.ToTuples(nil); len(got) != 0 {
		t.Fatalf("ToTuples returned %d rows, want 0", len(got))
	}
	// Row-backed variant.
	var rb ColBatch
	rb.SetRows(rows, 3)
	rb.Sel = []int32{}
	if got := rb.ToTuples(nil); len(got) != 0 {
		t.Fatalf("row-backed ToTuples returned %d rows, want 0", len(got))
	}
}

// TestColBatchSelectionFastPath: nil selection (all rows live) and an
// explicit all-rows selection must produce identical output, and a
// narrowed selection must pick exactly the chosen rows in order.
func TestColBatchSelectionFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := randColRows(rng, 64, 4)
	var cb ColBatch
	cb.FromTuples(rows, 4)

	all := cb.ToTuples(nil) // Sel == nil fast path
	sel := make([]int32, len(rows))
	for i := range sel {
		sel[i] = int32(i)
	}
	view := cb            // shallow copy per the ownership contract
	view.Sel = sel        // explicit all-rows selection
	explicit := view.ToTuples(nil)
	if !reflect.DeepEqual(all, explicit) {
		t.Fatal("nil selection and explicit all-rows selection disagree")
	}

	// Narrowed selection: every third row.
	var narrow []int32
	for i := 0; i < len(rows); i += 3 {
		narrow = append(narrow, int32(i))
	}
	view.Sel = narrow
	if view.Live() != len(narrow) {
		t.Fatalf("Live=%d want %d", view.Live(), len(narrow))
	}
	got := view.ToTuples(nil)
	for k, i := range narrow {
		if !reflect.DeepEqual(got[k], rows[i]) {
			t.Fatalf("narrowed row %d: got %v want %v", k, got[k], rows[i])
		}
	}
	// The shared producer batch must be untouched by the narrowed view.
	if cb.Sel != nil {
		t.Fatal("narrowing a view mutated the producer's selection")
	}
}

// TestColBatchAllNullColumn: a column of only NULLs pivots to a laneless
// vector that still answers every read correctly and round-trips.
func TestColBatchAllNullColumn(t *testing.T) {
	rows := make([]Tuple, 10)
	for i := range rows {
		rows[i] = Tuple{Int(int64(i)), Null()}
	}
	var cb ColBatch
	cb.FromTuples(rows, 2)
	v := cb.Col(1)
	if v.Kind != KindNull || !v.Homogeneous() {
		t.Fatalf("all-NULL column: Kind=%v Tags=%v", v.Kind, v.Tags)
	}
	for i := range rows {
		if got := v.ValueAt(i); !got.IsNull() {
			t.Fatalf("row %d: got %v want NULL", i, got)
		}
	}
	got := cb.ToTuples(nil)
	for i := range rows {
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], rows[i])
		}
	}
}

// TestColBatchMixedColumn: a column that changes kind mid-stream
// promotes to the tagged representation without losing earlier rows.
func TestColBatchMixedColumn(t *testing.T) {
	rows := []Tuple{
		{Int(1)}, {Int(2)}, {Null()}, {Str("x")}, {Float(2.5)},
	}
	var cb ColBatch
	cb.FromTuples(rows, 1)
	v := cb.Col(0)
	if v.Homogeneous() {
		t.Fatal("mixed column should carry per-row tags")
	}
	got := cb.ToTuples(nil)
	for i := range rows {
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], rows[i])
		}
	}
}

// TestColBatchAppendRow2 checks the join's zero-copy gather: appending
// (a, b) pairs must equal appending materialized concatenations.
func TestColBatchAppendRow2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	left := randColRows(rng, 20, 2)
	right := randColRows(rng, 20, 3)
	var viaPairs, viaConcat ColBatch
	viaPairs.BeginBuild(5)
	viaConcat.BeginBuild(5)
	for i := range left {
		viaPairs.AppendRow2(left[i], right[i])
		cat := append(append(Tuple{}, left[i]...), right[i]...)
		viaConcat.AppendRow(cat)
	}
	a := viaPairs.ToTuples(nil)
	b := viaConcat.ToTuples(nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("AppendRow2 output differs from materialized concatenation")
	}
}

// TestColBatchLazyPivot: a row-backed batch must not pivot columns the
// consumer never touches.
func TestColBatchLazyPivot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := randColRows(rng, 8, 3)
	var cb ColBatch
	cb.SetRows(rows, 3)
	_ = cb.Col(1)
	if cb.Cols[0].built || cb.Cols[2].built {
		t.Fatal("untouched columns were pivoted")
	}
	if !cb.Cols[1].built {
		t.Fatal("accessed column was not pivoted")
	}
	// Value prefers the row cache and must agree with the pivot.
	for i := range rows {
		if cb.Value(1, i) != rows[i][1] {
			t.Fatalf("Value(1,%d) mismatch", i)
		}
	}
}

// TestColBatchReuse: BeginBuild/Release cycles must not leak earlier
// fills into later reads, matching the Batch reuse contract.
func TestColBatchReuse(t *testing.T) {
	var cb ColBatch
	cb.BeginBuild(2)
	cb.AppendRow(Tuple{Str("leak"), Int(1)})
	cb.AppendRow(Tuple{Str("leak2"), Int(2)})
	first := cb.ToTuples(nil)
	if len(first) != 2 {
		t.Fatal("bad first fill")
	}
	cb.BeginBuild(2)
	cb.AppendRow(Tuple{Int(9), Null()})
	got := cb.ToTuples(nil)
	want := Tuple{Int(9), Null()}
	if len(got) != 1 || !reflect.DeepEqual(got[0], want) {
		t.Fatalf("refill: got %v want [%v]", got, want)
	}
	cb.Release()
	if cb.NRows != 0 || cb.Rows != nil || cb.Sel != nil {
		t.Fatal("Release left state behind")
	}
	// Pool cycle keeps working.
	p := GetColBatch()
	p.BeginBuild(1)
	p.AppendRow(Tuple{Int(42)})
	PutColBatch(p)
}

// TestBitmapEdges exercises the word-boundary bits of the NULL bitmap.
func TestBitmapEdges(t *testing.T) {
	var b Bitmap
	if b.Get(0) || b.Get(200) || b.Any() {
		t.Fatal("zero bitmap should be empty")
	}
	for _, i := range []int{0, 63, 64, 127, 128} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(62) || b.Get(65) {
		t.Fatal("unexpected bit set")
	}
	if !b.Any() {
		t.Fatal("Any=false after Set")
	}
	b.Clear()
	if b.Any() || b.Get(64) {
		t.Fatal("Clear left bits set")
	}
}

// TestColFrameRoundTripProperty: the spill-frame codec must reproduce
// the live rows exactly — selection compacted away — across kind mixes,
// NULL-heavy columns and frame sizes straddling the batch boundary.
func TestColFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sizes := []int{1, 2, 63, 64, 65, 255, 256, 257}
	for trial := 0; trial < 24; trial++ {
		n := sizes[trial%len(sizes)]
		w := 1 + rng.Intn(4)
		rows := randColRows(rng, n, w)
		var cb ColBatch
		cb.FromTuples(rows, w)
		want := rows
		if trial%3 == 1 && n > 1 {
			// Encode under a narrowed selection: only live rows survive.
			var sel []int32
			want = nil
			for i := 0; i < n; i += 2 {
				sel = append(sel, int32(i))
				want = append(want, rows[i])
			}
			cb.Sel = sel
		}

		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := EncodeColFrame(bw, &cb); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}

		var dec ColBatch
		br := bufio.NewReader(&buf)
		if err := DecodeColFrame(br, w, &dec); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		got := dec.ToTuples(nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: decoded %d rows, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("trial %d row %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
		// Stream end behaves like the tuple codec: clean EOF.
		if err := DecodeColFrame(br, w, &dec); err != io.EOF {
			t.Fatalf("trial %d: want io.EOF after last frame, got %v", trial, err)
		}
	}
}

// TestColFrameEmptySelectionFrame: a frame encoded from an
// empty-selection batch decodes to zero rows.
func TestColFrameEmptySelectionFrame(t *testing.T) {
	rows := []Tuple{{Int(1)}, {Int(2)}}
	var cb ColBatch
	cb.FromTuples(rows, 1)
	cb.Sel = []int32{}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := EncodeColFrame(bw, &cb); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	var dec ColBatch
	if err := DecodeColFrame(bufio.NewReader(&buf), 1, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Live() != 0 || len(dec.ToTuples(nil)) != 0 {
		t.Fatalf("empty-selection frame decoded %d rows", dec.Live())
	}
}

// TestSetBatchSizeKnob: the var-backed knob clamps bad values back to
// the default and round-trips good ones.
func TestSetBatchSizeKnob(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	SetBatchSize(256)
	if BatchSize() != 256 {
		t.Fatalf("BatchSize=%d want 256", BatchSize())
	}
	SetBatchSize(0)
	if BatchSize() != DefaultBatchSize {
		t.Fatalf("BatchSize=%d want default after bad value", BatchSize())
	}
}
