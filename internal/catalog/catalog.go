// Package catalog maintains the registered tables and the base-table
// statistics the naive optimizer uses for its initial cardinality
// estimates (paper §3: "Our framework does not require, but can make use
// of base table statistics ... We also assume knowledge of the size of
// base tables, which is usually available in the system catalogs").
package catalog

import (
	"fmt"
	"sort"
	"sync/atomic"

	"qpi/internal/data"
	"qpi/internal/storage"
)

// ColumnStats summarizes one column for optimizer estimation.
type ColumnStats struct {
	Distinct int64      // number of distinct non-null values
	Min, Max data.Value // value range (meaningful for int/float columns)
	NullFrac float64    // fraction of NULLs
	// MCVs are the most common values with their frequencies (fraction of
	// rows), like PostgreSQL's pg_stats, truncated to a small budget.
	MCVs []MCV
}

// MCV is one most-common-value entry.
type MCV struct {
	Value data.Value
	Frac  float64
}

// TableStats summarizes one table.
type TableStats struct {
	Rows    int64
	Columns map[string]*ColumnStats // keyed by column name
}

// Entry is one catalog entry: the stored table plus its statistics.
type Entry struct {
	Table *storage.Table
	Stats *TableStats
}

// Catalog maps table names to entries. A monotonically increasing
// version number changes on every mutation (table registration, row
// insertion, re-ANALYZE); plan caches key on it to detect stale
// prepared statements.
type Catalog struct {
	entries map[string]*Entry
	version atomic.Int64
}

// New creates an empty catalog.
func New() *Catalog { return &Catalog{entries: map[string]*Entry{}} }

// Version returns the catalog's current mutation version. It increases
// on Register/RegisterWithoutStats and every explicit Bump (callers bump
// on row insertion and re-ANALYZE); a plan compiled at version v is
// stale whenever Version() != v. Safe for concurrent readers.
func (c *Catalog) Version() int64 { return c.version.Load() }

// Bump advances the catalog version, marking every previously prepared
// plan stale.
func (c *Catalog) Bump() { c.version.Add(1) }

// Register adds a table and computes its statistics (a full ANALYZE; data
// generation is the only writer so statistics never go stale).
func (c *Catalog) Register(t *storage.Table) *Entry {
	e := &Entry{Table: t, Stats: Analyze(t)}
	c.entries[t.Name()] = e
	c.Bump()
	return e
}

// RegisterWithoutStats adds a table with row count only (distinct counts
// unknown), modelling a table that was never ANALYZEd.
func (c *Catalog) RegisterWithoutStats(t *storage.Table) *Entry {
	e := &Entry{Table: t, Stats: &TableStats{
		Rows:    int64(t.NumRows()),
		Columns: map[string]*ColumnStats{},
	}}
	c.entries[t.Name()] = e
	c.Bump()
	return e
}

// Lookup returns the entry for name.
func (c *Catalog) Lookup(name string) (*Entry, error) {
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q not found", name)
	}
	return e, nil
}

// MustLookup is Lookup, panicking when the table is missing.
func (c *Catalog) MustLookup(name string) *Entry {
	e, err := c.Lookup(name)
	if err != nil {
		panic(err)
	}
	return e
}

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// mcvBudget bounds the most-common-value list per column.
const mcvBudget = 16

// Analyze scans a table and computes per-column statistics.
func Analyze(t *storage.Table) *TableStats {
	st := &TableStats{
		Rows:    int64(t.NumRows()),
		Columns: map[string]*ColumnStats{},
	}
	n := t.Schema().Len()
	counts := make([]map[data.Value]int64, n)
	nulls := make([]int64, n)
	mins := make([]data.Value, n)
	maxs := make([]data.Value, n)
	for i := range counts {
		counts[i] = map[data.Value]int64{}
	}
	it := t.SequentialOrder()
	for tu := it.Next(); tu != nil; tu = it.Next() {
		for i, v := range tu {
			if v.IsNull() {
				nulls[i]++
				continue
			}
			counts[i][v]++
			if mins[i].IsNull() || data.Compare(v, mins[i]) < 0 {
				mins[i] = v
			}
			if maxs[i].IsNull() || data.Compare(v, maxs[i]) > 0 {
				maxs[i] = v
			}
		}
	}
	for i, col := range t.Schema().Cols {
		cs := &ColumnStats{
			Distinct: int64(len(counts[i])),
			Min:      mins[i],
			Max:      maxs[i],
		}
		if st.Rows > 0 {
			cs.NullFrac = float64(nulls[i]) / float64(st.Rows)
		}
		cs.MCVs = topMCVs(counts[i], st.Rows)
		st.Columns[col.Name] = cs
	}
	return st
}

func topMCVs(counts map[data.Value]int64, rows int64) []MCV {
	if rows == 0 || len(counts) == 0 {
		return nil
	}
	all := make([]MCV, 0, len(counts))
	for v, c := range counts {
		all = append(all, MCV{Value: v, Frac: float64(c) / float64(rows)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Frac != all[j].Frac {
			return all[i].Frac > all[j].Frac
		}
		return data.Compare(all[i].Value, all[j].Value) < 0
	})
	if len(all) > mcvBudget {
		all = all[:mcvBudget]
	}
	return all
}

// DistinctOrDefault returns the distinct count for a column, or def when
// statistics are missing.
func (s *TableStats) DistinctOrDefault(col string, def int64) int64 {
	if cs, ok := s.Columns[col]; ok && cs.Distinct > 0 {
		return cs.Distinct
	}
	return def
}
