package catalog

import (
	"testing"

	"qpi/internal/data"
	"qpi/internal/storage"
)

func makeTable(name string, vals []int64) *storage.Table {
	s := data.NewSchema(data.Column{Table: name, Name: "k", Kind: data.KindInt})
	t := storage.NewTable(name, s)
	for _, v := range vals {
		t.MustAppend(data.Tuple{data.Int(v)})
	}
	return t
}

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	c.Register(makeTable("a", []int64{1, 2, 3}))
	c.Register(makeTable("b", []int64{1}))
	e, err := c.Lookup("a")
	if err != nil || e.Stats.Rows != 3 {
		t.Fatalf("Lookup(a) = %v, %v", e, err)
	}
	if _, err := c.Lookup("zzz"); err == nil {
		t.Error("Lookup of missing table should fail")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup did not panic")
		}
	}()
	New().MustLookup("nope")
}

func TestAnalyzeDistinctMinMax(t *testing.T) {
	tb := makeTable("t", []int64{5, 1, 5, 9, 1, 5})
	st := Analyze(tb)
	cs := st.Columns["k"]
	if cs.Distinct != 3 {
		t.Errorf("Distinct = %d, want 3", cs.Distinct)
	}
	if cs.Min.I != 1 || cs.Max.I != 9 {
		t.Errorf("Min/Max = %v/%v", cs.Min, cs.Max)
	}
	if cs.NullFrac != 0 {
		t.Errorf("NullFrac = %g", cs.NullFrac)
	}
}

func TestAnalyzeNulls(t *testing.T) {
	s := data.NewSchema(data.Column{Table: "t", Name: "k", Kind: data.KindInt})
	tb := storage.NewTable("t", s)
	tb.MustAppend(data.Tuple{data.Null()})
	tb.MustAppend(data.Tuple{data.Int(4)})
	tb.MustAppend(data.Tuple{data.Null()})
	tb.MustAppend(data.Tuple{data.Int(4)})
	st := Analyze(tb)
	cs := st.Columns["k"]
	if cs.NullFrac != 0.5 {
		t.Errorf("NullFrac = %g, want 0.5", cs.NullFrac)
	}
	if cs.Distinct != 1 {
		t.Errorf("Distinct = %d, want 1", cs.Distinct)
	}
}

func TestMCVsOrderedAndBounded(t *testing.T) {
	var vals []int64
	for v := int64(1); v <= 30; v++ { // value v appears v times
		for i := int64(0); i < v; i++ {
			vals = append(vals, v)
		}
	}
	st := Analyze(makeTable("t", vals))
	mcvs := st.Columns["k"].MCVs
	if len(mcvs) != 16 {
		t.Fatalf("len(MCVs) = %d, want 16", len(mcvs))
	}
	if mcvs[0].Value.I != 30 {
		t.Errorf("top MCV = %v, want 30", mcvs[0].Value)
	}
	for i := 1; i < len(mcvs); i++ {
		if mcvs[i].Frac > mcvs[i-1].Frac {
			t.Fatalf("MCVs not sorted at %d", i)
		}
	}
}

func TestRegisterWithoutStats(t *testing.T) {
	c := New()
	e := c.RegisterWithoutStats(makeTable("t", []int64{1, 2}))
	if e.Stats.Rows != 2 {
		t.Errorf("Rows = %d", e.Stats.Rows)
	}
	if got := e.Stats.DistinctOrDefault("k", 99); got != 99 {
		t.Errorf("DistinctOrDefault = %d, want default 99", got)
	}
}

func TestDistinctOrDefaultWithStats(t *testing.T) {
	st := Analyze(makeTable("t", []int64{1, 2, 2}))
	if got := st.DistinctOrDefault("k", 99); got != 2 {
		t.Errorf("DistinctOrDefault = %d, want 2", got)
	}
	if got := st.DistinctOrDefault("missing", 7); got != 7 {
		t.Errorf("DistinctOrDefault(missing) = %d, want 7", got)
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	st := Analyze(makeTable("t", nil))
	if st.Rows != 0 {
		t.Errorf("Rows = %d", st.Rows)
	}
	cs := st.Columns["k"]
	if cs.Distinct != 0 || len(cs.MCVs) != 0 {
		t.Errorf("empty table stats = %+v", cs)
	}
}
