package storage

import (
	"sync"
	"testing"
	"testing/quick"

	"qpi/internal/data"
)

func intSchema() *data.Schema {
	return data.NewSchema(data.Column{Table: "t", Name: "a", Kind: data.KindInt})
}

func buildTable(t *testing.T, n int) *Table {
	t.Helper()
	tb := NewTable("t", intSchema())
	for i := 0; i < n; i++ {
		tb.MustAppend(data.Tuple{data.Int(int64(i))})
	}
	return tb
}

func TestAppendAndRows(t *testing.T) {
	tb := buildTable(t, 300)
	if tb.NumRows() != 300 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	wantBlocks := (300 + BlockSize - 1) / BlockSize
	if tb.NumBlocks() != wantBlocks {
		t.Fatalf("NumBlocks = %d, want %d", tb.NumBlocks(), wantBlocks)
	}
	rows := tb.Rows()
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	if tb.Name() != "t" || tb.Schema().Len() != 1 {
		t.Error("accessors wrong")
	}
}

func TestAppendArityMismatch(t *testing.T) {
	tb := NewTable("t", intSchema())
	if err := tb.Append(data.Tuple{data.Int(1), data.Int(2)}); err == nil {
		t.Error("arity mismatch not rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAppend did not panic")
		}
	}()
	tb.MustAppend(data.Tuple{})
}

func TestSequentialOrderCoversAll(t *testing.T) {
	tb := buildTable(t, 1000)
	it := tb.SequentialOrder()
	if it.SampleBoundary() != 0 {
		t.Errorf("sequential SampleBoundary = %d", it.SampleBoundary())
	}
	for i := 0; i < 1000; i++ {
		tu := it.Next()
		if tu == nil || tu[0].I != int64(i) {
			t.Fatalf("tuple %d = %v", i, tu)
		}
	}
	if it.Next() != nil {
		t.Error("iterator not exhausted after all rows")
	}
}

func TestSampleOrderIsPermutationOfTable(t *testing.T) {
	tb := buildTable(t, 2000)
	it := tb.SampleOrder(0.25, 42)
	seen := map[int64]int{}
	n := 0
	for tu := it.Next(); tu != nil; tu = it.Next() {
		seen[tu[0].I]++
		n++
	}
	if n != 2000 {
		t.Fatalf("emitted %d rows, want 2000 (no duplicates from sample+rest)", n)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

func TestSampleBoundaryFraction(t *testing.T) {
	tb := buildTable(t, 12800) // 100 blocks exactly
	it := tb.SampleOrder(0.10, 7)
	want := 10 * BlockSize
	if it.SampleBoundary() != want {
		t.Errorf("SampleBoundary = %d, want %d", it.SampleBoundary(), want)
	}
}

func TestSampleFractionClamping(t *testing.T) {
	tb := buildTable(t, 512)
	if b := tb.SampleOrder(-1, 1).SampleBoundary(); b != 0 {
		t.Errorf("fraction<0: boundary %d", b)
	}
	if b := tb.SampleOrder(2, 1).SampleBoundary(); b != 512 {
		t.Errorf("fraction>1: boundary %d, want 512", b)
	}
}

func TestSampleIsRandomAcrossSeeds(t *testing.T) {
	tb := buildTable(t, 12800)
	first := func(seed int64) int64 {
		return tb.SampleOrder(0.1, seed).Next()[0].I
	}
	a, b := first(1), first(2)
	if a == b {
		// Not impossible, but with 100 blocks it is 1% likely; use a third
		// seed to make a flake astronomically unlikely.
		if c := first(3); c == a {
			t.Errorf("sample start identical across 3 seeds: %d", a)
		}
	}
}

func TestInSampleTracksPrefix(t *testing.T) {
	tb := buildTable(t, 1280)
	it := tb.SampleOrder(0.5, 9)
	boundary := it.SampleBoundary()
	for i := 0; i < boundary; i++ {
		it.Next()
		if !it.InSample() {
			t.Fatalf("tuple %d (boundary %d): InSample = false", i, boundary)
		}
	}
	it.Next()
	if it.InSample() {
		t.Error("past boundary: InSample = true")
	}
}

func TestReset(t *testing.T) {
	tb := buildTable(t, 100)
	it := tb.SampleOrder(0.2, 5)
	var firstPass []int64
	for tu := it.Next(); tu != nil; tu = it.Next() {
		firstPass = append(firstPass, tu[0].I)
	}
	it.Reset()
	for i := 0; ; i++ {
		tu := it.Next()
		if tu == nil {
			if i != len(firstPass) {
				t.Fatalf("second pass ended at %d, want %d", i, len(firstPass))
			}
			break
		}
		if tu[0].I != firstPass[i] {
			t.Fatalf("second pass tuple %d = %d, want %d", i, tu[0].I, firstPass[i])
		}
	}
}

func TestSamplePermutationProperty(t *testing.T) {
	f := func(seed int64, fracRaw uint8, rowsRaw uint16) bool {
		rows := int(rowsRaw%2048) + 1
		frac := float64(fracRaw%101) / 100
		tb := NewTable("t", intSchema())
		for i := 0; i < rows; i++ {
			tb.MustAppend(data.Tuple{data.Int(int64(i))})
		}
		it := tb.SampleOrder(frac, seed)
		seen := make([]bool, rows)
		n := 0
		for tu := it.Next(); tu != nil; tu = it.Next() {
			if seen[tu[0].I] {
				return false
			}
			seen[tu[0].I] = true
			n++
		}
		return n == rows
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMorselsCoverEveryBlockOnce(t *testing.T) {
	for _, rows := range []int{0, 1, BlockSize, BlockSize*5 + 7, BlockSize * 70} {
		tb := buildTable(t, rows)
		for _, per := range []int{1, 3, DefaultMorselBlocks, 1000} {
			ms := tb.Morsels(per)
			covered := make([]int, tb.NumBlocks())
			n := 0
			prevHi := 0
			for {
				m, ok := ms.Claim()
				if !ok {
					break
				}
				n++
				if m.Lo != prevHi {
					t.Fatalf("rows=%d per=%d: morsel starts at %d, want %d (ascending contiguous ranges)", rows, per, m.Lo, prevHi)
				}
				if m.Hi <= m.Lo || m.Hi > tb.NumBlocks() {
					t.Fatalf("rows=%d per=%d: bad morsel [%d,%d)", rows, per, m.Lo, m.Hi)
				}
				prevHi = m.Hi
				for b := m.Lo; b < m.Hi; b++ {
					covered[b]++
				}
			}
			if n != ms.NumMorsels() {
				t.Fatalf("rows=%d per=%d: claimed %d morsels, NumMorsels says %d", rows, per, n, ms.NumMorsels())
			}
			for b, c := range covered {
				if c != 1 {
					t.Fatalf("rows=%d per=%d: block %d covered %d times", rows, per, b, c)
				}
			}
			if _, ok := ms.Claim(); ok {
				t.Fatalf("rows=%d per=%d: Claim succeeded after exhaustion", rows, per)
			}
		}
	}
}

func TestMorselsDefaultSize(t *testing.T) {
	tb := buildTable(t, BlockSize*DefaultMorselBlocks*2)
	ms := tb.Morsels(0)
	m, ok := ms.Claim()
	if !ok || m.Hi-m.Lo != DefaultMorselBlocks {
		t.Fatalf("Claim = %+v ok=%v, want span %d", m, ok, DefaultMorselBlocks)
	}
}

func TestMorselsConcurrentClaim(t *testing.T) {
	tb := buildTable(t, BlockSize*97)
	ms := tb.Morsels(3)
	const workers = 8
	claims := make([][]Morsel, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m, ok := ms.Claim()
				if !ok {
					return
				}
				claims[w] = append(claims[w], m)
			}
		}(w)
	}
	wg.Wait()
	covered := make([]int, tb.NumBlocks())
	for _, cs := range claims {
		for _, m := range cs {
			for b := m.Lo; b < m.Hi; b++ {
				covered[b]++
			}
		}
	}
	for b, c := range covered {
		if c != 1 {
			t.Fatalf("block %d claimed %d times across %d workers", b, c, workers)
		}
	}
}
