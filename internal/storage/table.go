// Package storage provides an in-memory block-structured heap "file" per
// table plus the block-level random sampling machinery the paper's modified
// table scans rely on (§3, §5 "Implementation"): a scan first delivers a
// random sample of blocks of a requested fraction, then the rest of the
// table excluding the sampled blocks (the paper's antijoin on block ids),
// emitting a punctuation in between.
package storage

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"qpi/internal/data"
)

// BlockSize is the number of tuples per block. 128 keeps blocks around the
// size of a disk page for typical narrow tuples.
const BlockSize = 128

// Block is one page worth of tuples.
type Block struct {
	ID     int
	Tuples []data.Tuple
}

// Table is a heap file: an append-only sequence of blocks with a schema.
type Table struct {
	name   string
	schema *data.Schema
	blocks []*Block
	rows   int
}

// NewTable creates an empty table.
func NewTable(name string, schema *data.Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *data.Schema { return t.schema }

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int { return t.rows }

// NumBlocks returns the number of blocks in the table.
func (t *Table) NumBlocks() int { return len(t.blocks) }

// Append adds a tuple to the table. The tuple must match the schema arity.
func (t *Table) Append(tu data.Tuple) error {
	if len(tu) != t.schema.Len() {
		return fmt.Errorf("storage: table %s: tuple arity %d != schema arity %d",
			t.name, len(tu), t.schema.Len())
	}
	if n := len(t.blocks); n == 0 || len(t.blocks[n-1].Tuples) >= BlockSize {
		t.blocks = append(t.blocks, &Block{
			ID:     n,
			Tuples: make([]data.Tuple, 0, BlockSize),
		})
	}
	b := t.blocks[len(t.blocks)-1]
	b.Tuples = append(b.Tuples, tu)
	t.rows++
	return nil
}

// MustAppend is Append, panicking on arity mismatch (generator-side use).
func (t *Table) MustAppend(tu data.Tuple) {
	if err := t.Append(tu); err != nil {
		panic(err)
	}
}

// Block returns the i-th block.
func (t *Table) Block(i int) *Block { return t.blocks[i] }

// Rows materializes all tuples in block order, mainly for tests.
func (t *Table) Rows() []data.Tuple {
	out := make([]data.Tuple, 0, t.rows)
	for _, b := range t.blocks {
		out = append(out, b.Tuples...)
	}
	return out
}

// Iterator walks the table's tuples. Order is controlled by the block order
// slice (see SampleOrder / SequentialOrder). SampleBoundary reports the
// tuple index at which the random sample ends.
type Iterator struct {
	table          *Table
	order          []int
	sampleBlocks   int
	blockIdx       int
	tupleIdx       int
	emitted        int
	sampleBoundary int
}

// SequentialOrder returns an iterator over all blocks in storage order;
// the "sample" is empty and SampleBoundary is 0.
func (t *Table) SequentialOrder() *Iterator {
	order := make([]int, len(t.blocks))
	for i := range order {
		order[i] = i
	}
	return &Iterator{table: t, order: order}
}

// SampleOrder returns an iterator that first visits a uniform random sample
// of ~fraction of the table's blocks (the paper's precomputed block-level
// random sample), then the remaining blocks in storage order, excluding the
// sampled ones. fraction is clamped to [0,1]. seed makes the sample
// reproducible.
func (t *Table) SampleOrder(fraction float64, seed int64) *Iterator {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	nb := len(t.blocks)
	k := int(fraction * float64(nb))
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(nb)
	sampled := perm[:k]
	inSample := make([]bool, nb)
	order := make([]int, 0, nb)
	order = append(order, sampled...)
	for _, b := range sampled {
		inSample[b] = true
	}
	for i := 0; i < nb; i++ {
		if !inSample[i] {
			order = append(order, i)
		}
	}
	it := &Iterator{table: t, order: order, sampleBlocks: k}
	for _, b := range sampled {
		it.sampleBoundary += len(t.blocks[b].Tuples)
	}
	return it
}

// Next returns the next tuple, or nil when the iterator is exhausted.
func (it *Iterator) Next() data.Tuple {
	for it.blockIdx < len(it.order) {
		b := it.table.blocks[it.order[it.blockIdx]]
		if it.tupleIdx < len(b.Tuples) {
			tu := b.Tuples[it.tupleIdx]
			it.tupleIdx++
			it.emitted++
			return tu
		}
		it.blockIdx++
		it.tupleIdx = 0
	}
	return nil
}

// SampleBoundary returns the number of tuples in the random-sample prefix.
// A consumer that has read exactly SampleBoundary tuples has consumed the
// whole sample; the paper's punctuation fires at that point.
func (it *Iterator) SampleBoundary() int { return it.sampleBoundary }

// InSample reports whether the iterator is still inside the sample prefix.
func (it *Iterator) InSample() bool { return it.emitted <= it.sampleBoundary && it.sampleBoundary > 0 }

// Emitted returns the number of tuples returned so far.
func (it *Iterator) Emitted() int { return it.emitted }

// Reset rewinds the iterator to the beginning, preserving its block order.
func (it *Iterator) Reset() {
	it.blockIdx, it.tupleIdx, it.emitted = 0, 0, 0
}

// DefaultMorselBlocks is the number of blocks per morsel claim: 32 blocks
// (4096 tuples at BlockSize 128) amortizes the atomic claim to once per a
// few output batches while keeping the work units fine-grained enough
// that scan workers finish a pass within one morsel of each other.
const DefaultMorselBlocks = 32

// Morsel is a half-open range of block indexes [Lo, Hi) claimed by one
// scan worker — the unit of work distribution in morsel-driven parallel
// scans (after Leis et al.'s morsel-driven query execution).
type Morsel struct {
	Lo, Hi int
}

// MorselSource hands out a table's blocks as fixed-size morsels via an
// atomic claim counter. Any number of workers may call Claim
// concurrently; each block is handed out exactly once, in ascending
// ranges. A MorselSource is single-use: once exhausted it stays
// exhausted.
type MorselSource struct {
	table *Table
	per   int
	next  atomic.Int64
}

// Morsels returns a morsel source over the table's blocks,
// blocksPerMorsel blocks per claim (≤ 0 selects DefaultMorselBlocks).
func (t *Table) Morsels(blocksPerMorsel int) *MorselSource {
	if blocksPerMorsel < 1 {
		blocksPerMorsel = DefaultMorselBlocks
	}
	return &MorselSource{table: t, per: blocksPerMorsel}
}

// NumMorsels returns how many claims the source hands out in total.
func (ms *MorselSource) NumMorsels() int {
	return (len(ms.table.blocks) + ms.per - 1) / ms.per
}

// Claim atomically claims the next unclaimed block range. ok is false
// when the table is exhausted.
func (ms *MorselSource) Claim() (m Morsel, ok bool) {
	i := int(ms.next.Add(1) - 1)
	lo := i * ms.per
	if lo >= len(ms.table.blocks) {
		return Morsel{}, false
	}
	hi := lo + ms.per
	if hi > len(ms.table.blocks) {
		hi = len(ms.table.blocks)
	}
	return Morsel{Lo: lo, Hi: hi}, true
}
