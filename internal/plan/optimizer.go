package plan

import (
	"qpi/internal/catalog"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
)

// Default selectivities when nothing better is known, following the
// classic System R constants.
const (
	defaultEqSelectivity    = 0.005
	defaultRangeSelectivity = 1.0 / 3.0
	defaultSelectivity      = 0.25
)

// nodeEstimate carries the optimizer's belief about one operator's output.
type nodeEstimate struct {
	rows float64
	// distinct maps output column index -> estimated distinct count.
	distinct map[int]float64
	// mins/maxs track value ranges for numeric columns (for range
	// selectivity), keyed by output column index.
	mins map[int]float64
	maxs map[int]float64
}

// EstimateCardinalities walks the plan bottom-up computing textbook
// cardinality estimates under the uniformity and independence assumptions
// (|R ⋈ S| = |R||S| / max(d_R, d_S), System R selectivity constants) and
// stores them in every operator's Stats as the "optimizer" estimate.
//
// These estimates are intentionally naive: on skewed data they are wrong
// by large factors (the paper's Figure 4(a) observes PostgreSQL off by
// ~13×), which is precisely the starting point the online framework
// corrects.
func EstimateCardinalities(root exec.Operator, cat *catalog.Catalog) {
	estimate(root, cat)
}

func estimate(op exec.Operator, cat *catalog.Catalog) nodeEstimate {
	switch o := op.(type) {
	case *exec.Scan:
		return estimateScan(o, cat)
	case *exec.Filter:
		return estimateFilter(o, cat)
	case *exec.Project:
		child := estimate(op.Children()[0], cat)
		// Column provenance through computed expressions is not tracked;
		// distinct counts are dropped (safe fallback).
		ne := nodeEstimate{rows: child.rows, distinct: map[int]float64{},
			mins: map[int]float64{}, maxs: map[int]float64{}}
		op.Stats().SetEstimate(ne.rows, "optimizer")
		return ne
	case *exec.Limit:
		child := estimate(op.Children()[0], cat)
		ne := child
		op.Stats().SetEstimate(ne.rows, "optimizer")
		return ne
	case *exec.Sort:
		child := estimate(op.Children()[0], cat)
		op.Stats().SetEstimate(child.rows, "optimizer")
		return child
	case *exec.HashJoin:
		b := estimate(o.Build(), cat)
		p := estimate(o.Probe(), cat)
		ne := estimateEquijoin(b, p, o.BuildKey(), o.ProbeKey(), o.Build().Schema().Len())
		switch o.Type() {
		case exec.ProbeOuterJoin:
			if ne.rows < p.rows {
				ne.rows = p.rows
			}
		case exec.SemiJoin, exec.AntiJoin:
			db := b.rows
			if d, ok := b.distinct[o.BuildKey()]; ok && d > 0 {
				db = d
			}
			dp := p.rows
			if d, ok := p.distinct[o.ProbeKey()]; ok && d > 0 {
				dp = d
			}
			sel := 1.0
			if dp > 0 && db < dp {
				sel = db / dp
			}
			semi := p.rows * sel
			if o.Type() == exec.SemiJoin {
				ne = nodeEstimate{rows: semi}
			} else {
				ne = nodeEstimate{rows: p.rows - semi}
			}
			// Output schema is the probe side alone.
			ne = concatColumnStats(nodeEstimate{}, p, ne, 0)
		}
		op.Stats().SetEstimate(ne.rows, "optimizer")
		return ne
	case *exec.MergeJoin:
		l := estimate(o.Left(), cat)
		r := estimate(o.Right(), cat)
		ne := estimateEquijoin(l, r, o.LeftKey(), o.RightKey(), o.Left().Schema().Len())
		op.Stats().SetEstimate(ne.rows, "optimizer")
		return ne
	case *exec.NestedLoopsJoin:
		outer := estimate(o.Outer(), cat)
		inner := estimate(o.Inner(), cat)
		var ne nodeEstimate
		if o.Indexed {
			ne = estimateEquijoin(outer, inner, o.OuterKey(), o.InnerKey(),
				o.Outer().Schema().Len())
		} else {
			rows := outer.rows * inner.rows
			if o.Pred != nil {
				rows *= defaultSelectivity
			}
			ne = concatColumnStats(outer, inner,
				nodeEstimate{rows: rows}, o.Outer().Schema().Len())
		}
		op.Stats().SetEstimate(ne.rows, "optimizer")
		return ne
	case *exec.HashAgg:
		child := estimate(op.Children()[0], cat)
		ne, hint := estimateGroupBy(child, o.GroupBy())
		op.Stats().SetEstimate(ne.rows, "optimizer")
		op.Stats().GroupsHint = hint
		return ne
	case *exec.SortAgg:
		child := estimate(op.Children()[0], cat)
		ne, hint := estimateGroupBy(child, o.GroupBy())
		op.Stats().SetEstimate(ne.rows, "optimizer")
		op.Stats().GroupsHint = hint
		return ne
	default:
		if len(op.Children()) == 0 {
			// Generic leaf (e.g. a disk scan): trust its own declared
			// total.
			return nodeEstimate{rows: op.Stats().Total(),
				distinct: map[int]float64{}, mins: map[int]float64{}, maxs: map[int]float64{}}
		}
		var child nodeEstimate
		for _, c := range op.Children() {
			child = estimate(c, cat)
		}
		op.Stats().SetEstimate(child.rows, "optimizer")
		return child
	}
}

func estimateScan(s *exec.Scan, cat *catalog.Catalog) nodeEstimate {
	rows := float64(s.Table().NumRows())
	ne := nodeEstimate{rows: rows, distinct: map[int]float64{},
		mins: map[int]float64{}, maxs: map[int]float64{}}
	if cat != nil {
		if e, err := cat.Lookup(s.Table().Name()); err == nil {
			for i, col := range s.Table().Schema().Cols {
				if cs, ok := e.Stats.Columns[col.Name]; ok {
					ne.distinct[i] = float64(cs.Distinct)
					if !cs.Min.IsNull() && cs.Min.Kind != data.KindString {
						ne.mins[i] = cs.Min.AsFloat()
						ne.maxs[i] = cs.Max.AsFloat()
					}
				}
			}
		}
	}
	s.Stats().SetEstimate(rows, "exact")
	return ne
}

func estimateFilter(f *exec.Filter, cat *catalog.Catalog) nodeEstimate {
	child := estimate(f.Children()[0], cat)
	sel := predicateSelectivity(f.Pred(), child)
	ne := nodeEstimate{
		rows:     child.rows * sel,
		distinct: map[int]float64{},
		mins:     child.mins,
		maxs:     child.maxs,
	}
	for i, d := range child.distinct {
		if d > ne.rows {
			d = ne.rows
		}
		ne.distinct[i] = d
	}
	f.Stats().SetEstimate(ne.rows, "optimizer")
	return ne
}

// predicateSelectivity estimates the fraction of rows passing pred.
func predicateSelectivity(pred expr.Expr, in nodeEstimate) float64 {
	switch p := pred.(type) {
	case expr.And:
		sel := 1.0
		for _, t := range p.Terms {
			sel *= predicateSelectivity(t, in)
		}
		return sel
	case expr.Or:
		sel := 0.0
		for _, t := range p.Terms {
			s := predicateSelectivity(t, in)
			sel = sel + s - sel*s
		}
		return sel
	case expr.Not:
		return 1 - predicateSelectivity(p.E, in)
	case expr.Cmp:
		return cmpSelectivity(p, in)
	default:
		return defaultSelectivity
	}
}

func cmpSelectivity(p expr.Cmp, in nodeEstimate) float64 {
	col, colOK := p.L.(expr.Col)
	lit, litOK := p.R.(expr.Const)
	if !colOK || !litOK {
		// col-op-col or computed sides: defaults.
		if p.Op == expr.EQ {
			return defaultEqSelectivity
		}
		return defaultRangeSelectivity
	}
	switch p.Op {
	case expr.EQ:
		if d, ok := in.distinct[col.Index]; ok && d > 0 {
			return 1 / d
		}
		return defaultEqSelectivity
	case expr.NE:
		if d, ok := in.distinct[col.Index]; ok && d > 0 {
			return 1 - 1/d
		}
		return 1 - defaultEqSelectivity
	default:
		lo, hasLo := in.mins[col.Index]
		hi, hasHi := in.maxs[col.Index]
		if !hasLo || !hasHi || hi <= lo || lit.V.Kind == data.KindString {
			return defaultRangeSelectivity
		}
		v := lit.V.AsFloat()
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		switch p.Op {
		case expr.LT, expr.LE:
			return frac
		default: // GT, GE
			return 1 - frac
		}
	}
}

// estimateEquijoin applies |R ⋈ S| = |R||S| / max(d_R(key), d_S(key)).
// leftWidth is the arity of the left input, used to offset the right
// input's column statistics in the output coordinate space.
func estimateEquijoin(l, r nodeEstimate, lKey, rKey, leftWidth int) nodeEstimate {
	dl := l.rows
	if d, ok := l.distinct[lKey]; ok && d > 0 {
		dl = d
	}
	dr := r.rows
	if d, ok := r.distinct[rKey]; ok && d > 0 {
		dr = d
	}
	dmax := dl
	if dr > dmax {
		dmax = dr
	}
	rows := 0.0
	if dmax > 0 {
		rows = l.rows * r.rows / dmax
	}
	return concatColumnStats(l, r, nodeEstimate{rows: rows}, leftWidth)
}

// concatColumnStats merges left/right column stats into the join output
// coordinate space (left columns first), capping distinct counts at the
// output cardinality.
func concatColumnStats(l, r, ne nodeEstimate, leftWidth int) nodeEstimate {
	ne.distinct = map[int]float64{}
	ne.mins = map[int]float64{}
	ne.maxs = map[int]float64{}
	lw := leftWidth
	for i, d := range l.distinct {
		ne.distinct[i] = capAt(d, ne.rows)
	}
	for i, d := range r.distinct {
		ne.distinct[i+lw] = capAt(d, ne.rows)
	}
	for i, v := range l.mins {
		ne.mins[i] = v
	}
	for i, v := range l.maxs {
		ne.maxs[i] = v
	}
	for i, v := range r.mins {
		ne.mins[i+lw] = v
	}
	for i, v := range r.maxs {
		ne.maxs[i+lw] = v
	}
	return ne
}

// estimateGroupBy returns the capped group-count estimate plus the
// uncapped distinct-product belief (the GroupsHint).
func estimateGroupBy(child nodeEstimate, groupBy []int) (nodeEstimate, float64) {
	groups := 1.0
	for _, g := range groupBy {
		if d, ok := child.distinct[g]; ok && d > 0 {
			groups *= d
		} else {
			groups *= capAt(child.rows*0.1, child.rows)
		}
	}
	hint := groups
	groups = capAt(groups, child.rows)
	if groups < 1 && child.rows >= 1 {
		groups = 1
	}
	return nodeEstimate{rows: groups, distinct: map[int]float64{},
		mins: map[int]float64{}, maxs: map[int]float64{}}, hint
}

func capAt(v, cap float64) float64 {
	if v > cap {
		return cap
	}
	return v
}
