// Package plan analyses physical operator trees: it decomposes them into
// pipelines (maximal sets of concurrently executing operators delimited by
// blocking operators, paper §3 / Figure 1) and computes textbook optimizer
// cardinality estimates (uniformity + independence assumptions) that seed
// the progress model before the online estimators refine them.
package plan

import (
	"fmt"
	"strings"

	"qpi/internal/exec"
)

// Pipeline is a maximal set of concurrently executing operators. Every
// operator belongs to exactly one pipeline: the one it emits tuples into.
// Blocking operators (sorts, aggregations) emit into their parent's
// pipeline and act as the sources of that pipeline; their inputs root new
// pipelines.
type Pipeline struct {
	ID   int
	Root exec.Operator
	Ops  []exec.Operator
	// Sources are the operators that feed tuples into this pipeline from
	// outside it: leaf scans and blocking operators' output sides. The
	// first source is the driver node in the sense of the dne estimator.
	Sources []exec.Operator
}

// Driver returns the pipeline's driver node (first source), or nil.
func (p *Pipeline) Driver() exec.Operator {
	if len(p.Sources) == 0 {
		return nil
	}
	return p.Sources[0]
}

// Contains reports whether op belongs to the pipeline.
func (p *Pipeline) Contains(op exec.Operator) bool {
	for _, o := range p.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// Emitted returns C(p): the getnext() calls satisfied so far by the
// pipeline's operators.
func (p *Pipeline) Emitted() int64 {
	var c int64
	for _, o := range p.Ops {
		c += o.Stats().Emitted.Load()
	}
	return c
}

// EstimatedTotal returns T(p): the current estimate of the total
// getnext() calls over the pipeline's lifetime.
func (p *Pipeline) EstimatedTotal() float64 {
	var t float64
	for _, o := range p.Ops {
		t += o.Stats().Total()
	}
	return t
}

// Done reports whether every operator in the pipeline has finished.
func (p *Pipeline) Done() bool {
	for _, o := range p.Ops {
		if !o.Stats().IsDone() {
			return false
		}
	}
	return true
}

// Started reports whether any operator in the pipeline has produced output.
func (p *Pipeline) Started() bool {
	for _, o := range p.Ops {
		if o.Stats().Emitted.Load() > 0 || o.Stats().IsDone() {
			return true
		}
	}
	return false
}

// String renders the pipeline for diagnostics.
func (p *Pipeline) String() string {
	names := make([]string, len(p.Ops))
	for i, o := range p.Ops {
		names[i] = o.Name()
	}
	return fmt.Sprintf("P%d{%s}", p.ID, strings.Join(names, ", "))
}

// Decompose splits a plan into pipelines, root pipeline first, in
// depth-first discovery order.
func Decompose(root exec.Operator) []*Pipeline {
	d := &decomposer{}
	d.newPipeline(root)
	// Building a pipeline may enqueue further pipelines; the queue is
	// drained in discovery order.
	for i := 0; i < len(d.pipelines); i++ {
		d.build(d.pipelines[i], d.pending[i])
	}
	return d.pipelines
}

type decomposer struct {
	pipelines []*Pipeline
	pending   []exec.Operator // root operator of each pipeline, by index
}

func (d *decomposer) newPipeline(root exec.Operator) *Pipeline {
	p := &Pipeline{ID: len(d.pipelines), Root: root}
	d.pipelines = append(d.pipelines, p)
	d.pending = append(d.pending, root)
	return p
}

// build assigns op and its streaming descendants to p.
func (d *decomposer) build(p *Pipeline, op exec.Operator) {
	p.Ops = append(p.Ops, op)
	switch o := op.(type) {
	case *exec.Scan:
		p.Sources = append(p.Sources, o)
	case *exec.Filter, *exec.Project, *exec.Limit:
		d.build(p, op.Children()[0])
	case *exec.HashJoin:
		// The build input roots its own pipeline (it terminates at the
		// join's hash table); the probe input streams through the join.
		d.newPipeline(o.Build())
		d.build(p, o.Probe())
	case *exec.NestedLoopsJoin:
		// The inner input is materialized once (its own pipeline); the
		// outer streams.
		d.newPipeline(o.Inner())
		d.build(p, o.Outer())
	case *exec.MergeJoin:
		// Both inputs stream into the merge; sorts beneath (the usual
		// case) cut new pipelines via the *exec.Sort case.
		d.build(p, o.Left())
		d.build(p, o.Right())
	case *exec.Sort:
		// The sort's output side feeds this pipeline (it is a source);
		// its input pass is the lifetime of the child pipeline.
		p.Sources = append(p.Sources, o)
		d.newPipeline(op.Children()[0])
	case *exec.HashAgg:
		p.Sources = append(p.Sources, o)
		d.newPipeline(op.Children()[0])
	case *exec.SortAgg:
		p.Sources = append(p.Sources, o)
		d.newPipeline(op.Children()[0]) // the internal sort
	default:
		// Unknown leaves (e.g. disk scans) feed the pipeline; unknown
		// inner operators are treated as streaming.
		if len(op.Children()) == 0 {
			p.Sources = append(p.Sources, op)
			return
		}
		for _, c := range op.Children() {
			d.build(p, c)
		}
	}
}

// Explain renders the plan tree with estimates, one operator per line.
func Explain(root exec.Operator) string {
	var b strings.Builder
	var rec func(op exec.Operator, depth int)
	rec = func(op exec.Operator, depth int) {
		st := op.Stats()
		fmt.Fprintf(&b, "%s%s  (est=%.0f src=%s emitted=%d)\n",
			strings.Repeat("  ", depth), op.Name(), st.Estimate(), st.Source(), st.Emitted.Load())
		for _, c := range op.Children() {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}
