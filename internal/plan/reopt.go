package plan

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/obs"
	"qpi/internal/sketch"
	"qpi/internal/storage"
)

// This file implements mid-query re-optimization over the estimator
// framework's convergence signals: when a chain estimator freezes (its
// bottom probe pass completed, estimates once-exact) or a caller
// requests it, the next pipeline boundary re-costs the not-yet-started
// join segment below the boundary join using Fast-AGMS sketches of the
// base relations, and — under an explicit started/unstarted barrier —
// re-orders the segment's joins and/or swaps the bottom join's
// build/probe sides.
//
// The restructure window is the OnBeforePartition hook: it fires on the
// executor goroutine at the entry of a join's first partition pass,
// before the join has consumed or produced anything. Only a join that
// roots its own estimator chain (level 0) restructures, and only its
// probe subtree: the firing join itself is on the pull stack (its
// parent holds a reference), so it is a fixed anchor, and deeper chain
// levels would already have fed build observations into the chain's
// histograms, which cannot be split. Within the window the whole probe
// subtree is verified unstarted — zero tuples emitted, no partition
// pass begun — so discarding and re-attaching the chain estimators
// loses no state, and a single exec.Reorder wrapper restores the
// original column order above the restructured segment so nothing
// upstream notices.

// ReoptConfig tunes the Reoptimizer.
type ReoptConfig struct {
	// MinGain is the minimum relative cost improvement a restructuring
	// must promise before it is applied (0.05 = 5%).
	MinGain float64
	// Force evaluates at every boundary and applies the best legal
	// restructuring whenever it differs from the current shape,
	// regardless of gain. The differential suite uses it to guarantee
	// re-optimization actually fires.
	Force bool
	// ScoutRowLimit caps the base-table size the scout pass is willing
	// to sketch; larger tables make the segment non-restructurable
	// (sampling a sketch would bias the pairwise dot). 0 = no limit.
	ScoutRowLimit int
	// MaxPerms is the longest segment whose join orders are enumerated
	// exhaustively; longer segments use the greedy smallest-output
	// order. Default 4.
	MaxPerms int
}

// DefaultReoptConfig returns the production defaults.
func DefaultReoptConfig() ReoptConfig {
	return ReoptConfig{MinGain: 0.05, ScoutRowLimit: 1 << 20, MaxPerms: 4}
}

// PlanChange records one applied restructuring, for the trace log and
// the differential suite's non-vacuousness assertion.
type PlanChange struct {
	// Trigger is what caused the evaluation: "converged" (a chain
	// estimator froze), "requested" (RequestReopt), or "boundary"
	// (Force-mode evaluation at a partition boundary).
	Trigger string
	// Anchor is the boundary join that fired; its probe subtree was
	// restructured.
	Anchor string
	// OldOrder and NewOrder list the segment joins' build relations
	// top-down before and after.
	OldOrder []string
	NewOrder []string
	// Swapped reports a build/probe side swap of the new bottom join.
	Swapped bool
	// Gain is the modeled relative cost improvement.
	Gain float64
	// AllUnstarted is the barrier witness: every operator of the
	// restructured subtree had emitted zero tuples and begun no
	// partition pass at commit time. Always true by construction; the
	// differential suite asserts it.
	AllUnstarted bool
}

// ReoptStats is a snapshot of the Reoptimizer's counters.
type ReoptStats struct {
	Considered          int64 // boundary evaluations that ran
	Applied             int64 // restructurings committed
	SkippedStarted      int64 // barrier refused: subtree already active
	SkippedPushdown     int64 // chain carries aggregation push-down
	SkippedUnresolvable int64 // keys/sources outside the supported shape
	Converged           int64 // chain convergence signals received
	Scouts              int64 // scout sketch passes over base relations
}

// Reoptimizer re-costs and restructures unstarted join segments at
// pipeline boundaries. Wire it with Install after core.Attach and
// before execution; all evaluation runs on the executor goroutine
// (RequestReopt alone is safe from any goroutine).
type Reoptimizer struct {
	cfg ReoptConfig
	att *core.Attachment

	ctx           context.Context
	tr            *obs.Tracer
	sketches      *core.SketchSet
	onRestructure func(root exec.Operator)
	root          exec.Operator

	requested atomic.Bool

	considered          atomic.Int64
	applied             atomic.Int64
	skippedStarted      atomic.Int64
	skippedPushdown     atomic.Int64
	skippedUnresolvable atomic.Int64
	converged           atomic.Int64
	scoutPasses         atomic.Int64

	mu      sync.Mutex
	changes []PlanChange
	scouts  map[scoutKey]*sketch.ColumnSketch
}

// NewReoptimizer creates a Reoptimizer over an attached plan.
func NewReoptimizer(cfg ReoptConfig, att *core.Attachment) *Reoptimizer {
	if cfg.MaxPerms <= 0 {
		cfg.MaxPerms = 4
	}
	return &Reoptimizer{cfg: cfg, att: att, scouts: map[scoutKey]*sketch.ColumnSketch{}}
}

// SetContext installs the cancellation context newly created operators
// (the Reorder wrapper) are bound to.
func (r *Reoptimizer) SetContext(ctx context.Context) { r.ctx = ctx }

// SetTracer routes restructure events into tr and binds it to newly
// created operators.
func (r *Reoptimizer) SetTracer(tr *obs.Tracer) { r.tr = tr }

// SetSketches registers the plan's ride-along sketch set so restructured
// joins get their sketch hooks re-installed (ResetObservers wipes them).
func (r *Reoptimizer) SetSketches(s *core.SketchSet) { r.sketches = s }

// SetOnRestructure installs a callback fired (on the executor
// goroutine) after every committed restructuring — the progress monitor
// refreshes its pipeline decomposition there.
func (r *Reoptimizer) SetOnRestructure(f func(root exec.Operator)) { r.onRestructure = f }

// RequestReopt asks for an evaluation at the next pipeline boundary.
// Safe from any goroutine; between boundaries it is a single atomic
// flag, so requesting repeatedly is free.
func (r *Reoptimizer) RequestReopt() { r.requested.Store(true) }

// Stats returns a snapshot of the counters.
func (r *Reoptimizer) Stats() ReoptStats {
	return ReoptStats{
		Considered:          r.considered.Load(),
		Applied:             r.applied.Load(),
		SkippedStarted:      r.skippedStarted.Load(),
		SkippedPushdown:     r.skippedPushdown.Load(),
		SkippedUnresolvable: r.skippedUnresolvable.Load(),
		Converged:           r.converged.Load(),
		Scouts:              r.scoutPasses.Load(),
	}
}

// Changes returns a copy of the applied-restructuring log.
func (r *Reoptimizer) Changes() []PlanChange {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]PlanChange(nil), r.changes...)
}

// Install hooks the Reoptimizer into every hash join's partition
// boundary and every chain estimator's convergence signal.
func (r *Reoptimizer) Install(root exec.Operator) {
	r.root = root
	exec.Walk(root, func(op exec.Operator) {
		if hj, ok := op.(*exec.HashJoin); ok {
			prev := hj.OnBeforePartition
			hj.OnBeforePartition = func(j *exec.HashJoin) {
				if prev != nil {
					prev(j)
				}
				r.atBoundary(j)
			}
		}
	})
	for _, pe := range r.att.Chains {
		r.hookConverged(pe)
	}
}

func (r *Reoptimizer) hookConverged(pe *core.PipelineEstimator) {
	prev := pe.OnConverged
	pe.OnConverged = func() {
		if prev != nil {
			prev()
		}
		r.converged.Add(1)
		r.requested.Store(true)
	}
}

// candJoin is one segment join with its scouted statistics.
type candJoin struct {
	j          *exec.HashJoin
	qcol       data.Column // the probe key's bottom-stream column, qualified
	bottomCols []int       // its index in the bottom stream's schema
	buildRows  float64     // scouted build input size
	pairs      float64     // Fast-AGMS estimate of |build ⋈key C|
	label      string
}

// atBoundary runs on the executor goroutine when join j is about to
// start its partition passes.
func (r *Reoptimizer) atBoundary(j *exec.HashJoin) {
	trigger := "boundary"
	if r.requested.Swap(false) {
		trigger = "requested"
		if r.converged.Load() > 0 {
			trigger = "converged"
		}
	} else if !r.cfg.Force {
		// Normal mode evaluates only on a convergence signal or an
		// explicit request: scouting costs a pass over base relations,
		// and "maybe re-order" is not worth it without new information.
		return
	}
	r.considered.Add(1)

	pe := r.att.ChainOf[j]
	if pe == nil {
		return
	}
	if r.att.LevelOf[j] != 0 {
		// Deeper chain levels have already fed build observations into
		// the chain's histograms; the chain cannot be split losslessly.
		r.skippedStarted.Add(1)
		return
	}
	if pe.HasOutputDistribution() {
		r.skippedPushdown.Add(1)
		return
	}
	links := pe.Links()
	if len(links) < 2 {
		return // no segment below the anchor
	}
	seg := make([]*exec.HashJoin, 0, len(links)-1)
	for _, l := range links[1:] {
		hj, ok := l.Join.(*exec.HashJoin)
		if !ok {
			r.skippedUnresolvable.Add(1)
			return
		}
		seg = append(seg, hj)
	}
	if exec.Operator(seg[0]) != j.Probe() {
		r.skippedUnresolvable.Add(1)
		return
	}
	if !subtreeUnstarted(j.Probe()) {
		r.skippedStarted.Add(1)
		return
	}
	c := seg[len(seg)-1].Probe()

	cands := make([]*candJoin, len(seg))
	for i, s := range seg {
		cols, ok := pe.BottomSourceCols(i + 1)
		if !ok || len(cols) != 1 {
			r.skippedUnresolvable.Add(1)
			return
		}
		bk := s.BuildKeys()
		if len(bk) != 1 {
			r.skippedUnresolvable.Add(1)
			return
		}
		bs, ok := r.scout(s.Build(), bk[0])
		if !ok {
			r.skippedUnresolvable.Add(1)
			return
		}
		os, ok := r.scout(c, cols[0])
		if !ok {
			r.skippedUnresolvable.Add(1)
			return
		}
		pairs, err := sketch.JoinSizeEstimate(bs.AGMS, os.AGMS)
		if err != nil {
			r.skippedUnresolvable.Add(1)
			return
		}
		cands[i] = &candJoin{
			j:          s,
			qcol:       c.Schema().Cols[cols[0]],
			bottomCols: cols,
			buildRows:  float64(bs.Rows),
			pairs:      pairs,
			label:      buildLabel(s),
		}
	}
	cs, ok := r.scout(c, cands[0].bottomCols[0])
	if !ok {
		r.skippedUnresolvable.Add(1)
		return
	}
	bottomRows := float64(cs.Rows)

	curCost := orderCost(cands, bottomRows, false)
	wantSchema := seg[0].Schema()
	type plan struct {
		order   []*candJoin
		swap    bool
		cost    float64
		relinks [][]int
		perm    []int
	}
	var best *plan
	for _, order := range candidateOrders(cands, r.cfg.MaxPerms) {
		for _, swap := range swapChoices(order, bottomRows, r.cfg.Force) {
			cost := orderCost(order, bottomRows, swap)
			if best != nil && cost >= best.cost {
				continue
			}
			relinks, perm, ok := simulate(order, swap, c.Schema(), wantSchema)
			if !ok {
				continue
			}
			best = &plan{order: order, swap: swap, cost: cost, relinks: relinks, perm: perm}
		}
	}
	if best == nil {
		r.skippedUnresolvable.Add(1)
		return
	}
	differs := best.swap || !sameOrder(best.order, cands)
	if !differs {
		return
	}
	gain := 0.0
	if curCost > 0 {
		gain = (curCost - best.cost) / curCost
	}
	if !r.cfg.Force && gain < r.cfg.MinGain {
		return
	}

	r.commit(j, pe, best.order, best.swap, best.relinks, best.perm, c, cands, gain, trigger)
}

// commit applies one restructuring. Runs on the executor goroutine
// inside the firing join's OnBeforePartition window.
func (r *Reoptimizer) commit(j *exec.HashJoin, pe *core.PipelineEstimator,
	order []*candJoin, swap bool, relinks [][]int, perm []int,
	c exec.Operator, oldOrder []*candJoin, gain float64, trigger string) {

	// Barrier witness, re-verified immediately before mutation.
	allUnstarted := subtreeUnstarted(j.Probe())
	if !allUnstarted {
		r.skippedStarted.Add(1)
		return
	}

	// The old chain's hook compositions cannot be unpicked hook by
	// hook; drop every observer on the chain's joins and re-attach
	// fresh estimators below. Safe exactly because nothing under (or
	// at) the anchor has observed anything yet — the anchor roots its
	// chain and its own partition pass has not begun.
	for _, l := range pe.Links() {
		if hj, ok := l.Join.(*exec.HashJoin); ok {
			hj.ResetObservers()
		}
	}

	stream := c
	for i := len(order) - 1; i >= 0; i-- {
		s := order[i].j
		if i == len(order)-1 && swap {
			s.Relink(c, relinks[i])
			s.SwapSides()
		} else {
			s.Relink(stream, relinks[i])
		}
		stream = s
	}
	reorder := exec.NewReorder(stream, perm)
	j.ReplaceProbe(reorder)

	newTop := order[0].j
	r.att.ReattachChain(pe, j, newTop)
	for _, npe := range []*core.PipelineEstimator{r.att.ChainOf[j], r.att.ChainOf[newTop]} {
		if npe != nil {
			r.hookConverged(npe)
		}
	}
	if r.sketches != nil {
		r.sketches.Rewire(j)
		for _, o := range order {
			r.sketches.Rewire(o.j)
		}
	}
	exec.Bind(reorder, r.ctx)
	exec.BindTracer(reorder, r.tr)

	change := PlanChange{
		Trigger:      trigger,
		Anchor:       j.Name(),
		OldOrder:     labels(oldOrder),
		NewOrder:     labels(order),
		Swapped:      swap,
		Gain:         gain,
		AllUnstarted: allUnstarted,
	}
	r.mu.Lock()
	r.changes = append(r.changes, change)
	r.mu.Unlock()
	r.applied.Add(1)
	if r.tr != nil {
		r.tr.Mark(j.Name(), "reopt", int64(len(order)), 0)
		r.tr.Transition(j.Name(), "reopt",
			fmt.Sprintf("%v", change.OldOrder), fmt.Sprintf("%v", change.NewOrder), 0)
	}
	if r.onRestructure != nil {
		r.onRestructure(r.root)
	}
}

// subtreeUnstarted verifies the barrier over one subtree: no operator
// has emitted or finished, and no hash join has begun partitioning.
func subtreeUnstarted(top exec.Operator) bool {
	ok := true
	exec.Walk(top, func(op exec.Operator) {
		st := op.Stats()
		if st.Emitted.Load() > 0 || st.IsDone() {
			ok = false
		}
		if hj, is := op.(*exec.HashJoin); is && hj.PartitionStarted() {
			ok = false
		}
	})
	return ok
}

// orderCost models one candidate order (top-down) as a cascade of
// selectivity-scaled grace joins: each level pays twice its build size
// (build rows are partitioned and inserted into hash tables; stream
// rows are partitioned and probed), its stream size, and its output
// size; the output feeds the next level. Inner-join output cardinality
// is orientation-symmetric — without the build weight a side swap could
// never change the cost.
func orderCost(order []*candJoin, bottomRows float64, swapBottom bool) float64 {
	cost := 0.0
	s := bottomRows
	for i := len(order) - 1; i >= 0; i-- {
		cj := order[i]
		build, stream := cj.buildRows, s
		if i == len(order)-1 && swapBottom {
			build, stream = stream, build
		}
		sel := 0.0
		if cj.buildRows > 0 && bottomRows > 0 {
			sel = cj.pairs / (cj.buildRows * bottomRows)
		}
		out := stream * build * sel
		cost += 2*build + stream + out
		s = out
	}
	return cost
}

// candidateOrders enumerates join orders: every permutation for short
// segments, the greedy smallest-expected-output order (plus identity)
// for long ones.
func candidateOrders(cands []*candJoin, maxPerms int) [][]*candJoin {
	if len(cands) <= maxPerms {
		var out [][]*candJoin
		permute(cands, 0, &out)
		return out
	}
	greedy := append([]*candJoin(nil), cands...)
	sort.SliceStable(greedy, func(a, b int) bool { return greedy[a].pairs > greedy[b].pairs })
	// Largest expected output goes on top (last to apply): the most
	// selective joins run deepest, shrinking the stream earliest.
	return [][]*candJoin{cands, greedy}
}

func permute(cands []*candJoin, k int, out *[][]*candJoin) {
	if k == len(cands) {
		*out = append(*out, append([]*candJoin(nil), cands...))
		return
	}
	for i := k; i < len(cands); i++ {
		cands[k], cands[i] = cands[i], cands[k]
		permute(cands, k+1, out)
		cands[k], cands[i] = cands[i], cands[k]
	}
}

// swapChoices offers the bottom side swap when the scouted build input
// of the would-be bottom join outweighs the bottom stream (outright
// under Force, by 2x otherwise — swapping has restructuring overhead).
func swapChoices(order []*candJoin, bottomRows float64, force bool) []bool {
	bottom := order[len(order)-1]
	threshold := 2 * bottomRows
	if force {
		threshold = bottomRows
	}
	if bottom.j.Type() == exec.InnerJoin && bottom.buildRows > threshold {
		return []bool{false, true}
	}
	return []bool{false}
}

func sameOrder(a, b []*candJoin) bool {
	for i := range a {
		if a[i].j != b[i].j {
			return false
		}
	}
	return true
}

func labels(order []*candJoin) []string {
	out := make([]string, len(order))
	for i, c := range order {
		out[i] = c.label
	}
	return out
}

// buildLabel names a join by its build relation's qualifier.
func buildLabel(j *exec.HashJoin) string {
	cols := j.Build().Schema().Cols
	if len(cols) > 0 && cols[0].Table != "" {
		return cols[0].Table
	}
	return j.Build().Name()
}

// simulate dry-runs one candidate order bottom-up, resolving every
// join's probe key by qualified column identity in the simulated
// stream schemas (indexes shift with the order), and derives the
// column permutation restoring the original segment-top schema. Any
// resolution failure or non-bijective mapping makes the order illegal.
func simulate(order []*candJoin, swapBottom bool, cSchema, want *data.Schema) (relinks [][]int, perm []int, ok bool) {
	stream := cSchema
	relinks = make([][]int, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		cj := order[i]
		idx := stream.Resolve(cj.qcol.Table, cj.qcol.Name)
		if idx < 0 {
			return nil, nil, false
		}
		relinks[i] = []int{idx}
		if i == len(order)-1 && swapBottom {
			stream = cSchema.Concat(cj.j.Build().Schema())
		} else {
			stream = cj.j.Build().Schema().Concat(stream)
		}
	}
	if stream.Len() != want.Len() {
		return nil, nil, false
	}
	perm = make([]int, want.Len())
	seen := make([]bool, want.Len())
	for p, col := range want.Cols {
		idx := stream.Resolve(col.Table, col.Name)
		if idx < 0 || seen[idx] {
			return nil, nil, false
		}
		seen[idx] = true
		perm[p] = idx
	}
	return relinks, perm, true
}

// scoutKey caches scout sketches per base table, filter, and column:
// repeated boundary evaluations re-read nothing.
type scoutKey struct {
	tab *storage.Table
	flt exec.Operator // nil for unfiltered scans
	col int
}

// scout sketches one column of a base relation (a Scan, or a Filter
// directly over a Scan — the filter predicate is applied per tuple so
// the sketch summarizes the filtered stream). Sources of any other
// shape, and tables beyond ScoutRowLimit, are not scoutable.
func (r *Reoptimizer) scout(src exec.Operator, col int) (*sketch.ColumnSketch, bool) {
	var tab *storage.Table
	var pred expr.Expr
	var flt exec.Operator
	switch o := src.(type) {
	case *exec.Scan:
		tab = o.Table()
	case *exec.Filter:
		sc, ok := o.Children()[0].(*exec.Scan)
		if !ok {
			return nil, false
		}
		tab = sc.Table()
		pred = o.Pred()
		flt = o
	default:
		return nil, false
	}
	if r.cfg.ScoutRowLimit > 0 && tab.NumRows() > r.cfg.ScoutRowLimit {
		if r.tr != nil {
			r.tr.Mark(src.Name(), "reopt-scout-skip", int64(tab.NumRows()), 0)
		}
		return nil, false
	}
	key := scoutKey{tab: tab, flt: flt, col: col}
	r.mu.Lock()
	cs, hit := r.scouts[key]
	r.mu.Unlock()
	if hit {
		return cs, true
	}
	r.scoutPasses.Add(1)
	cs = sketch.NewColumnSketch(sketch.DefaultConfig())
	it := tab.SequentialOrder()
	for t := it.Next(); t != nil; t = it.Next() {
		if pred != nil && !pred.Eval(t).IsTrue() {
			continue
		}
		cs.Observe(t[col])
	}
	r.mu.Lock()
	r.scouts[key] = cs
	r.mu.Unlock()
	return cs, true
}
