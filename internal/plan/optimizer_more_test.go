package plan

import (
	"testing"

	"qpi/internal/catalog"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/storage"
)

func uniformTable(name string, rows, domain int) *storage.Table {
	t := storage.NewTable(name, data.NewSchema(
		data.Column{Table: name, Name: "k", Kind: data.KindInt}))
	for i := 0; i < rows; i++ {
		t.MustAppend(data.Tuple{data.Int(int64(i%domain + 1))})
	}
	return t
}

func regCat(tables ...*storage.Table) *catalog.Catalog {
	c := catalog.New()
	for _, t := range tables {
		c.Register(t)
	}
	return c
}

func TestOptimizerSemiAntiOuterEstimates(t *testing.T) {
	ta := uniformTable("a", 1000, 100)
	tb := uniformTable("b", 500, 50) // subset of a's domain
	cat := regCat(ta, tb)

	mk := func(jt exec.JoinType) float64 {
		j := exec.NewHashJoinTyped(exec.NewScan(tb, ""), exec.NewScan(ta, ""), 0, 0, jt)
		EstimateCardinalities(j, cat)
		return j.Stats().Estimate()
	}
	semi := mk(exec.SemiJoin)
	anti := mk(exec.AntiJoin)
	outer := mk(exec.ProbeOuterJoin)
	inner := mk(exec.InnerJoin)

	// Semi + anti partition the probe input.
	if semi+anti != 1000 {
		t.Errorf("semi %g + anti %g != probe 1000", semi, anti)
	}
	// Semi selectivity = d_build/d_probe = 50/100.
	if semi != 500 {
		t.Errorf("semi = %g, want 500", semi)
	}
	// Outer preserves at least the probe side.
	if outer < 1000 || outer < inner {
		t.Errorf("outer = %g (inner %g)", outer, inner)
	}
}

func TestOptimizerSortProjectLimitEstimates(t *testing.T) {
	ta := uniformTable("a", 300, 10)
	cat := regCat(ta)
	sc := exec.NewScan(ta, "")
	s := exec.NewSort(sc, 0)
	p := exec.NewProject(s, []expr.Expr{expr.Col{Index: 0}}, []string{"k"})
	l := exec.NewLimit(p, 5)
	EstimateCardinalities(l, cat)
	if s.Stats().Estimate() != 300 {
		t.Errorf("sort est = %g", s.Stats().Estimate())
	}
	if p.Stats().Estimate() != 300 {
		t.Errorf("project est = %g", p.Stats().Estimate())
	}
	// Limit inherits the child estimate (clamping to n is left to the
	// Total floor logic at runtime).
	if l.Stats().Estimate() != 300 {
		t.Errorf("limit est = %g", l.Stats().Estimate())
	}
}

func TestOptimizerNLJoinEstimates(t *testing.T) {
	ta := uniformTable("a", 200, 20)
	tb := uniformTable("b", 100, 20)
	cat := regCat(ta, tb)

	idx := exec.NewIndexedNLJoin(exec.NewScan(ta, ""), exec.NewScan(tb, ""), 0, 0)
	EstimateCardinalities(idx, cat)
	if got := idx.Stats().Estimate(); got != 200*100/20 {
		t.Errorf("indexed NL est = %g, want 1000", got)
	}

	cross := exec.NewNestedLoopsJoin(exec.NewScan(ta, ""), exec.NewScan(tb, ""), nil)
	EstimateCardinalities(cross, cat)
	if got := cross.Stats().Estimate(); got != 200*100 {
		t.Errorf("cross est = %g, want 20000", got)
	}

	theta := exec.NewNestedLoopsJoin(exec.NewScan(ta, ""), exec.NewScan(tb, ""),
		expr.Compare(expr.LT, expr.Col{Index: 0}, expr.Col{Index: 1}))
	EstimateCardinalities(theta, cat)
	if got := theta.Stats().Estimate(); got != 200*100*defaultSelectivity {
		t.Errorf("theta est = %g", got)
	}
}

func TestOptimizerSortAggEstimate(t *testing.T) {
	ta := uniformTable("a", 400, 25)
	cat := regCat(ta)
	agg := exec.NewSortAgg(exec.NewScan(ta, ""), []int{0},
		[]exec.AggSpec{{Func: exec.CountStar}})
	EstimateCardinalities(agg, cat)
	if got := agg.Stats().Estimate(); got != 25 {
		t.Errorf("sort-agg est = %g, want 25", got)
	}
	if agg.Stats().GroupsHint != 25 {
		t.Errorf("groups hint = %g", agg.Stats().GroupsHint)
	}
}

func TestOptimizerMissingStatsFallsBack(t *testing.T) {
	ta := uniformTable("a", 100, 10)
	tb := uniformTable("b", 100, 10)
	cat := catalog.New()
	cat.RegisterWithoutStats(ta)
	cat.RegisterWithoutStats(tb)
	j := exec.NewHashJoinOn(exec.NewScan(ta, ""), exec.NewScan(tb, ""), "a", "k", "b", "k")
	EstimateCardinalities(j, cat)
	// Without distinct counts both sides fall back to row counts:
	// 100·100/max(100,100) = 100.
	if got := j.Stats().Estimate(); got != 100 {
		t.Errorf("stat-less join est = %g, want 100", got)
	}
}

func TestPipelineStringAndContains(t *testing.T) {
	sc := exec.NewScan(uniformTable("a", 3, 3), "")
	ps := Decompose(sc)
	if !ps[0].Contains(sc) {
		t.Error("Contains failed")
	}
	other := exec.NewScan(uniformTable("b", 3, 3), "")
	if ps[0].Contains(other) {
		t.Error("Contains false positive")
	}
	if ps[0].String() == "" {
		t.Error("empty pipeline render")
	}
}

func TestDecomposeSortAggTree(t *testing.T) {
	sc := exec.NewScan(uniformTable("a", 10, 5), "")
	agg := exec.NewSortAgg(sc, []int{0}, []exec.AggSpec{{Func: exec.CountStar}})
	ps := Decompose(agg)
	// P0: SortAgg; P1: internal Sort; P2: scan.
	if len(ps) != 3 {
		t.Fatalf("pipelines = %d", len(ps))
	}
	if ps[0].Driver() != exec.Operator(agg) {
		t.Error("agg should drive its pipeline")
	}
}
