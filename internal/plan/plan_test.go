package plan

import (
	"math"
	"strings"
	"testing"

	"qpi/internal/catalog"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/storage"
	"qpi/internal/tpch"
)

func makeTable(name string, vals []int64) *storage.Table {
	s := data.NewSchema(data.Column{Table: name, Name: "k", Kind: data.KindInt})
	t := storage.NewTable(name, s)
	for _, v := range vals {
		t.MustAppend(data.Tuple{data.Int(v)})
	}
	return t
}

func TestDecomposeSingleScan(t *testing.T) {
	sc := exec.NewScan(makeTable("t", []int64{1}), "")
	ps := Decompose(sc)
	if len(ps) != 1 {
		t.Fatalf("pipelines = %d", len(ps))
	}
	if len(ps[0].Ops) != 1 || ps[0].Driver() != sc {
		t.Errorf("pipeline = %v", ps[0])
	}
}

func TestDecomposeHashJoinChain(t *testing.T) {
	// (a ⋈ (b ⋈ c)): two hash joins, probe chain c → lower → upper.
	a := exec.NewScan(makeTable("a", nil), "")
	b := exec.NewScan(makeTable("b", nil), "")
	c := exec.NewScan(makeTable("c", nil), "")
	lower := exec.NewHashJoin(b, c, 0, 0)
	upper := exec.NewHashJoin(a, lower, 0, 0)
	ps := Decompose(upper)
	// P0: upper, lower, c-scan (probe chain). P1: a-scan. P2: b-scan.
	if len(ps) != 3 {
		t.Fatalf("pipelines = %d: %v", len(ps), ps)
	}
	if !ps[0].Contains(upper) || !ps[0].Contains(lower) || !ps[0].Contains(c) {
		t.Errorf("root pipeline = %v", ps[0])
	}
	if ps[0].Driver() != c {
		t.Errorf("driver = %v", ps[0].Driver())
	}
	if !ps[1].Contains(a) || !ps[2].Contains(b) {
		t.Errorf("build pipelines = %v, %v", ps[1], ps[2])
	}
}

func TestDecomposeSortMergeJoin(t *testing.T) {
	a := exec.NewScan(makeTable("a", nil), "")
	b := exec.NewScan(makeTable("b", nil), "")
	mj, ls, rs := exec.NewSortMergeJoin(a, b, 0, 0)
	ps := Decompose(mj)
	// P0: {mj, ls, rs} (sorts emit into the merge pipeline),
	// P1: {a}, P2: {b}.
	if len(ps) != 3 {
		t.Fatalf("pipelines = %d: %v", len(ps), ps)
	}
	if !ps[0].Contains(mj) || !ps[0].Contains(ls) || !ps[0].Contains(rs) {
		t.Errorf("root pipeline = %v", ps[0])
	}
	if len(ps[0].Sources) != 2 {
		t.Errorf("sources = %v", ps[0].Sources)
	}
	if !ps[1].Contains(a) || !ps[2].Contains(b) {
		t.Errorf("sort-input pipelines wrong")
	}
}

func TestDecomposeAggregation(t *testing.T) {
	sc := exec.NewScan(makeTable("t", nil), "")
	agg := exec.NewHashAgg(sc, []int{0}, []exec.AggSpec{{Func: exec.CountStar}})
	ps := Decompose(agg)
	if len(ps) != 2 {
		t.Fatalf("pipelines = %d", len(ps))
	}
	if ps[0].Driver() != agg {
		t.Errorf("agg should be source of root pipeline")
	}
	if !ps[1].Contains(sc) {
		t.Errorf("scan pipeline missing")
	}
}

func TestDecomposeNLJoin(t *testing.T) {
	outer := exec.NewScan(makeTable("a", nil), "")
	inner := exec.NewScan(makeTable("b", nil), "")
	j := exec.NewIndexedNLJoin(outer, inner, 0, 0)
	ps := Decompose(j)
	if len(ps) != 2 {
		t.Fatalf("pipelines = %d", len(ps))
	}
	if !ps[0].Contains(outer) || ps[0].Driver() != outer {
		t.Errorf("outer should drive root pipeline")
	}
	if !ps[1].Contains(inner) {
		t.Errorf("inner should root its own pipeline")
	}
}

func TestPipelineCounters(t *testing.T) {
	sc := exec.NewScan(makeTable("t", []int64{1, 2, 3}), "")
	f := exec.NewFilter(sc, expr.Compare(expr.GT, expr.Col{Index: 0}, expr.IntLit(1)))
	ps := Decompose(f)
	p := ps[0]
	if p.Started() {
		t.Error("pipeline started before execution")
	}
	if _, err := exec.Run(f); err != nil {
		t.Fatal(err)
	}
	if !p.Done() || !p.Started() {
		t.Error("pipeline should be done after Run")
	}
	// C(p) = scan 3 + filter 2.
	if got := p.Emitted(); got != 5 {
		t.Errorf("Emitted = %d, want 5", got)
	}
	if got := p.EstimatedTotal(); got != 5 {
		t.Errorf("EstimatedTotal = %g, want 5 (exact when done)", got)
	}
}

func TestOptimizerScanAndFilterEstimates(t *testing.T) {
	cat := catalog.New()
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i%100+1) // uniform over [1,100]
	}
	tb := makeTable("t", vals)
	cat.Register(tb)
	sc := exec.NewScan(tb, "")
	f := exec.NewFilter(sc, expr.Compare(expr.EQ,
		expr.Column(sc.Schema(), "t", "k"), expr.IntLit(7)))
	EstimateCardinalities(f, cat)
	if sc.Stats().Estimate() != 1000 {
		t.Errorf("scan est = %g", sc.Stats().Estimate())
	}
	// equality on a column with 100 distinct values → 1000/100 = 10.
	if got := f.Stats().Estimate(); math.Abs(got-10) > 0.001 {
		t.Errorf("filter est = %g, want 10", got)
	}
}

func TestOptimizerRangeSelectivity(t *testing.T) {
	cat := catalog.New()
	var vals []int64
	for i := int64(1); i <= 100; i++ {
		vals = append(vals, i)
	}
	tb := makeTable("t", vals)
	cat.Register(tb)
	sc := exec.NewScan(tb, "")
	f := exec.NewFilter(sc, expr.Compare(expr.LT,
		expr.Column(sc.Schema(), "t", "k"), expr.IntLit(26)))
	EstimateCardinalities(f, cat)
	// (26-1)/(100-1) ≈ 0.2525 → ~25 rows.
	got := f.Stats().Estimate()
	if got < 20 || got > 30 {
		t.Errorf("range filter est = %g, want ~25", got)
	}
}

func TestOptimizerJoinUniformIsAccurate(t *testing.T) {
	cat := catalog.New()
	var a, b []int64
	for i := int64(0); i < 1000; i++ {
		a = append(a, i%50+1)
		b = append(b, i%50+1)
	}
	ta, tb := makeTable("a", a), makeTable("b", b)
	cat.Register(ta)
	cat.Register(tb)
	j := exec.NewHashJoinOn(exec.NewScan(ta, ""), exec.NewScan(tb, ""), "a", "k", "b", "k")
	EstimateCardinalities(j, cat)
	// True size: 50 keys × 20 × 20 = 20000; uniform estimate 1000·1000/50.
	if got := j.Stats().Estimate(); math.Abs(got-20000) > 1 {
		t.Errorf("join est = %g, want 20000", got)
	}
}

func TestOptimizerMisestimatesSkewedJoins(t *testing.T) {
	// The defining failure mode the paper corrects: the uniformity
	// assumption is wrong by a large factor on skewed data whose hot
	// values are misaligned (the paper's Figure 4(a) observes PostgreSQL
	// off by ~13×; with misaligned Zipf permutations the uniform
	// assumption overestimates, by the rearrangement inequality).
	cat := catalog.New()
	ta := tpch.MustSkewedCustomer("a", 20000, 5000, 1.5, 3, 100)
	tb := tpch.MustSkewedCustomer("b", 20000, 5000, 1.5, 4, 200)
	cat.Register(ta)
	cat.Register(tb)
	j := exec.NewHashJoinOn(exec.NewScan(ta, ""), exec.NewScan(tb, ""),
		"a", "nationkey", "b", "nationkey")
	EstimateCardinalities(j, cat)
	est := j.Stats().Estimate()
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	ratio := est / float64(n)
	if ratio < 3 && ratio > 1.0/3 {
		t.Errorf("optimizer estimate %g too close to true size %d (ratio %.2f); the skew experiments rely on a large error", est, n, ratio)
	}
}

func TestOptimizerGroupByEstimate(t *testing.T) {
	cat := catalog.New()
	var vals []int64
	for i := int64(0); i < 500; i++ {
		vals = append(vals, i%25)
	}
	tb := makeTable("t", vals)
	cat.Register(tb)
	agg := exec.NewHashAgg(exec.NewScan(tb, ""), []int{0},
		[]exec.AggSpec{{Func: exec.CountStar}})
	EstimateCardinalities(agg, cat)
	if got := agg.Stats().Estimate(); got != 25 {
		t.Errorf("group-by est = %g, want 25", got)
	}
}

func TestOptimizerWithoutCatalogFallsBack(t *testing.T) {
	tb := makeTable("t", []int64{1, 2, 3})
	sc := exec.NewScan(tb, "")
	f := exec.NewFilter(sc, expr.Compare(expr.EQ,
		expr.Column(sc.Schema(), "t", "k"), expr.IntLit(1)))
	EstimateCardinalities(f, nil)
	if got := f.Stats().Estimate(); math.Abs(got-3*defaultEqSelectivity) > 1e-9 {
		t.Errorf("fallback est = %g", got)
	}
}

func TestBooleanSelectivities(t *testing.T) {
	in := nodeEstimate{rows: 100, distinct: map[int]float64{0: 10},
		mins: map[int]float64{}, maxs: map[int]float64{}}
	eq := expr.Compare(expr.EQ, expr.Col{Index: 0}, expr.IntLit(1))
	if got := predicateSelectivity(eq, in); got != 0.1 {
		t.Errorf("eq sel = %g", got)
	}
	and := expr.AndOf(eq, eq)
	if got := predicateSelectivity(and, in); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("and sel = %g", got)
	}
	or := expr.OrOf(eq, eq)
	if got := predicateSelectivity(or, in); math.Abs(got-0.19) > 1e-12 {
		t.Errorf("or sel = %g", got)
	}
	not := expr.Not{E: eq}
	if got := predicateSelectivity(not, in); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("not sel = %g", got)
	}
	ne := expr.Compare(expr.NE, expr.Col{Index: 0}, expr.IntLit(1))
	if got := predicateSelectivity(ne, in); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("ne sel = %g", got)
	}
}

func TestExplainRendersTree(t *testing.T) {
	sc := exec.NewScan(makeTable("t", []int64{1}), "")
	f := exec.NewFilter(sc, expr.Compare(expr.GT, expr.Col{Index: 0}, expr.IntLit(0)))
	out := Explain(f)
	if !strings.Contains(out, "Filter") || !strings.Contains(out, "Scan(t)") {
		t.Errorf("Explain = %q", out)
	}
	if !strings.Contains(out, "  Scan") {
		t.Error("child not indented")
	}
}
