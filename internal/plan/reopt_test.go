package plan

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"qpi/internal/core"
	"qpi/internal/exec"
	"qpi/internal/storage"
)

// Tests for mid-query re-optimization: the boundary hook re-orders and
// side-swaps unstarted join segments without changing a single output
// row, respects the started/unstarted barrier, and skips honestly when
// the shape is outside what the scout can cost.

// repTable builds a single-column table with keys 1..domain, each
// repeated per times.
func repTable(name string, domain, per int64) *storage.Table {
	var vals []int64
	for k := int64(1); k <= domain; k++ {
		for i := int64(0); i < per; i++ {
			vals = append(vals, k)
		}
	}
	return makeTable(name, vals)
}

// reoptTables is one fixture: a 200-row bottom stream, a 300-row
// high-multiplicity build (the expensive join), a 50-row selective
// build, and a small anchor build. Joining b1 below b0 streams 600
// intermediate rows; the other order streams 100.
type reoptTables struct {
	a0, b0, b1, b2 *storage.Table
}

func newReoptTables() reoptTables {
	return reoptTables{
		a0: repTable("a0", 100, 2), // bottom: 200 rows
		b0: repTable("b0", 10, 30), // hot build: 300 rows, 600 pairs vs a0
		b1: repTable("b1", 50, 1),  // selective build: 50 rows, 100 pairs
		b2: repTable("b2", 20, 1),  // anchor build
	}
}

// chain3 assembles b2 ⋈ (b1 ⋈ (b0 ⋈ a0)), all keyed on a0.k: the top
// join anchors the chain, [b1-join, b0-join] is the restructurable
// segment, and the b0 join sits in the worst position.
func chain3(tb reoptTables) (top, mid, low *exec.HashJoin) {
	c := exec.NewScan(tb.a0, "a0")
	low = exec.NewHashJoinOn(exec.NewScan(tb.b0, "b0"), c, "b0", "k", "a0", "k")
	mid = exec.NewHashJoinOn(exec.NewScan(tb.b1, "b1"), low, "b1", "k", "a0", "k")
	top = exec.NewHashJoinOn(exec.NewScan(tb.b2, "b2"), mid, "b2", "k", "a0", "k")
	return top, mid, low
}

func runSorted(t *testing.T, op exec.Operator) []string {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func rowsEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// installReopt wires estimators, sketches and a Reoptimizer onto root.
func installReopt(root exec.Operator, cfg ReoptConfig) *Reoptimizer {
	att := core.Attach(root)
	sk := core.AttachSketches(root)
	r := NewReoptimizer(cfg, att)
	r.SetSketches(sk)
	r.Install(root)
	return r
}

func TestReoptForceReordersSegment(t *testing.T) {
	tb := newReoptTables()
	plain, _, _ := chain3(tb)
	want := runSorted(t, plain)
	if len(want) == 0 {
		t.Fatal("degenerate fixture: empty join output")
	}

	top, _, _ := chain3(tb)
	r := installReopt(top, ReoptConfig{Force: true, MaxPerms: 4})
	got := runSorted(t, top)

	if !rowsEq(got, want) {
		t.Fatalf("restructured plan rows differ: %d vs %d", len(got), len(want))
	}
	st := r.Stats()
	if st.Applied != 1 {
		t.Fatalf("Applied = %d, want 1 (stats %+v)", st.Applied, st)
	}
	ch := r.Changes()
	if len(ch) != 1 {
		t.Fatalf("Changes = %d entries", len(ch))
	}
	c := ch[0]
	if c.Swapped {
		t.Error("unexpected side swap")
	}
	if !c.AllUnstarted {
		t.Error("barrier witness false on an applied change")
	}
	if len(c.OldOrder) != 2 || c.OldOrder[0] != "b1" || c.OldOrder[1] != "b0" {
		t.Errorf("OldOrder = %v, want [b1 b0]", c.OldOrder)
	}
	if len(c.NewOrder) != 2 || c.NewOrder[0] != "b0" || c.NewOrder[1] != "b1" {
		t.Errorf("NewOrder = %v, want [b0 b1] (selective join pushed down)", c.NewOrder)
	}
	if c.Gain <= 0 {
		t.Errorf("Gain = %g, want > 0", c.Gain)
	}
	// The anchor's probe must now be the order-restoring wrapper.
	if _, ok := top.Probe().(*exec.Reorder); !ok {
		t.Errorf("anchor probe is %T, want *exec.Reorder", top.Probe())
	}
	// Deeper boundaries fired too and were refused by the level gate.
	if st.SkippedStarted == 0 {
		t.Error("no deep boundary was level-gated; hook wiring suspect")
	}
}

func TestReoptForceSwapsBuildSide(t *testing.T) {
	tb := newReoptTables()
	// Two-join chain: the segment is just the b0 join, whose 300-row
	// build outweighs the 200-row bottom stream — only a swap applies.
	mk := func() *exec.HashJoin {
		c := exec.NewScan(tb.a0, "a0")
		low := exec.NewHashJoinOn(exec.NewScan(tb.b0, "b0"), c, "b0", "k", "a0", "k")
		return exec.NewHashJoinOn(exec.NewScan(tb.b2, "b2"), low, "b2", "k", "a0", "k")
	}
	want := runSorted(t, mk())

	top := mk()
	r := installReopt(top, ReoptConfig{Force: true, MaxPerms: 4})
	got := runSorted(t, top)

	if !rowsEq(got, want) {
		t.Fatalf("swapped plan rows differ: %d vs %d", len(got), len(want))
	}
	ch := r.Changes()
	if len(ch) != 1 || !ch[0].Swapped {
		t.Fatalf("Changes = %+v, want one side swap", ch)
	}
	if !ch[0].AllUnstarted {
		t.Error("barrier witness false on an applied change")
	}
	reorder, ok := top.Probe().(*exec.Reorder)
	if !ok {
		t.Fatalf("anchor probe is %T, want *exec.Reorder", top.Probe())
	}
	// After the swap the segment's raw schema is a0-first; the wrapper
	// must restore b0-first for the anchor.
	if cols := reorder.Schema().Cols; cols[0].Table != "b0" {
		t.Errorf("restored schema starts at %s.%s, want b0.k", cols[0].Table, cols[0].Name)
	}
}

func TestReoptNormalModeNeedsTrigger(t *testing.T) {
	tb := newReoptTables()
	// Without a request or convergence signal, normal mode never even
	// evaluates: scouting is not free.
	top, _, _ := chain3(tb)
	r := installReopt(top, ReoptConfig{MinGain: 0.05, MaxPerms: 4})
	runSorted(t, top)
	if st := r.Stats(); st.Considered != 0 || st.Applied != 0 {
		t.Errorf("untriggered normal mode evaluated: %+v", st)
	}

	// An explicit request lands at the next boundary — the chain anchor.
	plain, _, _ := chain3(tb)
	want := runSorted(t, plain)
	top2, _, _ := chain3(tb)
	r2 := installReopt(top2, ReoptConfig{MinGain: 0.05, MaxPerms: 4})
	r2.RequestReopt()
	got := runSorted(t, top2)
	if !rowsEq(got, want) {
		t.Fatalf("requested-reopt rows differ: %d vs %d", len(got), len(want))
	}
	ch := r2.Changes()
	if len(ch) != 1 {
		t.Fatalf("Changes = %d entries, want 1", len(ch))
	}
	if ch[0].Trigger != "requested" {
		t.Errorf("Trigger = %q, want requested", ch[0].Trigger)
	}
	if ch[0].Gain < 0.05 {
		t.Errorf("Gain = %g below MinGain yet applied", ch[0].Gain)
	}
}

func TestReoptBarrierRefusesStartedSubtree(t *testing.T) {
	tb := newReoptTables()
	top, mid, _ := chain3(tb)
	r := installReopt(top, ReoptConfig{Force: true, MaxPerms: 4})

	// Start an operator inside the anchor's probe subtree, then fire the
	// boundary by hand: the barrier must refuse wholesale.
	if _, err := exec.Run(mid.Build()); err != nil {
		t.Fatal(err)
	}
	r.atBoundary(top)
	st := r.Stats()
	if st.Applied != 0 || len(r.Changes()) != 0 {
		t.Fatalf("restructured over a started subtree: %+v", st)
	}
	if st.SkippedStarted == 0 {
		t.Error("started subtree not counted as SkippedStarted")
	}
}

func TestReoptLevelGateRefusesDeepAnchors(t *testing.T) {
	tb := newReoptTables()
	top, mid, low := chain3(tb)
	r := installReopt(top, ReoptConfig{Force: true, MaxPerms: 4})
	r.atBoundary(mid)
	r.atBoundary(low)
	st := r.Stats()
	if st.Applied != 0 {
		t.Fatalf("deep boundary restructured: %+v", st)
	}
	if st.SkippedStarted != 2 {
		t.Errorf("SkippedStarted = %d, want 2 (both deep anchors)", st.SkippedStarted)
	}
}

func TestReoptScoutLimitSkipsHonestly(t *testing.T) {
	tb := newReoptTables()
	plain, _, _ := chain3(tb)
	want := runSorted(t, plain)

	top, _, _ := chain3(tb)
	r := installReopt(top, ReoptConfig{Force: true, MaxPerms: 4, ScoutRowLimit: 10})
	got := runSorted(t, top)
	if !rowsEq(got, want) {
		t.Fatalf("scout-limited plan rows differ")
	}
	st := r.Stats()
	if st.Applied != 0 || len(r.Changes()) != 0 {
		t.Fatalf("restructured despite un-scoutable inputs: %+v", st)
	}
	if st.SkippedUnresolvable == 0 {
		t.Error("oversized scout input not counted as SkippedUnresolvable")
	}
	if st.Scouts != 0 {
		t.Errorf("Scouts = %d, want 0 (limit refuses before reading)", st.Scouts)
	}
}

func TestReoptScoutCacheReusesPasses(t *testing.T) {
	tb := newReoptTables()
	top, _, _ := chain3(tb)
	r := installReopt(top, ReoptConfig{Force: true, MaxPerms: 4})
	runSorted(t, top)
	st := r.Stats()
	// Segment evaluation scouts b0, b1 and the bottom stream once each;
	// the post-restructure boundary re-evaluations must hit the cache.
	if st.Scouts != 3 {
		t.Errorf("Scouts = %d, want 3 (one pass per distinct source/column)", st.Scouts)
	}
	if st.Considered < 2 {
		t.Errorf("Considered = %d, want at least the anchor plus the new segment top", st.Considered)
	}
}

// TestReoptConcurrentRequests hammers RequestReopt from racing
// goroutines while a parallel batched plan runs with forced boundary
// evaluation: output rows must stay byte-identical, and every applied
// change must carry the barrier witness. Run under -race this is the
// adversarial timing test for the started/unstarted barrier.
func TestReoptConcurrentRequests(t *testing.T) {
	tb := newReoptTables()
	plain, _, _ := chain3(tb)
	want := runSorted(t, plain)

	for trial := 0; trial < 5; trial++ {
		top, mid, low := chain3(tb)
		for _, j := range []*exec.HashJoin{top, mid, low} {
			j.SetParallelism(3)
		}
		r := installReopt(top, ReoptConfig{Force: true, MaxPerms: 4})

		done := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
						r.RequestReopt()
					}
				}
			}()
		}
		bop := exec.AsBatch(top)
		if err := bop.Open(); err != nil {
			t.Fatal(err)
		}
		var got []string
		for {
			b, err := bop.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			for _, row := range b {
				got = append(got, fmt.Sprint(row))
			}
		}
		if err := bop.Close(); err != nil {
			t.Fatal(err)
		}
		close(done)
		wg.Wait()

		sort.Strings(got)
		if !rowsEq(got, want) {
			t.Fatalf("trial %d: rows differ under concurrent reopt requests: %d vs %d",
				trial, len(got), len(want))
		}
		for _, c := range r.Changes() {
			if !c.AllUnstarted {
				t.Fatalf("trial %d: change without barrier witness: %+v", trial, c)
			}
		}
	}
}
