package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"qpi"
)

// testEngine builds a small two-table engine. With domain 500 the r ⋈ s
// join output is rows²/500 — large enough to take visible wall time at
// rows ≳ 30000, so cancellation and deadline tests have a window.
func testEngine(t testing.TB, rows int) *qpi.Engine {
	t.Helper()
	eng := qpi.New()
	eng.MustCreateSkewedTable("r", rows, 1, qpi.SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 1})
	eng.MustCreateSkewedTable("s", rows, 2, qpi.SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 2})
	return eng
}

func newService(t testing.TB, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

const quickSQL = "SELECT COUNT(*) c FROM r WHERE r.k < 50"
const joinSQL = "SELECT r.k FROM r JOIN s ON r.k = s.k"

func TestExecuteReturnsRows(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 2000)})
	res, err := svc.Execute(context.Background(), ExecRequest{SQL: quickSQL, WantRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "done" || res.Error != "" {
		t.Fatalf("state = %q (err %q), want done", res.State, res.Error)
	}
	if res.Rows != 1 || len(res.Data) != 1 {
		t.Fatalf("rows = %d, data = %v, want one aggregate row", res.Rows, res.Data)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "c" {
		t.Fatalf("columns = %v, want [c]", res.Columns)
	}
	if n, ok := res.Data[0][0].(int64); !ok || n <= 0 {
		t.Fatalf("count = %v, want positive int64", res.Data[0][0])
	}
	st := svc.Stats()
	if st.Completed != 1 || st.ActiveSessions != 0 {
		t.Errorf("stats = %+v, want 1 completed, 0 active", st)
	}
}

func TestExecuteParseErrorIsNotCached(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 100)})
	for i := 0; i < 2; i++ {
		if _, err := svc.Execute(context.Background(), ExecRequest{SQL: "SELEKT nope"}); err == nil {
			t.Fatal("parse error not surfaced")
		}
	}
	cs := svc.Stats().PlanCache
	if cs.Size != 0 || cs.Misses != 2 {
		t.Errorf("cache stats after parse errors = %+v, want size 0, 2 misses", cs)
	}
}

func TestPlanCacheHitAndInvalidation(t *testing.T) {
	eng := testEngine(t, 2000)
	svc := newService(t, Config{Engine: eng})
	ctx := context.Background()

	if _, err := svc.Execute(ctx, ExecRequest{SQL: quickSQL}); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Execute(ctx, ExecRequest{SQL: quickSQL})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("second execution of identical SQL missed the plan cache")
	}

	// Any catalog mutation — here a re-ANALYZE, the same bump CreateTable
	// and Insert issue — must invalidate the cached plan.
	if err := eng.Analyze("r"); err != nil {
		t.Fatal(err)
	}
	res, err = svc.Execute(ctx, ExecRequest{SQL: quickSQL})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("execution after catalog change still hit the stale plan")
	}
	cs := svc.Stats().PlanCache
	if cs.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", cs.Invalidations)
	}
	if cs.Hits != 1 || cs.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", cs.Hits, cs.Misses)
	}
}

func TestPlanCacheInvalidationOnCreateTableAndInsert(t *testing.T) {
	eng := testEngine(t, 500)
	svc := newService(t, Config{Engine: eng})
	ctx := context.Background()

	run := func() *ExecResult {
		t.Helper()
		res, err := svc.Execute(ctx, ExecRequest{SQL: quickSQL})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	run()
	if !run().CacheHit {
		t.Fatal("warm-up did not populate the cache")
	}

	tab, err := eng.CreateTable("extra", qpi.ColumnDef{Name: "x", Type: "int"})
	if err != nil {
		t.Fatal(err)
	}
	if run().CacheHit {
		t.Error("CreateTable did not invalidate the plan cache")
	}
	if !run().CacheHit {
		t.Fatal("cache not repopulated")
	}

	if err := tab.Insert(1); err != nil {
		t.Fatal(err)
	}
	if run().CacheHit {
		t.Error("Insert did not invalidate the plan cache")
	}
}

func TestDeadlineExpiresQuery(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 40000)})
	res, err := svc.Execute(context.Background(), ExecRequest{SQL: joinSQL, Deadline: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled (deadline)", res.State)
	}
	if !strings.Contains(res.Error, "deadline") {
		t.Errorf("error = %q, want deadline exceeded", res.Error)
	}
	if st := svc.Stats(); st.Cancelled != 1 {
		t.Errorf("cancelled count = %d, want 1", st.Cancelled)
	}
}

func TestCancelRunningSession(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 60000)})
	type outcome struct {
		res *ExecResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := svc.Execute(context.Background(), ExecRequest{SQL: joinSQL, Label: "victim"})
		done <- outcome{res, err}
	}()

	// Wait for the session to appear in the fleet view, then cancel it.
	var id string
	deadline := time.Now().Add(10 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("session never became active")
		}
		for _, info := range svc.Sessions() {
			if info.Active {
				id = info.ID
			}
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.State != "cancelled" {
		t.Fatalf("state = %q, want cancelled", out.res.State)
	}
	if !strings.Contains(out.res.Error, "cancel") {
		t.Errorf("error = %q, want context canceled", out.res.Error)
	}

	// The retired session stays visible in the recent ring, inactive.
	found := false
	for _, info := range svc.Sessions() {
		if info.ID == id {
			found = true
			if info.Active {
				t.Error("finished session still marked active")
			}
			if info.State != "cancelled" {
				t.Errorf("recent session state = %q, want cancelled", info.State)
			}
			if info.Label != "victim" {
				t.Errorf("recent session label = %q, want victim", info.Label)
			}
		}
	}
	if !found {
		t.Error("finished session missing from the fleet view")
	}
	if err := svc.Cancel(id); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("cancelling a finished session: %v, want ErrSessionNotFound", err)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 2000)})
	ctx := context.Background()
	if _, err := svc.Execute(ctx, ExecRequest{SQL: quickSQL}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Execute(ctx, ExecRequest{SQL: quickSQL}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Execute after Shutdown = %v, want ErrShuttingDown", err)
	}
	if _, err := svc.Prepare(quickSQL); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Prepare after Shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestShutdownForcedCancelsActive(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 60000)})
	started := make(chan struct{})
	done := make(chan *ExecResult, 1)
	go func() {
		close(started)
		res, err := svc.Execute(context.Background(), ExecRequest{SQL: joinSQL})
		if err != nil {
			done <- nil
			return
		}
		done <- res
	}()
	<-started
	for len(svc.Sessions()) == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown = %v, want DeadlineExceeded", err)
	}
	res := <-done
	if res == nil {
		t.Fatal("in-flight query returned a pre-execution error")
	}
	if res.State != "cancelled" {
		t.Errorf("in-flight query state after forced shutdown = %q, want cancelled", res.State)
	}
}
