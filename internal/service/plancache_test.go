package service

import (
	"fmt"
	"sync"
	"testing"

	"qpi"
)

func cacheEngine(t testing.TB) *qpi.Engine {
	t.Helper()
	eng := qpi.New()
	eng.MustCreateSkewedTable("r", 200, 1, qpi.SkewedColumn{Name: "k", Domain: 50, Zipf: 1, PermSeed: 1})
	return eng
}

func TestPlanCacheHitMissEvict(t *testing.T) {
	eng := cacheEngine(t)
	c := NewPlanCache(2)

	q0 := "SELECT COUNT(*) c FROM r"
	if _, hit, err := c.Get(eng, q0); err != nil || hit {
		t.Fatalf("first Get = hit=%v err=%v, want cold miss", hit, err)
	}
	if _, hit, err := c.Get(eng, q0); err != nil || !hit {
		t.Fatalf("second Get = hit=%v err=%v, want hit", hit, err)
	}

	// Two more distinct statements overflow capacity 2 and evict the
	// least recently used entry, which is q0.
	q1 := "SELECT COUNT(*) c FROM r WHERE r.k < 10"
	q2 := "SELECT COUNT(*) c FROM r WHERE r.k < 20"
	if _, _, err := c.Get(eng, q1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(eng, q2); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2 with 1 eviction", st)
	}
	if _, hit, _ := c.Get(eng, q0); hit {
		t.Error("LRU-evicted entry still reported as a hit")
	}
	if _, hit, _ := c.Get(eng, q2); !hit {
		t.Error("resident entry missed")
	}
}

func TestPlanCacheStaleEntryInvalidated(t *testing.T) {
	eng := cacheEngine(t)
	c := NewPlanCache(8)
	q := "SELECT COUNT(*) c FROM r"

	prep1, _, err := c.Get(eng, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("r"); err != nil {
		t.Fatal(err)
	}
	if prep1.Stale() != true {
		t.Error("Prepared.Stale() = false after catalog bump")
	}
	prep2, hit, err := c.Get(eng, q)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("stale entry served as a hit")
	}
	if prep2.CatalogVersion() != eng.CatalogVersion() {
		t.Error("re-prepared entry not at current catalog version")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", st.Invalidations)
	}
}

func TestPlanCacheConcurrentGets(t *testing.T) {
	eng := cacheEngine(t)
	c := NewPlanCache(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sqlText := fmt.Sprintf("SELECT COUNT(*) c FROM r WHERE r.k < %d", 10+i%4)
			for j := 0; j < 20; j++ {
				prep, _, err := c.Get(eng, sqlText)
				if err != nil {
					t.Error(err)
					return
				}
				q, err := prep.NewQuery()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := q.Run(nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 4 {
		t.Errorf("size = %d exceeds capacity 4", st.Size)
	}
	if st.Hits == 0 {
		t.Error("no hits under concurrent reuse")
	}
}
