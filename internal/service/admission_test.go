package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGovernorUngovernedPassthrough(t *testing.T) {
	g := NewGovernor(0, 0, 0)
	if g.Governed() {
		t.Fatal("budget 0 should be ungoverned")
	}
	grant, release, err := g.Acquire(context.Background(), 1<<40)
	if err != nil || grant != 0 || release == nil {
		t.Fatalf("ungoverned Acquire = (%d, release=%v, %v), want (0, fn, nil)", grant, release != nil, err)
	}
	release()
}

func TestGovernorOversizeRejected(t *testing.T) {
	g := NewGovernor(1000, 8, time.Second)
	_, _, err := g.Acquire(context.Background(), 1001)
	if !errors.Is(err, ErrBudgetTooLarge) {
		t.Fatalf("err = %v, want ErrBudgetTooLarge", err)
	}
	if st := g.Stats(); st.RejectedBudget != 1 {
		t.Errorf("RejectedBudget = %d, want 1", st.RejectedBudget)
	}
}

func TestGovernorQueueFullRejected(t *testing.T) {
	g := NewGovernor(1000, 0, time.Second) // no queue: saturation rejects
	_, release, err := g.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, _, err = g.Acquire(context.Background(), 1)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err at saturation = %v, want ErrQueueFull", err)
	}
	if st := g.Stats(); st.RejectedQueueFull != 1 {
		t.Errorf("RejectedQueueFull = %d, want 1", st.RejectedQueueFull)
	}
}

func TestGovernorQueueTimeout(t *testing.T) {
	g := NewGovernor(1000, 4, 25*time.Millisecond)
	_, release, err := g.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, _, err = g.Acquire(context.Background(), 100)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Errorf("timed out after %v, want ≈25ms", waited)
	}
	st := g.Stats()
	if st.TimedOut != 1 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want 1 timeout and an empty queue", st)
	}
}

func TestGovernorContextCancelWhileQueued(t *testing.T) {
	g := NewGovernor(1000, 4, time.Minute)
	_, release, err := g.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Wait until the acquirer is actually queued, then cancel it.
		for g.Stats().QueueDepth == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, _, err = g.Acquire(ctx, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := g.Stats(); st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after cancel, want 0", st.QueueDepth)
	}
}

func TestGovernorFIFONoBypass(t *testing.T) {
	// A large request at the head of the queue must not be starved by
	// small requests that would fit: admissions happen in arrival order.
	g := NewGovernor(1000, 8, time.Minute)
	_, releaseHog, err := g.Acquire(context.Background(), 900)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // queued first: wants more than the 100 free bytes
		defer wg.Done()
		_, release, err := g.Acquire(context.Background(), 800)
		if err != nil {
			t.Error(err)
			return
		}
		release()
	}()
	for g.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	go func() { // queued second: 50 bytes fit in the 100 free right
		// now, but the large request ahead must be admitted first
		defer wg.Done()
		_, release, err := g.Acquire(context.Background(), 50)
		if err != nil {
			t.Error(err)
			return
		}
		release()
	}()
	for g.Stats().QueueDepth != 2 {
		time.Sleep(time.Millisecond)
	}

	// Hold the hog a little longer: the small request must stay queued
	// behind the large one even though it would fit.
	for i := 0; i < 20; i++ {
		if st := g.Stats(); st.Running != 1 || st.QueueDepth != 2 {
			t.Fatalf("small request bypassed the queue: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	releaseHog()
	wg.Wait()
	st := g.Stats()
	if st.Admitted != 3 || st.Granted != 0 || st.QueueDepth != 0 {
		t.Errorf("after drain: %+v, want 3 admitted, all released", st)
	}
}

func TestGovernorDoubleReleaseHarmless(t *testing.T) {
	g := NewGovernor(1000, 0, 0)
	_, release, err := g.Acquire(context.Background(), 600)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // deferred + explicit release must not double-free
	if st := g.Stats(); st.Granted != 0 || st.Running != 0 {
		t.Fatalf("after double release: %+v, want zero granted/running", st)
	}
	// The full budget must be available again.
	_, release2, err := g.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

// TestGovernorGrantSumInvariant is the acceptance-criterion stress: many
// concurrent acquirers with mixed demands, a sampler racing them, and
// the invariant that the sum of outstanding grants never exceeds the
// global budget — witnessed live by the sampler and at the end by
// PeakGranted.
func TestGovernorGrantSumInvariant(t *testing.T) {
	const budget = 10_000
	g := NewGovernor(budget, 64, time.Minute)

	stop := make(chan struct{})
	violations := make(chan int64, 1)
	go func() { // sampler
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := g.Stats(); st.Granted > budget {
				select {
				case violations <- st.Granted:
				default:
				}
				return
			}
			time.Sleep(10 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := int64(500 + 387*(i%8)) // 500..3209, deterministic mix
			for j := 0; j < 40; j++ {
				grant, release, err := g.Acquire(context.Background(), want)
				if err != nil {
					t.Error(err)
					return
				}
				if grant != want {
					t.Errorf("grant = %d, want %d", grant, want)
				}
				// Hold the grant across a scheduling point so grants
				// genuinely overlap (on one CPU an empty critical
				// section serializes and proves nothing).
				time.Sleep(50 * time.Microsecond)
				release()
			}
		}(i)
	}
	wg.Wait()
	close(stop)

	select {
	case over := <-violations:
		t.Fatalf("sampler saw %d bytes granted, budget %d", over, budget)
	default:
	}
	st := g.Stats()
	if st.PeakGranted > budget {
		t.Fatalf("PeakGranted = %d exceeds budget %d", st.PeakGranted, budget)
	}
	if st.Granted != 0 || st.Running != 0 || st.QueueDepth != 0 {
		t.Fatalf("governor not drained: %+v", st)
	}
	if st.Admitted != 24*40 {
		t.Errorf("Admitted = %d, want %d", st.Admitted, 24*40)
	}
	if st.PeakGranted < 3210 {
		t.Errorf("PeakGranted = %d — no concurrent admissions happened, stress is vacuous", st.PeakGranted)
	}
}
