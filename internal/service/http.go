package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTP wire types. Durations travel as milliseconds so non-Go clients
// don't need to know Go's duration encoding.

type prepareRequest struct {
	SQL string `json:"sql"`
}

type queryRequest struct {
	SQL          string `json:"sql"`
	Label        string `json:"label,omitempty"`
	DeadlineMs   int64  `json:"deadline_ms,omitempty"`
	BudgetBytes  int64  `json:"budget_bytes,omitempty"`
	WantRows     bool   `json:"want_rows,omitempty"`
	BatchWorkers int    `json:"batch_workers,omitempty"`
}

type cancelRequest struct {
	Session string `json:"session"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// Handler returns the service's full HTTP surface on a fresh mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Mount(mux)
	return mux
}

// Mount registers the service endpoints on a caller-provided mux:
//
//	POST /v1/prepare   parse+plan+cache a statement, return its shape
//	POST /v1/query     execute one query (admission, deadline, budget)
//	POST /v1/cancel    cancel a running session
//	GET  /v1/sessions  fleet view: active + recent sessions
//	GET  /v1/stats     plan cache, admission governor, service counters
//	GET  /metrics      Prometheus text: per-query families + service
//	                   families (cache, admission, sessions)
//	GET  /dashboard    the progress registry snapshot as JSON
//	GET  /debug/vars   the standard expvar endpoint
//	GET  /healthz      200 "ok" while serving, 503 while shutting down
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /dashboard", s.handleDashboard)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// writeError maps service errors onto HTTP status codes: admission
// pressure is 429 (retryable), an unsatisfiable budget or bad statement
// is 400, shutdown is 503, unknown sessions are 404.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	kind := "invalid"
	switch {
	case errors.Is(err, ErrQueueFull):
		code, kind = http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrQueueTimeout):
		code, kind = http.StatusTooManyRequests, "queue_timeout"
	case errors.Is(err, ErrBudgetTooLarge):
		code, kind = http.StatusBadRequest, "budget_too_large"
	case errors.Is(err, ErrShuttingDown):
		code, kind = http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, ErrSessionNotFound):
		code, kind = http.StatusNotFound, "session_not_found"
	}
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error(), Kind: kind})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	defer r.Body.Close()
	// Bound request bodies: statements are text, not bulk data.
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, fmt.Errorf("service: bad request body: %w", err))
		return false
	}
	return true
}

func (s *Service) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.Prepare(req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.Execute(r.Context(), ExecRequest{
		SQL:          req.SQL,
		Label:        req.Label,
		Deadline:     time.Duration(req.DeadlineMs) * time.Millisecond,
		Budget:       req.BudgetBytes,
		WantRows:     req.WantRows,
		BatchWorkers: req.BatchWorkers,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, res)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req cancelRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.Cancel(req.Session); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"session": req.Session, "cancelled": true})
}

func (s *Service) handleSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Sessions []SessionInfo `json:"sessions"`
	}{s.Sessions()})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Service) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.dash.WriteJSON(w)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.shuttingDown() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// handleMetrics extends the dashboard's Prometheus exposition with the
// service-level families — the fleet view a scraper needs to alert on
// (cache effectiveness, admission pressure, memory-governor headroom).
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.dash.WriteMetrics(w)
	st := s.Stats()
	writeFamily := func(name, help, typ string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	writeFamily("qpi_server_sessions_active", "Queries executing now.", "gauge", float64(st.ActiveSessions))
	writeFamily("qpi_server_sessions_completed_total", "Queries finished in the done state.", "counter", float64(st.Completed))
	writeFamily("qpi_server_sessions_cancelled_total", "Queries finished cancelled (incl. deadline expiry).", "counter", float64(st.Cancelled))
	writeFamily("qpi_server_sessions_failed_total", "Queries finished in the failed state.", "counter", float64(st.Failed))
	writeFamily("qpi_server_plan_cache_hits_total", "Plan-cache hits.", "counter", float64(st.PlanCache.Hits))
	writeFamily("qpi_server_plan_cache_misses_total", "Plan-cache misses.", "counter", float64(st.PlanCache.Misses))
	writeFamily("qpi_server_plan_cache_invalidations_total", "Plan-cache entries invalidated by catalog changes.", "counter", float64(st.PlanCache.Invalidations))
	writeFamily("qpi_server_plan_cache_size", "Prepared statements cached now.", "gauge", float64(st.PlanCache.Size))
	writeFamily("qpi_server_admission_budget_bytes", "Global spill-memory budget (0 = ungoverned).", "gauge", float64(st.Admission.Budget))
	writeFamily("qpi_server_admission_granted_bytes", "Sum of outstanding per-query grants.", "gauge", float64(st.Admission.Granted))
	writeFamily("qpi_server_admission_queue_depth", "Queries waiting for admission.", "gauge", float64(st.Admission.QueueDepth))
	writeFamily("qpi_server_admission_rejected_total", "Admissions rejected (queue full + timeouts + oversize).", "counter",
		float64(st.Admission.RejectedQueueFull+st.Admission.TimedOut+st.Admission.RejectedBudget))
	writeFamily("qpi_server_spill_bytes_total", "Bytes spilled by finished queries.", "counter", float64(st.SpillBytes))
}
