package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Typed admission errors. HTTP handlers map them onto status codes
// (429 for pressure, 400 for an unsatisfiable request) and callers
// branch with errors.Is.
var (
	// ErrQueueFull rejects work outright: the global budget is saturated
	// and the admission queue is at capacity.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrQueueTimeout rejects work that waited in the admission queue for
	// the configured maximum without capacity freeing up.
	ErrQueueTimeout = errors.New("service: admission queue timeout")
	// ErrBudgetTooLarge rejects a per-query budget request that exceeds
	// the whole global budget — it could never be admitted.
	ErrBudgetTooLarge = errors.New("service: requested budget exceeds global memory budget")
	// ErrShuttingDown rejects new work during graceful shutdown.
	ErrShuttingDown = errors.New("service: shutting down")
)

// Governor is the memory governor: it partitions a global spill-memory
// budget into per-query grants. A query acquires its grant before
// compiling (the grant becomes its WithMemoryBudget cap, so the
// engine's spill machinery enforces it) and releases it when execution
// finishes. The invariant the governor maintains — and tests assert via
// PeakGranted — is that the sum of outstanding grants never exceeds the
// global budget.
//
// When the budget is saturated, acquirers queue FIFO (no small-request
// bypass: a large query at the head cannot be starved) up to a queue
// capacity, beyond which work is rejected with ErrQueueFull; a queued
// acquirer gives up after the configured timeout (ErrQueueTimeout) or
// when its context is cancelled.
type Governor struct {
	budget   int64
	maxQueue int
	timeout  time.Duration

	mu          sync.Mutex
	granted     int64
	outstanding int
	waiters     []*waiter

	admitted       int64
	queuedTotal    int64
	rejectedFull   int64
	rejectedBudget int64
	timedOut       int64
	peakGranted    int64
	peakQueue      int
}

// waiter is one queued admission request. ch is buffered so the waker
// never blocks handing over a grant.
type waiter struct {
	want int64
	ch   chan int64
}

// NewGovernor creates a governor over a global budget of `budget`
// bytes. budget <= 0 means ungoverned: every Acquire succeeds
// immediately with an unlimited grant. maxQueue <= 0 disables queueing
// (saturation rejects immediately); timeout <= 0 waits indefinitely
// (until the caller's context cancels).
func NewGovernor(budget int64, maxQueue int, timeout time.Duration) *Governor {
	return &Governor{budget: budget, maxQueue: maxQueue, timeout: timeout}
}

// Governed reports whether a global budget is being enforced.
func (g *Governor) Governed() bool { return g.budget > 0 }

// Acquire reserves want bytes of the global budget, queueing when
// saturated. It returns the granted budget (0 meaning unlimited, on an
// ungoverned governor) and an idempotent release function; exactly one
// of (release, error) is non-nil.
func (g *Governor) Acquire(ctx context.Context, want int64) (grant int64, release func(), err error) {
	if !g.Governed() {
		return 0, func() {}, nil
	}
	if want > g.budget {
		g.mu.Lock()
		g.rejectedBudget++
		g.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: want %d, budget %d", ErrBudgetTooLarge, want, g.budget)
	}

	g.mu.Lock()
	// Immediate grant only when nobody is queued ahead (FIFO fairness).
	if len(g.waiters) == 0 && g.granted+want <= g.budget {
		g.grantLocked(want)
		g.mu.Unlock()
		return want, g.onceRelease(want), nil
	}
	if len(g.waiters) >= g.maxQueue {
		g.rejectedFull++
		g.mu.Unlock()
		return 0, nil, fmt.Errorf("%w (%d queued, %d/%d bytes granted)",
			ErrQueueFull, g.maxQueue, g.granted, g.budget)
	}
	w := &waiter{want: want, ch: make(chan int64, 1)}
	g.waiters = append(g.waiters, w)
	g.queuedTotal++
	if len(g.waiters) > g.peakQueue {
		g.peakQueue = len(g.waiters)
	}
	g.mu.Unlock()

	var timeout <-chan time.Time
	if g.timeout > 0 {
		t := time.NewTimer(g.timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case n := <-w.ch:
		return n, g.onceRelease(n), nil
	case <-ctx.Done():
		if g.abandon(w) {
			return 0, nil, ctx.Err()
		}
		// A grant raced in while we were abandoning; hand it back.
		g.release(<-w.ch)
		return 0, nil, ctx.Err()
	case <-timeout:
		if g.abandon(w) {
			g.mu.Lock()
			g.timedOut++
			g.mu.Unlock()
			return 0, nil, fmt.Errorf("%w after %v", ErrQueueTimeout, g.timeout)
		}
		// The grant arrived just as the timer fired: take it.
		n := <-w.ch
		return n, g.onceRelease(n), nil
	}
}

// abandon removes a waiter from the queue; false means a grant was (or
// is being) delivered instead.
func (g *Governor) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// grantLocked accounts one grant. Caller holds g.mu.
func (g *Governor) grantLocked(n int64) {
	g.granted += n
	g.outstanding++
	g.admitted++
	if g.granted > g.peakGranted {
		g.peakGranted = g.granted
	}
}

// onceRelease wraps release so double-releasing (e.g. a deferred release
// after an explicit one) cannot corrupt the accounting.
func (g *Governor) onceRelease(n int64) func() {
	var once sync.Once
	return func() { once.Do(func() { g.release(n) }) }
}

func (g *Governor) release(n int64) {
	g.mu.Lock()
	g.granted -= n
	g.outstanding--
	// Wake queued acquirers front-to-back while their requests fit.
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.granted+w.want > g.budget {
			break
		}
		g.waiters = g.waiters[1:]
		g.grantLocked(w.want)
		w.ch <- w.want
	}
	g.mu.Unlock()
}

// AdmissionStats is a point-in-time snapshot of the governor.
type AdmissionStats struct {
	// Budget is the configured global budget (0 = ungoverned).
	Budget int64 `json:"budget_bytes"`
	// Granted is the current sum of outstanding per-query grants; the
	// governor guarantees Granted <= Budget at all times, and PeakGranted
	// records the high-water mark of that sum.
	Granted     int64 `json:"granted_bytes"`
	PeakGranted int64 `json:"peak_granted_bytes"`
	// Running is the number of queries currently holding a grant.
	Running int `json:"running"`
	// QueueDepth is the number of queries waiting for admission now;
	// PeakQueueDepth its high-water mark.
	QueueDepth     int `json:"queue_depth"`
	PeakQueueDepth int `json:"peak_queue_depth"`
	// Admitted counts grants handed out; Queued how many of those waited
	// in the queue first.
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	// RejectedQueueFull / RejectedBudget / TimedOut count the three
	// rejection outcomes.
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedBudget    int64 `json:"rejected_budget"`
	TimedOut          int64 `json:"timed_out"`
}

// Stats returns a consistent snapshot.
func (g *Governor) Stats() AdmissionStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return AdmissionStats{
		Budget:            g.budget,
		Granted:           g.granted,
		PeakGranted:       g.peakGranted,
		Running:           g.outstanding,
		QueueDepth:        len(g.waiters),
		PeakQueueDepth:    g.peakQueue,
		Admitted:          g.admitted,
		Queued:            g.queuedTotal,
		RejectedQueueFull: g.rejectedFull,
		RejectedBudget:    g.rejectedBudget,
		TimedOut:          g.timedOut,
	}
}
