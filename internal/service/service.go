// Package service is the multi-tenant query service layer: it turns the
// single-query qpi library into a server that runs many concurrent
// queries under a prepared-statement plan cache, admission control with
// a global memory budget (partitioned into per-query spill grants), and
// per-query deadlines — following the parse→prepare→execute split of
// the N1QL query engine, with the paper's progress framework as the
// per-query and fleet-wide observability surface.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qpi"
)

// ErrSessionNotFound is returned by Cancel for an unknown or already
// finished session.
var ErrSessionNotFound = errors.New("service: session not found")

// Config configures a Service. The zero value of every field picks a
// sensible default; Engine is required.
type Config struct {
	// Engine executes the queries. The service assumes DDL/data loading
	// happens before serving begins (catalog mutations during serving are
	// safe for the plan cache — the version check covers them — but the
	// engine's execution paths read tables without locks).
	Engine *qpi.Engine
	// GlobalBudget caps the sum of per-query spill-memory grants across
	// all running queries, in bytes. 0 disables admission control.
	GlobalBudget int64
	// QueryBudget is the per-query grant when a request does not name
	// one (default 64 MiB).
	QueryBudget int64
	// MaxQueued bounds the admission queue (default 256; negative
	// disables queueing so saturation rejects immediately).
	MaxQueued int
	// QueueTimeout bounds how long a query waits for admission (default
	// 10s; negative waits until the request context cancels).
	QueueTimeout time.Duration
	// DefaultDeadline applies to requests without an explicit deadline
	// (default none).
	DefaultDeadline time.Duration
	// PlanCacheSize is the prepared-statement LRU capacity (default 256).
	PlanCacheSize int
	// RecentSessions is how many completed sessions the fleet view
	// retains (default 128).
	RecentSessions int
	// SpillFS, when set, routes every query's spill I/O through it —
	// the observability/fault seam tests use to assert descriptor-clean
	// shutdown under churn.
	SpillFS qpi.SpillFS
}

func (c Config) withDefaults() Config {
	if c.QueryBudget == 0 {
		c.QueryBudget = 64 << 20
	}
	// A default per-query budget above the global budget would reject
	// every default-sized request; clamp it to fill the whole budget
	// instead (explicit per-request budgets still get the hard error).
	if c.GlobalBudget > 0 && c.QueryBudget > c.GlobalBudget {
		c.QueryBudget = c.GlobalBudget
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 256
	} else if c.MaxQueued < 0 {
		c.MaxQueued = 0
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 10 * time.Second
	} else if c.QueueTimeout < 0 {
		c.QueueTimeout = 0
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.RecentSessions == 0 {
		c.RecentSessions = 128
	}
	return c
}

// Service is the multi-tenant query service. All methods are safe for
// concurrent use; each Execute call is one query stream.
type Service struct {
	cfg   Config
	eng   *qpi.Engine
	cache *PlanCache
	gov   *Governor
	dash  *qpi.Dashboard
	start time.Time

	mu       sync.Mutex
	closed   bool
	active   map[string]*session
	recent   []SessionInfo // ring, newest appended; bounded by RecentSessions
	inflight sync.WaitGroup

	seq        atomic.Int64
	completed  atomic.Int64
	cancelled  atomic.Int64
	failed     atomic.Int64
	rowsOut    atomic.Int64
	tuples     atomic.Int64
	spillFiles atomic.Int64
	spillBytes atomic.Int64
}

// session is one executing query's live record.
type session struct {
	id       string
	label    string
	sql      string
	query    *qpi.Query
	cancel   context.CancelFunc
	started  time.Time
	queued   time.Duration
	budget   int64
	cacheHit bool
}

// New creates a Service over cfg.Engine.
func New(cfg Config) (*Service, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("service: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	return &Service{
		cfg:    cfg,
		eng:    cfg.Engine,
		cache:  NewPlanCache(cfg.PlanCacheSize),
		gov:    NewGovernor(cfg.GlobalBudget, cfg.MaxQueued, cfg.QueueTimeout),
		dash:   qpi.NewDashboard(),
		start:  time.Now(),
		active: map[string]*session{},
	}, nil
}

// Dashboard returns the fleet's progress dashboard (every executing
// session is registered under its session ID).
func (s *Service) Dashboard() *qpi.Dashboard { return s.dash }

// PrepareResult is the prepare endpoint's payload.
type PrepareResult struct {
	SQL            string   `json:"sql"`
	Columns        []string `json:"columns"`
	Explain        string   `json:"explain"`
	CacheHit       bool     `json:"cache_hit"`
	CatalogVersion int64    `json:"catalog_version"`
}

// Prepare parses, plans and caches a statement without executing it.
func (s *Service) Prepare(sqlText string) (*PrepareResult, error) {
	if s.shuttingDown() {
		return nil, ErrShuttingDown
	}
	prep, hit, err := s.cache.Get(s.eng, sqlText)
	if err != nil {
		return nil, err
	}
	return &PrepareResult{
		SQL:            prep.SQL(),
		Columns:        prep.Columns(),
		Explain:        prep.Explain(),
		CacheHit:       hit,
		CatalogVersion: prep.CatalogVersion(),
	}, nil
}

// ExecRequest is one query execution request.
type ExecRequest struct {
	SQL string
	// Label annotates the session in the fleet view (optional).
	Label string
	// Deadline bounds execution (queue wait excluded); 0 applies the
	// configured default, negative means none.
	Deadline time.Duration
	// Budget is the spill-memory grant to request; 0 applies the
	// configured per-query default. Ignored when admission control is
	// off.
	Budget int64
	// WantRows materializes and returns the result rows; otherwise the
	// query runs to completion and only the row count is returned.
	WantRows bool
	// BatchWorkers > 0 compiles the plan for batch execution with that
	// many partition workers.
	BatchWorkers int
}

// ExecResult is one execution's outcome. State is the query's terminal
// progress state ("done", "cancelled", "failed"); Error carries the
// execution error's text when State != "done". Admission and
// parse/plan failures are returned as Go errors instead and produce no
// ExecResult.
type ExecResult struct {
	Session  string        `json:"session"`
	State    string        `json:"state"`
	Error    string        `json:"error,omitempty"`
	Rows     int64         `json:"rows"`
	Columns  []string      `json:"columns,omitempty"`
	Data     [][]any       `json:"data,omitempty"`
	CacheHit bool          `json:"cache_hit"`
	Budget   int64         `json:"budget_bytes"`
	Queued   time.Duration `json:"-"`
	Elapsed  time.Duration `json:"-"`
	QueuedMs  float64      `json:"queued_ms"`
	ElapsedMs float64      `json:"elapsed_ms"`
}

// Execute runs one query end to end: plan-cache lookup, admission,
// compile with the granted spill budget, execution under the session
// deadline, terminal state via the progress registry.
func (s *Service) Execute(ctx context.Context, req ExecRequest) (*ExecResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Closed-check and in-flight registration are atomic with respect to
	// Shutdown's closed-set + Wait.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	prep, hit, err := s.cache.Get(s.eng, req.SQL)
	if err != nil {
		return nil, err
	}

	// Admission: reserve this query's slice of the global budget before
	// compiling. The grant is held for the whole execution.
	want := req.Budget
	if want <= 0 {
		want = s.cfg.QueryBudget
	}
	queueStart := time.Now()
	grant, release, err := s.gov.Acquire(ctx, want)
	if err != nil {
		return nil, err
	}
	defer release()
	queued := time.Since(queueStart)

	var opts []qpi.CompileOption
	if grant > 0 {
		opts = append(opts, qpi.WithMemoryBudget(grant))
	}
	if s.cfg.SpillFS != nil {
		opts = append(opts, qpi.WithSpillFS(s.cfg.SpillFS))
	}
	if req.BatchWorkers > 0 {
		opts = append(opts, qpi.WithBatchExecution(req.BatchWorkers))
	}
	q, err := prep.NewQuery(opts...)
	if err != nil {
		return nil, err
	}

	// Session: deadline + cancellation ride one derived context; Cancel
	// reaches it through the active-session table.
	deadline := req.Deadline
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	var qctx context.Context
	var cancel context.CancelFunc
	if deadline > 0 {
		qctx, cancel = context.WithTimeout(ctx, deadline)
	} else {
		qctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	sess := &session{
		label:    req.Label,
		sql:      req.SQL,
		query:    q,
		cancel:   cancel,
		started:  time.Now(),
		queued:   queued,
		budget:   grant,
		cacheHit: hit,
	}
	s.admitSession(sess)
	defer s.finishSession(sess)

	var rows int64
	var data [][]any
	var execErr error
	if req.WantRows {
		data, execErr = q.RowsContext(qctx)
		rows = int64(len(data))
	} else {
		rows, execErr = q.Run(qctx)
	}
	elapsed := time.Since(sess.started)

	res := &ExecResult{
		Session:   sess.id,
		State:     q.Report().State,
		Rows:      rows,
		CacheHit:  hit,
		Budget:    grant,
		Queued:    queued,
		Elapsed:   elapsed,
		QueuedMs:  float64(queued) / float64(time.Millisecond),
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	}
	if req.WantRows {
		res.Columns = q.Columns()
		res.Data = data
	}
	if execErr != nil {
		res.Error = execErr.Error()
	}
	s.rowsOut.Add(rows)
	return res, nil
}

// Cancel stops a running session. The session's Execute call returns
// with a cancelled terminal state.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	sess, ok := s.active[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	sess.cancel()
	return nil
}

// admitSession assigns the session ID and registers the query in the
// fleet dashboard.
func (s *Service) admitSession(sess *session) {
	sess.id = fmt.Sprintf("q%06d", s.seq.Add(1))
	s.mu.Lock()
	s.active[sess.id] = sess
	s.mu.Unlock()
	// Session IDs are unique, so registration cannot collide.
	_ = s.dash.Register(sess.id, sess.query)
}

// finishSession retires the session: counters, the bounded
// recent-session ring, dashboard/registry cleanup.
func (s *Service) finishSession(sess *session) {
	info := s.sessionInfo(sess, false)
	switch info.State {
	case "cancelled":
		s.cancelled.Add(1)
	case "failed":
		s.failed.Add(1)
	default:
		s.completed.Add(1)
	}
	m := sess.query.Metrics()
	s.tuples.Add(m.Tuples)
	s.spillFiles.Add(m.SpillFiles)
	s.spillBytes.Add(m.SpillBytes)

	s.dash.Unregister(sess.id)
	s.mu.Lock()
	delete(s.active, sess.id)
	s.recent = append(s.recent, info)
	if over := len(s.recent) - s.cfg.RecentSessions; over > 0 {
		s.recent = append(s.recent[:0], s.recent[over:]...)
	}
	s.mu.Unlock()
}

// SessionInfo is one session's row in the fleet view.
type SessionInfo struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	SQL   string `json:"sql"`
	qpi.Status
	Active     bool      `json:"active"`
	CacheHit   bool      `json:"cache_hit"`
	Budget     int64     `json:"budget_bytes"`
	StartedAt  time.Time `json:"started_at"`
	QueuedMs   float64   `json:"queued_ms"`
	ElapsedMs  float64   `json:"elapsed_ms"`
	Tuples     int64     `json:"tuples"`
	SpillFiles int64     `json:"spill_files"`
	SpillBytes int64     `json:"spill_bytes"`
}

func (s *Service) sessionInfo(sess *session, active bool) SessionInfo {
	m := sess.query.Metrics()
	return SessionInfo{
		ID:         sess.id,
		Label:      sess.label,
		SQL:        sess.sql,
		Status:     m.Status,
		Active:     active,
		CacheHit:   sess.cacheHit,
		Budget:     sess.budget,
		StartedAt:  sess.started,
		QueuedMs:   float64(sess.queued) / float64(time.Millisecond),
		ElapsedMs:  float64(time.Since(sess.started)) / float64(time.Millisecond),
		Tuples:     m.Tuples,
		SpillFiles: m.SpillFiles,
		SpillBytes: m.SpillBytes,
	}
}

// Sessions returns the fleet view: all active sessions (live progress)
// followed by the retained recently completed ones, newest first.
func (s *Service) Sessions() []SessionInfo {
	s.mu.Lock()
	activeSessions := make([]*session, 0, len(s.active))
	for _, sess := range s.active {
		activeSessions = append(activeSessions, sess)
	}
	recent := make([]SessionInfo, len(s.recent))
	copy(recent, s.recent)
	s.mu.Unlock()

	out := make([]SessionInfo, 0, len(activeSessions)+len(recent))
	for _, sess := range activeSessions {
		out = append(out, s.sessionInfo(sess, true))
	}
	// Newest completed first.
	for i := len(recent) - 1; i >= 0; i-- {
		out = append(out, recent[i])
	}
	return out
}

// Stats is the service-level counter roll-up: plan cache, admission
// governor, session totals and aggregated execution counters.
type Stats struct {
	UptimeSeconds   float64        `json:"uptime_seconds"`
	ActiveSessions  int            `json:"active_sessions"`
	Completed       int64          `json:"completed"`
	Cancelled       int64          `json:"cancelled"`
	Failed          int64          `json:"failed"`
	RowsReturned    int64          `json:"rows_returned"`
	TuplesProcessed int64          `json:"tuples_processed"`
	SpillFiles      int64          `json:"spill_files"`
	SpillBytes      int64          `json:"spill_bytes"`
	CatalogVersion  int64          `json:"catalog_version"`
	OverallProgress float64        `json:"overall_progress"`
	PlanCache       CacheStats     `json:"plan_cache"`
	Admission       AdmissionStats `json:"admission"`
}

// Stats returns a point-in-time snapshot.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	activeCount := len(s.active)
	s.mu.Unlock()
	return Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		ActiveSessions:  activeCount,
		Completed:       s.completed.Load(),
		Cancelled:       s.cancelled.Load(),
		Failed:          s.failed.Load(),
		RowsReturned:    s.rowsOut.Load(),
		TuplesProcessed: s.tuples.Load(),
		SpillFiles:      s.spillFiles.Load(),
		SpillBytes:      s.spillBytes.Load(),
		CatalogVersion:  s.eng.CatalogVersion(),
		OverallProgress: s.dash.Overall(),
		PlanCache:       s.cache.Stats(),
		Admission:       s.gov.Stats(),
	}
}

func (s *Service) shuttingDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Shutdown drains the service: new Executes are rejected with
// ErrShuttingDown, in-flight queries run to completion, and the call
// returns when they have drained. If ctx expires first, every active
// session is cancelled, the remaining drain is awaited, and ctx's error
// is returned.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Forced: cancel everything still running, then wait for the
	// (bounded) unwind — cancellation stops execution within one batch.
	s.mu.Lock()
	for _, sess := range s.active {
		sess.cancel()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}
