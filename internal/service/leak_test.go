package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qpi"
	"qpi/internal/vfs"
)

// TestChurnNoGoroutineOrFDLeaks drives the server with concurrent mixed
// traffic — completing queries, deadline-cancelled queries mid-spill,
// rejected statements — under a spill budget small enough that joins hit
// the disk, then asserts the service unwinds completely: every spill
// descriptor closed (via the FaultFS seam) and the goroutine count back
// at its baseline.
func TestChurnNoGoroutineOrFDLeaks(t *testing.T) {
	eng := qpi.New()
	eng.MustCreateSkewedTable("r", 12000, 1, qpi.SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 1})
	eng.MustCreateSkewedTable("s", 12000, 2, qpi.SkewedColumn{Name: "k", Domain: 500, Zipf: 1, PermSeed: 2})

	fault := vfs.NewFaultFS(nil)
	svc := newService(t, Config{
		Engine:       eng,
		GlobalBudget: 2 << 20,
		QueryBudget:  128 << 10, // small enough that the join spills
		MaxQueued:    64,
		QueueTimeout: time.Minute,
		SpillFS:      fault,
	})
	ts := httptest.NewServer(svc.Handler())

	baseline := runtime.NumGoroutine()

	const workers = 12
	const perWorker = 5
	var ok2xx, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var req queryRequest
				switch (w + i) % 3 {
				case 0: // completes, spilling
					req = queryRequest{SQL: joinSQL}
				case 1: // cancelled mid-execution by its deadline
					req = queryRequest{SQL: joinSQL, DeadlineMs: 10}
				default: // quick aggregate, plan-cache traffic
					req = queryRequest{SQL: quickSQL, WantRows: true}
				}
				resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", req)
				switch {
				case resp.StatusCode == http.StatusOK:
					ok2xx.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()

	st := svc.Stats()
	if got := st.Completed + st.Cancelled + st.Failed; got != ok2xx.Load() {
		t.Errorf("finished sessions = %d, want %d (200 responses)", got, ok2xx.Load())
	}
	if st.Failed != 0 {
		t.Errorf("failed sessions = %d, want 0", st.Failed)
	}
	if st.Cancelled == 0 {
		t.Error("no cancelled sessions — the deadline path was not exercised")
	}
	if st.SpillBytes == 0 || fault.Count(vfs.OpCreate) == 0 {
		t.Error("no spill traffic — the budget was not small enough to exercise spill cleanup")
	}
	if st.Admission.PeakGranted > st.Admission.Budget {
		t.Errorf("PeakGranted %d exceeded budget %d", st.Admission.PeakGranted, st.Admission.Budget)
	}

	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()

	if open := fault.OpenFiles(); open != 0 {
		t.Errorf("%d spill files still open after shutdown (of %d created)", open, fault.Count(vfs.OpCreate))
	}

	// Goroutines unwind asynchronously after connection close; poll with
	// a deadline before declaring a leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = rejected.Load() // 429s are acceptable under saturation; counted for the invariant above
}
