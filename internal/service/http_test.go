package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPPrepareAndQuery(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 2000)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Prepare: plan shape without execution.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/prepare", map[string]any{"sql": quickSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare status = %d: %s", resp.StatusCode, body)
	}
	var prep PrepareResult
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if len(prep.Columns) != 1 || prep.Columns[0] != "c" || prep.Explain == "" {
		t.Errorf("prepare result = %+v, want column c and a plan", prep)
	}

	// Prepare with bad SQL: 400 with a kind.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/prepare", map[string]any{"sql": "SELEKT"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad prepare status = %d, want 400", resp.StatusCode)
	}
	var eresp errorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error == "" {
		t.Errorf("bad prepare body = %s", body)
	}

	// Execute with rows. The prepare above warmed the cache.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query",
		queryRequest{SQL: quickSQL, WantRows: true, Label: "http-test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	var res ExecResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.State != "done" || res.Rows != 1 || !res.CacheHit {
		t.Errorf("query result = %+v, want done, 1 row, cache hit", res)
	}

	// Fleet view shows the finished session.
	resp, body = getBody(t, ts.Client(), ts.URL+"/v1/sessions")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"label":"http-test"`) {
		t.Errorf("sessions = %d %s, want the labelled session", resp.StatusCode, body)
	}

	// Stats roll-up.
	resp, body = getBody(t, ts.Client(), ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.PlanCache.Hits != 1 {
		t.Errorf("stats = %+v, want 1 completed with 1 cache hit", st)
	}
}

func TestHTTPDeadlineAndCancel(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 40000)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Deadline: server-side expiry yields 200 with a cancelled state.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query",
		queryRequest{SQL: joinSQL, DeadlineMs: 15})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline query status = %d: %s", resp.StatusCode, body)
	}
	var res ExecResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.State != "cancelled" {
		t.Errorf("state = %q, want cancelled", res.State)
	}

	// Cancel by session ID, discovered through /v1/sessions.
	type execOut struct {
		status int
		res    ExecResult
	}
	done := make(chan execOut, 1)
	go func() {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{SQL: joinSQL})
		var r ExecResult
		_ = json.Unmarshal(body, &r)
		done <- execOut{resp.StatusCode, r}
	}()
	var id string
	deadline := time.Now().Add(10 * time.Second)
	for id == "" && time.Now().Before(deadline) {
		_, body := getBody(t, ts.Client(), ts.URL+"/v1/sessions")
		var list struct {
			Sessions []SessionInfo `json:"sessions"`
		}
		_ = json.Unmarshal(body, &list)
		for _, s := range list.Sessions {
			if s.Active {
				id = s.ID
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if id == "" {
		t.Fatal("running session never appeared in /v1/sessions")
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/cancel", cancelRequest{Session: id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	out := <-done
	if out.status != http.StatusOK || out.res.State != "cancelled" {
		t.Errorf("cancelled query = %d %+v, want 200/cancelled", out.status, out.res)
	}

	// Cancelling an unknown session is 404.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/cancel", cancelRequest{Session: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cancel status = %d (%s), want 404", resp.StatusCode, body)
	}
}

func TestHTTPAdmissionRejection(t *testing.T) {
	svc := newService(t, Config{
		Engine:       testEngine(t, 500),
		GlobalBudget: 1 << 20,
		QueryBudget:  1 << 20,
		MaxQueued:    -1, // no queue: saturation rejects immediately
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Hold the whole budget so the HTTP query cannot be admitted.
	_, release, err := svc.gov.Acquire(context.Background(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{SQL: quickSQL})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var eresp errorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.Kind != "queue_full" {
		t.Errorf("rejection body = %s, want kind queue_full", body)
	}

	// An unsatisfiable per-query budget is a 400, not a retryable 429.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query",
		queryRequest{SQL: quickSQL, BudgetBytes: 2 << 20})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize budget status = %d (%s), want 400", resp.StatusCode, body)
	}

	// Releasing the hog admits work again.
	release()
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{SQL: quickSQL})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release query status = %d, want 200", resp.StatusCode)
	}
}

func TestHTTPQueueingUnderSaturation(t *testing.T) {
	svc := newService(t, Config{
		Engine:       testEngine(t, 500),
		GlobalBudget: 1 << 20,
		QueryBudget:  1 << 20,
		MaxQueued:    4,
		QueueTimeout: 30 * time.Second,
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	_, release, err := svc.gov.Acquire(context.Background(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan ExecResult, 1)
	go func() {
		_, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{SQL: quickSQL})
		var r ExecResult
		_ = json.Unmarshal(body, &r)
		done <- r
	}()
	// The request must show up as queued, not running.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Admission.QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	res := <-done
	if res.State != "done" {
		t.Fatalf("queued query state = %q, want done", res.State)
	}
	if res.QueuedMs <= 0 {
		t.Errorf("QueuedMs = %v, want > 0 for a queued admission", res.QueuedMs)
	}
	if st := svc.Stats().Admission; st.Queued != 1 || st.PeakQueueDepth != 1 {
		t.Errorf("admission stats = %+v, want one queued admission", st)
	}
}

func TestHTTPObservabilityEndpoints(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 2000), GlobalBudget: 8 << 20})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{SQL: quickSQL}); resp.StatusCode != http.StatusOK {
		t.Fatal("warm-up query failed")
	}

	resp, body := getBody(t, ts.Client(), ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	for _, family := range []string{
		"qpi_server_sessions_completed_total 1",
		"qpi_server_plan_cache_misses_total 1",
		"qpi_server_admission_budget_bytes",
		"qpi_server_spill_bytes_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	resp, body = getBody(t, ts.Client(), ts.URL+"/dashboard")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "overall") {
		t.Errorf("/dashboard = %d %s", resp.StatusCode, body)
	}

	resp, body = getBody(t, ts.Client(), ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "cmdline") {
		t.Errorf("/debug/vars = %d", resp.StatusCode)
	}

	resp, body = getBody(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("/healthz = %d %s, want 200 ok", resp.StatusCode, body)
	}

	// After shutdown the health probe flips to 503 so load balancers
	// stop routing here, and queries are refused.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, _ = getBody(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown /healthz = %d, want 503", resp.StatusCode)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query", queryRequest{SQL: quickSQL})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown query = %d (%s), want 503", resp.StatusCode, body)
	}
}

func TestHTTPBadBody(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 100)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d, want 400", resp.StatusCode)
	}
	// Wrong method on a POST route.
	resp, err = ts.Client().Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPMountOnCallerMux(t *testing.T) {
	svc := newService(t, Config{Engine: testEngine(t, 100)})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /app", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "app")
	})
	svc.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, body := getBody(t, ts.Client(), ts.URL+"/app")
	if resp.StatusCode != http.StatusOK || string(body) != "app" {
		t.Errorf("caller route = %d %q", resp.StatusCode, body)
	}
	resp, _ = getBody(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mounted /healthz = %d, want 200", resp.StatusCode)
	}
}
