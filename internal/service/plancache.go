package service

import (
	"container/list"
	"sync"

	"qpi"
)

// PlanCache is the prepared-statement cache: an LRU keyed on SQL text,
// where each entry records the engine catalog version it was prepared
// against. A lookup whose entry was prepared at an older catalog
// version (tables created, rows inserted, statistics recomputed since)
// counts as an invalidation and re-prepares — so DDL/DML never serves a
// stale plan, without any eager invalidation hooks.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*list.Element
	lru   *list.List // front = most recently used; values are *cacheEntry

	hits          int64
	misses        int64
	invalidations int64
	evictions     int64
}

type cacheEntry struct {
	sql  string
	prep *qpi.Prepared
	hits int64
}

// NewPlanCache creates a cache holding up to capacity prepared
// statements (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{cap: capacity, byKey: map[string]*list.Element{}, lru: list.New()}
}

// Get returns a fresh prepared statement for sqlText, consulting the
// cache first. The second result reports a cache hit. Parse/plan errors
// are returned verbatim and never cached.
func (c *PlanCache) Get(eng *qpi.Engine, sqlText string) (*qpi.Prepared, bool, error) {
	version := eng.CatalogVersion()
	c.mu.Lock()
	if el, ok := c.byKey[sqlText]; ok {
		e := el.Value.(*cacheEntry)
		if e.prep.CatalogVersion() == version {
			c.lru.MoveToFront(el)
			c.hits++
			e.hits++
			prep := e.prep
			c.mu.Unlock()
			return prep, true, nil
		}
		// Prepared against an older catalog: invalidate and re-prepare.
		c.lru.Remove(el)
		delete(c.byKey, sqlText)
		c.invalidations++
	}
	c.misses++
	c.mu.Unlock()

	prep, err := eng.Prepare(sqlText)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	if _, raced := c.byKey[sqlText]; !raced {
		c.byKey[sqlText] = c.lru.PushFront(&cacheEntry{sql: sqlText, prep: prep})
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.byKey, oldest.Value.(*cacheEntry).sql)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return prep, false, nil
}

// CacheStats is a point-in-time snapshot of the plan cache.
type CacheStats struct {
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	// HitRate is Hits/(Hits+Misses), 0 before any lookup.
	HitRate float64 `json:"hit_rate"`
}

// Stats returns a consistent snapshot.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Size:          c.lru.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
