// Package qgen generates seeded random schemas, datasets and physical
// plan trees for differential testing. A single int64 seed (plus a small
// Options struct bounding the search space) deterministically produces a
// Case: Zipf-skewed, correlated, null-heavy and duplicate-heavy tables
// together with a random join/filter/group-by plan spec over them. The
// spec is a pure value tree, so a Case can be built into a fresh
// single-use executor tree once per execution mode, and the exact oracle
// (internal/oracle) can evaluate the same spec independently.
package qgen

import (
	"fmt"
	"math/rand"

	"qpi/internal/data"
	"qpi/internal/storage"
	"qpi/internal/zipf"
)

// Generated table column names. Every generated table has the same five
// columns: a unique sequential id, a join key k (skewed, possibly NULL),
// a small-domain value v (possibly correlated with k), a grouping column
// g (skewed, possibly NULL) and a derived string column s. All numeric
// columns are small integers so that float aggregates (SUM/AVG promote to
// float64) stay exact and order-independent across execution modes.
const (
	ColID    = "id"
	ColKey   = "k"
	ColVal   = "v"
	ColGroup = "g"
	ColStr   = "s"
)

// NumCols is the column count of every generated table.
const NumCols = 5

// Options bounds the generated search space. The zero value is not
// useful; start from DefaultOptions. Shrinking a failing case reduces
// these bounds (smaller tables, shallower plans, fewer features), so a
// minimized reproduction is always expressible as (seed, Options).
type Options struct {
	// MaxRows caps the per-table row count (min 8).
	MaxRows int
	// MaxJoins caps the join count (min 1).
	MaxJoins int
	// GroupBy allows a grouping operator on top of the join chain.
	GroupBy bool
	// AltJoins allows sort-merge and indexed nested-loops joins in place
	// of hash joins.
	AltJoins bool
	// NonInner allows semi/anti/probe-outer hash joins.
	NonInner bool
}

// DefaultOptions is the full search space used by the differential suite.
func DefaultOptions() Options {
	return Options{MaxRows: 120, MaxJoins: 3, GroupBy: true, AltJoins: true, NonInner: true}
}

func (o Options) normalized() Options {
	if o.MaxRows < 8 {
		o.MaxRows = 8
	}
	if o.MaxJoins < 1 {
		o.MaxJoins = 1
	}
	return o
}

// TableSpec describes one generated table's data distribution.
type TableSpec struct {
	Rows      int
	KeyDomain int     // join-key values drawn from [1..KeyDomain]
	KeyZipf   float64 // join-key skew (0 = uniform)
	KeyNulls  float64 // fraction of NULL join keys
	PermSeed  int64   // which key values are hot (the paper's C¹,C²,… trick)
	Correlate bool    // v = k mod 7 instead of independent
	GroupDom  int     // grouping-column domain
	GroupZipf float64 // grouping-column skew
	GroupNull float64 // fraction of NULL grouping values
}

// Case is one generated differential-test case: the materialized tables
// plus the plan spec. Rebuild the executor tree with Build for every run
// (operators are single-use); the tables are shared across runs.
type Case struct {
	Seed   int64
	Opts   Options
	Spec   Spec
	Tables []*storage.Table
}

// Generate deterministically derives a Case from (seed, opts): the same
// inputs produce byte-identical tables and an identical plan spec on
// every run and every platform.
func Generate(seed int64, opts Options) *Case {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(seed))
	nJoins := 1 + rng.Intn(opts.MaxJoins)
	nTables := nJoins + 1
	specs := make([]TableSpec, nTables)
	for i := range specs {
		specs[i] = randTableSpec(rng, opts.MaxRows)
	}
	c := &Case{Seed: seed, Opts: opts}
	c.Spec = randSpec(rng, specs, nJoins, opts)
	c.Spec.Tables = specs
	c.Tables = make([]*storage.Table, nTables)
	for i, ts := range specs {
		c.Tables[i] = materialize(fmt.Sprintf("t%d", i), ts, tableSeed(seed, i))
	}
	return c
}

func tableSeed(seed int64, i int) int64 {
	return seed*1_000_003 + int64(i)*7_919
}

func randTableSpec(rng *rand.Rand, maxRows int) TableSpec {
	rows := 8 + rng.Intn(maxRows-7)
	domains := []int{2, 1 + rows/8, 1 + rows/2, 2 * rows}
	zipfs := []float64{0, 0, 0.5, 1, 1.5}
	nulls := []float64{0, 0, 0, 0.1, 0.25}
	return TableSpec{
		Rows:      rows,
		KeyDomain: domains[rng.Intn(len(domains))],
		KeyZipf:   zipfs[rng.Intn(len(zipfs))],
		KeyNulls:  nulls[rng.Intn(len(nulls))],
		PermSeed:  rng.Int63(),
		Correlate: rng.Intn(3) == 0,
		GroupDom:  2 + rng.Intn(11),
		GroupZipf: []float64{0, 1}[rng.Intn(2)],
		GroupNull: []float64{0, 0, 0.2}[rng.Intn(3)],
	}
}

// tableSchema builds the five-column schema under the given table name.
func tableSchema(name string) *data.Schema {
	return data.NewSchema(
		data.Column{Table: name, Name: ColID, Kind: data.KindInt},
		data.Column{Table: name, Name: ColKey, Kind: data.KindInt},
		data.Column{Table: name, Name: ColVal, Kind: data.KindInt},
		data.Column{Table: name, Name: ColGroup, Kind: data.KindInt},
		data.Column{Table: name, Name: ColStr, Kind: data.KindString},
	)
}

func materialize(name string, ts TableSpec, base int64) *storage.Table {
	t := storage.NewTable(name, tableSchema(name))
	rng := rand.New(rand.NewSource(base))
	kg := zipf.MustNew(ts.KeyDomain, ts.KeyZipf, base+1, ts.PermSeed)
	gg := zipf.MustNew(ts.GroupDom, ts.GroupZipf, base+2, base+3)
	for i := 0; i < ts.Rows; i++ {
		kv := kg.Next()
		k := data.Int(kv)
		if ts.KeyNulls > 0 && rng.Float64() < ts.KeyNulls {
			k = data.Null()
		}
		v := int64(rng.Intn(10))
		if ts.Correlate && !k.IsNull() {
			v = kv % 7
		}
		g := data.Int(gg.Next())
		if ts.GroupNull > 0 && rng.Float64() < ts.GroupNull {
			g = data.Null()
		}
		t.MustAppend(data.Tuple{
			data.Int(int64(i)), k, data.Int(v), g, data.Str(fmt.Sprintf("s%d", v)),
		})
	}
	return t
}
