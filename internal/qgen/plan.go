package qgen

import (
	"fmt"
	"math/rand"
	"strings"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
)

// ColRef names a column of the streaming side by scan alias, so it stays
// valid as the stream schema grows under stacked joins.
type ColRef struct {
	Alias string
	Col   string
}

func (c ColRef) String() string { return c.Alias + "." + c.Col }

// JoinKind selects the physical join operator.
type JoinKind int

// Join kinds.
const (
	KindHash JoinKind = iota
	KindMerge
	KindNL
)

func (k JoinKind) String() string {
	switch k {
	case KindMerge:
		return "merge"
	case KindNL:
		return "nl"
	default:
		return "hash"
	}
}

// JoinSpec describes one join of the left-deep chain, bottom-up. The new
// input (build side for hash joins, left side for merge joins, outer side
// for indexed NL joins) is always a fresh scan of Tables[Table] under
// Alias, keyed on its k column; the streaming side is the chain built so
// far, keyed on ProbeKey. Every kind emits new-input columns followed by
// stream columns, except semi/anti joins which emit the stream columns
// alone.
type JoinSpec struct {
	Kind     JoinKind
	Type     exec.JoinType // hash joins only; merge/NL are inner
	Table    int
	Alias    string
	ProbeKey ColRef
}

// FilterSpec is an optional comparison filter on the bottom scan.
type FilterSpec struct {
	Col ColRef
	Op  string // "le", "ge" or "ne"
	Arg int64
}

// AggCol requests one aggregate output column.
type AggCol struct {
	Func exec.AggFunc
	Col  ColRef // ignored for CountStar
}

// GroupSpec describes the optional grouping operator on top.
type GroupSpec struct {
	SortBased bool
	By        ColRef
	Aggs      []AggCol
}

// Spec is the full plan specification: a left-deep join chain over an
// optionally filtered bottom scan, optionally grouped at the top.
type Spec struct {
	Tables       []TableSpec
	BottomTable  int
	BottomAlias  string
	BottomFilter *FilterSpec
	Joins        []JoinSpec
	Group        *GroupSpec
}

// maxJoinOutput caps the projected output cardinality of any generated
// join; the generator shrinks table rows (then widens key domains) until
// the chain stays under it, bounding suite runtime on skewed cases.
const maxJoinOutput = 6000

func randSpec(rng *rand.Rand, specs []TableSpec, nJoins int, opts Options) Spec {
	sp := Spec{
		BottomTable: rng.Intn(len(specs)),
		BottomAlias: "a0",
	}
	streamEst := float64(specs[sp.BottomTable].Rows)
	if rng.Float64() < 0.4 {
		sp.BottomFilter = randFilter(rng, sp.BottomAlias, specs[sp.BottomTable])
		streamEst /= 2
	}
	streamCols := aliasColumns(sp.BottomAlias)
	for i := 0; i < nJoins; i++ {
		ti := rng.Intn(len(specs))
		js := JoinSpec{
			Kind:     KindHash,
			Type:     exec.InnerJoin,
			Table:    ti,
			Alias:    fmt.Sprintf("b%d", i),
			ProbeKey: ColRef{sp.BottomAlias, ColKey},
		}
		if opts.AltJoins {
			switch r := rng.Float64(); {
			case r < 0.15:
				js.Kind = KindMerge
			case r < 0.30:
				js.Kind = KindNL
			}
		}
		if js.Kind == KindHash && opts.NonInner {
			switch r := rng.Float64(); {
			case r < 0.10:
				js.Type = exec.SemiJoin
			case r < 0.20:
				js.Type = exec.AntiJoin
			case r < 0.30:
				js.Type = exec.ProbeOuterJoin
			}
		}
		if rng.Float64() < 0.3 {
			js.ProbeKey = randIntCol(rng, streamCols)
		}
		// Bound the projected output: the worst-case multiplicity of a
		// skewed build side is far above rows/domain, so leave headroom.
		for specs[ti].Rows > 16 && streamEst*buildMult(specs[ti]) > maxJoinOutput {
			specs[ti].Rows /= 2
		}
		if streamEst*buildMult(specs[ti]) > maxJoinOutput {
			specs[ti].KeyDomain = 2*specs[ti].Rows + 1
		}
		switch js.Type {
		case exec.SemiJoin, exec.AntiJoin:
			// Output bounded by the stream.
		default:
			streamEst *= buildMult(specs[ti])
			if streamEst < 1 {
				streamEst = 1
			}
			streamCols = append(aliasColumns(js.Alias), streamCols...)
		}
		sp.Joins = append(sp.Joins, js)
	}
	if opts.GroupBy && rng.Float64() < 0.5 {
		sp.Group = randGroup(rng, sp.BottomAlias, streamCols)
	}
	return sp
}

// buildMult estimates the average join multiplicity of a build side drawn
// from ts, inflated for skew (the hottest Zipf value is far above the
// mean).
func buildMult(ts TableSpec) float64 {
	m := float64(ts.Rows) / float64(ts.KeyDomain)
	if m < 1 {
		m = 1
	}
	if ts.KeyZipf > 0 {
		m *= 2 * (1 + ts.KeyZipf)
	}
	return m
}

func randFilter(rng *rand.Rand, alias string, ts TableSpec) *FilterSpec {
	ops := []string{"le", "ge", "ne"}
	f := &FilterSpec{Op: ops[rng.Intn(len(ops))]}
	switch rng.Intn(3) {
	case 0:
		f.Col = ColRef{alias, ColKey}
		f.Arg = int64(1 + rng.Intn(ts.KeyDomain+1))
	case 1:
		f.Col = ColRef{alias, ColVal}
		f.Arg = int64(rng.Intn(10))
	default:
		f.Col = ColRef{alias, ColID}
		f.Arg = int64(rng.Intn(ts.Rows))
	}
	return f
}

func randGroup(rng *rand.Rand, bottomAlias string, streamCols []data.Column) *GroupSpec {
	g := &GroupSpec{
		SortBased: rng.Float64() < 0.3,
		By:        ColRef{bottomAlias, ColKey},
	}
	if rng.Float64() >= 0.5 {
		c := streamCols[rng.Intn(len(streamCols))]
		g.By = ColRef{c.Table, c.Name}
	}
	g.Aggs = append(g.Aggs, AggCol{Func: exec.CountStar})
	for n := rng.Intn(3); n > 0; n-- {
		f := []exec.AggFunc{exec.Count, exec.Sum, exec.Min, exec.Max, exec.Avg}[rng.Intn(5)]
		var col ColRef
		if f == exec.Min || f == exec.Max || f == exec.Count {
			c := streamCols[rng.Intn(len(streamCols))]
			col = ColRef{c.Table, c.Name}
		} else {
			col = randIntCol(rng, streamCols)
		}
		g.Aggs = append(g.Aggs, AggCol{Func: f, Col: col})
	}
	return g
}

// aliasColumns is the stream-schema contribution of one scan.
func aliasColumns(alias string) []data.Column {
	return tableSchema(alias).Cols
}

func randIntCol(rng *rand.Rand, cols []data.Column) ColRef {
	for {
		c := cols[rng.Intn(len(cols))]
		if c.Kind == data.KindInt {
			return ColRef{c.Table, c.Name}
		}
	}
}

// StreamColumns returns the column list of the plan's output stream below
// any grouping operator, mirroring how the executor concatenates schemas.
// The oracle keys its evaluation off this list; a qgen test asserts it
// matches the built plan's actual schema.
func (s *Spec) StreamColumns() []data.Column {
	cols := aliasColumns(s.BottomAlias)
	for _, js := range s.Joins {
		switch js.Type {
		case exec.SemiJoin, exec.AntiJoin:
		default:
			cols = append(aliasColumns(js.Alias), cols...)
		}
	}
	return cols
}

// ResolveStream returns the index of ref in cols, or -1.
func ResolveStream(cols []data.Column, ref ColRef) int {
	for i, c := range cols {
		if c.Table == ref.Alias && c.Name == ref.Col {
			return i
		}
	}
	return -1
}

// Built is one freshly constructed executor tree for a Case.
type Built struct {
	Root exec.Operator
	// Joins holds the join operators bottom-up, aligned with Spec.Joins.
	Joins []exec.Operator
	// Agg is the grouping operator (nil without one).
	Agg exec.Operator
	// Bottom is the bottom-stream scan.
	Bottom *exec.Scan
}

// Build constructs a fresh single-use executor tree. Call once per
// execution mode; the underlying tables are shared.
func (c *Case) Build() (*Built, error) {
	sp := &c.Spec
	bottom := exec.NewScan(c.Tables[sp.BottomTable], sp.BottomAlias)
	var stream exec.Operator = bottom
	if f := sp.BottomFilter; f != nil {
		e, err := filterExpr(stream.Schema(), f)
		if err != nil {
			return nil, err
		}
		stream = exec.NewFilter(stream, e)
	}
	joins := make([]exec.Operator, len(sp.Joins))
	for i, js := range sp.Joins {
		scan := exec.NewScan(c.Tables[js.Table], js.Alias)
		bk := scan.Schema().Resolve(js.Alias, ColKey)
		pk := stream.Schema().Resolve(js.ProbeKey.Alias, js.ProbeKey.Col)
		if bk < 0 || pk < 0 {
			return nil, fmt.Errorf("qgen: join %d: unresolved key %s", i, js.ProbeKey)
		}
		switch js.Kind {
		case KindMerge:
			mj, _, _ := exec.NewSortMergeJoin(scan, stream, bk, pk)
			stream = mj
		case KindNL:
			stream = exec.NewIndexedNLJoin(scan, stream, bk, pk)
		default:
			stream = exec.NewHashJoinMulti(scan, stream, []int{bk}, []int{pk}, js.Type)
		}
		joins[i] = stream
	}
	b := &Built{Root: stream, Joins: joins, Bottom: bottom}
	if g := sp.Group; g != nil {
		gi := stream.Schema().Resolve(g.By.Alias, g.By.Col)
		if gi < 0 {
			return nil, fmt.Errorf("qgen: unresolved group column %s", g.By)
		}
		specs := make([]exec.AggSpec, len(g.Aggs))
		for i, a := range g.Aggs {
			specs[i] = exec.AggSpec{Func: a.Func, Name: fmt.Sprintf("x%d", i)}
			if a.Func != exec.CountStar {
				ci := stream.Schema().Resolve(a.Col.Alias, a.Col.Col)
				if ci < 0 {
					return nil, fmt.Errorf("qgen: unresolved agg column %s", a.Col)
				}
				specs[i].Col = ci
			}
		}
		if g.SortBased {
			b.Agg = exec.NewSortAgg(stream, []int{gi}, specs)
		} else {
			b.Agg = exec.NewHashAgg(stream, []int{gi}, specs)
		}
		b.Root = b.Agg
	}
	return b, nil
}

func filterExpr(s *data.Schema, f *FilterSpec) (expr.Expr, error) {
	idx := s.Resolve(f.Col.Alias, f.Col.Col)
	if idx < 0 {
		return nil, fmt.Errorf("qgen: unresolved filter column %s", f.Col)
	}
	var op expr.CmpOp
	switch f.Op {
	case "le":
		op = expr.LE
	case "ge":
		op = expr.GE
	case "ne":
		op = expr.NE
	default:
		return nil, fmt.Errorf("qgen: unknown filter op %q", f.Op)
	}
	col := expr.Col{Index: idx, Name: f.Col.String()}
	return expr.Compare(op, col, expr.Lit(data.Int(f.Arg))), nil
}

// FilterKeeps reports whether a tuple passes the filter, mirroring the
// executor's comparison semantics (NULL comparisons are false).
func (f *FilterSpec) FilterKeeps(v data.Value) bool {
	if v.IsNull() {
		return false
	}
	cmp := data.Compare(v, data.Int(f.Arg))
	switch f.Op {
	case "le":
		return cmp <= 0
	case "ge":
		return cmp >= 0
	default: // ne
		return cmp != 0
	}
}

// Describe renders the case spec for failure reports.
func (c *Case) Describe() string {
	var b strings.Builder
	sp := &c.Spec
	fmt.Fprintf(&b, "seed=%d opts=%+v\n", c.Seed, c.Opts)
	for i, ts := range sp.Tables {
		fmt.Fprintf(&b, "  t%d: rows=%d keyDom=%d keyZipf=%g keyNulls=%g corr=%v groupDom=%d groupZipf=%g groupNull=%g\n",
			i, ts.Rows, ts.KeyDomain, ts.KeyZipf, ts.KeyNulls, ts.Correlate, ts.GroupDom, ts.GroupZipf, ts.GroupNull)
	}
	fmt.Fprintf(&b, "  bottom: t%d AS %s", sp.BottomTable, sp.BottomAlias)
	if f := sp.BottomFilter; f != nil {
		fmt.Fprintf(&b, " WHERE %s %s %d", f.Col, f.Op, f.Arg)
	}
	b.WriteByte('\n')
	for i, js := range sp.Joins {
		fmt.Fprintf(&b, "  join %d: %s/%s t%d AS %s ON %s.k = %s\n",
			i, js.Kind, js.Type, js.Table, js.Alias, js.Alias, js.ProbeKey)
	}
	if g := sp.Group; g != nil {
		fmt.Fprintf(&b, "  group by %s (sort=%v):", g.By, g.SortBased)
		for _, a := range g.Aggs {
			fmt.Fprintf(&b, " %s(%s)", a.Func, a.Col)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
