package qgen

import (
	"reflect"
	"testing"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/storage"
)

// TestGenerateDeterministic: the same (seed, Options) must produce an
// identical spec and byte-identical tables on every run — the whole
// replay story rests on this.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a := Generate(seed, DefaultOptions())
		b := Generate(seed, DefaultOptions())
		if !reflect.DeepEqual(a.Spec, b.Spec) {
			t.Fatalf("seed %d: specs differ:\n%s\nvs\n%s", seed, a.Describe(), b.Describe())
		}
		if len(a.Tables) != len(b.Tables) {
			t.Fatalf("seed %d: table counts differ", seed)
		}
		for i := range a.Tables {
			ra, rb := tableStrings(a.Tables[i]), tableStrings(b.Tables[i])
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("seed %d: table %d rows differ", seed, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(1, DefaultOptions())
	b := Generate(2, DefaultOptions())
	if reflect.DeepEqual(a.Spec, b.Spec) {
		t.Fatal("different seeds produced an identical spec")
	}
}

func tableStrings(tb *storage.Table) []string {
	out := make([]string, 0, tb.NumRows())
	for _, tu := range tb.Rows() {
		out = append(out, tu.String())
	}
	return out
}

// TestStreamColumnsMatchBuiltSchema: the oracle resolves columns against
// Spec.StreamColumns, so it must mirror the executor's schema
// concatenation exactly — for every generated shape.
func TestStreamColumnsMatchBuiltSchema(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		c := Generate(seed, DefaultOptions())
		b, err := c.Build()
		if err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		var below exec.Operator = b.Root
		if b.Agg != nil {
			// The stream schema is the agg's input, i.e. the top join
			// (or filtered bottom when the chain is empty).
			below = b.Joins[len(b.Joins)-1]
		}
		got := below.Schema().Cols
		want := c.Spec.StreamColumns()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: stream schema mismatch\n got: %v\nwant: %v\ncase:\n%s",
				seed, got, want, c.Describe())
		}
	}
}

// TestGenerateRespectsBounds: generated cases stay inside the Options
// search space.
func TestGenerateRespectsBounds(t *testing.T) {
	opts := Options{MaxRows: 16, MaxJoins: 2} // no groupby/altjoins/noninner
	for seed := int64(1); seed <= 40; seed++ {
		c := Generate(seed, opts)
		if n := len(c.Spec.Joins); n < 1 || n > 2 {
			t.Fatalf("seed %d: %d joins outside [1,2]", seed, n)
		}
		if c.Spec.Group != nil {
			t.Fatalf("seed %d: group generated with GroupBy=false", seed)
		}
		for i, js := range c.Spec.Joins {
			if js.Kind != KindHash {
				t.Fatalf("seed %d: join %d kind %s with AltJoins=false", seed, i, js.Kind)
			}
			if js.Type != exec.InnerJoin {
				t.Fatalf("seed %d: join %d type %v with NonInner=false", seed, i, js.Type)
			}
		}
		for i, ts := range c.Spec.Tables {
			if ts.Rows > 16 || c.Tables[i].NumRows() != ts.Rows {
				t.Fatalf("seed %d: table %d has %d rows (spec %d, cap 16)",
					seed, i, c.Tables[i].NumRows(), ts.Rows)
			}
		}
	}
}

// TestFilterKeepsMatchesExpr: FilterKeeps (used by the oracle) and
// filterExpr (used by the engine) must agree on every value, including
// NULL.
func TestFilterKeepsMatchesExpr(t *testing.T) {
	for _, op := range []string{"le", "ge", "ne"} {
		f := &FilterSpec{Col: ColRef{"a0", ColVal}, Op: op, Arg: 4}
		sch := tableSchema("a0")
		e, err := filterExpr(sch, f)
		if err != nil {
			t.Fatal(err)
		}
		vals := []data.Value{data.Null(), data.Int(0), data.Int(4), data.Int(9)}
		for _, v := range vals {
			tu := data.Tuple{data.Int(0), data.Int(1), v, data.Int(0), data.Str("s")}
			want := e.Eval(tu).IsTrue()
			if got := f.FilterKeeps(v); got != want {
				t.Errorf("op %s value %s: FilterKeeps=%v expr=%v", op, v, got, want)
			}
		}
	}
}
