package qgen

// Shrink minimizes the Options bounds of a failing case: it repeatedly
// halves the table-size cap, lowers the join cap and disables plan
// features while the predicate keeps failing (fails returns true). The
// result is the smallest option set that still reproduces the failure for
// this seed — directly expressible as a fuzz corpus entry, since a case
// is fully determined by (seed, Options).
func Shrink(o Options, fails func(Options) bool) Options {
	o = o.normalized()
	if !fails(o) {
		return o
	}
	for changed := true; changed; {
		changed = false
		if o.MaxRows > 8 {
			try := o
			try.MaxRows = o.MaxRows / 2
			if try.MaxRows < 8 {
				try.MaxRows = 8
			}
			if fails(try) {
				o = try
				changed = true
				continue
			}
		}
		if o.MaxJoins > 1 {
			try := o
			try.MaxJoins--
			if fails(try) {
				o = try
				changed = true
				continue
			}
		}
		for _, disable := range []func(*Options) *bool{
			func(t *Options) *bool { return &t.GroupBy },
			func(t *Options) *bool { return &t.AltJoins },
			func(t *Options) *bool { return &t.NonInner },
		} {
			if !*disable(&o) {
				continue
			}
			try := o
			*disable(&try) = false
			if fails(try) {
				o = try
				changed = true
				break
			}
		}
	}
	return o
}
