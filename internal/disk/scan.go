package disk

import (
	"fmt"
	"math/rand"

	"qpi/internal/data"
	"qpi/internal/exec"
)

// Scan streams tuples from an on-disk table file, implementing
// exec.Operator. Like the in-memory scan it can deliver a block-level
// random sample first (the paper's precomputed disk samples) and fires
// the same hooks, so the whole estimation framework attaches unchanged.
type Scan struct {
	file  *TableFile
	alias string

	// SampleFraction in [0,1] selects the size of the random block sample
	// delivered first; 0 scans sequentially.
	SampleFraction float64
	// Seed makes the block sample reproducible.
	Seed int64

	// OnTuple fires for every emitted tuple.
	OnTuple func(data.Tuple)
	// OnSampleEnd fires once, after the last tuple of the random sample.
	OnSampleEnd func()

	stats  exec.Stats
	schema *data.Schema

	order      []int
	orderPos   int
	block      []data.Tuple
	blockPos   int
	sampleLeft int64
	punctuated bool
}

// NewScan opens a scan over an on-disk table. alias renames the output
// columns ("" keeps the stored aliases).
func NewScan(file *TableFile, alias string) *Scan {
	s := &Scan{file: file, alias: alias}
	s.schema = file.Schema()
	if alias != "" {
		s.schema = s.schema.Rename(alias)
	}
	s.stats.InputTotal = file.NumRows()
	s.stats.SetEstimate(float64(file.NumRows()), "exact")
	return s
}

// Name implements exec.Operator.
func (s *Scan) Name() string {
	if s.alias != "" {
		return fmt.Sprintf("DiskScan(%s)", s.alias)
	}
	return "DiskScan"
}

// Schema implements exec.Operator.
func (s *Scan) Schema() *data.Schema { return s.schema }

// Children implements exec.Operator.
func (s *Scan) Children() []exec.Operator { return nil }

// Stats implements exec.Operator.
func (s *Scan) Stats() *exec.Stats { return &s.stats }

// Open implements exec.Operator.
func (s *Scan) Open() error {
	if s.SampleFraction < 0 || s.SampleFraction > 1 {
		return fmt.Errorf("disk: scan sample fraction %g out of [0,1]", s.SampleFraction)
	}
	nb := s.file.NumBlocks()
	s.order = make([]int, 0, nb)
	k := int(s.SampleFraction * float64(nb))
	if k > 0 {
		rng := rand.New(rand.NewSource(s.Seed))
		perm := rng.Perm(nb)
		inSample := make([]bool, nb)
		for _, b := range perm[:k] {
			s.order = append(s.order, b)
			inSample[b] = true
			s.sampleLeft += int64(s.file.counts[b])
		}
		for i := 0; i < nb; i++ {
			if !inSample[i] {
				s.order = append(s.order, i)
			}
		}
	} else {
		for i := 0; i < nb; i++ {
			s.order = append(s.order, i)
		}
	}
	s.punctuated = s.sampleLeft == 0
	s.orderPos, s.blockPos, s.block = 0, 0, nil
	return nil
}

// Next implements exec.Operator.
func (s *Scan) Next() (data.Tuple, error) {
	for {
		if s.blockPos < len(s.block) {
			t := s.block[s.blockPos]
			s.blockPos++
			if s.OnTuple != nil {
				s.OnTuple(t)
			}
			if !s.punctuated {
				s.sampleLeft--
				if s.sampleLeft == 0 {
					s.punctuated = true
					if s.OnSampleEnd != nil {
						s.OnSampleEnd()
					}
				}
			}
			s.stats.Emitted.Add(1)
			return t, nil
		}
		if s.orderPos >= len(s.order) {
			s.stats.MarkDone()
			return nil, nil
		}
		blk, err := s.file.ReadBlock(s.order[s.orderPos])
		if err != nil {
			return nil, err
		}
		s.orderPos++
		s.block = blk
		s.blockPos = 0
	}
}

// Close implements exec.Operator.
func (s *Scan) Close() error {
	s.block = nil
	return nil
}

var _ exec.Operator = (*Scan)(nil)
