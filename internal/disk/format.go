// Package disk persists tables in a block-structured binary file format
// and scans them back with the same block-level random-sampling semantics
// as the in-memory scans. It makes the paper's setting literal: the
// evaluation ran against on-disk PostgreSQL tables, where the estimation
// framework's CPU cost hides behind I/O (§5.2.2's argument for why the
// overheads are small). The ext-disk experiment uses this path.
//
// File layout (all integers little-endian):
//
//	magic "QPIT" | version u16 | schema | block data... | block index | footer
//	schema: ncols u16, then per column: alias, name (u16-len strings), kind u8
//	block:  tupleCount u32, then tuples; per value: kind u8 + payload
//	        (int: i64, float: f64, string: u32-len bytes, null: none)
//	index:  numBlocks u32, then per block: offset u64, tupleCount u32
//	footer: rowCount u64 | index offset u64 | magic "TIPQ"
package disk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"qpi/internal/data"
	"qpi/internal/storage"
)

const (
	magic       = "QPIT"
	footerMagic = "TIPQ"
	version     = 1
)

// WriteTable serializes a table to path.
func WriteTable(path string, t *storage.Table) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := &countingWriter{w: bufio.NewWriterSize(f, 1<<16)}

	// Header + schema.
	w.WriteString(magic)
	w.U16(version)
	cols := t.Schema().Cols
	w.U16(uint16(len(cols)))
	for _, c := range cols {
		w.Str16(c.Table)
		w.Str16(c.Name)
		w.U8(uint8(c.Kind))
	}

	// Blocks.
	type blockMeta struct {
		offset uint64
		count  uint32
	}
	metas := make([]blockMeta, 0, t.NumBlocks())
	for b := 0; b < t.NumBlocks(); b++ {
		blk := t.Block(b)
		metas = append(metas, blockMeta{offset: w.n, count: uint32(len(blk.Tuples))})
		w.U32(uint32(len(blk.Tuples)))
		for _, tu := range blk.Tuples {
			for _, v := range tu {
				w.U8(uint8(v.Kind))
				switch v.Kind {
				case data.KindInt:
					w.U64(uint64(v.I))
				case data.KindFloat:
					w.U64(math.Float64bits(v.F))
				case data.KindString:
					w.U32(uint32(len(v.S)))
					w.WriteString(v.S)
				}
			}
		}
	}

	// Index + footer.
	indexOffset := w.n
	w.U32(uint32(len(metas)))
	for _, m := range metas {
		w.U64(m.offset)
		w.U32(m.count)
	}
	w.U64(uint64(t.NumRows()))
	w.U64(indexOffset)
	w.WriteString(footerMagic)
	if w.err != nil {
		return w.err
	}
	return w.w.(*bufio.Writer).Flush()
}

// countingWriter tracks the byte offset while writing.
type countingWriter struct {
	w   io.Writer
	n   uint64
	err error
}

func (c *countingWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(p)
	c.n += uint64(n)
	c.err = err
}

func (c *countingWriter) WriteString(s string) { c.write([]byte(s)) }
func (c *countingWriter) U8(v uint8)           { c.write([]byte{v}) }
func (c *countingWriter) U16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.write(b[:])
}
func (c *countingWriter) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.write(b[:])
}
func (c *countingWriter) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.write(b[:])
}
func (c *countingWriter) Str16(s string) {
	if len(s) > 65535 {
		c.err = fmt.Errorf("disk: string too long (%d bytes)", len(s))
		return
	}
	c.U16(uint16(len(s)))
	c.WriteString(s)
}

// TableFile is an opened on-disk table with random block access.
type TableFile struct {
	f       *os.File
	schema  *data.Schema
	rows    int64
	offsets []uint64
	counts  []uint32
}

// OpenTable opens a table file written by WriteTable.
func OpenTable(path string) (*TableFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t := &TableFile{f: f}
	if err := t.readMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func (t *TableFile) readMeta() error {
	// Footer.
	fi, err := t.f.Stat()
	if err != nil {
		return err
	}
	const footerLen = 8 + 8 + 4
	if fi.Size() < footerLen+6 {
		return fmt.Errorf("disk: file too short")
	}
	foot := make([]byte, footerLen)
	if _, err := t.f.ReadAt(foot, fi.Size()-footerLen); err != nil {
		return err
	}
	if string(foot[16:20]) != footerMagic {
		return fmt.Errorf("disk: bad footer magic")
	}
	t.rows = int64(binary.LittleEndian.Uint64(foot[0:8]))
	indexOffset := int64(binary.LittleEndian.Uint64(foot[8:16]))

	// Header + schema.
	r := bufio.NewReader(io.NewSectionReader(t.f, 0, fi.Size()))
	head := make([]byte, 6)
	if _, err := io.ReadFull(r, head); err != nil {
		return err
	}
	if string(head[:4]) != magic {
		return fmt.Errorf("disk: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return fmt.Errorf("disk: unsupported version %d", v)
	}
	ncols, err := readU16(r)
	if err != nil {
		return err
	}
	cols := make([]data.Column, ncols)
	for i := range cols {
		alias, err := readStr16(r)
		if err != nil {
			return err
		}
		name, err := readStr16(r)
		if err != nil {
			return err
		}
		kind, err := r.ReadByte()
		if err != nil {
			return err
		}
		cols[i] = data.Column{Table: alias, Name: name, Kind: data.Kind(kind)}
	}
	t.schema = data.NewSchema(cols...)

	// Index.
	ir := bufio.NewReader(io.NewSectionReader(t.f, indexOffset, fi.Size()-indexOffset))
	var nb uint32
	if err := binary.Read(ir, binary.LittleEndian, &nb); err != nil {
		return err
	}
	t.offsets = make([]uint64, nb)
	t.counts = make([]uint32, nb)
	for i := uint32(0); i < nb; i++ {
		if err := binary.Read(ir, binary.LittleEndian, &t.offsets[i]); err != nil {
			return err
		}
		if err := binary.Read(ir, binary.LittleEndian, &t.counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Schema returns the stored schema.
func (t *TableFile) Schema() *data.Schema { return t.schema }

// NumRows returns the stored row count.
func (t *TableFile) NumRows() int64 { return t.rows }

// NumBlocks returns the number of stored blocks.
func (t *TableFile) NumBlocks() int { return len(t.offsets) }

// Close releases the file handle.
func (t *TableFile) Close() error { return t.f.Close() }

// ReadBlock decodes block i.
func (t *TableFile) ReadBlock(i int) ([]data.Tuple, error) {
	if i < 0 || i >= len(t.offsets) {
		return nil, fmt.Errorf("disk: block %d out of range [0,%d)", i, len(t.offsets))
	}
	var end uint64
	if i+1 < len(t.offsets) {
		end = t.offsets[i+1]
	} else {
		fi, err := t.f.Stat()
		if err != nil {
			return nil, err
		}
		end = uint64(fi.Size())
	}
	r := bufio.NewReader(io.NewSectionReader(t.f, int64(t.offsets[i]), int64(end-t.offsets[i])))
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count != t.counts[i] {
		return nil, fmt.Errorf("disk: block %d count mismatch (%d vs index %d)", i, count, t.counts[i])
	}
	ncols := t.schema.Len()
	out := make([]data.Tuple, count)
	for ti := range out {
		tu := make(data.Tuple, ncols)
		for c := 0; c < ncols; c++ {
			kind, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			switch data.Kind(kind) {
			case data.KindNull:
				tu[c] = data.Null()
			case data.KindInt:
				var v uint64
				if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
					return nil, err
				}
				tu[c] = data.Int(int64(v))
			case data.KindFloat:
				var v uint64
				if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
					return nil, err
				}
				tu[c] = data.Float(math.Float64frombits(v))
			case data.KindString:
				var n uint32
				if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
					return nil, err
				}
				b := make([]byte, n)
				if _, err := io.ReadFull(r, b); err != nil {
					return nil, err
				}
				tu[c] = data.Str(string(b))
			default:
				return nil, fmt.Errorf("disk: block %d: unknown value kind %d", i, kind)
			}
		}
		out[ti] = tu
	}
	return out, nil
}

// Load materializes the whole file as an in-memory table.
func (t *TableFile) Load(name string) (*storage.Table, error) {
	schema := t.schema
	if name != "" {
		schema = schema.Rename(name)
	} else if len(schema.Cols) > 0 {
		name = schema.Cols[0].Table
	}
	out := storage.NewTable(name, schema)
	for b := 0; b < t.NumBlocks(); b++ {
		tuples, err := t.ReadBlock(b)
		if err != nil {
			return nil, err
		}
		for _, tu := range tuples {
			if err := out.Append(tu); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func readU16(r io.Reader) (uint16, error) {
	var v uint16
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readStr16(r io.Reader) (string, error) {
	n, err := readU16(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
