package disk

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"qpi/internal/core"
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/storage"
)

func makeTable(t *testing.T, rows int) *storage.Table {
	t.Helper()
	s := data.NewSchema(
		data.Column{Table: "t", Name: "k", Kind: data.KindInt},
		data.Column{Table: "t", Name: "f", Kind: data.KindFloat},
		data.Column{Table: "t", Name: "s", Kind: data.KindString},
	)
	tb := storage.NewTable("t", s)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		var sv data.Value
		switch i % 3 {
		case 0:
			sv = data.Str("row")
		case 1:
			sv = data.Str("")
		default:
			sv = data.Null()
		}
		tb.MustAppend(data.Tuple{
			data.Int(int64(rng.Intn(50))),
			data.Float(rng.Float64() * 100),
			sv,
		})
	}
	return tb
}

func roundTrip(t *testing.T, tb *storage.Table) *TableFile {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.qpit")
	if err := WriteTable(path, tb); err != nil {
		t.Fatal(err)
	}
	tf, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tf.Close() })
	return tf
}

func TestRoundTripPreservesEverything(t *testing.T) {
	tb := makeTable(t, 1000)
	tf := roundTrip(t, tb)
	if tf.NumRows() != 1000 || tf.NumBlocks() != tb.NumBlocks() {
		t.Fatalf("rows=%d blocks=%d", tf.NumRows(), tf.NumBlocks())
	}
	if tf.Schema().String() != tb.Schema().String() {
		t.Fatalf("schema %s vs %s", tf.Schema(), tb.Schema())
	}
	orig := tb.Rows()
	loaded, err := tf.Load("")
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Rows()
	if len(got) != len(orig) {
		t.Fatalf("rows %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		for c := range orig[i] {
			a, b := orig[i][c], got[i][c]
			if a.Kind != b.Kind || a.I != b.I || a.S != b.S ||
				(a.Kind == data.KindFloat && math.Float64bits(a.F) != math.Float64bits(b.F)) {
				t.Fatalf("row %d col %d: %v vs %v", i, c, a, b)
			}
		}
	}
}

func TestReadBlockRandomAccess(t *testing.T) {
	tb := makeTable(t, 1000)
	tf := roundTrip(t, tb)
	// Read blocks out of order.
	for _, b := range []int{tf.NumBlocks() - 1, 0, tf.NumBlocks() / 2} {
		tuples, err := tf.ReadBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		want := tb.Block(b).Tuples
		if len(tuples) != len(want) {
			t.Fatalf("block %d: %d tuples vs %d", b, len(tuples), len(want))
		}
		if tuples[0][0].I != want[0][0].I {
			t.Fatalf("block %d first tuple mismatch", b)
		}
	}
	if _, err := tf.ReadBlock(-1); err == nil {
		t.Error("negative block accepted")
	}
	if _, err := tf.ReadBlock(tf.NumBlocks()); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.qpit")
	if err := writeBytes(path, []byte("this is not a table file at all......")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(path); err == nil {
		t.Error("garbage file accepted")
	}
	if _, err := OpenTable(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDiskScanStreamsAll(t *testing.T) {
	tb := makeTable(t, 700)
	tf := roundTrip(t, tb)
	sc := NewScan(tf, "")
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		tu, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tu == nil {
			break
		}
		n++
	}
	if n != 700 || !sc.Stats().IsDone() || sc.Stats().Emitted.Load() != 700 {
		t.Fatalf("emitted %d, stats %+v", n, sc.Stats())
	}
	sc.Close()
}

func TestDiskScanSamplePunctuation(t *testing.T) {
	tb := makeTable(t, 128*10)
	tf := roundTrip(t, tb)
	sc := NewScan(tf, "")
	sc.SampleFraction = 0.3
	sc.Seed = 7
	fired := -1
	seen := 0
	sc.OnTuple = func(data.Tuple) { seen++ }
	sc.OnSampleEnd = func() { fired = seen }
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		tu, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tu == nil {
			break
		}
		total++
	}
	if total != 1280 {
		t.Fatalf("total = %d", total)
	}
	if fired != 3*128 {
		t.Errorf("sample punctuation after %d tuples, want %d", fired, 3*128)
	}
}

func TestDiskScanAlias(t *testing.T) {
	tf := roundTrip(t, makeTable(t, 10))
	sc := NewScan(tf, "u")
	if sc.Schema().Resolve("u", "k") < 0 {
		t.Error("alias not applied")
	}
	if sc.Name() != "DiskScan(u)" {
		t.Errorf("Name = %q", sc.Name())
	}
}

func TestDiskScanJoinsWithEstimation(t *testing.T) {
	// End to end: a hash join probing a DISK scan, with the framework
	// attached — the estimate converges exactly, like the in-memory path.
	build := makeTable(t, 400)
	probe := makeTable(t, 900)
	tf := roundTrip(t, probe)
	buildScan := exec.NewScan(build, "b")
	probeScan := NewScan(tf, "p")
	probeScan.SampleFraction = 0.2
	j := exec.NewHashJoin(buildScan, probeScan,
		buildScan.Schema().MustResolve("b", "k"),
		probeScan.Schema().MustResolve("p", "k"))
	att := core.Attach(j)
	n, err := exec.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	pe := att.ChainOf[j]
	if pe == nil || !pe.Converged() {
		t.Fatal("estimator did not attach/converge over disk scan")
	}
	if est := pe.Estimate(0); math.Abs(est-float64(n)) > 1e-6 {
		t.Errorf("estimate %g != %d", est, n)
	}
}

func writeBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
