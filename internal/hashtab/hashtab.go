// Package hashtab provides a cache-friendly open-addressing hash table
// keyed by int64, shared by the engine's hottest int-keyed paths: the
// grace hash join's per-partition build tables (exec.joinTable), the
// estimation framework's frequency histograms (core.FreqHistogram) and
// hash aggregation's group index (exec.HashAgg).
//
// Compared with a Go map[int64]V it removes per-operation interface
// hashing, bucket-chain pointer chasing and the ~28 B/entry bucket
// overhead: keys live in one flat power-of-two []int64 probed linearly,
// values in a parallel []V, so a lookup touches one or two cache lines.
// The table never shrinks and supports no deletion — exactly the
// lifecycle of a per-partition build table or a monotone histogram,
// which are built, read, and thrown away.
package hashtab

import "math/bits"

// emptyKey marks an unoccupied slot so the probe loop touches only the
// key array. The one real key colliding with the sentinel is carried
// out-of-band in I64Map.sentinelVal, keeping the full int64 domain valid.
const emptyKey int64 = -0x8000_0000_0000_0000

// I64Map is an int64-keyed open-addressing hash table with linear
// probing. The zero value is an empty map ready for use (first insert
// allocates). Not safe for concurrent mutation; concurrent reads of a
// frozen table are safe.
type I64Map[V any] struct {
	keys []int64
	vals []V
	mask uint64
	n    int // occupied slots, excluding the sentinel key

	hasSentinel bool
	sentinelVal V
}

// NewI64Map returns a map pre-sized for about hint entries.
func NewI64Map[V any](hint int) *I64Map[V] {
	m := &I64Map[V]{}
	if hint > 0 {
		m.grow(capFor(hint))
	}
	return m
}

// capFor returns the power-of-two slot count that holds n entries below
// the maximum load factor (7/8).
func capFor(n int) int {
	c := 8
	for c*7/8 < n {
		c <<= 1
	}
	return c
}

// hash is a strong 64-bit mixer (splitmix64 finalizer): sequential keys —
// the common case for surrogate join keys — spread over the whole table,
// so linear probe runs stay short.
func hash(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of entries.
func (m *I64Map[V]) Len() int {
	if m.hasSentinel {
		return m.n + 1
	}
	return m.n
}

// Get returns the value stored under k, if any.
func (m *I64Map[V]) Get(k int64) (V, bool) {
	if k == emptyKey {
		return m.sentinelVal, m.hasSentinel
	}
	if len(m.keys) == 0 {
		var zero V
		return zero, false
	}
	i := hash(k) & m.mask
	for {
		switch m.keys[i] {
		case k:
			return m.vals[i], true
		case emptyKey:
			var zero V
			return zero, false
		}
		i = (i + 1) & m.mask
	}
}

// Ref returns a pointer to the value slot for k, inserting a zero value
// if the key is absent. The pointer is valid until the next insertion
// (which may grow the table); callers use it for in-place patterns like
// counters (*m.Ref(k)++) and slice appends.
func (m *I64Map[V]) Ref(k int64) *V {
	if k == emptyKey {
		m.hasSentinel = true
		return &m.sentinelVal
	}
	if len(m.keys) == 0 {
		m.grow(8)
	}
	i := hash(k) & m.mask
	for {
		switch m.keys[i] {
		case k:
			return &m.vals[i]
		case emptyKey:
			if (m.n+1)*8 > len(m.keys)*7 {
				m.grow(len(m.keys) * 2)
				return m.Ref(k)
			}
			m.keys[i] = k
			m.n++
			return &m.vals[i]
		}
		i = (i + 1) & m.mask
	}
}

// Set stores v under k.
func (m *I64Map[V]) Set(k int64, v V) { *m.Ref(k) = v }

// Each calls f for every (key, value) pair in unspecified order; f
// returning false stops the iteration.
func (m *I64Map[V]) Each(f func(k int64, v V) bool) {
	if m.hasSentinel && !f(emptyKey, m.sentinelVal) {
		return
	}
	for i, k := range m.keys {
		if k != emptyKey && !f(k, m.vals[i]) {
			return
		}
	}
}

// EachRef is Each with a mutable value pointer, letting builders rewrite
// values in place (e.g. converting per-key counts to offsets) without a
// second lookup per key. The table must not be grown during iteration.
func (m *I64Map[V]) EachRef(f func(k int64, v *V) bool) {
	if m.hasSentinel && !f(emptyKey, &m.sentinelVal) {
		return
	}
	for i, k := range m.keys {
		if k != emptyKey && !f(k, &m.vals[i]) {
			return
		}
	}
}

// Reset empties the map, retaining the allocated capacity for reuse.
func (m *I64Map[V]) Reset() {
	var zero V
	for i := range m.keys {
		m.keys[i] = emptyKey
		m.vals[i] = zero
	}
	m.n = 0
	m.hasSentinel = false
	m.sentinelVal = zero
}

// Slots returns the allocated slot count (capacity), for memory
// accounting.
func (m *I64Map[V]) Slots() int { return len(m.keys) }

// grow rehashes into a table of newCap slots (a power of two ≥ 8).
func (m *I64Map[V]) grow(newCap int) {
	if newCap < 8 {
		newCap = 8
	}
	if bits.OnesCount(uint(newCap)) != 1 {
		newCap = 1 << bits.Len(uint(newCap))
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]int64, newCap)
	for i := range m.keys {
		m.keys[i] = emptyKey
	}
	m.vals = make([]V, newCap)
	m.mask = uint64(newCap - 1)
	for i, k := range oldKeys {
		if k == emptyKey {
			continue
		}
		j := hash(k) & m.mask
		for m.keys[j] != emptyKey {
			j = (j + 1) & m.mask
		}
		m.keys[j] = k
		m.vals[j] = oldVals[i]
	}
}
