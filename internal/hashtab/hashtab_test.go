package hashtab

import (
	"math/rand"
	"testing"
)

// TestI64MapAgainstMapReference is the randomized property test: a long
// weighted stream of adds (counter semantics), lookups of present and
// missing keys, and growth through several rehashes must agree with a
// map[int64]int64 reference at every step boundary. Key distributions
// cover the sentinel key, dense sequential ranges (the surrogate-key
// case), sparse random keys, and negative keys.
func TestI64MapAgainstMapReference(t *testing.T) {
	keyGens := map[string]func(r *rand.Rand) int64{
		"dense":    func(r *rand.Rand) int64 { return int64(r.Intn(512)) },
		"sparse":   func(r *rand.Rand) int64 { return r.Int63() - r.Int63() },
		"sentinel": func(r *rand.Rand) int64 { return emptyKey + int64(r.Intn(8)) },
	}
	for name, gen := range keyGens {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			m := NewI64Map[int64](0)
			ref := map[int64]int64{}
			for step := 0; step < 20000; step++ {
				k := gen(r)
				switch r.Intn(4) {
				case 0, 1: // weighted add
					w := int64(1 + r.Intn(9))
					*m.Ref(k) += w
					ref[k] += w
				case 2: // set
					m.Set(k, int64(step))
					ref[k] = int64(step)
				default: // lookup (possibly missing)
					got, ok := m.Get(k)
					want, wok := ref[k]
					if ok != wok || got != want {
						t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", step, k, got, ok, want, wok)
					}
				}
				if m.Len() != len(ref) {
					t.Fatalf("step %d: Len = %d, want %d", step, m.Len(), len(ref))
				}
			}
			// Full-content check: iteration visits every key exactly once
			// with the right value, and totals agree.
			var sum, refSum int64
			seen := map[int64]bool{}
			m.Each(func(k int64, v int64) bool {
				if seen[k] {
					t.Fatalf("Each visited key %d twice", k)
				}
				seen[k] = true
				if want := ref[k]; v != want {
					t.Fatalf("Each(%d) = %d, want %d", k, v, want)
				}
				sum += v
				return true
			})
			for _, v := range ref {
				refSum += v
			}
			if len(seen) != len(ref) || sum != refSum {
				t.Fatalf("iteration saw %d keys (sum %d), want %d (sum %d)", len(seen), sum, len(ref), refSum)
			}
			// Missing keys after growth.
			for i := 0; i < 1000; i++ {
				k := r.Int63()
				if _, inRef := ref[k]; inRef {
					continue
				}
				if _, ok := m.Get(k); ok {
					t.Fatalf("Get(%d) found a key never inserted", k)
				}
			}
		})
	}
}

// TestI64MapEachRef verifies in-place rewriting through EachRef (the
// count→offset pass the join build table uses).
func TestI64MapEachRef(t *testing.T) {
	m := NewI64Map[int64](4)
	for k := int64(0); k < 100; k++ {
		m.Set(k, k)
	}
	m.Set(emptyKey, -7)
	m.EachRef(func(k int64, v *int64) bool {
		*v *= 2
		return true
	})
	for k := int64(0); k < 100; k++ {
		if v, _ := m.Get(k); v != 2*k {
			t.Fatalf("Get(%d) = %d after EachRef, want %d", k, v, 2*k)
		}
	}
	if v, ok := m.Get(emptyKey); !ok || v != -14 {
		t.Fatalf("sentinel after EachRef = (%d,%v), want (-14,true)", v, ok)
	}
}

// TestI64MapEarlyStop: both iterators honour a false return.
func TestI64MapEarlyStop(t *testing.T) {
	m := NewI64Map[int](0)
	for k := int64(0); k < 50; k++ {
		m.Set(k, 1)
	}
	var visits int
	m.Each(func(int64, int) bool { visits++; return visits < 10 })
	if visits != 10 {
		t.Fatalf("Each visited %d, want early stop at 10", visits)
	}
	visits = 0
	m.EachRef(func(int64, *int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("EachRef visited %d, want 1", visits)
	}
}

// TestI64MapReset: capacity is retained, contents dropped.
func TestI64MapReset(t *testing.T) {
	m := NewI64Map[string](0)
	for k := int64(0); k < 300; k++ {
		m.Set(k, "x")
	}
	m.Set(emptyKey, "s")
	slots := m.Slots()
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if m.Slots() != slots {
		t.Fatalf("Reset dropped capacity: %d -> %d", slots, m.Slots())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Get found a key after Reset")
	}
	if _, ok := m.Get(emptyKey); ok {
		t.Fatal("sentinel survived Reset")
	}
	m.Set(7, "y")
	if v, ok := m.Get(7); !ok || v != "y" {
		t.Fatal("map unusable after Reset")
	}
}

// TestI64MapZeroValue: the zero value works without NewI64Map.
func TestI64MapZeroValue(t *testing.T) {
	var m I64Map[int]
	if _, ok := m.Get(3); ok {
		t.Fatal("zero map Get found a key")
	}
	*m.Ref(3)++
	if v, _ := m.Get(3); v != 1 {
		t.Fatalf("zero map Ref: got %d", v)
	}
}

// TestI64MapConcurrentReads: a frozen table may be read from many
// goroutines (the parallel join phase probes per-partition tables that
// are private per worker, but histogram snapshots are read cross-
// goroutine); run under -race.
func TestI64MapConcurrentReads(t *testing.T) {
	m := NewI64Map[int64](0)
	for k := int64(0); k < 4096; k++ {
		m.Set(k, k*3)
	}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			ok := true
			for i := 0; i < 10000; i++ {
				k := int64(r.Intn(8192))
				v, found := m.Get(k)
				if k < 4096 {
					ok = ok && found && v == k*3
				} else {
					ok = ok && !found
				}
			}
			done <- ok
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Fatal("concurrent read mismatch")
		}
	}
}

func BenchmarkI64MapVsGoMap(b *testing.B) {
	const n = 4096
	keys := make([]int64, n)
	r := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = int64(r.Intn(1024))
	}
	b.Run("gomap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[int64]int64, n)
			for _, k := range keys {
				m[k]++
			}
			var s int64
			for _, k := range keys {
				s += m[k]
			}
			sink = s
		}
	})
	b.Run("hashtab", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewI64Map[int64](n)
			for _, k := range keys {
				*m.Ref(k)++
			}
			var s int64
			for _, k := range keys {
				v, _ := m.Get(k)
				s += v
			}
			sink = s
		}
	})
}

var sink int64
