package core

import (
	"math"
	"testing"

	"qpi/internal/exec"
	"qpi/internal/oracle"
	"qpi/internal/qgen"
)

// Property tests of the paper's central claim, driven by the random plan
// generator: for ANY generated join chain, the "once" estimator must
// converge at the end of the first probe pass with every level's estimate
// exactly equal to the true cardinality, and its confidence intervals
// must be well-formed throughout and collapse onto the truth when frozen.

func drainAll(t testing.TB, root exec.Operator) {
	t.Helper()
	if err := root.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := exec.Drain(root); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := root.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func checkOnceProperty(t testing.TB, seed int64, opts qgen.Options) {
	t.Helper()
	c := qgen.Generate(seed, opts)
	want := oracle.Eval(c)
	b, err := c.Build()
	if err != nil {
		t.Fatalf("seed %d: Build: %v", seed, err)
	}
	att := Attach(b.Root)

	// Sample every chain's estimates mid-probe: CIs must always be
	// ordered and finite, and estimates non-negative.
	for _, pe := range att.Chains {
		pe := pe
		prev := pe.OnProbeObserved
		pe.OnProbeObserved = func(tt int64) {
			if prev != nil {
				prev(tt)
			}
			for k := 0; k < pe.Levels(); k++ {
				est := pe.Estimate(k)
				lo, hi := pe.ConfidenceInterval(k, 0.95)
				if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
					t.Fatalf("seed %d: level %d estimate %g at t=%d", seed, k, est, tt)
				}
				if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi+1e-9 {
					t.Fatalf("seed %d: level %d CI [%g,%g] at t=%d", seed, k, lo, hi, tt)
				}
			}
		}
	}
	drainAll(t, b.Root)

	for i, j := range b.Joins {
		pe := att.ChainOf[j]
		if pe == nil {
			continue // dne fallback: the once property makes no claim
		}
		if !pe.Converged() {
			t.Fatalf("seed %d: join %d (%s) never converged\n%s", seed, i, j.Name(), c.Describe())
		}
		truth := float64(want.JoinCards[i])
		lvl := att.LevelOf[j]
		if est := pe.Estimate(lvl); math.Abs(est-truth) > 1e-6*math.Max(1, truth) {
			t.Fatalf("seed %d: join %d (%s) frozen estimate %g, exact %g\n%s",
				seed, i, j.Name(), est, truth, c.Describe())
		}
		lo, hi := pe.ConfidenceInterval(lvl, 0.95)
		if math.Abs(lo-truth) > 1e-6*math.Max(1, truth) || math.Abs(hi-truth) > 1e-6*math.Max(1, truth) {
			t.Fatalf("seed %d: join %d frozen CI [%g,%g] not collapsed on %g", seed, i, lo, hi, truth)
		}
	}
}

func TestOnceExactProperty(t *testing.T) {
	opts := qgen.DefaultOptions()
	for seed := int64(1); seed <= 60; seed++ {
		checkOnceProperty(t, seed, opts)
	}
}

// FuzzOnceExact hands the seed and option bounds to the fuzzer.
func FuzzOnceExact(f *testing.F) {
	f.Add(int64(1), 40, 2)
	f.Add(int64(17), 100, 3)
	f.Fuzz(func(t *testing.T, seed int64, maxRows, maxJoins int) {
		if maxRows < 8 || maxRows > 160 || maxJoins < 1 || maxJoins > 3 {
			t.Skip("out of bounds")
		}
		checkOnceProperty(t, seed, qgen.Options{
			MaxRows: maxRows, MaxJoins: maxJoins,
			GroupBy: true, AltJoins: true, NonInner: true,
		})
	})
}
