package core

import (
	"math"
	"testing"

	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/qgen"
	"qpi/internal/sketch"
	"qpi/internal/storage"
)

// Tests for the ride-along sketch construction: every hash join's
// partition passes feed one build-key and one probe-key ColumnSketch,
// in every execution mode, and the merged sketches dot into join-size
// estimates within the Fast-AGMS error bound.

// agmsBound returns a ~8-sigma pairwise error bound from the sketches'
// own second-moment estimates (the true F2s are close at these sizes).
func agmsBound(a, b *sketch.FastAGMS, buckets int) float64 {
	return 8*math.Sqrt(a.SelfJoinSize()*b.SelfJoinSize()/float64(buckets)) + 1
}

func TestSketchRideAlongPairwiseAccuracy(t *testing.T) {
	shapes := []struct {
		name string
		mk   func() *exec.HashJoin
	}{
		{"fig3-binary", func() *exec.HashJoin { return fig3Plan(60) }},
		{"fig5-same-attr", func() *exec.HashJoin { return fig5Plan(61) }},
		{"fig6-case1", func() *exec.HashJoin { return fig6Plan(62, false) }},
		{"fig6-case2", func() *exec.HashJoin { return fig6Plan(63, true) }},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			top := sh.mk()
			s := AttachSketches(top)
			if _, err := exec.Run(top); err != nil {
				t.Fatal(err)
			}
			for _, j := range chainJoins(top) {
				js := s.Of(j)
				if js == nil {
					t.Fatalf("no sketches attached to %s", j.Name())
				}
				if got, want := js.Build.Rows, j.Build().Stats().Emitted.Load(); got != want {
					t.Errorf("%s: build sketch saw %d rows, pass emitted %d", j.Name(), got, want)
				}
				if got, want := js.Probe.Rows, j.Probe().Stats().Emitted.Load(); got != want {
					t.Errorf("%s: probe sketch saw %d rows, pass emitted %d", j.Name(), got, want)
				}
				est, err := s.JoinSizeEstimate(j)
				if err != nil {
					t.Fatal(err)
				}
				truth := float64(j.Stats().Emitted.Load())
				if bound := agmsBound(js.Build.AGMS, js.Probe.AGMS, s.cfg.Buckets); math.Abs(est-truth) > bound {
					t.Errorf("%s: estimate %g vs true %g differs by more than %g",
						j.Name(), est, truth, bound)
				}
			}
		})
	}
}

// TestSketchModesBitIdentical asserts the mode independence of the
// ride-along sketches: tuple, batched, columnar and morselized-columnar
// partition passes produce bit-identical counters, because per-worker
// shards merge by integer addition into exactly the serial sketch.
func TestSketchModesBitIdentical(t *testing.T) {
	raiseProcs(t, 4)
	type snapshot struct {
		buildCells, probeCells []int64
		buildRows, probeRows   int64
	}
	run := func(mode string) []snapshot {
		top := fig6Plan(64, true)
		switch mode {
		case "batched":
			parallelize(top, 3)
		case "columnar":
			columnarize(top)
		case "colshard":
			morselizeCol(top, 3)
		}
		s := AttachSketches(top)
		switch mode {
		case "batched":
			if _, err := exec.RunBatch(exec.AsBatch(top)); err != nil {
				t.Fatal(err)
			}
		case "columnar", "colshard":
			drainColPlan(t, top)
		default:
			if _, err := exec.Run(top); err != nil {
				t.Fatal(err)
			}
		}
		var snaps []snapshot
		for _, j := range chainJoins(top) {
			js := s.Of(j)
			snaps = append(snaps, snapshot{
				buildCells: append(js.Build.AGMS.Cells(), js.Build.CM.Cells()...),
				probeCells: append(js.Probe.AGMS.Cells(), js.Probe.CM.Cells()...),
				buildRows:  js.Build.Rows,
				probeRows:  js.Probe.Rows,
			})
		}
		return snaps
	}
	want := run("tuple")
	for _, mode := range []string{"batched", "columnar", "colshard"} {
		got := run(mode)
		if len(got) != len(want) {
			t.Fatalf("%s: %d joins, want %d", mode, len(got), len(want))
		}
		for i := range want {
			if !cellsEq(got[i].buildCells, want[i].buildCells) {
				t.Errorf("%s join %d: build sketch cells differ from tuple mode", mode, i)
			}
			if !cellsEq(got[i].probeCells, want[i].probeCells) {
				t.Errorf("%s join %d: probe sketch cells differ from tuple mode", mode, i)
			}
			if got[i].buildRows != want[i].buildRows || got[i].probeRows != want[i].probeRows {
				t.Errorf("%s join %d: row tallies (%d,%d) differ from tuple mode (%d,%d)",
					mode, i, got[i].buildRows, got[i].probeRows, want[i].buildRows, want[i].probeRows)
			}
		}
	}
}

func cellsEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSketchSetMultiwayEstimate checks the chain form on the Figure 5
// same-attribute shape, where the multi-way dot is meaningful:
// JoinSizeEstimate(lower, upper) estimates |A ⋈x B ⋈x C|.
func TestSketchSetMultiwayEstimate(t *testing.T) {
	top := fig5Plan(65)
	lower := top.Probe().(*exec.HashJoin)
	s := AttachSketches(top)
	if _, err := exec.Run(top); err != nil {
		t.Fatal(err)
	}
	est, err := s.JoinSizeEstimate(lower, top)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(top.Stats().Emitted.Load())
	if truth == 0 {
		t.Fatal("degenerate shape: empty three-way join")
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.15 {
		t.Errorf("three-way estimate %g vs true %g: relative error %g > 0.15", est, truth, rel)
	}

	if _, err := s.JoinSizeEstimate(); err == nil {
		t.Error("JoinSizeEstimate with no joins succeeded")
	}
	other := fig3Plan(66)
	if _, err := s.JoinSizeEstimate(other); err == nil {
		t.Error("JoinSizeEstimate over an unattached join succeeded")
	}
}

// TestSketchNullKeysSkipped joins two NULL-bearing qgen tables and
// checks the hooks tally NULL keys without sketching them: the
// pairwise estimate tracks the exact NULL-skipping join size.
func TestSketchNullKeysSkipped(t *testing.T) {
	c := qgen.Generate(99, qgen.DefaultOptions())
	if len(c.Tables) < 2 {
		t.Fatal("qgen produced fewer than two tables")
	}
	const keyCol = 1 // qgen's k column
	ta, tb := c.Tables[0], c.Tables[1]
	j := exec.NewHashJoinOn(exec.NewScan(ta, "ra"), exec.NewScan(tb, "rb"),
		"ra", "k", "rb", "k")
	s := AttachSketches(j)
	if _, err := exec.Run(j); err != nil {
		t.Fatal(err)
	}
	counts := func(tb *storage.Table) (map[data.Value]int64, int64) {
		m := map[data.Value]int64{}
		var nulls int64
		it := tb.SequentialOrder()
		for tup := it.Next(); tup != nil; tup = it.Next() {
			if tup[keyCol].IsNull() {
				nulls++
				continue
			}
			m[tup[keyCol]]++
		}
		return m, nulls
	}
	ca, nullsA := counts(ta)
	cb, nullsB := counts(tb)
	js := s.Of(j)
	if js.Build.Nulls != nullsA {
		t.Errorf("build sketch counted %d NULL keys, table has %d", js.Build.Nulls, nullsA)
	}
	if js.Probe.Nulls != nullsB {
		t.Errorf("probe sketch counted %d NULL keys, table has %d", js.Probe.Nulls, nullsB)
	}
	var truth float64
	for v, n := range ca {
		truth += float64(n) * float64(cb[v])
	}
	est, err := s.JoinSizeEstimate(j)
	if err != nil {
		t.Fatal(err)
	}
	if bound := agmsBound(js.Build.AGMS, js.Probe.AGMS, s.cfg.Buckets); math.Abs(est-truth) > bound {
		t.Errorf("estimate %g vs exact NULL-skipping join size %g differs by more than %g", est, truth, bound)
	}
}
