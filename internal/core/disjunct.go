package core

import (
	"qpi/internal/data"
	"qpi/internal/exec"
	"qpi/internal/expr"
	"qpi/internal/obs"
)

// DisjunctiveEstimator estimates joins whose condition is a disjunction
// of column equalities (§4.1: the basic formula "can be easily adjusted
// for the case of join conditions involving disjunctions ... using
// standard probabilistic techniques"). For a predicate
//
//	outer.a1 = inner.b1 OR ... OR outer.ak = inner.bk
//
// inclusion–exclusion over the 2^k−1 non-empty term subsets gives the
// exact per-outer-tuple match count from composite-key histograms built
// on the inner input:
//
//	count(o) = Σ_{∅≠S⊆[k]} (−1)^{|S|+1} · N_S[key_S(o)]
//
// where N_S counts inner tuples by the composite of columns in S. As with
// the equi-join estimators, the counts are collected during the inner
// materialization pass and probed during the outer sort's input pass, so
// the estimate converges before the join emits.
type DisjunctiveEstimator struct {
	join exec.Operator
	k    int

	// subsets[i] is a bitmask over the k terms; hists[i] counts inner
	// tuples by the composite key of that subset's inner columns.
	subsets []uint
	signs   []float64
	hists   []*FreqHistogram
	// innerCols/outerCols are the per-term column indexes.
	innerCols []int
	outerCols []int

	outerTotal func() float64
	t          int64
	sum        float64
	frozen     bool

	refineTrace
}

// SetTracer routes the estimator's refinement events into tr.
func (e *DisjunctiveEstimator) SetTracer(tr *obs.Tracer) {
	e.bindTracer(tr, e.join.Name(), "disjunct")
}

// maxDisjuncts bounds the inclusion–exclusion blowup.
const maxDisjuncts = 4

// NewDisjunctiveEstimator creates an estimator for a k-way disjunction of
// equalities (k ≤ 4). outerCols/innerCols index the outer and inner
// schemas respectively, term by term.
func NewDisjunctiveEstimator(join exec.Operator, outerCols, innerCols []int, outerTotal func() float64) *DisjunctiveEstimator {
	k := len(outerCols)
	e := &DisjunctiveEstimator{
		join:       join,
		k:          k,
		innerCols:  innerCols,
		outerCols:  outerCols,
		outerTotal: outerTotal,
	}
	for s := uint(1); s < (1 << k); s++ {
		e.subsets = append(e.subsets, s)
		sign := -1.0
		if popcount(s)%2 == 1 {
			sign = 1.0
		}
		e.signs = append(e.signs, sign)
		e.hists = append(e.hists, NewFreqHistogram())
	}
	return e
}

func popcount(x uint) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// subsetKey builds the composite key of the subset's columns from a tuple
// (cols selects inner or outer column indexes).
func (e *DisjunctiveEstimator) subsetKey(t data.Tuple, s uint, cols []int) data.Value {
	var sel []int
	for i := 0; i < e.k; i++ {
		if s&(1<<uint(i)) != 0 {
			sel = append(sel, cols[i])
		}
	}
	return exec.JoinKeyOf(t, sel)
}

// ObserveInner records one inner tuple across all subset histograms.
func (e *DisjunctiveEstimator) ObserveInner(t data.Tuple) {
	for i, s := range e.subsets {
		e.hists[i].Add(e.subsetKey(t, s, e.innerCols))
	}
}

// ObserveOuter processes one outer tuple during the sort input pass.
func (e *DisjunctiveEstimator) ObserveOuter(t data.Tuple) {
	count := 0.0
	for i, s := range e.subsets {
		count += e.signs[i] * float64(e.hists[i].Count(e.subsetKey(t, s, e.outerCols)))
	}
	e.t++
	e.sum += count
	if e.t%64 == 0 {
		e.publish()
	}
}

// MarkConverged freezes the estimator at the end of the outer input.
func (e *DisjunctiveEstimator) MarkConverged() {
	e.frozen = true
	e.publish()
}

// Converged reports whether the outer input has been fully observed.
func (e *DisjunctiveEstimator) Converged() bool { return e.frozen }

// Estimate returns the current disjunctive-join size estimate.
func (e *DisjunctiveEstimator) Estimate() float64 {
	if e.t == 0 {
		return e.join.Stats().Estimate()
	}
	total := e.outerTotal()
	if e.frozen {
		total = float64(e.t)
	}
	return total * e.sum / float64(e.t)
}

func (e *DisjunctiveEstimator) publish() {
	src := "once"
	if e.frozen {
		src = "once-exact"
	}
	est := e.Estimate()
	e.join.Stats().SetEstimate(est, src)
	e.tracePublish(est, src, 0)
}

// attachSortedOuterDisjunctNL wires disjunctive estimation for a theta
// nested-loops join whose predicate is an OR of column equalities between
// the outer and inner inputs and whose outer input is a Sort.
func (a *Attachment) attachSortedOuterDisjunctNL(j *exec.NestedLoopsJoin) bool {
	if j.Indexed || j.Pred == nil {
		return false
	}
	or, ok := j.Pred.(expr.Or)
	if !ok || len(or.Terms) < 2 || len(or.Terms) > maxDisjuncts {
		return false
	}
	outerSort, ok := j.Outer().(*exec.Sort)
	if !ok {
		return false
	}
	outerWidth := j.Outer().Schema().Len()
	var outerCols, innerCols []int
	for _, term := range or.Terms {
		cmp, ok := term.(expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			return false
		}
		lc, lok := cmp.L.(expr.Col)
		rc, rok := cmp.R.(expr.Col)
		if !lok || !rok {
			return false
		}
		switch {
		case lc.Index < outerWidth && rc.Index >= outerWidth:
			outerCols = append(outerCols, lc.Index)
			innerCols = append(innerCols, rc.Index-outerWidth)
		case rc.Index < outerWidth && lc.Index >= outerWidth:
			outerCols = append(outerCols, rc.Index)
			innerCols = append(innerCols, lc.Index-outerWidth)
		default:
			return false
		}
	}
	est := NewDisjunctiveEstimator(j, outerCols, innerCols, func() float64 {
		return StreamSizeEstimate(outerSort.Children()[0])
	})
	j.OnInnerTuple = compose(j.OnInnerTuple, est.ObserveInner)
	outerSort.OnInput = compose(outerSort.OnInput, est.ObserveOuter)
	outerSort.OnInputEnd = compose0(outerSort.OnInputEnd, est.MarkConverged)
	a.Disjunct = append(a.Disjunct, est)
	return true
}
